// Batterysizing: pre-deployment capacity planning with the degradation
// model alone — no simulation. Given a node's duty cycle, the tool
// tabulates how the charge threshold theta trades nightly autonomy
// against calendar lifespan, and flags the smallest theta that still
// bridges the longest expected sunless stretch.
//
//	go run ./examples/batterysizing
package main

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/lora"
)

func main() {
	const (
		sleepW        = 30e-6 // always-on draw
		periodMinutes = 30.0  // sampling period
		payloadBytes  = 18    // 10 B data + 2 SoC reports
		sunlessHours  = 14.0  // longest overcast night to survive
		avgAttempts   = 1.3   // retransmission allowance
	)

	params := lora.DefaultParams() // SF10, 14 dBm
	txE := params.TxEnergy(payloadBytes)
	rxE := lora.RxPower() * 24 * params.SymbolTime()

	packetsPerDay := 24 * 60 / periodMinutes
	dailyJ := sleepW*86400 + packetsPerDay*avgAttempts*(txE+rxE)
	capacity := sleepW*86400 + packetsPerDay*4*(txE+rxE) // the repo's sizing rule

	sunlessNeed := sleepW*sunlessHours*3600 +
		(sunlessHours*60/periodMinutes)*avgAttempts*(txE+rxE)

	fmt.Printf("node duty cycle: %s, %.0f B payload, every %.0f min\n",
		params.SF, float64(payloadBytes), periodMinutes)
	fmt.Printf("one transmission: %.1f mJ  daily budget: %.2f J  battery: %.2f J\n\n",
		txE*1e3, dailyJ, capacity)

	model := battery.DefaultModel()
	fmt.Printf("%7s %16s %18s %s\n", "theta", "usable overnight", "calendar lifespan", "verdict")
	var recommended float64
	for _, theta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0} {
		usable := theta * capacity
		// Mean cycle SoC under theta: the battery hovers between the cap
		// and the overnight low.
		low := max(0, theta-sunlessNeed/capacity)
		meanSoC := (theta + low) / 2
		lifespan, err := model.PredictCalendarLifespan(25, meanSoC)
		if err != nil {
			fmt.Println("model error:", err)
			return
		}
		verdict := "starves overnight"
		if usable >= sunlessNeed {
			verdict = "ok"
			if recommended == 0 {
				recommended = theta
				verdict = "ok  <- smallest safe theta"
			}
		}
		fmt.Printf("%7.1f %13.2f J %15.1f yr  %s\n",
			theta, usable, lifespan.Days()/365, verdict)
	}

	if recommended > 0 {
		fmt.Printf("\nrecommend theta = %.1f: survives a %.0f h sunless stretch and ages slowest among safe settings\n",
			recommended, sunlessHours)
	}
	fmt.Printf("(calendar aging only; run cmd/blasim for the full picture with cycling and collisions)\n")
}
