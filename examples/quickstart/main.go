// Quickstart: simulate a small solar-powered LoRa network twice — once
// with plain LoRaWAN (pure ALOHA) and once with the battery
// lifespan-aware MAC (H-50) — and compare what each protocol does to the
// batteries and the data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func main() {
	// Start from the paper's defaults and shrink to laptop scale: 50
	// nodes for 120 simulated days.
	base := config.Default().WithSeed(42)
	base.Nodes = 50
	base.Duration = 120 * simtime.Day

	lorawan := base
	lorawan.Protocol = config.ProtocolLoRaWAN

	bla := base
	bla.Protocol = config.ProtocolBLA
	bla.Theta = 0.5 // cap every battery at 50% charge to slow calendar aging

	fmt.Println("simulating 50 solar-powered nodes for 120 days...")
	lw := mustRun(lorawan)
	h50 := mustRun(bla)

	fmt.Printf("\n%-28s %12s %12s\n", "", lw.label, h50.label)
	row := func(name, a, b string) { fmt.Printf("%-28s %12s %12s\n", name, a, b) }
	row("packet reception rate", pct(lw.prr.Mean()), pct(h50.prr.Mean()))
	row("worst node PRR", pct(lw.prr.Min()), pct(h50.prr.Min()))
	row("TX attempts per packet", f2(lw.att.Mean()), f2(h50.att.Mean()))
	row("avg data utility", f3(lw.util.Mean()), f3(h50.util.Mean()))
	row("avg latency (s)", f1(lw.lat.Mean()), f1(h50.lat.Mean()))
	row("battery degradation (mean)", f5(lw.deg.Mean()), f5(h50.deg.Mean()))
	row("battery degradation (var)", g2(lw.deg.Variance()), g2(h50.deg.Variance()))

	gain := (1 - h50.deg.Mean()/lw.deg.Mean()) * 100
	fmt.Printf("\nH-50 slowed mean battery degradation by %.1f%%.\n", gain)
	fmt.Println("Extrapolated over a deployment's life this is the gap between")
	fmt.Println("replacing every battery after ~8 years and after ~14 (paper Fig. 8).")
}

type agg struct {
	label          string
	prr, att, util metrics.Welford
	lat, deg       metrics.Welford
}

func mustRun(cfg config.Scenario) *agg {
	s, err := sim.New(cfg, sim.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	a := &agg{label: res.Label}
	for _, n := range res.Nodes {
		a.prr.Add(n.Stats.PRR())
		a.att.Add(n.Stats.AvgAttempts())
		a.util.Add(n.Stats.AvgUtility())
		a.lat.Add(n.Stats.AvgLatencyDelivered().Seconds())
		a.deg.Add(n.Degradation.Total)
	}
	return a
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f5(v float64) string  { return fmt.Sprintf("%.5f", v) }
func g2(v float64) string  { return fmt.Sprintf("%.2g", v) }
