// Smartfarm: a smart-agriculture deployment — one of the LPWAN use
// cases the paper's introduction motivates. Soil-moisture probes report
// every 20 minutes across a 2 km irrigation pivot; readings are only
// actionable if they arrive before the next irrigation decision, so the
// nodes use a deadline utility (full value within the first quarter of
// the sampling period) instead of the default linear one.
//
// The example sweeps the charge threshold theta to pick the right
// operating point for this workload: too low starves the nodes at
// night, too high burns battery lifespan on calendar aging.
//
//	go run ./examples/smartfarm
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/utility"
)

func main() {
	base := config.Default().WithSeed(2026)
	base.Nodes = 120
	base.MaxDistanceM = 2000 // a dense pivot, not a 5 km basin
	base.Duration = 180 * simtime.Day
	base.PeriodMin = 20 * simtime.Minute
	base.PeriodMax = 20 * simtime.Minute
	base.Protocol = config.ProtocolBLA
	// Readings are worth full value for 5 minutes, almost nothing after.
	base.Utility = utility.Deadline{Fraction: 0.25, Tail: 0.1}
	// The whole field sees the same clouds: little per-node variation.
	base.SolarVariation = 0.1
	// Farm infrastructure affords slightly larger panels and batteries
	// than the paper's minimum sizing.
	base.PanelPeakMultiple = 3
	base.BatterySizingAttempts = 6

	fmt.Println("soil-moisture network: 120 probes, 20 min period, 180 days")
	fmt.Printf("\n%6s %10s %10s %12s %14s %12s\n",
		"theta", "PRR", "dropped%", "deadline-hit", "deg mean", "deg var")

	type point struct {
		theta float64
		deg   float64
	}
	var best point
	for _, theta := range []float64{0.1, 0.3, 0.5, 0.7, 1.0} {
		cfg := base
		cfg.Theta = theta

		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}

		var prr, deg metrics.Welford
		var generated, neverSent, inDeadline, delivered int64
		for _, n := range res.Nodes {
			prr.Add(n.Stats.PRR())
			deg.Add(n.Degradation.Total)
			generated += n.Stats.Generated
			neverSent += n.Stats.NeverSent
			delivered += n.Stats.Delivered
			// Packets transmitted inside the irrigation deadline window.
			windows := int(n.Period / cfg.ForecastWindow)
			for _, w := range n.Stats.WindowHist.Buckets() {
				if float64(w) < 0.25*float64(windows) {
					inDeadline += n.Stats.WindowHist.Count(w)
				}
			}
		}
		deadlineHit := float64(inDeadline) / float64(max(generated, 1))
		fmt.Printf("%6.1f %9.1f%% %9.1f%% %11.1f%% %14.5f %12.3g\n",
			theta, prr.Mean()*100,
			100*float64(neverSent)/float64(max(generated, 1)),
			100*deadlineHit, deg.Mean(), deg.Variance())

		// Operating point: the lowest degradation with PRR >= 95%.
		if prr.Mean() >= 0.95 && (best.theta == 0 || deg.Mean() < best.deg) {
			best = point{theta: theta, deg: deg.Mean()}
		}
	}

	if best.theta > 0 {
		fmt.Printf("\nrecommended operating point: theta = %.1f (lowest degradation with PRR >= 95%%)\n", best.theta)
	} else {
		fmt.Println("\nno theta met the PRR >= 95% requirement; increase panel size or battery headroom")
	}
	fmt.Println("deadline-hit counts transmissions scheduled inside the irrigation deadline window")
}
