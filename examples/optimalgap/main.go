// Optimalgap: how close does the distributed on-sensor heuristic
// (Algorithm 1) get to the paper's centralized clairvoyant formulation
// (Sec. III-A)? This example builds a small TDMA instance, solves it
// exhaustively, and compares the greedy clairvoyant scheduler and the
// collision-blind on-sensor pass against the optimum.
//
//	go run ./examples/optimalgap
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
	"repro/internal/optimal"
)

func main() {
	p := experiment.GapProblem()
	fmt.Printf("instance: %d nodes, %d slots, omega=%d (one reception per slot)\n",
		len(p.Nodes), p.Slots, p.Omega)
	fmt.Println("generation is phase-shifted per node, so greedily chasing green")
	fmt.Println("energy without coordination collides.")
	fmt.Println()

	table, err := experiment.OptimalGap(experiment.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show the optimal schedule itself.
	schedule, eval, err := optimal.SolveExhaustive(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive optimum (objective %.4g):\n", eval.Objective)
	for i, slots := range schedule.TxSlot {
		fmt.Printf("  node %d transmits in slots %v\n", i, slots)
	}
	fmt.Println("\nthe heuristic trades a little utility for battery impact without any")
	fmt.Println("global knowledge — the trade the paper argues for in Sec. III-B.")
}
