// Wildlife: GPS collars reporting hourly positions from a remote
// reserve — the paper's "replacing one battery is a day's trek" setting.
// The example runs both protocols to battery end-of-life (with
// accelerated aging so it finishes in seconds) and turns the lifespan
// gap into a field-maintenance budget: collar recaptures avoided per
// decade across the herd.
//
//	go run ./examples/wildlife
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// agingFactor accelerates battery aging so the multi-year run finishes
// in seconds; reported times are de-scaled back to real years.
const agingFactor = 60

func main() {
	base := config.Default().WithSeed(7)
	base.Nodes = 40
	base.MaxDistanceM = 5000
	base.PeriodMin = 30 * simtime.Minute
	base.PeriodMax = 60 * simtime.Minute
	base.RunToEoL = true
	base.MaxDuration = 30 * simtime.Year / agingFactor
	base.BatteryModel.K1 *= agingFactor
	base.BatteryModel.K6 *= agingFactor
	// Position fixes age gracefully: an exponential utility keeps value
	// in late windows, letting collars defer more aggressively at night.
	base.Utility = utility.Exponential{Lambda: 1.5}

	fmt.Println("wildlife collars: 40 nodes, hourly fixes, run to battery end-of-life")

	type outcome struct {
		label string
		years float64
		prr   float64
	}
	var results []outcome
	for _, p := range []struct {
		kind  config.ProtocolKind
		theta float64
	}{
		{config.ProtocolLoRaWAN, 1},
		{config.ProtocolBLA, 0.5},
	} {
		cfg := base
		cfg.Protocol = p.kind
		cfg.Theta = p.theta
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		days := res.LifespanDays
		if days == 0 {
			days = res.Elapsed.Days()
		}
		var prrSum float64
		for _, n := range res.Nodes {
			prrSum += n.Stats.PRR()
		}
		results = append(results, outcome{
			label: res.Label,
			years: days * agingFactor / 365,
			prr:   prrSum / float64(len(res.Nodes)),
		})
		fmt.Printf("  %-8s first collar battery dead after %5.1f years (PRR %.1f%%)\n",
			res.Label, days*agingFactor/365, 100*prrSum/float64(len(res.Nodes)))
	}

	lw, bla := results[0], results[1]
	fmt.Printf("\nlifespan improvement: %+.1f%%\n", 100*(bla.years/lw.years-1))

	// Maintenance budget over a 15-year reserve program.
	const programYears = 15.0
	recaptures := func(years float64) float64 { return 40 * (programYears/years - 1) }
	saved := recaptures(lw.years) - recaptures(bla.years)
	if saved > 0 {
		fmt.Printf("over a %d-year program the lifespan-aware MAC avoids ~%.0f collar recaptures\n",
			int(programYears), saved)
		fmt.Println("(each recapture means locating and sedating an animal to swap a battery)")
	}
	fmt.Printf("\naging accelerated x%d for this demo; see cmd/experiments -run lifespan -scale paper for real-time aging\n", agingFactor)
}
