package repro_test

// Allocation smoke gate for the struct-of-arrays node core (PR 7).
// BenchmarkSweep1000Nodes allocs/op is the machine-independent half of
// the single-run throughput story: the PR 6 baseline
// (BENCH_2026-08-08.json) recorded 108,632 allocs for a 1000-node
// simulated day, and the SoA core plus idle-span skipping must keep
// that at least halved. A plain short-mode test pins the ratio so the
// regression fails in `go test ./...` directly, without the bench
// harness or a same-machine baseline.

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// pr6SweepAllocs is BenchmarkSweep1000Nodes allocs/op from the PR 6
// baseline record, BENCH_2026-08-08.json.
const pr6SweepAllocs = 108_632

func TestSweep1000NodesAllocsHalvedVsPR6(t *testing.T) {
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = 1000
	cfg.Duration = simtime.Day

	run := func() {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm pass, mirroring the benchmark's warmSim: the first run in a
	// process pays one-off costs (profile caches, event pools) the
	// committed baseline amortizes away.
	run()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	// ≥ 2x drop vs PR 6, with the small slack absorbing background
	// runtime allocations that ReadMemStats deltas cannot exclude.
	limit := uint64(pr6SweepAllocs / 2)
	if allocs >= limit {
		t.Fatalf("1000-node day = %d allocs, want < %d (2x below the PR 6 figure of %d)",
			allocs, limit, pr6SweepAllocs)
	}
	t.Logf("1000-node day: %d allocs (PR 6 baseline %d, %.2fx reduction)",
		allocs, pr6SweepAllocs, float64(pr6SweepAllocs)/float64(allocs))
}

// pr9YearAllocs is BenchmarkSimulatorYear allocs/op from the PR 9
// baseline record, BENCH_2026-08-08.json.
const pr9YearAllocs = 5_607

// TestSimulatorYearAllocsNearPR9 pins the year-scale allocation count:
// a 100-node simulated year must stay within 25% of the PR 9 figure.
// The slack covers the chunked calendar-ring slab (carving 32KB chunks
// per first-touched slot region instead of one eager 4MB slab adds
// ~128 small allocations on runs that touch every ring slot, in
// exchange for a ~4MB footprint cut on short runs) plus background
// runtime allocations the ReadMemStats delta cannot exclude.
func TestSimulatorYearAllocsNearPR9(t *testing.T) {
	if testing.Short() {
		t.Skip("year-scale run; covered by the non-short CI pass")
	}
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = 100
	cfg.Duration = 365 * simtime.Day

	run := func() {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pass, as above

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	limit := uint64(pr9YearAllocs * 5 / 4)
	if allocs >= limit {
		t.Fatalf("100-node year = %d allocs, want < %d (within 25%% of the PR 9 figure of %d)",
			allocs, limit, pr9YearAllocs)
	}
	t.Logf("100-node year: %d allocs (PR 9 baseline %d)", allocs, pr9YearAllocs)
}
