package repro_test

// Allocation smoke gate for the struct-of-arrays node core (PR 7).
// BenchmarkSweep1000Nodes allocs/op is the machine-independent half of
// the single-run throughput story: the PR 6 baseline
// (BENCH_2026-08-08.json) recorded 108,632 allocs for a 1000-node
// simulated day, and the SoA core plus idle-span skipping must keep
// that at least halved. A plain short-mode test pins the ratio so the
// regression fails in `go test ./...` directly, without the bench
// harness or a same-machine baseline.

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// pr6SweepAllocs is BenchmarkSweep1000Nodes allocs/op from the PR 6
// baseline record, BENCH_2026-08-08.json.
const pr6SweepAllocs = 108_632

func TestSweep1000NodesAllocsHalvedVsPR6(t *testing.T) {
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = 1000
	cfg.Duration = simtime.Day

	run := func() {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm pass, mirroring the benchmark's warmSim: the first run in a
	// process pays one-off costs (profile caches, event pools) the
	// committed baseline amortizes away.
	run()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	// ≥ 2x drop vs PR 6, with the small slack absorbing background
	// runtime allocations that ReadMemStats deltas cannot exclude.
	limit := uint64(pr6SweepAllocs / 2)
	if allocs >= limit {
		t.Fatalf("1000-node day = %d allocs, want < %d (2x below the PR 6 figure of %d)",
			allocs, limit, pr6SweepAllocs)
	}
	t.Logf("1000-node day: %d allocs (PR 6 baseline %d, %.2fx reduction)",
		allocs, pr6SweepAllocs, float64(pr6SweepAllocs)/float64(allocs))
}
