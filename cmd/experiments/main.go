// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run sweep -nodes 200 -duration 4380h
//	experiments -run all -scale quick
//	experiments -run lifespan -scale paper        # full multi-year runs
//	experiments -run sweep -csv out/              # also write CSV files
//	experiments -run sweep -j 1                   # force serial execution
//	experiments -run sweep -replicates 5          # pool 5 derived-seed runs
//	experiments -run scale -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -run scale -trace trace.out       # runtime execution trace
//
// Scales:
//
//	quick: minutes of wall time; shapes hold, magnitudes are scaled.
//	full:  the paper's workloads (hours of wall time for the sweep).
//
// Within each experiment, independent simulation runs fan out across -j
// workers (default: all CPUs); output tables are byte-identical at any
// worker count. Experiments themselves run sequentially so that tableI's
// microbenchmarks are not skewed by concurrent simulations.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		runNames = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		scale    = flag.String("scale", "quick", "workload scale: 'quick' or 'paper'")
		seed     = flag.Uint64("seed", 1, "scenario seed")
		nodes    = flag.Int("nodes", 0, "override network size (0 = scale default)")
		duration = flag.Duration("duration", 0, "override simulated duration (0 = scale default)")
		aging    = flag.Float64("aging", 0, "override aging acceleration factor (0 = scale default)")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSV files")
		workers  = flag.Int("j", 0, "worker pool size for fan-out within an experiment (0 = all CPUs, 1 = serial)")
		shards   = flag.Int("shards", 0, "per-cell engine shards per run: 0 = auto (min of gateways and CPUs), 1 = single heap")
		reps     = flag.Int("replicates", 0, "derived-seed replicates pooled per scenario (0 or 1 = single run)")
		verbose  = flag.Bool("v", false, "log per-run progress")

		obsOn     = flag.Bool("obs", false, "export per-run observability (counters, per-node timelines, manifest) under -obs-dir")
		obsDir    = flag.String("obs-dir", "obs", "observability export directory (with -obs)")
		obsSample = flag.Duration("obs-sample-every", 0, "observability timeline sampling period (0 = 10m default)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-16s %-45s paper scale: %s\n", e.Name, e.Artifacts, e.PaperScale)
		}
		return nil
	}

	opts := experiment.Options{Seed: *seed}
	switch *scale {
	case "paper":
		// Paper-scale defaults are baked into each runner.
	case "quick":
		opts.Nodes = 100
		opts.Duration = simtime.FromDuration(90 * 24 * time.Hour)
		opts.AgingFactor = 40
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scale)
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *duration > 0 {
		opts.Duration = simtime.FromDuration(*duration)
	}
	if *aging > 0 {
		opts.AgingFactor = *aging
	}
	opts.Workers = *workers
	opts.Shards = *shards
	opts.Replicates = *reps
	if *verbose {
		opts.Log = os.Stderr
	}
	if *obsOn {
		opts.ObsDir = *obsDir
		opts.ObsSampleEvery = simtime.FromDuration(*obsSample)
	}

	var entries []experiment.Entry
	if *runNames == "all" {
		entries = experiment.Registry()
	} else {
		for _, name := range strings.Split(*runNames, ",") {
			e, ok := experiment.Find(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", name)
			}
			entries = append(entries, e)
		}
	}

	for _, e := range entries {
		started := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		for _, t := range tables {
			if opts.Nodes > 0 || opts.Duration > 0 || opts.AgingFactor > 1 {
				t.AddNote("scaled run (scale=%s); use -scale paper for the full workload: %s", *scale, e.PaperScale)
			}
			if err := t.Fprint(os.Stdout); err != nil {
				return err
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "%s finished in %v\n", e.Name, time.Since(started).Round(time.Millisecond))
		}
	}
	if *obsOn {
		if err := writeObsManifest(*obsDir, opts, entries); err != nil {
			return fmt.Errorf("obs manifest: %w", err)
		}
	}
	return nil
}

// writeObsManifest records this invocation's provenance — including the
// resolved worker count and the requested shard count (0 = auto: the
// effective count varies per scenario with its gateway count), both of
// which deliberately live here and not in the per-run JSONL so run
// files stay byte-identical across -j and -shards values.
func writeObsManifest(dir string, opts experiment.Options, entries []experiment.Entry) error {
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name)
	}
	var runs []string
	if paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl")); err == nil {
		for _, p := range paths {
			runs = append(runs, filepath.Base(p))
		}
	}
	sampleEvery := opts.ObsSampleEvery
	if sampleEvery <= 0 {
		sampleEvery = obs.DefaultSampleEvery
	}
	return obs.WriteInvocationManifest(filepath.Join(dir, "manifest.json"), obs.InvocationManifest{
		Seed:          opts.Seed,
		Workers:       runner.Workers(opts.Workers),
		Shards:        opts.Shards,
		SampleEveryMs: int64(sampleEvery / simtime.Millisecond),
		Experiments:   names,
		Runs:          runs,
	})
}

func writeCSV(dir string, t *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.CSV(f); err != nil {
		return err
	}
	return f.Close()
}
