// Command loadgen replays an obs JSONL export (the simulator's
// per-node SoC timelines, see `experiments -obs`) as LNS uplink traffic
// against a running lnsd daemon — the simulator is the traffic
// generator. It can also run the identical replay through the
// in-process library path (-local), which is how the daemon's output is
// pinned byte-identical to direct netserver Ingest calls.
//
// Usage:
//
//	loadgen -in obs/run.jsonl -addr http://127.0.0.1:8080 -wu-out wu.json
//	loadgen -in obs/run.jsonl -local -wu-out wu-lib.json
//
// Snapshot/restore smoke (resume must match an uninterrupted run):
//
//	loadgen -in run.jsonl -addr ... -stop-frac 0.5 -snapshot-out snap.json
//	lnsd -restore snap.json &
//	loadgen -in run.jsonl -addr ... -start-frac 0.5 -wu-out wu.json
//
// With -conns N the replay opens N concurrent connections, each owning
// the node-ID ranges lns.ShardOf assigns it — a node's uplinks always
// ride one connection in order, so per-node ordering (the only order
// the protocol state depends on) survives arbitrary cross-connection
// interleaving. Within a connection batches POST sequentially (one in
// flight); a 429 answer backs off for the daemon's advertised
// Retry-After and retries the same batch. With -start-frac > 0
// registration is skipped: the nodes are expected to come from a
// restored snapshot, and re-registering live nodes would reset their
// history and watermarks (see netserver.Register).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lns"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "obs JSONL export to replay (required)")
		addr      = flag.String("addr", "http://127.0.0.1:8080", "lnsd base URL")
		local     = flag.Bool("local", false, "replay through the in-process library path instead of a daemon")
		window    = flag.Duration("window", 0, "forecast-window length for report encoding (0 = trace sampling period)")
		perPacket = flag.Int("reports-per-packet", 8, "transition reports per uplink packet")
		perBatch  = flag.Int("batch", 64, "uplinks per ingest batch")
		startFrac = flag.Float64("start-frac", 0, "resume replay at this fraction of the batch list (skips registration)")
		stopFrac  = flag.Float64("stop-frac", 1, "stop replay at this fraction of the batch list")
		conns     = flag.Int("conns", 1, "concurrent connections, partitioned by node-ID range (per-node order preserved)")
		interval  = flag.Duration("interval", 24*time.Hour, "daemon recompute interval (for the final end-of-trace recompute)")
		wuOut     = flag.String("wu-out", "", "write the final w_u table (JSON) to this file")
		snapOut   = flag.String("snapshot-out", "", "write a server snapshot (JSON) to this file after the replay")
		waitReady = flag.Duration("wait-ready", 15*time.Second, "how long to poll the daemon's /healthz before giving up")
		verbose   = flag.Bool("v", false, "log progress")
	)
	flag.Parse()
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	if *startFrac < 0 || *stopFrac > 1 || *startFrac > *stopFrac {
		return fmt.Errorf("bad -start-frac/-stop-frac range [%v,%v]", *startFrac, *stopFrac)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	trace, err := lns.ParseObsJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	batches := lns.BuildBatches(trace, simtime.FromDuration(*window), *perPacket, *perBatch)
	lo, hi := lns.SplitFrac(*startFrac, *stopFrac, len(batches))
	finalAt := lns.LastUplinkAt(batches).Add(simtime.FromDuration(*interval))
	if *verbose {
		var uplinks int
		for _, b := range batches[lo:hi] {
			uplinks += len(b.Uplinks)
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d nodes, batches [%d,%d) of %d, %d uplinks\n",
			len(trace.Nodes), lo, hi, len(batches), uplinks)
	}

	if *local {
		return runLocal(lns.Config{Interval: simtime.FromDuration(*interval)}, trace, batches, lo, hi, *wuOut, *snapOut, finalAt)
	}
	return runHTTP(*addr, trace, batches, lo, hi, *conns, *wuOut, *snapOut, finalAt, *waitReady, *verbose)
}

// runLocal is the reference path: the same registration, batch, and
// recompute sequence applied directly to the library.
func runLocal(cfg lns.Config, trace *lns.Trace, batches []lns.Batch, lo, hi int, wuOut, snapOut string, finalAt simtime.Time) error {
	if lo != 0 {
		return fmt.Errorf("-local replays from the start (-start-frac 0); split runs only make sense against a daemon")
	}
	srv, err := lns.ReplayLocalRange(cfg, trace, batches[:hi], hi == len(batches), finalAt)
	if err != nil {
		return err
	}
	if wuOut != "" {
		var buf bytes.Buffer
		if err := lns.WriteWuTable(&buf, srv.WuTable()); err != nil {
			return err
		}
		if err := os.WriteFile(wuOut, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if snapOut != "" {
		data, err := json.Marshal(srv.Snapshot())
		if err != nil {
			return err
		}
		if err := os.WriteFile(snapOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// partitionConns splits the replayed batch range into one batch stream
// per connection: each batch's uplinks are routed by lns.ShardOf over
// the connection count (empty sub-batches dropped), so every node's
// uplinks stay on one connection in their original order. The daemon
// re-routes by ITS shard count — the two partitions need not match,
// because any per-node-affine split preserves the per-node sub-stream
// order the protocol state depends on.
func partitionConns(batches []lns.Batch, conns int) [][]lns.Batch {
	if conns <= 1 {
		return [][]lns.Batch{batches}
	}
	parts := make([][]lns.Batch, conns)
	for _, b := range batches {
		per := make([][]lns.Uplink, conns)
		for _, u := range b.Uplinks {
			c := lns.ShardOf(u.Node, conns)
			per[c] = append(per[c], u)
		}
		for c, ups := range per {
			if len(ups) > 0 {
				parts[c] = append(parts[c], lns.Batch{Uplinks: ups})
			}
		}
	}
	return parts
}

// postStream posts one connection's batches sequentially, retrying a
// 429 after the daemon's advertised Retry-After (falling back to
// retryAfterDelay when the header is absent or unparsable).
func postStream(client *http.Client, addr string, batches []lns.Batch, uplinks, retries *atomic.Int64) error {
	for i, b := range batches {
		for {
			status, retryAfter, err := postJSON(client, addr+"/v1/uplinks", b, nil)
			if err != nil {
				return fmt.Errorf("batch %d: %w", i, err)
			}
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				return fmt.Errorf("batch %d: unexpected status %d", i, status)
			}
			retries.Add(1)
			if retryAfter <= 0 {
				retryAfter = retryAfterDelay
			}
			time.Sleep(retryAfter)
		}
		uplinks.Add(int64(len(b.Uplinks)))
	}
	return nil
}

func runHTTP(addr string, trace *lns.Trace, batches []lns.Batch, lo, hi, conns int, wuOut, snapOut string, finalAt simtime.Time, waitReady time.Duration, verbose bool) error {
	if conns < 1 {
		conns = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}
	if err := awaitReady(client, addr, waitReady); err != nil {
		return err
	}

	if lo == 0 {
		req := lns.RegisterReq{}
		for _, nt := range trace.Nodes {
			req.Nodes = append(req.Nodes, lns.RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
		}
		if _, _, err := postJSON(client, addr+"/v1/register", req, nil); err != nil {
			return fmt.Errorf("register: %w", err)
		}
	}

	start := time.Now()
	var uplinks, retries atomic.Int64
	parts := partitionConns(batches[lo:hi], conns)
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for c, part := range parts {
		wg.Add(1)
		go func(c int, part []lns.Batch) {
			defer wg.Done()
			if err := postStream(client, addr, part, &uplinks, &retries); err != nil {
				errs[c] = fmt.Errorf("conn %d: %w", c, err)
			}
		}(c, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if hi == len(batches) {
		if _, _, err := postJSON(client, addr+"/v1/recompute", lns.RecomputeReq{AtMs: int64(finalAt)}, nil); err != nil {
			return fmt.Errorf("final recompute: %w", err)
		}
	}
	if verbose {
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "loadgen: %d uplinks over %d conn(s) in %.2fs (%.0f msgs/s), %d backpressure retries\n",
			uplinks.Load(), conns, elapsed, float64(uplinks.Load())/elapsed, retries.Load())
	}

	if wuOut != "" {
		if err := getToFile(client, addr+"/v1/wu", wuOut); err != nil {
			return fmt.Errorf("wu-out: %w", err)
		}
	}
	if snapOut != "" {
		if err := getToFile(client, addr+"/v1/snapshot", snapOut); err != nil {
			return fmt.Errorf("snapshot-out: %w", err)
		}
	}
	return nil
}

// retryAfterDelay is the fallback backoff on a 429 that carries no
// parsable Retry-After header.
var retryAfterDelay = 100 * time.Millisecond

func awaitReady(client *http.Client, addr string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not ready after %v: %v", addr, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// postJSON posts a JSON body and returns the status plus the parsed
// Retry-After header (0 when absent): a 429's advertised backoff is
// part of the backpressure contract, not advisory decoration.
func postJSON(client *http.Client, url string, body any, out any) (int, time.Duration, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, retryAfter, err
		}
		return resp.StatusCode, retryAfter, nil
	}
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusTooManyRequests {
		return resp.StatusCode, retryAfter, fmt.Errorf("status %s", strconv.Itoa(resp.StatusCode))
	}
	return resp.StatusCode, retryAfter, nil
}

func getToFile(client *http.Client, url, path string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
