package main

import (
	"testing"

	"repro/internal/lns"
)

// TestPartitionConnsPreservesPerNodeOrder: splitting the replay across
// connections must keep every node's uplinks on exactly one connection
// in their original relative order (the only ordering the server state
// depends on), and must not invent or drop uplinks.
func TestPartitionConnsPreservesPerNodeOrder(t *testing.T) {
	nodes := []int{0, 3, lns.ShardBlock, 2*lns.ShardBlock + 5, 7 * lns.ShardBlock}
	var batches []lns.Batch
	total := 0
	for step := 0; step < 6; step++ {
		var ups []lns.Uplink
		for _, n := range nodes {
			ups = append(ups, lns.Uplink{Node: n, AtMs: int64(step*1000 + n)})
			total++
		}
		batches = append(batches, lns.Batch{Uplinks: ups})
	}

	for _, conns := range []int{1, 2, 3, 4, 8} {
		parts := partitionConns(batches, conns)
		if len(parts) != max(1, conns) {
			t.Fatalf("conns=%d: %d parts", conns, len(parts))
		}
		seen := 0
		owner := map[int]int{}
		perNode := map[int][]int64{}
		for c, part := range parts {
			for _, b := range part {
				if len(b.Uplinks) == 0 {
					t.Fatalf("conns=%d: empty sub-batch on conn %d", conns, c)
				}
				for _, u := range b.Uplinks {
					seen++
					if prev, ok := owner[u.Node]; ok && prev != c {
						t.Fatalf("conns=%d: node %d rides conns %d and %d", conns, u.Node, prev, c)
					}
					owner[u.Node] = c
					if want := lns.ShardOf(u.Node, conns); c != want {
						t.Fatalf("conns=%d: node %d on conn %d, want %d", conns, u.Node, c, want)
					}
					perNode[u.Node] = append(perNode[u.Node], u.AtMs)
				}
			}
		}
		if seen != total {
			t.Fatalf("conns=%d: partitioned %d uplinks, want %d", conns, seen, total)
		}
		for n, ats := range perNode {
			for i := 1; i < len(ats); i++ {
				if ats[i] <= ats[i-1] {
					t.Fatalf("conns=%d: node %d order broken: %v", conns, n, ats)
				}
			}
		}
	}
}
