// Command testbed runs the concurrent virtual-time emulation of the
// paper's physical experiment (Sec. IV-B): one goroutine per LoRa node,
// a shared single channel, 24 emulated hours in a few hundred
// milliseconds of wall time.
//
// Example:
//
//	testbed -protocol bla -theta 1 -nodes 10 -duration 24h
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/experiment"
	"repro/internal/simtime"
	"repro/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protocol = flag.String("protocol", "bla", "MAC protocol: lorawan, bla, theta-only")
		theta    = flag.Float64("theta", 1, "battery charge cap (paper testbed: H-100)")
		nodes    = flag.Int("nodes", 10, "number of node goroutines")
		duration = flag.Duration("duration", 24*time.Hour, "emulated time")
		seed     = flag.Uint64("seed", 1, "scenario seed")
	)
	flag.Parse()

	opts := experiment.Options{
		Seed:     *seed,
		Nodes:    *nodes,
		Duration: simtime.FromDuration(*duration),
	}
	cfg := experiment.TestbedScenario(opts, config.ProtocolKind(*protocol), *theta)

	started := time.Now()
	res, err := testbed.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("testbed %s: %d nodes, %v emulated in %v\n\n",
		res.Label, len(res.Nodes), res.Elapsed, time.Since(started).Round(time.Millisecond))
	fmt.Printf("%-5s %-5s %-9s %-9s %-9s %-11s %-11s %s\n",
		"node", "SF", "packets", "PRR", "attempts", "latency(s)", "utility", "degradation")
	for _, n := range res.Nodes {
		fmt.Printf("%-5d %-5v %-9d %-9.3f %-9.2f %-11.1f %-11.3f %.3e (cycle %.2e)\n",
			n.ID, n.SF, n.Stats.Generated, n.Stats.PRR(), n.Stats.AvgAttempts(),
			n.Stats.AvgLatencyDelivered().Seconds(), n.Stats.AvgUtility(),
			n.Degradation.Total, n.Degradation.Cycle)
	}
	return nil
}
