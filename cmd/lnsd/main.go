// Command lnsd runs the network-server daemon: an HTTP(+JSON) LNS-style
// service around internal/netserver (via internal/lns) that ingests
// batched uplink reports, recomputes per-node degradation on the
// virtual clock carried by the traffic, disseminates the quantized w_u
// table, and snapshots/restores its full per-node state across
// restarts.
//
// Usage:
//
//	lnsd -addr 127.0.0.1:8080
//	lnsd -addr 127.0.0.1:8080 -lns-shards 4            # 4 node-ID-range worker lanes
//	lnsd -addr 127.0.0.1:8080 -restore snap.json      # resume from a snapshot
//	lnsd -addr 127.0.0.1:8080 -snapshot-exit snap.json # persist on SIGTERM
//
// See internal/lns.Daemon.Handler for the endpoint list; cmd/loadgen is
// the replay client (obs JSONL exports are the traffic format).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/lns"
	"repro/internal/netserver"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lnsd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		tempC      = flag.Float64("temp", 25, "battery temperature in Celsius")
		interval   = flag.Duration("interval", 24*time.Hour, "w_u recompute interval in simulated time")
		shards     = flag.Int("lns-shards", 1, "node-ID-range shards (worker lanes); 1 = single-lane determinism oracle")
		queue      = flag.Int("queue", 256, "per-shard ingest lane depth in batches before 429 backpressure")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429")
		restore    = flag.String("restore", "", "snapshot file to restore state from at boot")
		snapExit   = flag.String("snapshot-exit", "", "snapshot file to write on graceful shutdown")
	)
	flag.Parse()

	d, err := lns.NewDaemon(lns.Config{
		TempC:      *tempC,
		Interval:   simtime.FromDuration(*interval),
		Shards:     *shards,
		QueueDepth: *queue,
		RetryAfter: *retryAfter,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		var snap netserver.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		if err := d.RestoreState(&snap); err != nil {
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		log.Printf("lnsd: restored %d nodes from %s", len(snap.Nodes), *restore)
	}

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("lnsd: listening on %s (%d shard(s))", *addr, *shards)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("lnsd: %v, shutting down", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	if *snapExit != "" {
		snap, err := d.SnapshotState()
		if err != nil {
			return fmt.Errorf("snapshot-exit: %w", err)
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return fmt.Errorf("snapshot-exit: %w", err)
		}
		if err := os.WriteFile(*snapExit, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("snapshot-exit: %w", err)
		}
		log.Printf("lnsd: wrote snapshot to %s", *snapExit)
	}
	return nil
}
