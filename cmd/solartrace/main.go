// Command solartrace inspects the synthetic solar substrate: it prints
// daily energy statistics and an hourly profile for a chosen day, which
// is useful when calibrating panel sizes and charge thresholds.
//
// Examples:
//
//	solartrace -seed 1 -days 14
//	solartrace -profile 172          # hourly profile of midsummer day
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/energy"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "solartrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Uint64("seed", 1, "trace seed")
		days      = flag.Int("days", 14, "number of days to summarize")
		firstDay  = flag.Int("start", 0, "first day of the summary")
		profile   = flag.Int("profile", -1, "print the hourly profile of this day and exit")
		peakW     = flag.Float64("peak", 1, "panel peak power in watts")
		variation = flag.Float64("variation", 0, "per-node cloud variation (0..1)")
		nodeID    = flag.Int("node", 0, "node identity for local variation")
	)
	flag.Parse()

	trace, err := energy.NewYearTrace(energy.DefaultSolarConfig(*seed))
	if err != nil {
		return err
	}
	src := trace.NodeSource(*nodeID, *peakW, *variation)

	if *profile >= 0 {
		fmt.Printf("hourly harvest profile, day %d (%.2f W peak panel)\n", *profile, *peakW)
		for h := 0; h < 24; h++ {
			from := simtime.Time(*profile)*simtime.Time(simtime.Day) + simtime.Time(h)*simtime.Time(simtime.Hour)
			e := src.Energy(from, from.Add(simtime.Hour))
			bar := strings.Repeat("#", int(e/(*peakW*3600)*60))
			fmt.Printf("%02d:00  %8.1f J  %s\n", h, e, bar)
		}
		return nil
	}

	fmt.Printf("daily harvest, days %d..%d (%.2f W peak panel)\n", *firstDay, *firstDay+*days-1, *peakW)
	var total float64
	for d := *firstDay; d < *firstDay+*days; d++ {
		from := simtime.Time(d) * simtime.Time(simtime.Day)
		e := src.Energy(from, from.Add(simtime.Day))
		total += e
		fmt.Printf("day %3d  %8.1f J  (%.2f equivalent full-sun hours)\n", d, e, e/(*peakW*3600))
	}
	fmt.Printf("total %.1f J, mean %.1f J/day\n", total, total/float64(*days))
	return nil
}
