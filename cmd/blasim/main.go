// Command blasim runs a single LoRa network simulation and prints a
// metric summary: the workhorse for exploring scenarios outside the
// predefined experiments.
//
// Examples:
//
//	blasim -protocol lorawan -nodes 500 -duration 720h
//	blasim -protocol bla -theta 0.5 -nodes 100 -duration 8760h -json
//	blasim -protocol bla -theta 0.5 -run-to-eol -aging 10
//	blasim -downlink-loss 0.3 -outage-len 24h -outage-every 168h -wu-ttl 2h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// summary is the machine-readable output of one run.
type summary struct {
	Protocol         string  `json:"protocol"`
	Nodes            int     `json:"nodes"`
	SimulatedDays    float64 `json:"simulatedDays"`
	PRRMean          float64 `json:"prrMean"`
	PRRMin           float64 `json:"prrMin"`
	AvgAttempts      float64 `json:"avgAttempts"`
	AvgUtility       float64 `json:"avgUtility"`
	AvgLatencySec    float64 `json:"avgLatencySec"`
	TotalTxEnergyJ   float64 `json:"totalTxEnergyJ"`
	DegradationMean  float64 `json:"degradationMean"`
	DegradationVar   float64 `json:"degradationVar"`
	DegradationMax   float64 `json:"degradationMax"`
	DroppedByMACPct  float64 `json:"droppedByMacPct"`
	Brownouts        int64   `json:"brownouts,omitempty"`
	StaleWuDecisions int64   `json:"staleWuDecisions,omitempty"`
	LifespanDays     float64 `json:"lifespanDays,omitempty"`
	WallClockSeconds float64 `json:"wallClockSeconds"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blasim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protocol  = flag.String("protocol", "bla", "MAC protocol: lorawan, bla, theta-only")
		theta     = flag.Float64("theta", 0.5, "battery charge cap for bla/theta-only")
		weightB   = flag.Float64("wb", 1, "degradation weight w_b")
		nodes     = flag.Int("nodes", 100, "network size")
		gateways  = flag.Int("gateways", 0, "gateway count (0 = scenario default)")
		duration  = flag.Duration("duration", 60*24*time.Hour, "simulated time")
		seed      = flag.Uint64("seed", 1, "scenario seed")
		channels  = flag.Int("channels", 1, "125 kHz uplink channels")
		shards    = flag.Int("shards", 0, "per-cell engine shards: 0 = auto (min of gateways and CPUs), 1 = single heap")
		fixedSF   = flag.Int("sf", 0, "fix all nodes to this SF (0 = link-budget assignment)")
		forecast  = flag.String("forecast", "ewma", "forecaster: ewma, perfect, noisy")
		noise     = flag.Float64("forecast-noise", 0.3, "relative error for the noisy forecaster")
		runToEoL  = flag.Bool("run-to-eol", false, "run until the first battery reaches end of life")
		aging     = flag.Float64("aging", 1, "calendar/cycle aging acceleration factor")
		noHistory = flag.Bool("no-retx-history", false, "disable the Eq. 14 retransmission history")
		noTable   = flag.Bool("no-decision-table", false, "disable BLA's cached night-time decision table (verification escape hatch; outputs are bit-identical either way)")
		jsonOut   = flag.Bool("json", false, "emit the summary as JSON")
		nodeCSV   = flag.String("nodes-csv", "", "also write per-node results to this CSV file")

		obsOn     = flag.Bool("obs", false, "export observability (counters, per-node timelines, manifest) under -obs-dir")
		obsDir    = flag.String("obs-dir", "obs", "observability export directory (with -obs)")
		obsSample = flag.Duration("obs-sample-every", 0, "observability timeline sampling period (0 = 10m default)")

		downLoss     = flag.Float64("downlink-loss", 0, "probability of losing an ACK/beacon after PHY success")
		upLoss       = flag.Float64("uplink-loss", 0, "probability of losing a decoded uplink on the backhaul")
		upDup        = flag.Float64("uplink-dup", 0, "probability of duplicating a decoded uplink on the backhaul")
		outageStart  = flag.Duration("outage-start", 0, "first gateway outage start (with -outage-len)")
		outageLen    = flag.Duration("outage-len", 0, "gateway outage length (0 = no outages)")
		outageEvery  = flag.Duration("outage-every", 0, "outage repeat period (0 = single outage)")
		brownoutMTBF = flag.Duration("brownout-mtbf", 0, "mean time between node brownouts (0 = none)")
		wuTTL        = flag.Duration("wu-ttl", 0, "node-side w_u beacon freshness TTL (0 = never stale)")
		wuFallback   = flag.Float64("wu-stale-fallback", 1, "conservative w_u used once the beacon is stale")
	)
	flag.Parse()

	cfg := config.Default().WithSeed(*seed)
	cfg.Protocol = config.ProtocolKind(*protocol)
	cfg.Theta = *theta
	cfg.WeightB = *weightB
	cfg.Nodes = *nodes
	cfg.Duration = simtime.FromDuration(*duration)
	cfg.Channels = *channels
	if *gateways > 0 {
		cfg.Gateways = *gateways
	}
	cfg.FixedSF = lora.SpreadingFactor(*fixedSF)
	cfg.Forecast = config.ForecastKind(*forecast)
	cfg.ForecastNoise = *noise
	cfg.RunToEoL = *runToEoL
	cfg.DisableRetxHistory = *noHistory
	cfg.DisableDecisionTable = *noTable
	if *aging > 1 {
		cfg.BatteryModel.K1 *= *aging
		cfg.BatteryModel.K6 *= *aging
	}
	cfg.Faults = faults.Config{
		DownlinkLoss:    *downLoss,
		UplinkLoss:      *upLoss,
		UplinkDup:       *upDup,
		OutageStart:     simtime.FromDuration(*outageStart),
		OutageLen:       simtime.FromDuration(*outageLen),
		OutageEvery:     simtime.FromDuration(*outageEvery),
		BrownoutMTBF:    simtime.FromDuration(*brownoutMTBF),
		WuTTL:           simtime.FromDuration(*wuTTL),
		WuStaleFallback: *wuFallback,
	}

	var rec *obs.Recorder
	if *obsOn {
		rec = obs.New(obs.Manifest{
			Experiment: "blasim",
			Label:      cfg.ProtocolLabel(),
			Seed:       cfg.Seed,
			ConfigHash: cfg.Fingerprint(),
			Nodes:      cfg.Nodes,
		}, simtime.FromDuration(*obsSample))
	}

	exec := config.Exec{Shards: *shards}
	started := time.Now()
	s, err := sim.New(cfg, sim.Hooks{Obs: rec})
	if err != nil {
		return err
	}
	res, err := s.RunOpt(sim.RunOptions{Shards: exec.Shards, Workers: exec.Workers})
	if err != nil {
		return err
	}
	if rec != nil {
		if err := rec.ExportFiles(*obsDir, "run"); err != nil {
			return fmt.Errorf("obs export: %w", err)
		}
		// Like the worker count, the effective shard count is recorded
		// only here: run.jsonl and the CSVs stay byte-identical across
		// -shards values.
		err := obs.WriteInvocationManifest(filepath.Join(*obsDir, "manifest.json"), obs.InvocationManifest{
			Seed:          cfg.Seed,
			Workers:       1,
			Shards:        s.ShardsUsed(),
			SampleEveryMs: int64(rec.SampleEvery() / simtime.Millisecond),
			Runs:          []string{"run.jsonl"},
		})
		if err != nil {
			return fmt.Errorf("obs manifest: %w", err)
		}
	}

	var prr, att, util, lat, deg metrics.Welford
	var txE float64
	var generated, neverSent, brownouts, staleWu int64
	for _, n := range res.Nodes {
		prr.Add(n.Stats.PRR())
		att.Add(n.Stats.AvgAttempts())
		util.Add(n.Stats.AvgUtility())
		lat.Add(n.Stats.AvgLatencyDelivered().Seconds())
		deg.Add(n.Degradation.Total)
		txE += n.Stats.TxEnergyJ
		generated += n.Stats.Generated
		neverSent += n.Stats.NeverSent
		brownouts += n.Stats.Brownouts
		staleWu += n.Stats.StaleWuDecisions
	}
	dropped := 0.0
	if generated > 0 {
		dropped = 100 * float64(neverSent) / float64(generated)
	}
	out := summary{
		Protocol:         res.Label,
		Nodes:            len(res.Nodes),
		SimulatedDays:    res.Elapsed.Days() * *aging,
		PRRMean:          prr.Mean(),
		PRRMin:           prr.Min(),
		AvgAttempts:      att.Mean(),
		AvgUtility:       util.Mean(),
		AvgLatencySec:    lat.Mean(),
		TotalTxEnergyJ:   txE,
		DegradationMean:  deg.Mean(),
		DegradationVar:   deg.Variance(),
		DegradationMax:   deg.Max(),
		DroppedByMACPct:  dropped,
		Brownouts:        brownouts,
		StaleWuDecisions: staleWu,
		LifespanDays:     res.LifespanDays * *aging,
		WallClockSeconds: time.Since(started).Seconds(),
	}

	if *nodeCSV != "" {
		if err := writeNodeCSV(*nodeCSV, res); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("protocol          %s\n", out.Protocol)
	fmt.Printf("nodes             %d\n", out.Nodes)
	fmt.Printf("simulated         %.1f days\n", out.SimulatedDays)
	fmt.Printf("PRR               %.3f (min node %.3f)\n", out.PRRMean, out.PRRMin)
	fmt.Printf("avg TX attempts   %.2f per packet\n", out.AvgAttempts)
	fmt.Printf("avg utility       %.3f\n", out.AvgUtility)
	fmt.Printf("avg latency       %.1f s (delivered)\n", out.AvgLatencySec)
	fmt.Printf("total TX energy   %.0f J\n", out.TotalTxEnergyJ)
	fmt.Printf("degradation       mean %.5f  var %.3g  max %.5f\n",
		out.DegradationMean, out.DegradationVar, out.DegradationMax)
	fmt.Printf("dropped by MAC    %.1f%%\n", out.DroppedByMACPct)
	if out.Brownouts > 0 || out.StaleWuDecisions > 0 {
		fmt.Printf("faults            %d brownouts, %d stale-w_u decisions\n",
			out.Brownouts, out.StaleWuDecisions)
	}
	if out.LifespanDays > 0 {
		fmt.Printf("battery lifespan  %.0f days (%.2f years)\n", out.LifespanDays, out.LifespanDays/365)
	}
	fmt.Printf("wall clock        %.1f s\n", out.WallClockSeconds)
	return nil
}

// writeNodeCSV dumps one row per node for offline analysis.
func writeNodeCSV(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f,
		"node,distance_m,sf,period_s,capacity_j,generated,delivered,attempts,prr,utility,latency_s,tx_energy_j,degradation,calendar,cycle,final_soc"); err != nil {
		return err
	}
	for _, n := range res.Nodes {
		if _, err := fmt.Fprintf(f, "%d,%.0f,%d,%.0f,%.3f,%d,%d,%d,%.4f,%.4f,%.2f,%.3f,%.6g,%.6g,%.6g,%.4f\n",
			n.ID, n.DistanceM, int(n.SF), n.Period.Seconds(), n.CapacityJ,
			n.Stats.Generated, n.Stats.Delivered, n.Stats.Attempts,
			n.Stats.PRR(), n.Stats.AvgUtility(), n.Stats.AvgLatencyDelivered().Seconds(),
			n.Stats.TxEnergyJ, n.Degradation.Total, n.Degradation.Calendar,
			n.Degradation.Cycle, n.FinalSoC); err != nil {
			return err
		}
	}
	return f.Close()
}
