// Command benchjson converts `go test -bench` output into a
// machine-readable JSON record for the bench-regression harness
// (`make bench` pipes into it and writes BENCH_<date>.json).
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson -out BENCH_2025-01-02.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any
// custom b.ReportMetric units (prr, lorawan-lifespan-days, ...) land in
// the per-benchmark "metrics" map, and each benchmark records the CPU
// count go test ran it with (the -N name suffix). When both sweep
// worker-scaling benchmarks are present, the record also carries their
// wall-clock ratio, the headline number of the parallel experiment
// engine.
//
// Unless -baseline is "none", the run is also diffed against a prior
// record (default: the newest other BENCH_*.json in the working
// directory). Benchmarks whose allocs/op or bytes/op grew by more than
// -maxregress are flagged on stderr and recorded in the "regressions"
// array; -failregress turns them into a non-zero exit for CI. Timing is
// not gated by default because ns/op is noisy across machines, but
// same-machine comparisons can opt in with -nsregress (0 disables); the
// same threshold then also gates declines in throughput metrics (custom
// units ending in "/s", e.g. the simulator's sim-days/s, where lower is
// the regression direction).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string `json:"name"`
	CPUs int    `json:"cpus"`
	// Gomaxprocs is the GOMAXPROCS the benchmark itself ran with — the
	// -N name suffix, same value as CPUs. Recorded per entry (not just
	// once per record) so a mixed file, or a record assembled from
	// several runs, keeps the provenance of every scaling-sensitive
	// number next to the number.
	Gomaxprocs  int                `json:"gomaxprocs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Regression is one metric that grew past its threshold relative to the
// baseline record.
type Regression struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"` // "allocs/op", "B/op", or "ns/op"
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Ratio     float64 `json:"ratio"` // current / baseline
}

// Record is the whole run.
type Record struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SweepParallelSpeedup is BenchmarkSweepWorkers1 ns/op divided by
	// BenchmarkSweepWorkersMax ns/op: the fan-out engine's wall-clock
	// gain on this machine. Omitted when either benchmark is absent.
	SweepParallelSpeedup float64 `json:"sweep_parallel_speedup,omitempty"`
	// SweepParallelCPUs is the CPU count the Max-side sweep benchmark ran
	// with, so the speedup can be judged against the available cores.
	SweepParallelCPUs int `json:"sweep_parallel_cpus,omitempty"`
	// ScaleLadder collects the sim-days/s throughput of every Sweep*Nodes
	// rung present in the run (1k, 10k, 100k) plus the SimulatorYear
	// long-horizon rung, the single-machine scaling headline. Each rung
	// is also diffed against the baseline like any other "/s" metric
	// when -nsregress is set.
	ScaleLadder map[string]float64 `json:"scale_ladder,omitempty"`
	// LNSIngest surfaces the daemon-path headline numbers from
	// BenchmarkLNSIngest (ingest-msgs/s throughput and recompute-ms
	// latency over the HTTP ingest path). Omitted when the rung did not
	// run; the "/s" metric rides the -nsregress throughput gate like
	// every other rate.
	LNSIngest map[string]float64 `json:"lns_ingest,omitempty"`
	// LNSShardScaling collects the ingest-msgs/s of every
	// BenchmarkLNSIngestSharded/shards=N sub-benchmark present in the run
	// (keyed "shards=N"), plus "speedup_s4_over_s1" when both the
	// single-lane baseline and the 4-shard rung ran — the shard-scaling
	// headline of the fleet-scale ingest path. On a single-core runner
	// the speedup hovers around 1.0 (the lanes serialize); it only
	// becomes a scaling claim on a multi-core host.
	LNSShardScaling map[string]float64 `json:"lns_shard_scaling,omitempty"`
	// Baseline is the prior record this run was diffed against.
	Baseline string `json:"baseline,omitempty"`
	// Regressions flags allocs/op and bytes/op growth beyond the
	// -maxregress threshold versus the baseline.
	Regressions []Regression `json:"regressions,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	baseline := flag.String("baseline", "auto",
		"prior BENCH_*.json to diff against ('auto' = newest other record, 'none' = skip)")
	maxregress := flag.Float64("maxregress", 0.10,
		"allowed fractional growth in allocs/op and B/op before flagging a regression")
	nsregress := flag.Float64("nsregress", 0,
		"allowed fractional growth in ns/op before flagging a regression (0 = don't gate timing; only meaningful when the baseline ran on this machine)")
	failregress := flag.Bool("failregress", false, "exit non-zero when regressions are found")
	flag.Parse()

	rec := Record{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if w1, wMax := find(rec.Benchmarks, "SweepWorkers1"), find(rec.Benchmarks, "SweepWorkersMax"); w1 != nil && wMax != nil && wMax.NsPerOp > 0 {
		rec.SweepParallelSpeedup = w1.NsPerOp / wMax.NsPerOp
		rec.SweepParallelCPUs = wMax.CPUs
	}
	rec.ScaleLadder = buildScaleLadder(rec.Benchmarks)
	if b := find(rec.Benchmarks, "LNSIngest"); b != nil && len(b.Metrics) > 0 {
		rec.LNSIngest = b.Metrics
	}
	rec.LNSShardScaling = buildShardScaling(rec.Benchmarks)
	for _, w := range singleProcWarnings(&rec) {
		fmt.Fprintln(os.Stderr, "benchjson: WARNING", w)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}

	if *baseline != "none" && *baseline != "" {
		basePath := *baseline
		if basePath == "auto" {
			basePath = latestRecord(".", path)
		}
		if basePath != "" {
			base, err := readRecord(basePath)
			if err != nil {
				fatal(fmt.Errorf("baseline %s: %w", basePath, err))
			}
			rec.Baseline = filepath.Base(basePath)
			rec.Regressions = diffRecords(base, &rec, *maxregress, *nsregress)
			for _, r := range rec.Regressions {
				limit := *maxregress
				if r.Metric == "ns/op" || strings.HasSuffix(r.Metric, "/s") {
					limit = *nsregress
				}
				fmt.Fprintf(os.Stderr,
					"benchjson: REGRESSION %s %s: %.4g -> %.4g (%.2fx, threshold %.2fx vs %s)\n",
					r.Benchmark, r.Metric, r.Baseline, r.Current, r.Ratio, 1+limit, rec.Baseline)
			}
		}
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), path)
	if *failregress && len(rec.Regressions) > 0 {
		fatal(fmt.Errorf("%d benchmark metric(s) regressed beyond their thresholds", len(rec.Regressions)))
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   	  12	  95318105 ns/op	  0.914 prr	  64 B/op	  2 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	cpus := 1
	// The -N suffix go test appends is the GOMAXPROCS the benchmark ran
	// with (absent when it is 1).
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			cpus = n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, CPUs: cpus, Gomaxprocs: cpus, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// diffRecords compares every benchmark present in both records (matched
// by name and CPU count) and returns the metrics that moved past their
// thresholds in the regression direction. allocs/op and B/op are
// deterministic and always gated by maxregress; timing is too noisy
// across machines for an unconditional gate, so ns/op growth and
// throughput decline (custom rate metrics, unit ending in "/s") are
// only diffed when nsregress > 0 (same-machine runs).
func diffRecords(base, cur *Record, maxregress, nsregress float64) []Regression {
	type check struct {
		metric   string
		old, new float64
		limit    float64
		// lowerIsWorse flips the gate for throughput metrics: a decline
		// below old/(1+limit) is the regression, not growth above it.
		lowerIsWorse bool
	}
	var regs []Regression
	for i := range cur.Benchmarks {
		b := &cur.Benchmarks[i]
		old := findCPU(base.Benchmarks, b.Name, b.CPUs)
		if old == nil {
			continue
		}
		checks := []check{
			{metric: "allocs/op", old: old.AllocsPerOp, new: b.AllocsPerOp, limit: maxregress},
			{metric: "B/op", old: old.BytesPerOp, new: b.BytesPerOp, limit: maxregress},
		}
		if nsregress > 0 {
			checks = append(checks, check{metric: "ns/op", old: old.NsPerOp, new: b.NsPerOp, limit: nsregress})
			for unit, v := range b.Metrics {
				if !strings.HasSuffix(unit, "/s") {
					continue
				}
				if ov, ok := old.Metrics[unit]; ok {
					checks = append(checks, check{metric: unit, old: ov, new: v, limit: nsregress, lowerIsWorse: true})
				}
			}
		}
		for _, m := range checks {
			if m.old <= 0 {
				continue
			}
			if m.lowerIsWorse {
				if m.new >= m.old/(1+m.limit) {
					continue
				}
			} else if m.new <= m.old*(1+m.limit) {
				continue
			}
			regs = append(regs, Regression{
				Benchmark: b.Name,
				Metric:    m.metric,
				Baseline:  m.old,
				Current:   m.new,
				Ratio:     m.new / m.old,
			})
		}
	}
	return regs
}

// latestRecord returns the BENCH_*.json in dir with the newest date
// embedded in its filename, other than the file being written, or ""
// when none qualifies. Selection is by the parsed BENCH_<YYYY-MM-DD>
// date — NOT by mtime (a checkout or copy rewrites those) and NOT by
// raw string order (which would rank a stray BENCH_backup.json above
// every dated record). Files whose name carries no parseable date are
// ignored; among same-date records the lexicographically last name wins
// so the choice stays deterministic.
func latestRecord(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	best := ""
	var bestDate time.Time
	for _, m := range matches {
		if filepath.Base(m) == filepath.Base(exclude) {
			continue
		}
		d, ok := recordDate(filepath.Base(m))
		if !ok {
			continue
		}
		if best == "" || !d.Before(bestDate) {
			best, bestDate = m, d
		}
	}
	return best
}

// recordDate parses the date embedded in a BENCH_*.json filename
// (BENCH_2026-08-06.json, BENCH_2026-08-06_rerun.json, ...).
func recordDate(name string) (time.Time, bool) {
	s := strings.TrimPrefix(name, "BENCH_")
	if len(s) < len("2006-01-02") {
		return time.Time{}, false
	}
	d, err := time.Parse("2006-01-02", s[:len("2006-01-02")])
	if err != nil {
		return time.Time{}, false
	}
	return d, true
}

func readRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// buildScaleLadder extracts the sim-days/s value of each scale-ladder
// rung present in the run: the three Sweep*Nodes network sizes plus the
// SimulatorYear long-horizon single run. Rungs missing from the run (or
// not reporting the metric) are simply absent; nil means no rung ran.
func buildScaleLadder(bs []Benchmark) map[string]float64 {
	var ladder map[string]float64
	for _, name := range []string{"Sweep1000Nodes", "Sweep10kNodes", "Sweep100kNodes", "SimulatorYear"} {
		if b := find(bs, name); b != nil {
			if v, ok := b.Metrics["sim-days/s"]; ok {
				if ladder == nil {
					ladder = make(map[string]float64)
				}
				ladder[name] = v
			}
		}
	}
	return ladder
}

// buildShardScaling extracts ingest-msgs/s from every
// LNSIngestSharded/shards=N sub-benchmark and, when both endpoints are
// present, the 4-shard-over-1-shard throughput ratio. Nil when the
// sharded rung did not run.
func buildShardScaling(bs []Benchmark) map[string]float64 {
	var scaling map[string]float64
	const prefix = "LNSIngestSharded/"
	for i := range bs {
		if !strings.HasPrefix(bs[i].Name, prefix) {
			continue
		}
		if v, ok := bs[i].Metrics["ingest-msgs/s"]; ok {
			if scaling == nil {
				scaling = make(map[string]float64)
			}
			scaling[strings.TrimPrefix(bs[i].Name, prefix)] = v
		}
	}
	if s1, s4 := scaling["shards=1"], scaling["shards=4"]; s1 > 0 && s4 > 0 {
		scaling["speedup_s4_over_s1"] = s4 / s1
	}
	return scaling
}

// singleProcWarnings flags speedup-style record fields whose source
// benchmarks ran at GOMAXPROCS=1: with one scheduler thread the shard
// lanes and sweep workers serialize, so a ratio near 1.0 is a property
// of the runner, not the code, and must not be read (or diffed) as a
// scaling result.
func singleProcWarnings(rec *Record) []string {
	var warns []string
	if rec.LNSShardScaling["speedup_s4_over_s1"] > 0 {
		if b := find(rec.Benchmarks, "LNSIngestSharded/shards=4"); b != nil && b.Gomaxprocs <= 1 {
			warns = append(warns, fmt.Sprintf(
				"lns_shard_scaling speedup_s4_over_s1=%.2f was measured at GOMAXPROCS=1; the shard lanes serialized, so the ratio is not a scaling claim",
				rec.LNSShardScaling["speedup_s4_over_s1"]))
		}
	}
	if rec.SweepParallelSpeedup > 0 && rec.SweepParallelCPUs <= 1 {
		warns = append(warns, fmt.Sprintf(
			"sweep_parallel_speedup=%.2f was measured at GOMAXPROCS=1; the worker pool serialized, so the ratio is not a scaling claim",
			rec.SweepParallelSpeedup))
	}
	return warns
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

// findCPU matches a benchmark by name and CPU count; records written
// before CPU tracking (CPUs == 0) match any count so old baselines stay
// usable.
func findCPU(bs []Benchmark, name string, cpus int) *Benchmark {
	for i := range bs {
		if bs[i].Name == name && (bs[i].CPUs == cpus || bs[i].CPUs == 0) {
			return &bs[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
