// Command benchjson converts `go test -bench` output into a
// machine-readable JSON record for the bench-regression harness
// (`make bench` pipes into it and writes BENCH_<date>.json).
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson -out BENCH_2025-01-02.json
//
// Standard metrics (ns/op, B/op, allocs/op) get dedicated fields; any
// custom b.ReportMetric units (prr, lorawan-lifespan-days, ...) land in
// the per-benchmark "metrics" map. When both sweep worker-scaling
// benchmarks are present, the record also carries their wall-clock
// ratio, the headline number of the parallel experiment engine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the whole run.
type Record struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SweepParallelSpeedup is BenchmarkSweepWorkers1 ns/op divided by
	// BenchmarkSweepWorkersMax ns/op: the fan-out engine's wall-clock
	// gain on this machine. Omitted when either benchmark is absent.
	SweepParallelSpeedup float64 `json:"sweep_parallel_speedup,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	flag.Parse()

	rec := Record{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rec.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	if w1, wMax := find(rec.Benchmarks, "SweepWorkers1"), find(rec.Benchmarks, "SweepWorkersMax"); w1 != nil && wMax != nil && wMax.NsPerOp > 0 {
		rec.SweepParallelSpeedup = w1.NsPerOp / wMax.NsPerOp
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rec.Date + ".json"
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), path)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   	  12	  95318105 ns/op	  0.914 prr	  64 B/op	  2 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
