package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepWorkers1-4   \t       2\t 698211651 ns/op\t    0.914 h50-prr\t  64 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "SweepWorkers1" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 698211651 || b.BytesPerOp != 64 || b.AllocsPerOp != 2 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["h50-prr"] != 0.914 {
		t.Errorf("custom metric lost: %+v", b.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-4 notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}

func TestParseLineKeepsHyphenatedNames(t *testing.T) {
	// A trailing -N is only stripped when numeric (the GOMAXPROCS
	// suffix); hyphenated benchmark names survive.
	b, ok := parseLine("BenchmarkFoo-bar 10 5 ns/op")
	if !ok || b.Name != "Foo-bar" {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}
