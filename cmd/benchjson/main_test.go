package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSweepWorkers1-4   \t       2\t 698211651 ns/op\t    0.914 h50-prr\t  64 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if b.Name != "SweepWorkers1" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", b.Name)
	}
	if b.CPUs != 4 {
		t.Errorf("cpus = %d, want 4 (from the -4 suffix)", b.CPUs)
	}
	if b.Iterations != 2 || b.NsPerOp != 698211651 || b.BytesPerOp != 64 || b.AllocsPerOp != 2 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["h50-prr"] != 0.914 {
		t.Errorf("custom metric lost: %+v", b.Metrics)
	}
}

func TestParseLineDefaultsToOneCPU(t *testing.T) {
	// go test omits the -N suffix when GOMAXPROCS is 1.
	b, ok := parseLine("BenchmarkSimulatorDay 10 5234 ns/op")
	if !ok || b.CPUs != 1 {
		t.Errorf("got %+v ok=%v, want cpus=1", b, ok)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-4 notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}

func TestParseLineKeepsHyphenatedNames(t *testing.T) {
	// A trailing -N is only stripped when numeric (the GOMAXPROCS
	// suffix); hyphenated benchmark names survive.
	b, ok := parseLine("BenchmarkFoo-bar 10 5 ns/op")
	if !ok || b.Name != "Foo-bar" {
		t.Errorf("got %+v ok=%v", b, ok)
	}
}

func TestDiffRecordsFlagsGrowth(t *testing.T) {
	base := &Record{Benchmarks: []Benchmark{
		{Name: "SimulatorDay", CPUs: 1, AllocsPerOp: 10000, BytesPerOp: 1 << 20},
		{Name: "Fig2Degradation", CPUs: 1, AllocsPerOp: 500, BytesPerOp: 4096},
	}}
	cur := &Record{Benchmarks: []Benchmark{
		// allocs/op 2x up, B/op within threshold.
		{Name: "SimulatorDay", CPUs: 1, AllocsPerOp: 20000, BytesPerOp: 1 << 20},
		// Both within 10%.
		{Name: "Fig2Degradation", CPUs: 1, AllocsPerOp: 540, BytesPerOp: 4100},
		// No baseline entry: ignored.
		{Name: "Sweep1000Nodes", CPUs: 1, AllocsPerOp: 9e9},
	}}
	regs := diffRecords(base, cur, 0.10, 0)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the SimulatorDay allocs/op growth", regs)
	}
	r := regs[0]
	if r.Benchmark != "SimulatorDay" || r.Metric != "allocs/op" || r.Ratio != 2 {
		t.Errorf("regression = %+v", r)
	}
}

func TestDiffRecordsImprovementIsNotARegression(t *testing.T) {
	base := &Record{Benchmarks: []Benchmark{{Name: "SimulatorDay", CPUs: 1, AllocsPerOp: 57759, BytesPerOp: 5315392}}}
	cur := &Record{Benchmarks: []Benchmark{{Name: "SimulatorDay", CPUs: 1, AllocsPerOp: 9944, BytesPerOp: 3936432}}}
	if regs := diffRecords(base, cur, 0.10, 0); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %+v", regs)
	}
}

func TestDiffRecordsMatchesByCPUCount(t *testing.T) {
	// The same benchmark at a different CPU count is a different
	// workload; it must not be compared across counts.
	base := &Record{Benchmarks: []Benchmark{{Name: "SweepWorkersMax", CPUs: 4, AllocsPerOp: 100}}}
	cur := &Record{Benchmarks: []Benchmark{{Name: "SweepWorkersMax", CPUs: 1, AllocsPerOp: 1000}}}
	if regs := diffRecords(base, cur, 0.10, 0); len(regs) != 0 {
		t.Errorf("cross-CPU-count comparison happened: %+v", regs)
	}
	// Pre-CPU-tracking baselines (cpus absent = 0) still match.
	base.Benchmarks[0].CPUs = 0
	regs := diffRecords(base, cur, 0.10, 0)
	if len(regs) != 1 {
		t.Errorf("legacy baseline should match any CPU count: %+v", regs)
	}
}

func TestDiffRecordsGatesTimingOnlyWhenAsked(t *testing.T) {
	base := &Record{Benchmarks: []Benchmark{{Name: "SimulatorDay", CPUs: 1, NsPerOp: 1e8, AllocsPerOp: 10000}}}
	cur := &Record{Benchmarks: []Benchmark{{Name: "SimulatorDay", CPUs: 1, NsPerOp: 2e8, AllocsPerOp: 10000}}}
	if regs := diffRecords(base, cur, 0.10, 0); len(regs) != 0 {
		t.Errorf("ns/op gated with nsregress=0: %+v", regs)
	}
	regs := diffRecords(base, cur, 0.10, 0.25)
	if len(regs) != 1 || regs[0].Metric != "ns/op" || regs[0].Ratio != 2 {
		t.Errorf("regressions = %+v, want the 2x ns/op growth", regs)
	}
	// Timing growth within the ns threshold stays quiet.
	cur.Benchmarks[0].NsPerOp = 1.2e8
	if regs := diffRecords(base, cur, 0.10, 0.25); len(regs) != 0 {
		t.Errorf("within-threshold timing flagged: %+v", regs)
	}
}

func TestLatestRecordPicksNewestOther(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-08-01.json", "BENCH_2026-08-06.json", "BENCH_2026-07-15.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := latestRecord(dir, "BENCH_2026-08-06.json")
	if filepath.Base(got) != "BENCH_2026-08-01.json" {
		t.Errorf("latest = %q, want BENCH_2026-08-01.json (newest excluding the output)", got)
	}
	if got := latestRecord(t.TempDir(), "BENCH_x.json"); got != "" {
		t.Errorf("empty dir should yield no baseline, got %q", got)
	}
}

func TestLatestRecordSelectsByEmbeddedDate(t *testing.T) {
	// Regression: baseline choice must follow the date in the filename,
	// never raw string order or file mtime. BENCH_backup.json sorts after
	// every dated name lexicographically, and the oldest record carries
	// the newest mtime — both decoys.
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_2026-07-15.json",
		"BENCH_2026-08-01.json",
		"BENCH_backup.json", // undated: must be ignored
		"BENCH_notes.json",  // undated: must be ignored
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest dated record last so mtime order disagrees with
	// date order.
	old := filepath.Join(dir, "BENCH_2026-07-15.json")
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(old, future, future); err != nil {
		t.Fatal(err)
	}
	got := latestRecord(dir, "BENCH_2026-08-08.json")
	if filepath.Base(got) != "BENCH_2026-08-01.json" {
		t.Errorf("latest = %q, want BENCH_2026-08-01.json (newest embedded date)", got)
	}
	// A directory holding only undated records yields no baseline rather
	// than an arbitrary pick.
	undated := t.TempDir()
	if err := os.WriteFile(filepath.Join(undated, "BENCH_backup.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := latestRecord(undated, "BENCH_2026-08-08.json"); got != "" {
		t.Errorf("undated-only dir should yield no baseline, got %q", got)
	}
}

func TestRecordDate(t *testing.T) {
	cases := []struct {
		name string
		ok   bool
		date string
	}{
		{"BENCH_2026-08-06.json", true, "2026-08-06"},
		{"BENCH_2026-08-06_rerun.json", true, "2026-08-06"},
		{"BENCH_backup.json", false, ""},
		{"BENCH_26-8-6.json", false, ""},
		{"BENCH_.json", false, ""},
	}
	for _, c := range cases {
		d, ok := recordDate(c.name)
		if ok != c.ok {
			t.Errorf("recordDate(%q) ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && d.Format("2006-01-02") != c.date {
			t.Errorf("recordDate(%q) = %v, want %s", c.name, d, c.date)
		}
	}
}

func TestDiffRecordsGatesThroughputDecline(t *testing.T) {
	base := &Record{Benchmarks: []Benchmark{{
		Name: "Sweep1000Nodes", CPUs: 1, NsPerOp: 3e8,
		Metrics: map[string]float64{"sim-days/s": 3.0, "h50-prr": 0.9},
	}}}
	cur := &Record{Benchmarks: []Benchmark{{
		Name: "Sweep1000Nodes", CPUs: 1, NsPerOp: 3e8,
		Metrics: map[string]float64{"sim-days/s": 2.0, "h50-prr": 0.5},
	}}}
	// Rate metrics ride the same same-machine opt-in as ns/op.
	if regs := diffRecords(base, cur, 0.10, 0); len(regs) != 0 {
		t.Errorf("throughput gated with nsregress=0: %+v", regs)
	}
	regs := diffRecords(base, cur, 0.10, 0.25)
	if len(regs) != 1 || regs[0].Metric != "sim-days/s" {
		t.Fatalf("regressions = %+v, want exactly the sim-days/s decline", regs)
	}
	if r := regs[0]; r.Baseline != 3.0 || r.Current != 2.0 {
		t.Errorf("regression = %+v", r)
	}
	// A decline within the threshold, or an improvement, stays quiet —
	// lower is the regression direction for "/s" units.
	cur.Benchmarks[0].Metrics["sim-days/s"] = 2.9
	if regs := diffRecords(base, cur, 0.10, 0.25); len(regs) != 0 {
		t.Errorf("within-threshold throughput decline flagged: %+v", regs)
	}
	cur.Benchmarks[0].Metrics["sim-days/s"] = 9.9
	if regs := diffRecords(base, cur, 0.10, 0.25); len(regs) != 0 {
		t.Errorf("throughput improvement flagged: %+v", regs)
	}
}

func TestBuildScaleLadderIncludesSimulatorYear(t *testing.T) {
	bs := []Benchmark{
		{Name: "Sweep1000Nodes", Metrics: map[string]float64{"sim-days/s": 5.9}},
		{Name: "SimulatorYear", Metrics: map[string]float64{"sim-days/s": 85.2}},
		{Name: "SimulatorDay"}, // not a ladder rung
		{Name: "Sweep10kNodes", Metrics: map[string]float64{"prr": 0.98}}, // no throughput metric
	}
	ladder := buildScaleLadder(bs)
	want := map[string]float64{"Sweep1000Nodes": 5.9, "SimulatorYear": 85.2}
	if len(ladder) != len(want) {
		t.Fatalf("ladder = %v, want %v", ladder, want)
	}
	for k, v := range want {
		if ladder[k] != v {
			t.Errorf("ladder[%q] = %v, want %v", k, ladder[k], v)
		}
	}
	if buildScaleLadder(nil) != nil {
		t.Error("empty run should produce a nil ladder (omitted from JSON)")
	}
}

func TestParseLineRecordsGomaxprocs(t *testing.T) {
	b, ok := parseLine("BenchmarkLNSIngestSharded/shards=4-8   	 5	 2000 ns/op	 120000 ingest-msgs/s")
	if !ok || b.Gomaxprocs != 8 {
		t.Fatalf("gomaxprocs = %d, want 8", b.Gomaxprocs)
	}
	b, ok = parseLine("BenchmarkSimulatorDay   	 3	 95318105 ns/op")
	if !ok || b.Gomaxprocs != 1 {
		t.Fatalf("suffix-less gomaxprocs = %d, want 1", b.Gomaxprocs)
	}
}

func TestSingleProcWarnings(t *testing.T) {
	rec := &Record{
		Benchmarks: []Benchmark{
			{Name: "LNSIngestSharded/shards=1", CPUs: 1, Gomaxprocs: 1},
			{Name: "LNSIngestSharded/shards=4", CPUs: 1, Gomaxprocs: 1},
		},
		LNSShardScaling:      map[string]float64{"shards=1": 100, "shards=4": 101, "speedup_s4_over_s1": 1.01},
		SweepParallelSpeedup: 1.02,
		SweepParallelCPUs:    1,
	}
	warns := singleProcWarnings(rec)
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want both speedup fields flagged", warns)
	}

	// Multi-proc runs carry real scaling information: no warning.
	rec.Benchmarks[1].Gomaxprocs = 4
	rec.SweepParallelCPUs = 4
	if warns := singleProcWarnings(rec); len(warns) != 0 {
		t.Fatalf("unexpected warnings on multi-proc run: %v", warns)
	}
}
