# Build/test/bench harness. `make bench` is the bench-regression
# harness: it runs every benchmark with -benchmem and records a
# machine-readable BENCH_<date>.json (ns/op, B/op, allocs/op, headline
# domain metrics, and the sweep worker-scaling speedup) via
# cmd/benchjson.

GO        ?= go
DATE      := $(shell date -u +%Y-%m-%d)
BENCHRE   ?= .
COUNT     ?= 1
BENCHTIME ?= 1s
# Benchmarks inherit the invoking shell's GOMAXPROCS unless pinned;
# without this the worker-scaling pair (SweepWorkers1 vs Max) measures
# nothing on a constrained runner. NPROC=4 overrides the probe width.
NPROC     ?= $(shell nproc)

.PHONY: all build test race vet bench profile lns-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmarks run serially (-run '^$' skips tests); BENCHRE narrows the
# set (`make bench BENCHRE=Sweep`), BENCHTIME=1x gives a fast smoke
# record. GOMAXPROCS is pinned to NPROC so the sweep worker-scaling
# pair sees every core; cmd/benchjson records each benchmark's CPU
# count and diffs allocs/op and B/op against the newest prior
# BENCH_*.json (BENCHJSONFLAGS="-failregress" gates CI on it;
# BENCHJSONFLAGS="-nsregress 0.25" also gates ns/op on same-machine
# comparisons, where timing noise is bounded).
bench: build
	GOMAXPROCS=$(NPROC) $(GO) test -run '^$$' -bench '$(BENCHRE)' -benchmem -count $(COUNT) -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json $(BENCHJSONFLAGS)

# Single-run hot-path profiling: BenchmarkSweep1000Nodes under the CPU
# and heap profilers, followed by the top-10 flat entries of each — the
# quickest read on where the next single-core sim-days/s win lives.
# PROFRE narrows differently (`make profile PROFRE=SimulatorYear`);
# profiles land in ./prof/ for interactive follow-up
# (`go tool pprof prof/cpu.out`).
PROFRE ?= Sweep1000Nodes

profile: build
	mkdir -p prof
	GOMAXPROCS=$(NPROC) $(GO) test -run '^$$' -bench '$(PROFRE)' -benchmem -count 1 -benchtime $(BENCHTIME) \
		-cpuprofile prof/cpu.out -memprofile prof/mem.out .
	@echo '--- cpu top 10 (flat) ---'
	$(GO) tool pprof -top -nodecount=10 prof/cpu.out
	@echo '--- heap top 10 (alloc_space, flat) ---'
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space prof/mem.out

# Daemon end-to-end smoke: generate a golden obs export with the
# simulator, replay it through the in-process library path, then through
# a live lnsd over HTTP — once single-lane and once with 4 shards fed by
# 4 concurrent loadgen connections — and diff the disseminated w_u
# tables AND the snapshots: all must be byte-identical. A further pass
# replays half the stream, snapshots, restarts lnsd from the snapshot,
# resumes, and diffs the wu table again: snapshot/restore must be
# invisible in the output. (The resume leg diffs wu only — its snapshot
# legitimately records a different first-recompute slot because its
# barrier history differs from an uninterrupted run.)
LNSTMP := $(shell mktemp -d /tmp/lns-smoke.XXXXXX)
LNSADDR ?= 127.0.0.1:18080

lns-smoke: build
	$(GO) run ./cmd/experiments -run faults -scale quick -nodes 10 -duration 48h \
		-obs -obs-dir $(LNSTMP)/obs > /dev/null
	$(GO) build -o $(LNSTMP)/lnsd ./cmd/lnsd
	$(GO) build -o $(LNSTMP)/loadgen ./cmd/loadgen
	$(LNSTMP)/loadgen -in $(LNSTMP)/obs/faults_s00_r00.jsonl -local \
		-wu-out $(LNSTMP)/wu-lib.json -snapshot-out $(LNSTMP)/snap-lib.json
	$(LNSTMP)/lnsd -addr $(LNSADDR) & echo $$! > $(LNSTMP)/pid; \
		$(LNSTMP)/loadgen -in $(LNSTMP)/obs/faults_s00_r00.jsonl -addr http://$(LNSADDR) \
			-wu-out $(LNSTMP)/wu-http.json -snapshot-out $(LNSTMP)/snap-http.json -v; \
		kill `cat $(LNSTMP)/pid`
	diff $(LNSTMP)/wu-lib.json $(LNSTMP)/wu-http.json
	diff $(LNSTMP)/snap-lib.json $(LNSTMP)/snap-http.json
	$(LNSTMP)/lnsd -addr $(LNSADDR) -lns-shards 4 & echo $$! > $(LNSTMP)/pid; \
		$(LNSTMP)/loadgen -in $(LNSTMP)/obs/faults_s00_r00.jsonl -addr http://$(LNSADDR) \
			-conns 4 -wu-out $(LNSTMP)/wu-s4.json -snapshot-out $(LNSTMP)/snap-s4.json; \
		kill `cat $(LNSTMP)/pid`
	diff $(LNSTMP)/wu-lib.json $(LNSTMP)/wu-s4.json
	diff $(LNSTMP)/snap-lib.json $(LNSTMP)/snap-s4.json
	$(LNSTMP)/lnsd -addr $(LNSADDR) & echo $$! > $(LNSTMP)/pid; \
		$(LNSTMP)/loadgen -in $(LNSTMP)/obs/faults_s00_r00.jsonl -addr http://$(LNSADDR) \
			-stop-frac 0.5 -snapshot-out $(LNSTMP)/snap.json; \
		kill `cat $(LNSTMP)/pid`
	$(LNSTMP)/lnsd -addr $(LNSADDR) -restore $(LNSTMP)/snap.json & echo $$! > $(LNSTMP)/pid; \
		$(LNSTMP)/loadgen -in $(LNSTMP)/obs/faults_s00_r00.jsonl -addr http://$(LNSADDR) \
			-start-frac 0.5 -wu-out $(LNSTMP)/wu-resume.json; \
		kill `cat $(LNSTMP)/pid`
	diff $(LNSTMP)/wu-lib.json $(LNSTMP)/wu-resume.json
	rm -rf $(LNSTMP)
	@echo "lns-smoke: sharded and single-lane daemon replay byte-identical to library path (wu + snapshot); snapshot/restore resume byte-identical (wu)"

clean:
	rm -f BENCH_*.json
	rm -rf prof
