# Build/test/bench harness. `make bench` is the bench-regression
# harness: it runs every benchmark with -benchmem and records a
# machine-readable BENCH_<date>.json (ns/op, B/op, allocs/op, headline
# domain metrics, and the sweep worker-scaling speedup) via
# cmd/benchjson.

GO        ?= go
DATE      := $(shell date -u +%Y-%m-%d)
BENCHRE   ?= .
COUNT     ?= 1
BENCHTIME ?= 1s

.PHONY: all build test race vet bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmarks run serially (-run '^$' skips tests); BENCHRE narrows the
# set (`make bench BENCHRE=Sweep`), BENCHTIME=1x gives a fast smoke
# record.
bench: build
	$(GO) test -run '^$$' -bench '$(BENCHRE)' -benchmem -count $(COUNT) -benchtime $(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json

clean:
	rm -f BENCH_*.json
