package repro_test

// One benchmark per paper artifact: each regenerates a scaled-down
// version of the corresponding figure/table workload and reports the
// headline domain metric alongside the usual time/op. Run everything
// with:
//
//	go test -bench=. -benchmem
//
// Paper-scale regeneration lives in cmd/experiments (-scale paper).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/battery"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/lns"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/utility"
)

// benchOpts is the scaled workload shared by the figure benchmarks.
func benchOpts() experiment.Options {
	return experiment.Options{Seed: 3, Nodes: 15, Duration: 2 * simtime.Day, AgingFactor: 1500}
}

func parseCell(b *testing.B, s string) float64 {
	b.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func BenchmarkFig2Degradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty fig2")
		}
	}
}

func BenchmarkFig3Influence(b *testing.B) {
	o := benchOpts()
	o.Duration = 9 * simtime.Day
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig3(o); err != nil {
			b.Fatal(err)
		}
	}
}

// runSweepOnce is shared by the Fig. 4/5/6 benchmarks.
func runSweepOnce(b *testing.B) []*experiment.Table {
	b.Helper()
	tables, err := experiment.ThetaSweep(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return tables
}

func BenchmarkFig4WindowSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runSweepOnce(b)
		if tables[0].ID != "fig4" || len(tables[0].Rows) == 0 {
			b.Fatal("missing fig4 rows")
		}
	}
}

func BenchmarkFig5Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runSweepOnce(b)
		if tables[1].ID != "fig5" || len(tables[1].Rows) == 0 {
			b.Fatal("missing fig5 rows")
		}
	}
}

func BenchmarkFig6Network(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runSweepOnce(b)
		if tables[2].ID != "fig6" || len(tables[2].Rows) == 0 {
			b.Fatal("missing fig6 rows")
		}
	}
}

// benchSweep runs the four-variant sweep at a fixed worker count and
// reports the mean H-50 PRR as the headline domain metric. The pair of
// benchmarks below is the bench-regression harness's speedup probe:
// Workers=GOMAXPROCS vs Workers=1 on the identical workload.
func benchSweep(b *testing.B, workers int) {
	var prr float64
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Workers = workers
		tables, err := experiment.ThetaSweep(o)
		if err != nil {
			b.Fatal(err)
		}
		fig6 := tables[2]
		prr = parseCell(b, fig6.Rows[2][3]) // avg PRR, H-50 column
	}
	b.ReportMetric(prr, "h50-prr")
}

func BenchmarkSweepWorkers1(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweepWorkersMax(b *testing.B) { benchSweep(b, 0) }

// lifespanOpts ages gently enough that run-to-EoL spans several months
// of simulated time (Fig. 7 needs monthly samples).
func lifespanOpts() experiment.Options {
	return experiment.Options{Seed: 3, Nodes: 15, AgingFactor: 40}
}

func BenchmarkFig7MaxDegradation(b *testing.B) {
	var lifespanDays float64
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Lifespan(lifespanOpts())
		if err != nil {
			b.Fatal(err)
		}
		if tables[0].ID != "fig7" || len(tables[0].Rows) == 0 {
			b.Fatal("missing fig7 rows")
		}
		lifespanDays = parseCell(b, tables[1].Rows[0][1])
	}
	b.ReportMetric(lifespanDays, "lorawan-lifespan-days")
}

func BenchmarkFig8Lifespan(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		tables, err := experiment.Lifespan(lifespanOpts())
		if err != nil {
			b.Fatal(err)
		}
		fig8 := tables[1]
		base := parseCell(b, fig8.Rows[0][1])
		h50 := parseCell(b, fig8.Rows[1][1])
		improvement = 100 * (h50/base - 1)
	}
	b.ReportMetric(improvement, "h50-improvement-%")
}

func BenchmarkFig9Testbed(b *testing.B) {
	o := experiment.Options{Seed: 3, Duration: 3 * simtime.Hour}
	cfg := experiment.TestbedScenario(o, config.ProtocolBLA, 1)
	var prr metrics.Welford
	for i := 0; i < b.N; i++ {
		res, err := testbed.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range res.Nodes {
			prr.Add(n.Stats.PRR())
		}
	}
	b.ReportMetric(prr.Mean(), "prr")
}

func BenchmarkTableIOverhead(b *testing.B) {
	// The Table I artifact itself is the decision-path cost: benchmark
	// the full BLA decision (forecast + estimates + Algorithm 1).
	bla, err := mac.NewBLA(mac.BLAConfig{
		Theta:           0.5,
		WeightB:         1,
		Beta:            0.3,
		Forecaster:      energy.NewDiurnalEWMA(0.3),
		Window:          simtime.Minute,
		MaxWindows:      60,
		SingleTxEnergyJ: 0.035,
		MaxAttempts:     8,
	})
	if err != nil {
		b.Fatal(err)
	}
	bla.OnDegradationUpdate(0, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := bla.DecideTx(simtime.Time(i)*simtime.Time(simtime.Minute), 40, 1); d.Drop {
			b.Fatal("unexpected drop")
		}
	}
}

// --- microbenchmarks of the hot paths ---

func BenchmarkAlgorithm1Select(b *testing.B) {
	sel, err := core.NewSelector(utility.Linear{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := core.Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 0.7,
		ForecastGen:           make([]float64, 60),
		EstTxEnergy:           make([]float64, 60),
		MaxTxEnergy:           0.28,
	}
	for i := range in.ForecastGen {
		in.ForecastGen[i] = float64(i%7) * 0.01
		in.EstTxEnergy[i] = 0.035
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRainflowIncremental(b *testing.B) {
	var c battery.Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Push(float64(i%17) / 16)
	}
}

func BenchmarkSolarEnergyQuery(b *testing.B) {
	trace, err := energy.NewYearTrace(energy.DefaultSolarConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	src := trace.NodeSource(3, 1.5, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := simtime.Time(i%500000) * simtime.Time(simtime.Minute)
		_ = src.Energy(from, from.Add(40*simtime.Minute))
	}
}

// warmSim runs one untimed simulation so the timed iterations measure
// steady state: the first run in a process pays one-off costs (priming
// the forecaster profile cache, populating event pools) that later
// iterations reuse. Without this, a -benchtime 1x CI smoke run reports
// inflated B/op relative to the amortized committed baseline.
func warmSim(b *testing.B, cfg config.Scenario) {
	b.Helper()
	s, err := sim.New(cfg, sim.Hooks{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSimulatorDay(b *testing.B) {
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = 50
	cfg.Duration = simtime.Day
	warmSim(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimLargeN runs one simulated day at the given network size and
// reports throughput in simulated days per wall-clock second — the
// large-N scaling headline tracked by the bench-regression harness.
func benchSimLargeN(b *testing.B, nodes int) {
	b.Helper()
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = nodes
	cfg.Duration = simtime.Day
	if testing.Short() {
		cfg.Duration = 2 * simtime.Hour
	}
	warmSim(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	simDays := cfg.Duration.Seconds() / (24 * 3600) * float64(b.N)
	b.ReportMetric(simDays/b.Elapsed().Seconds(), "sim-days/s")
}

// BenchmarkSimulatorDayLargeN and BenchmarkSweep1000Nodes scale the
// single-run workload to the paper's densest deployments; both shrink
// to two simulated hours under -short so smoke runs stay fast.
func BenchmarkSimulatorDayLargeN(b *testing.B) { benchSimLargeN(b, 500) }
func BenchmarkSweep1000Nodes(b *testing.B)     { benchSimLargeN(b, 1000) }

// benchSimSharded runs one simulated day at city scale on the sharded
// engine: a multi-gateway deployment wide enough that each cell carries
// real traffic. ForecastPrimeDays is trimmed to one because priming is
// construction cost, not the simulation loop this bench tracks (at 100k
// nodes the default seven priming days dominate wall-clock). sim-days/s
// is the scale-ladder headline the bench-regression harness gates.
func benchSimSharded(b *testing.B, nodes, gateways int, radiusM float64) {
	b.Helper()
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = nodes
	cfg.Gateways = gateways
	cfg.MaxDistanceM = radiusM
	cfg.Channels = 8
	cfg.Demodulators = 8
	cfg.ForecastPrimeDays = 1
	cfg.Duration = simtime.Day
	if testing.Short() {
		cfg.Duration = 2 * simtime.Hour
	}
	opt := sim.RunOptions{} // auto shards: min(gateways, CPUs)
	run := func() {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunOpt(opt); err != nil {
			b.Fatal(err)
		}
	}
	// No warm-up pass: one iteration is tens of seconds even under
	// -short, so cold-start noise is negligible and a warmSim-style
	// extra run would double the bench's wall-clock cost.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	simDays := cfg.Duration.Seconds() / (24 * 3600) * float64(b.N)
	b.ReportMetric(simDays/b.Elapsed().Seconds(), "sim-days/s")
}

// BenchmarkSweep10kNodes and BenchmarkSweep100kNodes are the scale
// ladder's upper rungs: the 100k run is the paper-scale target a single
// event heap could not reach, and the 10k rung localizes regressions
// between 1k and 100k. Both shrink to two simulated hours under -short.
func BenchmarkSweep10kNodes(b *testing.B)  { benchSimSharded(b, 10_000, 8, 25_000) }
func BenchmarkSweep100kNodes(b *testing.B) { benchSimSharded(b, 100_000, 16, 40_000) }

// lnsIngestTrace builds the deterministic replay workload for
// BenchmarkLNSIngest: a diurnal SoC sawtooth per node sampled every ten
// minutes — pure arithmetic, no RNG, so every iteration replays
// identical bytes through the daemon.
func lnsIngestTrace(nodes, days int) *lns.Trace {
	tr := &lns.Trace{SampleEvery: 10 * simtime.Minute}
	for id := 0; id < nodes; id++ {
		soc := 0.55 + 0.3*float64(id%7)/7
		nt := lns.NodeTrace{ID: id, InitialSoC: soc}
		for k := 0; k < days*144; k++ {
			at := simtime.Time(k+1) * simtime.Time(10*simtime.Minute)
			if hour := (k / 6) % 24; hour >= 8 && hour < 18 {
				soc -= 0.004 // daytime drain
			} else {
				soc += 0.003 // overnight recharge
			}
			soc = min(0.95, max(0.15, soc))
			nt.Transitions = append(nt.Transitions, battery.Transition{At: at, SoC: soc})
		}
		tr.Nodes = append(tr.Nodes, nt)
	}
	return tr
}

// BenchmarkLNSIngest measures the daemon's HTTP ingest path end to end:
// register a fleet, POST every replay batch through an in-process
// httptest server, and issue the final recompute. ingest-msgs/s is the
// uplink throughput headline (gated by the bench-regression harness
// like every "/s" metric); recompute-ms is the mean wall-clock latency
// of one w_u recompute over the whole fleet, taken from the daemon's
// own lns.* counters. -short shrinks the fleet and horizon for the CI
// smoke gate.
func BenchmarkLNSIngest(b *testing.B) {
	nodes, days := 64, 7
	if testing.Short() {
		nodes, days = 16, 2
	}
	tr := lnsIngestTrace(nodes, days)
	batches := lns.BuildBatches(tr, 0, 8, 64)
	finalAt := lns.LastUplinkAt(batches).Add(simtime.Day)
	var uplinks int
	for _, bb := range batches {
		uplinks += len(bb.Uplinks)
	}

	// Pre-encode every request body so the timed loop measures the
	// daemon, not client-side JSON marshalling.
	reg := lns.RegisterReq{}
	for _, nt := range tr.Nodes {
		reg.Nodes = append(reg.Nodes, lns.RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
	}
	mustJSON := func(v any) []byte {
		data, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	regBody := mustJSON(reg)
	bodies := make([][]byte, len(batches))
	for i, bb := range batches {
		bodies[i] = mustJSON(bb)
	}
	finalBody := mustJSON(lns.RecomputeReq{AtMs: int64(finalAt)})
	post := func(client *http.Client, url string, body []byte) int {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	var recomputeNs, recomputes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := lns.NewDaemon(lns.Config{Interval: simtime.Day, QueueDepth: len(batches) + 1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(d.Handler())
		client := ts.Client()
		if code := post(client, ts.URL+"/v1/register", regBody); code != http.StatusOK {
			b.Fatalf("register: status %d", code)
		}
		for _, body := range bodies {
			for {
				code := post(client, ts.URL+"/v1/uplinks", body)
				if code == http.StatusAccepted {
					break
				}
				if code != http.StatusTooManyRequests {
					b.Fatalf("uplinks: status %d", code)
				}
			}
		}
		if code := post(client, ts.URL+"/v1/recompute", finalBody); code != http.StatusOK {
			b.Fatalf("recompute: status %d", code)
		}
		rec := d.Recorder()
		recomputeNs += rec.Counter("lns.recompute_ns_total").Value()
		recomputes += rec.Counter("lns.recomputes").Value()
		ts.Close()
		d.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(uplinks*b.N)/b.Elapsed().Seconds(), "ingest-msgs/s")
	if recomputes > 0 {
		b.ReportMetric(float64(recomputeNs)/1e6/float64(recomputes), "recompute-ms")
	}
}

// lnsFleetTrace builds the million-node replay workload for
// BenchmarkLNSIngestSharded: a sparse 3-hourly sawtooth (8 transitions
// per node per day → exactly one uplink packet per node), dense node
// IDs spanning thousands of ShardBlock ranges. Pure arithmetic, no RNG.
func lnsFleetTrace(nodes int) *lns.Trace {
	tr := &lns.Trace{SampleEvery: 3 * simtime.Hour}
	for id := 0; id < nodes; id++ {
		soc := 0.5 + 0.4*float64(id%9)/9
		nt := lns.NodeTrace{ID: id, InitialSoC: soc}
		for k := 0; k < 8; k++ {
			at := simtime.Time(k+1) * simtime.Time(3*simtime.Hour)
			if k%2 == 0 {
				soc -= 0.1
			} else {
				soc += 0.08
			}
			soc = min(0.95, max(0.2, soc))
			nt.Transitions = append(nt.Transitions, battery.Transition{At: at, SoC: soc})
		}
		tr.Nodes = append(tr.Nodes, nt)
	}
	return tr
}

// BenchmarkLNSIngestSharded is the fleet-scale rung: a million-node
// single-day replay (one uplink per node, -short shrinks the fleet)
// through the sharded daemon, with as many concurrent loadgen-style
// connections as shards, each owning the node-ID ranges lns.ShardOf
// assigns it. The shards=1 sub-benchmark is the single-lane baseline;
// ingest-msgs/s across the sub-benchmarks is the shard-scaling
// headline cmd/benchjson reports (on a multi-core host shards=4 is
// expected to approach 4x; a GOMAXPROCS=1 runner serializes the lanes
// and measures only the sharding overhead).
func BenchmarkLNSIngestSharded(b *testing.B) {
	nodes := 1_000_000
	if testing.Short() {
		nodes = 32_768
	}
	tr := lnsFleetTrace(nodes)
	batches := lns.BuildBatches(tr, 0, 8, 4096)
	finalAt := lns.LastUplinkAt(batches).Add(simtime.Day)
	var uplinks int
	for _, bb := range batches {
		uplinks += len(bb.Uplinks)
	}

	mustJSON := func(v any) []byte {
		data, err := json.Marshal(v)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	reg := lns.RegisterReq{Nodes: make([]lns.RegisterNode, 0, len(tr.Nodes))}
	for _, nt := range tr.Nodes {
		reg.Nodes = append(reg.Nodes, lns.RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
	}
	regBody := mustJSON(reg)
	finalBody := mustJSON(lns.RecomputeReq{AtMs: int64(finalAt)})

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// One connection per shard, batches partitioned by the same
			// node-ID ranges cmd/loadgen -conns uses; bodies pre-encoded
			// so the timed loop measures the daemon, not the client.
			connBatches := make([][]lns.Batch, shards)
			for _, bb := range batches {
				per := make([][]lns.Uplink, shards)
				for _, u := range bb.Uplinks {
					c := lns.ShardOf(u.Node, shards)
					per[c] = append(per[c], u)
				}
				for c, ups := range per {
					if len(ups) > 0 {
						connBatches[c] = append(connBatches[c], lns.Batch{Uplinks: ups})
					}
				}
			}
			connBodies := make([][][]byte, shards)
			maxLen := 0
			for c, part := range connBatches {
				for _, bb := range part {
					connBodies[c] = append(connBodies[c], mustJSON(bb))
				}
				maxLen = max(maxLen, len(part))
			}

			var recomputeNs, recomputes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := lns.NewDaemon(lns.Config{
					Interval:   simtime.Day,
					Shards:     shards,
					QueueDepth: maxLen + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(d.Handler())
				client := ts.Client()
				post := func(url string, body []byte) (int, error) {
					resp, err := client.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						return 0, err
					}
					resp.Body.Close()
					return resp.StatusCode, nil
				}
				if code, err := post(ts.URL+"/v1/register", regBody); err != nil || code != http.StatusOK {
					b.Fatalf("register: %v status %d", err, code)
				}
				errs := make([]error, shards)
				var wg sync.WaitGroup
				for c := 0; c < shards; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						for _, body := range connBodies[c] {
							for {
								code, err := post(ts.URL+"/v1/uplinks", body)
								if err != nil {
									errs[c] = err
									return
								}
								if code == http.StatusAccepted {
									break
								}
								if code != http.StatusTooManyRequests {
									errs[c] = fmt.Errorf("uplinks: status %d", code)
									return
								}
							}
						}
					}(c)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				if code, err := post(ts.URL+"/v1/recompute", finalBody); err != nil || code != http.StatusOK {
					b.Fatalf("recompute: %v status %d", err, code)
				}
				rec := d.Recorder()
				recomputeNs += rec.Counter("lns.recompute_ns_total").Value()
				recomputes += rec.Counter("lns.recomputes").Value()
				ts.Close()
				d.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(uplinks*b.N)/b.Elapsed().Seconds(), "ingest-msgs/s")
			if recomputes > 0 {
				b.ReportMetric(float64(recomputeNs)/1e6/float64(recomputes), "recompute-ms")
			}
		})
	}
}

// BenchmarkSimulatorYear exercises the multi-year regime the paper
// actually simulates (up to 15 years): long runs stress the rolling
// day-cache refills, year-boundary trace factors, and the degradation
// memo across a battery's whole life rather than a single cached day.
// -short trims the horizon to 20 simulated days for the CI smoke gate.
func BenchmarkSimulatorYear(b *testing.B) {
	cfg := config.Default().WithSeed(9)
	cfg.Nodes = 100
	cfg.Duration = 365 * simtime.Day
	if testing.Short() {
		cfg.Duration = 20 * simtime.Day
	}
	warmSim(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(cfg, sim.Hooks{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	simDays := cfg.Duration.Seconds() / (24 * 3600) * float64(b.N)
	b.ReportMetric(simDays/b.Elapsed().Seconds(), "sim-days/s")
}
