package energy

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

// constantSource emits a fixed power at all times.
type constantSource struct{ watts float64 }

func (s constantSource) Power(simtime.Time) float64 { return s.watts }

func (s constantSource) Energy(from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	return s.watts * to.Sub(from).Seconds()
}

func TestPerfectForecaster(t *testing.T) {
	yt := newTestTrace(t, 31)
	src := yt.NodeSource(0, 1, 0.2)
	f := &Perfect{Source: src}

	start := simtime.Time(50*24*60+10*60) * simtime.Time(simtime.Minute)
	got := f.ForecastWindows(start, simtime.Minute, 10)
	if len(got) != 10 {
		t.Fatalf("forecast length %d, want 10", len(got))
	}
	for i, g := range got {
		from := start.Add(simtime.Duration(i) * simtime.Minute)
		want := src.Energy(from, from.Add(simtime.Minute))
		if g != want {
			t.Errorf("window %d forecast %v, want %v", i, g, want)
		}
	}
}

func TestNoisyForecaster(t *testing.T) {
	src := constantSource{watts: 1}
	f := NewNoisy(src, 0.2, 77)

	start := simtime.Time(0)
	n := 2000
	got := f.ForecastWindows(start, simtime.Minute, n)
	var sum float64
	for _, g := range got {
		if g < 0 {
			t.Fatal("noisy forecast must be clamped at zero")
		}
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-60)/60 > 0.05 {
		t.Errorf("noisy forecast mean %v, want ~60 J (unbiased)", mean)
	}

	// Determinism per seed.
	again := NewNoisy(src, 0.2, 77).ForecastWindows(start, simtime.Minute, 5)
	first := NewNoisy(src, 0.2, 77).ForecastWindows(start, simtime.Minute, 5)
	for i := range again {
		if again[i] != first[i] {
			t.Fatal("noisy forecaster not deterministic per seed")
		}
	}
}

func TestDiurnalEWMAColdStart(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	got := f.ForecastWindows(0, simtime.Minute, 5)
	for i, g := range got {
		if g != 0 {
			t.Errorf("cold-start forecast[%d] = %v, want 0", i, g)
		}
	}
}

func TestDiurnalEWMALearnsConstant(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	src := constantSource{watts: 0.5}
	f.Prime(src, 3)

	got := f.ForecastWindows(simtime.Time(3*simtime.Day), simtime.Minute, 3)
	for i, g := range got {
		if !closeTo(g, 0.5*60, 1e-9) {
			t.Errorf("forecast[%d] = %v, want 30 J", i, g)
		}
	}
}

func TestDiurnalEWMATracksDiurnalShape(t *testing.T) {
	yt := newTestTrace(t, 37)
	src := yt.NodeSource(0, 1, 0)
	f := NewDiurnalEWMA(0.3)
	f.Prime(src, 20)

	day := simtime.Time(20 * simtime.Day)
	// The returned slice is the forecaster's reusable buffer, so each
	// forecast is checked before requesting the next one.
	night := f.ForecastWindows(day.Add(2*simtime.Hour), simtime.Minute, 5)
	for i, g := range night {
		if g != 0 {
			t.Errorf("night forecast[%d] = %v, want 0", i, g)
		}
	}
	noon := f.ForecastWindows(day.Add(12*simtime.Hour), simtime.Minute, 5)
	var noonSum float64
	for _, g := range noon {
		noonSum += g
	}
	if noonSum <= 0 {
		t.Error("noon forecast should be positive after priming")
	}
}

func TestDiurnalEWMAObserveWeighting(t *testing.T) {
	f := NewDiurnalEWMA(0.25)
	slotStart := simtime.Time(10 * simtime.Minute)
	// First observation initializes the slot outright.
	f.Observe(slotStart, slotStart.Add(simtime.Minute), 60) // 1 W
	// Second observation one day later blends with weight alpha.
	dayLater := slotStart.Add(simtime.Day)
	f.Observe(dayLater, dayLater.Add(simtime.Minute), 120) // 2 W
	got := f.ForecastWindows(slotStart.Add(2*simtime.Day), simtime.Minute, 1)[0]
	wantPower := 0.25*2 + 0.75*1
	if !closeTo(got, wantPower*60, 1e-9) {
		t.Errorf("blended forecast %v J, want %v J", got, wantPower*60)
	}
}

// TestDiurnalEWMAObserveBoundaryStraddle is the regression test for the
// slot-weighting bug: a short observation straddling a minute boundary
// used to fold its average power into both touched slots with full EWMA
// weight, as if it had covered each minute entirely. The update must be
// weighted by each slot's share of the observation instead.
func TestDiurnalEWMAObserveBoundaryStraddle(t *testing.T) {
	f := NewDiurnalEWMA(0.5)
	minute := simtime.Time(simtime.Minute)
	// Train slots 1 and 2 to a steady 1 W with full-minute observations.
	f.Observe(1*minute, 2*minute, 60)
	f.Observe(2*minute, 3*minute, 60)
	// 30 s at 5 W straddling the slot 1 / slot 2 boundary at 120 s:
	// 15 s fall in each slot, so each carries half the observation's
	// weight.
	from := simtime.Time(105 * simtime.Second)
	f.Observe(from, from.Add(30*simtime.Second), 150)
	// Effective alpha per slot is 0.5 * 0.5 = 0.25:
	//   profile = 0.25*5 W + 0.75*1 W = 2 W  ->  120 J per minute window.
	// The old full-weight update gave 0.5*5 + 0.5*1 = 3 W (180 J).
	got := f.ForecastWindows(simtime.Time(simtime.Day).Add(simtime.Minute), simtime.Minute, 2)
	for i, g := range got {
		if !closeTo(g, 120, 1e-9) {
			t.Errorf("slot %d forecast %v J, want 120 J (coverage-weighted update)", i+1, g)
		}
	}
}

// TestDiurnalEWMAObserveSingleSlotFullWeight pins that an observation
// contained in one minute slot still updates with the full alpha, no
// matter how short it is — the coverage weighting must not dilute the
// common case of sub-minute integration chunks.
func TestDiurnalEWMAObserveSingleSlotFullWeight(t *testing.T) {
	f := NewDiurnalEWMA(0.25)
	minute := simtime.Time(simtime.Minute)
	f.Observe(5*minute, 6*minute, 60) // slot 5 = 1 W
	// 2 s entirely inside slot 5 at 4 W: full-weight EWMA update.
	f.Observe(5*minute+simtime.Time(10*simtime.Second), 5*minute+simtime.Time(12*simtime.Second), 8)
	want := (0.25*4 + 0.75*1) * 60
	got := f.ForecastWindows(simtime.Time(simtime.Day).Add(5*simtime.Minute), simtime.Minute, 1)[0]
	if !closeTo(got, want, 1e-9) {
		t.Errorf("single-slot partial observation forecast %v J, want %v J", got, want)
	}
}

func TestDiurnalEWMAObserveIgnoresEmptyInterval(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	f.Observe(100, 100, 5)
	f.Observe(200, 100, 5)
	if got := f.ForecastWindows(0, simtime.Minute, 1)[0]; got != 0 {
		t.Errorf("forecast after degenerate observations = %v, want 0", got)
	}
}

func TestDiurnalEWMAAlphaClamped(t *testing.T) {
	f := NewDiurnalEWMA(5)
	if f.alpha != 1 {
		t.Errorf("alpha = %v, want clamped to 1", f.alpha)
	}
	g := NewDiurnalEWMA(0)
	if g.alpha <= 0 {
		t.Errorf("alpha = %v, want clamped above 0", g.alpha)
	}
}
