package energy

import (
	"math"
	"testing"

	"repro/internal/simtime"
)

// constantSource emits a fixed power at all times.
type constantSource struct{ watts float64 }

func (s constantSource) Power(simtime.Time) float64 { return s.watts }

func (s constantSource) Energy(from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	return s.watts * to.Sub(from).Seconds()
}

func TestPerfectForecaster(t *testing.T) {
	yt := newTestTrace(t, 31)
	src := yt.NodeSource(0, 1, 0.2)
	f := &Perfect{Source: src}

	start := simtime.Time(50*24*60+10*60) * simtime.Time(simtime.Minute)
	got := f.ForecastWindows(start, simtime.Minute, 10)
	if len(got) != 10 {
		t.Fatalf("forecast length %d, want 10", len(got))
	}
	for i, g := range got {
		from := start.Add(simtime.Duration(i) * simtime.Minute)
		want := src.Energy(from, from.Add(simtime.Minute))
		if g != want {
			t.Errorf("window %d forecast %v, want %v", i, g, want)
		}
	}
}

func TestNoisyForecaster(t *testing.T) {
	src := constantSource{watts: 1}
	f := NewNoisy(src, 0.2, 77)

	start := simtime.Time(0)
	n := 2000
	got := f.ForecastWindows(start, simtime.Minute, n)
	var sum float64
	for _, g := range got {
		if g < 0 {
			t.Fatal("noisy forecast must be clamped at zero")
		}
		sum += g
	}
	mean := sum / float64(n)
	if math.Abs(mean-60)/60 > 0.05 {
		t.Errorf("noisy forecast mean %v, want ~60 J (unbiased)", mean)
	}

	// Determinism per seed.
	again := NewNoisy(src, 0.2, 77).ForecastWindows(start, simtime.Minute, 5)
	first := NewNoisy(src, 0.2, 77).ForecastWindows(start, simtime.Minute, 5)
	for i := range again {
		if again[i] != first[i] {
			t.Fatal("noisy forecaster not deterministic per seed")
		}
	}
}

func TestDiurnalEWMAColdStart(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	got := f.ForecastWindows(0, simtime.Minute, 5)
	for i, g := range got {
		if g != 0 {
			t.Errorf("cold-start forecast[%d] = %v, want 0", i, g)
		}
	}
}

func TestDiurnalEWMALearnsConstant(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	src := constantSource{watts: 0.5}
	f.Prime(src, 3)

	got := f.ForecastWindows(simtime.Time(3*simtime.Day), simtime.Minute, 3)
	for i, g := range got {
		if !closeTo(g, 0.5*60, 1e-9) {
			t.Errorf("forecast[%d] = %v, want 30 J", i, g)
		}
	}
}

func TestDiurnalEWMATracksDiurnalShape(t *testing.T) {
	yt := newTestTrace(t, 37)
	src := yt.NodeSource(0, 1, 0)
	f := NewDiurnalEWMA(0.3)
	f.Prime(src, 20)

	day := simtime.Time(20 * simtime.Day)
	night := f.ForecastWindows(day.Add(2*simtime.Hour), simtime.Minute, 5)
	noon := f.ForecastWindows(day.Add(12*simtime.Hour), simtime.Minute, 5)
	for i, g := range night {
		if g != 0 {
			t.Errorf("night forecast[%d] = %v, want 0", i, g)
		}
	}
	var noonSum float64
	for _, g := range noon {
		noonSum += g
	}
	if noonSum <= 0 {
		t.Error("noon forecast should be positive after priming")
	}
}

func TestDiurnalEWMAObserveWeighting(t *testing.T) {
	f := NewDiurnalEWMA(0.25)
	slotStart := simtime.Time(10 * simtime.Minute)
	// First observation initializes the slot outright.
	f.Observe(slotStart, slotStart.Add(simtime.Minute), 60) // 1 W
	// Second observation one day later blends with weight alpha.
	dayLater := slotStart.Add(simtime.Day)
	f.Observe(dayLater, dayLater.Add(simtime.Minute), 120) // 2 W
	got := f.ForecastWindows(slotStart.Add(2*simtime.Day), simtime.Minute, 1)[0]
	wantPower := 0.25*2 + 0.75*1
	if !closeTo(got, wantPower*60, 1e-9) {
		t.Errorf("blended forecast %v J, want %v J", got, wantPower*60)
	}
}

func TestDiurnalEWMAObserveIgnoresEmptyInterval(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	f.Observe(100, 100, 5)
	f.Observe(200, 100, 5)
	if got := f.ForecastWindows(0, simtime.Minute, 1)[0]; got != 0 {
		t.Errorf("forecast after degenerate observations = %v, want 0", got)
	}
}

func TestDiurnalEWMAAlphaClamped(t *testing.T) {
	f := NewDiurnalEWMA(5)
	if f.alpha != 1 {
		t.Errorf("alpha = %v, want clamped to 1", f.alpha)
	}
	g := NewDiurnalEWMA(0)
	if g.alpha <= 0 {
		t.Errorf("alpha = %v, want clamped above 0", g.alpha)
	}
}
