// Package energy provides the green-energy harvesting substrate: a
// deterministic synthetic solar-power trace with diurnal, seasonal and
// cloud-cover structure (standing in for the NREL measurement trace the
// paper replays), per-node spatial variation, and the very-short-term
// forecasters nodes use to predict per-window energy generation.
package energy

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/simtime"
)

// Source supplies harvested power for one node.
type Source interface {
	// Power returns the instantaneous harvested power in watts at t.
	Power(t simtime.Time) float64
	// Energy returns the energy in joules harvested during [from, to).
	Energy(from, to simtime.Time) float64
}

// MinuteSource is implemented by sources that can answer per-minute
// queries in O(1) from a precomputed cache. MinutePower(m) is
// bit-identical to Power anywhere inside minute m, and
// MinutePower(m) * 60.0 is bit-identical to Energy over the full
// minute — the contract the node integrator and forecaster priming
// fast paths rely on.
type MinuteSource interface {
	Source
	// MinutePower returns the harvested power in watts during the
	// absolute minute [m·1min, (m+1)·1min).
	MinutePower(minute int64) float64
	// DayPowers returns the per-minute powers of the given simulated
	// day, indexed by minute-of-day. The returned slice is the source's
	// internal cache: it is read-only and valid only until the next
	// call into the source.
	DayPowers(day int64) []float64
}

// minutesPerYear is the resolution of the base trace: one sample per
// minute over the simulated 365-day year.
const minutesPerYear = 365 * 24 * 60

// Weather states of the daily Markov chain.
const (
	weatherClear = iota
	weatherPartly
	weatherOvercast
	numWeatherStates
)

// SolarConfig parameterizes the synthetic year-long solar trace.
type SolarConfig struct {
	// Seed drives all randomness in the trace.
	Seed uint64
	// DaylightAmplitudeHours is the seasonal swing of the day length
	// around 12 h (≈3 h at mid latitudes).
	DaylightAmplitudeHours float64
	// SeasonalAmplitude is the seasonal swing of the clear-sky peak
	// around its annual mean, in [0,1).
	SeasonalAmplitude float64
	// CloudAttenuation is the maximum fraction of power removed by full
	// cloud cover.
	CloudAttenuation float64
	// WeatherPersistence is the probability that a day repeats the
	// previous day's weather state.
	WeatherPersistence float64
}

// DefaultSolarConfig returns a temperate mid-latitude configuration.
func DefaultSolarConfig(seed uint64) SolarConfig {
	return SolarConfig{
		Seed:                   seed,
		DaylightAmplitudeHours: 3,
		SeasonalAmplitude:      0.25,
		CloudAttenuation:       0.85,
		WeatherPersistence:     0.6,
	}
}

// Validate reports the first out-of-range parameter.
func (c SolarConfig) Validate() error {
	switch {
	case c.DaylightAmplitudeHours < 0 || c.DaylightAmplitudeHours >= 12:
		return fmt.Errorf("energy: daylight amplitude %v h outside [0,12)", c.DaylightAmplitudeHours)
	case c.SeasonalAmplitude < 0 || c.SeasonalAmplitude >= 1:
		return fmt.Errorf("energy: seasonal amplitude %v outside [0,1)", c.SeasonalAmplitude)
	case c.CloudAttenuation < 0 || c.CloudAttenuation > 1:
		return fmt.Errorf("energy: cloud attenuation %v outside [0,1]", c.CloudAttenuation)
	case c.WeatherPersistence < 0 || c.WeatherPersistence > 1:
		return fmt.Errorf("energy: weather persistence %v outside [0,1]", c.WeatherPersistence)
	}
	return nil
}

// YearTrace is the shared normalized (peak ≈ 1) solar-power profile of
// the deployment area: one sample per minute for 365 days. Node sources
// scale it to their panel size and add local cloud variation. A YearTrace
// is immutable after construction and safe for concurrent use.
type YearTrace struct {
	cfg     SolarConfig
	samples []float32
	// yearFactor memoizes the per-year variability factor of At for the
	// first precomputedYears years; later years (beyond any plausible
	// simulation horizon) fall back to hashing on demand.
	yearFactor []float64
}

// precomputedYears bounds the memoized year-variability table; the
// simulator caps runs at a few decades, so 64 years covers every query.
const precomputedYears = 64

// traceCache shares YearTrace construction across simulations: the
// trace is immutable and fully determined by its config, so every
// variant of a sweep (and every iteration of a benchmark) can reuse the
// same object instead of re-synthesizing 525600 samples. Bounded to a
// handful of configs; eviction is oldest-first.
var traceCache struct {
	sync.Mutex
	entries map[SolarConfig]*YearTrace
	order   []SolarConfig
}

const traceCacheMax = 8

// NewYearTrace synthesizes the deployment-wide trace. The construction is
// deterministic in the config; identical configs may share one cached
// immutable trace.
func NewYearTrace(cfg SolarConfig) (*YearTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	traceCache.Lock()
	if yt, ok := traceCache.entries[cfg]; ok {
		traceCache.Unlock()
		return yt, nil
	}
	traceCache.Unlock()
	yt, err := synthesizeYearTrace(cfg)
	if err != nil {
		return nil, err
	}
	traceCache.Lock()
	if traceCache.entries == nil {
		traceCache.entries = make(map[SolarConfig]*YearTrace)
	}
	if cached, ok := traceCache.entries[cfg]; ok {
		// Another goroutine synthesized the same config concurrently;
		// both results are identical, keep the first.
		yt = cached
	} else {
		if len(traceCache.order) >= traceCacheMax {
			delete(traceCache.entries, traceCache.order[0])
			traceCache.order = traceCache.order[1:]
		}
		traceCache.entries[cfg] = yt
		traceCache.order = append(traceCache.order, cfg)
	}
	traceCache.Unlock()
	return yt, nil
}

func synthesizeYearTrace(cfg SolarConfig) (*YearTrace, error) {
	yt := &YearTrace{cfg: cfg, samples: make([]float32, minutesPerYear)}
	yt.yearFactor = make([]float64, precomputedYears)
	yt.yearFactor[0] = 1
	for y := 1; y < precomputedYears; y++ {
		yt.yearFactor[y] = 0.92 + 0.16*hash01(cfg.Seed, uint64(y), 0x9e77)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x501a7))

	state := weatherClear
	cloud := 0.2 // Ornstein-Uhlenbeck cloudiness in [0,1]
	for day := 0; day < 365; day++ {
		state = nextWeather(rng, state, cfg.WeatherPersistence)
		mu, sigma := cloudParams(state)
		daylight := 12 + cfg.DaylightAmplitudeHours*math.Sin(2*math.Pi*float64(day-80)/365)
		sunrise := 12 - daylight/2
		seasonal := 1 - cfg.SeasonalAmplitude + cfg.SeasonalAmplitude*(1+math.Sin(2*math.Pi*float64(day-80)/365))/2
		for m := 0; m < 24*60; m++ {
			// Cloudiness evolves every minute, day and night, so mornings
			// start from the overnight weather.
			cloud += 0.02*(mu-cloud) + sigma*rng.NormFloat64()
			cloud = min(1, max(0, cloud))

			hour := float64(m) / 60
			var clearSky float64
			if hour > sunrise && hour < sunrise+daylight {
				clearSky = math.Pow(math.Sin(math.Pi*(hour-sunrise)/daylight), 1.3)
			}
			p := seasonal * clearSky * (1 - cfg.CloudAttenuation*cloud)
			yt.samples[day*24*60+m] = float32(p)
		}
	}
	return yt, nil
}

func nextWeather(rng *rand.Rand, state int, persistence float64) int {
	if rng.Float64() < persistence {
		return state
	}
	// Base distribution over the other states.
	switch r := rng.Float64(); {
	case r < 0.5:
		return weatherClear
	case r < 0.85:
		return weatherPartly
	default:
		return weatherOvercast
	}
}

func cloudParams(state int) (mu, sigma float64) {
	switch state {
	case weatherClear:
		return 0.08, 0.01
	case weatherPartly:
		return 0.45, 0.05
	default: // overcast
		return 0.9, 0.02
	}
}

// At returns the normalized power at an absolute minute index, wrapping
// across years with a small deterministic year-to-year factor.
func (yt *YearTrace) At(minute int64) float64 {
	if minute < 0 {
		return 0
	}
	year := minute / minutesPerYear
	idx := minute % minutesPerYear
	base := float64(yt.samples[idx])
	if year == 0 {
		return base
	}
	// Year-to-year variability of +-8%, memoized per year.
	var f float64
	if year < int64(len(yt.yearFactor)) {
		f = yt.yearFactor[year]
	} else {
		f = 0.92 + 0.16*hash01(yt.cfg.Seed, uint64(year), 0x9e77)
	}
	return min(1, base*f)
}

// Config returns the trace configuration.
func (yt *YearTrace) Config() SolarConfig { return yt.cfg }

// factorFor returns the year-to-year variability factor, memoized for
// the precomputed years and hashed on demand beyond them.
func (yt *YearTrace) factorFor(year int64) float64 {
	if year < int64(len(yt.yearFactor)) {
		return yt.yearFactor[year]
	}
	return 0.92 + 0.16*hash01(yt.cfg.Seed, uint64(year), 0x9e77)
}

// DayBase caches the trace's year-adjusted base powers — the common
// sub-expression of every node's per-day harvest-cache fill — for the
// two most recent simulated days, so the float32 conversion and
// year-factor clamp run once per (trace, day) instead of once per
// (node, day). Two slots keyed by day parity suffice: the simulator's
// lanes advance all their nodes through days monotonically, with
// cursors never more than one day apart.
//
// A DayBase is not safe for concurrent use; the simulator gives each
// event lane its own instance.
type DayBase struct {
	trace *YearTrace
	day   [2]int64
	base  [2][]float64
	// zero marks 4-minute blocks whose base powers are all zero (night):
	// node fills write +0 there without evaluating the per-node local
	// cloud factor, which is exact because peakW·0·lf is +0 for any
	// finite positive peakW and non-negative lf.
	zero [2][]bool
}

// NewDayBase returns an empty per-lane day-base cache over the trace.
func (yt *YearTrace) NewDayBase() *DayBase {
	return &DayBase{trace: yt, day: [2]int64{-1, -1}}
}

// Day returns the base (normalized, year-adjusted) power of every minute
// of the given simulated day and the per-4-minute-block all-zero marks.
// The returned slices are the cache's internal storage: read-only, valid
// until the next Day call with a different day of the same parity.
func (db *DayBase) Day(day int64) (base []float64, zeroBlock []bool) {
	slot := int(day & 1)
	if db.day[slot] == day {
		return db.base[slot], db.zero[slot]
	}
	if db.base[slot] == nil {
		db.base[slot] = make([]float64, minutesPerDay)
		db.zero[slot] = make([]bool, minutesPerDay/4)
	}
	b := db.base[slot]
	start := day * minutesPerDay
	year := start / minutesPerYear
	samples := db.trace.samples[start%minutesPerYear : start%minutesPerYear+minutesPerDay]
	if year == 0 {
		for m := range b {
			b[m] = float64(samples[m])
		}
	} else {
		f := db.trace.factorFor(year)
		for m := range b {
			b[m] = min(1, float64(samples[m])*f)
		}
	}
	zb := db.zero[slot]
	for blk := range zb {
		m := blk * 4
		zb[blk] = b[m] == 0 && b[m+1] == 0 && b[m+2] == 0 && b[m+3] == 0
	}
	db.day[slot] = day
	return b, zb
}

// NodeSource derives a node's harvest source from the shared trace.
//
// peakW is the panel's peak electrical power (the paper sizes it so peak
// generation over one forecast window funds two transmissions).
// variation adds deterministic per-node, per-interval multiplicative
// noise of the given relative amplitude, emulating local cloud cover and
// shading across the deployment area.
func (yt *YearTrace) NodeSource(nodeID int, peakW, variation float64) Source {
	return &nodeSource{
		trace:     yt,
		nodeID:    uint64(nodeID),
		peakW:     peakW,
		variation: min(1, max(0, variation)),
		cacheDay:  -1,
		prefixDay: -1,
	}
}

type nodeSource struct {
	trace     *YearTrace
	nodeID    uint64
	peakW     float64
	variation float64
	db        *DayBase // shared per-lane day-base cache; nil falls back to per-node fills

	// Rolling one-day harvest cache (see DESIGN.md "Harvest prefix
	// cache"): minuteP holds the harvested power of every minute of
	// cacheDay, computed with exactly the per-minute expression the
	// straightforward loop uses, and prefix holds the running sums of
	// the per-minute energies (minuteP[m] * 60 s). The cache is built
	// lazily once per simulated day; the simulator advances through
	// days monotonically, so one day of state is enough.
	cacheDay int64
	minuteP  []float64 // len minutesPerDay
	// prefix is derived from minuteP on demand (prefixDay tracks which
	// day it currently matches): only long Energy queries need it, so
	// the per-minute fills that dominate priming and node integration
	// skip the running-sum work entirely.
	prefixDay int64
	prefix    []float64 // len minutesPerDay+1, prefix[m] = sum of first m minute energies
}

var _ MinuteSource = (*nodeSource)(nil)

// prefixSpanMinutes is the number of whole minutes an Energy query must
// cover before the prefix-difference shortcut is taken. Shorter spans
// sum the cached per-minute energies sequentially, which reproduces the
// pre-cache loop bit for bit (floating-point addition is not
// associative, so a prefix difference may differ in the last ulp).
// Every hot-path query — node integration, forecaster observation, and
// the default 1-minute forecast windows — covers at most one whole
// minute and therefore always takes the exact path.
const prefixSpanMinutes = 16

// SetDayBase attaches a shared day-base cache; subsequent per-day fills
// read the year-adjusted base powers from it instead of re-deriving them
// from the float32 trace. The fill expressions are unchanged term for
// term, so the cached powers are bit-identical with or without it.
func (s *nodeSource) SetDayBase(db *DayBase) { s.db = db }

// SetMinuteBuf hands the rolling cache a caller-owned backing slice of
// length minutesPerDay, letting a simulation carve per-node views out
// of one contiguous slab instead of paying a lazy ~11.5 KB allocation
// per node inside ensureDay. Ignored once the cache already has a
// buffer (the fill logic is unaffected either way — only the backing
// store changes). The caller must not share one slice between sources.
func (s *nodeSource) SetMinuteBuf(buf []float64) {
	if s.minuteP == nil && len(buf) == minutesPerDay {
		s.minuteP = buf
	}
}

// ensureDay (re)fills the rolling cache for the given simulated day.
func (s *nodeSource) ensureDay(day int64) {
	if s.cacheDay == day {
		return
	}
	if s.minuteP == nil {
		s.minuteP = make([]float64, minutesPerDay)
	}
	if s.db != nil {
		s.fillFromBase(day)
		s.cacheDay = day
		return
	}
	base := day * minutesPerDay
	// A day never straddles a year boundary (the year is a whole number
	// of days), so the base-trace samples and the year factor are fixed
	// for the whole fill; reading them directly inlines YearTrace.At.
	year := base / minutesPerYear
	samples := s.trace.samples[base%minutesPerYear : base%minutesPerYear+minutesPerDay]
	var f float64
	if year > 0 {
		if year < int64(len(s.trace.yearFactor)) {
			f = s.trace.yearFactor[year]
		} else {
			f = 0.92 + 0.16*hash01(s.trace.cfg.Seed, uint64(year), 0x9e77)
		}
	}
	// The fill is split by (variation, year) so the inner loops carry no
	// per-minute branches; every variant evaluates the same expression
	// peakW * at * lf in the same order as the one-minute query path.
	switch {
	case s.variation == 0 && year == 0:
		for m := 0; m < minutesPerDay; m++ {
			s.minuteP[m] = s.peakW * float64(samples[m]) * 1.0
		}
	case s.variation == 0:
		for m := 0; m < minutesPerDay; m++ {
			s.minuteP[m] = s.peakW * min(1, float64(samples[m])*f) * 1.0
		}
	default:
		// localFactor is constant over 4-minute blocks; day boundaries
		// are block-aligned, so one hash serves four minutes.
		seed := s.trace.cfg.Seed
		nid := s.nodeID + 0x5bd1e995
		block := uint64(base >> 2)
		for m := 0; m < minutesPerDay; m += 4 {
			lf := 1 + s.variation*(2*hash01(seed, nid, block)-1)
			block++
			if year == 0 {
				s.minuteP[m] = s.peakW * float64(samples[m]) * lf
				s.minuteP[m+1] = s.peakW * float64(samples[m+1]) * lf
				s.minuteP[m+2] = s.peakW * float64(samples[m+2]) * lf
				s.minuteP[m+3] = s.peakW * float64(samples[m+3]) * lf
			} else {
				s.minuteP[m] = s.peakW * min(1, float64(samples[m])*f) * lf
				s.minuteP[m+1] = s.peakW * min(1, float64(samples[m+1])*f) * lf
				s.minuteP[m+2] = s.peakW * min(1, float64(samples[m+2])*f) * lf
				s.minuteP[m+3] = s.peakW * min(1, float64(samples[m+3])*f) * lf
			}
		}
	}
	s.cacheDay = day
}

// fillFromBase fills the per-minute cache from the shared day base.
// Every variant evaluates peakW * base * lf with the same operand values
// and association as the trace-direct fill (base[m] is exactly
// float64(samples[m]) in year 0 and min(1, float64(samples[m])*f)
// after), so the result is bit-identical. Blocks that are all zero skip
// the local-factor hash: the product is +0 either way.
func (s *nodeSource) fillFromBase(day int64) {
	base, zeroBlk := s.db.Day(day)
	if s.variation == 0 {
		for m := 0; m < minutesPerDay; m++ {
			s.minuteP[m] = s.peakW * base[m] * 1.0
		}
		return
	}
	seed := s.trace.cfg.Seed
	nid := s.nodeID + 0x5bd1e995
	block := uint64(day * minutesPerDay >> 2)
	for m := 0; m < minutesPerDay; m += 4 {
		if zeroBlk[m>>2] {
			s.minuteP[m], s.minuteP[m+1], s.minuteP[m+2], s.minuteP[m+3] = 0, 0, 0, 0
			block++
			continue
		}
		lf := 1 + s.variation*(2*hash01(seed, nid, block)-1)
		block++
		s.minuteP[m] = s.peakW * base[m] * lf
		s.minuteP[m+1] = s.peakW * base[m+1] * lf
		s.minuteP[m+2] = s.peakW * base[m+2] * lf
		s.minuteP[m+3] = s.peakW * base[m+3] * lf
	}
}

// ensurePrefix derives the running-sum table for the cached day. The
// sums accumulate minuteP[m] * 60 s in minute order, so a prefix
// difference equals the sequential fold over the same minutes up to
// non-associativity of the two subtractions.
func (s *nodeSource) ensurePrefix(day int64) {
	s.ensureDay(day)
	if s.prefixDay == day {
		return
	}
	if s.prefix == nil {
		s.prefix = make([]float64, minutesPerDay+1)
	}
	var cum float64
	for m := 0; m < minutesPerDay; m++ {
		cum += s.minuteP[m] * 60.0
		s.prefix[m+1] = cum
	}
	s.prefixDay = day
}

// MinutePower implements MinuteSource.
func (s *nodeSource) MinutePower(minute int64) float64 {
	if minute < 0 {
		return 0
	}
	s.ensureDay(minute / minutesPerDay)
	return s.minuteP[minute%minutesPerDay]
}

// DayPowers implements MinuteSource.
func (s *nodeSource) DayPowers(day int64) []float64 {
	s.ensureDay(day)
	return s.minuteP
}

// localFactor returns the node's multiplicative deviation for a 4-minute
// block (blocks give local clouds a short coherence time).
func (s *nodeSource) localFactor(minute int64) float64 {
	if s.variation == 0 {
		return 1
	}
	block := uint64(minute >> 2)
	return 1 + s.variation*(2*hash01(s.trace.cfg.Seed, s.nodeID+0x5bd1e995, block)-1)
}

func (s *nodeSource) Power(t simtime.Time) float64 {
	if t < 0 {
		return 0
	}
	minute := int64(t / simtime.Time(simtime.Minute))
	return s.peakW * s.trace.At(minute) * s.localFactor(minute)
}

// Energy answers interval queries from the rolling day cache: partial
// minutes and short spans sum the cached per-minute powers in the same
// order as the original minute loop (bit-identical), while spans
// covering at least prefixSpanMinutes whole minutes within one day
// collapse to an O(1) prefix difference.
func (s *nodeSource) Energy(from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	if from < 0 {
		from = 0
		if to <= from {
			return 0
		}
	}
	const minuteT = simtime.Time(simtime.Minute)
	var total float64
	minute := int64(from / minuteT)
	cursor := from
	for cursor < to {
		day := minute / minutesPerDay
		s.ensureDay(day)
		m := int(minute % minutesPerDay)

		// This iteration covers the part of [cursor, to) that lies in
		// the cached day.
		segEnd := to
		if dayEnd := simtime.Time(day+1) * minutesPerDay * minuteT; dayEnd < segEnd {
			segEnd = dayEnd
		}

		if next := simtime.Time(minute+1) * minuteT; next >= segEnd {
			// The segment is contained in a single minute (possibly the
			// exact full minute).
			total += s.minuteP[m] * segEnd.Sub(cursor).Seconds()
			cursor = segEnd
			minute = int64(segEnd / minuteT)
			continue
		} else if cursor != simtime.Time(minute)*minuteT {
			// Head partial minute.
			total += s.minuteP[m] * next.Sub(cursor).Seconds()
			cursor = next
			minute++
			m++
		}

		// Whole minutes, then an optional tail partial minute.
		if nFull := int(int64(segEnd/minuteT) - minute); nFull > 0 {
			if nFull < prefixSpanMinutes {
				for i := 0; i < nFull; i++ {
					total += s.minuteP[m+i] * 60.0
				}
			} else {
				s.ensurePrefix(day)
				total += s.prefix[m+nFull] - s.prefix[m]
			}
			minute += int64(nFull)
			m += nFull
			cursor = simtime.Time(minute) * minuteT
		}
		if cursor < segEnd {
			total += s.minuteP[m] * segEnd.Sub(cursor).Seconds()
			cursor = segEnd
			minute++
		}
	}
	return total
}

// PeakPowerFor returns the panel peak power that generates exactly
// multiple transmission energies per forecast window at full sun
// (the paper uses multiple = 2).
func PeakPowerFor(txEnergyJ float64, window simtime.Duration, multiple float64) float64 {
	return multiple * txEnergyJ / window.Seconds()
}

// hash01 maps (seed, a, b) to a uniform float64 in [0,1) via splitmix64.
func hash01(seed, a, b uint64) float64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
