// Package energy provides the green-energy harvesting substrate: a
// deterministic synthetic solar-power trace with diurnal, seasonal and
// cloud-cover structure (standing in for the NREL measurement trace the
// paper replays), per-node spatial variation, and the very-short-term
// forecasters nodes use to predict per-window energy generation.
package energy

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/simtime"
)

// Source supplies harvested power for one node.
type Source interface {
	// Power returns the instantaneous harvested power in watts at t.
	Power(t simtime.Time) float64
	// Energy returns the energy in joules harvested during [from, to).
	Energy(from, to simtime.Time) float64
}

// minutesPerYear is the resolution of the base trace: one sample per
// minute over the simulated 365-day year.
const minutesPerYear = 365 * 24 * 60

// Weather states of the daily Markov chain.
const (
	weatherClear = iota
	weatherPartly
	weatherOvercast
	numWeatherStates
)

// SolarConfig parameterizes the synthetic year-long solar trace.
type SolarConfig struct {
	// Seed drives all randomness in the trace.
	Seed uint64
	// DaylightAmplitudeHours is the seasonal swing of the day length
	// around 12 h (≈3 h at mid latitudes).
	DaylightAmplitudeHours float64
	// SeasonalAmplitude is the seasonal swing of the clear-sky peak
	// around its annual mean, in [0,1).
	SeasonalAmplitude float64
	// CloudAttenuation is the maximum fraction of power removed by full
	// cloud cover.
	CloudAttenuation float64
	// WeatherPersistence is the probability that a day repeats the
	// previous day's weather state.
	WeatherPersistence float64
}

// DefaultSolarConfig returns a temperate mid-latitude configuration.
func DefaultSolarConfig(seed uint64) SolarConfig {
	return SolarConfig{
		Seed:                   seed,
		DaylightAmplitudeHours: 3,
		SeasonalAmplitude:      0.25,
		CloudAttenuation:       0.85,
		WeatherPersistence:     0.6,
	}
}

// Validate reports the first out-of-range parameter.
func (c SolarConfig) Validate() error {
	switch {
	case c.DaylightAmplitudeHours < 0 || c.DaylightAmplitudeHours >= 12:
		return fmt.Errorf("energy: daylight amplitude %v h outside [0,12)", c.DaylightAmplitudeHours)
	case c.SeasonalAmplitude < 0 || c.SeasonalAmplitude >= 1:
		return fmt.Errorf("energy: seasonal amplitude %v outside [0,1)", c.SeasonalAmplitude)
	case c.CloudAttenuation < 0 || c.CloudAttenuation > 1:
		return fmt.Errorf("energy: cloud attenuation %v outside [0,1]", c.CloudAttenuation)
	case c.WeatherPersistence < 0 || c.WeatherPersistence > 1:
		return fmt.Errorf("energy: weather persistence %v outside [0,1]", c.WeatherPersistence)
	}
	return nil
}

// YearTrace is the shared normalized (peak ≈ 1) solar-power profile of
// the deployment area: one sample per minute for 365 days. Node sources
// scale it to their panel size and add local cloud variation. A YearTrace
// is immutable after construction and safe for concurrent use.
type YearTrace struct {
	cfg     SolarConfig
	samples []float32
}

// NewYearTrace synthesizes the deployment-wide trace. The construction is
// deterministic in the config.
func NewYearTrace(cfg SolarConfig) (*YearTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	yt := &YearTrace{cfg: cfg, samples: make([]float32, minutesPerYear)}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x501a7))

	state := weatherClear
	cloud := 0.2 // Ornstein-Uhlenbeck cloudiness in [0,1]
	for day := 0; day < 365; day++ {
		state = nextWeather(rng, state, cfg.WeatherPersistence)
		mu, sigma := cloudParams(state)
		daylight := 12 + cfg.DaylightAmplitudeHours*math.Sin(2*math.Pi*float64(day-80)/365)
		sunrise := 12 - daylight/2
		seasonal := 1 - cfg.SeasonalAmplitude + cfg.SeasonalAmplitude*(1+math.Sin(2*math.Pi*float64(day-80)/365))/2
		for m := 0; m < 24*60; m++ {
			// Cloudiness evolves every minute, day and night, so mornings
			// start from the overnight weather.
			cloud += 0.02*(mu-cloud) + sigma*rng.NormFloat64()
			cloud = min(1, max(0, cloud))

			hour := float64(m) / 60
			var clearSky float64
			if hour > sunrise && hour < sunrise+daylight {
				clearSky = math.Pow(math.Sin(math.Pi*(hour-sunrise)/daylight), 1.3)
			}
			p := seasonal * clearSky * (1 - cfg.CloudAttenuation*cloud)
			yt.samples[day*24*60+m] = float32(p)
		}
	}
	return yt, nil
}

func nextWeather(rng *rand.Rand, state int, persistence float64) int {
	if rng.Float64() < persistence {
		return state
	}
	// Base distribution over the other states.
	switch r := rng.Float64(); {
	case r < 0.5:
		return weatherClear
	case r < 0.85:
		return weatherPartly
	default:
		return weatherOvercast
	}
}

func cloudParams(state int) (mu, sigma float64) {
	switch state {
	case weatherClear:
		return 0.08, 0.01
	case weatherPartly:
		return 0.45, 0.05
	default: // overcast
		return 0.9, 0.02
	}
}

// At returns the normalized power at an absolute minute index, wrapping
// across years with a small deterministic year-to-year factor.
func (yt *YearTrace) At(minute int64) float64 {
	if minute < 0 {
		return 0
	}
	year := minute / minutesPerYear
	idx := minute % minutesPerYear
	base := float64(yt.samples[idx])
	if year == 0 {
		return base
	}
	// Year-to-year variability of +-8%.
	f := 0.92 + 0.16*hash01(yt.cfg.Seed, uint64(year), 0x9e77)
	return min(1, base*f)
}

// Config returns the trace configuration.
func (yt *YearTrace) Config() SolarConfig { return yt.cfg }

// NodeSource derives a node's harvest source from the shared trace.
//
// peakW is the panel's peak electrical power (the paper sizes it so peak
// generation over one forecast window funds two transmissions).
// variation adds deterministic per-node, per-interval multiplicative
// noise of the given relative amplitude, emulating local cloud cover and
// shading across the deployment area.
func (yt *YearTrace) NodeSource(nodeID int, peakW, variation float64) Source {
	return &nodeSource{
		trace:     yt,
		nodeID:    uint64(nodeID),
		peakW:     peakW,
		variation: min(1, max(0, variation)),
	}
}

type nodeSource struct {
	trace     *YearTrace
	nodeID    uint64
	peakW     float64
	variation float64
}

var _ Source = (*nodeSource)(nil)

// localFactor returns the node's multiplicative deviation for a 4-minute
// block (blocks give local clouds a short coherence time).
func (s *nodeSource) localFactor(minute int64) float64 {
	if s.variation == 0 {
		return 1
	}
	block := uint64(minute >> 2)
	return 1 + s.variation*(2*hash01(s.trace.cfg.Seed, s.nodeID+0x5bd1e995, block)-1)
}

func (s *nodeSource) Power(t simtime.Time) float64 {
	if t < 0 {
		return 0
	}
	minute := int64(t / simtime.Time(simtime.Minute))
	return s.peakW * s.trace.At(minute) * s.localFactor(minute)
}

func (s *nodeSource) Energy(from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	if from < 0 {
		from = 0
	}
	var total float64
	minute := int64(from / simtime.Time(simtime.Minute))
	cursor := from
	for cursor < to {
		next := simtime.Time(minute+1) * simtime.Time(simtime.Minute)
		if next > to {
			next = to
		}
		p := s.peakW * s.trace.At(minute) * s.localFactor(minute)
		total += p * next.Sub(cursor).Seconds()
		cursor = next
		minute++
	}
	return total
}

// PeakPowerFor returns the panel peak power that generates exactly
// multiple transmission energies per forecast window at full sun
// (the paper uses multiple = 2).
func PeakPowerFor(txEnergyJ float64, window simtime.Duration, multiple float64) float64 {
	return multiple * txEnergyJ / window.Seconds()
}

// hash01 maps (seed, a, b) to a uniform float64 in [0,1) via splitmix64.
func hash01(seed, a, b uint64) float64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
