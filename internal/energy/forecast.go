package energy

import (
	"math/rand/v2"

	"repro/internal/simtime"
)

// Forecaster predicts per-window harvested energy, the on-sensor stand-in
// for the PV-forecast models of the paper's reference [22]. Forecasters
// learn only from locally observable history (Observe); the simulator
// feeds each node's forecaster the energy its own panel actually
// harvested.
type Forecaster interface {
	// ForecastWindows predicts the energy in joules harvested in each of
	// n consecutive windows of length window starting at t.
	ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64
	// Observe records that energyJ joules were actually harvested during
	// [from, to), so learning forecasters can adapt.
	Observe(from, to simtime.Time, energyJ float64)
}

// Perfect is an oracle forecaster that returns the source's actual
// generation. It isolates protocol behaviour from forecast error in
// ablation experiments.
type Perfect struct {
	Source Source
}

var _ Forecaster = (*Perfect)(nil)

// ForecastWindows implements Forecaster.
func (p *Perfect) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		from := t.Add(simtime.Duration(i) * window)
		out[i] = p.Source.Energy(from, from.Add(window))
	}
	return out
}

// Observe implements Forecaster; the oracle has nothing to learn.
func (p *Perfect) Observe(simtime.Time, simtime.Time, float64) {}

// Noisy wraps the oracle with multiplicative Gaussian error of the given
// relative standard deviation, for forecast-quality ablations.
type Noisy struct {
	inner  Perfect
	relStd float64
	rng    *rand.Rand
}

var _ Forecaster = (*Noisy)(nil)

// NewNoisy returns a noisy oracle forecaster seeded deterministically.
func NewNoisy(src Source, relStd float64, seed uint64) *Noisy {
	return &Noisy{
		inner:  Perfect{Source: src},
		relStd: relStd,
		rng:    rand.New(rand.NewPCG(seed, 0xf04eca57)),
	}
}

// ForecastWindows implements Forecaster.
func (f *Noisy) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	out := f.inner.ForecastWindows(t, window, n)
	for i := range out {
		out[i] = max(0, out[i]*(1+f.relStd*f.rng.NormFloat64()))
	}
	return out
}

// Observe implements Forecaster.
func (f *Noisy) Observe(simtime.Time, simtime.Time, float64) {}

// minutesPerDay is the resolution of the DiurnalEWMA profile.
const minutesPerDay = 24 * 60

// DiurnalEWMA is the default on-sensor forecaster: it maintains an
// exponentially weighted moving average of observed power for every
// minute of the day and predicts a window's energy as the profile mean
// over the window. It uses only locally available history, matching the
// constraints the paper places on node-side forecasting.
type DiurnalEWMA struct {
	alpha   float64
	profile [minutesPerDay]float64
	seen    [minutesPerDay]bool
}

var _ Forecaster = (*DiurnalEWMA)(nil)

// NewDiurnalEWMA returns an empty profile with the given smoothing factor
// (weight of the newest observation); alpha is clamped into (0,1].
func NewDiurnalEWMA(alpha float64) *DiurnalEWMA {
	return &DiurnalEWMA{alpha: min(1, max(1e-3, alpha))}
}

// Observe implements Forecaster: the average power over [from, to) is
// folded into every minute-of-day slot the interval touches.
//
// Each slot's EWMA update is weighted by the slot's share of the
// observation — the overlap divided by min(interval length, slot
// length). An interval contained in a single slot therefore keeps full
// weight, and a fully covered interior slot of a long interval does
// too, but a short observation straddling a minute boundary no longer
// updates both slots as if it covered each of them fully: its evidence
// is split in proportion to the overlap. Slots with negligible
// coverage (weight below 1e-6) are skipped.
func (f *DiurnalEWMA) Observe(from, to simtime.Time, energyJ float64) {
	if to <= from {
		return
	}
	const minuteT = simtime.Time(simtime.Minute)
	obsLen := to.Sub(from)
	power := energyJ / obsLen.Seconds()
	denom := obsLen
	if denom > simtime.Minute {
		denom = simtime.Minute
	}
	start := int64(from / minuteT)
	end := int64((to - 1) / minuteT)
	for m := start; m <= end; m++ {
		lo, hi := from, to
		if slotStart := simtime.Time(m) * minuteT; slotStart > lo {
			lo = slotStart
		}
		if slotEnd := simtime.Time(m+1) * minuteT; slotEnd < hi {
			hi = slotEnd
		}
		w := float64(hi.Sub(lo)) / float64(denom)
		if w < 1e-6 {
			continue
		}
		slot := int(m % minutesPerDay)
		if !f.seen[slot] {
			f.profile[slot] = power
			f.seen[slot] = true
			continue
		}
		a := f.alpha * w
		f.profile[slot] = a*power + (1-a)*f.profile[slot]
	}
}

// ForecastWindows implements Forecaster.
func (f *DiurnalEWMA) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		from := t.Add(simtime.Duration(i) * window)
		to := from.Add(window)
		var joules float64
		cursor := from
		minute := int64(from / simtime.Time(simtime.Minute))
		for cursor < to {
			next := simtime.Time(minute+1) * simtime.Time(simtime.Minute)
			if next > to {
				next = to
			}
			joules += f.profile[int(minute%minutesPerDay)] * next.Sub(cursor).Seconds()
			cursor = next
			minute++
		}
		out[i] = joules
	}
	return out
}

// Prime trains the profile by replaying the source for the given number
// of days before deployment, emulating the paper's offline training at
// the gateway.
func (f *DiurnalEWMA) Prime(src Source, days int) {
	for d := 0; d < days; d++ {
		for m := 0; m < minutesPerDay; m++ {
			from := simtime.Time(d*minutesPerDay+m) * simtime.Time(simtime.Minute)
			to := from.Add(simtime.Minute)
			f.Observe(from, to, src.Energy(from, to))
		}
	}
}
