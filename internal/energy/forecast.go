package energy

import (
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/simtime"
)

// Forecaster predicts per-window harvested energy, the on-sensor stand-in
// for the PV-forecast models of the paper's reference [22]. Forecasters
// learn only from locally observable history (Observe); the simulator
// feeds each node's forecaster the energy its own panel actually
// harvested.
type Forecaster interface {
	// ForecastWindows predicts the energy in joules harvested in each of
	// n consecutive windows of length window starting at t. The returned
	// slice may be the forecaster's internal buffer, overwritten by the
	// next ForecastWindows call: callers must not retain it.
	ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64
	// Observe records that energyJ joules were actually harvested during
	// [from, to), so learning forecasters can adapt.
	Observe(from, to simtime.Time, energyJ float64)
}

// Perfect is an oracle forecaster that returns the source's actual
// generation. It isolates protocol behaviour from forecast error in
// ablation experiments.
type Perfect struct {
	Source Source

	buf []float64 // reused across ForecastWindows calls
}

var _ Forecaster = (*Perfect)(nil)

// ForecastWindows implements Forecaster.
func (p *Perfect) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	out := p.reserve(n)
	for i := range out {
		from := t.Add(simtime.Duration(i) * window)
		out[i] = p.Source.Energy(from, from.Add(window))
	}
	return out
}

// Observe implements Forecaster; the oracle has nothing to learn.
func (p *Perfect) Observe(simtime.Time, simtime.Time, float64) {}

func (p *Perfect) reserve(n int) []float64 {
	if cap(p.buf) < n {
		p.buf = make([]float64, n)
	}
	p.buf = p.buf[:n]
	return p.buf
}

// Noisy wraps the oracle with multiplicative Gaussian error of the given
// relative standard deviation, for forecast-quality ablations.
type Noisy struct {
	inner  Perfect
	relStd float64
	rng    *rand.Rand
}

var _ Forecaster = (*Noisy)(nil)

// NewNoisy returns a noisy oracle forecaster seeded deterministically.
func NewNoisy(src Source, relStd float64, seed uint64) *Noisy {
	return &Noisy{
		inner:  Perfect{Source: src},
		relStd: relStd,
		rng:    rand.New(rand.NewPCG(seed, 0xf04eca57)),
	}
}

// ForecastWindows implements Forecaster.
func (f *Noisy) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	out := f.inner.ForecastWindows(t, window, n)
	for i := range out {
		out[i] = max(0, out[i]*(1+f.relStd*f.rng.NormFloat64()))
	}
	return out
}

// Observe implements Forecaster.
func (f *Noisy) Observe(simtime.Time, simtime.Time, float64) {}

// minutesPerDay is the resolution of the DiurnalEWMA profile.
const minutesPerDay = 24 * 60

// DiurnalEWMA is the default on-sensor forecaster: it maintains an
// exponentially weighted moving average of observed power for every
// minute of the day and predicts a window's energy as the profile mean
// over the window. It uses only locally available history, matching the
// constraints the paper places on node-side forecasting.
type DiurnalEWMA struct {
	alpha float64
	// touched records whether any observation was ever folded in; a
	// pristine profile (never touched) lets Prime consult its cache
	// without scanning the seen array.
	touched bool
	// rev counts profile content changes: it is bumped exactly when a
	// fold stores a value whose float bits differ from what the slot
	// held. Callers that cache anything derived from ForecastWindows
	// output (the MAC decision table) revalidate against it; a fold
	// that writes the identical bits — the common shape at night, where
	// alpha·0 + (1−alpha)·0 lands back on +0 — must NOT invalidate, or
	// every partial-minute observation during a transmission would
	// evict the cache it is meant to serve.
	rev     uint64
	profile [minutesPerDay]float64
	seen    [minutesPerDay]bool
	buf     []float64 // reused across ForecastWindows calls
}

var _ Forecaster = (*DiurnalEWMA)(nil)

// NewDiurnalEWMA returns an empty profile with the given smoothing factor
// (weight of the newest observation); alpha is clamped into (0,1].
func NewDiurnalEWMA(alpha float64) *DiurnalEWMA {
	return &DiurnalEWMA{alpha: min(1, max(1e-3, alpha))}
}

// NewDiurnalEWMABank returns n independent forecasters backed by one
// contiguous allocation. A profile is ~13 KB, so a large simulation
// constructing one per node pays thousands of separate allocations (and
// the garbage collector tracks as many objects) for state with
// identical lifetime; the bank form is one slab. The elements must not
// be copied once observations start (the slices/arrays inside are
// per-element state), which nodes never do — each keeps a pointer.
func NewDiurnalEWMABank(alpha float64, n int) []DiurnalEWMA {
	bank := make([]DiurnalEWMA, n)
	a := min(1, max(1e-3, alpha))
	for i := range bank {
		bank[i].alpha = a
	}
	return bank
}

// Observe implements Forecaster: the average power over [from, to) is
// folded into every minute-of-day slot the interval touches.
//
// Each slot's EWMA update is weighted by the slot's share of the
// observation — the overlap divided by min(interval length, slot
// length). An interval contained in a single slot therefore keeps full
// weight, and a fully covered interior slot of a long interval does
// too, but a short observation straddling a minute boundary no longer
// updates both slots as if it covered each of them fully: its evidence
// is split in proportion to the overlap. Slots with negligible
// coverage (weight below 1e-6) are skipped.
func (f *DiurnalEWMA) Observe(from, to simtime.Time, energyJ float64) {
	if to <= from {
		return
	}
	f.touched = true
	const minuteT = simtime.Time(simtime.Minute)
	if from >= 0 && from%minuteT == 0 && to-from == minuteT {
		// Fast path for the integrator's dominant call shape: exactly
		// one full slot. Weight is exactly 1 (so a == alpha) and the
		// observation length is exactly 60 s; both expressions below are
		// bit-identical to the general path.
		f.ObserveFullSlot(int(int64(from/minuteT)%minutesPerDay), energyJ)
		return
	}
	obsLen := to.Sub(from)
	power := energyJ / obsLen.Seconds()
	denom := obsLen
	if denom > simtime.Minute {
		denom = simtime.Minute
	}
	start := int64(from / minuteT)
	end := int64((to - 1) / minuteT)
	for m := start; m <= end; m++ {
		lo, hi := from, to
		if slotStart := simtime.Time(m) * minuteT; slotStart > lo {
			lo = slotStart
		}
		if slotEnd := simtime.Time(m+1) * minuteT; slotEnd < hi {
			hi = slotEnd
		}
		w := float64(hi.Sub(lo)) / float64(denom)
		if w < 1e-6 {
			continue
		}
		slot := int(m % minutesPerDay)
		if !f.seen[slot] {
			if power != f.profile[slot] {
				f.rev++
			}
			f.profile[slot] = power
			f.seen[slot] = true
			continue
		}
		a := f.alpha * w
		v := a*power + (1-a)*f.profile[slot]
		if v != f.profile[slot] {
			f.rev++
		}
		f.profile[slot] = v
	}
}

// ObserveFullSlot folds a whole-minute observation into the given
// minute-of-day slot. It is the Observe fast path with the slot index
// already computed by the caller (the node integrator tracks the minute
// cursor anyway) and performs the identical arithmetic.
func (f *DiurnalEWMA) ObserveFullSlot(slot int, energyJ float64) {
	f.touched = true
	power := energyJ / 60.0
	if !f.seen[slot] {
		if power != f.profile[slot] {
			f.rev++
		}
		f.profile[slot] = power
		f.seen[slot] = true
		return
	}
	v := f.alpha*power + (1-f.alpha)*f.profile[slot]
	if v != f.profile[slot] {
		f.rev++
	}
	f.profile[slot] = v
}

// FoldFullSlots folds count consecutive whole-minute observations into
// the profile starting at the given minute-of-day slot: pows[j] is the
// harvested power of slot slot+j, and each fold performs exactly
// ObserveFullSlot(slot+j, pows[j]*60.0) — the energy = power·60 s,
// power = energy/60 s round trip included, so the result is
// bit-identical to the per-minute calls it replaces. The node
// integrator's slot-level charging spans use it to batch a proven run
// into one walk; spans never cross a day boundary, so slot+len(pows)
// stays within the day.
func (f *DiurnalEWMA) FoldFullSlots(slot int, pows []float64) {
	if len(pows) == 0 {
		return
	}
	f.touched = true
	a := f.alpha
	for j, p := range pows {
		power := (p * 60.0) / 60.0
		s := slot + j
		if !f.seen[s] {
			if power != f.profile[s] {
				f.rev++
			}
			f.profile[s] = power
			f.seen[s] = true
			continue
		}
		v := a*power + (1-a)*f.profile[s]
		if v != f.profile[s] {
			f.rev++
		}
		f.profile[s] = v
	}
}

// Rev returns the profile-content revision (see the rev field): it
// never stays put across a change to any slot's stored float bits, so
// any value derived from ForecastWindows output may be memoized against
// it. (Prime bumps it conservatively — once per replay rather than per
// changed slot — which can only cause a spurious rebuild, never a stale
// hit.)
func (f *DiurnalEWMA) Rev() uint64 { return f.rev }

// ZeroArcEnd returns the first instant at or after t at which a
// forecast window could see a non-zero profile slot: walking
// minute-of-day slots forward from t's slot (wrapping midnight), it
// finds the start of the first slot whose profile value is non-zero.
// While the profile revision is unchanged, every ForecastWindows query
// whose span [t', t'+n·window) lies entirely before the returned
// instant reads only zero-valued slots and therefore returns all-zero
// forecasts (each window is a non-negative combination of the slot
// values it overlaps). If every slot is zero the arc never ends and the
// maximum representable instant is returned. The MAC decision table
// uses this to bound a cached night-time decision's validity in time.
func (f *DiurnalEWMA) ZeroArcEnd(t simtime.Time) simtime.Time {
	const minuteT = simtime.Time(simtime.Minute)
	if t < 0 {
		return t
	}
	minute := int64(t / minuteT)
	for k := int64(0); k < minutesPerDay; k++ {
		if f.profile[int((minute+k)%minutesPerDay)] != 0 {
			return simtime.Time(minute+k) * minuteT
		}
	}
	return simtime.Time(1<<63 - 1)
}

// SlotZeroNoop reports whether a zero-energy full-slot observation
// would leave the slot bit-identical: the slot is seen and holds +0, so
// the fold writes alpha·(+0) + (1-alpha)·(+0) = +0 back. (A -0 profile
// value — impossible from non-negative harvests, but checked anyway —
// would flip sign bits and must take the real fold.) The integrator
// uses this to collapse idle night spans without touching the profile.
func (f *DiurnalEWMA) SlotZeroNoop(slot int) bool {
	return f.seen[slot] && f.profile[slot] == 0 && !math.Signbit(f.profile[slot])
}

// ForecastWindows implements Forecaster. Consecutive windows are walked
// with one running minute cursor; whole interior minutes use the exact
// constant 60 s instead of re-deriving it by division (a full simulated
// minute is exactly 60.0 seconds, so the result is bit-identical).
func (f *DiurnalEWMA) ForecastWindows(t simtime.Time, window simtime.Duration, n int) []float64 {
	if cap(f.buf) < n {
		f.buf = make([]float64, n)
	}
	f.buf = f.buf[:n]
	out := f.buf
	const minuteT = simtime.Time(simtime.Minute)
	if window == simtime.Minute && t >= 0 {
		// One-minute windows (the paper's configuration) tile the slot
		// grid with a fixed offset: every window splits into the same
		// head/tail fractions of two adjacent slots, so the boundary
		// seconds are computed once. An aligned window is exactly one
		// slot. Both shapes produce the sums of the general loop below
		// term for term.
		minute := int64(t / minuteT)
		slot := int(minute % minutesPerDay)
		if t == simtime.Time(minute)*minuteT {
			for i := range out {
				out[i] = f.profile[slot] * 60.0
				slot++
				if slot == minutesPerDay {
					slot = 0
				}
			}
			return out
		}
		head := (simtime.Time(minute+1) * minuteT).Sub(t).Seconds()
		tail := t.Sub(simtime.Time(minute) * minuteT).Seconds()
		for i := range out {
			next := slot + 1
			if next == minutesPerDay {
				next = 0
			}
			out[i] = f.profile[slot]*head + f.profile[next]*tail
			slot = next
		}
		return out
	}
	for i := range out {
		from := t.Add(simtime.Duration(i) * window)
		to := from.Add(window)
		var joules float64
		cursor := from
		minute := int64(from / minuteT)
		for cursor < to {
			next := simtime.Time(minute+1) * minuteT
			var secs float64
			if next <= to && cursor == simtime.Time(minute)*minuteT {
				secs = 60.0
			} else {
				if next > to {
					next = to
				}
				secs = next.Sub(cursor).Seconds()
			}
			joules += f.profile[int(minute%minutesPerDay)] * secs
			cursor = next
			minute++
		}
		out[i] = joules
	}
	return out
}

// primeKey identifies a primed profile exactly: a nodeSource is a pure
// function of its trace config and node parameters, so two Prime calls
// with equal keys fold the identical power sequence and land on
// bit-identical profiles.
type primeKey struct {
	cfg       SolarConfig
	nodeID    uint64
	peakW     float64
	variation float64
	alpha     float64
	days      int
}

// primeCache shares primed profiles across runs in one process. The
// experiment engine replays the same scenario seeds across protocol
// variants and sweep points (common random numbers), so every run after
// the first re-primes the exact same per-node profiles; a hit replaces
// ~days×1440 EWMA folds with one array copy of the identical bytes.
// Insertion stops at primeCacheMax entries (≈12 KB each) — a bound, not
// an eviction policy, so hits stay deterministic in long processes.
var primeCache = struct {
	sync.Mutex
	m map[primeKey]*[minutesPerDay]float64
}{m: make(map[primeKey]*[minutesPerDay]float64)}

const primeCacheMax = 4096

// Prime trains the profile by replaying the source for the given number
// of days before deployment, emulating the paper's offline training at
// the gateway. A MinuteSource is consumed through its per-minute cache:
// each training observation is exactly one full slot, so the inlined
// update below is the Observe fast path with the same bit-exact
// energy = power·60 s, power = energy/60 s round trip.
func (f *DiurnalEWMA) Prime(src Source, days int) {
	if ns, ok := src.(*nodeSource); ok {
		// The cache is only sound for a pristine profile (the cached
		// result assumes the fold started from the untrained state).
		pristine := days > 0 && !f.touched
		var key primeKey
		if pristine {
			key = primeKey{
				cfg:       ns.trace.cfg,
				nodeID:    ns.nodeID,
				peakW:     ns.peakW,
				variation: ns.variation,
				alpha:     f.alpha,
				days:      days,
			}
			primeCache.Lock()
			cached := primeCache.m[key]
			primeCache.Unlock()
			if cached != nil {
				f.touched = true
				f.rev++
				f.profile = *cached
				for m := range f.seen {
					f.seen[m] = true
				}
				return
			}
		}
		// In-package fast path: walk each training day's cached minute
		// powers directly instead of going through the interface.
		if days > 0 {
			f.touched = true
			f.rev++
		}
		for d := 0; d < days; d++ {
			ns.ensureDay(int64(d))
			mp := ns.minuteP
			for m := 0; m < minutesPerDay; m++ {
				power := (mp[m] * 60.0) / 60.0
				if !f.seen[m] {
					f.profile[m] = power
					f.seen[m] = true
					continue
				}
				f.profile[m] = f.alpha*power + (1-f.alpha)*f.profile[m]
			}
		}
		if pristine {
			out := f.profile
			primeCache.Lock()
			if len(primeCache.m) < primeCacheMax {
				primeCache.m[key] = &out
			}
			primeCache.Unlock()
		}
		return
	}
	if ms, ok := src.(MinuteSource); ok {
		if days > 0 {
			f.touched = true
			f.rev++
		}
		for d := 0; d < days; d++ {
			base := int64(d) * minutesPerDay
			for m := 0; m < minutesPerDay; m++ {
				power := (ms.MinutePower(base+int64(m)) * 60.0) / 60.0
				if !f.seen[m] {
					f.profile[m] = power
					f.seen[m] = true
					continue
				}
				f.profile[m] = f.alpha*power + (1-f.alpha)*f.profile[m]
			}
		}
		return
	}
	for d := 0; d < days; d++ {
		for m := 0; m < minutesPerDay; m++ {
			from := simtime.Time(d*minutesPerDay+m) * simtime.Time(simtime.Minute)
			to := from.Add(simtime.Minute)
			f.Observe(from, to, src.Energy(from, to))
		}
	}
}
