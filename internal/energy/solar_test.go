package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func newTestTrace(t *testing.T, seed uint64) *YearTrace {
	t.Helper()
	yt, err := NewYearTrace(DefaultSolarConfig(seed))
	if err != nil {
		t.Fatalf("NewYearTrace: %v", err)
	}
	return yt
}

func TestSolarConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SolarConfig)
	}{
		{"daylight amplitude too big", func(c *SolarConfig) { c.DaylightAmplitudeHours = 12 }},
		{"negative seasonal", func(c *SolarConfig) { c.SeasonalAmplitude = -0.1 }},
		{"cloud attenuation > 1", func(c *SolarConfig) { c.CloudAttenuation = 1.1 }},
		{"persistence > 1", func(c *SolarConfig) { c.WeatherPersistence = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultSolarConfig(1)
			tt.mutate(&cfg)
			if _, err := NewYearTrace(cfg); err == nil {
				t.Error("NewYearTrace should reject invalid config")
			}
		})
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := newTestTrace(t, 42)
	b := newTestTrace(t, 42)
	for _, minute := range []int64{0, 720, 100_000, 525_599, 600_000} {
		if a.At(minute) != b.At(minute) {
			t.Fatalf("trace not deterministic at minute %d", minute)
		}
	}
	c := newTestTrace(t, 43)
	var differs bool
	for minute := int64(0); minute < minutesPerYear; minute += 997 {
		if a.At(minute) != c.At(minute) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("different seeds should produce different traces")
	}
}

func TestTraceDayNightStructure(t *testing.T) {
	yt := newTestTrace(t, 7)
	var nightMax, noonSum float64
	days := 0
	for day := 0; day < 365; day++ {
		base := int64(day * 24 * 60)
		nightMax = math.Max(nightMax, yt.At(base+120)) // 02:00
		noonSum += yt.At(base + 12*60)                 // 12:00
		days++
	}
	if nightMax != 0 {
		t.Errorf("power at 02:00 should always be 0, max was %v", nightMax)
	}
	if avg := noonSum / float64(days); avg < 0.2 {
		t.Errorf("average noon power %v too low; trace looks broken", avg)
	}
}

func TestTraceBounds(t *testing.T) {
	yt := newTestTrace(t, 9)
	for minute := int64(0); minute < minutesPerYear; minute++ {
		v := yt.At(minute)
		if v < 0 || v > 1 {
			t.Fatalf("normalized power %v outside [0,1] at minute %d", v, minute)
		}
	}
	if yt.At(-5) != 0 {
		t.Error("negative time should yield zero power")
	}
}

func TestTraceYearWrap(t *testing.T) {
	yt := newTestTrace(t, 11)
	// Year 1 must correlate with year 0 (same base day) but may be scaled.
	m := int64(180*24*60 + 12*60) // noon midsummer
	y0 := yt.At(m)
	y1 := yt.At(m + minutesPerYear)
	if y0 == 0 {
		t.Skip("midsummer noon overcast in this seed")
	}
	ratio := y1 / y0
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("year-to-year factor %v outside +-8%% envelope", ratio)
	}
}

func TestNodeSourcePowerAndEnergyConsistency(t *testing.T) {
	yt := newTestTrace(t, 13)
	src := yt.NodeSource(3, 2.0, 0.2)

	// Energy over one exact minute equals power * 60 at that minute.
	from := simtime.Time(200*24*60+12*60) * simtime.Time(simtime.Minute)
	e := src.Energy(from, from.Add(simtime.Minute))
	p := src.Power(from)
	if !closeTo(e, p*60, 1e-9) {
		t.Errorf("Energy over a minute = %v, want power*60 = %v", e, p*60)
	}
}

func TestNodeSourceEnergyAdditive(t *testing.T) {
	yt := newTestTrace(t, 17)
	src := yt.NodeSource(5, 1.5, 0.3)
	f := func(rawStart uint32, rawA, rawB uint16) bool {
		start := simtime.Time(int64(rawStart) * 6)     // up to ~298 days
		mid := start.Add(simtime.Duration(rawA) * 110) // up to ~2 h
		end := mid.Add(simtime.Duration(rawB) * 110)
		whole := src.Energy(start, end)
		split := src.Energy(start, mid) + src.Energy(mid, end)
		return closeTo(whole, split, 1e-6*(1+whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodeSourceEdgeCases(t *testing.T) {
	yt := newTestTrace(t, 19)
	src := yt.NodeSource(1, 1, 0)
	if got := src.Energy(100, 100); got != 0 {
		t.Errorf("zero-length interval energy = %v", got)
	}
	if got := src.Energy(200, 100); got != 0 {
		t.Errorf("inverted interval energy = %v", got)
	}
	if got := src.Power(-1); got != 0 {
		t.Errorf("pre-deployment power = %v", got)
	}
	// Negative start is clamped.
	if got := src.Energy(-simtime.Time(simtime.Hour), 0); got != 0 {
		t.Errorf("pre-deployment energy = %v", got)
	}
}

func TestNodeSourcesDiffer(t *testing.T) {
	yt := newTestTrace(t, 23)
	a := yt.NodeSource(1, 1, 0.4)
	b := yt.NodeSource(2, 1, 0.4)
	var differs bool
	for day := 0; day < 30 && !differs; day++ {
		at := simtime.Time(day*24*60+12*60) * simtime.Time(simtime.Minute)
		if math.Abs(a.Power(at)-b.Power(at)) > 1e-12 && a.Power(at) > 0 {
			differs = true
		}
	}
	if !differs {
		t.Error("nodes with variation should see different local power")
	}
	// Zero variation: identical to the base trace scaling.
	c := yt.NodeSource(1, 2, 0)
	d := yt.NodeSource(99, 2, 0)
	at := simtime.Time(100*24*60+12*60) * simtime.Time(simtime.Minute)
	if c.Power(at) != d.Power(at) {
		t.Error("zero-variation sources must match")
	}
}

func TestAnnualEnergyPlausible(t *testing.T) {
	yt := newTestTrace(t, 29)
	src := yt.NodeSource(0, 1, 0) // 1 W peak panel
	total := src.Energy(0, simtime.Time(simtime.Year))
	// A 1 W-peak panel at mid latitude should harvest on the order of
	// 2-5 MJ per year (2.5-4 equivalent full-sun hours per day would be
	// 3.3-5.3 MJ before clouds).
	if total < 1e6 || total > 8e6 {
		t.Errorf("annual harvest %v J implausible for a 1 W panel", total)
	}
}

func TestPeakPowerFor(t *testing.T) {
	got := PeakPowerFor(0.03, simtime.Minute, 2)
	if !closeTo(got, 2*0.03/60, 1e-15) {
		t.Errorf("PeakPowerFor = %v", got)
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
