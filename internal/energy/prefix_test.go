package energy

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

// oracleEnergy is the pre-cache interval integral: walk the span minute
// by minute and accumulate peakW · trace · localFactor · seconds — the
// exact expression and evaluation order the original Energy loop used.
func oracleEnergy(s *nodeSource, from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	if from < 0 {
		from = 0
		if to <= from {
			return 0
		}
	}
	const minuteT = simtime.Time(simtime.Minute)
	var total float64
	cursor := from
	minute := int64(from / minuteT)
	for cursor < to {
		next := simtime.Time(minute+1) * minuteT
		if next > to {
			next = to
		}
		p := s.peakW * s.trace.At(minute) * s.localFactor(minute)
		total += p * next.Sub(cursor).Seconds()
		cursor = next
		minute++
	}
	return total
}

// TestEnergyPrefixMatchesMinuteOracle drives randomized interval queries
// against the per-minute oracle. Spans shorter than prefixSpanMinutes
// must be bit-identical (they take the sequential path, which reproduces
// the oracle fold term for term); longer spans may use the O(1) prefix
// difference and are allowed last-ulp drift only.
func TestEnergyPrefixMatchesMinuteOracle(t *testing.T) {
	yt := newTestTrace(t, 77)
	for _, variation := range []float64{0, 0.25} {
		// A fresh source per variation; queries jump around arbitrarily,
		// including backwards and across day and year boundaries, so the
		// rolling day cache refills in every direction.
		src := yt.NodeSource(3, 0.09, variation).(*nodeSource)
		rng := rand.New(rand.NewPCG(42, uint64(math.Float64bits(variation))))
		const msPerMinute = int64(simtime.Minute) / int64(simtime.Millisecond)
		horizonMs := int64(3*365*minutesPerDay) * msPerMinute
		for i := 0; i < 500; i++ {
			startMs := rng.Int64N(horizonMs)
			var spanMs int64
			if i%2 == 0 {
				spanMs = 1 + rng.Int64N(int64(prefixSpanMinutes)*msPerMinute-1)
			} else {
				spanMs = 1 + rng.Int64N(3*minutesPerDay*msPerMinute)
			}
			from := simtime.Time(startMs * int64(simtime.Millisecond))
			to := from + simtime.Time(spanMs*int64(simtime.Millisecond))
			got := src.Energy(from, to)
			want := oracleEnergy(src, from, to)
			if spanMs < int64(prefixSpanMinutes)*msPerMinute {
				if got != want {
					t.Fatalf("variation %v short span [%d, %d): Energy = %v, oracle = %v (must be bit-identical)",
						variation, from, to, got, want)
				}
				continue
			}
			if diff := math.Abs(got - want); diff > 1e-6+1e-9*math.Abs(want) {
				t.Fatalf("variation %v long span [%d, %d): Energy = %v, oracle = %v (diff %g)",
					variation, from, to, got, want, diff)
			}
		}
	}
}

// TestEnergyPrefixLazy: the running-sum table is only materialized by a
// query that actually spans prefixSpanMinutes whole minutes — priming
// and per-minute integration never pay for it.
func TestEnergyPrefixLazy(t *testing.T) {
	yt := newTestTrace(t, 5)
	src := yt.NodeSource(1, 0.09, 0.25).(*nodeSource)
	const minuteT = simtime.Time(simtime.Minute)

	for m := int64(0); m < 2*minutesPerDay; m++ {
		src.MinutePower(m)
	}
	src.Energy(0, simtime.Time(prefixSpanMinutes-1)*minuteT)
	if src.prefix != nil || src.prefixDay != -1 {
		t.Fatal("short queries must not materialize the prefix table")
	}

	long := src.Energy(0, simtime.Time(2*prefixSpanMinutes)*minuteT)
	if src.prefix == nil || src.prefixDay != 0 {
		t.Fatal("a long query should materialize the prefix table for its day")
	}
	if want := oracleEnergy(src, 0, simtime.Time(2*prefixSpanMinutes)*minuteT); math.Abs(long-want) > 1e-9 {
		t.Fatalf("long query = %v, oracle = %v", long, want)
	}
}

// TestPrimeFastPathsMatchObserveReplay: all three Prime branches — the
// in-package day-cache walk, the generic MinuteSource walk, and the
// legacy Observe replay — must leave bit-identical profiles, since each
// training observation is exactly one full minute slot.
func TestPrimeFastPathsMatchObserveReplay(t *testing.T) {
	yt := newTestTrace(t, 9)
	const days = 3

	fast := NewDiurnalEWMA(0.3)
	fast.Prime(yt.NodeSource(5, 0.09, 0.25), days)

	// Hide the concrete type so Prime takes the generic MinuteSource walk.
	generic := NewDiurnalEWMA(0.3)
	generic.Prime(struct{ MinuteSource }{yt.NodeSource(5, 0.09, 0.25).(*nodeSource)}, days)

	// Replay the legacy path by hand: one Observe per simulated minute.
	slow := NewDiurnalEWMA(0.3)
	src := yt.NodeSource(5, 0.09, 0.25)
	for d := 0; d < days; d++ {
		for m := 0; m < minutesPerDay; m++ {
			from := simtime.Time(d*minutesPerDay+m) * simtime.Time(simtime.Minute)
			to := from.Add(simtime.Minute)
			slow.Observe(from, to, src.Energy(from, to))
		}
	}

	for m := 0; m < minutesPerDay; m++ {
		if fast.profile[m] != slow.profile[m] || fast.seen[m] != slow.seen[m] {
			t.Fatalf("slot %d: day-cache Prime %v (seen %v), Observe replay %v (seen %v)",
				m, fast.profile[m], fast.seen[m], slow.profile[m], slow.seen[m])
		}
		if generic.profile[m] != slow.profile[m] {
			t.Fatalf("slot %d: generic Prime %v, Observe replay %v", m, generic.profile[m], slow.profile[m])
		}
	}
}

// TestForecastWindowsMinuteFastPath: the 1-minute fast path (aligned and
// unaligned starts) must reproduce the general minute-walk loop bit for
// bit, including day wrap-around of the slot cursor.
func TestForecastWindowsMinuteFastPath(t *testing.T) {
	f := NewDiurnalEWMA(0.3)
	rng := rand.New(rand.NewPCG(11, 3))
	for m := 0; m < minutesPerDay; m++ {
		f.ObserveFullSlot(m, rng.Float64()*6)
	}

	// general replays ForecastWindows' fallback loop for one window.
	general := func(from, to simtime.Time) float64 {
		const minuteT = simtime.Time(simtime.Minute)
		var joules float64
		cursor := from
		minute := int64(from / minuteT)
		for cursor < to {
			next := simtime.Time(minute+1) * minuteT
			var secs float64
			if next <= to && cursor == simtime.Time(minute)*minuteT {
				secs = 60.0
			} else {
				if next > to {
					next = to
				}
				secs = next.Sub(cursor).Seconds()
			}
			joules += f.profile[int(minute%minutesPerDay)] * secs
			cursor = next
			minute++
		}
		return joules
	}

	starts := []simtime.Time{
		0,
		simtime.Time(simtime.Minute) * 17, // aligned
		simtime.Time(simtime.Minute)*42 + simtime.Time(7500)*simtime.Time(simtime.Millisecond), // unaligned
		simtime.Time(simtime.Minute) * (minutesPerDay - 3),                                     // wraps midnight
		simtime.Time(simtime.Minute)*(minutesPerDay-3) + simtime.Time(simtime.Second),
	}
	for _, start := range starts {
		got := f.ForecastWindows(start, simtime.Minute, 8)
		for i, g := range got {
			from := start.Add(simtime.Duration(i) * simtime.Minute)
			if want := general(from, from.Add(simtime.Minute)); g != want {
				t.Fatalf("start %d window %d: fast path %v, general loop %v", start, i, g, want)
			}
		}
	}
}
