package lora

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSymbolsKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		sf      SpreadingFactor
		payload int
		want    float64
	}{
		// Hand-computed from Eq. (7) with preamble 8, CR 4/5, BW 125 kHz.
		{name: "SF7/10B", sf: SF7, payload: 10, want: 8 + 4.25 + 8 + 13.75},
		{name: "SF10/10B", sf: SF10, payload: 10, want: 8 + 4.25 + 8 + 8.75},
		{name: "SF12/10B lowDR", sf: SF12, payload: 10, want: 8 + 4.25 + 8 + 7.5},
		{name: "SF10/0B clamps", sf: SF10, payload: 0, want: 8 + 4.25 + 8 + 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			p.SF = tt.sf
			if got := p.Symbols(tt.payload); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("Symbols(%d) = %v, want %v", tt.payload, got, tt.want)
			}
		})
	}
}

func TestAirtimeKnownValues(t *testing.T) {
	tests := []struct {
		sf   SpreadingFactor
		want simtime.Duration // ceil to ms
	}{
		{SF7, 35},   // 34 symbols x 1.024 ms
		{SF10, 238}, // 29 symbols x 8.192 ms
		{SF12, 910}, // 27.75 symbols x 32.768 ms
	}
	for _, tt := range tests {
		p := DefaultParams()
		p.SF = tt.sf
		if got := p.Airtime(10); got != tt.want {
			t.Errorf("%v Airtime(10) = %v ms, want %v ms", tt.sf, int64(got), int64(tt.want))
		}
	}
}

func TestLowDataRateOptimize(t *testing.T) {
	for sf := MinSF; sf <= MaxSF; sf++ {
		p := DefaultParams()
		p.SF = sf
		want := sf >= SF11 // at 125 kHz, symbol time >= 16 ms from SF11
		if got := p.LowDataRateOptimize(); got != want {
			t.Errorf("%v LowDataRateOptimize = %v, want %v", sf, got, want)
		}
	}
}

func TestTxEnergyKnownValue(t *testing.T) {
	p := DefaultParams() // SF10, 14 dBm -> 44 mA at 3.3 V
	got := p.TxEnergy(10)
	want := 3.3 * 0.044 * 29 * (1024.0 / 125000.0)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("TxEnergy(10) = %v J, want %v J", got, want)
	}
}

func TestAirtimeMonotonicInPayload(t *testing.T) {
	f := func(raw uint8) bool {
		p := DefaultParams()
		a := int(raw % 200)
		return p.AirtimeSeconds(a) <= p.AirtimeSeconds(a+1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAirtimeMonotonicInSF(t *testing.T) {
	f := func(raw uint8) bool {
		payload := int(raw%100) + 1
		prev := -1.0
		for sf := MinSF; sf <= MaxSF; sf++ {
			p := DefaultParams()
			p.SF = sf
			at := p.AirtimeSeconds(payload)
			if at <= prev {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTxEnergyIncreasesWithSFAndPower(t *testing.T) {
	p := DefaultParams()
	p.SF = SF7
	low := p.TxEnergy(10)
	p.SF = SF12
	high := p.TxEnergy(10)
	if high <= low {
		t.Errorf("SF12 energy %v should exceed SF7 energy %v", high, low)
	}
	p.TxPowerDBm = 20
	boosted := p.TxEnergy(10)
	if boosted <= high {
		t.Errorf("20 dBm energy %v should exceed 14 dBm energy %v", boosted, high)
	}
}

func TestSensitivityOrdering(t *testing.T) {
	prev := 0.0
	for sf := MinSF; sf <= MaxSF; sf++ {
		s := Sensitivity(sf, BW125)
		if sf > MinSF && s >= prev {
			t.Errorf("sensitivity must improve (decrease) with SF: %v -> %v at %v", prev, s, sf)
		}
		prev = s
	}
	// Wider bandwidth worsens sensitivity.
	if Sensitivity(SF10, BW500) <= Sensitivity(SF10, BW125) {
		t.Error("BW500 sensitivity should be worse (higher) than BW125")
	}
}

func TestDemodulationFloorOrdering(t *testing.T) {
	for sf := MinSF; sf < MaxSF; sf++ {
		if DemodulationFloor(sf) <= DemodulationFloor(sf+1) {
			t.Errorf("demod floor must decrease with SF: %v vs %v", sf, sf+1)
		}
	}
}

func TestTxSupplyPowerInterpolation(t *testing.T) {
	tests := []struct {
		dBm  float64
		want float64
	}{
		{-5, 3.3 * 0.024},   // clamped low
		{2, 3.3 * 0.024},    // table point
		{14, 3.3 * 0.044},   // table point
		{15.5, 3.3 * 0.067}, // midway 14..17
		{25, 3.3 * 0.125},   // clamped high
	}
	for _, tt := range tests {
		if got := TxSupplyPower(tt.dBm); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("TxSupplyPower(%v) = %v, want %v", tt.dBm, got, tt.want)
		}
	}
}

func TestTxSupplyPowerMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return TxSupplyPower(lo) <= TxSupplyPower(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitRate(t *testing.T) {
	p := DefaultParams()
	p.SF = SF7
	// SF7, CR4/5, BW125: 7 * 0.8 * 125000 / 128 = 5468.75 bps.
	if got := p.BitRate(); !almostEqual(got, 5468.75, 1e-6) {
		t.Errorf("BitRate = %v, want 5468.75", got)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
		wantOK bool
	}{
		{name: "default ok", mutate: func(*Params) {}, wantOK: true},
		{name: "bad sf", mutate: func(p *Params) { p.SF = 6 }, wantOK: false},
		{name: "bad bw", mutate: func(p *Params) { p.Bandwidth = 0 }, wantOK: false},
		{name: "bad cr", mutate: func(p *Params) { p.CodingRate = 0.9 }, wantOK: false},
		{name: "bad preamble", mutate: func(p *Params) { p.PreambleSymbols = 0 }, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			err := p.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() error = %v, wantOK %v", err, tt.wantOK)
			}
		})
	}
}

func TestUS902Plan(t *testing.T) {
	plan := US902()
	if got := plan.NumUplink(); got != 72 {
		t.Fatalf("US902 uplink channels = %d, want 72", got)
	}
	if got := len(plan.Downlink); got != 8 {
		t.Fatalf("US902 downlink channels = %d, want 8", got)
	}
	if f := plan.Uplink[0].FreqHz; !almostEqual(f, 902.3e6, 1) {
		t.Errorf("first uplink freq = %v, want 902.3 MHz", f)
	}
	if f := plan.Uplink[63].FreqHz; !almostEqual(f, 902.3e6+0.2e6*63, 1) {
		t.Errorf("64th uplink freq = %v", f)
	}
	for _, ch := range plan.Uplink[:64] {
		if ch.Bandwidth != BW125 || !ch.Uplink {
			t.Fatalf("channel %v should be a 125 kHz uplink", ch)
		}
	}
}

func TestSubPlan(t *testing.T) {
	plan := US902()
	sub, err := plan.SubPlan(1)
	if err != nil {
		t.Fatalf("SubPlan(1): %v", err)
	}
	if sub.NumUplink() != 1 {
		t.Errorf("subplan uplinks = %d, want 1", sub.NumUplink())
	}
	if len(sub.Downlink) != 8 {
		t.Errorf("subplan downlinks = %d, want 8", len(sub.Downlink))
	}
	if _, err := plan.SubPlan(0); err == nil {
		t.Error("SubPlan(0) should fail")
	}
	if _, err := plan.SubPlan(1000); err == nil {
		t.Error("SubPlan(1000) should fail")
	}
}

func TestChannelString(t *testing.T) {
	plan := US902()
	if s := plan.Uplink[0].String(); s == "" {
		t.Error("empty channel string")
	}
	if s := plan.Downlink[0].String(); s == "" {
		t.Error("empty channel string")
	}
}
