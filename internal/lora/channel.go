package lora

import "fmt"

// Channel identifies one frequency channel of a regional plan.
type Channel struct {
	Index     int
	FreqHz    float64
	Bandwidth Bandwidth
	Uplink    bool
}

func (c Channel) String() string {
	dir := "down"
	if c.Uplink {
		dir = "up"
	}
	return fmt.Sprintf("ch%d(%s %.1fMHz/%.0fkHz)", c.Index, dir, c.FreqHz/1e6, float64(c.Bandwidth)/1e3)
}

// ChannelPlan is a regional frequency plan: the set of uplink and downlink
// channels available to nodes and gateways.
type ChannelPlan struct {
	Name     string
	Uplink   []Channel
	Downlink []Channel
}

// US902 returns the full US ISM-band plan used by LoRaWAN: 64 uplink
// channels of 125 kHz starting at 902.3 MHz spaced 200 kHz, 8 uplink
// channels of 500 kHz, and 8 downlink channels of 500 kHz.
func US902() ChannelPlan {
	plan := ChannelPlan{Name: "US902"}
	for i := 0; i < 64; i++ {
		plan.Uplink = append(plan.Uplink, Channel{
			Index:     i,
			FreqHz:    902.3e6 + 0.2e6*float64(i),
			Bandwidth: BW125,
			Uplink:    true,
		})
	}
	for i := 0; i < 8; i++ {
		plan.Uplink = append(plan.Uplink, Channel{
			Index:     64 + i,
			FreqHz:    903.0e6 + 1.6e6*float64(i),
			Bandwidth: BW500,
			Uplink:    true,
		})
	}
	for i := 0; i < 8; i++ {
		plan.Downlink = append(plan.Downlink, Channel{
			Index:     i,
			FreqHz:    923.3e6 + 0.6e6*float64(i),
			Bandwidth: BW500,
			Uplink:    false,
		})
	}
	return plan
}

// SubPlan returns a plan restricted to the first n 125 kHz uplink channels
// (and the matching downlink set). The paper's testbed uses n = 1 "to
// emulate a larger network"; the large-scale evaluation defaults to the
// same congested single-channel regime.
func (p ChannelPlan) SubPlan(n int) (ChannelPlan, error) {
	if n <= 0 || n > len(p.Uplink) {
		return ChannelPlan{}, fmt.Errorf("lora: subplan size %d out of range [1,%d]", n, len(p.Uplink))
	}
	sub := ChannelPlan{Name: fmt.Sprintf("%s/%d", p.Name, n)}
	sub.Uplink = append(sub.Uplink, p.Uplink[:n]...)
	sub.Downlink = append(sub.Downlink, p.Downlink...)
	return sub, nil
}

// NumUplink returns the number of uplink channels in the plan.
func (p ChannelPlan) NumUplink() int { return len(p.Uplink) }
