package lora

import "testing"

func TestTableMatchesDirectComputation(t *testing.T) {
	base := DefaultParams()
	base.TxPowerDBm = 17
	tbl, err := NewTable(base, 96)
	if err != nil {
		t.Fatal(err)
	}
	for sf := MinSF; sf <= MaxSF; sf++ {
		p := base
		p.SF = sf
		for pl := 0; pl <= 96; pl++ {
			if got, want := tbl.Airtime(sf, pl), p.Airtime(pl); got != want {
				t.Fatalf("%v payload %d: Airtime = %v, want %v", sf, pl, got, want)
			}
			if got, want := tbl.AirtimeSeconds(sf, pl), p.AirtimeSeconds(pl); got != want {
				t.Fatalf("%v payload %d: AirtimeSeconds = %v, want %v", sf, pl, got, want)
			}
			if got, want := tbl.TxEnergy(sf, pl), p.TxEnergy(pl); got != want {
				t.Fatalf("%v payload %d: TxEnergy = %v, want %v", sf, pl, got, want)
			}
		}
	}
}

func TestTableFallbackBeyondBound(t *testing.T) {
	base := DefaultParams()
	tbl, err := NewTable(base, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.SF = SF12
	if got, want := tbl.TxEnergy(SF12, 200), p.TxEnergy(200); got != want {
		t.Errorf("fallback TxEnergy = %v, want %v", got, want)
	}
	if got, want := tbl.Airtime(SF12, 200), p.Airtime(200); got != want {
		t.Errorf("fallback Airtime = %v, want %v", got, want)
	}
	if tbl.MaxPayload() != 16 {
		t.Errorf("MaxPayload = %d, want 16", tbl.MaxPayload())
	}
}

func TestTableRejectsInvalid(t *testing.T) {
	if _, err := NewTable(DefaultParams(), -1); err == nil {
		t.Error("negative max payload should fail")
	}
	bad := DefaultParams()
	bad.Bandwidth = 0
	if _, err := NewTable(bad, 10); err == nil {
		t.Error("invalid base params should fail")
	}
}

func BenchmarkAirtimeDirect(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		_ = p.TxEnergy(18)
	}
}

func BenchmarkAirtimeTable(b *testing.B) {
	tbl, err := NewTable(DefaultParams(), 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.TxEnergy(SF10, 18)
	}
}
