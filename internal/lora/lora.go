// Package lora models the LoRa physical layer: modulation parameters,
// airtime and symbol-count equations, transceiver energy consumption, and
// the US-902 regional channel plan.
//
// The airtime model implements Eq. (7) of the paper and the transmission
// energy model implements Eq. (6); both follow the Semtech SX1276
// datasheet formulas that NS-3's lorawan module also uses.
package lora

import (
	"fmt"
	"math"

	"repro/internal/simtime"
)

// SpreadingFactor is the LoRa spreading factor (chips per symbol = 2^SF).
// Higher SF lowers the data rate but extends range and airtime.
type SpreadingFactor int

// LoRa supports spreading factors 7 through 12.
const (
	SF7 SpreadingFactor = iota + 7
	SF8
	SF9
	SF10
	SF11
	SF12

	MinSF = SF7
	MaxSF = SF12
)

// Valid reports whether the spreading factor is in the supported range.
func (sf SpreadingFactor) Valid() bool { return sf >= MinSF && sf <= MaxSF }

// ChipsPerSymbol returns 2^SF, the number of chips in one symbol.
func (sf SpreadingFactor) ChipsPerSymbol() float64 { return float64(int(1) << uint(sf)) }

func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// Bandwidth is the channel bandwidth in Hz.
type Bandwidth float64

// Bandwidths supported by LoRa in the US ISM band.
const (
	BW125 Bandwidth = 125e3
	BW250 Bandwidth = 250e3
	BW500 Bandwidth = 500e3
)

// CodingRate is the forward-error-correction rate, expressed as the
// fraction of useful bits (4/5 .. 4/8).
type CodingRate float64

// LoRa coding rates.
const (
	CR45 CodingRate = 4.0 / 5.0
	CR46 CodingRate = 4.0 / 6.0
	CR47 CodingRate = 4.0 / 7.0
	CR48 CodingRate = 4.0 / 8.0
)

// Valid reports whether the coding rate is one of the four LoRa rates.
func (cr CodingRate) Valid() bool {
	switch cr {
	case CR45, CR46, CR47, CR48:
		return true
	}
	return false
}

// Params bundles the configurable transmission parameters of a LoRa radio.
type Params struct {
	SF              SpreadingFactor
	Bandwidth       Bandwidth
	CodingRate      CodingRate
	PreambleSymbols int     // preamble length in symbols (default 8)
	TxPowerDBm      float64 // RF output power
	ExplicitHeader  bool    // LoRaWAN uses the explicit header
}

// DefaultParams returns the paper's evaluation settings: SF10, 125 kHz,
// CR 4/5, 8-symbol preamble, +14 dBm.
func DefaultParams() Params {
	return Params{
		SF:              SF10,
		Bandwidth:       BW125,
		CodingRate:      CR45,
		PreambleSymbols: 8,
		TxPowerDBm:      14,
		ExplicitHeader:  true,
	}
}

// Validate reports the first invalid field of the parameter set.
func (p Params) Validate() error {
	switch {
	case !p.SF.Valid():
		return fmt.Errorf("lora: spreading factor %d out of range [%d,%d]", int(p.SF), int(MinSF), int(MaxSF))
	case p.Bandwidth <= 0:
		return fmt.Errorf("lora: bandwidth %v must be positive", p.Bandwidth)
	case !p.CodingRate.Valid():
		return fmt.Errorf("lora: coding rate %v not one of 4/5..4/8", p.CodingRate)
	case p.PreambleSymbols <= 0:
		return fmt.Errorf("lora: preamble %d symbols must be positive", p.PreambleSymbols)
	}
	return nil
}

// LowDataRateOptimize reports whether the mandatory low-data-rate
// optimization (DE in Eq. 7) applies: symbol time ≥ 16 ms, i.e. SF11/SF12
// at 125 kHz.
func (p Params) LowDataRateOptimize() bool {
	return p.SymbolTime() >= 16e-3
}

// SymbolTime returns the duration of one symbol in seconds (2^SF / BW).
func (p Params) SymbolTime() float64 {
	return p.SF.ChipsPerSymbol() / float64(p.Bandwidth)
}

// Symbols returns the total number of symbols in a packet with the given
// payload, per Eq. (7):
//
//	L = preamble + 4.25 + 8 + max(ceil((8·payload − 4·SF + 24)/(SF − 2·DE)) · 1/CR, 0)
func (p Params) Symbols(payloadBytes int) float64 {
	de := 0.0
	if p.LowDataRateOptimize() {
		de = 1
	}
	num := float64(8*payloadBytes) - 4*float64(p.SF) + 24
	den := float64(p.SF) - 2*de
	payloadSymbols := math.Ceil(num/den) / float64(p.CodingRate)
	if payloadSymbols < 0 {
		payloadSymbols = 0
	}
	return float64(p.PreambleSymbols) + 4.25 + 8 + payloadSymbols
}

// Airtime returns the on-air duration of a packet with the given payload.
func (p Params) Airtime(payloadBytes int) simtime.Duration {
	seconds := p.Symbols(payloadBytes) * p.SymbolTime()
	return simtime.Duration(math.Ceil(seconds * 1000))
}

// AirtimeSeconds returns the on-air duration in floating-point seconds,
// without millisecond rounding.
func (p Params) AirtimeSeconds(payloadBytes int) float64 {
	return p.Symbols(payloadBytes) * p.SymbolTime()
}

// TxEnergy returns the energy in joules consumed by transmitting a packet
// with the given payload, per Eq. (6): E = P_tx · L_symbols · 2^SF / BW.
// P_tx is the electrical power drawn by the SX1276 at the configured RF
// output power.
func (p Params) TxEnergy(payloadBytes int) float64 {
	return TxSupplyPower(p.TxPowerDBm) * p.Symbols(payloadBytes) * p.SymbolTime()
}

// BitRate returns the useful bit rate in bits per second.
func (p Params) BitRate() float64 {
	return float64(p.SF) * float64(p.CodingRate) * float64(p.Bandwidth) / p.SF.ChipsPerSymbol()
}

// Sensitivity returns the receiver sensitivity in dBm for the parameter
// set's spreading factor at 125 kHz (SX1276 datasheet values).
func (p Params) Sensitivity() float64 { return Sensitivity(p.SF, p.Bandwidth) }

// Sensitivity returns the SX1276 receiver sensitivity in dBm.
func Sensitivity(sf SpreadingFactor, bw Bandwidth) float64 {
	// Datasheet values for BW125; wider bandwidths lose 10·log10(BW/125k).
	base := map[SpreadingFactor]float64{
		SF7:  -123,
		SF8:  -126,
		SF9:  -129,
		SF10: -132,
		SF11: -134.5,
		SF12: -137,
	}[sf]
	return base + 10*math.Log10(float64(bw)/float64(BW125))
}

// DemodulationFloor returns the minimum SNR in dB at which a signal with
// the given spreading factor can be demodulated.
func DemodulationFloor(sf SpreadingFactor) float64 {
	return map[SpreadingFactor]float64{
		SF7:  -7.5,
		SF8:  -10,
		SF9:  -12.5,
		SF10: -15,
		SF11: -17.5,
		SF12: -20,
	}[sf]
}

// Transceiver supply characteristics (SX1276 on a 3.3 V rail).
const (
	SupplyVoltage = 3.3     // volts
	RxCurrentA    = 11.5e-3 // receive-mode current, amperes
	IdleCurrentA  = 1.6e-3  // standby current, amperes
)

// RxPower returns the electrical power drawn in receive mode, in watts.
func RxPower() float64 { return SupplyVoltage * RxCurrentA }

// txCurrentTable maps RF output power (dBm) to SX1276 supply current (A),
// from the datasheet (PA_BOOST) as commonly used in LoRa energy studies.
var txCurrentTable = []struct {
	dBm float64
	amp float64
}{
	{2, 0.024},
	{5, 0.027},
	{8, 0.031},
	{11, 0.038},
	{14, 0.044},
	{17, 0.090},
	{20, 0.125},
}

// TxSupplyPower returns the electrical power in watts drawn by the radio
// while transmitting at the given RF output power, interpolating the
// datasheet current table.
func TxSupplyPower(dBm float64) float64 {
	t := txCurrentTable
	if dBm <= t[0].dBm {
		return SupplyVoltage * t[0].amp
	}
	for i := 1; i < len(t); i++ {
		if dBm <= t[i].dBm {
			frac := (dBm - t[i-1].dBm) / (t[i].dBm - t[i-1].dBm)
			return SupplyVoltage * (t[i-1].amp + frac*(t[i].amp-t[i-1].amp))
		}
	}
	return SupplyVoltage * t[len(t)-1].amp
}
