package lora

import (
	"fmt"

	"repro/internal/simtime"
)

// Table precomputes airtime and transmission energy for every spreading
// factor at a fixed bandwidth, coding rate, preamble length and TX
// power, over the bounded payload sizes a deployment actually sends.
// The symbol-count formula of Eq. (7) sits on the simulator's hottest
// path — it is evaluated for every transmission attempt of every packet
// of a multi-year run — yet its inputs are tiny: six spreading factors
// and payloads of at most a few hundred bytes. Memoizing it turns each
// per-attempt airtime/energy query into two array loads.
//
// Payloads beyond the precomputed bound fall back to the closed-form
// computation, so a Table is always exact. Tables are immutable after
// construction and safe for concurrent use by parallel experiment runs.
type Table struct {
	base       Params
	maxPayload int
	airtime    [][]simtime.Duration // [sf-MinSF][payload]
	airtimeS   [][]float64
	energy     [][]float64
}

// NewTable builds the lookup table for payloads 0..maxPayload bytes at
// every spreading factor, taking bandwidth, coding rate, preamble and
// TX power from base (base's own SF is irrelevant).
func NewTable(base Params, maxPayload int) (*Table, error) {
	if maxPayload < 0 {
		return nil, fmt.Errorf("lora: negative max payload %d", maxPayload)
	}
	base.SF = MinSF
	if err := base.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		base:       base,
		maxPayload: maxPayload,
		airtime:    make([][]simtime.Duration, MaxSF-MinSF+1),
		airtimeS:   make([][]float64, MaxSF-MinSF+1),
		energy:     make([][]float64, MaxSF-MinSF+1),
	}
	for sf := MinSF; sf <= MaxSF; sf++ {
		p := base
		p.SF = sf
		at := make([]simtime.Duration, maxPayload+1)
		ats := make([]float64, maxPayload+1)
		en := make([]float64, maxPayload+1)
		for pl := 0; pl <= maxPayload; pl++ {
			at[pl] = p.Airtime(pl)
			ats[pl] = p.AirtimeSeconds(pl)
			en[pl] = p.TxEnergy(pl)
		}
		t.airtime[sf-MinSF] = at
		t.airtimeS[sf-MinSF] = ats
		t.energy[sf-MinSF] = en
	}
	return t, nil
}

// MaxPayload returns the largest precomputed payload size in bytes.
func (t *Table) MaxPayload() int { return t.maxPayload }

// params returns the base parameter set retargeted to sf, for fallback
// computation outside the precomputed range.
func (t *Table) params(sf SpreadingFactor) Params {
	p := t.base
	p.SF = sf
	return p
}

// Airtime returns the on-air duration of a packet at the given
// spreading factor, equal to Params.Airtime for the table's radio
// settings.
func (t *Table) Airtime(sf SpreadingFactor, payloadBytes int) simtime.Duration {
	if sf.Valid() && payloadBytes >= 0 && payloadBytes <= t.maxPayload {
		return t.airtime[sf-MinSF][payloadBytes]
	}
	return t.params(sf).Airtime(payloadBytes)
}

// AirtimeSeconds returns the unrounded on-air duration in seconds.
func (t *Table) AirtimeSeconds(sf SpreadingFactor, payloadBytes int) float64 {
	if sf.Valid() && payloadBytes >= 0 && payloadBytes <= t.maxPayload {
		return t.airtimeS[sf-MinSF][payloadBytes]
	}
	return t.params(sf).AirtimeSeconds(payloadBytes)
}

// TxEnergy returns the transmission energy in joules of a packet at the
// given spreading factor, equal to Params.TxEnergy for the table's
// radio settings.
func (t *Table) TxEnergy(sf SpreadingFactor, payloadBytes int) float64 {
	if sf.Valid() && payloadBytes >= 0 && payloadBytes <= t.maxPayload {
		return t.energy[sf-MinSF][payloadBytes]
	}
	return t.params(sf).TxEnergy(payloadBytes)
}
