package radio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lora"
)

func TestDistance(t *testing.T) {
	p := Position{X: 3000, Y: 4000}
	if got := p.DistanceTo(Position{}); got != 5000 {
		t.Errorf("distance = %v, want 5000", got)
	}
	if got := p.DistanceTo(p); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestMeanLossReference(t *testing.T) {
	m := DefaultPathLoss(1)
	if got := m.MeanLossDB(1000); math.Abs(got-128.95) > 1e-9 {
		t.Errorf("loss at 1 km = %v, want 128.95", got)
	}
	// 5 km: 128.95 + 23.2*log10(5) = ~145.17 dB.
	if got := m.MeanLossDB(5000); math.Abs(got-145.17) > 0.05 {
		t.Errorf("loss at 5 km = %v, want ~145.17", got)
	}
	// Sub-meter distances clamp.
	if got := m.MeanLossDB(0); got != m.MeanLossDB(1) {
		t.Error("distance should clamp at 1 m")
	}
}

func TestMeanLossMonotone(t *testing.T) {
	m := DefaultPathLoss(2)
	f := func(a, b uint32) bool {
		lo := float64(min(a, b))
		hi := float64(max(a, b))
		return m.MeanLossDB(lo) <= m.MeanLossDB(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowingDeterministicAndZeroMean(t *testing.T) {
	m := DefaultPathLoss(99)
	if m.ShadowingDB(7) != m.ShadowingDB(7) {
		t.Error("shadowing must be deterministic per link")
	}
	var sum, sumSq float64
	n := 5000
	for i := 0; i < n; i++ {
		s := m.ShadowingDB(uint64(i))
		sum += s
		sumSq += s * s
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.2 {
		t.Errorf("shadowing mean = %v, want ~0", mean)
	}
	if math.Abs(std-m.ShadowStdDB) > 0.3 {
		t.Errorf("shadowing std = %v, want ~%v", std, m.ShadowStdDB)
	}
	zero := m
	zero.ShadowStdDB = 0
	if zero.ShadowingDB(123) != 0 {
		t.Error("zero-sigma shadowing should be exactly 0")
	}
}

func TestRxPowerComposition(t *testing.T) {
	m := DefaultPathLoss(5)
	pos := Position{X: 2000}
	got := m.RxPowerDBm(14, pos, 42)
	want := 14 - m.MeanLossDB(2000) + m.ShadowingDB(42)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RxPowerDBm = %v, want %v", got, want)
	}
}

func TestAssignSF(t *testing.T) {
	tests := []struct {
		name   string
		rx     float64
		wantSF lora.SpreadingFactor
		wantOK bool
	}{
		{"very strong", -100, lora.SF7, true},
		{"needs SF10", lora.Sensitivity(lora.SF10, lora.BW125) + 3, lora.SF10, true},
		{"boundary just misses SF10", lora.Sensitivity(lora.SF10, lora.BW125) + 2.9, lora.SF11, true},
		{"needs SF12", -134, lora.SF12, true},
		{"out of range", -136, lora.SF12, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sf, ok := AssignSF(tt.rx, 3, lora.BW125)
			if sf != tt.wantSF || ok != tt.wantOK {
				t.Errorf("AssignSF(%v) = %v,%v want %v,%v", tt.rx, sf, ok, tt.wantSF, tt.wantOK)
			}
		})
	}
}

func TestAssignSFMonotone(t *testing.T) {
	// Stronger signals never get a larger SF.
	f := func(rawA, rawB uint8) bool {
		a := -150 + float64(rawA)/4 // [-150, -86]
		b := -150 + float64(rawB)/4
		lo, hi := math.Min(a, b), math.Max(a, b)
		sfLo, _ := AssignSF(lo, 3, lora.BW125)
		sfHi, _ := AssignSF(hi, 3, lora.BW125)
		return sfHi <= sfLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaptures(t *testing.T) {
	tests := []struct {
		name        string
		power       float64
		interferers []float64
		want        bool
	}{
		{"no interference", -100, nil, true},
		{"strong enough", -100, []float64{-107}, true},
		{"exactly at threshold", -100, []float64{-106}, true},
		{"too close", -100, []float64{-105}, false},
		{"one of many too strong", -100, []float64{-120, -103, -130}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Captures(tt.power, tt.interferers); got != tt.want {
				t.Errorf("Captures(%v, %v) = %v, want %v", tt.power, tt.interferers, got, tt.want)
			}
		})
	}
}

// TestDeploymentReachability: with default parameters and +14 dBm, the
// overwhelming majority of nodes within 5 km must be reachable at some SF
// (this is the paper's deployment assumption).
func TestDeploymentReachability(t *testing.T) {
	m := DefaultPathLoss(7)
	reachable := 0
	n := 2000
	for i := 0; i < n; i++ {
		d := 100 + 4900*hash01(7, uint64(i), 0xd15) // 100 m .. 5 km
		pos := Position{X: d}
		rx := m.RxPowerDBm(14, pos, uint64(i))
		if _, ok := AssignSF(rx, 3, lora.BW125); ok {
			reachable++
		}
	}
	if frac := float64(reachable) / float64(n); frac < 0.95 {
		t.Errorf("only %.1f%% of nodes within 5 km reachable", frac*100)
	}
}
