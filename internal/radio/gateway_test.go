package radio

import (
	"math"
	"testing"
)

func TestGatewayLayoutSingle(t *testing.T) {
	got := GatewayLayout(1, 5000)
	if len(got) != 1 {
		t.Fatalf("layout = %v, want single gateway", got)
	}
	if got[0] != (Position{}) {
		t.Errorf("single gateway at %v, want origin", got[0])
	}
	// Degenerate inputs clamp to one gateway.
	if got := GatewayLayout(0, 5000); len(got) != 1 {
		t.Errorf("zero gateways should clamp to 1, got %v", got)
	}
}

func TestGatewayLayoutRing(t *testing.T) {
	const radius = 5000.0
	got := GatewayLayout(4, radius)
	if len(got) != 4 {
		t.Fatalf("layout size = %d, want 4", len(got))
	}
	if got[0] != (Position{}) {
		t.Errorf("first gateway at %v, want origin", got[0])
	}
	for i, p := range got[1:] {
		d := p.DistanceTo(Position{})
		if math.Abs(d-0.6*radius) > 1e-6 {
			t.Errorf("ring gateway %d at distance %v, want %v", i+1, d, 0.6*radius)
		}
	}
	// Ring gateways must be distinct.
	for i := 1; i < len(got); i++ {
		for j := i + 1; j < len(got); j++ {
			if got[i].DistanceTo(got[j]) < 1 {
				t.Errorf("gateways %d and %d coincide at %v", i, j, got[i])
			}
		}
	}
}

func TestRxPowerBetween(t *testing.T) {
	m := DefaultPathLoss(3)
	from := Position{X: 1000, Y: 1000}
	to := Position{X: 1000, Y: 3000} // 2 km apart
	got := m.RxPowerBetweenDBm(14, from, to, 77)
	want := 14 - m.MeanLossDB(2000) + m.ShadowingDB(77)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RxPowerBetweenDBm = %v, want %v", got, want)
	}
	// The origin-gateway shorthand matches the general form.
	pos := Position{X: 2500}
	if m.RxPowerDBm(14, pos, 5) != m.RxPowerBetweenDBm(14, pos, Position{}, 5) {
		t.Error("RxPowerDBm should delegate to RxPowerBetweenDBm")
	}
	// Different link IDs see different shadowing.
	a := m.RxPowerBetweenDBm(14, from, to, 1)
	b := m.RxPowerBetweenDBm(14, from, to, 2)
	if a == b {
		t.Error("distinct links should draw distinct shadowing")
	}
}

func TestPositionString(t *testing.T) {
	if s := (Position{X: 100, Y: -50}).String(); s == "" {
		t.Error("empty position string")
	}
}
