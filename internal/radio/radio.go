// Package radio models LoRa signal propagation and reception: the
// log-distance path-loss model with static per-link shadowing, link-budget
// based spreading-factor assignment, and the co-SF capture rule used to
// resolve collisions. Parameters default to the Oulu LoRa measurement
// campaign, the standard choice for suburban LoRa studies (and NS-3's).
package radio

import (
	"fmt"
	"math"

	"repro/internal/lora"
)

// Position is a node location in meters; the gateway sits at the origin.
type Position struct {
	X float64
	Y float64
}

// DistanceTo returns the Euclidean distance in meters.
func (p Position) DistanceTo(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Position) String() string { return fmt.Sprintf("(%.0fm,%.0fm)", p.X, p.Y) }

// PathLoss is a log-distance path-loss model with deterministic per-link
// lognormal shadowing.
type PathLoss struct {
	// RefLossDB is the path loss at the 1 km reference distance.
	RefLossDB float64
	// Exponent is the path-loss exponent.
	Exponent float64
	// ShadowStdDB is the standard deviation of the static per-link
	// shadowing in dB.
	ShadowStdDB float64
	// Seed makes shadowing deterministic per scenario.
	Seed uint64
}

// DefaultPathLoss returns the Oulu-campaign suburban parameters with
// mild static shadowing.
func DefaultPathLoss(seed uint64) PathLoss {
	return PathLoss{
		RefLossDB:   128.95,
		Exponent:    2.32,
		ShadowStdDB: 3,
		Seed:        seed,
	}
}

// MeanLossDB returns the distance-dependent loss without shadowing, for
// a distance in meters (clamped below at 1 m).
func (m PathLoss) MeanLossDB(distanceM float64) float64 {
	if distanceM < 1 {
		distanceM = 1
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(distanceM/1000)
}

// ShadowingDB returns the static shadowing of the given link in dB,
// deterministic in (seed, linkID). Shadowing is drawn once per link
// because nodes are stationary.
func (m PathLoss) ShadowingDB(linkID uint64) float64 {
	if m.ShadowStdDB == 0 {
		return 0
	}
	// Box-Muller on two deterministic uniforms.
	u1 := hash01(m.Seed, linkID, 0xa11ce)
	u2 := hash01(m.Seed, linkID, 0xb0b5)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return m.ShadowStdDB * z
}

// RxPowerDBm returns the received power at the origin gateway for a
// transmitter at the given position with the given RF output power.
func (m PathLoss) RxPowerDBm(txDBm float64, pos Position, linkID uint64) float64 {
	return m.RxPowerBetweenDBm(txDBm, pos, Position{}, linkID)
}

// RxPowerBetweenDBm returns the received power over an arbitrary link;
// linkID must be unique per (transmitter, receiver) pair so each link
// gets its own static shadowing.
func (m PathLoss) RxPowerBetweenDBm(txDBm float64, from, to Position, linkID uint64) float64 {
	return txDBm - m.MeanLossDB(from.DistanceTo(to)) + m.ShadowingDB(linkID)
}

// GatewayLayout places n gateways: the first at the origin, the rest
// evenly spaced on a ring at 60% of the deployment radius — the usual
// way extra gateways densify a LoRa deployment.
func GatewayLayout(n int, deploymentRadiusM float64) []Position {
	if n < 1 {
		n = 1
	}
	out := make([]Position, n)
	ring := 0.6 * deploymentRadiusM
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		out[i] = Position{X: ring * math.Cos(angle), Y: ring * math.Sin(angle)}
	}
	return out
}

// AssignSF returns the smallest spreading factor whose receiver
// sensitivity leaves at least marginDB of link margin for the given
// received power, mirroring LoRaWAN ADR. ok is false when even SF12 has
// insufficient margin (the node is out of range).
func AssignSF(rxPowerDBm, marginDB float64, bw lora.Bandwidth) (sf lora.SpreadingFactor, ok bool) {
	for sf = lora.MinSF; sf <= lora.MaxSF; sf++ {
		if rxPowerDBm >= lora.Sensitivity(sf, bw)+marginDB {
			return sf, true
		}
	}
	return lora.MaxSF, false
}

// CaptureThresholdDB is the minimum power advantage a LoRa signal needs
// over the strongest co-SF interferer to be captured.
const CaptureThresholdDB = 6

// Captures reports whether a signal at the given power survives the
// given co-channel, co-SF interferer powers under the capture model.
func Captures(powerDBm float64, interferersDBm []float64) bool {
	for _, i := range interferersDBm {
		if powerDBm < i+CaptureThresholdDB {
			return false
		}
	}
	return true
}

// hash01 maps (seed, a, b) to a uniform float64 in [0,1) via splitmix64.
func hash01(seed, a, b uint64) float64 {
	x := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// StrongestGateway returns the index of the gateway with the highest
// received power, breaking ties toward the lowest index. It defines a
// node's home cell in the sharded simulator, so the tie-break must be
// deterministic.
func StrongestGateway(rxPowerDBm []float64) int {
	best := 0
	for g := 1; g < len(rxPowerDBm); g++ {
		if rxPowerDBm[g] > rxPowerDBm[best] {
			best = g
		}
	}
	return best
}
