package lns

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestShardOf(t *testing.T) {
	cases := []struct {
		node, shards, want int
	}{
		{0, 4, 0},
		{ShardBlock - 1, 4, 0},
		{ShardBlock, 4, 1},
		{2 * ShardBlock, 4, 2},
		{4 * ShardBlock, 4, 0}, // round-robin wrap
		{5, 1, 0},
		{5, 0, 0},
		{-3, 4, 0}, // negative IDs are rejected downstream; route stably
	}
	for _, tc := range cases {
		if got := ShardOf(tc.node, tc.shards); got != tc.want {
			t.Errorf("ShardOf(%d, %d) = %d, want %d", tc.node, tc.shards, got, tc.want)
		}
	}
	// Every node maps to exactly one in-range shard.
	for node := 0; node < 10*ShardBlock; node += 17 {
		for shards := 1; shards <= 9; shards++ {
			if s := ShardOf(node, shards); s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", node, shards, s)
			}
		}
	}
}

// TestSplitFracExactCover is the split-replay boundary property: for
// ANY stop/start fraction f and batch count n, a replay stopped at
// `-stop-frac f` and resumed at `-start-frac f` must cover every batch
// index exactly once — the boundary batch belongs to exactly one side.
// This is what makes loadgen's snapshot → restart → resume flow
// byte-identical to an uninterrupted run regardless of where the cut
// lands relative to batch boundaries.
func TestSplitFracExactCover(t *testing.T) {
	fracs := []float64{0, 1, 0.5, 1.0 / 3, 2.0 / 3, 0.1, 0.9,
		0.49999999999999994, 0.5000000000000001, // straddle a representable boundary
		math.Nextafter(1, 0),                    // largest float < 1
		5e-324,                                  // smallest positive denormal
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 50; i++ {
		fracs = append(fracs, rng.Float64())
	}
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 1 << 20} {
		for _, f := range fracs {
			_, stop := SplitFrac(0, f, n)
			start, end := SplitFrac(f, 1, n)
			if stop != start {
				t.Fatalf("n=%d f=%v: stop-frac covers [0,%d) but start-frac resumes at %d — batches %s",
					n, f, stop, start, map[bool]string{true: "lost", false: "duplicated"}[start > stop])
			}
			if end != n {
				t.Fatalf("n=%d f=%v: resume ends at %d, want %d", n, f, end, n)
			}
			if stop < 0 || stop > n {
				t.Fatalf("n=%d f=%v: cut %d out of range", n, f, stop)
			}
		}
	}
}

func TestSplitFracDegenerate(t *testing.T) {
	// Out-of-range and non-finite fractions clamp instead of exploding.
	if lo, hi := SplitFrac(-0.5, 2, 10); lo != 0 || hi != 10 {
		t.Errorf("clamped range = [%d,%d), want [0,10)", lo, hi)
	}
	if lo, hi := SplitFrac(math.NaN(), math.NaN(), 10); lo != 0 || hi != 0 {
		t.Errorf("NaN range = [%d,%d), want [0,0)", lo, hi)
	}
	// An inverted pair yields an empty range, not a negative one.
	if lo, hi := SplitFrac(0.8, 0.2, 10); lo > hi {
		t.Errorf("inverted pair yields negative range [%d,%d)", lo, hi)
	}
}
