// Package lns stands the network server (internal/netserver) up as a
// deployable LNS-style daemon: HTTP(+JSON) uplink ingest sharded by
// node-ID range (one private netserver.Server sub-fleet per worker
// lane, bounded queues, explicit backpressure), fleet-wide w_u
// recomputation at barriers on the virtual clock carried by the
// traffic itself, snapshot/restore of the full per-node degradation
// state, and ingest/recompute metrics through internal/obs.
//
// The package is a library so the daemon core is testable and
// benchmarkable in-process; cmd/lnsd is the thin binary around it and
// cmd/loadgen the replay client. The correctness contract is
// exactness: a report stream driven through the HTTP path must leave
// the fleet in a state byte-identical to direct library Ingest calls
// (ReplayBatch is the single shared apply path, and barrier recomputes
// make the result a pure function of each node's sub-stream plus the
// merged clock — independent of shard count and cross-shard
// interleaving), and a snapshot → restart → resume run must match an
// uninterrupted one exactly.
package lns

import (
	"encoding/json"
	"io"

	"repro/internal/netserver"
)

// WireReport is one SoC transition report in JSON wire form, mirroring
// the 4-byte on-air encoding (battery.Report): a window-offset age and a
// 16-bit quantized SoC.
type WireReport struct {
	// Ago is how many whole forecast windows before the packet's
	// transmission the transition occurred.
	Ago uint16 `json:"ago"`
	// SoCQ is the state of charge quantized to 1/65535 steps.
	SoCQ uint16 `json:"soc_q"`
}

// Uplink is one device uplink: the reports it piggy-backs plus the
// reception instant and the node's forecast-window length needed to
// decode them. Times are simulated milliseconds — the daemon runs on
// the virtual clock carried by the traffic, never the wall clock.
type Uplink struct {
	Node     int          `json:"node"`
	AtMs     int64        `json:"at_ms"`
	WindowMs int64        `json:"window_ms"`
	Reports  []WireReport `json:"reports,omitempty"`
}

// Batch is the body of POST /v1/uplinks: uplinks applied in order as
// one queue entry.
type Batch struct {
	Uplinks []Uplink `json:"uplinks"`
}

// RegisterNode is one entry of a registration request. Rejoin selects
// the history-preserving re-admission (netserver.Rejoin) for a node
// that restarted; a plain register on a live node resets its
// degradation history AND ingestion watermarks (battery-replacement
// semantics), so replaying clients must never re-register mid-stream.
type RegisterNode struct {
	Node   int     `json:"node"`
	SoC    float64 `json:"soc"`
	Rejoin bool    `json:"rejoin,omitempty"`
}

// RegisterReq is the body of POST /v1/register.
type RegisterReq struct {
	Nodes []RegisterNode `json:"nodes"`
}

// RecomputeReq is the body of POST /v1/recompute: force the due check
// at a given virtual instant (e.g. end of a replayed trace).
type RecomputeReq struct {
	AtMs int64 `json:"at_ms"`
}

// RecomputeResp reports whether the recompute actually ran.
type RecomputeResp struct {
	Ran bool `json:"ran"`
}

// IngestResp is the body of a 202 from POST /v1/uplinks.
type IngestResp struct {
	Queued int `json:"queued"`
}

// WriteWuTable writes the disseminated w_u table as deterministic JSON:
// one array, nodes ascending, one trailing newline. Two servers in the
// same state produce byte-identical output — the comparison primitive
// used by loadgen -local, the idempotence tests, and the CI smoke.
func WriteWuTable(w io.Writer, table []netserver.NodeWu) error {
	return json.NewEncoder(w).Encode(table)
}
