package lns

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simtime"
)

const sampleJSONL = `{"t":"manifest","schema":1,"tool":"repro","version":"0.4.0","seed":1,"replicate":0,"nodes":2,"sample_every_ms":600000}
{"t":"counter","name":"netserver.packets_ingested","v":12}
{"t":"sample","node":1,"at_ms":600000,"soc":0.7,"deg_cal":0,"deg_cyc":0,"deg_total":0,"dif":0,"window":-1,"queue":0,"retx":0,"stale_wu":0}
{"t":"sample","node":0,"at_ms":0,"soc":0.9,"deg_cal":0,"deg_cyc":0,"deg_total":0,"dif":0,"window":-1,"queue":0,"retx":0,"stale_wu":0}
{"t":"sample","node":0,"at_ms":600000,"soc":0.85,"deg_cal":0,"deg_cyc":0,"deg_total":0,"dif":0,"window":-1,"queue":0,"retx":0,"stale_wu":0}
{"t":"sample","node":0,"at_ms":1200000,"soc":0.8,"deg_cal":0,"deg_cyc":0,"deg_total":0,"dif":0,"window":-1,"queue":0,"retx":0,"stale_wu":0}
{"t":"event","node":0,"at_ms":700000,"kind":"brownout"}
`

func TestParseObsJSONL(t *testing.T) {
	tr, err := ParseObsJSONL(strings.NewReader(sampleJSONL))
	if err != nil {
		t.Fatalf("ParseObsJSONL: %v", err)
	}
	if tr.SampleEvery != 10*simtime.Minute {
		t.Errorf("SampleEvery = %v, want 10m", tr.SampleEvery)
	}
	if len(tr.Nodes) != 2 || tr.Nodes[0].ID != 0 || tr.Nodes[1].ID != 1 {
		t.Fatalf("nodes not ascending: %+v", tr.Nodes)
	}
	if got := len(tr.Nodes[0].Transitions); got != 3 {
		t.Errorf("node 0 has %d transitions, want 3", got)
	}
	if tr.Nodes[0].InitialSoC != 0.9 {
		t.Errorf("node 0 InitialSoC = %v, want first-sample 0.9", tr.Nodes[0].InitialSoC)
	}
	// Transitions sorted by time even though the file interleaved nodes.
	prev := simtime.Time(-1)
	for _, x := range tr.Nodes[0].Transitions {
		if x.At <= prev {
			t.Fatalf("node 0 transitions not strictly ascending: %v after %v", x.At, prev)
		}
		prev = x.At
	}
}

// TestParseObsJSONLShuffledLines is the InitialSoC regression test: an
// export whose sample lines arrive out of time order (multi-writer
// exporters, log shippers, or a plain shuffle) must parse to the SAME
// trace as the time-ordered file. The old code captured InitialSoC from
// the first sample in FILE order while sorting transitions by time, so
// a shuffled export registered nodes with a mid-life SoC — and the
// whole downstream degradation reconstruction started from the wrong
// anchor.
func TestParseObsJSONLShuffledLines(t *testing.T) {
	want, err := ParseObsJSONL(strings.NewReader(sampleJSONL))
	if err != nil {
		t.Fatalf("ParseObsJSONL: %v", err)
	}

	lines := strings.Split(strings.TrimRight(sampleJSONL, "\n"), "\n")
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 8; trial++ {
		rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
		got, err := ParseObsJSONL(strings.NewReader(strings.Join(lines, "\n") + "\n"))
		if err != nil {
			t.Fatalf("trial %d: ParseObsJSONL: %v", trial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled export parsed differently:\ngot  %+v\nwant %+v", trial, got, want)
		}
	}

	// The targeted case: node 0's newest sample first in the file. Its
	// registration SoC must still be the time-earliest sample (0.9).
	reversed := `{"t":"manifest","sample_every_ms":600000}
{"t":"sample","node":0,"at_ms":1200000,"soc":0.8}
{"t":"sample","node":0,"at_ms":600000,"soc":0.85}
{"t":"sample","node":0,"at_ms":0,"soc":0.9}
`
	tr, err := ParseObsJSONL(strings.NewReader(reversed))
	if err != nil {
		t.Fatalf("ParseObsJSONL: %v", err)
	}
	if tr.Nodes[0].InitialSoC != 0.9 {
		t.Errorf("InitialSoC = %v, want time-earliest 0.9 (got the file-order sample)", tr.Nodes[0].InitialSoC)
	}
}

func TestParseObsJSONLErrors(t *testing.T) {
	if _, err := ParseObsJSONL(strings.NewReader(`{"t":"manifest","sample_every_ms":600000}` + "\n")); err == nil {
		t.Error("no samples should be an error")
	}
	if _, err := ParseObsJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line should be an error")
	}
}

func TestBuildBatchesShape(t *testing.T) {
	tr, err := ParseObsJSONL(strings.NewReader(sampleJSONL))
	if err != nil {
		t.Fatal(err)
	}
	batches := BuildBatches(tr, 0, 2, 2)

	// Deterministic: same inputs, same batches.
	again := BuildBatches(tr, 0, 2, 2)
	if !reflect.DeepEqual(batches, again) {
		t.Fatal("BuildBatches is not deterministic")
	}

	var total int
	lastPerNode := map[int]int64{}
	prevAt := int64(-1)
	for _, b := range batches {
		for _, u := range b.Uplinks {
			total++
			if len(u.Reports) == 0 || len(u.Reports) > 2 {
				t.Fatalf("uplink has %d reports, want 1..2", len(u.Reports))
			}
			if u.AtMs < prevAt {
				t.Fatalf("global uplink order not ascending: %d after %d", u.AtMs, prevAt)
			}
			prevAt = u.AtMs
			// Per-node packet times strictly ascend, so the server's
			// duplicate watermark never drops legitimate replay packets.
			if last, ok := lastPerNode[u.Node]; ok && u.AtMs <= last {
				t.Fatalf("node %d packet times not strictly ascending", u.Node)
			}
			lastPerNode[u.Node] = u.AtMs
			for _, r := range u.Reports {
				_ = r.Ago // offsets are unsigned by construction
			}
		}
	}
	// node 0: 3 transitions / 2 per packet = 2 packets; node 1: 1 packet.
	if total != 3 {
		t.Fatalf("built %d uplinks, want 3", total)
	}
}
