package lns

// Node-ID-range sharding. The daemon partitions the fleet into
// contiguous blocks of ShardBlock node IDs dealt round-robin across
// shards: block b goes to shard b mod N. Contiguous blocks keep a
// deployment's natural ID locality (a site's nodes land together, so
// their uplinks share a lane and batch splits stay chunky), while the
// round-robin deal keeps dense ID ranges from piling onto one shard.
//
// The mapping is pure and stateless on purpose: the HTTP ingest path,
// RegisterAll, snapshot split/merge, and cmd/loadgen's connection
// partitioning all derive it independently and must agree.

// ShardBlock is the contiguous node-ID block size of the shard map.
const ShardBlock = 256

// ShardOf maps a node ID to its shard in an N-shard daemon. Negative
// IDs (rejected downstream by Register/Ingest) and shards < 2 map to
// shard 0.
func ShardOf(node, shards int) int {
	if shards < 2 || node < 0 {
		return 0
	}
	return (node / ShardBlock) % shards
}

// SplitFrac maps the [startFrac, stopFrac) fraction pair onto index
// bounds [lo, hi) over n batches. Both bounds use the same floor
// rounding, so a replay stopped at `-stop-frac f` and resumed at
// `-start-frac f` covers every batch exactly once for ANY f and n —
// the boundary batch belongs to exactly one side. Fractions clamp to
// [0, 1] (NaN reads as 0), and an inverted pair yields an empty range
// rather than a negative one.
func SplitFrac(startFrac, stopFrac float64, n int) (lo, hi int) {
	cut := func(f float64) int {
		if !(f > 0) { // negatives and NaN
			return 0
		}
		if f >= 1 {
			return n
		}
		i := int(f * float64(n))
		if i > n { // float rounding at the top edge
			i = n
		}
		return i
	}
	lo, hi = cut(startFrac), cut(stopFrac)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
