package lns

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/battery"
	"repro/internal/netserver"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Config parameterizes a daemon. The zero value selects the paper's
// operating point: the default degradation model at 25 C with daily
// recomputes (a TempC of exactly 0 is read as "unset"; pass a model
// explicitly for sub-zero deployments).
type Config struct {
	Model    battery.Model
	TempC    float64
	Interval simtime.Duration
	// QueueDepth bounds the ingest lane: how many accepted-but-unapplied
	// batches may pile up before POST /v1/uplinks starts answering 429.
	QueueDepth int
	// RetryAfter is the back-off hint sent with a 429.
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Model == (battery.Model{}) {
		c.Model = battery.DefaultModel()
	}
	if c.TempC == 0 {
		c.TempC = 25
	}
	if c.Interval <= 0 {
		c.Interval = simtime.Day
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// job is one entry of the ingest lane: either a batch of uplinks or a
// control closure (registration, recompute, snapshot, w_u read, ...).
// Control jobs ride the same FIFO as ingest jobs, so they observe a
// server state that reflects every batch accepted before them — that
// ordering is what makes GET /v1/wu and GET /v1/snapshot consistent
// without any locking on the Server itself.
type job struct {
	uplinks []Uplink
	ctl     func()
	done    chan struct{}
}

// Daemon is the LNS service core: one netserver.Server owned by a
// single worker goroutine, fed through a bounded queue. HTTP handlers
// never touch the server directly; they enqueue. Ingest enqueues are
// non-blocking (full queue → backpressure), control enqueues block
// until executed.
type Daemon struct {
	cfg Config
	srv *netserver.Server
	rec *obs.Recorder

	q          chan job
	workerDone chan struct{}

	cBatches, cBatchesRejected, cUplinks  *obs.Counter
	cIngestNs, cRecomputeNs, cRecomputes *obs.Counter
	gQueueDepth, gRecomputeLastMs        *obs.Gauge
}

// NewDaemon starts a daemon (its worker goroutine runs until Close).
// The recorder is created internally; read it via Recorder.
func NewDaemon(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	srv, err := netserver.New(cfg.Model, cfg.TempC, cfg.Interval)
	if err != nil {
		return nil, err
	}
	rec := obs.New(obs.Manifest{Tool: "lnsd", Experiment: "lns"}, 0)
	srv.SetObserver(rec)
	d := &Daemon{
		cfg:              cfg,
		srv:              srv,
		rec:              rec,
		q:                make(chan job, cfg.QueueDepth),
		workerDone:       make(chan struct{}),
		cBatches:         rec.Counter("lns.batches_applied"),
		cBatchesRejected: rec.Counter("lns.batches_rejected"),
		cUplinks:         rec.Counter("lns.uplinks_applied"),
		cIngestNs:        rec.Counter("lns.ingest_ns_total"),
		cRecomputeNs:     rec.Counter("lns.recompute_ns_total"),
		cRecomputes:      rec.Counter("lns.recomputes"),
		gQueueDepth:      rec.Gauge("lns.queue_depth"),
		gRecomputeLastMs: rec.Gauge("lns.recompute_last_ms"),
	}
	go d.worker()
	return d, nil
}

// Close drains the queue and stops the worker. The HTTP server feeding
// the daemon must be shut down first; enqueuing after Close panics.
func (d *Daemon) Close() {
	close(d.q)
	<-d.workerDone
}

// Recorder exposes the daemon's metrics (obs counters/gauges).
func (d *Daemon) Recorder() *obs.Recorder { return d.rec }

func (d *Daemon) worker() {
	defer close(d.workerDone)
	for j := range d.q {
		d.gQueueDepth.Set(float64(len(d.q)))
		if j.ctl != nil {
			j.ctl()
			close(j.done)
			continue
		}
		start := time.Now()
		ReplayBatch(d.srv, Batch{Uplinks: j.uplinks}, d.noteRecompute)
		d.cIngestNs.Add(time.Since(start).Nanoseconds())
		d.cBatches.Inc()
		d.cUplinks.Add(int64(len(j.uplinks)))
	}
}

func (d *Daemon) noteRecompute(wall time.Duration) {
	d.cRecomputeNs.Add(wall.Nanoseconds())
	d.cRecomputes.Inc()
	d.gRecomputeLastMs.Set(float64(wall.Nanoseconds()) / 1e6)
}

// do runs fn on the worker goroutine after everything queued before it,
// blocking until done.
func (d *Daemon) do(fn func()) {
	j := job{ctl: fn, done: make(chan struct{})}
	d.q <- j
	<-j.done
}

// tryEnqueue offers a batch to the ingest lane without blocking; false
// means the lane is full (the recompute side fell behind) and the
// caller must back off.
func (d *Daemon) tryEnqueue(uplinks []Uplink) bool {
	select {
	case d.q <- job{uplinks: uplinks}:
		d.gQueueDepth.Set(float64(len(d.q)))
		return true
	default:
		d.cBatchesRejected.Inc()
		return false
	}
}

// RegisterAll applies registrations in order on the worker.
func (d *Daemon) RegisterAll(nodes []RegisterNode) {
	d.do(func() {
		for _, n := range nodes {
			if n.Rejoin {
				d.srv.Rejoin(n.Node, n.SoC)
			} else {
				d.srv.Register(n.Node, n.SoC)
			}
		}
	})
}

// RecomputeAt forces the due check at a virtual instant, timing the
// recompute like the ingest path does.
func (d *Daemon) RecomputeAt(at simtime.Time) bool {
	var ran bool
	d.do(func() {
		start := time.Now()
		if d.srv.RecomputeIfDue(at) {
			d.noteRecompute(time.Since(start))
			ran = true
		}
	})
	return ran
}

// WuTable returns the disseminated w_u table, consistent with every
// batch accepted before the call.
func (d *Daemon) WuTable() []netserver.NodeWu {
	var table []netserver.NodeWu
	d.do(func() { table = d.srv.WuTable() })
	return table
}

// SnapshotState captures the full server state, consistent with every
// batch accepted before the call.
func (d *Daemon) SnapshotState() *netserver.Snapshot {
	var snap *netserver.Snapshot
	d.do(func() { snap = d.srv.Snapshot() })
	return snap
}

// RestoreState replaces the server with one rebuilt from a snapshot.
func (d *Daemon) RestoreState(snap *netserver.Snapshot) error {
	var err error
	d.do(func() {
		var srv *netserver.Server
		if srv, err = netserver.Restore(snap); err == nil {
			srv.SetObserver(d.rec)
			d.srv = srv
		}
	})
	return err
}

// maxBodyBytes bounds request bodies; a batch of 4096 uplinks with full
// payloads stays far below it.
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz      liveness
//	GET  /v1/metrics   obs counters/gauges as CSV
//	POST /v1/register  {"nodes":[{"node":0,"soc":0.9,"rejoin":false},...]}
//	POST /v1/uplinks   {"uplinks":[{"node":0,"at_ms":...,"window_ms":...,"reports":[{"ago":0,"soc_q":...}]}]}
//	                   202 queued; 429 + Retry-After when the ingest
//	                   lane is full (backpressure contract)
//	POST /v1/recompute {"at_ms":...} -> {"ran":bool}
//	GET  /v1/wu        disseminated w_u table (deterministic JSON)
//	GET  /v1/snapshot  full server state
//	POST /v1/restore   body of /v1/snapshot
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		d.rec.WriteCountersCSV(w)
	})
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterReq
		if !decodeBody(w, r, &req) {
			return
		}
		d.RegisterAll(req.Nodes)
		writeJSON(w, http.StatusOK, map[string]int{"registered": len(req.Nodes)})
	})
	mux.HandleFunc("POST /v1/uplinks", func(w http.ResponseWriter, r *http.Request) {
		var b Batch
		if !decodeBody(w, r, &b) {
			return
		}
		if !d.tryEnqueue(b.Uplinks) {
			w.Header().Set("Retry-After",
				strconv.Itoa(int(max(1, d.cfg.RetryAfter/time.Second))))
			http.Error(w, "ingest lane full, retry later", http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusAccepted, IngestResp{Queued: len(b.Uplinks)})
	})
	mux.HandleFunc("POST /v1/recompute", func(w http.ResponseWriter, r *http.Request) {
		var req RecomputeReq
		if !decodeBody(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, RecomputeResp{Ran: d.RecomputeAt(simtime.Time(req.AtMs))})
	})
	mux.HandleFunc("GET /v1/wu", func(w http.ResponseWriter, r *http.Request) {
		table := d.WuTable()
		w.Header().Set("Content-Type", "application/json")
		WriteWuTable(w, table)
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap := d.SnapshotState()
		writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var snap netserver.Snapshot
		if !decodeBody(w, r, &snap) {
			return
		}
		if err := d.RestoreState(&snap); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"nodes": len(snap.Nodes)})
	})
	return mux
}
