package lns

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/battery"
	"repro/internal/netserver"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Config parameterizes a daemon. The zero value selects the paper's
// operating point: the default degradation model at 25 C with daily
// recomputes on a single shard (a TempC of exactly 0 is read as
// "unset"; pass a model explicitly for sub-zero deployments).
type Config struct {
	Model    battery.Model
	TempC    float64
	Interval simtime.Duration
	// Shards is the number of node-ID-range shards, each a private
	// netserver.Server behind its own worker goroutine and bounded
	// queue (see ShardOf for the node→shard map). 1 (the default) is
	// the single-lane degenerate case — and the determinism oracle the
	// multi-shard paths are diffed against.
	Shards int
	// QueueDepth bounds each shard's ingest lane: how many
	// accepted-but-unapplied batches may pile up before POST
	// /v1/uplinks starts answering 429.
	QueueDepth int
	// RetryAfter is the back-off hint sent with a 429.
	RetryAfter time.Duration
	// Logf sinks response-write failures and other non-fatal handler
	// errors (default log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Model == (battery.Model{}) {
		c.Model = battery.DefaultModel()
	}
	if c.TempC == 0 {
		c.TempC = 25
	}
	if c.Interval <= 0 {
		c.Interval = simtime.Day
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// job is one entry of a shard's ingest lane: either a batch of uplinks
// routed to this shard or a control closure (registration, barrier
// phase, snapshot, ...). Control jobs ride the same FIFO as ingest
// jobs, so they observe a shard state that reflects every batch
// accepted before them — that ordering is what makes GET /v1/wu and
// GET /v1/snapshot consistent without any locking on the Servers
// themselves.
type job struct {
	uplinks []Uplink
	ctl     func(s *netserver.Server)
	done    chan struct{}
}

// shard is one node-ID-range partition: a private server owned by one
// worker goroutine, fed through a bounded queue. Nothing but that
// worker ever touches srv (control ops run as closures ON the worker),
// so the server needs no locks and per-node ordering holds by
// construction — one node, one lane.
type shard struct {
	srv  *netserver.Server
	q    chan job
	done chan struct{}

	cUplinks *obs.Counter
	gQueue   *obs.Gauge
}

// Daemon is the LNS service core: N netserver.Server sub-fleets, each
// owned by a shard worker goroutine. HTTP ingest routes each uplink to
// its shard by node-ID range and never blocks (full lane →
// backpressure); control ops fan out to every shard behind a barrier
// and merge results deterministically, so the w_u table and snapshot
// bytes are identical at any shard count.
type Daemon struct {
	cfg    Config
	rec    *obs.Recorder
	shards []*shard

	// ctlMu serializes control operations. Each op enqueues one ctl job
	// per shard; two ops doing so concurrently could interleave their
	// jobs in different orders on different lanes and deadlock the
	// barrier handshake. Ingest never takes it.
	ctlMu sync.Mutex

	cBatches, cBatchesRejected, cUplinks *obs.Counter
	cIngestNs, cRecomputeNs, cRecomputes *obs.Counter
	gQueueDepth, gRecomputeLastMs        *obs.Gauge
}

// NewDaemon starts a daemon (its shard workers run until Close).
// The recorder is created internally; read it via Recorder.
func NewDaemon(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	rec := obs.New(obs.Manifest{Tool: "lnsd", Experiment: "lns"}, 0)
	d := &Daemon{
		cfg:              cfg,
		rec:              rec,
		shards:           make([]*shard, cfg.Shards),
		cBatches:         rec.Counter("lns.batches_applied"),
		cBatchesRejected: rec.Counter("lns.batches_rejected"),
		cUplinks:         rec.Counter("lns.uplinks_applied"),
		cIngestNs:        rec.Counter("lns.ingest_ns_total"),
		cRecomputeNs:     rec.Counter("lns.recompute_ns_total"),
		cRecomputes:      rec.Counter("lns.recomputes"),
		gQueueDepth:      rec.Gauge("lns.queue_depth"),
		gRecomputeLastMs: rec.Gauge("lns.recompute_last_ms"),
	}
	for i := range d.shards {
		srv, err := netserver.New(cfg.Model, cfg.TempC, cfg.Interval)
		if err != nil {
			return nil, err
		}
		srv.SetObserver(rec)
		sh := &shard{
			srv:      srv,
			q:        make(chan job, cfg.QueueDepth),
			done:     make(chan struct{}),
			cUplinks: rec.Counter(fmt.Sprintf("lns.shard%d.uplinks_applied", i)),
			gQueue:   rec.Gauge(fmt.Sprintf("lns.shard%d.queue_depth", i)),
		}
		d.shards[i] = sh
		go d.worker(sh)
	}
	return d, nil
}

// Close drains the queues and stops the workers. The HTTP server
// feeding the daemon must be shut down first; enqueuing after Close
// panics.
func (d *Daemon) Close() {
	for _, sh := range d.shards {
		close(sh.q)
	}
	for _, sh := range d.shards {
		<-sh.done
	}
}

// Recorder exposes the daemon's metrics (obs counters/gauges).
func (d *Daemon) Recorder() *obs.Recorder { return d.rec }

func (d *Daemon) worker(sh *shard) {
	defer close(sh.done)
	for j := range sh.q {
		sh.gQueue.Set(float64(len(sh.q)))
		d.gQueueDepth.Set(float64(d.queued()))
		if j.ctl != nil {
			j.ctl(sh.srv)
			close(j.done)
			continue
		}
		start := time.Now()
		ReplayBatch(sh.srv, Batch{Uplinks: j.uplinks})
		d.cIngestNs.Add(time.Since(start).Nanoseconds())
		d.cBatches.Inc()
		d.cUplinks.Add(int64(len(j.uplinks)))
		sh.cUplinks.Add(int64(len(j.uplinks)))
	}
}

// queued counts jobs sitting in all shard lanes (racy snapshot, gauge
// use only).
func (d *Daemon) queued() int {
	n := 0
	for _, sh := range d.shards {
		n += len(sh.q)
	}
	return n
}

func (d *Daemon) noteRecompute(wall time.Duration) {
	d.cRecomputeNs.Add(wall.Nanoseconds())
	d.cRecomputes.Inc()
	d.gRecomputeLastMs.Set(float64(wall.Nanoseconds()) / 1e6)
}

// fanout runs fn(i, shard i's server) on every shard worker, after
// everything queued before it on each lane, and returns when all
// shards finished. Caller must hold ctlMu. The jobs are all enqueued
// before any completion is awaited, so the shards drain in parallel.
func (d *Daemon) fanout(fn func(i int, s *netserver.Server)) {
	dones := make([]chan struct{}, len(d.shards))
	for i, sh := range d.shards {
		i := i
		dones[i] = make(chan struct{})
		sh.q <- job{ctl: func(s *netserver.Server) { fn(i, s) }, done: dones[i]}
	}
	for _, done := range dones {
		<-done
	}
}

// do runs fn once on every shard worker, blocking until all ran — the
// test hook for stalling the lanes.
func (d *Daemon) do(fn func()) {
	d.ctlMu.Lock()
	defer d.ctlMu.Unlock()
	d.fanout(func(int, *netserver.Server) { fn() })
}

// barrier quiesces every shard behind its ingest lane and runs one
// deterministic fleet-wide recompute in three phases:
//
//  1. each shard (optionally) folds `advance` into its clock and
//     reports it; the coordinator merges the clocks (max — exactly how
//     AdvanceClock itself folds instants) and derives the grid slot;
//  2. each shard evaluates its nodes' degradation at that one slot and
//     reports its local maximum; the coordinator merges them into the
//     fleet D_max;
//  3. each shard requantizes w_u against the fleet D_max, then runs
//     `collect` on its quiesced server before resuming ingest.
//
// Every shard computes at the same grid slot and normalizes by the
// same D_max, so the merged results are identical to a 1-shard server
// that ingested the union — at any shard count. Returns the per-shard
// collect results, whether any degradation pass actually ran, and the
// wall time of phases 2–3 (the recompute cost, excluding queue drain).
func (d *Daemon) barrier(advance simtime.Time, collect func(s *netserver.Server) any) (results []any, ran bool, wall time.Duration) {
	d.ctlMu.Lock()
	defer d.ctlMu.Unlock()
	n := len(d.shards)
	results = make([]any, n)
	clocks := make([]simtime.Time, n)
	dmaxs := make([]float64, n)
	rans := make([]bool, n)

	var slot simtime.Time
	var dmax float64
	slotReady := make(chan struct{})
	dmaxReady := make(chan struct{})
	var wgClock, wgDegr sync.WaitGroup
	wgClock.Add(n)
	wgDegr.Add(n)

	dones := make([]chan struct{}, n)
	for i, sh := range d.shards {
		i := i
		dones[i] = make(chan struct{})
		sh.q <- job{done: dones[i], ctl: func(s *netserver.Server) {
			if advance >= 0 {
				s.AdvanceClock(advance)
			}
			clocks[i] = s.Clock()
			wgClock.Done()
			<-slotReady
			dmaxs[i], rans[i] = s.RecomputeDegrAt(slot)
			wgDegr.Done()
			<-dmaxReady
			s.ApplyWu(dmax)
			if collect != nil {
				results[i] = collect(s)
			}
		}}
	}

	wgClock.Wait()
	maxClock := clocks[0]
	for _, c := range clocks[1:] {
		if c > maxClock {
			maxClock = c
		}
	}
	slot = netserver.GridInstant(maxClock, d.cfg.Interval)
	start := time.Now()
	close(slotReady)

	wgDegr.Wait()
	for i := range dmaxs {
		if dmaxs[i] > dmax {
			dmax = dmaxs[i]
		}
		ran = ran || rans[i]
	}
	close(dmaxReady)

	for _, done := range dones {
		<-done
	}
	return results, ran, time.Since(start)
}

// tryEnqueue routes a batch's uplinks to their shards and offers each
// non-empty sub-batch to its lane without blocking; false means at
// least one lane is full (the recompute side fell behind) and the
// caller must back off. A partial acceptance is safe: the client
// retries the whole batch, and the per-node watermarks drop the
// sub-batches that already landed — the same idempotence that absorbs
// network-level duplicates.
func (d *Daemon) tryEnqueue(uplinks []Uplink) bool {
	if len(d.shards) == 1 {
		return d.offer(d.shards[0], uplinks)
	}
	parts := make([][]Uplink, len(d.shards))
	for _, u := range uplinks {
		i := ShardOf(u.Node, len(d.shards))
		parts[i] = append(parts[i], u)
	}
	ok := true
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if !d.offer(d.shards[i], part) {
			ok = false
		}
	}
	return ok
}

func (d *Daemon) offer(sh *shard, uplinks []Uplink) bool {
	select {
	case sh.q <- job{uplinks: uplinks}:
		sh.gQueue.Set(float64(len(sh.q)))
		d.gQueueDepth.Set(float64(d.queued()))
		return true
	default:
		d.cBatchesRejected.Inc()
		return false
	}
}

// RegisterAll applies registrations on each owning shard's worker,
// preserving the request order within every shard.
func (d *Daemon) RegisterAll(nodes []RegisterNode) {
	groups := make([][]RegisterNode, len(d.shards))
	for _, n := range nodes {
		i := ShardOf(n.Node, len(d.shards))
		groups[i] = append(groups[i], n)
	}
	d.ctlMu.Lock()
	defer d.ctlMu.Unlock()
	d.fanout(func(i int, s *netserver.Server) {
		for _, n := range groups[i] {
			if n.Rejoin {
				s.Rejoin(n.Node, n.SoC)
			} else {
				s.Register(n.Node, n.SoC)
			}
		}
	})
}

// RecomputeAt runs a barrier recompute with the virtual clock advanced
// to (at least) the given instant, timing the degradation pass like
// the metrics expect. It reports whether the pass ran (false when the
// fleet was already clean at the same grid slot).
func (d *Daemon) RecomputeAt(at simtime.Time) bool {
	_, ran, wall := d.barrier(at, nil)
	if ran {
		d.noteRecompute(wall)
	}
	return ran
}

// WuTable returns the disseminated w_u table, consistent with every
// batch accepted before the call: a barrier recompute brings every
// shard to the same grid slot and fleet D_max, then the per-shard
// tables merge in ascending node order.
func (d *Daemon) WuTable() []netserver.NodeWu {
	results, ran, wall := d.barrier(NoAdvance, func(s *netserver.Server) any { return s.WuTable() })
	if ran {
		d.noteRecompute(wall)
	}
	parts := make([][]netserver.NodeWu, len(results))
	for i, r := range results {
		parts[i] = r.([]netserver.NodeWu)
	}
	return netserver.MergeWuTables(parts)
}

// SnapshotState captures the full fleet state, consistent with every
// batch accepted before the call. Like WuTable it barriers first, so
// the merged snapshot's grid bookkeeping is uniform across shards and
// its bytes match the 1-shard (and library-path) snapshot exactly.
func (d *Daemon) SnapshotState() (*netserver.Snapshot, error) {
	results, ran, wall := d.barrier(NoAdvance, func(s *netserver.Server) any { return s.Snapshot() })
	if ran {
		d.noteRecompute(wall)
	}
	parts := make([]*netserver.Snapshot, len(results))
	for i, r := range results {
		parts[i] = r.(*netserver.Snapshot)
	}
	return netserver.MergeSnapshots(parts)
}

// RestoreState replaces the fleet with one rebuilt from a snapshot,
// split across the shards by the same node→shard map ingest routes
// with. The per-shard servers are fully built and validated BEFORE any
// worker swaps, so a bad snapshot leaves the running state untouched.
func (d *Daemon) RestoreState(snap *netserver.Snapshot) error {
	parts := netserver.SplitSnapshot(snap, len(d.shards), func(nodeID int) int {
		return ShardOf(nodeID, len(d.shards))
	})
	srvs := make([]*netserver.Server, len(parts))
	for i, part := range parts {
		srv, err := netserver.Restore(part)
		if err != nil {
			return err
		}
		srv.SetObserver(d.rec)
		srvs[i] = srv
	}
	d.ctlMu.Lock()
	defer d.ctlMu.Unlock()
	d.fanout(func(i int, _ *netserver.Server) {
		d.shards[i].srv = srvs[i]
	})
	return nil
}

// maxBodyBytes bounds request bodies; a batch of 4096 uplinks with full
// payloads stays far below it.
const maxBodyBytes = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON encodes the response body; an encode/write failure (a
// client gone mid-response, a marshal bug) is logged instead of
// silently dropped — the status line already went out, so logging is
// all that is left to do.
func (d *Daemon) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		d.cfg.Logf("lns: write %d response: %v", status, err)
	}
}

// retryAfterSeconds renders the backoff hint as whole seconds for the
// Retry-After header, rounding UP: the advertised wait must never be
// shorter than the configured one (1500ms must say "2" — truncating to
// "1" invites clients back early, defeating the backpressure).
func retryAfterSeconds(d time.Duration) int {
	s := (d + time.Second - 1) / time.Second
	if s < 1 {
		return 1
	}
	return int(s)
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz      liveness
//	GET  /v1/metrics   obs counters/gauges as CSV (incl. per-shard)
//	POST /v1/register  {"nodes":[{"node":0,"soc":0.9,"rejoin":false},...]}
//	POST /v1/uplinks   {"uplinks":[{"node":0,"at_ms":...,"window_ms":...,"reports":[{"ago":0,"soc_q":...}]}]}
//	                   202 queued; 429 + Retry-After when an ingest
//	                   lane is full (backpressure contract)
//	POST /v1/recompute {"at_ms":...} -> {"ran":bool}
//	GET  /v1/wu        disseminated w_u table (deterministic JSON)
//	GET  /v1/snapshot  full fleet state (merged across shards)
//	POST /v1/restore   body of /v1/snapshot
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		d.rec.WriteCountersCSV(w)
	})
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterReq
		if !decodeBody(w, r, &req) {
			return
		}
		d.RegisterAll(req.Nodes)
		d.writeJSON(w, http.StatusOK, map[string]int{"registered": len(req.Nodes)})
	})
	mux.HandleFunc("POST /v1/uplinks", func(w http.ResponseWriter, r *http.Request) {
		var b Batch
		if !decodeBody(w, r, &b) {
			return
		}
		// An empty batch is a no-op, not work: acknowledging it without
		// enqueuing keeps batches_applied and ingest_ns_total meaning
		// "batches that carried uplinks" (and keeps a keep-alive poster
		// from filling the lanes with nothing).
		if len(b.Uplinks) == 0 {
			d.writeJSON(w, http.StatusAccepted, IngestResp{Queued: 0})
			return
		}
		if !d.tryEnqueue(b.Uplinks) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.cfg.RetryAfter)))
			http.Error(w, "ingest lane full, retry later", http.StatusTooManyRequests)
			return
		}
		d.writeJSON(w, http.StatusAccepted, IngestResp{Queued: len(b.Uplinks)})
	})
	mux.HandleFunc("POST /v1/recompute", func(w http.ResponseWriter, r *http.Request) {
		var req RecomputeReq
		if !decodeBody(w, r, &req) {
			return
		}
		d.writeJSON(w, http.StatusOK, RecomputeResp{Ran: d.RecomputeAt(simtime.Time(req.AtMs))})
	})
	mux.HandleFunc("GET /v1/wu", func(w http.ResponseWriter, r *http.Request) {
		table := d.WuTable()
		w.Header().Set("Content-Type", "application/json")
		if err := WriteWuTable(w, table); err != nil {
			d.cfg.Logf("lns: write wu table: %v", err)
		}
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		snap, err := d.SnapshotState()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		d.writeJSON(w, http.StatusOK, snap)
	})
	mux.HandleFunc("POST /v1/restore", func(w http.ResponseWriter, r *http.Request) {
		var snap netserver.Snapshot
		if !decodeBody(w, r, &snap) {
			return
		}
		if err := d.RestoreState(&snap); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		d.writeJSON(w, http.StatusOK, map[string]int{"nodes": len(snap.Nodes)})
	})
	return mux
}
