package lns

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/battery"
	"repro/internal/netserver"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// The simulator is the traffic generator: cmd/experiments and
// cmd/blasim export per-run obs JSONL files whose per-node SoC sample
// rows are exactly the reconstructed traces the gateway worked from.
// This file turns such an export back into device traffic — encoded
// transition reports, grouped into uplink packets, interleaved across
// nodes in time order, and chunked into ingest batches.

// NodeTrace is one node's replayable SoC history.
type NodeTrace struct {
	ID int
	// InitialSoC is the SoC the node registers with (its first sample).
	InitialSoC float64
	// Transitions are the SoC samples in ascending time order.
	Transitions []battery.Transition
}

// Trace is a parsed obs JSONL export, reduced to what replay needs.
type Trace struct {
	// SampleEvery is the export's timeline sampling period; it is the
	// default forecast-window length used to encode reports.
	SampleEvery simtime.Duration
	// Nodes is ascending by ID; nodes without samples are absent.
	Nodes []NodeTrace
}

// ParseObsJSONL extracts the replayable trace from an obs JSONL export
// (see internal/obs: one JSON object per line, "t" names the record
// type). Only the manifest and sample records matter here; counters,
// gauges, and events are skipped.
func ParseObsJSONL(r io.Reader) (*Trace, error) {
	type line struct {
		T             string  `json:"t"`
		SampleEveryMs int64   `json:"sample_every_ms"`
		Node          int     `json:"node"`
		AtMs          int64   `json:"at_ms"`
		SoC           float64 `json:"soc"`
	}
	tr := &Trace{SampleEvery: obs.DefaultSampleEvery}
	byNode := make(map[int]*NodeTrace)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("lns: obs jsonl line %d: %w", lineNo, err)
		}
		switch l.T {
		case "manifest":
			if l.SampleEveryMs > 0 {
				tr.SampleEvery = simtime.Duration(l.SampleEveryMs)
			}
		case "sample":
			nt, ok := byNode[l.Node]
			if !ok {
				nt = &NodeTrace{ID: l.Node}
				byNode[l.Node] = nt
			}
			nt.Transitions = append(nt.Transitions, battery.Transition{
				At:  simtime.Time(l.AtMs),
				SoC: l.SoC,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lns: obs jsonl: %w", err)
	}
	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		nt := byNode[id]
		sort.SliceStable(nt.Transitions, func(i, j int) bool {
			return nt.Transitions[i].At < nt.Transitions[j].At
		})
		// The registration SoC is the node's earliest sample in TIME
		// order, which the exporter usually also writes first — but a
		// shuffled or multi-writer export must not register nodes with
		// whatever sample happened to appear first in the file.
		nt.InitialSoC = nt.Transitions[0].SoC
		tr.Nodes = append(tr.Nodes, *nt)
	}
	if len(tr.Nodes) == 0 {
		return nil, fmt.Errorf("lns: obs jsonl holds no sample records")
	}
	return tr, nil
}

// BuildBatches converts a trace into the replay traffic: per node,
// consecutive transitions group into uplink packets of at most
// reportsPerPacket reports (packet reception one window after its
// newest report, so every offset encodes as a non-negative window
// count); packets from all nodes interleave in global time order; the
// ordered packet list chunks into batches of uplinksPerBatch. The
// construction is deterministic — same trace and knobs, same batches —
// which is what lets a replay split across a snapshot/restart resume at
// a bare batch index.
//
// A non-positive window defaults to the trace's sampling period;
// non-positive counts default to 8 reports per packet and 64 uplinks
// per batch.
func BuildBatches(tr *Trace, window simtime.Duration, reportsPerPacket, uplinksPerBatch int) []Batch {
	if window <= 0 {
		window = tr.SampleEvery
	}
	if window <= 0 {
		window = obs.DefaultSampleEvery
	}
	if reportsPerPacket <= 0 {
		reportsPerPacket = 8
	}
	if uplinksPerBatch <= 0 {
		uplinksPerBatch = 64
	}
	var uplinks []Uplink
	for _, nt := range tr.Nodes {
		for lo := 0; lo < len(nt.Transitions); lo += reportsPerPacket {
			hi := min(lo+reportsPerPacket, len(nt.Transitions))
			group := nt.Transitions[lo:hi]
			packetAt := group[len(group)-1].At.Add(window)
			u := Uplink{
				Node:     nt.ID,
				AtMs:     int64(packetAt),
				WindowMs: int64(window),
				Reports:  make([]WireReport, 0, len(group)),
			}
			for _, t := range group {
				r := battery.EncodeTransition(t, packetAt, window)
				u.Reports = append(u.Reports, WireReport{Ago: r.WindowsAgo, SoCQ: r.SoCQ})
			}
			uplinks = append(uplinks, u)
		}
	}
	// Global time order, node ascending within an instant: the stream a
	// gateway serving all nodes would see.
	sort.SliceStable(uplinks, func(i, j int) bool {
		if uplinks[i].AtMs != uplinks[j].AtMs {
			return uplinks[i].AtMs < uplinks[j].AtMs
		}
		return uplinks[i].Node < uplinks[j].Node
	})
	batches := make([]Batch, 0, (len(uplinks)+uplinksPerBatch-1)/uplinksPerBatch)
	for lo := 0; lo < len(uplinks); lo += uplinksPerBatch {
		hi := min(lo+uplinksPerBatch, len(uplinks))
		batches = append(batches, Batch{Uplinks: uplinks[lo:hi]})
	}
	return batches
}

// RegisterTrace registers every node of the trace with its initial SoC,
// ascending by ID — the library-path mirror of POST /v1/register.
func RegisterTrace(s *netserver.Server, tr *Trace) {
	for _, nt := range tr.Nodes {
		s.Register(nt.ID, nt.InitialSoC)
	}
}

// ReplayBatch folds one batch into the server: each uplink's reports
// are decoded and ingested, and its reception instant advances the
// virtual clock. This is THE apply path — every shard worker of the
// daemon and the in-process reference computation call it, which is
// what makes the two byte-identical by construction.
//
// Deliberately NO recompute happens here. Per-node tracker and
// watermark state depends only on that node's own sub-stream, and the
// clock is a running maximum — both are invariant under any
// interleaving of different nodes' traffic. A mid-stream recompute
// keyed to "which uplink crossed the day boundary" would not be: it
// bakes the arrival order of the whole stream into the disseminated
// w_u. Recomputes instead run only at barriers (RecomputeBarrier /
// the daemon's control ops), where every shard agrees on the grid
// slot derived from the merged clock.
func ReplayBatch(s *netserver.Server, b Batch) {
	var scratch []battery.Report
	for _, u := range b.Uplinks {
		scratch = scratch[:0]
		for _, r := range u.Reports {
			scratch = append(scratch, battery.Report{WindowsAgo: r.Ago, SoCQ: r.SoCQ})
		}
		at := simtime.Time(u.AtMs)
		s.Ingest(u.Node, scratch, at, simtime.Duration(u.WindowMs))
		s.AdvanceClock(at)
	}
}

// NoAdvance is the RecomputeBarrier sentinel for "fold no extra
// instant into the clock" — barrier at whatever the traffic reached.
const NoAdvance = simtime.Time(-1)

// RecomputeBarrier runs one deterministic recompute on a quiesced
// server: optionally folds `advance` into the virtual clock
// (NoAdvance skips), evaluates every node's degradation at the
// resulting grid slot, and refreshes the disseminated w_u table
// against the fleet maximum. It is the 1-server form of the daemon's
// cross-shard barrier and reports whether the degradation pass ran
// (false when nothing changed since a barrier at the same slot).
func RecomputeBarrier(s *netserver.Server, advance simtime.Time) bool {
	if advance >= 0 {
		s.AdvanceClock(advance)
	}
	dmax, ran := s.RecomputeDegrAt(s.GridInstant())
	s.ApplyWu(dmax)
	return ran
}

// LastUplinkAt returns the latest uplink reception instant across the
// batches (0 when empty). Replays barrier once more at this instant
// plus the dissemination interval, so the final day of traffic is
// covered by a recompute in both the daemon and reference paths.
func LastUplinkAt(batches []Batch) simtime.Time {
	var last simtime.Time
	for _, b := range batches {
		for _, u := range b.Uplinks {
			if at := simtime.Time(u.AtMs); at > last {
				last = at
			}
		}
	}
	return last
}

// ReplayLocal runs the complete in-process reference computation: a
// fresh server, trace registration, every batch through ReplayBatch,
// and the final barrier recompute — the library path the daemon is
// diffed against.
func ReplayLocal(cfg Config, tr *Trace, batches []Batch) (*netserver.Server, error) {
	cfg = cfg.withDefaults()
	return ReplayLocalRange(cfg, tr, batches, true, LastUplinkAt(batches).Add(cfg.Interval))
}

// ReplayLocalRange is ReplayLocal for a batch prefix: it registers the
// trace, applies the given batches, and runs a barrier recompute —
// folding finalAt into the clock only when final is set. Partial
// replays (loadgen -stop-frac) use final=false, matching the barrier
// any daemon snapshot/wu read performs mid-stream: the grid slot is
// whatever the replayed traffic itself reached.
func ReplayLocalRange(cfg Config, tr *Trace, batches []Batch, final bool, finalAt simtime.Time) (*netserver.Server, error) {
	cfg = cfg.withDefaults()
	s, err := netserver.New(cfg.Model, cfg.TempC, cfg.Interval)
	if err != nil {
		return nil, err
	}
	RegisterTrace(s, tr)
	for _, b := range batches {
		ReplayBatch(s, b)
	}
	advance := NoAdvance
	if final {
		advance = finalAt
	}
	RecomputeBarrier(s, advance)
	return s, nil
}
