package lns

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/netserver"
	"repro/internal/simtime"
)

// synthTrace builds a deterministic multi-node trace: daily SoC cycles
// with per-node amplitude and phase, sampled every 10 minutes.
func synthTrace(nodes, days int, seed uint64) *Trace {
	tr := &Trace{SampleEvery: 10 * simtime.Minute}
	rng := rand.New(rand.NewPCG(seed, 99))
	for id := 0; id < nodes; id++ {
		depth := 0.2 + 0.5*rng.Float64()
		phase := rng.IntN(24)
		nt := NodeTrace{ID: id, InitialSoC: 0.9}
		for d := 0; d < days; d++ {
			for h := 0; h < 24; h += 2 {
				at := simtime.Time(d)*simtime.Time(simtime.Day) + simtime.Time(h)*simtime.Time(simtime.Hour)
				soc := 0.9 - depth*0.5*(1+float64((h+phase)%12)/6-1)
				nt.Transitions = append(nt.Transitions, battery.Transition{
					At:  at,
					SoC: min(1, max(0.05, soc)),
				})
			}
		}
		if len(nt.Transitions) > 0 {
			nt.InitialSoC = nt.Transitions[0].SoC
		}
		tr.Nodes = append(tr.Nodes, nt)
	}
	return tr
}

// wuBytes renders a w_u table with the canonical writer.
func wuBytes(t *testing.T, table []netserver.NodeWu) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteWuTable(&buf, table); err != nil {
		t.Fatalf("WriteWuTable: %v", err)
	}
	return buf.Bytes()
}

// driveHTTP replays registration, batches, and the final recompute
// through the daemon's HTTP API, one request at a time (order
// preserved), and returns the final w_u table bytes from GET /v1/wu.
func driveHTTP(t *testing.T, ts *httptest.Server, tr *Trace, batches []Batch, register bool, interval simtime.Duration) []byte {
	t.Helper()
	post := func(path string, body any) *http.Response {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal %s: %v", path, err)
		}
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	if register {
		req := RegisterReq{}
		for _, nt := range tr.Nodes {
			req.Nodes = append(req.Nodes, RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
		}
		resp := post("/v1/register", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	for i, b := range batches {
		for {
			resp := post("/v1/uplinks", b)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("batch %d: status %d", i, resp.StatusCode)
			}
			// Backpressure: the test client just spins; loadgen sleeps
			// the advertised Retry-After.
		}
	}
	resp := post("/v1/recompute", RecomputeReq{AtMs: int64(LastUplinkAt(batches).Add(interval))})
	resp.Body.Close()

	wu, err := ts.Client().Get(ts.URL + "/v1/wu")
	if err != nil {
		t.Fatalf("GET /v1/wu: %v", err)
	}
	defer wu.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(wu.Body); err != nil {
		t.Fatalf("read wu: %v", err)
	}
	return buf.Bytes()
}

// TestHTTPMatchesLibraryPath: a clean replay through the daemon's HTTP
// path must produce a w_u table byte-identical to the in-process
// library path (ReplayLocal).
func TestHTTPMatchesLibraryPath(t *testing.T) {
	tr := synthTrace(6, 5, 1)
	batches := BuildBatches(tr, 0, 8, 16)
	cfg := Config{}

	lib, err := ReplayLocal(cfg, tr, batches)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	want := wuBytes(t, lib.WuTable())

	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	got := driveHTTP(t, ts, tr, batches, true, cfg.withDefaults().Interval)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP path w_u table diverged from library path:\nhttp %s\nlib  %s", got, want)
	}
	if len(want) <= len("[]\n") {
		t.Fatal("test premise broken: empty w_u table")
	}
}

// perturb builds an adversarial variant of the uplink stream: duplicated
// uplinks, bounded and full shuffles, and random re-batching. The same
// perturbed stream feeds both paths; the perturbation itself is
// deterministic per trial.
func perturb(batches []Batch, rng *rand.Rand) []Batch {
	var ups []Uplink
	for _, b := range batches {
		ups = append(ups, b.Uplinks...)
	}
	// Duplicate ~20% (exact retransmissions at the same instant).
	var dup []Uplink
	for _, u := range ups {
		dup = append(dup, u)
		if rng.IntN(5) == 0 {
			dup = append(dup, u)
		}
	}
	// Shuffle: every other trial bounded (window 8), else full.
	if rng.IntN(2) == 0 {
		rng.Shuffle(len(dup), func(i, j int) { dup[i], dup[j] = dup[j], dup[i] })
	} else {
		for i := range dup {
			j := i + rng.IntN(8)
			if j < len(dup) {
				dup[i], dup[j] = dup[j], dup[i]
			}
		}
	}
	// Re-batch with random sizes, including single-uplink batches.
	var out []Batch
	for lo := 0; lo < len(dup); {
		hi := min(lo+1+rng.IntN(17), len(dup))
		out = append(out, Batch{Uplinks: dup[lo:hi]})
		lo = hi
	}
	return out
}

// TestHTTPIngestIdempotence is the property-style satellite test:
// shuffled + duplicated + arbitrarily re-batched report streams driven
// through the HTTP path must leave a w_u table byte-identical to direct
// library Ingest calls fed the same stream. Additionally, a
// duplicates-only stream (order preserved) must match the clean run
// exactly — duplicates are invisible.
func TestHTTPIngestIdempotence(t *testing.T) {
	tr := synthTrace(5, 4, 2)
	clean := BuildBatches(tr, 0, 6, 16)
	cfg := Config{}
	interval := cfg.withDefaults().Interval

	cleanLib, err := ReplayLocal(cfg, tr, clean)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	cleanWant := wuBytes(t, cleanLib.WuTable())

	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewPCG(11, uint64(trial)))
		stream := perturb(clean, rng)

		lib, err := ReplayLocal(cfg, tr, stream)
		if err != nil {
			t.Fatalf("trial %d: ReplayLocal: %v", trial, err)
		}
		want := wuBytes(t, lib.WuTable())

		d, err := NewDaemon(cfg)
		if err != nil {
			t.Fatalf("trial %d: NewDaemon: %v", trial, err)
		}
		ts := httptest.NewServer(d.Handler())
		got := driveHTTP(t, ts, tr, stream, true, interval)
		ts.Close()
		d.Close()

		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: HTTP path diverged from library path on perturbed stream:\nhttp %s\nlib  %s",
				trial, got, want)
		}
	}

	// Duplicates only, order preserved: must equal the clean run.
	var dupOnly []Batch
	for _, b := range clean {
		var ups []Uplink
		for _, u := range b.Uplinks {
			ups = append(ups, u, u)
		}
		dupOnly = append(dupOnly, Batch{Uplinks: ups})
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	got := driveHTTP(t, ts, tr, dupOnly, true, interval)
	if !bytes.Equal(got, cleanWant) {
		t.Fatalf("duplicated stream diverged from clean run:\ndup   %s\nclean %s", got, cleanWant)
	}
}

// TestSnapshotRestoreOverHTTP: replay half the stream, snapshot over
// HTTP, restore into a fresh daemon, replay the rest — the final table
// must match an uninterrupted run byte-for-byte.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	tr := synthTrace(4, 6, 3)
	batches := BuildBatches(tr, 0, 8, 8)
	cfg := Config{}
	interval := cfg.withDefaults().Interval
	cut := len(batches) / 2

	lib, err := ReplayLocal(cfg, tr, batches)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	want := wuBytes(t, lib.WuTable())

	// First half.
	d1, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	ts1 := httptest.NewServer(d1.Handler())
	req := RegisterReq{}
	for _, nt := range tr.Nodes {
		req.Nodes = append(req.Nodes, RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
	}
	data, _ := json.Marshal(req)
	if resp, err := ts1.Client().Post(ts1.URL+"/v1/register", "application/json", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for _, b := range batches[:cut] {
		body, _ := json.Marshal(b)
		resp, err := ts1.Client().Post(ts1.URL+"/v1/uplinks", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first-half batch: %v status %v", err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	snapResp, err := ts1.Client().Get(ts1.URL + "/v1/snapshot")
	if err != nil {
		t.Fatalf("GET /v1/snapshot: %v", err)
	}
	var snapBody bytes.Buffer
	snapBody.ReadFrom(snapResp.Body)
	snapResp.Body.Close()
	ts1.Close()
	d1.Close()

	// Restored daemon resumes at the same batch index, no re-register.
	d2, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d2.Close()
	ts2 := httptest.NewServer(d2.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Post(ts2.URL+"/v1/restore", "application/json", bytes.NewReader(snapBody.Bytes()))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/restore: %v status %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	got := driveHTTP(t, ts2, tr, batches[cut:], false, interval)

	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot/restore run diverged from uninterrupted run:\nresumed %s\nfull    %s", got, want)
	}
}

// TestBackpressure429: when the ingest lane is full, POST /v1/uplinks
// must answer 429 with a Retry-After hint, reject without corrupting
// state, and accept again once the lane drains.
func TestBackpressure429(t *testing.T) {
	d, err := NewDaemon(Config{QueueDepth: 2})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	d.RegisterAll([]RegisterNode{{Node: 0, SoC: 0.9}})

	// Stall the worker on a control job so the queue cannot drain.
	started := make(chan struct{})
	gate := make(chan struct{})
	go d.do(func() { close(started); <-gate })
	<-started

	post := func() *http.Response {
		b := Batch{Uplinks: []Uplink{{Node: 0, AtMs: int64(simtime.Hour), WindowMs: int64(simtime.Minute)}}}
		data, _ := json.Marshal(b)
		resp, err := ts.Client().Post(ts.URL+"/v1/uplinks", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST /v1/uplinks: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	// Fill the lane, then observe the backpressure response.
	var saw429 *http.Response
	for i := 0; i < 10 && saw429 == nil; i++ {
		if resp := post(); resp.StatusCode == http.StatusTooManyRequests {
			saw429 = resp
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if saw429 == nil {
		t.Fatal("never saw 429 with a stalled worker and QueueDepth=2")
	}
	if ra := saw429.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	if rejected := d.Recorder().Counter("lns.batches_rejected").Value(); rejected == 0 {
		t.Error("lns.batches_rejected not incremented")
	}

	// Drain and verify the lane accepts again.
	close(gate)
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain status %d, want 202", resp.StatusCode)
	}
}

// TestMetricsEndpoint: the obs counters surface over HTTP in the
// deterministic CSV form.
func TestMetricsEndpoint(t *testing.T) {
	d, err := NewDaemon(Config{})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	tr := synthTrace(2, 2, 4)
	batches := BuildBatches(tr, 0, 8, 8)
	driveHTTP(t, ts, tr, batches, true, simtime.Day)

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"counter,lns.batches_applied,", "counter,lns.uplinks_applied,",
		"counter,netserver.packets_ingested,", "counter,netserver.recomputes,",
		"gauge,lns.queue_depth,",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "counter,lns.batches_applied,0\n") {
		t.Error("lns.batches_applied still 0 after a replay")
	}
}

// TestConfigDefaults pins the zero-value contract.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Model != battery.DefaultModel() || c.TempC != 25 || c.Interval != simtime.Day {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.QueueDepth <= 0 || c.RetryAfter <= 0 {
		t.Errorf("queue defaults not filled: %+v", c)
	}
	if fmt.Sprint(c.Interval) != "24h0m0s" {
		t.Errorf("interval = %v, want 24h", c.Interval)
	}
}
