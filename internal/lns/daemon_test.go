package lns

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/netserver"
	"repro/internal/simtime"
)

// synthTrace builds a deterministic multi-node trace: daily SoC cycles
// with per-node amplitude and phase, sampled every 10 minutes.
func synthTrace(nodes, days int, seed uint64) *Trace {
	tr := &Trace{SampleEvery: 10 * simtime.Minute}
	rng := rand.New(rand.NewPCG(seed, 99))
	for id := 0; id < nodes; id++ {
		depth := 0.2 + 0.5*rng.Float64()
		phase := rng.IntN(24)
		nt := NodeTrace{ID: id, InitialSoC: 0.9}
		for d := 0; d < days; d++ {
			for h := 0; h < 24; h += 2 {
				at := simtime.Time(d)*simtime.Time(simtime.Day) + simtime.Time(h)*simtime.Time(simtime.Hour)
				soc := 0.9 - depth*0.5*(1+float64((h+phase)%12)/6-1)
				nt.Transitions = append(nt.Transitions, battery.Transition{
					At:  at,
					SoC: min(1, max(0.05, soc)),
				})
			}
		}
		if len(nt.Transitions) > 0 {
			nt.InitialSoC = nt.Transitions[0].SoC
		}
		tr.Nodes = append(tr.Nodes, nt)
	}
	return tr
}

// spreadTrace stretches a trace's node IDs by stride so the fleet
// spans several ShardBlock ranges — dense test IDs 0..n would all land
// in shard 0 and make every multi-shard assertion vacuous.
func spreadTrace(tr *Trace, stride int) *Trace {
	out := &Trace{SampleEvery: tr.SampleEvery}
	for _, nt := range tr.Nodes {
		nt.ID *= stride
		out.Nodes = append(out.Nodes, nt)
	}
	return out
}

// snapBytesLib renders a server snapshot exactly as GET /v1/snapshot
// does (Encoder: one JSON object, trailing newline).
func snapBytesLib(t *testing.T, srv *netserver.Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(srv.Snapshot()); err != nil {
		t.Fatalf("encode snapshot: %v", err)
	}
	return buf.Bytes()
}

// getBytes fetches a daemon endpoint's raw body.
func getBytes(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return buf.Bytes()
}

// wuBytes renders a w_u table with the canonical writer.
func wuBytes(t *testing.T, table []netserver.NodeWu) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteWuTable(&buf, table); err != nil {
		t.Fatalf("WriteWuTable: %v", err)
	}
	return buf.Bytes()
}

// driveHTTP replays registration, batches, and the final recompute
// through the daemon's HTTP API, one request at a time (order
// preserved), and returns the final w_u table bytes from GET /v1/wu.
func driveHTTP(t *testing.T, ts *httptest.Server, tr *Trace, batches []Batch, register bool, interval simtime.Duration) []byte {
	t.Helper()
	post := func(path string, body any) *http.Response {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal %s: %v", path, err)
		}
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	if register {
		req := RegisterReq{}
		for _, nt := range tr.Nodes {
			req.Nodes = append(req.Nodes, RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
		}
		resp := post("/v1/register", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	for i, b := range batches {
		for {
			resp := post("/v1/uplinks", b)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("batch %d: status %d", i, resp.StatusCode)
			}
			// Backpressure: the test client just spins; loadgen sleeps
			// the advertised Retry-After.
		}
	}
	resp := post("/v1/recompute", RecomputeReq{AtMs: int64(LastUplinkAt(batches).Add(interval))})
	resp.Body.Close()

	wu, err := ts.Client().Get(ts.URL + "/v1/wu")
	if err != nil {
		t.Fatalf("GET /v1/wu: %v", err)
	}
	defer wu.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(wu.Body); err != nil {
		t.Fatalf("read wu: %v", err)
	}
	return buf.Bytes()
}

// TestHTTPMatchesLibraryPath: a clean replay through the daemon's HTTP
// path must produce a w_u table byte-identical to the in-process
// library path (ReplayLocal).
func TestHTTPMatchesLibraryPath(t *testing.T) {
	tr := synthTrace(6, 5, 1)
	batches := BuildBatches(tr, 0, 8, 16)
	cfg := Config{}

	lib, err := ReplayLocal(cfg, tr, batches)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	want := wuBytes(t, lib.WuTable())

	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	got := driveHTTP(t, ts, tr, batches, true, cfg.withDefaults().Interval)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP path w_u table diverged from library path:\nhttp %s\nlib  %s", got, want)
	}
	if len(want) <= len("[]\n") {
		t.Fatal("test premise broken: empty w_u table")
	}
}

// perturb builds an adversarial variant of the uplink stream: duplicated
// uplinks, bounded and full shuffles, and random re-batching. The same
// perturbed stream feeds both paths; the perturbation itself is
// deterministic per trial.
func perturb(batches []Batch, rng *rand.Rand) []Batch {
	var ups []Uplink
	for _, b := range batches {
		ups = append(ups, b.Uplinks...)
	}
	// Duplicate ~20% (exact retransmissions at the same instant).
	var dup []Uplink
	for _, u := range ups {
		dup = append(dup, u)
		if rng.IntN(5) == 0 {
			dup = append(dup, u)
		}
	}
	// Shuffle: every other trial bounded (window 8), else full.
	if rng.IntN(2) == 0 {
		rng.Shuffle(len(dup), func(i, j int) { dup[i], dup[j] = dup[j], dup[i] })
	} else {
		for i := range dup {
			j := i + rng.IntN(8)
			if j < len(dup) {
				dup[i], dup[j] = dup[j], dup[i]
			}
		}
	}
	// Re-batch with random sizes, including single-uplink batches.
	var out []Batch
	for lo := 0; lo < len(dup); {
		hi := min(lo+1+rng.IntN(17), len(dup))
		out = append(out, Batch{Uplinks: dup[lo:hi]})
		lo = hi
	}
	return out
}

// TestHTTPIngestIdempotence is the shards × shuffle property test:
// shuffled + duplicated + arbitrarily re-batched report streams driven
// through the HTTP path must leave a w_u table AND a snapshot
// byte-identical to direct library Ingest calls fed the same stream —
// at every shard count. The node IDs span several ShardBlock ranges,
// so multi-shard runs genuinely split the fleet and the perturbation's
// global shuffle genuinely interleaves the lanes. Additionally, a
// duplicates-only stream (order preserved) must match the clean run
// exactly — duplicates are invisible.
func TestHTTPIngestIdempotence(t *testing.T) {
	tr := spreadTrace(synthTrace(5, 4, 2), ShardBlock+1)
	clean := BuildBatches(tr, 0, 6, 16)
	cfg := Config{}
	interval := cfg.withDefaults().Interval

	cleanLib, err := ReplayLocal(cfg, tr, clean)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	cleanWant := wuBytes(t, cleanLib.WuTable())

	for _, shards := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewPCG(11, uint64(100*shards+trial)))
			stream := perturb(clean, rng)

			lib, err := ReplayLocal(cfg, tr, stream)
			if err != nil {
				t.Fatalf("shards=%d trial %d: ReplayLocal: %v", shards, trial, err)
			}
			want := wuBytes(t, lib.WuTable())
			wantSnap := snapBytesLib(t, lib)

			d, err := NewDaemon(Config{Shards: shards})
			if err != nil {
				t.Fatalf("shards=%d trial %d: NewDaemon: %v", shards, trial, err)
			}
			ts := httptest.NewServer(d.Handler())
			got := driveHTTP(t, ts, tr, stream, true, interval)
			gotSnap := getBytes(t, ts, "/v1/snapshot")
			ts.Close()
			d.Close()

			if !bytes.Equal(got, want) {
				t.Fatalf("shards=%d trial %d: HTTP path w_u diverged from library path on perturbed stream:\nhttp %s\nlib  %s",
					shards, trial, got, want)
			}
			if !bytes.Equal(gotSnap, wantSnap) {
				t.Fatalf("shards=%d trial %d: HTTP snapshot diverged from library path", shards, trial)
			}
		}
	}

	// Duplicates only, order preserved: must equal the clean run.
	var dupOnly []Batch
	for _, b := range clean {
		var ups []Uplink
		for _, u := range b.Uplinks {
			ups = append(ups, u, u)
		}
		dupOnly = append(dupOnly, Batch{Uplinks: ups})
	}
	d, err := NewDaemon(Config{Shards: 4})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	got := driveHTTP(t, ts, tr, dupOnly, true, interval)
	if !bytes.Equal(got, cleanWant) {
		t.Fatalf("duplicated stream diverged from clean run:\ndup   %s\nclean %s", got, cleanWant)
	}
}

// TestSnapshotRestoreOverHTTP: replay half the stream, snapshot over
// HTTP, restore into a fresh daemon, replay the rest — the final table
// must match an uninterrupted run byte-for-byte.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	tr := synthTrace(4, 6, 3)
	batches := BuildBatches(tr, 0, 8, 8)
	cfg := Config{}
	interval := cfg.withDefaults().Interval
	cut := len(batches) / 2

	lib, err := ReplayLocal(cfg, tr, batches)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	want := wuBytes(t, lib.WuTable())

	// First half.
	d1, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	ts1 := httptest.NewServer(d1.Handler())
	req := RegisterReq{}
	for _, nt := range tr.Nodes {
		req.Nodes = append(req.Nodes, RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
	}
	data, _ := json.Marshal(req)
	if resp, err := ts1.Client().Post(ts1.URL+"/v1/register", "application/json", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	for _, b := range batches[:cut] {
		body, _ := json.Marshal(b)
		resp, err := ts1.Client().Post(ts1.URL+"/v1/uplinks", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first-half batch: %v status %v", err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	snapResp, err := ts1.Client().Get(ts1.URL + "/v1/snapshot")
	if err != nil {
		t.Fatalf("GET /v1/snapshot: %v", err)
	}
	var snapBody bytes.Buffer
	snapBody.ReadFrom(snapResp.Body)
	snapResp.Body.Close()
	ts1.Close()
	d1.Close()

	// Restored daemon resumes at the same batch index, no re-register.
	d2, err := NewDaemon(cfg)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d2.Close()
	ts2 := httptest.NewServer(d2.Handler())
	defer ts2.Close()
	resp, err := ts2.Client().Post(ts2.URL+"/v1/restore", "application/json", bytes.NewReader(snapBody.Bytes()))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/restore: %v status %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	got := driveHTTP(t, ts2, tr, batches[cut:], false, interval)

	if !bytes.Equal(got, want) {
		t.Fatalf("snapshot/restore run diverged from uninterrupted run:\nresumed %s\nfull    %s", got, want)
	}
}

// postBatches posts batches in order without any recompute, spinning on
// backpressure.
func postBatches(t *testing.T, ts *httptest.Server, batches []Batch) {
	t.Helper()
	for i, b := range batches {
		for {
			data, _ := json.Marshal(b)
			resp, err := ts.Client().Post(ts.URL+"/v1/uplinks", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("batch %d: status %d", i, resp.StatusCode)
			}
		}
	}
}

// TestShardedSnapshotRestoreAcrossShardCounts drives the full sharded
// state lifecycle: a mid-stream snapshot from an s-shard daemon must be
// byte-identical to the library path stopped at the same batch, AND
// restorable into a daemon with a DIFFERENT shard count (the snapshot
// wire format is shard-count-free; routing happens at restore). The
// resumed run must land exactly on the reference final state.
func TestShardedSnapshotRestoreAcrossShardCounts(t *testing.T) {
	// Stride 97 mixes several nodes per ShardBlock while still crossing
	// block boundaries — with 8 shards some shards stay empty, which the
	// merge path must also survive.
	tr := spreadTrace(synthTrace(6, 5, 9), 97)
	batches := BuildBatches(tr, 0, 8, 8)
	cfg := Config{}
	interval := cfg.withDefaults().Interval
	cut := len(batches) / 2
	finalAt := LastUplinkAt(batches).Add(interval)

	// Reference: prefix with a mid-stream barrier (what GET /v1/snapshot
	// performs), then the rest and the final barrier on the same server.
	libMid, err := ReplayLocalRange(cfg, tr, batches[:cut], false, 0)
	if err != nil {
		t.Fatalf("ReplayLocalRange: %v", err)
	}
	wantMidSnap := snapBytesLib(t, libMid)
	for _, b := range batches[cut:] {
		ReplayBatch(libMid, b)
	}
	RecomputeBarrier(libMid, finalAt)
	wantWu := wuBytes(t, libMid.WuTable())
	wantSnap := snapBytesLib(t, libMid)

	// The mid-stream barrier must be invisible in the final w_u table:
	// a straight-through replay agrees.
	straight, err := ReplayLocal(cfg, tr, batches)
	if err != nil {
		t.Fatalf("ReplayLocal: %v", err)
	}
	if !bytes.Equal(wuBytes(t, straight.WuTable()), wantWu) {
		t.Fatal("test premise broken: mid-stream barrier changed the final w_u table")
	}

	shardCounts := []int{1, 2, 4, 8}
	for i, shards := range shardCounts {
		resumeShards := shardCounts[(i+1)%len(shardCounts)]

		d1, err := NewDaemon(Config{Shards: shards})
		if err != nil {
			t.Fatalf("NewDaemon: %v", err)
		}
		ts1 := httptest.NewServer(d1.Handler())
		req := RegisterReq{}
		for _, nt := range tr.Nodes {
			req.Nodes = append(req.Nodes, RegisterNode{Node: nt.ID, SoC: nt.InitialSoC})
		}
		data, _ := json.Marshal(req)
		resp, err := ts1.Client().Post(ts1.URL+"/v1/register", "application/json", bytes.NewReader(data))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("register: %v status %v", err, resp.StatusCode)
		}
		resp.Body.Close()
		postBatches(t, ts1, batches[:cut])
		midSnap := getBytes(t, ts1, "/v1/snapshot")
		ts1.Close()
		d1.Close()

		if !bytes.Equal(midSnap, wantMidSnap) {
			t.Fatalf("shards=%d: mid-stream snapshot diverged from library path", shards)
		}

		d2, err := NewDaemon(Config{Shards: resumeShards})
		if err != nil {
			t.Fatalf("NewDaemon: %v", err)
		}
		ts2 := httptest.NewServer(d2.Handler())
		resp, err = ts2.Client().Post(ts2.URL+"/v1/restore", "application/json", bytes.NewReader(midSnap))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("restore into shards=%d: %v status %v", resumeShards, err, resp.StatusCode)
		}
		resp.Body.Close()
		gotWu := driveHTTP(t, ts2, tr, batches[cut:], false, interval)
		gotSnap := getBytes(t, ts2, "/v1/snapshot")
		ts2.Close()
		d2.Close()

		if !bytes.Equal(gotWu, wantWu) {
			t.Fatalf("snapshot at shards=%d resumed at shards=%d: final w_u diverged:\ngot  %s\nwant %s",
				shards, resumeShards, gotWu, wantWu)
		}
		if !bytes.Equal(gotSnap, wantSnap) {
			t.Fatalf("snapshot at shards=%d resumed at shards=%d: final snapshot diverged", shards, resumeShards)
		}
	}
}

// TestShardRouting pins the node→lane map end to end: uplinks for nodes
// in distinct ShardBlock ranges land on distinct shard workers, visible
// through the per-shard uplink counters.
func TestShardRouting(t *testing.T) {
	d, err := NewDaemon(Config{Shards: 4})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	nodes := []int{0, ShardBlock, 2 * ShardBlock, 3 * ShardBlock}
	var regs []RegisterNode
	for _, n := range nodes {
		regs = append(regs, RegisterNode{Node: n, SoC: 0.9})
	}
	d.RegisterAll(regs)

	var ups []Uplink
	for _, n := range nodes {
		ups = append(ups, Uplink{Node: n, AtMs: int64(simtime.Hour), WindowMs: int64(simtime.Minute)})
	}
	// A second uplink for shard 0's node: counters must tell 2/1/1/1 apart.
	ups = append(ups, Uplink{Node: 0, AtMs: int64(2 * simtime.Hour), WindowMs: int64(simtime.Minute)})
	postBatches(t, ts, []Batch{{Uplinks: ups}})
	d.WuTable() // barrier: every lane drained

	wantPerShard := []int64{2, 1, 1, 1}
	for i, want := range wantPerShard {
		name := fmt.Sprintf("lns.shard%d.uplinks_applied", i)
		if got := d.Recorder().Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := d.Recorder().Counter("lns.uplinks_applied").Value(); got != 5 {
		t.Errorf("lns.uplinks_applied = %d, want 5", got)
	}
}

// TestRetryAfterSeconds: the header must round UP to whole seconds —
// advertising a shorter wait than configured invites clients back
// before the lane can drain.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{1500 * time.Millisecond, 2}, // the truncation bug advertised 1
		{time.Second, 1},
		{999 * time.Millisecond, 1},
		{time.Millisecond, 1},
		{2 * time.Second, 2},
		{2100 * time.Millisecond, 3},
		{0, 1},
		{-time.Second, 1},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}

	// End to end: a daemon configured with a non-integral hint
	// advertises the rounded-UP value on a real 429.
	d, err := NewDaemon(Config{QueueDepth: 1, RetryAfter: 1500 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	d.RegisterAll([]RegisterNode{{Node: 0, SoC: 0.9}})

	started := make(chan struct{})
	gate := make(chan struct{})
	go d.do(func() { close(started); <-gate })
	defer close(gate)
	<-started

	b := Batch{Uplinks: []Uplink{{Node: 0, AtMs: int64(simtime.Hour), WindowMs: int64(simtime.Minute)}}}
	data, _ := json.Marshal(b)
	for i := 0; i < 5; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/uplinks", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra != "2" {
				t.Errorf("Retry-After = %q, want \"2\" (1500ms rounds up)", ra)
			}
			return
		}
	}
	t.Fatal("never saw 429 with a stalled worker and QueueDepth=1")
}

// TestEmptyBatchAccounting: an empty POST /v1/uplinks is acknowledged
// but must not enqueue work or touch the ingest metrics — batches_applied
// and ingest_ns_total mean "batches that carried uplinks".
func TestEmptyBatchAccounting(t *testing.T) {
	d, err := NewDaemon(Config{})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	for _, body := range []string{`{"uplinks":[]}`, `{}`} {
		resp, err := ts.Client().Post(ts.URL+"/v1/uplinks", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", body, err)
		}
		var out IngestResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || out.Queued != 0 {
			t.Errorf("empty batch %s: status %d queued %d, want 202/0", body, resp.StatusCode, out.Queued)
		}
	}
	d.WuTable() // drain: any wrongly enqueued job would be applied now
	for _, name := range []string{"lns.batches_applied", "lns.ingest_ns_total", "lns.uplinks_applied"} {
		if v := d.Recorder().Counter(name).Value(); v != 0 {
			t.Errorf("%s = %d after empty batches, want 0", name, v)
		}
	}
}

// TestBackpressure429: when the ingest lane is full, POST /v1/uplinks
// must answer 429 with a Retry-After hint, reject without corrupting
// state, and accept again once the lane drains.
func TestBackpressure429(t *testing.T) {
	d, err := NewDaemon(Config{QueueDepth: 2})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	d.RegisterAll([]RegisterNode{{Node: 0, SoC: 0.9}})

	// Stall the worker on a control job so the queue cannot drain.
	started := make(chan struct{})
	gate := make(chan struct{})
	go d.do(func() { close(started); <-gate })
	<-started

	post := func() *http.Response {
		b := Batch{Uplinks: []Uplink{{Node: 0, AtMs: int64(simtime.Hour), WindowMs: int64(simtime.Minute)}}}
		data, _ := json.Marshal(b)
		resp, err := ts.Client().Post(ts.URL+"/v1/uplinks", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST /v1/uplinks: %v", err)
		}
		resp.Body.Close()
		return resp
	}

	// Fill the lane, then observe the backpressure response.
	var saw429 *http.Response
	for i := 0; i < 10 && saw429 == nil; i++ {
		if resp := post(); resp.StatusCode == http.StatusTooManyRequests {
			saw429 = resp
		} else if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if saw429 == nil {
		t.Fatal("never saw 429 with a stalled worker and QueueDepth=2")
	}
	if ra := saw429.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	if rejected := d.Recorder().Counter("lns.batches_rejected").Value(); rejected == 0 {
		t.Error("lns.batches_rejected not incremented")
	}

	// Drain and verify the lane accepts again.
	close(gate)
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain status %d, want 202", resp.StatusCode)
	}
}

// TestMetricsEndpoint: the obs counters surface over HTTP in the
// deterministic CSV form.
func TestMetricsEndpoint(t *testing.T) {
	d, err := NewDaemon(Config{})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	tr := synthTrace(2, 2, 4)
	batches := BuildBatches(tr, 0, 8, 8)
	driveHTTP(t, ts, tr, batches, true, simtime.Day)

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatalf("GET /v1/metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"counter,lns.batches_applied,", "counter,lns.uplinks_applied,",
		"counter,netserver.packets_ingested,", "counter,netserver.recomputes,",
		"gauge,lns.queue_depth,",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "counter,lns.batches_applied,0\n") {
		t.Error("lns.batches_applied still 0 after a replay")
	}
}

// TestConfigDefaults pins the zero-value contract.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Model != battery.DefaultModel() || c.TempC != 25 || c.Interval != simtime.Day {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.QueueDepth <= 0 || c.RetryAfter <= 0 {
		t.Errorf("queue defaults not filled: %+v", c)
	}
	if fmt.Sprint(c.Interval) != "24h0m0s" {
		t.Errorf("interval = %v, want 24h", c.Interval)
	}
}
