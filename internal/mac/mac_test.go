package mac

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// flatForecaster predicts the same energy for every window.
type flatForecaster struct{ perWindow float64 }

func (f flatForecaster) ForecastWindows(_ simtime.Time, _ simtime.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f.perWindow
	}
	return out
}

func (f flatForecaster) Observe(simtime.Time, simtime.Time, float64) {}

var _ energy.Forecaster = flatForecaster{}

func validBLAConfig() BLAConfig {
	return BLAConfig{
		Theta:           0.5,
		WeightB:         1,
		Beta:            0.3,
		Forecaster:      flatForecaster{perWindow: 0.05},
		Window:          simtime.Minute,
		MaxWindows:      60,
		SingleTxEnergyJ: 0.03,
		MaxAttempts:     8,
	}
}

func TestALOHA(t *testing.T) {
	var p Protocol = ALOHA{}
	if p.Name() != "LoRaWAN" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.Theta() != 1 {
		t.Errorf("Theta = %v, want 1 (no cap)", p.Theta())
	}
	d := p.DecideTx(0, 20, 5)
	if d.Drop || d.Window != 0 || d.SpreadInWindow {
		t.Errorf("DecideTx = %+v, want immediate window 0", d)
	}
	// Learning hooks are no-ops but must not panic.
	p.OnOutcome(Outcome{Window: 0, Attempts: 3, EnergyJ: 0.1, Delivered: true})
	p.OnDegradationUpdate(0, 0.7)
}

func TestThetaOnly(t *testing.T) {
	p, err := NewThetaOnly(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "H-50C" {
		t.Errorf("Name = %q, want H-50C", p.Name())
	}
	if p.Theta() != 0.5 {
		t.Errorf("Theta = %v", p.Theta())
	}
	if d := p.DecideTx(0, 20, 5); d.Drop || d.Window != 0 {
		t.Errorf("DecideTx = %+v, want immediate window 0", d)
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := NewThetaOnly(bad); err == nil {
			t.Errorf("NewThetaOnly(%v) should fail", bad)
		}
	}
}

func TestBLAConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*BLAConfig)
	}{
		{"theta 0", func(c *BLAConfig) { c.Theta = 0 }},
		{"theta > 1", func(c *BLAConfig) { c.Theta = 1.2 }},
		{"weightB < 0", func(c *BLAConfig) { c.WeightB = -1 }},
		{"beta 0", func(c *BLAConfig) { c.Beta = 0 }},
		{"nil forecaster", func(c *BLAConfig) { c.Forecaster = nil }},
		{"zero window", func(c *BLAConfig) { c.Window = 0 }},
		{"zero max windows", func(c *BLAConfig) { c.MaxWindows = 0 }},
		{"zero tx energy", func(c *BLAConfig) { c.SingleTxEnergyJ = 0 }},
		{"zero attempts", func(c *BLAConfig) { c.MaxAttempts = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validBLAConfig()
			tt.mutate(&cfg)
			if _, err := NewBLA(cfg); err == nil {
				t.Error("NewBLA should reject invalid config")
			}
		})
	}
}

func TestBLAName(t *testing.T) {
	tests := []struct {
		theta float64
		want  string
	}{
		{0.05, "H-5"},
		{0.5, "H-50"},
		{1, "H-100"},
	}
	for _, tt := range tests {
		cfg := validBLAConfig()
		cfg.Theta = tt.theta
		p, err := NewBLA(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Name(); got != tt.want {
			t.Errorf("theta %v Name = %q, want %q", tt.theta, got, tt.want)
		}
	}
}

func TestBLAFreshNodeTransmitsEarly(t *testing.T) {
	p, err := NewBLA(validBLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := p.DecideTx(0, 20, 1.0)
	if d.Drop {
		t.Fatal("well-charged fresh node should not drop")
	}
	if d.Window != 0 {
		t.Errorf("fresh node window = %d, want 0", d.Window)
	}
	if !d.SpreadInWindow {
		t.Error("BLA should randomize the offset inside the window")
	}
}

// TestBLADegradedDefersToGreenWindow: after a w_u update, a degraded
// node with an empty battery and no early energy defers to the window
// where generation covers the transmission.
func TestBLADegradedDefersToGreenWindow(t *testing.T) {
	cfg := validBLAConfig()
	cfg.Forecaster = rampForecaster{}
	p, err := NewBLA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.OnDegradationUpdate(0, 1)
	d := p.DecideTx(0, 10, 1.0)
	if d.Drop {
		t.Fatal("should not drop")
	}
	if d.Window == 0 {
		t.Error("fully degraded node should defer past the zero-energy window")
	}
}

// rampForecaster: no energy in window 0, plenty afterwards.
type rampForecaster struct{}

func (rampForecaster) ForecastWindows(_ simtime.Time, _ simtime.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := 1; i < n; i++ {
		out[i] = 0.1
	}
	return out
}

func (rampForecaster) Observe(simtime.Time, simtime.Time, float64) {}

// TestBLADropsWhenInfeasible: dead battery, no forecast energy.
func TestBLADropsWhenInfeasible(t *testing.T) {
	cfg := validBLAConfig()
	cfg.Forecaster = flatForecaster{perWindow: 0}
	p, err := NewBLA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := p.DecideTx(0, 10, 0)
	if !d.Drop {
		t.Errorf("decision = %+v, want drop", d)
	}
	// Zero windows also drops defensively.
	if d := p.DecideTx(0, 0, 1); !d.Drop {
		t.Error("zero windows should drop")
	}
}

// TestBLARetxHistorySteersAway: a window with a heavy collision history
// gets an inflated energy estimate and is avoided by a degraded node in
// favour of a clean window with the same forecast.
func TestBLARetxHistorySteersAway(t *testing.T) {
	cfg := validBLAConfig()
	cfg.Forecaster = flatForecaster{perWindow: 0.035} // covers 1 attempt, not 8
	p, err := NewBLA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.OnDegradationUpdate(0, 1)

	// Teach the protocol that window 0 is crowded: 7 retransmissions per
	// packet, while other windows stay clean.
	for i := 0; i < 20; i++ {
		p.OnOutcome(Outcome{Window: 0, Attempts: 8, EnergyJ: 8 * 0.03, Delivered: true})
	}

	d := p.DecideTx(0, 10, 1.0)
	if d.Drop {
		t.Fatal("should not drop")
	}
	if d.Window == 0 {
		t.Error("node should avoid the historically crowded window 0")
	}
}

// TestBLARetxHistoryAblation: with the history disabled, the same
// learning leaves the decision unchanged.
func TestBLARetxHistoryAblation(t *testing.T) {
	cfg := validBLAConfig()
	cfg.DisableRetxHistory = true
	cfg.Forecaster = flatForecaster{perWindow: 0.035}
	p, err := NewBLA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.OnDegradationUpdate(0, 1)
	for i := 0; i < 20; i++ {
		p.OnOutcome(Outcome{Window: 0, Attempts: 8, EnergyJ: 8 * 0.03, Delivered: true})
	}
	d := p.DecideTx(0, 10, 1.0)
	if d.Drop || d.Window != 0 {
		t.Errorf("ablated protocol decision = %+v, want window 0", d)
	}
}

func TestBLAEWMALearnsFromOutcomes(t *testing.T) {
	p, err := NewBLA(validBLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zero-attempt outcomes (drops) must not feed the estimator.
	p.OnOutcome(Outcome{Window: 0, Attempts: 0, EnergyJ: 99})
	// A string of expensive packets raises the estimate.
	for i := 0; i < 50; i++ {
		p.OnOutcome(Outcome{Window: 3, Attempts: 4, EnergyJ: 0.12, Delivered: true})
	}
	// With the estimate raised to 0.12 J and 0.05 J harvest per window, a
	// drained battery can first afford the transmission in window 2
	// (cumulative harvest 0.15 J); without learning it would pick window 0.
	d := p.DecideTx(0, 10, 0)
	if d.Drop {
		t.Fatal("cumulative harvest should make a later window feasible")
	}
	if d.Window != 2 {
		t.Errorf("window = %d; estimator should have pushed the choice to window 2", d.Window)
	}
}

func TestBLADegradationUpdateClamped(t *testing.T) {
	p, err := NewBLA(validBLAConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.OnDegradationUpdate(0, 7)
	if got := p.NormalizedDegradation(); got != 1 {
		t.Errorf("w_u = %v, want clamped to 1", got)
	}
	p.OnDegradationUpdate(0, -3)
	if got := p.NormalizedDegradation(); got != 0 {
		t.Errorf("w_u = %v, want clamped to 0", got)
	}
}

func TestBLAUtilityDefaultsToLinear(t *testing.T) {
	cfg := validBLAConfig()
	cfg.Utility = nil
	if _, err := NewBLA(cfg); err != nil {
		t.Fatalf("nil utility should default to linear: %v", err)
	}
	cfg.Utility = utility.Deadline{Fraction: 0.5}
	if _, err := NewBLA(cfg); err != nil {
		t.Fatalf("custom utility rejected: %v", err)
	}
}
