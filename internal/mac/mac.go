// Package mac defines the media-access protocols under evaluation behind
// one interface: the LoRaWAN pure-ALOHA baseline, the paper's battery
// lifespan-aware MAC (BLA, built on internal/core), and the H-50C
// ablation (charge cap only, no window selection).
//
// A Protocol instance belongs to exactly one node and is driven by
// whichever substrate hosts the node (internal/sim or internal/testbed).
package mac

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// Decision is a protocol's verdict for one generated packet.
type Decision struct {
	// Drop means the protocol refuses to transmit the packet (Algorithm
	// 1's FAIL).
	Drop bool
	// Window is the zero-based forecast window of the sampling period in
	// which to transmit.
	Window int
	// SpreadInWindow requests a random transmission offset inside the
	// window to reduce intra-window collisions (Sec. III-B "Network
	// dynamics and channel access"); pure ALOHA transmits immediately.
	SpreadInWindow bool
}

// Outcome reports how a packet's transmission went, so protocols can
// learn.
type Outcome struct {
	// Window the packet was assigned to.
	Window int
	// Attempts made (1 = no retransmissions). Zero for dropped packets.
	Attempts int
	// EnergyJ actually consumed by the radio for this packet, including
	// retransmissions and receive windows.
	EnergyJ float64
	// Delivered is true when an ACK arrived.
	Delivered bool
}

// Protocol is one node's media-access policy.
type Protocol interface {
	// Name identifies the protocol in reports (e.g. "LoRaWAN", "H-50").
	Name() string
	// Theta is the battery charge cap this protocol requests, as a
	// fraction of current maximum capacity (1 = uncapped).
	Theta() float64
	// DecideTx picks the forecast window for a packet generated at gen.
	// windows is the number of forecast windows in this sampling period
	// and storedJ the battery's current stored energy.
	DecideTx(gen simtime.Time, windows int, storedJ float64) Decision
	// OnOutcome feeds back the result of a packet so the protocol's
	// estimators can learn.
	OnOutcome(o Outcome)
	// OnDegradationUpdate delivers the gateway's normalized degradation
	// w_u in [0,1] (piggy-backed on ACKs, at most daily). now is the
	// reception time, which staleness-aware protocols use to age the
	// weight.
	OnDegradationUpdate(now simtime.Time, wu float64)
	// Reset discards the protocol's volatile state (learned estimators,
	// the cached w_u), as a node rebooting after a brownout would.
	Reset()
}

// ALOHA is the LoRaWAN baseline: transmit immediately (window 0), no
// charge cap, learn nothing.
type ALOHA struct{}

var _ Protocol = ALOHA{}

// Name implements Protocol.
func (ALOHA) Name() string { return "LoRaWAN" }

// Theta implements Protocol.
func (ALOHA) Theta() float64 { return 1 }

// DecideTx implements Protocol.
func (ALOHA) DecideTx(simtime.Time, int, float64) Decision {
	return Decision{Window: 0}
}

// OnOutcome implements Protocol.
func (ALOHA) OnOutcome(Outcome) {}

// OnDegradationUpdate implements Protocol.
func (ALOHA) OnDegradationUpdate(simtime.Time, float64) {}

// Reset implements Protocol; ALOHA keeps no volatile state.
func (ALOHA) Reset() {}

// ThetaOnly is the paper's H-50C ablation: it caps the battery at theta
// like BLA but transmits immediately like LoRaWAN, isolating the
// calendar-aging benefit of the charge cap from the window-selection
// machinery.
type ThetaOnly struct {
	theta float64
}

var _ Protocol = (*ThetaOnly)(nil)

// NewThetaOnly returns the ablation protocol with the given charge cap.
func NewThetaOnly(theta float64) (*ThetaOnly, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("mac: theta %v outside (0,1]", theta)
	}
	return &ThetaOnly{theta: theta}, nil
}

// Name implements Protocol.
func (p *ThetaOnly) Name() string { return fmt.Sprintf("H-%dC", int(p.theta*100)) }

// Theta implements Protocol.
func (p *ThetaOnly) Theta() float64 { return p.theta }

// DecideTx implements Protocol.
func (p *ThetaOnly) DecideTx(simtime.Time, int, float64) Decision {
	return Decision{Window: 0}
}

// OnOutcome implements Protocol.
func (p *ThetaOnly) OnOutcome(Outcome) {}

// OnDegradationUpdate implements Protocol.
func (p *ThetaOnly) OnDegradationUpdate(simtime.Time, float64) {}

// Reset implements Protocol; the charge cap is configuration, not
// volatile state.
func (p *ThetaOnly) Reset() {}

// BLAConfig parameterizes one node's battery lifespan-aware MAC.
type BLAConfig struct {
	// Theta is the battery charge cap (the paper's H-5/H-50/H-100 vary
	// this).
	Theta float64
	// WeightB is w_b, the network manager's degradation-vs-utility
	// weight.
	WeightB float64
	// Beta is the EWMA recency weight of Eq. (13).
	Beta float64
	// Utility is the node's data-utility function; nil means Eq. (16)
	// (linear).
	Utility utility.Function
	// Forecaster predicts per-window green energy generation.
	Forecaster energy.Forecaster
	// Window is the forecast-window length (1 min in the evaluation).
	Window simtime.Duration
	// MaxWindows bounds the number of forecast windows any sampling
	// period can contain (sizing the retransmission history).
	MaxWindows int
	// SingleTxEnergyJ is the energy of one transmission attempt at the
	// node's radio settings (Eq. 6), the estimator's initial value.
	SingleTxEnergyJ float64
	// MaxAttempts is the transmission attempt cap (8 in LoRa).
	MaxAttempts int
	// DisableRetxHistory turns off the Eq. (14) history (ablation).
	DisableRetxHistory bool
	// DisableDecisionTable turns off the per-day decision table (the
	// escape hatch for the cached night-time DecideTx verdict); every
	// packet then runs the full Algorithm 1 pass. The table is proven
	// bit-identical to the full pass, so this is a debugging/verification
	// knob, not a behaviour switch.
	DisableDecisionTable bool

	// WuTTL is how long a received w_u stays trusted. When no beacon
	// arrived within the TTL (lost ACKs, gateway outage), decisions use
	// WuStaleFallback instead. Zero disables staleness tracking: the
	// node trusts the last w_u forever, the paper's implicit assumption.
	WuTTL simtime.Duration
	// WuStaleFallback is the w_u assumed while the received weight is
	// stale. A high value is conservative: the selector treats the node
	// as if it were near the network's worst-off battery and weights
	// degradation impact fully.
	WuStaleFallback float64

	// Obs is this node's observability timeline; nil (the default)
	// records nothing.
	Obs *obs.NodeTimeline
}

// Validate reports the first invalid field.
func (c BLAConfig) Validate() error {
	switch {
	case c.Theta <= 0 || c.Theta > 1:
		return fmt.Errorf("mac: theta %v outside (0,1]", c.Theta)
	case c.WeightB < 0 || c.WeightB > 1:
		return fmt.Errorf("mac: weight w_b %v outside [0,1]", c.WeightB)
	case c.Beta <= 0 || c.Beta > 1:
		return fmt.Errorf("mac: beta %v outside (0,1]", c.Beta)
	case c.Forecaster == nil:
		return fmt.Errorf("mac: nil forecaster")
	case c.Window <= 0:
		return fmt.Errorf("mac: non-positive forecast window %v", c.Window)
	case c.MaxWindows <= 0:
		return fmt.Errorf("mac: non-positive max windows %d", c.MaxWindows)
	case c.SingleTxEnergyJ <= 0:
		return fmt.Errorf("mac: non-positive tx energy %v", c.SingleTxEnergyJ)
	case c.MaxAttempts <= 0:
		return fmt.Errorf("mac: non-positive max attempts %d", c.MaxAttempts)
	case c.WuTTL < 0:
		return fmt.Errorf("mac: negative w_u TTL %v", c.WuTTL)
	case c.WuStaleFallback < 0 || c.WuStaleFallback > 1:
		return fmt.Errorf("mac: w_u stale fallback %v outside [0,1]", c.WuStaleFallback)
	}
	return nil
}

// BLA is the proposed battery lifespan-aware MAC: Algorithm 1 with the
// EWMA energy estimator, the per-window retransmission history, and the
// theta charge cap.
type BLA struct {
	cfg       BLAConfig
	selector  *core.Selector
	estimator *core.TxEnergyEstimator
	history   *core.RetxHistory

	wu      float64
	wuAt    simtime.Time // when the current w_u arrived
	wuFresh bool         // a beacon arrived since construction/reset

	staleDecisions int64
	tableHits      int64

	// fcEWMA is the forecaster's concrete type when the decision table
	// is eligible (diurnal-EWMA forecaster, table not disabled); nil
	// routes every decision through the full Algorithm 1 pass.
	fcEWMA *energy.DiurnalEWMA
	tbl    decisionTable

	// scratch, reused across decisions
	estTx []float64
}

// decisionTable caches one DecideTx verdict together with an exact
// validity certificate (DESIGN.md §5j): the verdict is a pure function
// of the selector inputs, and every input is either proven unchanged or
// compared bit-for-bit at lookup, so a hit returns the byte-identical
// Decision the full Algorithm 1 pass would compute — the table is a
// memo, never an approximation.
//
// The cacheable shape is the night arc: while every profile slot a
// forecast span overlaps holds zero, ForecastWindows returns all-zero
// forecasts, the cumulative-energy term degenerates, and the verdict
// depends on the stored energy only through the interval [lo, hi)
// (core.Selector.SelectZeroEst). Validity at lookup then requires:
//
//   - profile unchanged (DiurnalEWMA.Rev) and the queried span inside
//     the proven zero arc [from, until) — daytime folds move the rev,
//     night folds and partial-minute zero observations do not;
//   - the retransmission-history attempt vector unchanged
//     (RetxHistory.Rev) and the energy-estimator base bit-equal — any
//     learning step that moves a value forces a rebuild;
//   - the same stale-w_u TTL phase, and, when fresh, the bit-equal
//     received w_u — a downlink (OnDegradationUpdate), a brownout
//     (Reset), or the TTL boundary passing each change one of these;
//   - the same window count and the stored energy inside [lo, hi).
//
// Obs side effects are replayed on hits (StaleWu per stale decision,
// SetDIF per accepted packet) so observability exports stay
// byte-identical to the full pass.
type decisionTable struct {
	valid   bool
	rev     uint64 // forecaster profile revision at build
	histRev uint64 // retx-history attempt revision at build
	base    float64
	wu      float64 // raw received w_u at build (compared only when fresh)
	stale   bool    // stale-w_u verdict at build
	windows int
	from    simtime.Time // first instant of the proven zero arc
	until   simtime.Time // first instant a span may see a non-zero slot
	lo, hi  float64      // stored-energy interval the verdict covers
	dec     Decision
	dif     float64 // DIF of the accepted window (Obs replay on hits)
}

var _ Protocol = (*BLA)(nil)

// NewBLA builds the protocol instance for one node.
func NewBLA(cfg BLAConfig) (*BLA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fn := cfg.Utility
	if fn == nil {
		fn = utility.Linear{}
	}
	sel, err := core.NewSelector(fn, cfg.WeightB)
	if err != nil {
		return nil, err
	}
	hist, err := core.NewRetxHistory(cfg.MaxWindows, cfg.MaxAttempts-1)
	if err != nil {
		return nil, err
	}
	p := &BLA{
		cfg:       cfg,
		selector:  sel,
		estimator: core.NewTxEnergyEstimator(cfg.Beta, cfg.SingleTxEnergyJ),
		history:   hist,
	}
	if !cfg.DisableDecisionTable {
		p.fcEWMA, _ = cfg.Forecaster.(*energy.DiurnalEWMA)
	}
	return p, nil
}

// Name implements Protocol; e.g. theta 0.5 reports as "H-50".
func (p *BLA) Name() string { return fmt.Sprintf("H-%d", int(p.cfg.Theta*100+0.5)) }

// Theta implements Protocol.
func (p *BLA) Theta() float64 { return p.cfg.Theta }

// NormalizedDegradation returns the latest w_u received.
func (p *BLA) NormalizedDegradation() float64 { return p.wu }

// StaleDecisions returns how many transmit decisions fell back to the
// conservative w_u because the received weight had exceeded its TTL.
func (p *BLA) StaleDecisions() int64 { return p.staleDecisions }

// TableHits returns how many transmit decisions were served from the
// cached decision table instead of a full Algorithm 1 pass — a
// verification counter for tests and profiles, not protocol state.
func (p *BLA) TableHits() int64 { return p.tableHits }

// effectiveWu returns the w_u Algorithm 1 should trust at the given
// decision time: the received weight while fresh, the conservative
// fallback once the TTL elapsed (or before any beacon arrived).
func (p *BLA) effectiveWu(at simtime.Time) float64 {
	if p.cfg.WuTTL <= 0 {
		return p.wu
	}
	if !p.wuFresh || at.Sub(p.wuAt) > p.cfg.WuTTL {
		p.staleDecisions++
		p.cfg.Obs.StaleWu()
		return p.cfg.WuStaleFallback
	}
	return p.wu
}

// DecideTx implements Protocol by running Algorithm 1 — through the
// decision table when a cached night-time verdict provably applies
// (see decisionTable), through the full selector pass otherwise.
func (p *BLA) DecideTx(gen simtime.Time, windows int, storedJ float64) Decision {
	if windows <= 0 {
		return Decision{Drop: true}
	}
	stored := max(0, storedJ)
	if p.fcEWMA != nil {
		if dec, ok := p.tableLookup(gen, windows, stored); ok {
			return dec
		}
	}

	// The per-window transmission estimate is base·attempts[t]; the
	// fused SelectEst computes it inline instead of materializing an
	// e_tx slice per packet. E_tx_max of Eq. (15) is the worst-case
	// energy budget of a packet (all attempts). The estimate e_tx[t]
	// carries the window's expected attempt count, so crowded windows
	// score a proportionally higher DIF instead of saturating at 1 —
	// this gradient is what spreads nodes across windows (Fig. 4).
	base := p.estimator.Estimate()
	maxTx := p.cfg.SingleTxEnergyJ * float64(p.cfg.MaxAttempts)
	var attempts []float64
	if !p.cfg.DisableRetxHistory {
		if attempts = p.history.AttemptsVec(windows); attempts == nil {
			// More windows than the history tracks (shrunken sampling
			// period): fall back to clamped per-window queries.
			if cap(p.estTx) < windows {
				p.estTx = make([]float64, windows)
			}
			attempts = p.estTx[:windows]
			for t := range attempts {
				attempts[t] = p.history.ExpectedAttempts(t)
			}
		}
	}
	wuEff := p.effectiveWu(gen)

	if p.fcEWMA != nil {
		// Rebuild path: when the whole forecast span lies inside the
		// profile's zero arc, every forecast window is zero-valued and
		// the reduced SelectZeroEst pass computes the bit-identical
		// verdict (skipping the ForecastWindows fold entirely) plus the
		// stored-energy interval that certifies it for later packets.
		// The arc is re-walked only when the profile revision moved or
		// the span left the proven range; otherwise the previous arc
		// still stands, whatever else invalidated the table.
		span := simtime.Duration(windows) * p.cfg.Window
		from, until := gen, gen
		if t := &p.tbl; t.valid && t.rev == p.fcEWMA.Rev() && gen >= t.from {
			from, until = t.from, t.until
		}
		if gen.Add(span) > until {
			from, until = gen, p.fcEWMA.ZeroArcEnd(gen)
		}
		if gen.Add(span) <= until {
			d, lo, hi, err := p.selector.SelectZeroEst(stored, wuEff, windows, base, attempts, maxTx)
			if err != nil {
				p.tbl.valid = false
				return Decision{Drop: true}
			}
			p.tbl = decisionTable{
				valid:   true,
				rev:     p.fcEWMA.Rev(),
				histRev: p.histRev(),
				base:    base,
				wu:      p.wu,
				stale:   p.wuStale(gen),
				windows: windows,
				from:    from,
				until:   until,
				lo:      lo,
				hi:      hi,
				dif:     d.DIF,
			}
			if !d.OK {
				p.tbl.dec = Decision{Drop: true}
				return p.tbl.dec
			}
			p.tbl.dec = Decision{Window: d.Window, SpreadInWindow: true}
			p.cfg.Obs.SetDIF(d.DIF)
			return p.tbl.dec
		}
	}

	forecast := p.cfg.Forecaster.ForecastWindows(gen, p.cfg.Window, windows)
	d, err := p.selector.SelectEst(stored, wuEff, forecast, base, attempts, maxTx)
	if err != nil || !d.OK {
		return Decision{Drop: true}
	}
	p.cfg.Obs.SetDIF(d.DIF)
	return Decision{Window: d.Window, SpreadInWindow: true}
}

// wuStale reports whether a decision at the given instant uses the
// conservative fallback w_u: the side-effect-free twin of effectiveWu's
// staleness predicate, for table bookkeeping.
func (p *BLA) wuStale(at simtime.Time) bool {
	return p.cfg.WuTTL > 0 && (!p.wuFresh || at.Sub(p.wuAt) > p.cfg.WuTTL)
}

// histRev returns the retransmission-history revision the table guards
// against, folding the disabled-history ablation (whose attempt factor
// is pinned at exactly 1 for every window) into a constant.
func (p *BLA) histRev() uint64 {
	if p.cfg.DisableRetxHistory {
		return 0
	}
	return p.history.Rev()
}

// tableLookup returns the cached verdict when its validity certificate
// holds at (gen, windows, stored) — see decisionTable — replaying the
// full pass's Obs side effects.
func (p *BLA) tableLookup(gen simtime.Time, windows int, stored float64) (Decision, bool) {
	t := &p.tbl
	if !t.valid || windows != t.windows {
		return Decision{}, false
	}
	if gen < t.from || gen.Add(simtime.Duration(windows)*p.cfg.Window) > t.until {
		return Decision{}, false
	}
	if t.rev != p.fcEWMA.Rev() || t.histRev != p.histRev() || t.base != p.estimator.Estimate() {
		return Decision{}, false
	}
	stale := p.wuStale(gen)
	if stale != t.stale || (!stale && p.wu != t.wu) {
		return Decision{}, false
	}
	if !(stored >= t.lo && stored < t.hi) {
		return Decision{}, false
	}
	p.tableHits++
	if stale {
		// The full pass takes effectiveWu's stale branch once per
		// decision; replay its accounting.
		p.staleDecisions++
		p.cfg.Obs.StaleWu()
	}
	if !t.dec.Drop {
		p.cfg.Obs.SetDIF(t.dif)
	}
	return t.dec, true
}

// OnOutcome implements Protocol: the actual energy feeds the EWMA
// (Eq. 13) and the retransmission count feeds the window history
// (Eq. 14).
func (p *BLA) OnOutcome(o Outcome) {
	if o.Attempts <= 0 {
		return
	}
	p.estimator.Observe(o.EnergyJ)
	if !p.cfg.DisableRetxHistory {
		p.history.Observe(o.Window, o.Attempts-1)
	}
}

// OnDegradationUpdate implements Protocol.
func (p *BLA) OnDegradationUpdate(now simtime.Time, wu float64) {
	p.wu = min(1, max(0, wu))
	p.wuAt = now
	p.wuFresh = true
}

// Reset implements Protocol: a brownout wipes the cached w_u and the
// learned estimators (Eq. 13 EWMA, Eq. 14 history). The stale-decision
// counter survives — it is accounting, not protocol state.
func (p *BLA) Reset() {
	p.wu = 0
	p.wuAt = 0
	p.wuFresh = false
	p.estimator.Reset()
	p.history.Reset()
	// The comparison-based certificate would catch the reset on its own
	// (the history revision moves), but a rebooted node should not serve
	// cached verdicts on principle — drop the table outright.
	p.tbl.valid = false
}
