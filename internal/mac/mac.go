// Package mac defines the media-access protocols under evaluation behind
// one interface: the LoRaWAN pure-ALOHA baseline, the paper's battery
// lifespan-aware MAC (BLA, built on internal/core), and the H-50C
// ablation (charge cap only, no window selection).
//
// A Protocol instance belongs to exactly one node and is driven by
// whichever substrate hosts the node (internal/sim or internal/testbed).
package mac

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// Decision is a protocol's verdict for one generated packet.
type Decision struct {
	// Drop means the protocol refuses to transmit the packet (Algorithm
	// 1's FAIL).
	Drop bool
	// Window is the zero-based forecast window of the sampling period in
	// which to transmit.
	Window int
	// SpreadInWindow requests a random transmission offset inside the
	// window to reduce intra-window collisions (Sec. III-B "Network
	// dynamics and channel access"); pure ALOHA transmits immediately.
	SpreadInWindow bool
}

// Outcome reports how a packet's transmission went, so protocols can
// learn.
type Outcome struct {
	// Window the packet was assigned to.
	Window int
	// Attempts made (1 = no retransmissions). Zero for dropped packets.
	Attempts int
	// EnergyJ actually consumed by the radio for this packet, including
	// retransmissions and receive windows.
	EnergyJ float64
	// Delivered is true when an ACK arrived.
	Delivered bool
}

// Protocol is one node's media-access policy.
type Protocol interface {
	// Name identifies the protocol in reports (e.g. "LoRaWAN", "H-50").
	Name() string
	// Theta is the battery charge cap this protocol requests, as a
	// fraction of current maximum capacity (1 = uncapped).
	Theta() float64
	// DecideTx picks the forecast window for a packet generated at gen.
	// windows is the number of forecast windows in this sampling period
	// and storedJ the battery's current stored energy.
	DecideTx(gen simtime.Time, windows int, storedJ float64) Decision
	// OnOutcome feeds back the result of a packet so the protocol's
	// estimators can learn.
	OnOutcome(o Outcome)
	// OnDegradationUpdate delivers the gateway's normalized degradation
	// w_u in [0,1] (piggy-backed on ACKs, at most daily). now is the
	// reception time, which staleness-aware protocols use to age the
	// weight.
	OnDegradationUpdate(now simtime.Time, wu float64)
	// Reset discards the protocol's volatile state (learned estimators,
	// the cached w_u), as a node rebooting after a brownout would.
	Reset()
}

// ALOHA is the LoRaWAN baseline: transmit immediately (window 0), no
// charge cap, learn nothing.
type ALOHA struct{}

var _ Protocol = ALOHA{}

// Name implements Protocol.
func (ALOHA) Name() string { return "LoRaWAN" }

// Theta implements Protocol.
func (ALOHA) Theta() float64 { return 1 }

// DecideTx implements Protocol.
func (ALOHA) DecideTx(simtime.Time, int, float64) Decision {
	return Decision{Window: 0}
}

// OnOutcome implements Protocol.
func (ALOHA) OnOutcome(Outcome) {}

// OnDegradationUpdate implements Protocol.
func (ALOHA) OnDegradationUpdate(simtime.Time, float64) {}

// Reset implements Protocol; ALOHA keeps no volatile state.
func (ALOHA) Reset() {}

// ThetaOnly is the paper's H-50C ablation: it caps the battery at theta
// like BLA but transmits immediately like LoRaWAN, isolating the
// calendar-aging benefit of the charge cap from the window-selection
// machinery.
type ThetaOnly struct {
	theta float64
}

var _ Protocol = (*ThetaOnly)(nil)

// NewThetaOnly returns the ablation protocol with the given charge cap.
func NewThetaOnly(theta float64) (*ThetaOnly, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("mac: theta %v outside (0,1]", theta)
	}
	return &ThetaOnly{theta: theta}, nil
}

// Name implements Protocol.
func (p *ThetaOnly) Name() string { return fmt.Sprintf("H-%dC", int(p.theta*100)) }

// Theta implements Protocol.
func (p *ThetaOnly) Theta() float64 { return p.theta }

// DecideTx implements Protocol.
func (p *ThetaOnly) DecideTx(simtime.Time, int, float64) Decision {
	return Decision{Window: 0}
}

// OnOutcome implements Protocol.
func (p *ThetaOnly) OnOutcome(Outcome) {}

// OnDegradationUpdate implements Protocol.
func (p *ThetaOnly) OnDegradationUpdate(simtime.Time, float64) {}

// Reset implements Protocol; the charge cap is configuration, not
// volatile state.
func (p *ThetaOnly) Reset() {}

// BLAConfig parameterizes one node's battery lifespan-aware MAC.
type BLAConfig struct {
	// Theta is the battery charge cap (the paper's H-5/H-50/H-100 vary
	// this).
	Theta float64
	// WeightB is w_b, the network manager's degradation-vs-utility
	// weight.
	WeightB float64
	// Beta is the EWMA recency weight of Eq. (13).
	Beta float64
	// Utility is the node's data-utility function; nil means Eq. (16)
	// (linear).
	Utility utility.Function
	// Forecaster predicts per-window green energy generation.
	Forecaster energy.Forecaster
	// Window is the forecast-window length (1 min in the evaluation).
	Window simtime.Duration
	// MaxWindows bounds the number of forecast windows any sampling
	// period can contain (sizing the retransmission history).
	MaxWindows int
	// SingleTxEnergyJ is the energy of one transmission attempt at the
	// node's radio settings (Eq. 6), the estimator's initial value.
	SingleTxEnergyJ float64
	// MaxAttempts is the transmission attempt cap (8 in LoRa).
	MaxAttempts int
	// DisableRetxHistory turns off the Eq. (14) history (ablation).
	DisableRetxHistory bool

	// WuTTL is how long a received w_u stays trusted. When no beacon
	// arrived within the TTL (lost ACKs, gateway outage), decisions use
	// WuStaleFallback instead. Zero disables staleness tracking: the
	// node trusts the last w_u forever, the paper's implicit assumption.
	WuTTL simtime.Duration
	// WuStaleFallback is the w_u assumed while the received weight is
	// stale. A high value is conservative: the selector treats the node
	// as if it were near the network's worst-off battery and weights
	// degradation impact fully.
	WuStaleFallback float64

	// Obs is this node's observability timeline; nil (the default)
	// records nothing.
	Obs *obs.NodeTimeline
}

// Validate reports the first invalid field.
func (c BLAConfig) Validate() error {
	switch {
	case c.Theta <= 0 || c.Theta > 1:
		return fmt.Errorf("mac: theta %v outside (0,1]", c.Theta)
	case c.WeightB < 0 || c.WeightB > 1:
		return fmt.Errorf("mac: weight w_b %v outside [0,1]", c.WeightB)
	case c.Beta <= 0 || c.Beta > 1:
		return fmt.Errorf("mac: beta %v outside (0,1]", c.Beta)
	case c.Forecaster == nil:
		return fmt.Errorf("mac: nil forecaster")
	case c.Window <= 0:
		return fmt.Errorf("mac: non-positive forecast window %v", c.Window)
	case c.MaxWindows <= 0:
		return fmt.Errorf("mac: non-positive max windows %d", c.MaxWindows)
	case c.SingleTxEnergyJ <= 0:
		return fmt.Errorf("mac: non-positive tx energy %v", c.SingleTxEnergyJ)
	case c.MaxAttempts <= 0:
		return fmt.Errorf("mac: non-positive max attempts %d", c.MaxAttempts)
	case c.WuTTL < 0:
		return fmt.Errorf("mac: negative w_u TTL %v", c.WuTTL)
	case c.WuStaleFallback < 0 || c.WuStaleFallback > 1:
		return fmt.Errorf("mac: w_u stale fallback %v outside [0,1]", c.WuStaleFallback)
	}
	return nil
}

// BLA is the proposed battery lifespan-aware MAC: Algorithm 1 with the
// EWMA energy estimator, the per-window retransmission history, and the
// theta charge cap.
type BLA struct {
	cfg       BLAConfig
	selector  *core.Selector
	estimator *core.TxEnergyEstimator
	history   *core.RetxHistory

	wu      float64
	wuAt    simtime.Time // when the current w_u arrived
	wuFresh bool         // a beacon arrived since construction/reset

	staleDecisions int64

	// scratch, reused across decisions
	estTx []float64
}

var _ Protocol = (*BLA)(nil)

// NewBLA builds the protocol instance for one node.
func NewBLA(cfg BLAConfig) (*BLA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fn := cfg.Utility
	if fn == nil {
		fn = utility.Linear{}
	}
	sel, err := core.NewSelector(fn, cfg.WeightB)
	if err != nil {
		return nil, err
	}
	hist, err := core.NewRetxHistory(cfg.MaxWindows, cfg.MaxAttempts-1)
	if err != nil {
		return nil, err
	}
	return &BLA{
		cfg:       cfg,
		selector:  sel,
		estimator: core.NewTxEnergyEstimator(cfg.Beta, cfg.SingleTxEnergyJ),
		history:   hist,
	}, nil
}

// Name implements Protocol; e.g. theta 0.5 reports as "H-50".
func (p *BLA) Name() string { return fmt.Sprintf("H-%d", int(p.cfg.Theta*100+0.5)) }

// Theta implements Protocol.
func (p *BLA) Theta() float64 { return p.cfg.Theta }

// NormalizedDegradation returns the latest w_u received.
func (p *BLA) NormalizedDegradation() float64 { return p.wu }

// StaleDecisions returns how many transmit decisions fell back to the
// conservative w_u because the received weight had exceeded its TTL.
func (p *BLA) StaleDecisions() int64 { return p.staleDecisions }

// effectiveWu returns the w_u Algorithm 1 should trust at the given
// decision time: the received weight while fresh, the conservative
// fallback once the TTL elapsed (or before any beacon arrived).
func (p *BLA) effectiveWu(at simtime.Time) float64 {
	if p.cfg.WuTTL <= 0 {
		return p.wu
	}
	if !p.wuFresh || at.Sub(p.wuAt) > p.cfg.WuTTL {
		p.staleDecisions++
		p.cfg.Obs.StaleWu()
		return p.cfg.WuStaleFallback
	}
	return p.wu
}

// DecideTx implements Protocol by running Algorithm 1.
func (p *BLA) DecideTx(gen simtime.Time, windows int, storedJ float64) Decision {
	if windows <= 0 {
		return Decision{Drop: true}
	}
	forecast := p.cfg.Forecaster.ForecastWindows(gen, p.cfg.Window, windows)

	// The per-window transmission estimate is base·attempts[t]; the
	// fused SelectEst computes it inline instead of materializing an
	// e_tx slice per packet. E_tx_max of Eq. (15) is the worst-case
	// energy budget of a packet (all attempts). The estimate e_tx[t]
	// carries the window's expected attempt count, so crowded windows
	// score a proportionally higher DIF instead of saturating at 1 —
	// this gradient is what spreads nodes across windows (Fig. 4).
	base := p.estimator.Estimate()
	maxTx := p.cfg.SingleTxEnergyJ * float64(p.cfg.MaxAttempts)
	var attempts []float64
	if !p.cfg.DisableRetxHistory {
		if attempts = p.history.AttemptsVec(windows); attempts == nil {
			// More windows than the history tracks (shrunken sampling
			// period): fall back to clamped per-window queries.
			if cap(p.estTx) < windows {
				p.estTx = make([]float64, windows)
			}
			attempts = p.estTx[:windows]
			for t := range attempts {
				attempts[t] = p.history.ExpectedAttempts(t)
			}
		}
	}
	d, err := p.selector.SelectEst(max(0, storedJ), p.effectiveWu(gen), forecast, base, attempts, maxTx)
	if err != nil || !d.OK {
		return Decision{Drop: true}
	}
	p.cfg.Obs.SetDIF(d.DIF)
	return Decision{Window: d.Window, SpreadInWindow: true}
}

// OnOutcome implements Protocol: the actual energy feeds the EWMA
// (Eq. 13) and the retransmission count feeds the window history
// (Eq. 14).
func (p *BLA) OnOutcome(o Outcome) {
	if o.Attempts <= 0 {
		return
	}
	p.estimator.Observe(o.EnergyJ)
	if !p.cfg.DisableRetxHistory {
		p.history.Observe(o.Window, o.Attempts-1)
	}
}

// OnDegradationUpdate implements Protocol.
func (p *BLA) OnDegradationUpdate(now simtime.Time, wu float64) {
	p.wu = min(1, max(0, wu))
	p.wuAt = now
	p.wuFresh = true
}

// Reset implements Protocol: a brownout wipes the cached w_u and the
// learned estimators (Eq. 13 EWMA, Eq. 14 history). The stale-decision
// counter survives — it is accounting, not protocol state.
func (p *BLA) Reset() {
	p.wu = 0
	p.wuAt = 0
	p.wuFresh = false
	p.estimator.Reset()
	p.history.Reset()
}
