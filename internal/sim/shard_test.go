package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// shardOracleScenario is a multi-gateway, multi-cell scenario with
// enough traffic, retransmissions, and faults to exercise every event
// path: collisions on a narrow channel plan, backhaul faults, and
// brownouts.
func shardOracleScenario(seed uint64) config.Scenario {
	cfg := config.Default().WithSeed(seed)
	cfg.Nodes = 48
	cfg.Gateways = 8
	cfg.MaxDistanceM = 12000
	cfg.Channels = 2
	cfg.Demodulators = 2
	cfg.Duration = 4 * simtime.Day
	cfg.ForecastPrimeDays = 2
	cfg.Faults = faults.Config{
		DownlinkLoss: 0.05,
		UplinkLoss:   0.05,
		UplinkDup:    0.05,
		OutageStart:  30 * simtime.Hour,
		OutageLen:    2 * simtime.Hour,
		OutageEvery:  simtime.Day,
		BrownoutMTBF: 10 * simtime.Day,
	}
	return cfg
}

func runOpt(t *testing.T, cfg config.Scenario, rec *obs.Recorder, opt RunOptions) (*Simulation, *Result) {
	t.Helper()
	s, err := New(cfg, Hooks{Obs: rec})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.RunOpt(opt)
	if err != nil {
		t.Fatalf("RunOpt(%+v): %v", opt, err)
	}
	return s, res
}

func obsBytes(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestShardedOracleMatchesSingleHeap pins sharded runs bit-identical to
// the single-heap engine: the full Result (every per-node stat, every
// float) and the complete obs export must match byte for byte at every
// shard and worker count.
func TestShardedOracleMatchesSingleHeap(t *testing.T) {
	for _, seed := range []uint64{3, 77} {
		cfg := shardOracleScenario(seed)
		man := obs.Manifest{Experiment: "oracle", Seed: seed, Nodes: cfg.Nodes}
		refRec := obs.New(man, simtime.Hour)
		_, ref := runOpt(t, cfg, refRec, RunOptions{Shards: 1})
		refOut := obsBytes(t, refRec)

		for _, opt := range []RunOptions{
			{Shards: 2, Workers: 1},
			{Shards: 3, Workers: 2},
			{Shards: 8, Workers: 2},
			{Shards: 64, Workers: 2}, // clamped to the gateway count
		} {
			rec := obs.New(man, simtime.Hour)
			s, got := runOpt(t, cfg, rec, opt)
			if want := min(opt.Shards, cfg.Gateways); s.ShardsUsed() != want {
				t.Fatalf("seed %d %+v: ShardsUsed = %d, want %d", seed, opt, s.ShardsUsed(), want)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("seed %d %+v: result differs from single-heap run", seed, opt)
			}
			if out := obsBytes(t, rec); !bytes.Equal(refOut, out) {
				t.Errorf("seed %d %+v: obs export differs from single-heap run", seed, opt)
			}
			// Guard against a vacuous pass: the partition must actually
			// split the node set into interior nodes and border nodes.
			var interior, border int
			for _, n := range s.Nodes() {
				if n.borderPow != nil {
					border++
				} else {
					interior++
				}
			}
			if border == 0 || interior == 0 {
				t.Fatalf("seed %d %+v: degenerate partition (%d interior, %d border)",
					seed, opt, interior, border)
			}
		}
	}
}

// TestShardedBorderCaptureAdversarial drives the border path as hard as
// possible: every node hears both gateways (a tiny deployment radius),
// one channel, one demodulator per gateway — so capture, demodulator
// exhaustion, and half-duplex deafness all resolve across the cell
// boundary on every collision.
func TestShardedBorderCaptureAdversarial(t *testing.T) {
	cfg := config.Default().WithSeed(5)
	cfg.Nodes = 24
	cfg.Gateways = 2
	cfg.MaxDistanceM = 900
	cfg.Channels = 1
	cfg.Demodulators = 1
	cfg.FixedSF = lora.SpreadingFactor(9) // long airtime: more overlap
	cfg.StartSpread = 5 * simtime.Minute
	cfg.Duration = 2 * simtime.Day
	cfg.ForecastPrimeDays = 2

	_, ref := runOpt(t, cfg, nil, RunOptions{Shards: 1})
	s, got := runOpt(t, cfg, nil, RunOptions{Shards: 2, Workers: 2})
	if !reflect.DeepEqual(ref, got) {
		t.Error("all-border adversarial run differs from single-heap run")
	}
	var border int
	for _, n := range s.Nodes() {
		if n.borderPow != nil {
			border++
		}
	}
	if border != cfg.Nodes {
		t.Fatalf("expected every node on the border, got %d/%d", border, cfg.Nodes)
	}

	// Mixed variant: a wide deployment with two cells produces both
	// interior and border traffic through the same narrow gateways.
	cfg2 := cfg
	cfg2.MaxDistanceM = 9000
	cfg2.FixedSF = 0
	_, ref2 := runOpt(t, cfg2, nil, RunOptions{Shards: 1})
	_, got2 := runOpt(t, cfg2, nil, RunOptions{Shards: 2, Workers: 2})
	if !reflect.DeepEqual(ref2, got2) {
		t.Error("mixed border/interior run differs from single-heap run")
	}
}

// TestMediumPartMergeOrdering pins the cross-shard decode merge to the
// global medium's ACK-gateway order, including exact power ties, which
// random placement never produces.
func TestMediumPartMergeOrdering(t *testing.T) {
	const sf = lora.SpreadingFactor(7)
	pow := []float64{-90, -80, -100, -80} // tie between gateways 1 and 3

	global := NewMedium(lora.BW125, 8, 4)
	gtx := global.NewTransmission()
	gtx.NodeID, gtx.Channel, gtx.SF = 1, 0, sf
	gtx.PowerDBm = pow
	gtx.Start, gtx.End = 0, 100
	global.BeginUplink(gtx)
	want := append([]int(nil), global.EndUplink(gtx)...)

	// Two part media over cells {0,1} and {2,3}, masked like a border
	// node's clones.
	masked := func(gws ...int) []float64 {
		m := []float64{maskedDBm, maskedDBm, maskedDBm, maskedDBm}
		for _, g := range gws {
			m[g] = pow[g]
		}
		return m
	}
	var got []int
	var anyCorrupted, anyUnlocked bool
	for _, cell := range [][]int{{0, 1}, {2, 3}} {
		med := NewMedium(lora.BW125, 8, 4)
		tx := med.NewTransmission()
		tx.NodeID, tx.Channel, tx.SF = 1, 0, sf
		tx.PowerDBm = masked(cell...)
		tx.Start, tx.End = 0, 100
		med.BeginUplinkPart(tx)
		var c, u bool
		got, c, u = med.EndUplinkPart(tx, got)
		anyCorrupted, anyUnlocked = anyCorrupted || c, anyUnlocked || u
	}
	sortDecodedByPower(got, pow)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("merged decode order = %v, want %v", got, want)
	}
	if anyCorrupted || anyUnlocked {
		t.Errorf("clean air reported corrupted=%v unlocked=%v", anyCorrupted, anyUnlocked)
	}

	// A colliding pair in one part medium must surface the corruption
	// flag the coordinator classifies losses with.
	med := NewMedium(lora.BW125, 8, 2)
	a := med.NewTransmission()
	a.NodeID, a.Channel, a.SF = 1, 0, sf
	a.PowerDBm = []float64{-90, maskedDBm}
	a.Start, a.End = 0, 100
	med.BeginUplinkPart(a)
	b := med.NewTransmission()
	b.NodeID, b.Channel, b.SF = 2, 0, sf
	b.PowerDBm = []float64{-90, maskedDBm} // equal power: neither captures
	b.Start, b.End = 0, 100
	med.BeginUplinkPart(b)
	dec, corrupted, _ := med.EndUplinkPart(a, nil)
	if len(dec) != 0 || !corrupted {
		t.Errorf("collision: decoded=%v corrupted=%v, want none decoded and corrupted", dec, corrupted)
	}
}

// TestShardedEoLStopMatches pins the lifespan run-to-EoL stop across
// engines: the halt must freeze every lane at the same daily tick.
func TestShardedEoLStopMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-month EoL run")
	}
	cfg := shardOracleScenario(13)
	cfg.Nodes = 16
	cfg.Gateways = 4
	cfg.RunToEoL = true
	cfg.MaxDuration = 120 * simtime.Day
	// Accelerated aging (the lifespan experiments' trick): EoL arrives
	// within the bounded horizon with an identical trajectory shape.
	cfg.BatteryModel.K1 *= 2000
	cfg.BatteryModel.K6 *= 2000
	_, ref := runOpt(t, cfg, nil, RunOptions{Shards: 1})
	_, got := runOpt(t, cfg, nil, RunOptions{Shards: 4, Workers: 2})
	if !reflect.DeepEqual(ref, got) {
		t.Error("EoL-stopped sharded run differs from single-heap run")
	}
	if ref.LifespanDays == 0 {
		t.Fatal("scenario never reached EoL; the stop path was not exercised")
	}
}
