package sim

import (
	"math/rand/v2"

	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/lora"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Node is one simulated end device.
type Node struct {
	ID        int
	Pos       radio.Position
	DistanceM float64
	Params    lora.Params
	Period    simtime.Duration
	Windows   int // forecast windows per sampling period
	CapacityJ float64

	Proto mac.Protocol
	Batt  battery.Store
	Stats *metrics.NodeStats

	src        energy.Source
	srcMin     energy.MinuteSource // non-nil when src answers per-minute queries O(1)
	fc         energy.Forecaster
	fcEWMA     *energy.DiurnalEWMA // non-nil when fc supports slot-direct observations
	rng        *rand.Rand
	sleepW     float64   // baseline power draw in watts
	rxPowerDBm []float64 // static received power at each gateway

	rxEnergyJ  float64          // receive-window cost per attempt
	ackAirtime simtime.Duration // downlink ACK duration at this SF
	span       simtime.Duration // worst-case attempt duration, precomputed
	obsTL      *obs.NodeTimeline

	// Sharded execution: owner is the lane whose engine runs this node's
	// events (set per run); borderPow is non-nil only for border nodes —
	// one masked power vector per worker lane that can hear the node,
	// nil entries for lanes that cannot.
	owner     *shard
	borderPow [][]float64

	lastIntegrated simtime.Time
	extraDrawJ     float64 // radio energy awaiting the next balance chunk
	pkt            *packet
	pendingTrans   []battery.Transition // SoC transitions awaiting report
	transPair      [2]battery.Transition
	reportBuf      []battery.Report // reused wire-encoding buffer
}

// draw charges radio energy against the node's energy balance. Per the
// paper's software-defined switch (Eq. 5), consumption within a window
// is netted against that window's green generation; only the shortfall
// discharges the battery, so a transmission fully covered by harvest
// causes no SoC dip at all.
func (n *Node) draw(joules float64) { n.extraDrawJ += joules }

// paramsForAttempt applies the LoRaWAN retransmission back-off: the data
// rate drops (SF rises) every two attempts, up to SF12. Retransmissions
// therefore cost progressively more energy and airtime — the mechanism
// that makes collision-heavy pure ALOHA so expensive for the battery.
func (n *Node) paramsForAttempt(attemptIdx int) lora.Params {
	p := n.Params
	sf := p.SF + lora.SpreadingFactor(attemptIdx/2)
	if sf > lora.MaxSF {
		sf = lora.MaxSF
	}
	p.SF = sf
	return p
}

// packet is the in-flight uplink of a node (at most one at a time).
// Packets are recycled through the simulation's free list; gen counts
// lives so events scheduled for an earlier life are ignored.
type packet struct {
	gen          uint64
	genAt        simtime.Time
	deadline     simtime.Time // next packet's generation
	window       int
	attempts     int
	radioEnergyJ float64 // total radio draw: transmissions + rx windows
	finished     bool
	next         *packet // free-list link
}

// minutesPerDay mirrors the energy package's day-cache granularity.
const minutesPerDay = 24 * 60

// integrate advances the node's energy state from its last integration
// point to now: per-minute harvesting (taught to the forecaster),
// baseline sleep draw, and battery charge/discharge with the protocol's
// theta cap applied by the battery itself.
func (n *Node) integrate(to simtime.Time) {
	from := n.lastIntegrated
	if to <= from {
		return
	}
	n.lastIntegrated = to
	const minuteT = simtime.Time(simtime.Minute)
	cursor := from
	minute := int64(cursor / minuteT)
	if n.srcMin != nil {
		// Walk the source's cached per-minute powers for the day directly.
		// A whole-minute step harvests power·60 s; a partial step inside
		// one minute harvests power·elapsed — bit-identical to the
		// interval query, which reduces to the same single product.
		day := minute / minutesPerDay
		dayBase := day * minutesPerDay
		pow := n.srcMin.DayPowers(day)
		for cursor < to {
			if minute-dayBase >= minutesPerDay {
				day = minute / minutesPerDay
				dayBase = day * minutesPerDay
				pow = n.srcMin.DayPowers(day)
			}
			p := pow[minute-dayBase]
			next := simtime.Time(minute+1) * minuteT
			var net float64
			if next <= to && cursor == simtime.Time(minute)*minuteT {
				harvest := p * 60.0
				if n.fcEWMA != nil {
					n.fcEWMA.ObserveFullSlot(int(minute-dayBase), harvest)
				} else {
					n.fc.Observe(cursor, next, harvest)
				}
				net = harvest - 60.0*n.sleepW - n.extraDrawJ
			} else {
				if next > to {
					next = to
				}
				secs := next.Sub(cursor).Seconds()
				harvest := p * secs
				n.fc.Observe(cursor, next, harvest)
				net = harvest - secs*n.sleepW - n.extraDrawJ
			}
			n.extraDrawJ = 0
			if net >= 0 {
				n.Batt.Charge(next, net)
			} else {
				n.Batt.Discharge(next, -net)
			}
			cursor = next
			minute++
		}
		return
	}
	for cursor < to {
		next := simtime.Time(minute+1) * minuteT
		if next > to {
			next = to
		}
		harvest := n.src.Energy(cursor, next)
		secs := next.Sub(cursor).Seconds()
		n.fc.Observe(cursor, next, harvest)
		net := harvest - secs*n.sleepW - n.extraDrawJ
		n.extraDrawJ = 0
		if net >= 0 {
			n.Batt.Charge(next, net)
		} else {
			n.Batt.Discharge(next, -net)
		}
		cursor = next
		minute++
	}
}

// drainReports appends the battery's new SoC transitions to the pending
// report queue, compressed to the paper's two-per-period budget: only
// the extreme (min and max SoC) transitions of each drain survive.
func (n *Node) drainReports() {
	trans := n.Batt.DrainTransitions()
	if len(trans) == 0 {
		return
	}
	if len(trans) > 2 {
		loIdx, hiIdx := 0, 0
		for i, tr := range trans {
			if tr.SoC < trans[loIdx].SoC {
				loIdx = i
			}
			if tr.SoC > trans[hiIdx].SoC {
				hiIdx = i
			}
		}
		first, second := loIdx, hiIdx
		if first > second {
			first, second = second, first
		}
		if first == second {
			trans = trans[first : first+1]
		} else {
			n.transPair[0], n.transPair[1] = trans[first], trans[second]
			trans = n.transPair[:]
		}
	}
	n.pendingTrans = append(n.pendingTrans, trans...)
	// Bound the backlog: a node that cannot deliver for a long time keeps
	// only the most recent reports (the gateway tolerates gaps).
	const maxBacklog = 16
	if len(n.pendingTrans) > maxBacklog {
		n.pendingTrans = append(n.pendingTrans[:0], n.pendingTrans[len(n.pendingTrans)-maxBacklog:]...)
	}
}

// encodeReports converts pending transitions to wire form relative to
// the packet transmission time. The returned slice is a per-node buffer
// reused on the next call; the network server decodes it immediately.
func (n *Node) encodeReports(packetAt simtime.Time, window simtime.Duration) []battery.Report {
	if len(n.pendingTrans) == 0 {
		return nil
	}
	out := n.reportBuf[:0]
	for _, tr := range n.pendingTrans {
		out = append(out, battery.EncodeTransition(tr, packetAt, window))
	}
	n.reportBuf = out
	return out
}
