package sim

import (
	"math/rand/v2"

	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/lora"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Node is one simulated end device.
type Node struct {
	ID        int
	Pos       radio.Position
	DistanceM float64
	Params    lora.Params
	Period    simtime.Duration
	Windows   int // forecast windows per sampling period
	CapacityJ float64

	Proto mac.Protocol
	Batt  battery.Store
	Stats *metrics.NodeStats

	src        energy.Source
	srcMin     energy.MinuteSource // non-nil when src answers per-minute queries O(1)
	powCache   []float64           // srcMin.DayPowers(powDay); the integrators wake once per event, so the interface call is cached per day
	powDay     int64               // day powCache holds; only valid while powCache != nil
	fc         energy.Forecaster
	fcEWMA     *energy.DiurnalEWMA // non-nil when fc supports slot-direct observations
	rng        *rand.Rand
	sleepW     float64   // baseline power draw in watts
	rxPowerDBm []float64 // static received power at each gateway

	rxEnergyJ  float64          // receive-window cost per attempt
	ackAirtime simtime.Duration // downlink ACK duration at this SF
	span       simtime.Duration // worst-case attempt duration, precomputed
	obsTL      *obs.NodeTimeline

	// Sharded execution: owner is the lane whose engine runs this node's
	// events (set per run); borderPow is non-nil only for border nodes —
	// one masked power vector per worker lane that can hear the node,
	// nil entries for lanes that cannot.
	owner     *shard
	borderPow [][]float64

	// core/idx locate the node's integration-hot state in the
	// struct-of-arrays node core (core.go).
	core *soa
	idx  int

	pkt          *packet
	pendingTrans []battery.Transition // SoC transitions awaiting report
	transPair    [2]battery.Transition
	transBuf     []battery.Transition // reused drain buffer
	reportBuf    []battery.Report     // reused wire-encoding buffer
}

// draw charges radio energy against the node's energy balance. Per the
// paper's software-defined switch (Eq. 5), consumption within a window
// is netted against that window's green generation; only the shortfall
// discharges the battery, so a transmission fully covered by harvest
// causes no SoC dip at all.
func (n *Node) draw(joules float64) {
	c, i := n.ensureCore()
	c.extraDrawJ[i] += joules
}

// paramsForAttempt applies the LoRaWAN retransmission back-off: the data
// rate drops (SF rises) every two attempts, up to SF12. Retransmissions
// therefore cost progressively more energy and airtime — the mechanism
// that makes collision-heavy pure ALOHA so expensive for the battery.
func (n *Node) paramsForAttempt(attemptIdx int) lora.Params {
	p := n.Params
	sf := p.SF + lora.SpreadingFactor(attemptIdx/2)
	if sf > lora.MaxSF {
		sf = lora.MaxSF
	}
	p.SF = sf
	return p
}

// packet is the in-flight uplink of a node (at most one at a time).
// Packets are recycled through the simulation's free list; gen counts
// lives so events scheduled for an earlier life are ignored.
type packet struct {
	gen          uint64
	genAt        simtime.Time
	deadline     simtime.Time // next packet's generation
	window       int
	attempts     int
	radioEnergyJ float64 // total radio draw: transmissions + rx windows
	finished     bool
	next         *packet // free-list link
}

// minutesPerDay mirrors the energy package's day-cache granularity.
const minutesPerDay = 24 * 60

// integrate lives in core.go alongside the struct-of-arrays node core.

// drainReports appends the battery's new SoC transitions to the pending
// report queue, compressed to the paper's two-per-period budget: only
// the extreme (min and max SoC) transitions of each drain survive.
func (n *Node) drainReports() {
	n.transBuf = n.Batt.AppendTransitions(n.transBuf[:0])
	trans := n.transBuf
	if len(trans) == 0 {
		return
	}
	if len(trans) > 2 {
		loIdx, hiIdx := 0, 0
		for i, tr := range trans {
			if tr.SoC < trans[loIdx].SoC {
				loIdx = i
			}
			if tr.SoC > trans[hiIdx].SoC {
				hiIdx = i
			}
		}
		first, second := loIdx, hiIdx
		if first > second {
			first, second = second, first
		}
		if first == second {
			trans = trans[first : first+1]
		} else {
			n.transPair[0], n.transPair[1] = trans[first], trans[second]
			trans = n.transPair[:]
		}
	}
	// Bound the backlog: a node that cannot deliver for a long time keeps
	// only the most recent reports (the gateway tolerates gaps).
	const maxBacklog = 16
	if n.pendingTrans == nil {
		// The backlog never exceeds maxBacklog entries, so one full-size
		// allocation replaces the append growth chain.
		n.pendingTrans = make([]battery.Transition, 0, maxBacklog+2)
	}
	n.pendingTrans = append(n.pendingTrans, trans...)
	if len(n.pendingTrans) > maxBacklog {
		n.pendingTrans = append(n.pendingTrans[:0], n.pendingTrans[len(n.pendingTrans)-maxBacklog:]...)
	}
}

// encodeReports converts pending transitions to wire form relative to
// the packet transmission time. The returned slice is a per-node buffer
// reused on the next call; the network server decodes it immediately.
func (n *Node) encodeReports(packetAt simtime.Time, window simtime.Duration) []battery.Report {
	if len(n.pendingTrans) == 0 {
		return nil
	}
	if cap(n.reportBuf) < len(n.pendingTrans) {
		// The backlog is bounded (see drainReports), so one full-size
		// allocation serves the node for the rest of the run.
		n.reportBuf = make([]battery.Report, 0, cap(n.pendingTrans))
	}
	out := n.reportBuf[:0]
	for _, tr := range n.pendingTrans {
		out = append(out, battery.EncodeTransition(tr, packetAt, window))
	}
	n.reportBuf = out
	return out
}
