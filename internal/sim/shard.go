package sim

import (
	"repro/internal/energy"
	"repro/internal/lora"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/simtime"
)

// The sharded simulator partitions the world into gateway cells and
// runs one event-engine lane per cell. Each lane owns an engine, a
// medium, and the event/packet free lists for the nodes homed there.
// A node is homed in the cell of its strongest gateway; a node whose
// signal is above sensitivity at gateways of two or more cells is a
// border node and is owned by a dedicated coordinator lane instead.
//
// Exactness rests on the medium's weak-signal short-circuit: a
// transmission below sensitivity at a gateway neither locks a
// demodulator, nor captures, nor is captured there, so registering an
// interior node's uplink only in its home cell's medium — where every
// gateway that could possibly hear it lives — is bit-equivalent to
// registering it in a global medium. Sensitivity tightens as SF rises,
// so a node inaudible at its final-attempt SF (the most sensitive one)
// is inaudible at every attempt's SF: the border classification is
// exact for the whole run, not a heuristic.
//
// The coordinator lane owns the global ticks (daily, monthly, obs
// sampling) and all border nodes. Worker lanes advance in parallel up
// to the conservative lookahead bound — the coordinator's next event
// time — then the coordinator drains that instant, including cascades,
// before the next phase. Per-lane (at, seq) order restricted to any
// one node reproduces the single-heap order, so shard count changes
// no byte of output.

// maskedDBm replaces a border node's received power at gateways outside
// a clone's cell: far below every SF's sensitivity, so the medium's
// weak-signal path ignores the pairing entirely.
const maskedDBm = -1e9

// RunOptions selects the execution strategy for one run. The options
// affect scheduling only — results and observability exports are
// byte-identical at any setting.
type RunOptions struct {
	// Shards is the number of per-cell event-engine lanes; 0 picks
	// min(gateways, resolved workers) and 1 forces the legacy
	// single-heap engine. The effective count never exceeds the
	// gateway count, and runs with per-packet hooks (OnDecision,
	// OnPacketDone) fall back to one shard because hook code runs on
	// worker goroutines otherwise.
	Shards int
	// Workers caps the goroutines driving shard phases; 0 means
	// GOMAXPROCS.
	Workers int
}

// shard is one event-engine lane: a worker lane owns a cell's engine,
// medium, and pools; the coordinator lane owns an engine and pools but
// no medium (border transmissions register clones in the worker
// media).
type shard struct {
	s       *Simulation
	eng     *Engine
	med     *Medium
	db      *energy.DayBase // per-lane batch cache of the trace's day base powers
	freeEv  *simEvent
	freePkt *packet
	freeBtx *borderTx
}

// borderTx tracks one border node's in-flight uplink: one masked clone
// per cell that can hear it, indexed by worker lane. Pooled on the
// coordinator (the only lane that transmits border uplinks).
type borderTx struct {
	clones []*Transmission
	next   *borderTx
}

func (sh *shard) newBorderTx(lanes int) *borderTx {
	b := sh.freeBtx
	if b == nil {
		return &borderTx{clones: make([]*Transmission, lanes)}
	}
	sh.freeBtx = b.next
	b.next = nil
	return b
}

func (sh *shard) releaseBorderTx(b *borderTx) {
	clear(b.clones)
	b.next = sh.freeBtx
	sh.freeBtx = b
}

// resolveShards maps the requested shard count to the effective one.
func (s *Simulation) resolveShards(opt RunOptions) int {
	eff := opt.Shards
	if eff <= 0 {
		eff = runner.Workers(opt.Workers)
	}
	if eff > s.cfg.Gateways {
		eff = s.cfg.Gateways
	}
	if s.hooks.OnDecision != nil || s.hooks.OnPacketDone != nil {
		eff = 1
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}

// setupLanes builds the lane set for one run. With one shard the
// single lane is both worker and coordinator and reuses the medium
// built in New — the run is then literally the legacy single-heap
// execution. With more, each cell gets its own medium (sharing the
// observer's counters, which are atomic) and the coordinator gets a
// bare lane for global ticks and border nodes.
func (s *Simulation) setupLanes(shardCount int) {
	if shardCount <= 1 {
		ln := &shard{s: s, eng: NewEngine(), med: s.med, db: s.trace.NewDayBase()}
		s.shards = []*shard{ln}
		s.coord = ln
		s.lanes = []*shard{ln}
		s.gwShard = nil
		for _, n := range s.nodes {
			n.owner = ln
			n.borderPow = nil
			n.attachDayBase()
		}
		s.shardsUsed = 1
		return
	}
	cfg := s.cfg
	s.shards = make([]*shard, shardCount)
	for i := range s.shards {
		med := NewMedium(lora.BW125, cfg.Demodulators, cfg.Gateways)
		med.SetObserver(s.obs)
		s.shards[i] = &shard{s: s, eng: NewEngine(), med: med, db: s.trace.NewDayBase()}
	}
	s.coord = &shard{s: s, eng: NewEngine(), db: s.trace.NewDayBase()}
	s.lanes = append(append(make([]*shard, 0, shardCount+1), s.shards...), s.coord)
	// Cells are contiguous blocks along the gateway ring, so adjacent
	// gateways (the ones whose coverage overlaps most) share a shard.
	s.gwShard = make([]int, cfg.Gateways)
	for g := range s.gwShard {
		s.gwShard[g] = g * shardCount / cfg.Gateways
	}
	s.shardsUsed = shardCount
	for _, n := range s.nodes {
		s.assignNode(n)
		n.attachDayBase()
	}
}

// attachDayBase points the node's solar source at its owner lane's
// shared day-base cache, so per-day harvest-cache fills batch the
// year-adjusted base powers across all nodes of the lane sharing the
// weather trace. The fill is bit-identical with or without the cache
// (energy.DayBase); the instances are per-lane only because worker
// lanes advance on separate goroutines. A non-solar source (tests)
// simply lacks the method. The trace can be nil for bare Simulations
// assembled by tests; those nodes keep per-node fills.
func (n *Node) attachDayBase() {
	if n.owner == nil || n.owner.db == nil {
		return
	}
	if ds, ok := n.src.(interface{ SetDayBase(*energy.DayBase) }); ok {
		ds.SetDayBase(n.owner.db)
	}
}

// assignNode homes a node in the cell of its strongest gateway, or on
// the coordinator when it is audible in two or more cells. Audibility
// is judged at the node's final-attempt SF — the most sensitive one —
// which makes the interior classification exact for every attempt.
func (s *Simulation) assignNode(n *Node) {
	maxSF := n.paramsForAttempt(s.cfg.MaxAttempts - 1).SF
	sens := lora.Sensitivity(maxSF, lora.BW125)
	first, multi := -1, false
	for g, rx := range n.rxPowerDBm {
		if rx < sens {
			continue
		}
		t := s.gwShard[g]
		if first == -1 {
			first = t
		} else if t != first {
			multi = true
			break
		}
	}
	if !multi {
		// Audible in at most one cell (possibly none: then any lane is
		// exact — nothing ever hears the node).
		n.owner = s.shards[s.gwShard[radio.StrongestGateway(n.rxPowerDBm)]]
		n.borderPow = nil
		return
	}
	n.owner = s.coord
	pow := make([][]float64, len(s.shards))
	for g, rx := range n.rxPowerDBm {
		if rx < sens || pow[s.gwShard[g]] != nil {
			continue
		}
		t := s.gwShard[g]
		m := make([]float64, len(n.rxPowerDBm))
		for gg, rr := range n.rxPowerDBm {
			if s.gwShard[gg] == t {
				m[gg] = rr
			} else {
				m[gg] = maskedDBm
			}
		}
		pow[t] = m
	}
	n.borderPow = pow
}

// laneForGW returns the worker lane owning a gateway's radio state.
func (s *Simulation) laneForGW(gw int) *shard {
	if s.gwShard == nil {
		return s.shards[0]
	}
	return s.shards[s.gwShard[gw]]
}

// halt stops every lane; the run's clock freezes at the stopping
// event's instant, matching the legacy engine's Stop semantics.
func (s *Simulation) halt(at simtime.Time) {
	s.stopped = true
	s.stopAt = at
	for _, ln := range s.lanes {
		ln.eng.Stop()
	}
}

// runSharded drives the lanes with conservative lookahead: worker
// lanes run in parallel strictly up to the coordinator's next event
// time, then the coordinator drains that instant (border-node chains,
// global ticks, and their same-instant cascades) alone. Any event the
// coordinator schedules into a worker lane is strictly in the future,
// so the next phase picks it up; any event a worker schedules lives in
// its own lane. The barrier makes all cross-lane pool and state
// touches happen-before ordered.
func (s *Simulation) runSharded(horizon simtime.Time, workers int) {
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	pool := runner.NewPool(workers)
	defer pool.Close()
	runnable := make([]*shard, 0, len(s.shards))
	for !s.stopped {
		limit := horizon + 1
		tC, ok := s.coord.eng.NextAt()
		if ok && tC <= horizon {
			limit = tC
		}
		runnable = runnable[:0]
		for _, sh := range s.shards {
			if t, ok2 := sh.eng.NextAt(); ok2 && t < limit {
				runnable = append(runnable, sh)
			}
		}
		if len(runnable) > 0 {
			rs := runnable
			pool.Run(len(rs), func(i int) { rs[i].eng.RunUntil(limit) })
		}
		if !ok || tC > horizon {
			return
		}
		s.coord.eng.RunAt(tC)
	}
}

// beginBorderUplink registers one masked clone of a border node's
// uplink in every cell that can hear it and counts the uplink once.
func (sh *shard) beginBorderUplink(n *Node, ch int, sf lora.SpreadingFactor, start, end simtime.Time) *borderTx {
	s := sh.s
	btx := sh.newBorderTx(len(s.shards))
	for t, pow := range n.borderPow {
		if pow == nil {
			continue
		}
		med := s.shards[t].med
		tx := med.NewTransmission()
		tx.NodeID = n.ID
		tx.Channel = ch
		tx.SF = sf
		tx.PowerDBm = pow
		tx.Start = start
		tx.End = end
		med.BeginUplinkPart(tx)
		btx.clones[t] = tx
	}
	s.shards[0].med.CountUplink()
	return btx
}

// endBorderUplink resolves a border node's uplink: each clone reports
// its cell's decoding gateways and loss flags, the merged set is
// ordered exactly as the global medium's insertion sort would order it
// (power descending, ties toward the lower gateway index), and the
// outcome is classified once.
func (sh *shard) endBorderUplink(n *Node, btx *borderTx) []int {
	s := sh.s
	buf := s.borderDecoded[:0]
	var anyCorrupted, anyUnlocked bool
	for t, tx := range btx.clones {
		if tx == nil {
			continue
		}
		var c, u bool
		buf, c, u = s.shards[t].med.EndUplinkPart(tx, buf)
		anyCorrupted = anyCorrupted || c
		anyUnlocked = anyUnlocked || u
	}
	sortDecodedByPower(buf, n.rxPowerDBm)
	s.borderDecoded = buf
	s.shards[0].med.CountUplinkOutcome(len(buf), anyCorrupted, anyUnlocked)
	sh.releaseBorderTx(btx)
	return buf
}

// sortDecodedByPower orders merged decode results by power descending
// with ties toward the lower gateway index — the unique total order the
// global medium's stable insertion sort (over an ascending-index
// initial order) produces, so border uplinks pick the same ACK gateway
// as the single-medium engine.
func sortDecodedByPower(buf []int, pow []float64) {
	for i := 1; i < len(buf); i++ {
		g := buf[i]
		j := i - 1
		for j >= 0 && (pow[buf[j]] < pow[g] || (pow[buf[j]] == pow[g] && buf[j] > g)) {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = g
	}
}
