package sim

import (
	"repro/internal/battery"
	"repro/internal/simtime"
)

// soa is the struct-of-arrays node core (DESIGN.md §5g): the
// integration-hot per-node state lives in contiguous slices indexed by
// dense node index instead of scattered across per-node heap objects,
// so the energy integrator, the final results sweep, and the obs
// sampler walk cache lines. sim.Node stays the API-facing view — mac,
// faults, and testbed see unchanged types — and holds its index into
// the arrays.
type soa struct {
	// lastIntegrated is the per-node lazy energy-integration cursor.
	lastIntegrated []simtime.Time
	// extraDrawJ is radio energy awaiting the next balance chunk (the
	// Eq. 5 software-defined switch input).
	extraDrawJ []float64
	// chargeSkipUntil is the arm time of the at-capacity charge-span
	// skip: while the integration cursor stays at or below it, every
	// per-minute Charge would be a strict no-op (zero headroom, no
	// capacity clamp — see battery.ChargeNoopUntil) and is elided.
	chargeSkipUntil []simtime.Time
	// fastUntil/fastLimit are the below-capacity full-accept span
	// (battery.FullAcceptLimit): until fastUntil, while stored energy
	// stays at or below fastLimit, a charging minute is proven to accept
	// in full and goes through battery.ChargeProven — no degradation
	// query, no capacity clamp. fastRev guards BOTH spans: each proof
	// holds only while the battery's SoC history stays exactly as the
	// kernel left it, so any out-of-band push (revision mismatch) drops
	// the minute back to the real path, which re-proves before re-arming.
	fastUntil []simtime.Time
	fastLimit []float64
	fastRev   []uint64
	// sleepW60 is 60 s of baseline sleep draw in joules (60.0·sleepW),
	// the constant subtrahend of every whole-minute balance chunk.
	sleepW60 []float64
	// batt is the node's store when it is a plain battery; nil (hybrid
	// or test stub) routes the node through the generic integrate path.
	batt []*battery.Battery
}

// attachCore builds the array core over the node set and wires each
// node's view into it.
func attachCore(nodes []*Node) *soa {
	c := &soa{
		lastIntegrated:  make([]simtime.Time, len(nodes)),
		extraDrawJ:      make([]float64, len(nodes)),
		chargeSkipUntil: make([]simtime.Time, len(nodes)),
		fastUntil:       make([]simtime.Time, len(nodes)),
		fastLimit:       make([]float64, len(nodes)),
		fastRev:         make([]uint64, len(nodes)),
		sleepW60:        make([]float64, len(nodes)),
		batt:            make([]*battery.Battery, len(nodes)),
	}
	for i, n := range nodes {
		n.core, n.idx = c, i
		c.sleepW60[i] = 60.0 * n.sleepW
		if b, ok := n.Batt.(*battery.Battery); ok {
			c.batt[i] = b
		}
	}
	return c
}

// ensureCore returns the node's array core, lazily attaching a
// single-node core for bare nodes built outside Simulation.New (tests).
func (n *Node) ensureCore() (*soa, int) {
	if n.core == nil {
		attachCore([]*Node{n})
	}
	return n.core, n.idx
}

// dayPowers is the fast kernel's per-node cache of DayPowers: the
// integrator wakes once per event, so without the cache the dynamic
// dispatch plus the source's own day check run hundreds of times per
// simulated day to return the same slice. Sound only for fast-kernel
// nodes: their diurnal-EWMA forecaster never queries the source, so the
// kernel's own DayPowers calls are the only thing that refills the
// source's rolling day cache (a Perfect/Noisy forecaster peeking at
// future days would invalidate the cached contents behind our back —
// those nodes run the generic path, which calls the source every time).
func (n *Node) dayPowers(day int64) []float64 {
	if n.powCache == nil || n.powDay != day {
		n.powCache = n.srcMin.DayPowers(day)
		n.powDay = day
	}
	return n.powCache
}

// debugGenericIntegrate forces every node through the generic
// integration path; the SoA oracle test uses it to pin the fused kernel
// bit-for-bit against the reference implementation.
var debugGenericIntegrate bool

// integrate advances the node's energy state from its last integration
// point to now: per-minute harvesting (taught to the forecaster),
// baseline sleep draw, and battery charge/discharge with the protocol's
// theta cap applied by the battery itself.
func (n *Node) integrate(to simtime.Time) {
	c, i := n.ensureCore()
	from := c.lastIntegrated[i]
	if to <= from {
		return
	}
	c.lastIntegrated[i] = to
	if c.batt[i] != nil && n.srcMin != nil && n.fcEWMA != nil && !debugGenericIntegrate {
		n.integrateFast(c, i, from, to)
		return
	}
	n.integrateGeneric(c, i, from, to)
}

// integrateFast is the fused per-minute integration kernel for the
// dominant node shape (per-minute solar source, diurnal-EWMA
// forecaster, plain battery). It performs exactly the generic path's
// arithmetic in the same order — sleepW60 is the same 60.0·sleepW
// product, hoisted — except that it elides battery work proven to be
// reproducible without the per-minute degradation query:
//
//   - net == 0 skips Charge(next, 0), which returns before mutating;
//   - while the at-capacity span armed via battery.ChargeNoopUntil is
//     live, net > 0 skips the rejected Charge entirely;
//   - while the below-capacity full-accept span armed via
//     battery.FullAcceptLimit is live, a charging minute runs
//     battery.ChargeProven — the same stored-energy add and SoC push a
//     full-accepting Charge performs, minus the refresh that only
//     rewrites the pure fade cache.
//
// The span invariant is "no event, no allocation, no degradation
// query": a charging or at-capacity daytime node costs one EWMA fold
// and a few flops per minute — and once a span is live, whole-minute
// runs inside it collapse to slot level: the kernel scans ahead for the
// longest run of whole minutes that provably stay inside the span
// (charging: every minute's balance is positive and the identical
// one-addition-per-minute stored-energy chain never exceeds the proven
// full-accept limit; at capacity: every minute's balance is positive so
// the rejected Charge stays a strict no-op), folds the run's EWMA slots
// in one batched walk, and commits the battery chain in one
// battery.ChargeRun (the at-capacity run has no battery ops at all).
// The scan is independent of the profile — a minute's balance reads
// only the harvest trace and the constant sleep draw — so extent is
// decided before any fold. Any Discharge disarms both spans; a full
// accept on the real path re-arms the full-accept span and a partial
// accept re-arms the at-capacity span, each through the end of the next
// day. The revision guard (fastRev) catches any battery push the kernel
// did not make itself — a direct Discharge by fault injection, say —
// and falls back to the real path, which re-proves before re-arming;
// within one integrateFast call the kernel owns the battery, so the
// guard is hoisted into revOK and maintained at the kernel's own ops
// instead of re-queried every minute.
func (n *Node) integrateFast(c *soa, i int, from, to simtime.Time) {
	b := c.batt[i]
	ew := n.fcEWMA
	const minuteT = simtime.Time(simtime.Minute)
	cursor := from
	minute := int64(cursor / minuteT)
	day := minute / minutesPerDay
	dayStart := day * minutesPerDay
	pow := n.dayPowers(day)
	sleep60 := c.sleepW60[i]
	extra := c.extraDrawJ[i]
	c.extraDrawJ[i] = 0
	skipUntil := c.chargeSkipUntil[i]
	fastUntil := c.fastUntil[i]
	fastLimit := c.fastLimit[i]
	armRev := c.fastRev[i]
	// The revision guard read chases battery → tracker → counter, a cold
	// line on the night path where both spans are disarmed (any Discharge
	// zeroes them) — so only pay for it when an armed span could use it.
	revOK := false
	if skipUntil > from || fastUntil > from {
		revOK = b.CounterRev() == armRev
	}
	for cursor < to {
		if minute-dayStart >= minutesPerDay {
			day = minute / minutesPerDay
			dayStart = day * minutesPerDay
			pow = n.dayPowers(day)
		}
		p := pow[minute-dayStart]
		next := simtime.Time(minute+1) * minuteT
		var net float64
		whole := false
		if next <= to && cursor == simtime.Time(minute)*minuteT {
			whole = true
			harvest := p * 60.0
			ew.ObserveFullSlot(int(minute-dayStart), harvest)
			net = harvest - sleep60 - extra
		} else {
			if next > to {
				next = to
			}
			secs := next.Sub(cursor).Seconds()
			harvest := p * secs
			n.fc.Observe(cursor, next, harvest)
			net = harvest - secs*n.sleepW - extra
		}
		extra = 0
		if net > 0 {
			charging := false
			switch {
			case next <= skipUntil && revOK:
				// At-capacity span: the Charge would reject without mutating.
				// Collapse the following run of whole positive-balance
				// minutes inside the span to one batched EWMA fold — the
				// skipped minutes have no battery ops, so the only
				// per-minute work left is the fold itself.
				if whole {
					endM := spanEndMinute(to, dayStart, skipUntil)
					j := minute + 1
					for j < endM && pow[j-dayStart]*60.0-sleep60 > 0 {
						j++
					}
					if j > minute+1 {
						ew.FoldFullSlots(int(minute+1-dayStart), pow[minute+1-dayStart:j-dayStart])
						cursor = simtime.Time(j) * minuteT
						minute = j
						continue
					}
				}
			case next <= fastUntil && b.Stored()+net <= fastLimit && revOK:
				armRev = b.ChargeProven(next, net)
				revOK = true
				charging = whole
			default:
				if acc := b.Charge(next, net); acc < net {
					// At capacity (or just reached it on a partial accept).
					// Arm the span skip through the end of the next day;
					// ChargeNoopUntil proves every Charge at an instant
					// within it is a strict no-op against the live tracker
					// state, including the sample a partial accept just
					// pushed. At theta = 1 the proof fails (capacity fade
					// moves the clamp) and the per-minute path stays.
					end := simtime.Time(dayStart+2*minutesPerDay) * minuteT
					if b.ChargeNoopUntil(next, end) {
						skipUntil, armRev = end, b.CounterRev()
						revOK = true
					} else {
						skipUntil = 0
					}
					fastUntil = 0
				} else {
					// Full accept on the real path: try to prove the rest
					// of the charging run through the end of the next day.
					skipUntil = 0
					end := simtime.Time(dayStart+2*minutesPerDay) * minuteT
					if lim, ok := b.FullAcceptLimit(end); ok {
						fastUntil, fastLimit, armRev = end, lim, b.CounterRev()
						revOK = true
						charging = whole
					} else {
						fastUntil = 0
					}
				}
			}
			if charging {
				// Slot-level charging run: this whole minute charged inside
				// a live full-accept span. Scan ahead while each following
				// whole minute keeps a positive balance and the running
				// stored-energy chain — the exact one-addition-per-minute
				// sequence the per-minute path would execute — stays at or
				// below the proven limit, then commit the run: one
				// ChargeRun for the battery chain (interior SoC pushes
				// collapse, bit-identical) and one batched fold for the
				// run's EWMA slots. The violating minute re-enters the
				// per-minute loop untouched.
				endM := spanEndMinute(to, dayStart, fastUntil)
				if m2 := minute + 1; m2 < endM {
					stored := b.Stored()
					j := m2
					for j < endM {
						net2 := pow[j-dayStart]*60.0 - sleep60
						if net2 <= 0 || stored+net2 > fastLimit {
							break
						}
						stored += net2
						j++
					}
					if j > m2 {
						if rev, ok := b.ChargeRun(stored, int(j-m2)); ok {
							armRev, revOK = rev, true
							ew.FoldFullSlots(int(m2-dayStart), pow[m2-dayStart:j-dayStart])
							cursor = simtime.Time(j) * minuteT
							minute = j
							continue
						}
					}
				}
			}
		} else if net < 0 {
			b.Discharge(next, -net)
			skipUntil = 0
			fastUntil = 0
			if whole && p == 0 && sleep60 > 0 {
				// Idle night span: collapse the following run of whole
				// zero-harvest minutes whose EWMA fold is a proven no-op
				// (seen slot holding +0 — SlotZeroNoop). Each such minute's
				// balance is exactly +0 − sleepW60 − 0 = −sleepW60, so the
				// whole run is one uniform-step DischargeRun: the identical
				// per-minute stored-energy subtraction chain with the
				// interior SoC pushes collapsed (they are mid-run samples of
				// a falling monotone run — never turning points, never
				// transitions). The span invariant extends to "no event, no
				// allocation, no degradation query, no per-minute fold or
				// push" for sleeping nodes.
				endM := int64(to / minuteT)
				if dayEnd := dayStart + minutesPerDay; endM > dayEnd {
					endM = dayEnd
				}
				m2 := minute + 1
				for m2 < endM && pow[m2-dayStart] == 0 && ew.SlotZeroNoop(int(m2-dayStart)) {
					m2++
				}
				if m2 > minute+1 {
					b.DischargeRun(next+minuteT, sleep60, int(m2-minute-1))
					cursor = simtime.Time(m2) * minuteT
					minute = m2
					continue
				}
			}
		}
		cursor = next
		minute++
	}
	c.chargeSkipUntil[i] = skipUntil
	c.fastUntil[i] = fastUntil
	c.fastLimit[i] = fastLimit
	c.fastRev[i] = armRev
}

// spanEndMinute bounds a batched whole-minute span scan: the collapsed
// run may not leave the integration window (every collapsed minute must
// be whole, (m+1)·minute <= to), the current day's power slice, or the
// armed span (minute ends at or before until; span ends are
// minute-aligned, so the floor division is exact).
func spanEndMinute(to simtime.Time, dayStart int64, until simtime.Time) int64 {
	const minuteT = simtime.Time(simtime.Minute)
	endM := int64(to / minuteT)
	if dayEnd := dayStart + minutesPerDay; endM > dayEnd {
		endM = dayEnd
	}
	if u := int64(until / minuteT); endM > u {
		endM = u
	}
	return endM
}

// integrateGeneric is the reference integration path: any source and
// forecaster shape, any store (including Hybrid), one battery call per
// minute. Nodes outside the fast kernel's preconditions always run
// here; the oracle test forces it for every node to pin the kernel.
func (n *Node) integrateGeneric(c *soa, i int, from, to simtime.Time) {
	const minuteT = simtime.Time(simtime.Minute)
	extra := c.extraDrawJ[i]
	c.extraDrawJ[i] = 0
	cursor := from
	minute := int64(cursor / minuteT)
	if n.srcMin != nil {
		// Walk the source's cached per-minute powers for the day directly.
		// A whole-minute step harvests power·60 s; a partial step inside
		// one minute harvests power·elapsed — bit-identical to the
		// interval query, which reduces to the same single product.
		day := minute / minutesPerDay
		dayStart := day * minutesPerDay
		pow := n.srcMin.DayPowers(day)
		for cursor < to {
			if minute-dayStart >= minutesPerDay {
				day = minute / minutesPerDay
				dayStart = day * minutesPerDay
				pow = n.srcMin.DayPowers(day)
			}
			p := pow[minute-dayStart]
			next := simtime.Time(minute+1) * minuteT
			var net float64
			if next <= to && cursor == simtime.Time(minute)*minuteT {
				harvest := p * 60.0
				if n.fcEWMA != nil {
					n.fcEWMA.ObserveFullSlot(int(minute-dayStart), harvest)
				} else {
					n.fc.Observe(cursor, next, harvest)
				}
				net = harvest - 60.0*n.sleepW - extra
			} else {
				if next > to {
					next = to
				}
				secs := next.Sub(cursor).Seconds()
				harvest := p * secs
				n.fc.Observe(cursor, next, harvest)
				net = harvest - secs*n.sleepW - extra
			}
			extra = 0
			if net >= 0 {
				n.Batt.Charge(next, net)
			} else {
				n.Batt.Discharge(next, -net)
			}
			cursor = next
			minute++
		}
		return
	}
	for cursor < to {
		next := simtime.Time(minute+1) * minuteT
		if next > to {
			next = to
		}
		harvest := n.src.Energy(cursor, next)
		secs := next.Sub(cursor).Seconds()
		n.fc.Observe(cursor, next, harvest)
		net := harvest - secs*n.sleepW - extra
		extra = 0
		if net >= 0 {
			n.Batt.Charge(next, net)
		} else {
			n.Batt.Discharge(next, -net)
		}
		cursor = next
		minute++
	}
}
