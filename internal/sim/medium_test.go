package sim

import (
	"testing"

	"repro/internal/lora"
	"repro/internal/simtime"
)

func tx(node, ch int, sf lora.SpreadingFactor, power float64, startMs, endMs int64) *Transmission {
	return &Transmission{
		NodeID:   node,
		Channel:  ch,
		SF:       sf,
		PowerDBm: []float64{power},
		Start:    simtime.Time(startMs),
		End:      simtime.Time(endMs),
	}
}

func mustDecode(t *testing.T, m *Medium, a *Transmission) int {
	t.Helper()
	gws := m.EndUplink(a)
	if len(gws) == 0 {
		t.Fatal("expected decode")
	}
	return gws[0]
}

func mustLose(t *testing.T, m *Medium, a *Transmission) {
	t.Helper()
	if gws := m.EndUplink(a); len(gws) != 0 {
		t.Fatal("expected loss")
	}
}

func TestMediumCleanReception(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 250)
	m.BeginUplink(a)
	if got := m.ActiveUplinks(); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
	mustDecode(t, m, a)
	if got := m.ActiveUplinks(); got != 0 {
		t.Errorf("active after end = %d, want 0", got)
	}
}

func TestMediumWeakSignal(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF7, -130, 0, 50) // below SF7 sensitivity (-123)
	m.BeginUplink(a)
	if m.ActiveUplinks() != 0 {
		t.Error("weak signal should not count as viable")
	}
	mustLose(t, m, a)
}

func TestMediumCoSFCollisionBothLost(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 250)
	b := tx(2, 0, lora.SF10, -101, 10, 260) // within 6 dB: both lost
	m.BeginUplink(a)
	m.BeginUplink(b)
	mustLose(t, m, a)
	mustLose(t, m, b)
}

func TestMediumCapture(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	strong := tx(1, 0, lora.SF10, -90, 0, 250)
	faint := tx(2, 0, lora.SF10, -100, 10, 260) // 10 dB below: captured over
	m.BeginUplink(strong)
	m.BeginUplink(faint)
	mustDecode(t, m, strong)
	mustLose(t, m, faint)
}

func TestMediumDifferentSFOrthogonal(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 250)
	b := tx(2, 0, lora.SF9, -100, 10, 200)
	m.BeginUplink(a)
	m.BeginUplink(b)
	mustDecode(t, m, b)
	mustDecode(t, m, a)
}

func TestMediumDifferentChannels(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 250)
	b := tx(2, 1, lora.SF10, -100, 10, 260)
	m.BeginUplink(a)
	m.BeginUplink(b)
	mustDecode(t, m, a)
	mustDecode(t, m, b)
}

func TestMediumDemodulatorBudget(t *testing.T) {
	m := NewMedium(lora.BW125, 2, 1)
	// Three simultaneous clean signals on different SFs, but only 2 demods.
	a := tx(1, 0, lora.SF8, -100, 0, 200)
	b := tx(2, 0, lora.SF9, -100, 0, 200)
	c := tx(3, 0, lora.SF10, -100, 0, 200)
	m.BeginUplink(a)
	m.BeginUplink(b)
	m.BeginUplink(c)
	mustDecode(t, m, a)
	mustDecode(t, m, b)
	mustLose(t, m, c)
}

func TestMediumGatewayDeafWhileTransmitting(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	if !m.ReserveDownlink(0, 100, 400) {
		t.Fatal("reservation should succeed")
	}
	m.BeginDownlink(0, 400)
	a := tx(1, 0, lora.SF10, -100, 200, 500) // arrives mid-downlink
	m.BeginUplink(a)
	mustLose(t, m, a)
}

func TestMediumDownlinkAbortsOngoingReceptions(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 500)
	m.BeginUplink(a)
	m.BeginDownlink(0, 300) // ACK for some earlier packet fires at t=100
	mustLose(t, m, a)
}

func TestMediumReservation(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	if !m.ReserveDownlink(0, 100, 300) {
		t.Fatal("first reservation should succeed")
	}
	if m.ReserveDownlink(0, 200, 400) {
		t.Error("overlapping reservation should fail")
	}
	if !m.ReserveDownlink(0, 300, 500) {
		t.Error("back-to-back reservation should succeed")
	}
}

func TestMediumEndUnknownTransmission(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 1)
	a := tx(1, 0, lora.SF10, -100, 0, 100)
	// EndUplink on a never-begun transmission must not panic or corrupt
	// state (per-gateway flags are absent).
	if gws := m.EndUplink(a); len(gws) == 0 {
		t.Error("flag-free transmission reports decodable")
	}
	if m.ActiveUplinks() != 0 {
		t.Error("medium corrupted by unknown EndUplink")
	}
}

// --- multi-gateway behaviour ---

func tx2(node int, sf lora.SpreadingFactor, p0, p1 float64, startMs, endMs int64) *Transmission {
	return &Transmission{
		NodeID:   node,
		Channel:  0,
		SF:       sf,
		PowerDBm: []float64{p0, p1},
		Start:    simtime.Time(startMs),
		End:      simtime.Time(endMs),
	}
}

func TestMediumSecondGatewayRescues(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 2)
	// a and b collide at gateway 0 (similar power) but node b is right
	// next to gateway 1 where it captures cleanly.
	a := tx2(1, lora.SF10, -100, -125, 0, 250)
	b := tx2(2, lora.SF10, -101, -95, 10, 260)
	m.BeginUplink(a)
	m.BeginUplink(b)
	mustLose(t, m, a) // lost at 0 (collision) and 1 (capture by b)
	if gw := mustDecode(t, m, b); gw != 1 {
		t.Errorf("b decoded at gateway %d, want 1", gw)
	}
}

func TestMediumBestGatewayWins(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 3)
	a := &Transmission{
		NodeID: 1, SF: lora.SF10,
		PowerDBm: []float64{-110, -95, -120},
		Start:    0, End: 250,
	}
	m.BeginUplink(a)
	if gw := mustDecode(t, m, a); gw != 1 {
		t.Errorf("decoded at gateway %d, want strongest (1)", gw)
	}
}

func TestMediumPerGatewayDeafness(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 2)
	m.BeginDownlink(0, 400) // gateway 0 transmitting
	a := tx2(1, lora.SF10, -100, -105, 100, 350)
	m.BeginUplink(a)
	if gw := mustDecode(t, m, a); gw != 1 {
		t.Errorf("decoded at gateway %d, want 1 (gateway 0 is deaf)", gw)
	}
}

func TestMediumPerGatewayReservations(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 2)
	if !m.ReserveDownlink(0, 100, 300) {
		t.Fatal("gateway 0 reservation should succeed")
	}
	if !m.ReserveDownlink(1, 100, 300) {
		t.Error("gateway 1 is independent and should also accept")
	}
	if m.ReserveDownlink(0, 150, 350) {
		t.Error("gateway 0 is booked")
	}
}

func TestMediumWeakAtOneGatewayOnly(t *testing.T) {
	m := NewMedium(lora.BW125, 8, 2)
	// Below sensitivity at gateway 0, fine at gateway 1.
	a := tx2(1, lora.SF7, -130, -100, 0, 50)
	m.BeginUplink(a)
	if m.ActiveUplinks() != 1 {
		t.Error("signal viable at gateway 1 should count")
	}
	if gw := mustDecode(t, m, a); gw != 1 {
		t.Errorf("decoded at %d, want 1", gw)
	}
}
