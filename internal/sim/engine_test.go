package sim

import (
	"container/heap"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run(simtime.Time(100))
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want horizon 100", e.Now())
	}
}

func TestEngineTieBreakByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(10)
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order %v, want schedule order", got)
		}
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	var ranAt simtime.Time
	e.Schedule(50, func() {
		e.Schedule(10, func() { ranAt = e.Now() }) // in the past
	})
	e.Run(100)
	if ranAt != 50 {
		t.Errorf("past event ran at %v, want clamped to 50", ranAt)
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(200, func() { ran = true })
	e.Run(100)
	if ran {
		t.Error("event beyond horizon must not run")
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want 100", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// Resuming past the event runs it.
	e.Run(300)
	if !ran {
		t.Error("event should run on resumed horizon")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 3 {
			e.Stop()
			return
		}
		e.ScheduleAfter(10, tick)
	}
	e.Schedule(0, tick)
	e.Run(simtime.Time(simtime.Hour))
	if count != 3 {
		t.Errorf("ticks = %d, want 3 (stopped)", count)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20 (time of the stopping event)", e.Now())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue should report false")
	}
	ran := false
	e.Schedule(7, func() { ran = true })
	if !e.Step() || !ran || e.Now() != 7 {
		t.Errorf("Step: ran=%v now=%v", ran, e.Now())
	}
}

func TestEngineRecursiveScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.ScheduleAfter(1, recur)
		}
	}
	e.Schedule(0, recur)
	e.Run(simtime.Time(simtime.Hour))
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
}

// recordEvent is a pooled typed event: Fire releases it to the free
// list before recording, the same discipline simEvent uses, so the test
// exercises in-flight recycling.
type recordEvent struct {
	id   int
	out  *[]int
	pool **recordEvent
	next *recordEvent
}

func (ev *recordEvent) Fire() {
	id, out := ev.id, ev.out
	ev.out = nil
	ev.next = *ev.pool
	*ev.pool = ev
	*out = append(*out, id)
}

// TestEngineSameInstantMixedEventOrder: typed pooled events and plain
// closures scheduled for the same instant interleave strictly in
// schedule order — the (at, seq) contract is implementation-agnostic.
func TestEngineSameInstantMixedEventOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	var free *recordEvent
	acquire := func(id int) *recordEvent {
		ev := free
		if ev != nil {
			free = ev.next
		} else {
			ev = &recordEvent{}
		}
		ev.id, ev.out, ev.pool = id, &got, &free
		return ev
	}
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			e.ScheduleEvent(5, acquire(i))
		} else {
			i := i
			e.Schedule(5, func() { got = append(got, i) })
		}
	}
	e.Run(10)
	for i := 0; i < 20; i++ {
		if got[i] != i {
			t.Fatalf("mixed same-instant order %v, want schedule order", got)
		}
	}

	// Second wave reuses recycled pooled events; the contract must hold
	// for recycled objects exactly as for fresh ones.
	if free == nil {
		t.Fatal("expected recycled events on the free list")
	}
	got = got[:0]
	for i := 0; i < 20; i++ {
		e.ScheduleEvent(15, acquire(i))
	}
	e.Run(20)
	for i := 0; i < 20; i++ {
		if got[i] != i {
			t.Fatalf("recycled-event order %v, want schedule order", got)
		}
	}
}

// TestEngineMonotonicTimeProperty: under random scheduling (including
// events that schedule more events), execution times never go backwards
// and every event at or before the horizon runs.
func TestEngineMonotonicTimeProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0xe49))
		e := NewEngine()
		n := int(rawN%40) + 1
		var (
			executed int
			last     simtime.Time
			ok       = true
		)
		var schedule func(depth int)
		schedule = func(depth int) {
			at := simtime.Time(rng.Int64N(1000))
			e.Schedule(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				executed++
				if depth < 2 && rng.IntN(3) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < n; i++ {
			schedule(0)
		}
		e.Run(simtime.Time(2000))
		return ok && executed >= n && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// refHeap is a textbook container/heap binary min-heap over the same
// (at, seq) order the engine uses — the pre-4-ary reference layout.
type refHeap []entry

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(entry)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	e := old[n]
	*h = old[:n]
	return e
}

// TestEnginePopOrderMatchesReferenceHeap cross-checks the engine's
// hand-rolled 4-ary heap against the reference binary heap: because
// (at, seq) is a strict total order, any correct min-heap must pop the
// identical event sequence no matter its internal arrangement. The
// schedule mixes heavy same-instant ties (typed pooled events and
// closures alike resolve by seq) with interleaved pops, which is where
// a sift bug would reorder ties.
func TestEnginePopOrderMatchesReferenceHeap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x4a7e))
		e := NewEngine()
		ref := refHeap{}
		var got, want []uint64
		var seq uint64
		schedule := func() {
			// Few distinct instants => many (at) ties broken by seq. The
			// reference mirrors ScheduleEvent's past-instant clamp so both
			// heaps hold identical entries.
			at := simtime.Time(rng.Int64N(8))
			if at < e.Now() {
				at = e.Now()
			}
			seq++
			id := seq
			e.ScheduleEvent(at, eventFunc(func() { got = append(got, id) }))
			heap.Push(&ref, entry{at: at, seq: seq})
		}
		pop := func() {
			if len(ref) == 0 {
				return
			}
			want = append(want, heap.Pop(&ref).(entry).seq)
			if !e.Step() {
				t.Fatal("engine drained before reference heap")
			}
		}
		for i := 0; i < 300; i++ {
			// Bias toward pushes so the heaps grow, but interleave pops to
			// exercise sift-down on partially drained shapes.
			if rng.IntN(3) == 0 {
				pop()
			} else {
				schedule()
			}
		}
		for len(ref) > 0 {
			pop()
		}
		if e.Pending() != 0 {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEngineRingStagingMatchesReferenceHeap drives the calendar-ring
// staging path against the reference heap: instants drawn from mixed
// scales (same-instant ties, sub-minute latencies, minutes-to-hours
// timers, multi-day overflows past the ring span) with interleaved
// pops, so entries cross every staging boundary — heap-direct, ring,
// ring-overflow — and flush mid-drain. Any correct engine must pop the
// identical (at, seq) sequence.
func TestEngineRingStagingMatchesReferenceHeap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x91f9))
		e := NewEngine()
		ref := refHeap{}
		var got, want []uint64
		var seq uint64
		scales := []int64{
			8, // same-instant ties
			int64(2 * simtime.Minute),
			int64(3 * simtime.Hour),
			int64(4 * simtime.Day), // beyond the ring span
		}
		schedule := func() {
			at := e.Now() + simtime.Time(rng.Int64N(scales[rng.IntN(len(scales))]))
			seq++
			id := seq
			e.ScheduleEvent(at, eventFunc(func() { got = append(got, id) }))
			heap.Push(&ref, entry{at: at, seq: seq})
		}
		pop := func() {
			if len(ref) == 0 {
				return
			}
			want = append(want, heap.Pop(&ref).(entry).seq)
			if !e.Step() {
				t.Fatal("engine drained before reference heap")
			}
		}
		for i := 0; i < 400; i++ {
			if rng.IntN(3) == 0 {
				pop()
			} else {
				schedule()
			}
		}
		for len(ref) > 0 {
			pop()
		}
		if e.Pending() != 0 {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// ringTestMinute converts a minute index to an engine timestamp.
func ringTestMinute(m int64) simtime.Time {
	return simtime.Time(m) * simtime.Time(simtime.Minute)
}

// TestEngineRingFarHorizonBoundary pins the staging cutoff exactly:
// from a fresh engine at time zero, minute engineRingMinutes-1 is the
// last stageable minute and minute engineRingMinutes — exactly the ring
// span — must fall back to the heap, as must everything farther. Both
// routes still fire in strict timestamp order.
func TestEngineRingFarHorizonBoundary(t *testing.T) {
	e := NewEngine()
	var got []int
	// Scheduled out of order on purpose: the heap-fallback events first.
	e.Schedule(ringTestMinute(engineRingMinutes), func() { got = append(got, 2) })
	e.Schedule(ringTestMinute(engineRingMinutes+1), func() { got = append(got, 3) })
	e.Schedule(ringTestMinute(engineRingMinutes-1), func() { got = append(got, 1) })
	// Sub-minute offsets of the boundary minutes route the same way.
	e.Schedule(ringTestMinute(engineRingMinutes)-1, func() { got = append(got, 4) }) // last ns of minute 2047
	if e.ringCount != 2 {
		t.Fatalf("ringCount = %d, want 2 (only in-horizon events staged)", e.ringCount)
	}
	if len(e.pq) != 2 {
		t.Fatalf("heap depth = %d, want 2 (the at/past-horizon events)", len(e.pq))
	}
	e.Run(ringTestMinute(engineRingMinutes + 2))
	want := []int{1, 4, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events left pending", e.Pending())
	}
}

// TestEngineRingWraparoundAcrossHalt drives a periodic event chain
// through several full ring spans — every slot is flushed and restaged
// as the frontier wraps — with a mid-run Stop while future events are
// still staged, the way a network-wide EoL halt freezes the clock. The
// resumed run must deliver every remaining event exactly once, in
// order, including ticks whose minute maps to a ring slot already used
// in an earlier wrap.
func TestEngineRingWraparoundAcrossHalt(t *testing.T) {
	e := NewEngine()
	var fired []int64
	const step = 512 // four ticks per ring span; slots repeat every span
	const lastTick = 5 * engineRingMinutes
	var schedule func(min int64)
	schedule = func(min int64) {
		e.Schedule(ringTestMinute(min), func() {
			fired = append(fired, min)
			if next := min + step; next <= lastTick {
				schedule(next)
			}
		})
	}
	schedule(step)
	// The EoL-style halt tick: Stop fires mid-span, between periodic
	// ticks, with the rest of the chain still staged in the ring.
	haltMin := int64(2*engineRingMinutes + step/2)
	e.Schedule(ringTestMinute(haltMin), func() { e.Stop() })

	horizon := ringTestMinute(lastTick + 1)
	e.Run(horizon)
	if e.Now() != ringTestMinute(haltMin) {
		t.Fatalf("halted at %v, want the halt tick %v", e.Now(), ringTestMinute(haltMin))
	}
	if e.Pending() == 0 {
		t.Fatal("halt left nothing staged; the scenario under-builds the ring")
	}
	firedAtHalt := len(fired)

	e.Run(horizon) // resume: Run clears the stop flag
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after resume", e.Pending())
	}
	var wantTick int64 = step
	for i, m := range fired {
		if m != wantTick {
			t.Fatalf("tick %d fired at minute %d, want %d", i, m, wantTick)
		}
		wantTick += step
	}
	if last := fired[len(fired)-1]; last != lastTick {
		t.Fatalf("last tick at minute %d, want %d", last, lastTick)
	}
	if firedAtHalt >= len(fired) {
		t.Fatal("resume fired no additional ticks")
	}
}
