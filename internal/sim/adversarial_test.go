package sim

// Failure-injection and edge-parameter tests: the simulator must stay
// consistent (no panics, invariants intact) under hostile conditions a
// production user will eventually configure.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/simtime"
)

func checkConsistency(t *testing.T, res *Result) {
	t.Helper()
	for _, n := range res.Nodes {
		s := n.Stats
		if s.Delivered+s.Dropped > s.Generated {
			t.Errorf("node %d: settled more packets than generated: %+v", n.ID, s)
		}
		if s.Delivered > 0 && s.Attempts == 0 {
			t.Errorf("node %d: deliveries without attempts", n.ID)
		}
		if prr := s.PRR(); prr < 0 || prr > 1 {
			t.Errorf("node %d: PRR %v", n.ID, prr)
		}
		if n.FinalSoC < 0 || n.FinalSoC > 1 {
			t.Errorf("node %d: SoC %v", n.ID, n.FinalSoC)
		}
	}
}

func TestColdStartDepletedBatteries(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.InitialSoC = 0 // deployed with empty batteries
	cfg.ForecastPrimeDays = 0
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	// After three days of sun at least some packets must flow.
	var delivered int64
	for _, n := range res.Nodes {
		delivered += n.Stats.Delivered
	}
	if delivered == 0 {
		t.Error("network should bootstrap from solar within days")
	}
}

func TestPermanentOvercast(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Solar.CloudAttenuation = 1 // full clouds remove all power
	cfg.Solar.WeatherPersistence = 1
	cfg.InitialSoC = 0.5
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	// With theta=0.5 batteries and no recharge, nodes must start failing
	// packets rather than panicking; Algorithm 1 FAILs count as drops.
	var dropped, generated int64
	for _, n := range res.Nodes {
		dropped += n.Stats.Dropped
		generated += n.Stats.Generated
	}
	if generated == 0 {
		t.Fatal("no packets generated")
	}
	if dropped == 0 {
		t.Error("permanent overcast should eventually starve some packets")
	}
}

func TestNoRetransmissions(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.MaxAttempts = 1
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	for _, n := range res.Nodes {
		if n.Stats.Attempts > n.Stats.Generated {
			t.Errorf("node %d exceeded one attempt per packet", n.ID)
		}
	}
}

func TestSingleDemodulator(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.Demodulators = 1
	cfg.StartSpread = 5 * simtime.Second
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
}

func TestOneWindowPeriods(t *testing.T) {
	// Period == forecast window: exactly one window per period, so BLA
	// degenerates to (battery-aware) ALOHA.
	cfg := smallScenario(config.ProtocolBLA)
	cfg.PeriodMin = cfg.ForecastWindow
	cfg.PeriodMax = cfg.ForecastWindow
	cfg.Duration = 6 * simtime.Hour
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	for _, n := range res.Nodes {
		for _, b := range n.Stats.WindowHist.Buckets() {
			if b != 0 {
				t.Fatalf("single-window period transmitted in window %d", b)
			}
		}
	}
}

func TestManyChannelsUncongested(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.Channels = 8
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	var prrSum float64
	for _, n := range res.Nodes {
		prrSum += n.Stats.PRR()
	}
	if mean := prrSum / float64(len(res.Nodes)); mean < 0.95 {
		t.Errorf("8-channel 15-node network PRR %v, want nearly lossless", mean)
	}
}

func TestRunShorterThanFirstPeriod(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Duration = simtime.Minute
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
}

func TestTinyBatteries(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.BatteryCapacityJ = 0.05 // barely one transmission
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
}

func TestHugeNetworkSingleDay(t *testing.T) {
	if testing.Short() {
		t.Skip("300-node run")
	}
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Nodes = 300
	cfg.Duration = simtime.Day
	res := mustRun(t, cfg, Hooks{})
	checkConsistency(t, res)
	if len(res.Nodes) != 300 {
		t.Fatalf("nodes = %d", len(res.Nodes))
	}
}
