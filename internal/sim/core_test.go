package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// soaOracleScenario builds one randomized-by-seed scenario with faults
// and enough variety (theta, initial SoC, node count) to drive every
// kernel branch: deep-discharge nights, full-accept charging runs,
// at-capacity spans, partial-minute steps at event times, and brownout
// interference with the armed spans.
func soaOracleScenario(seed uint64) config.Scenario {
	cfg := config.Default().WithSeed(seed)
	cfg.Nodes = 12 + int(seed%3)*6
	cfg.Gateways = 4
	cfg.MaxDistanceM = 9000
	cfg.Channels = 2
	cfg.Demodulators = 2
	cfg.Duration = 2 * simtime.Day
	cfg.ForecastPrimeDays = 2
	// Cycle through theta caps: 1.0 exercises the clamp-moving edge the
	// at-capacity proof rejects, 0.5 the paper's H-50, 0.9 a battery
	// that reaches its cap mid-afternoon and arms the no-op span.
	cfg.Theta = []float64{1.0, 0.5, 0.9, 0.7}[seed%4]
	cfg.InitialSoC = []float64{0.5, 0.9, 0.3}[seed%3]
	cfg.Faults = faults.Config{
		DownlinkLoss: 0.05,
		UplinkLoss:   0.05,
		UplinkDup:    0.05,
		OutageStart:  20 * simtime.Hour,
		OutageLen:    2 * simtime.Hour,
		OutageEvery:  simtime.Day,
		BrownoutMTBF: 4 * simtime.Day,
	}
	return cfg
}

// TestSoACoreMatchesPointerCore pins the fused SoA integration kernel
// (integrateFast: at-capacity span skip, below-capacity full-accept
// span, hoisted per-minute balance) bit-for-bit against the generic
// reference path across randomized scenarios, with faults and obs
// recording on, at 1 and 4 shards. Every per-node float in the Result
// and the complete obs export must match byte for byte.
func TestSoACoreMatchesPointerCore(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		cfg := soaOracleScenario(seed)
		man := obs.Manifest{Experiment: "soa-oracle", Seed: seed, Nodes: cfg.Nodes}

		run := func(generic bool, shards int) (*Result, []byte) {
			debugGenericIntegrate = generic
			defer func() { debugGenericIntegrate = false }()
			rec := obs.New(man, 30*simtime.Minute)
			_, res := runOpt(t, cfg, rec, RunOptions{Shards: shards, Workers: 2})
			return res, obsBytes(t, rec)
		}

		refRes, refObs := run(true, 1)
		for _, c := range []struct {
			name    string
			generic bool
			shards  int
		}{
			{"fast/1shard", false, 1},
			{"fast/4shards", false, 4},
			{"generic/4shards", true, 4},
		} {
			res, out := run(c.generic, c.shards)
			if !reflect.DeepEqual(refRes, res) {
				t.Errorf("seed %d %s: result differs from generic single-shard run", seed, c.name)
			}
			if !bytes.Equal(refObs, out) {
				t.Errorf("seed %d %s: obs export differs from generic single-shard run", seed, c.name)
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d: kernel/reference divergence; stopping at first failing seed", seed)
		}
	}
}
