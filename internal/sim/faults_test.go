package sim

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// faultyScenario returns a fast scenario with a lossy control plane.
func faultyScenario() config.Scenario {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Faults = faults.Config{
		DownlinkLoss:    0.2,
		UplinkLoss:      0.1,
		UplinkDup:       0.1,
		OutageStart:     simtime.Day,
		OutageLen:       4 * simtime.Hour,
		OutageEvery:     simtime.Day,
		BrownoutMTBF:    simtime.Day,
		WuTTL:           2 * simtime.Hour,
		WuStaleFallback: 1,
	}
	return cfg
}

// TestFaultsDeterminism verifies a faulty run is reproducible: every
// fault draw comes from the plan's seed-derived per-node streams, never
// from shared or wall-clock state.
func TestFaultsDeterminism(t *testing.T) {
	cfg := faultyScenario()
	a := mustRun(t, cfg, Hooks{})
	b := mustRun(t, cfg, Hooks{})
	for i := range a.Nodes {
		sa, sb := a.Nodes[i].Stats, b.Nodes[i].Stats
		if sa.Generated != sb.Generated || sa.Delivered != sb.Delivered ||
			sa.Attempts != sb.Attempts || sa.TxEnergyJ != sb.TxEnergyJ ||
			sa.Brownouts != sb.Brownouts || sa.StaleWuDecisions != sb.StaleWuDecisions {
			t.Fatalf("node %d differs across identical faulty runs: %+v vs %+v", i, sa, sb)
		}
		if a.Nodes[i].Degradation.Total != b.Nodes[i].Degradation.Total {
			t.Fatalf("node %d degradation differs across identical faulty runs", i)
		}
	}
}

// TestFaultsGracefulDegradation verifies the lossy control plane hurts
// but never corrupts: fewer deliveries than the perfect plane, brownouts
// and stale-fallback decisions observed, and every per-node metric still
// finite and in range.
func TestFaultsGracefulDegradation(t *testing.T) {
	clean := mustRun(t, smallScenario(config.ProtocolBLA), Hooks{})
	faulty := mustRun(t, faultyScenario(), Hooks{})

	var cleanDelivered, faultyDelivered, brownouts, stale int64
	for i := range clean.Nodes {
		cleanDelivered += clean.Nodes[i].Stats.Delivered
		faultyDelivered += faulty.Nodes[i].Stats.Delivered
		brownouts += faulty.Nodes[i].Stats.Brownouts
		stale += faulty.Nodes[i].Stats.StaleWuDecisions
	}
	if faultyDelivered >= cleanDelivered {
		t.Errorf("faulty plane delivered %d >= clean %d", faultyDelivered, cleanDelivered)
	}
	if faultyDelivered == 0 {
		t.Error("faulty plane should still deliver some packets")
	}
	if brownouts == 0 {
		t.Error("MTBF of one day over 3 days x 15 nodes should brown out at least one node")
	}
	if stale == 0 {
		t.Error("daily 4h outages with a 2h TTL should force stale-fallback decisions")
	}
	for _, n := range faulty.Nodes {
		if math.IsNaN(n.Degradation.Total) || n.Degradation.Total < 0 || n.Degradation.Total >= 1 {
			t.Errorf("node %d: degradation %v out of range under faults", n.ID, n.Degradation.Total)
		}
		if n.FinalSoC < 0 || n.FinalSoC > 1 {
			t.Errorf("node %d: final SoC %v out of range under faults", n.ID, n.FinalSoC)
		}
		if prr := n.Stats.PRR(); math.IsNaN(prr) || prr < 0 || prr > 1 {
			t.Errorf("node %d: PRR %v out of range under faults", n.ID, prr)
		}
	}
}

// TestSimBrownoutRejoinsNeverReregisters pins the join-path contract
// the network server's dedup watermarks depend on: a node that browns
// out and comes back is the same battery with the same history, so the
// simulator must re-admit it through Rejoin (watermarks preserved) and
// never through Register (which resets watermarks and discards the
// degradation history — battery-replacement semantics, see
// netserver.Register). If a rejoin path ever drifted to Register, every
// retransmit already in flight at the brownout would be re-ingested as
// fresh data and w_u would silently fork from the node's real history.
func TestSimBrownoutRejoinsNeverReregisters(t *testing.T) {
	cfg := faultyScenario()
	rec := obs.New(obs.Manifest{Tool: "test"}, 0)
	res := mustRun(t, cfg, Hooks{Obs: rec})

	var brownouts int64
	for _, n := range res.Nodes {
		brownouts += n.Stats.Brownouts
	}
	if brownouts == 0 {
		t.Fatal("scenario produced no brownouts; the assertion below would be vacuous")
	}
	registers := rec.Counter("netserver.registers").Value()
	rejoins := rec.Counter("netserver.rejoins").Value()
	if registers != int64(cfg.Nodes) {
		t.Errorf("netserver.registers = %d, want exactly one per node (%d): a live node was re-registered",
			registers, cfg.Nodes)
	}
	if rejoins == 0 {
		t.Errorf("netserver.rejoins = 0 with %d brownouts: brownout recovery is not using Rejoin", brownouts)
	}
}

// TestTotalOutageBlocksDelivery verifies a gateway that is down for the
// whole run delivers nothing, yet the nodes run to completion.
func TestTotalOutageBlocksDelivery(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Faults = faults.Config{OutageStart: 0, OutageLen: cfg.Duration + simtime.Day}
	res := mustRun(t, cfg, Hooks{})
	for _, n := range res.Nodes {
		if n.Stats.Delivered != 0 {
			t.Fatalf("node %d delivered %d packets through a dead gateway", n.ID, n.Stats.Delivered)
		}
		if n.Stats.Generated == 0 {
			t.Errorf("node %d stopped generating during the outage", n.ID)
		}
	}
}

// TestZeroFaultsNoFaultCounters verifies the zero-valued fault config
// leaves no trace: no plan is built, no brownouts, no stale decisions.
func TestZeroFaultsNoFaultCounters(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	if cfg.Faults.Active() {
		t.Fatal("default scenario should have an inactive fault config")
	}
	res := mustRun(t, cfg, Hooks{})
	for _, n := range res.Nodes {
		if n.Stats.Brownouts != 0 || n.Stats.StaleWuDecisions != 0 {
			t.Fatalf("node %d has fault counters on a perfect control plane: %+v", n.ID, n.Stats)
		}
	}
}

// TestUplinkLossReducesDelivery isolates backhaul uplink loss: PHY
// success but no ingest must read as a lost packet to the node.
func TestUplinkLossReducesDelivery(t *testing.T) {
	clean := mustRun(t, smallScenario(config.ProtocolBLA), Hooks{})
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Faults = faults.Config{UplinkLoss: 0.5}
	lossy := mustRun(t, cfg, Hooks{})
	var cleanDelivered, lossyDelivered int64
	for i := range clean.Nodes {
		cleanDelivered += clean.Nodes[i].Stats.Delivered
		lossyDelivered += lossy.Nodes[i].Stats.Delivered
	}
	if lossyDelivered >= cleanDelivered {
		t.Errorf("50%% uplink loss delivered %d >= clean %d", lossyDelivered, cleanDelivered)
	}
}
