package sim

import (
	"math/rand/v2"
	"testing"

	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/lora"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// flatSource supplies constant power.
type flatSource struct{ watts float64 }

func (s flatSource) Power(simtime.Time) float64 { return s.watts }

func (s flatSource) Energy(from, to simtime.Time) float64 {
	if to <= from {
		return 0
	}
	return s.watts * to.Sub(from).Seconds()
}

// sink is a forecaster that records observations.
type sink struct{ totalJ float64 }

func (s *sink) ForecastWindows(_ simtime.Time, _ simtime.Duration, n int) []float64 {
	return make([]float64, n)
}

func (s *sink) Observe(_, _ simtime.Time, e float64) { s.totalJ += e }

func newBareNode(t *testing.T, capacityJ, initialSoC, sleepW, harvestW float64) (*Node, *sink) {
	t.Helper()
	b, err := battery.New(battery.DefaultModel(), capacityJ, initialSoC, 25)
	if err != nil {
		t.Fatal(err)
	}
	fc := &sink{}
	return &Node{
		ID:     1,
		Params: lora.DefaultParams(),
		Batt:   b,
		Stats:  metrics.NewNodeStats(),
		src:    flatSource{watts: harvestW},
		fc:     fc,
		rng:    rand.New(rand.NewPCG(1, 2)),
		sleepW: sleepW,
	}, fc
}

func TestNodeIntegrateEnergyBalance(t *testing.T) {
	// Harvest 2 mW, sleep 0.5 mW: net +1.5 mW charges the battery.
	n, fc := newBareNode(t, 100, 0.5, 0.5e-3, 2e-3)
	n.integrate(simtime.Time(simtime.Hour))
	wantNet := (2e-3 - 0.5e-3) * 3600
	if got := n.Batt.Stored() - 50; !closeEnough(got, wantNet) {
		t.Errorf("battery gained %v J, want %v", got, wantNet)
	}
	if want := 2e-3 * 3600; !closeEnough(fc.totalJ, want) {
		t.Errorf("forecaster observed %v J, want %v", fc.totalJ, want)
	}
}

func TestNodeIntegrateDrainsOnDeficit(t *testing.T) {
	// No harvest: sleep drains the battery.
	n, _ := newBareNode(t, 10, 0.5, 1e-3, 0)
	n.integrate(simtime.Time(simtime.Hour))
	want := 5 - 1e-3*3600
	if got := n.Batt.Stored(); !closeEnough(got, want) {
		t.Errorf("stored = %v, want %v", got, want)
	}
}

func TestNodeIntegrateExtraDraw(t *testing.T) {
	// A 0.2 J radio draw lands in the next balance chunk; harvest within
	// that chunk offsets it (the Eq. 5 switch).
	n, _ := newBareNode(t, 10, 0.5, 0, 0.2/60) // harvest exactly 0.2 J/min
	n.integrate(simtime.Time(10 * simtime.Minute))
	before := n.Batt.Stored()
	n.draw(0.2)
	n.integrate(simtime.Time(11 * simtime.Minute))
	if got := n.Batt.Stored(); !closeEnough(got, before) {
		t.Errorf("covered draw changed battery by %v", got-before)
	}
	if n.Batt.(*battery.Battery).PendingTransitions() != 0 {
		t.Error("fully covered draw must not create SoC transitions")
	}
	// An uncovered draw hits the battery.
	n.draw(1.0)
	n.integrate(simtime.Time(12 * simtime.Minute))
	if got := before - n.Batt.Stored(); !closeEnough(got, 0.8) {
		t.Errorf("uncovered draw took %v J from the battery, want 0.8", got)
	}
}

func TestNodeIntegrateIdempotent(t *testing.T) {
	n, _ := newBareNode(t, 10, 0.5, 1e-3, 0)
	n.integrate(simtime.Time(simtime.Hour))
	got := n.Batt.Stored()
	n.integrate(simtime.Time(simtime.Hour))        // same instant: no-op
	n.integrate(simtime.Time(30 * simtime.Minute)) // past: no-op
	if n.Batt.Stored() != got {
		t.Error("repeated/backward integration changed state")
	}
}

func TestParamsForAttemptEscalation(t *testing.T) {
	n, _ := newBareNode(t, 10, 0.5, 0, 0)
	n.Params.SF = lora.SF9
	tests := []struct {
		attempt int
		want    lora.SpreadingFactor
	}{
		{0, lora.SF9},
		{1, lora.SF9},
		{2, lora.SF10},
		{3, lora.SF10},
		{4, lora.SF11},
		{6, lora.SF12},
		{7, lora.SF12},
		{20, lora.SF12}, // capped
	}
	for _, tt := range tests {
		if got := n.paramsForAttempt(tt.attempt).SF; got != tt.want {
			t.Errorf("attempt %d SF = %v, want %v", tt.attempt, got, tt.want)
		}
	}
	if n.Params.SF != lora.SF9 {
		t.Error("escalation must not mutate the node's base params")
	}
}

func TestDrainReportsCompression(t *testing.T) {
	n, _ := newBareNode(t, 10, 0.5, 0, 0)
	// Create many transitions by zig-zagging the battery.
	for i := 0; i < 6; i++ {
		at := simtime.Time(i) * simtime.Time(simtime.Minute)
		n.Batt.Discharge(at, 0.5+0.1*float64(i))
		n.Batt.Charge(at.Add(30*simtime.Second), 0.5+0.1*float64(i))
	}
	n.drainReports()
	if got := len(n.pendingTrans); got > 2 {
		t.Errorf("one drain queued %d reports, want <= 2 (paper's per-period budget)", got)
	}
	// The kept reports are the extremes.
	if len(n.pendingTrans) == 2 && n.pendingTrans[0].SoC == n.pendingTrans[1].SoC {
		t.Error("kept reports should be distinct extremes")
	}
}

func TestDrainReportsBacklogBounded(t *testing.T) {
	n, _ := newBareNode(t, 10, 0.5, 0, 0)
	for round := 0; round < 40; round++ {
		at := simtime.Time(round) * simtime.Time(simtime.Hour)
		n.Batt.Discharge(at, 1)
		n.Batt.Charge(at.Add(simtime.Minute), 1)
		n.drainReports()
	}
	if got := len(n.pendingTrans); got > 16 {
		t.Errorf("backlog = %d, want bounded at 16", got)
	}
}

func TestEncodeReportsRoundTrip(t *testing.T) {
	n, _ := newBareNode(t, 10, 0.5, 0, 0)
	if got := n.encodeReports(0, simtime.Minute); got != nil {
		t.Errorf("no pending reports should encode to nil, got %v", got)
	}
	n.Batt.Discharge(simtime.Time(simtime.Minute), 2)
	n.Batt.Charge(simtime.Time(2*simtime.Minute), 1)
	n.Batt.Discharge(simtime.Time(3*simtime.Minute), 1)
	n.drainReports()
	packetAt := simtime.Time(10 * simtime.Minute)
	reports := n.encodeReports(packetAt, simtime.Minute)
	if len(reports) != len(n.pendingTrans) {
		t.Fatalf("encoded %d, want %d", len(reports), len(n.pendingTrans))
	}
	for i, r := range reports {
		back := r.Decode(packetAt, simtime.Minute)
		if d := back.SoC - n.pendingTrans[i].SoC; d > 1e-4 || d < -1e-4 {
			t.Errorf("report %d SoC %v, want %v", i, back.SoC, n.pendingTrans[i].SoC)
		}
	}
}

// energySourceStub satisfies energy.Source for interface assertions.
var _ energy.Source = flatSource{}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+abs(b))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
