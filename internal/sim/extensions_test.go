package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// TestMultiGatewayImprovesReception: in the congested single-channel
// regime, adding gateways must not hurt and should help the worst nodes
// (spatial diversity rescues collision and link-budget losses).
func TestMultiGatewayImprovesReception(t *testing.T) {
	if testing.Short() {
		t.Skip("60-node multi-day simulation")
	}
	base := config.Default().WithSeed(21)
	base.Nodes = 60
	base.Duration = 6 * simtime.Day
	base.Protocol = config.ProtocolLoRaWAN

	run := func(gateways int) (mean, minPRR float64) {
		cfg := base
		cfg.Gateways = gateways
		res := mustRun(t, cfg, Hooks{})
		var prr metrics.Welford
		for _, n := range res.Nodes {
			prr.Add(n.Stats.PRR())
		}
		return prr.Mean(), prr.Min()
	}

	mean1, min1 := run(1)
	mean4, min4 := run(4)
	if mean4 < mean1-0.02 {
		t.Errorf("4 gateways mean PRR %.3f should not be below 1 gateway %.3f", mean4, mean1)
	}
	if min4 < min1-0.02 {
		t.Errorf("4 gateways min PRR %.3f should not be below 1 gateway %.3f", min4, min1)
	}
	t.Logf("PRR 1 gw: mean %.3f min %.3f; 4 gw: mean %.3f min %.3f", mean1, min1, mean4, min4)
}

// TestSupercapReducesBatteryCycling: the hybrid store must strictly
// reduce battery cycle aging under identical traffic.
func TestSupercapReducesBatteryCycling(t *testing.T) {
	base := smallScenario(config.ProtocolLoRaWAN)
	base.Duration = 6 * simtime.Day

	cycleOf := func(supercapJ float64) float64 {
		cfg := base
		cfg.SupercapJ = supercapJ
		cfg.SupercapLeakW = 1e-5
		res := mustRun(t, cfg, Hooks{})
		var cyc metrics.Welford
		for _, n := range res.Nodes {
			cyc.Add(n.Degradation.Cycle)
		}
		return cyc.Mean()
	}

	bare := cycleOf(0)
	buffered := cycleOf(3)
	if bare <= 0 {
		t.Fatal("expected non-zero cycle aging")
	}
	if buffered >= bare {
		t.Errorf("supercap cycle aging %v should be below bare battery %v", buffered, bare)
	}
}

// TestCustomUtilityChangesBehavior: an indifferent utility lets degraded
// nodes defer much more than the default linear one.
func TestCustomUtilityChangesBehavior(t *testing.T) {
	base := smallScenario(config.ProtocolBLA)
	base.Duration = 6 * simtime.Day

	meanWindow := func(fn utility.Function) float64 {
		cfg := base
		cfg.Utility = fn
		res := mustRun(t, cfg, Hooks{})
		var sum, n float64
		for _, nr := range res.Nodes {
			for _, b := range nr.Stats.WindowHist.Buckets() {
				sum += float64(b) * float64(nr.Stats.WindowHist.Count(b))
				n += float64(nr.Stats.WindowHist.Count(b))
			}
		}
		if n == 0 {
			t.Fatal("no transmissions")
		}
		return sum / n
	}

	linear := meanWindow(nil) // default Eq. 16
	indifferent := meanWindow(utility.Indifferent{})
	if indifferent <= linear {
		t.Errorf("delay-indifferent nodes should defer more: %v vs linear %v", indifferent, linear)
	}
}

// TestGatewayCountReflectedInMedium sanity-checks construction.
func TestGatewayCountReflectedInMedium(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.Gateways = 3
	s, err := New(cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.med.Gateways(); got != 3 {
		t.Errorf("medium gateways = %d, want 3", got)
	}
	for _, n := range s.Nodes() {
		if len(n.rxPowerDBm) != 3 {
			t.Fatalf("node %d has %d gateway powers, want 3", n.ID, len(n.rxPowerDBm))
		}
	}
}
