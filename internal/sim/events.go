package sim

import "repro/internal/simtime"

// Simulation event kinds. Each maps to one protocol action; together
// they replace the closure-per-Schedule hot path with pooled structs.
const (
	evGenerate  uint8 = iota // node timer: generate the next packet
	evAttempt                // transmission attempt (first, deferred, or retry)
	evTxEnd                  // uplink airtime over: resolve reception
	evDownlink               // gateway starts the reserved ACK downlink
	evAckDone                // receive window closes with the ACK decoded
	evDaily                  // gateway degradation recomputation tick
	evMonthly                // monthly degradation sampling tick
	evBrownout               // fault injection: node restart losing volatile state
	evObsSample              // observability: sample every node's timeline row
)

// simEvent is one pooled simulation event. Packet-bearing events also
// capture the packet's generation counter so a packet recycled through
// the free list safely invalidates every event scheduled for its
// previous life (the determinism contract is unaffected: validity
// checks mirror the old finished/current-packet guards exactly).
type simEvent struct {
	s      *Simulation
	kind   uint8
	n      *Node
	pkt    *packet
	pktGen uint64
	tx     *Transmission
	gw     int
	until  simtime.Time
	next   *simEvent // free-list link
}

// Fire dispatches the event. The struct returns to the free list
// before the handler runs, so handlers may immediately reuse it when
// scheduling follow-up events.
func (e *simEvent) Fire() {
	s, kind, n, pkt, gen, tx, gw, until :=
		e.s, e.kind, e.n, e.pkt, e.pktGen, e.tx, e.gw, e.until
	e.n, e.pkt, e.tx = nil, nil, nil
	e.next = s.freeEv
	s.freeEv = e

	switch kind {
	case evGenerate:
		s.generate(n)
	case evAttempt:
		s.attempt(n, pkt, gen)
	case evTxEnd:
		s.txEnd(n, pkt, gen, tx)
	case evDownlink:
		s.med.BeginDownlink(gw, until)
	case evAckDone:
		s.ackDelivered(n, pkt, gen)
	case evDaily:
		s.dailyTick()
	case evMonthly:
		s.monthlyTick()
	case evBrownout:
		s.brownout(n)
	case evObsSample:
		s.obsSample()
	}
}

// schedule enqueues a pooled typed event; unused operands are zero.
func (s *Simulation) schedule(at simtime.Time, kind uint8, n *Node, pkt *packet, tx *Transmission, gw int, until simtime.Time) {
	e := s.freeEv
	if e == nil {
		e = &simEvent{s: s}
	} else {
		s.freeEv = e.next
		e.next = nil
	}
	e.kind, e.n, e.pkt, e.tx, e.gw, e.until = kind, n, pkt, tx, gw, until
	if pkt != nil {
		e.pktGen = pkt.gen
	}
	s.eng.ScheduleEvent(at, e)
}

// newPacket returns a recycled (or fresh) packet. The generation
// counter carries over from the previous life; releasePacket already
// bumped it, so stale events cannot match.
func (s *Simulation) newPacket() *packet {
	p := s.freePkt
	if p == nil {
		return &packet{}
	}
	s.freePkt = p.next
	p.next = nil
	p.attempts = 0
	p.radioEnergyJ = 0
	p.finished = false
	return p
}

// releasePacket invalidates outstanding events for this packet and
// returns it to the pool.
func (s *Simulation) releasePacket(p *packet) {
	p.gen++
	p.next = s.freePkt
	s.freePkt = p
}
