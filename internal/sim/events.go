package sim

import "repro/internal/simtime"

// Simulation event kinds. Each maps to one protocol action; together
// they replace the closure-per-Schedule hot path with pooled structs.
const (
	evGenerate  uint8 = iota // node timer: generate the next packet
	evAttempt                // transmission attempt (first, deferred, or retry)
	evTxEnd                  // uplink airtime over: resolve reception
	evDownlink               // gateway starts the reserved ACK downlink
	evAckDone                // receive window closes with the ACK decoded
	evDaily                  // gateway degradation recomputation tick
	evMonthly                // monthly degradation sampling tick
	evBrownout               // fault injection: node restart losing volatile state
	evObsSample              // observability: sample every node's timeline row
)

// simEvent is one pooled simulation event, owned by exactly one shard
// lane: it is allocated from that lane's free list, scheduled into that
// lane's engine, and returned to the same free list on Fire, so the
// generation-counted pools never cross shard boundaries. Packet-bearing
// events also capture the packet's generation counter so a packet
// recycled through the free list safely invalidates every event
// scheduled for its previous life (the determinism contract is
// unaffected: validity checks mirror the old finished/current-packet
// guards exactly).
type simEvent struct {
	sh     *shard
	kind   uint8
	n      *Node
	pkt    *packet
	pktGen uint64
	tx     *Transmission
	btx    *borderTx
	gw     int
	until  simtime.Time
	next   *simEvent // free-list link
}

// Fire dispatches the event. The struct returns to its lane's free
// list before the handler runs, so handlers may immediately reuse it
// when scheduling follow-up events.
func (e *simEvent) Fire() {
	sh, kind, n, pkt, gen, tx, btx, gw, until :=
		e.sh, e.kind, e.n, e.pkt, e.pktGen, e.tx, e.btx, e.gw, e.until
	e.n, e.pkt, e.tx, e.btx = nil, nil, nil, nil
	e.next = sh.freeEv
	sh.freeEv = e

	switch kind {
	case evGenerate:
		sh.generate(n)
	case evAttempt:
		sh.attempt(n, pkt, gen)
	case evTxEnd:
		sh.txEnd(n, pkt, gen, tx, btx)
	case evDownlink:
		sh.med.BeginDownlink(gw, until)
	case evAckDone:
		sh.ackDelivered(n, pkt, gen)
	case evDaily:
		sh.dailyTick()
	case evMonthly:
		sh.monthlyTick()
	case evBrownout:
		sh.brownout(n)
	case evObsSample:
		sh.obsSample()
	}
}

// schedule enqueues a pooled typed event into this lane's engine;
// unused operands are zero. Cross-lane scheduling (the coordinator
// queuing a downlink into a gateway's lane) calls this on the target
// lane, which is safe because the coordinator only runs while worker
// lanes are parked at a barrier.
func (sh *shard) schedule(at simtime.Time, kind uint8, n *Node, pkt *packet, tx *Transmission, btx *borderTx, gw int, until simtime.Time) {
	e := sh.freeEv
	if e == nil {
		// Refill the pool a chunk at a time: one slab instead of an
		// allocation per event while the pool grows to steady state.
		chunk := make([]simEvent, 64)
		for i := range chunk[1:] {
			chunk[i+1].sh = sh
			chunk[i+1].next = sh.freeEv
			sh.freeEv = &chunk[i+1]
		}
		e = &chunk[0]
		e.sh = sh
	} else {
		sh.freeEv = e.next
		e.next = nil
	}
	e.kind, e.n, e.pkt, e.tx, e.btx, e.gw, e.until = kind, n, pkt, tx, btx, gw, until
	if pkt != nil {
		e.pktGen = pkt.gen
	}
	sh.eng.ScheduleEvent(at, e)
}

// newPacket returns a recycled (or fresh) packet from this lane's pool.
// The generation counter carries over from the previous life;
// releasePacket already bumped it, so stale events cannot match. A
// node's packets are always allocated and released by its owner lane
// (packet lifecycle events run on the owner), so the pools stay
// shard-local.
func (sh *shard) newPacket() *packet {
	p := sh.freePkt
	if p == nil {
		return &packet{}
	}
	sh.freePkt = p.next
	p.next = nil
	p.attempts = 0
	p.radioEnergyJ = 0
	p.finished = false
	return p
}

// releasePacket invalidates outstanding events for this packet and
// returns it to this lane's pool.
func (sh *shard) releasePacket(p *packet) {
	p.gen++
	p.next = sh.freePkt
	sh.freePkt = p
}
