package sim

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/mac"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// TestDecisionTableMatchesDirectPath pins the MAC's per-day decision
// table bit-for-bit against the always-recompute path: the same faulted
// scenarios as the SoA kernel oracle, run with the table enabled
// (default) and disabled (the -no-decision-table escape hatch), must
// produce identical Results and byte-identical obs exports at multiple
// shard counts. Longer seeds give the estimator time to converge so the
// table actually serves hits, not just rebuilds; WuTTL cycles the
// stale-w_u phase the validity certificate tracks.
func TestDecisionTableMatchesDirectPath(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var totalHits int64
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		cfg := soaOracleScenario(seed)
		cfg.Faults.WuTTL = []simtime.Duration{0, 6 * simtime.Hour, simtime.Day}[seed%3]
		if seed%4 == 0 {
			// A longer, smaller run: estimator EWMAs converge to stable
			// bits after a few days, which is when table hits dominate.
			cfg.Nodes = 8
			cfg.Duration = 8 * simtime.Day
		}
		man := obs.Manifest{Experiment: "decision-table-oracle", Seed: seed, Nodes: cfg.Nodes}

		run := func(disable bool, shards int) (*Simulation, *Result, []byte) {
			c := cfg
			c.DisableDecisionTable = disable
			rec := obs.New(man, 30*simtime.Minute)
			s, res := runOpt(t, c, rec, RunOptions{Shards: shards, Workers: 2})
			return s, res, obsBytes(t, rec)
		}

		_, refRes, refObs := run(true, 1)
		for _, c := range []struct {
			name    string
			disable bool
			shards  int
		}{
			{"table/1shard", false, 1},
			{"table/4shards", false, 4},
			{"notable/4shards", true, 4},
		} {
			s, res, out := run(c.disable, c.shards)
			if !reflect.DeepEqual(refRes, res) {
				t.Errorf("seed %d %s: result differs from no-table single-shard run", seed, c.name)
			}
			if !bytes.Equal(refObs, out) {
				t.Errorf("seed %d %s: obs export differs from no-table single-shard run", seed, c.name)
			}
			for _, n := range s.nodes {
				if bla, ok := n.Proto.(*mac.BLA); ok {
					hits := bla.TableHits()
					if c.disable && hits != 0 {
						t.Errorf("seed %d %s: escape hatch served %d table hits", seed, c.name, hits)
					}
					totalHits += hits
				}
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d: decision-table divergence; stopping at first failing seed", seed)
		}
	}
	// The oracle proves nothing if the table never fires: require that
	// at least one scenario actually served cached verdicts.
	if totalHits == 0 {
		t.Fatal("decision table served zero hits across all oracle scenarios")
	}
	t.Logf("decision table served %d hits across %d seeds", totalHits, seeds)
}
