package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// smallScenario returns a fast scenario for integration tests.
func smallScenario(protocol config.ProtocolKind) config.Scenario {
	cfg := config.Default().WithSeed(11)
	cfg.Nodes = 15
	cfg.Duration = 3 * simtime.Day
	cfg.Protocol = protocol
	cfg.ForecastPrimeDays = 2
	return cfg
}

func mustRun(t *testing.T, cfg config.Scenario, hooks Hooks) *Result {
	t.Helper()
	s, err := New(cfg, hooks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestNewRejectsInvalidScenario(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Nodes = 0
	if _, err := New(cfg, Hooks{}); err == nil {
		t.Error("invalid scenario should be rejected")
	}
}

func TestRunConservationInvariants(t *testing.T) {
	for _, proto := range []config.ProtocolKind{config.ProtocolLoRaWAN, config.ProtocolBLA, config.ProtocolThetaOnly} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			res := mustRun(t, smallScenario(proto), Hooks{})
			if len(res.Nodes) != 15 {
				t.Fatalf("node results = %d, want 15", len(res.Nodes))
			}
			for _, n := range res.Nodes {
				s := n.Stats
				if s.Generated == 0 {
					t.Errorf("node %d generated no packets in 3 days", n.ID)
				}
				// One packet may still be in flight at the horizon.
				settled := s.Delivered + s.Dropped
				if settled > s.Generated || s.Generated-settled > 1 {
					t.Errorf("node %d: generated %d != delivered %d + dropped %d (+<=1 in flight)",
						n.ID, s.Generated, s.Delivered, s.Dropped)
				}
				if s.Attempts > s.Generated*8 {
					t.Errorf("node %d: attempts %d exceed max 8 per packet", n.ID, s.Attempts)
				}
				if prr := s.PRR(); prr < 0 || prr > 1 {
					t.Errorf("node %d: PRR %v out of range", n.ID, prr)
				}
				if u := s.AvgUtility(); u < 0 || u > 1 {
					t.Errorf("node %d: utility %v out of range", n.ID, u)
				}
				if n.FinalSoC < 0 || n.FinalSoC > 1 {
					t.Errorf("node %d: final SoC %v out of range", n.ID, n.FinalSoC)
				}
				if n.Degradation.Total < 0 || n.Degradation.Total >= 1 {
					t.Errorf("node %d: degradation %v out of range", n.ID, n.Degradation.Total)
				}
			}
		})
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	a := mustRun(t, cfg, Hooks{})
	b := mustRun(t, cfg, Hooks{})
	for i := range a.Nodes {
		sa, sb := a.Nodes[i].Stats, b.Nodes[i].Stats
		if sa.Generated != sb.Generated || sa.Delivered != sb.Delivered ||
			sa.Attempts != sb.Attempts || sa.TxEnergyJ != sb.TxEnergyJ {
			t.Fatalf("node %d differs across identical runs: %+v vs %+v", i, sa, sb)
		}
		if a.Nodes[i].Degradation.Total != b.Nodes[i].Degradation.Total {
			t.Fatalf("node %d degradation differs across identical runs", i)
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a := mustRun(t, smallScenario(config.ProtocolBLA), Hooks{})
	cfg := smallScenario(config.ProtocolBLA).WithSeed(99)
	b := mustRun(t, cfg, Hooks{})
	var differs bool
	for i := range a.Nodes {
		if a.Nodes[i].Stats.Attempts != b.Nodes[i].Stats.Attempts ||
			a.Nodes[i].Period != b.Nodes[i].Period {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("different seeds should produce different runs")
	}
}

func TestLoRaWANAlwaysWindowZero(t *testing.T) {
	res := mustRun(t, smallScenario(config.ProtocolLoRaWAN), Hooks{})
	for _, n := range res.Nodes {
		for _, b := range n.Stats.WindowHist.Buckets() {
			if b != 0 {
				t.Fatalf("LoRaWAN node %d transmitted in window %d", n.ID, b)
			}
		}
	}
}

func TestBLASpreadsWindows(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Nodes = 30
	cfg.Duration = 5 * simtime.Day
	res := mustRun(t, cfg, Hooks{})
	hist := metrics.NewHistogram()
	for _, n := range res.Nodes {
		for _, b := range n.Stats.WindowHist.Buckets() {
			hist.Add(b)
		}
	}
	if len(hist.Buckets()) < 2 {
		t.Error("BLA should use more than one forecast window across the network")
	}
}

func TestThetaCapRespected(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Theta = 0.5
	s, err := New(cfg, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		// SoC is measured against original capacity; the cap is theta of
		// the (smaller) current capacity, so 0.5 bounds it from above.
		if n.FinalSoC > 0.5+1e-9 {
			t.Errorf("node %d final SoC %v exceeds theta 0.5", n.ID, n.FinalSoC)
		}
	}
}

func TestHooksFire(t *testing.T) {
	var decisions, done int
	hooks := Hooks{
		OnDecision:   func(int, simtime.Time, int, int, bool) { decisions++ },
		OnPacketDone: func(int, bool, int, int) { done++ },
	}
	res := mustRun(t, smallScenario(config.ProtocolBLA), hooks)
	var generated, settled int64
	for _, n := range res.Nodes {
		generated += n.Stats.Generated
		settled += n.Stats.Delivered + n.Stats.Dropped
	}
	if int64(decisions) != generated {
		t.Errorf("OnDecision fired %d times for %d generated packets", decisions, generated)
	}
	if int64(done) != settled {
		t.Errorf("OnPacketDone fired %d times for %d settled packets", done, settled)
	}
}

// TestProtocolShape is the headline integration test: in a congested
// synchronized-start network, the BLA MAC must beat LoRaWAN on
// retransmissions and mean degradation, and LoRaWAN must show higher
// degradation variance.
func TestProtocolShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day 60-node simulation")
	}
	base := config.Default().WithSeed(5)
	base.Nodes = 60
	base.Duration = 10 * simtime.Day

	lw := base
	lw.Protocol = config.ProtocolLoRaWAN
	lwRes := mustRun(t, lw, Hooks{})

	bla := base
	bla.Protocol = config.ProtocolBLA
	blaRes := mustRun(t, bla, Hooks{})

	agg := func(r *Result) (attempts, deg metrics.Welford) {
		for _, n := range r.Nodes {
			attempts.Add(n.Stats.AvgAttempts())
			deg.Add(n.Degradation.Total)
		}
		return attempts, deg
	}
	lwAtt, lwDeg := agg(lwRes)
	blaAtt, blaDeg := agg(blaRes)

	if blaAtt.Mean() >= lwAtt.Mean() {
		t.Errorf("BLA attempts %v should be below LoRaWAN %v", blaAtt.Mean(), lwAtt.Mean())
	}
	if blaDeg.Mean() >= lwDeg.Mean() {
		t.Errorf("BLA mean degradation %v should be below LoRaWAN %v", blaDeg.Mean(), lwDeg.Mean())
	}
	if blaDeg.Variance() >= lwDeg.Variance() {
		t.Errorf("BLA degradation variance %v should be below LoRaWAN %v", blaDeg.Variance(), lwDeg.Variance())
	}
}

// TestRunToEoL verifies the lifespan stop condition using an aggressive
// aging model so the run ends in simulated weeks, not years.
func TestRunToEoL(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.Nodes = 5
	cfg.RunToEoL = true
	cfg.MaxDuration = 2 * simtime.Year
	cfg.BatteryModel.K1 = 3e-7 // ~700x faster calendar aging
	res := mustRun(t, cfg, Hooks{})
	if res.LifespanDays <= 0 {
		t.Fatal("run-to-EoL should record a lifespan")
	}
	if res.Elapsed >= 2*simtime.Year {
		t.Error("run should stop before the max duration")
	}
	var maxDeg float64
	for _, n := range res.Nodes {
		if n.Degradation.Total > maxDeg {
			maxDeg = n.Degradation.Total
		}
	}
	if maxDeg < cfg.BatteryModel.EoLThreshold {
		t.Errorf("max degradation %v below EoL threshold at stop", maxDeg)
	}
}

func TestMonthlySeries(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.Nodes = 5
	cfg.Duration = 95 * simtime.Day
	res := mustRun(t, cfg, Hooks{})
	if got := len(res.MonthlyMaxDeg); got != 3 {
		t.Fatalf("monthly samples = %d, want 3 for 95 days", got)
	}
	for i := 1; i < len(res.MonthlyMaxDeg); i++ {
		if res.MonthlyMaxDeg[i] < res.MonthlyMaxDeg[i-1] {
			t.Errorf("monthly max degradation must be non-decreasing: %v", res.MonthlyMaxDeg)
		}
	}
}

// TestStarvedThetaDropsPackets: a tiny theta cannot bridge nights, so
// Algorithm 1 must FAIL some packets (counted as NeverSent).
func TestStarvedThetaDropsPackets(t *testing.T) {
	cfg := smallScenario(config.ProtocolBLA)
	cfg.Theta = 0.03
	res := mustRun(t, cfg, Hooks{})
	var neverSent int64
	for _, n := range res.Nodes {
		neverSent += n.Stats.NeverSent
	}
	if neverSent == 0 {
		t.Error("theta=0.03 should starve nodes into dropping packets")
	}
}

func TestPerfectAndNoisyForecasters(t *testing.T) {
	for _, fk := range []config.ForecastKind{config.ForecastPerfect, config.ForecastNoisy} {
		cfg := smallScenario(config.ProtocolBLA)
		cfg.Forecast = fk
		cfg.ForecastNoise = 0.3
		res := mustRun(t, cfg, Hooks{})
		var delivered int64
		for _, n := range res.Nodes {
			delivered += n.Stats.Delivered
		}
		if delivered == 0 {
			t.Errorf("forecaster %q: nothing delivered", fk)
		}
	}
}

func TestFixedSF(t *testing.T) {
	cfg := smallScenario(config.ProtocolLoRaWAN)
	cfg.FixedSF = 10
	res := mustRun(t, cfg, Hooks{})
	for _, n := range res.Nodes {
		if n.SF != 10 {
			t.Fatalf("node %d SF = %v, want SF10", n.ID, n.SF)
		}
	}
}
