package sim

import (
	"repro/internal/lora"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// gwBits is a per-gateway flag set packed into 64-bit words, so the
// per-transmission reception state costs a few words instead of three
// []bool allocations per uplink.
type gwBits []uint64

func (b gwBits) get(g int) bool { return b[g>>6]&(1<<(uint(g)&63)) != 0 }
func (b gwBits) set(g int)      { b[g>>6] |= 1 << (uint(g) & 63) }

// Transmission is one uplink packet on the air, tracked from start to
// end for collision resolution at every gateway. The paper's system
// model allows "one or more gateways"; reception state is therefore kept
// per gateway and a packet is delivered if any gateway decodes it.
type Transmission struct {
	NodeID  int
	Channel int
	SF      lora.SpreadingFactor
	// PowerDBm is the received power at each gateway. The medium never
	// mutates or retains it past EndUplink, so callers may share one
	// slice across transmissions (the simulator reuses each node's
	// static per-gateway powers).
	PowerDBm []float64
	Start    simtime.Time
	End      simtime.Time

	corrupted gwBits // lost to co-SF interference or gateway downlink
	weak      gwBits // below receiver sensitivity
	unlocked  gwBits // no demodulator free / gateway deaf at start

	anyViable bool // at least one gateway could still decode
	begun     bool // passed through BeginUplink (per-gateway state valid)
	pooled    bool // owned by the medium's free list; recycled on EndUplink

	activeIdx int // position in Medium.active, for O(1) swap-remove
	bucketIdx int // position in its (channel, SF) bucket

	poolNext *Transmission
}

// ensureBits sizes and clears the per-gateway flag words; capacity is
// retained across reuses so pooled transmissions stop allocating after
// their first flight.
func (tx *Transmission) ensureBits(words int) {
	if cap(tx.weak) < words {
		tx.weak = make(gwBits, words)
		tx.corrupted = make(gwBits, words)
		tx.unlocked = make(gwBits, words)
		return
	}
	tx.weak = tx.weak[:words]
	tx.corrupted = tx.corrupted[:words]
	tx.unlocked = tx.unlocked[:words]
	for i := 0; i < words; i++ {
		tx.weak[i], tx.corrupted[i], tx.unlocked[i] = 0, 0, 0
	}
}

// bucketKey indexes active transmissions by (channel, SF): only co-channel
// co-SF signals interact under the capture model, so collision checks
// never need to scan the rest of the air.
func bucketKey(channel int, sf lora.SpreadingFactor) uint64 {
	return uint64(channel)<<8 | uint64(sf)
}

// Medium arbitrates the shared radio channel as the gateways perceive
// it: capture-based co-SF collisions per channel and per gateway, a
// demodulator budget of omega concurrent uplinks per gateway, and
// half-duplex deafness while a gateway transmits ACKs.
//
// Internally the air is indexed, not scanned: active transmissions live
// in per-(channel, SF) buckets, the per-gateway count of
// demodulator-holding uplinks is maintained incrementally, and ended
// Transmission objects are recycled through a free list. All decisions
// are byte-identical to a full rescan (see TestMediumEquivalence).
type Medium struct {
	bw       lora.Bandwidth
	omega    int
	gateways int
	words    int // gwBits words per flag set
	// sensBySF memoizes lora.Sensitivity at the medium's fixed
	// bandwidth for every valid SF; BeginUplink runs once per uplink
	// and the map-backed lookup showed up in profiles.
	sensBySF [lora.MaxSF + 1]float64

	active  []*Transmission
	buckets map[uint64][]*Transmission
	// locked[g] counts active uplinks holding one of gateway g's omega
	// demodulators (not weak, not unlocked there). Lock state is fixed
	// at BeginUplink and released at EndUplink, so the count never needs
	// a rescan.
	locked []int
	// viable counts active transmissions decodable somewhere.
	viable int

	gwTxEnd  []simtime.Time // actual downlink in progress, per gateway
	reserved []simtime.Time // promised downlink slots, per gateway

	decoded []int // reusable EndUplink result buffer
	freeTx  *Transmission

	// Observability handles; nil (no-op) unless SetObserver installed
	// them. obsOn gates the loss-classification scan so a disabled
	// recorder costs nothing beyond one bool check per uplink.
	obsOn                                                    bool
	cUplinks, cDecoded, cLostCollision, cLostBusy, cLostWeak *obs.Counter
}

// SetObserver attaches observability counters. A nil or disabled
// recorder leaves the medium un-instrumented.
func (m *Medium) SetObserver(r *obs.Recorder) {
	if !r.Enabled() {
		return
	}
	m.obsOn = true
	m.cUplinks = r.Counter("medium.uplinks")
	m.cDecoded = r.Counter("medium.uplinks_decoded")
	m.cLostCollision = r.Counter("medium.uplinks_lost_collision")
	m.cLostBusy = r.Counter("medium.uplinks_lost_busy")
	m.cLostWeak = r.Counter("medium.uplinks_lost_weak")
}

// NewMedium returns a medium for the given channel bandwidth, gateway
// demodulator count omega, and number of gateways (clamped to >= 1).
func NewMedium(bw lora.Bandwidth, omega int, gateways int) *Medium {
	if gateways < 1 {
		gateways = 1
	}
	m := &Medium{
		bw:       bw,
		omega:    omega,
		gateways: gateways,
		words:    (gateways + 63) / 64,
		buckets:  make(map[uint64][]*Transmission),
		locked:   make([]int, gateways),
		gwTxEnd:  make([]simtime.Time, gateways),
		reserved: make([]simtime.Time, gateways),
	}
	for sf := lora.MinSF; sf <= lora.MaxSF; sf++ {
		m.sensBySF[sf] = lora.Sensitivity(sf, bw)
	}
	return m
}

// Gateways returns the number of gateways.
func (m *Medium) Gateways() int { return m.gateways }

// NewTransmission returns a zero-cost Transmission from the free list
// (or a fresh one). The caller fills the exported fields and passes it
// to BeginUplink; EndUplink recycles it, so the caller must not touch
// the transmission afterwards. Hand-constructed Transmissions remain
// valid everywhere and are simply never recycled.
func (m *Medium) NewTransmission() *Transmission {
	if t := m.freeTx; t != nil {
		m.freeTx = t.poolNext
		t.poolNext = nil
		return t
	}
	return &Transmission{pooled: true}
}

// BeginUplink registers a transmission starting now. Collision state is
// updated immediately for the new signal and every overlapping one, at
// every gateway. tx.PowerDBm must have one entry per gateway.
func (m *Medium) BeginUplink(tx *Transmission) { m.beginUplink(tx, true) }

// BeginUplinkPart registers one cell's masked clone of a cross-shard
// transmission: reception state is tracked exactly as BeginUplink
// would, but the uplink is not counted — the coordinator counts the
// whole transmission once via CountUplink.
func (m *Medium) BeginUplinkPart(tx *Transmission) { m.beginUplink(tx, false) }

func (m *Medium) beginUplink(tx *Transmission, count bool) {
	tx.begun = true
	tx.anyViable = false
	tx.ensureBits(m.words)

	sens := m.sensBySF[tx.SF]
	key := bucketKey(tx.Channel, tx.SF)
	bkt := m.buckets[key]
	for g := 0; g < m.gateways; g++ {
		if tx.PowerDBm[g] < sens {
			// Below sensitivity at this gateway: never decodable there and
			// too faint to matter as interference.
			tx.weak.set(g)
			continue
		}
		// Half-duplex gateway: a signal arriving while the gateway
		// transmits cannot be preamble-locked.
		if m.gwTxEnd[g] > tx.Start {
			tx.unlocked.set(g)
		} else if m.locked[g] >= m.omega {
			// Demodulator budget: omega concurrent locked uplinks per
			// gateway.
			tx.unlocked.set(g)
		}
		if !tx.unlocked.get(g) {
			m.locked[g]++
		}
		// Co-channel, co-SF capture at this gateway; different SFs are
		// quasi-orthogonal, so only bucket members can interfere.
		for _, a := range bkt {
			if a.weak.get(g) {
				continue
			}
			if !radio.Captures(tx.PowerDBm[g], []float64{a.PowerDBm[g]}) {
				tx.corrupted.set(g)
			}
			if !radio.Captures(a.PowerDBm[g], []float64{tx.PowerDBm[g]}) {
				a.corrupted.set(g)
			}
		}
	}
	if m.viableAnywhere(tx) {
		tx.anyViable = true
		m.viable++
	}
	if count {
		m.cUplinks.Inc()
	}
	tx.activeIdx = len(m.active)
	m.active = append(m.active, tx)
	tx.bucketIdx = len(bkt)
	m.buckets[key] = append(bkt, tx)
}

func (m *Medium) viableAnywhere(tx *Transmission) bool {
	for g := 0; g < m.gateways; g++ {
		if !tx.weak.get(g) {
			return true
		}
	}
	return false
}

// EndUplink removes the transmission and returns the gateways that
// decoded it, strongest signal first (empty when the packet was lost
// everywhere). Any of them can serve the ACK; callers fall back down
// the list when a gateway's downlink radio is booked. The returned
// slice is reused by the next EndUplink call; pooled transmissions are
// recycled, so neither may be retained.
func (m *Medium) EndUplink(tx *Transmission) []int {
	if !tx.begun {
		// Never begun (constructed by hand in tests): per-gateway state is
		// absent; treat as a clean single-gateway reception.
		m.decoded = append(m.decoded[:0], 0)
		return m.decoded
	}

	m.detach(tx)

	decoded := m.decoded[:0]
	for g := 0; g < m.gateways; g++ {
		if tx.weak.get(g) || tx.corrupted.get(g) || tx.unlocked.get(g) {
			continue
		}
		decoded = append(decoded, g)
	}
	// Insertion sort by descending power; skipped entirely for the
	// overwhelmingly common zero/one-gateway outcome.
	for i := 1; i < len(decoded); i++ {
		g := decoded[i]
		j := i - 1
		for j >= 0 && tx.PowerDBm[decoded[j]] < tx.PowerDBm[g] {
			decoded[j+1] = decoded[j]
			j--
		}
		decoded[j+1] = g
	}
	m.decoded = decoded

	if m.obsOn {
		if len(decoded) > 0 {
			m.cDecoded.Inc()
		} else {
			// Classify the loss by the best outcome any in-range gateway
			// offered: interference beats a busy demodulator beats a
			// signal too weak everywhere.
			var anyCorrupted, anyUnlocked bool
			for g := 0; g < m.gateways; g++ {
				if tx.weak.get(g) {
					continue
				}
				if tx.corrupted.get(g) {
					anyCorrupted = true
				}
				if tx.unlocked.get(g) {
					anyUnlocked = true
				}
			}
			switch {
			case anyCorrupted:
				m.cLostCollision.Inc()
			case anyUnlocked:
				m.cLostBusy.Inc()
			default:
				m.cLostWeak.Inc()
			}
		}
	}

	if tx.pooled {
		tx.begun = false
		tx.PowerDBm = nil
		tx.poolNext = m.freeTx
		m.freeTx = tx
	}
	return decoded
}

// detach removes the transmission from the active set, its
// (channel, SF) bucket, its demodulator locks, and the viability count.
func (m *Medium) detach(tx *Transmission) {
	// Swap-remove from the flat active list and from the (channel, SF)
	// bucket; both positions are tracked on the transmission.
	if last := len(m.active) - 1; tx.activeIdx <= last {
		moved := m.active[last]
		m.active[tx.activeIdx] = moved
		moved.activeIdx = tx.activeIdx
		m.active[last] = nil
		m.active = m.active[:last]
	}
	key := bucketKey(tx.Channel, tx.SF)
	if bkt := m.buckets[key]; len(bkt) > 0 {
		last := len(bkt) - 1
		moved := bkt[last]
		bkt[tx.bucketIdx] = moved
		moved.bucketIdx = tx.bucketIdx
		bkt[last] = nil
		m.buckets[key] = bkt[:last]
	}
	// Release this transmission's demodulator locks and viability count.
	for g := 0; g < m.gateways; g++ {
		if !tx.weak.get(g) && !tx.unlocked.get(g) {
			m.locked[g]--
		}
	}
	if tx.anyViable {
		m.viable--
	}
}

// EndUplinkPart removes one cell's masked clone of a cross-shard
// transmission, appends its decoding gateways to dst in ascending
// index order, and reports whether any in-range gateway saw
// interference or demodulator exhaustion. The coordinator merges the
// per-cell results, orders them, and classifies the outcome once via
// CountUplinkOutcome.
func (m *Medium) EndUplinkPart(tx *Transmission, dst []int) (decoded []int, anyCorrupted, anyUnlocked bool) {
	m.detach(tx)
	for g := 0; g < m.gateways; g++ {
		if tx.weak.get(g) {
			continue
		}
		c, u := tx.corrupted.get(g), tx.unlocked.get(g)
		if c {
			anyCorrupted = true
		}
		if u {
			anyUnlocked = true
		}
		if !c && !u {
			dst = append(dst, g)
		}
	}
	if tx.pooled {
		tx.begun = false
		tx.PowerDBm = nil
		tx.poolNext = m.freeTx
		m.freeTx = tx
	}
	return dst, anyCorrupted, anyUnlocked
}

// CountUplink records one uplink in the observability counters without
// registering a transmission; cross-shard uplinks register per-cell
// clones via BeginUplinkPart, which does not count.
func (m *Medium) CountUplink() { m.cUplinks.Inc() }

// CountUplinkOutcome classifies one finished uplink from a merged
// cross-shard outcome, mirroring EndUplink's classification exactly.
func (m *Medium) CountUplinkOutcome(decoded int, anyCorrupted, anyUnlocked bool) {
	if !m.obsOn {
		return
	}
	if decoded > 0 {
		m.cDecoded.Inc()
		return
	}
	switch {
	case anyCorrupted:
		m.cLostCollision.Inc()
	case anyUnlocked:
		m.cLostBusy.Inc()
	default:
		m.cLostWeak.Inc()
	}
}

// ReserveDownlink atomically claims gateway gw's radio for [start, end):
// it returns false when an earlier reservation or transmission still
// holds that radio at start. The caller must later invoke BeginDownlink
// at the reserved start.
func (m *Medium) ReserveDownlink(gw int, start, end simtime.Time) bool {
	if m.reserved[gw] > start || m.gwTxEnd[gw] > start {
		return false
	}
	m.reserved[gw] = end
	return true
}

// BeginDownlink marks gateway gw as transmitting until the given
// instant. A single-radio gateway cannot receive while transmitting, so
// every uplink currently on the air loses that gateway (it may still be
// decoded elsewhere).
func (m *Medium) BeginDownlink(gw int, until simtime.Time) {
	if until > m.gwTxEnd[gw] {
		m.gwTxEnd[gw] = until
	}
	for _, a := range m.active {
		a.corrupted.set(gw)
	}
}

// ActiveUplinks returns the number of transmissions currently on the
// air that at least one gateway could still decode.
func (m *Medium) ActiveUplinks() int { return m.viable }
