package sim

import (
	"repro/internal/lora"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// Transmission is one uplink packet on the air, tracked from start to
// end for collision resolution at every gateway. The paper's system
// model allows "one or more gateways"; reception state is therefore kept
// per gateway and a packet is delivered if any gateway decodes it.
type Transmission struct {
	NodeID  int
	Channel int
	SF      lora.SpreadingFactor
	// PowerDBm is the received power at each gateway.
	PowerDBm []float64
	Start    simtime.Time
	End      simtime.Time

	corrupted []bool // lost to co-SF interference or gateway downlink
	weak      []bool // below receiver sensitivity
	unlocked  []bool // no demodulator free / gateway deaf at start

	anyViable bool // at least one gateway could still decode
}

// Medium arbitrates the shared radio channel as the gateways perceive
// it: capture-based co-SF collisions per channel and per gateway, a
// demodulator budget of omega concurrent uplinks per gateway, and
// half-duplex deafness while a gateway transmits ACKs.
type Medium struct {
	bw       lora.Bandwidth
	omega    int
	gateways int
	active   []*Transmission
	gwTxEnd  []simtime.Time // actual downlink in progress, per gateway
	reserved []simtime.Time // promised downlink slots, per gateway
}

// NewMedium returns a medium for the given channel bandwidth, gateway
// demodulator count omega, and number of gateways (clamped to >= 1).
func NewMedium(bw lora.Bandwidth, omega int, gateways int) *Medium {
	if gateways < 1 {
		gateways = 1
	}
	return &Medium{
		bw:       bw,
		omega:    omega,
		gateways: gateways,
		gwTxEnd:  make([]simtime.Time, gateways),
		reserved: make([]simtime.Time, gateways),
	}
}

// Gateways returns the number of gateways.
func (m *Medium) Gateways() int { return m.gateways }

// BeginUplink registers a transmission starting now. Collision state is
// updated immediately for the new signal and every overlapping one, at
// every gateway. tx.PowerDBm must have one entry per gateway.
func (m *Medium) BeginUplink(tx *Transmission) {
	tx.weak = make([]bool, m.gateways)
	tx.corrupted = make([]bool, m.gateways)
	tx.unlocked = make([]bool, m.gateways)

	sens := lora.Sensitivity(tx.SF, m.bw)
	for g := 0; g < m.gateways; g++ {
		if tx.PowerDBm[g] < sens {
			// Below sensitivity at this gateway: never decodable there and
			// too faint to matter as interference.
			tx.weak[g] = true
			continue
		}
		// Half-duplex gateway: a signal arriving while the gateway
		// transmits cannot be preamble-locked.
		if m.gwTxEnd[g] > tx.Start {
			tx.unlocked[g] = true
		}
		// Demodulator budget: omega concurrent locked uplinks per gateway.
		locked := 0
		for _, a := range m.active {
			if !a.weak[g] && !a.unlocked[g] {
				locked++
			}
		}
		if locked >= m.omega {
			tx.unlocked[g] = true
		}
		// Co-channel, co-SF capture at this gateway; different SFs are
		// quasi-orthogonal.
		for _, a := range m.active {
			if a.Channel != tx.Channel || a.SF != tx.SF || a.weak[g] {
				continue
			}
			if !radio.Captures(tx.PowerDBm[g], []float64{a.PowerDBm[g]}) {
				tx.corrupted[g] = true
			}
			if !radio.Captures(a.PowerDBm[g], []float64{tx.PowerDBm[g]}) {
				a.corrupted[g] = true
			}
		}
	}
	if m.viableAnywhere(tx) {
		tx.anyViable = true
	}
	m.active = append(m.active, tx)
}

func (m *Medium) viableAnywhere(tx *Transmission) bool {
	for g := 0; g < m.gateways; g++ {
		if !tx.weak[g] {
			return true
		}
	}
	return false
}

// EndUplink removes the transmission and returns the gateways that
// decoded it, strongest signal first (empty when the packet was lost
// everywhere). Any of them can serve the ACK; callers fall back down
// the list when a gateway's downlink radio is booked.
func (m *Medium) EndUplink(tx *Transmission) []int {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	if tx.weak == nil {
		// Never begun (constructed by hand in tests): per-gateway state is
		// absent; treat as a clean single-gateway reception.
		return []int{0}
	}
	var decoded []int
	for g := 0; g < m.gateways; g++ {
		if tx.weak[g] || tx.corrupted[g] || tx.unlocked[g] {
			continue
		}
		decoded = append(decoded, g)
	}
	// Insertion sort by descending power (the list has at most a few
	// entries).
	for i := 1; i < len(decoded); i++ {
		g := decoded[i]
		j := i - 1
		for j >= 0 && tx.PowerDBm[decoded[j]] < tx.PowerDBm[g] {
			decoded[j+1] = decoded[j]
			j--
		}
		decoded[j+1] = g
	}
	return decoded
}

// ReserveDownlink atomically claims gateway gw's radio for [start, end):
// it returns false when an earlier reservation or transmission still
// holds that radio at start. The caller must later invoke BeginDownlink
// at the reserved start.
func (m *Medium) ReserveDownlink(gw int, start, end simtime.Time) bool {
	if m.reserved[gw] > start || m.gwTxEnd[gw] > start {
		return false
	}
	m.reserved[gw] = end
	return true
}

// BeginDownlink marks gateway gw as transmitting until the given
// instant. A single-radio gateway cannot receive while transmitting, so
// every uplink currently on the air loses that gateway (it may still be
// decoded elsewhere).
func (m *Medium) BeginDownlink(gw int, until simtime.Time) {
	if until > m.gwTxEnd[gw] {
		m.gwTxEnd[gw] = until
	}
	for _, a := range m.active {
		a.corrupted[gw] = true
	}
}

// ActiveUplinks returns the number of transmissions currently on the
// air that at least one gateway could still decode.
func (m *Medium) ActiveUplinks() int {
	n := 0
	for _, a := range m.active {
		if a.anyViable {
			n++
		}
	}
	return n
}
