// Package sim is the discrete-event LoRaWAN network simulator that
// replaces the paper's NS-3 setup: class-A nodes with retransmissions,
// a half-duplex multi-demodulator gateway, capture-based collision
// resolution, lazy per-node energy integration against the solar
// substrate, and the gateway-side degradation pipeline. Multi-year runs
// (the paper simulates up to 15 years) are the design target.
package sim

import (
	"repro/internal/simtime"
)

// Event is one schedulable action. Implementations that are pooled
// pointer types make Schedule allocation-free: storing a pointer (or a
// func value) in the interface does not allocate, and the engine's
// hand-rolled heap never boxes entries.
type Event interface {
	Fire()
}

// eventFunc adapts a plain closure to Event for callers that don't
// need pooling (tests, one-shot setup events).
type eventFunc func()

func (f eventFunc) Fire() { f() }

// entry is one queued event.
type entry struct {
	at  simtime.Time
	seq uint64 // schedule order, to break timestamp ties deterministically
	ev  Event
}

// Calendar-ring staging (DESIGN.md §5g). Most queued events are
// far-future timers — generate periods, window-deferred attempts,
// daily/obs ticks — that sit in the priority queue for simulated hours
// while every push and pop sifts past them. The engine therefore stages
// any event scheduled beyond the current minute in a ring of per-minute
// buckets and bulk-flushes a bucket into the heap only when the drain
// frontier reaches its minute. The heap holds just the sub-minute
// traffic (airtime ends, receive windows, backoffs) plus the flushed
// current minute, so its depth — and the cost of pop, the engine's
// dominant operation — stays O(log active-instant) instead of
// O(log everything-pending). Order is untouched: buckets are flushed
// wholesale before any of their instants can fire, and the heap alone
// decides execution order by the same strict (at, seq) total order, so
// the pop sequence is identical to a pure-heap engine, event for event.
const (
	// engineRingMinutes is the staging span: one bucket per simulated
	// minute, power of two. 2048 minutes (~34 h) covers every periodic
	// reschedule shape the simulator produces — sampling periods,
	// window deferrals, obs sampling, the daily tick — with room to
	// spare; anything farther (monthly ticks, multi-day brownouts)
	// falls back to the heap, where rare events cost nothing extra.
	engineRingMinutes = 2048
	engineRingMask    = engineRingMinutes - 1
	engineMinute      = simtime.Time(simtime.Minute)
)

// Engine is a deterministic discrete-event executor. Events scheduled
// for the same instant run in schedule order — the (at, seq) contract —
// regardless of whether they are typed pooled events or closures.
// Engine is not safe for concurrent use.
type Engine struct {
	now      simtime.Time
	pq       []entry // 4-ary min-heap over (at, seq)
	seq      uint64
	executed uint64
	stop     bool

	// ring stages far-future events in per-minute buckets
	// (slot = minute & engineRingMask); nil until the first staged
	// event, so trivial engines never pay for it.
	ring [][]entry
	// ringSlab is the carve source for new buckets' initial capacity:
	// chunks are allocated on demand and sliced off per first-touched
	// bucket, so an engine pays for staging capacity proportional to the
	// minutes it actually stages into, not the whole ring span.
	ringSlab []entry
	// ringMin is the smallest minute index whose bucket may still hold
	// entries: buckets below it have been flushed, so late arrivals for
	// those minutes go straight to the heap.
	ringMin int64
	// ringNext is the minute of the earliest staged entry; only
	// meaningful while ringCount > 0.
	ringNext  int64
	ringCount int
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Schedule enqueues fn at the given instant; past instants are clamped
// to now (the event still runs, immediately after current-time events).
func (e *Engine) Schedule(at simtime.Time, fn func()) {
	e.ScheduleEvent(at, eventFunc(fn))
}

// ScheduleAfter enqueues fn after the given delay.
func (e *Engine) ScheduleAfter(d simtime.Duration, fn func()) {
	e.Schedule(e.now.Add(d), fn)
}

// ScheduleEvent enqueues a typed event at the given instant under the
// same clamping and tie-break rules as Schedule. It performs no
// allocation beyond amortized heap/bucket growth. Events beyond the
// current minute are staged in the calendar ring; the rest go to the
// heap directly.
func (e *Engine) ScheduleEvent(at simtime.Time, ev Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	en := entry{at: at, seq: e.seq, ev: ev}
	m := int64(at / engineMinute)
	if nowMin := int64(e.now / engineMinute); m > nowMin {
		if e.ringCount == 0 && e.ringMin < nowMin {
			// Re-anchor an empty ring so a long heap-only stretch cannot
			// push the staging window out of reach.
			e.ringMin = nowMin
		}
		if m >= e.ringMin && m-e.ringMin < engineRingMinutes {
			e.ringPush(m, en)
			return
		}
	}
	e.push(en)
}

// engineRingBucketCap is the initial per-bucket capacity carved from the
// ring's backing slab. Staged wakes spread over the ring's minutes, so
// most buckets hold a handful of entries; buckets that outgrow their
// slab chunk fall back to ordinary append growth. engineRingChunkBuckets
// is how many buckets' worth of capacity one slab chunk provides: small
// engines (few staged minutes) allocate one ~32 KB chunk instead of the
// full 2048-bucket slab (~4 MB), while a fully exercised ring still
// settles at the same steady state in ~128 allocations, once, total.
const (
	engineRingBucketCap    = 64
	engineRingChunkBuckets = 16
)

// ringPush stages an entry in its minute bucket.
func (e *Engine) ringPush(m int64, en entry) {
	if e.ring == nil {
		e.ring = make([][]entry, engineRingMinutes)
	}
	slot := m & engineRingMask
	if e.ring[slot] == nil {
		// First touch of this slot: carve its initial capacity from the
		// current slab chunk (flushed buckets keep their capacity via
		// b[:0], so each slot carves at most once).
		if len(e.ringSlab) == 0 {
			e.ringSlab = make([]entry, engineRingChunkBuckets*engineRingBucketCap)
		}
		e.ring[slot] = e.ringSlab[0:0:engineRingBucketCap]
		e.ringSlab = e.ringSlab[engineRingBucketCap:]
	}
	e.ring[slot] = append(e.ring[slot], en)
	if e.ringCount == 0 || m < e.ringNext {
		e.ringNext = m
	}
	e.ringCount++
}

// ensureHead flushes staged buckets until the heap head is the true
// global minimum: while the earliest staged minute could precede the
// heap head, its whole bucket moves to the heap (which then orders the
// merged entries by (at, seq) exactly as a pure-heap engine would).
// Every head inspection — pop sites, NextAt — goes through here.
func (e *Engine) ensureHead() {
	for e.ringCount > 0 {
		if len(e.pq) > 0 && e.pq[0].at < simtime.Time(e.ringNext)*engineMinute {
			return
		}
		e.flushBucket()
	}
}

// flushBucket moves the earliest staged bucket into the heap and
// advances the ring frontier past it.
func (e *Engine) flushBucket() {
	slot := e.ringNext & engineRingMask
	b := e.ring[slot]
	for _, en := range b {
		e.push(en)
	}
	e.ringCount -= len(b)
	clear(b) // release Event references held by the retained capacity
	e.ring[slot] = b[:0]
	e.ringMin = e.ringNext + 1
	if e.ringCount == 0 {
		return
	}
	// The invariant that every staged minute lies in
	// [ringMin, ringMin+engineRingMinutes) bounds this scan.
	for m := e.ringMin; ; m++ {
		if len(e.ring[m&engineRingMask]) > 0 {
			e.ringNext = m
			return
		}
	}
}

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stop = true }

// Pending returns the number of queued events (heap plus staged ring
// buckets).
func (e *Engine) Pending() int { return len(e.pq) + e.ringCount }

// Scheduled returns how many events were ever enqueued.
func (e *Engine) Scheduled() uint64 { return e.seq }

// Executed returns how many events have fired.
func (e *Engine) Executed() uint64 { return e.executed }

// Step executes the next event; it reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	e.ensureHead()
	if len(e.pq) == 0 {
		return false
	}
	en := e.pop()
	e.now = en.at
	e.executed++
	en.ev.Fire()
	return true
}

// Run executes events until the queue drains, the horizon passes, or
// Stop is called. The clock ends at min(horizon, last event) — or at
// the horizon exactly if events remain beyond it.
func (e *Engine) Run(horizon simtime.Time) {
	e.stop = false
	for !e.stop {
		e.ensureHead()
		if len(e.pq) == 0 || e.pq[0].at > horizon {
			break
		}
		en := e.pop()
		e.now = en.at
		e.executed++
		en.ev.Fire()
	}
	if !e.stop && e.now < horizon {
		e.now = horizon
	}
}

// less orders the heap by (at, seq).
func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push and pop are a hand-rolled 4-ary heap: container/heap boxes
// every element into an interface, which alone accounted for one
// allocation per scheduled event, and the wider fan-out halves the
// sift-down depth of pop, the engine's dominant operation. The heap
// shape is irrelevant to determinism: (at, seq) is a strict total
// order, so any correct min-heap pops the exact same event sequence
// (TestEnginePopOrderMatchesReferenceHeap cross-checks against the
// previous binary layout).
// Both sifts move a hole instead of swapping: the displaced entry is
// held in a register and written exactly once at its final position,
// halving the entry copies per level.
func (e *Engine) push(en entry) {
	e.pq = append(e.pq, en)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !en.less(e.pq[parent]) {
			break
		}
		e.pq[i] = e.pq[parent]
		i = parent
	}
	e.pq[i] = en
}

func (e *Engine) pop() entry {
	top := e.pq[0]
	last := len(e.pq) - 1
	en := e.pq[last]
	e.pq[last] = entry{} // release the Event for GC
	e.pq = e.pq[:last]
	if last == 0 {
		return top
	}
	// Sift the displaced tail entry down across up to four children per
	// level.
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		least := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if e.pq[c].less(e.pq[least]) {
				least = c
			}
		}
		if !e.pq[least].less(en) {
			break
		}
		e.pq[i] = e.pq[least]
		i = least
	}
	e.pq[i] = en
	return top
}

// NextAt reports the timestamp of the earliest queued event, or false
// when the queue is empty. The sharded runner uses it to compute the
// conservative lookahead bound for each phase.
func (e *Engine) NextAt() (simtime.Time, bool) {
	e.ensureHead()
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// RunUntil executes events strictly before limit, honoring a Stop()
// issued by an event (unlike Run it does not clear the flag, so a
// simulation-wide halt survives across phases). The clock is left at
// the last executed event: the next phase's events re-advance it, and
// an intermediate jump to limit-1ns would be observable through Now()
// in event handlers.
func (e *Engine) RunUntil(limit simtime.Time) {
	for !e.stop {
		e.ensureHead()
		if len(e.pq) == 0 || e.pq[0].at >= limit {
			return
		}
		en := e.pop()
		e.now = en.at
		e.executed++
		en.ev.Fire()
	}
}

// RunAt advances the clock to t and executes every event with at <= t,
// including same-instant cascades scheduled while draining (zero
// lookahead within one engine). Like RunUntil it honors Stop() without
// clearing it.
func (e *Engine) RunAt(t simtime.Time) {
	if e.now < t {
		e.now = t
	}
	for !e.stop {
		e.ensureHead()
		if len(e.pq) == 0 || e.pq[0].at > t {
			return
		}
		en := e.pop()
		e.now = en.at
		e.executed++
		en.ev.Fire()
	}
}

// Stopped reports whether Stop() has been called since the last Run.
func (e *Engine) Stopped() bool { return e.stop }
