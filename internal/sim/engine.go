// Package sim is the discrete-event LoRaWAN network simulator that
// replaces the paper's NS-3 setup: class-A nodes with retransmissions,
// a half-duplex multi-demodulator gateway, capture-based collision
// resolution, lazy per-node energy integration against the solar
// substrate, and the gateway-side degradation pipeline. Multi-year runs
// (the paper simulates up to 15 years) are the design target.
package sim

import (
	"container/heap"

	"repro/internal/simtime"
)

// event is one scheduled callback.
type event struct {
	at  simtime.Time
	seq uint64 // schedule order, to break timestamp ties deterministically
	fn  func()
}

// eventHeap is a min-heap over (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor. Events scheduled
// for the same instant run in schedule order. Engine is not safe for
// concurrent use.
type Engine struct {
	now  simtime.Time
	pq   eventHeap
	seq  uint64
	stop bool
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Schedule enqueues fn at the given instant; past instants are clamped
// to now (the event still runs, immediately after current-time events).
func (e *Engine) Schedule(at simtime.Time, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAfter enqueues fn after the given delay.
func (e *Engine) ScheduleAfter(d simtime.Duration, fn func()) {
	e.Schedule(e.now.Add(d), fn)
}

// Stop makes Run return after the current event.
func (e *Engine) Stop() { e.stop = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Step executes the next event; it reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains, the horizon passes, or
// Stop is called. The clock ends at min(horizon, last event) — or at
// the horizon exactly if events remain beyond it.
func (e *Engine) Run(horizon simtime.Time) {
	e.stop = false
	for !e.stop && len(e.pq) > 0 && e.pq[0].at <= horizon {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stop && e.now < horizon {
		e.now = horizon
	}
}
