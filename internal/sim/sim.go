package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/battery"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/mac"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/netserver"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// Protocol timing constants (LoRaWAN class A).
const (
	// rx1Delay separates uplink end from the first receive window.
	rx1Delay = simtime.Second
	// rxWindowsSpan is how long a node listens after an uplink before
	// concluding no ACK will come (RX1 at +1 s, RX2 at +2 s plus window).
	rxWindowsSpan = 3 * simtime.Second
	// rxWindowSymbols approximates the open receive windows' listening
	// time in preamble symbols when no downlink arrives.
	rxWindowSymbols = 24
	// maxReportsPerPacket bounds the SoC transition reports piggy-backed
	// on one uplink.
	maxReportsPerPacket = 8
	// joinPayloadBytes is the LoRaWAN join-request size charged for the
	// rejoin exchange after a brownout.
	joinPayloadBytes = 23
)

// Hooks let experiments observe protocol internals without touching the
// metric pipeline. All hooks are optional.
type Hooks struct {
	// OnDecision fires for every generated packet after the MAC decided.
	OnDecision func(nodeID int, genAt simtime.Time, windows int, window int, drop bool)
	// OnPacketDone fires when a packet's fate is settled.
	OnPacketDone func(nodeID int, delivered bool, attempts int, window int)
	// OnMonth fires every 30 simulated days with the node set, letting
	// experiments sample degradation trajectories (Fig. 2/7).
	OnMonth func(now simtime.Time, nodes []*Node)
	// Obs receives counters, per-node timelines, and fault events. Nil
	// disables observability at zero hot-path cost.
	Obs *obs.Recorder
}

// NodeResult is one node's final accounting.
type NodeResult struct {
	ID          int
	DistanceM   float64
	SF          lora.SpreadingFactor
	Period      simtime.Duration
	CapacityJ   float64
	Stats       *metrics.NodeStats
	Degradation battery.Breakdown
	FinalSoC    float64
}

// Result is the outcome of one simulation run.
type Result struct {
	Label   string
	Elapsed simtime.Duration
	Nodes   []NodeResult
	// MonthlyMaxDeg records the network's maximum ground-truth capacity
	// fade at the end of every 30-day month (Fig. 7).
	MonthlyMaxDeg []float64
	// LifespanDays is the network battery lifespan: days until the first
	// battery reached EoL (0 when the run ended before that).
	LifespanDays float64
}

// Simulation wires a scenario together and runs it.
type Simulation struct {
	cfg    config.Scenario
	hooks  Hooks
	med    *Medium // the single-lane medium; sharded runs build per-cell media
	server *netserver.Server
	nodes  []*Node
	trace  *energy.YearTrace // shared weather trace; lanes batch per-day fills off it
	util   utility.Function
	gwPos  []radio.Position
	phy    *lora.Table  // memoized airtime/TX-energy per (SF, payload)
	plan   *faults.Plan // nil unless the scenario injects faults

	monthly      []float64
	lifespanDays float64

	// Execution lanes, built per run by setupLanes. shards are the
	// worker lanes (cells); coord owns global ticks and border nodes
	// (identical to shards[0] in single-lane runs); lanes is both for
	// iteration. gwShard maps gateway index to worker lane (nil in
	// single-lane runs).
	shards        []*shard
	coord         *shard
	lanes         []*shard
	gwShard       []int
	shardsUsed    int
	stopped       bool
	stopAt        simtime.Time
	borderDecoded []int // coordinator's merge buffer for border uplinks

	// Observability; obs is nil (and the counters no-ops) unless
	// Hooks.Obs was set.
	obs              *obs.Recorder
	cBrownouts       *obs.Counter
	cLostOutage      *obs.Counter
	cDroppedBackhaul *obs.Counter
	cDuplicated      *obs.Counter
	cDownlinkDropped *obs.Counter
}

// New builds a simulation from a validated scenario.
func New(cfg config.Scenario, hooks Hooks) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	trace, err := energy.NewYearTrace(cfg.Solar)
	if err != nil {
		return nil, err
	}
	server, err := netserver.New(cfg.BatteryModel, cfg.BatteryTempC, cfg.DegradationInterval)
	if err != nil {
		return nil, err
	}
	// All nodes share bandwidth, coding rate, preamble and TX power; only
	// SF and payload vary per attempt, so one lookup table covers every
	// airtime/energy query of the run. attemptSpan's 64-byte worst case
	// bounds the payload range alongside data + piggy-backed reports.
	base := lora.DefaultParams()
	base.TxPowerDBm = cfg.TxPowerDBm
	maxPayload := max(cfg.PayloadBytes+battery.ReportSize*maxReportsPerPacket,
		cfg.AckPayloadBytes, 64)
	phy, err := lora.NewTable(base, maxPayload)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:    cfg,
		hooks:  hooks,
		med:    NewMedium(lora.BW125, cfg.Demodulators, cfg.Gateways),
		server: server,
		trace:  trace,
		util:   utility.Linear{},
		gwPos:  radio.GatewayLayout(cfg.Gateways, cfg.MaxDistanceM),
		phy:    phy,
		obs:    hooks.Obs,
	}
	s.obs.SetupNodes(cfg.Nodes)
	s.med.SetObserver(s.obs)
	s.server.SetObserver(s.obs)
	if s.obs.Enabled() {
		s.cBrownouts = s.obs.Counter("sim.brownouts")
		s.cLostOutage = s.obs.Counter("sim.uplinks_lost_outage")
		s.cDroppedBackhaul = s.obs.Counter("sim.uplinks_dropped_backhaul")
		s.cDuplicated = s.obs.Counter("sim.uplinks_duplicated")
		s.cDownlinkDropped = s.obs.Counter("sim.downlinks_dropped")
	}
	if cfg.Faults.Active() {
		if s.plan, err = faults.NewPlan(cfg.Faults, cfg.Seed, cfg.Nodes); err != nil {
			return nil, err
		}
	}
	// Construction slabs: the per-node EWMA profiles (~13 KB each) and
	// the solar sources' rolling day caches (~11.5 KB each) all live
	// exactly as long as the simulation, so they are carved out of two
	// contiguous banks instead of thousands of individual allocations —
	// same bytes, far less allocator and GC traffic at construction.
	var ewmaBank []energy.DiurnalEWMA
	if cfg.Forecast != config.ForecastPerfect && cfg.Forecast != config.ForecastNoisy {
		ewmaBank = energy.NewDiurnalEWMABank(0.3, cfg.Nodes)
	}
	minuteSlab := make([]float64, cfg.Nodes*minutesPerDay)
	for id := 0; id < cfg.Nodes; id++ {
		var ew *energy.DiurnalEWMA
		if ewmaBank != nil {
			ew = &ewmaBank[id]
		}
		lo, hi := id*minutesPerDay, (id+1)*minutesPerDay
		n, err := s.buildNode(id, trace, ew, minuteSlab[lo:hi:hi])
		if err != nil {
			return nil, fmt.Errorf("sim: node %d: %w", id, err)
		}
		s.nodes = append(s.nodes, n)
		server.Register(id, cfg.InitialSoC)
	}
	attachCore(s.nodes)
	return s, nil
}

// buildNode constructs one node: placement, SF assignment, battery
// sizing, energy source, forecaster, and protocol instance. ewma (may
// be nil) and minuteBuf are this node's views into the construction
// slabs New carved out; a nil ewma falls back to a solo allocation.
func (s *Simulation) buildNode(id int, trace *energy.YearTrace, ewma *energy.DiurnalEWMA, minuteBuf []float64) (*Node, error) {
	cfg := s.cfg
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)+0x4ead))

	// Placement: uniform over the disk, resampled until the link budget
	// closes to at least one gateway (the paper assumes every node is
	// reachable).
	var pos radio.Position
	var sf lora.SpreadingFactor
	var rxPerGW []float64
	for try := 0; ; try++ {
		r := cfg.MaxDistanceM * math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pos = radio.Position{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
		rxPerGW = s.rxPowers(pos, id)
		if cfg.FixedSF != 0 {
			sf = cfg.FixedSF
			break
		}
		var ok bool
		if sf, ok = radio.AssignSF(mathx.MaxOf(rxPerGW), cfg.SFMarginDB, lora.BW125); ok {
			break
		}
		if try >= 100 {
			// Pathological shadowing draw: pin the node near the gateway.
			pos = radio.Position{X: 100}
			rxPerGW = s.rxPowers(pos, id)
			sf, _ = radio.AssignSF(mathx.MaxOf(rxPerGW), cfg.SFMarginDB, lora.BW125)
			break
		}
	}

	params := lora.DefaultParams()
	params.SF = sf
	params.TxPowerDBm = cfg.TxPowerDBm
	if err := params.Validate(); err != nil {
		return nil, err
	}

	// Sampling period, snapped to whole forecast windows.
	span := int64(cfg.PeriodMax-cfg.PeriodMin) + 1
	period := cfg.PeriodMin + simtime.Duration(rng.Int64N(span))
	windows := int(period / cfg.ForecastWindow)
	period = simtime.Duration(windows) * cfg.ForecastWindow

	// Reference energies: one attempt carrying the base payload plus a
	// typical two-report piggyback.
	refPayload := cfg.PayloadBytes + 2*battery.ReportSize
	txE := params.TxEnergy(refPayload)
	rxE := lora.RxPower() * float64(rxWindowSymbols) * params.SymbolTime()
	ackAirtime := params.Airtime(cfg.AckPayloadBytes)

	// Battery sizing: 24 h of autonomous operation (Sec. II-C) unless
	// the scenario pins a capacity.
	capacity := cfg.BatteryCapacityJ
	if capacity == 0 {
		perDay := simtime.Day.Seconds() / period.Seconds()
		capacity = cfg.SleepPowerW*simtime.Day.Seconds() + perDay*cfg.BatterySizingAttempts*(txE+rxE)
	}
	var store battery.Store
	batt, err := battery.New(cfg.BatteryModel, capacity, cfg.InitialSoC, cfg.BatteryTempC)
	if err != nil {
		return nil, err
	}
	store = batt
	if cfg.SupercapJ > 0 {
		if store, err = battery.NewHybrid(batt, cfg.SupercapJ, cfg.SupercapLeakW); err != nil {
			return nil, err
		}
	}

	// Panel sizing: peak generation funds PanelPeakMultiple transmissions
	// per forecast window (Sec. II-C), floored so that a day of sun also
	// covers the always-on sleep draw — low-SF nodes transmit so cheaply
	// that the paper's TX-based rule alone would starve them.
	peakW := max(energy.PeakPowerFor(txE, cfg.ForecastWindow, cfg.PanelPeakMultiple), 10*cfg.SleepPowerW)
	src := trace.NodeSource(id, peakW, cfg.SolarVariation)
	if minuteBuf != nil {
		// Attach before any priming so the source's lazy day cache lands
		// in the slab rather than allocating its own backing store.
		if ms, ok := src.(interface{ SetMinuteBuf([]float64) }); ok {
			ms.SetMinuteBuf(minuteBuf)
		}
	}

	var fc energy.Forecaster
	switch cfg.Forecast {
	case config.ForecastPerfect:
		fc = &energy.Perfect{Source: src}
	case config.ForecastNoisy:
		fc = energy.NewNoisy(src, cfg.ForecastNoise, cfg.Seed^uint64(id)*0x9e37)
	default:
		if ewma == nil {
			ewma = energy.NewDiurnalEWMA(0.3)
		}
		ewma.Prime(src, cfg.ForecastPrimeDays)
		fc = ewma
	}

	var proto mac.Protocol
	switch cfg.Protocol {
	case config.ProtocolLoRaWAN:
		proto = mac.ALOHA{}
	case config.ProtocolThetaOnly:
		if proto, err = mac.NewThetaOnly(cfg.Theta); err != nil {
			return nil, err
		}
	default:
		if proto, err = mac.NewBLA(mac.BLAConfig{
			Theta:                cfg.Theta,
			WeightB:              cfg.WeightB,
			Beta:                 cfg.Beta,
			Utility:              cfg.Utility,
			Forecaster:           fc,
			Window:               cfg.ForecastWindow,
			MaxWindows:           int(cfg.PeriodMax / cfg.ForecastWindow),
			SingleTxEnergyJ:      txE,
			MaxAttempts:          cfg.MaxAttempts,
			DisableRetxHistory:   cfg.DisableRetxHistory,
			DisableDecisionTable: cfg.DisableDecisionTable,
			WuTTL:                cfg.Faults.WuTTL,
			WuStaleFallback:      cfg.Faults.WuStaleFallback,
			Obs:                  s.obs.Node(id),
		}); err != nil {
			return nil, err
		}
	}
	store.SetChargeLimit(proto.Theta())

	// The solar substrate answers per-minute queries O(1) from its day
	// cache; the integrator uses that path directly when available, and
	// feeds whole-minute observations straight into the EWMA profile slot.
	srcMin, _ := src.(energy.MinuteSource)
	fcEWMA, _ := fc.(*energy.DiurnalEWMA)

	return &Node{
		ID:         id,
		Pos:        pos,
		rxPowerDBm: rxPerGW,
		DistanceM:  pos.DistanceTo(radio.Position{}),
		Params:     params,
		Period:     period,
		Windows:    windows,
		CapacityJ:  capacity,
		Proto:      proto,
		Batt:       store,
		Stats:      metrics.NewNodeStats(),
		src:        src,
		srcMin:     srcMin,
		fc:         fc,
		fcEWMA:     fcEWMA,
		rng:        rng,
		sleepW:     cfg.SleepPowerW,
		rxEnergyJ:  rxE,
		ackAirtime: ackAirtime,
		span:       params.Airtime(64) + rxWindowsSpan + 3*simtime.Second,
		obsTL:      s.obs.Node(id),
	}, nil
}

// Nodes exposes the node set for experiment probes.
func (s *Simulation) Nodes() []*Node { return s.nodes }

// ShardsUsed reports the effective shard count of the last run (for
// invocation manifests); zero before the first run.
func (s *Simulation) ShardsUsed() int { return s.shardsUsed }

// Run executes the scenario single-lane (the legacy engine) and
// returns the result.
func (s *Simulation) Run() (*Result, error) {
	return s.RunOpt(RunOptions{Shards: 1})
}

// RunOpt executes the scenario with the given execution options. The
// result is byte-identical at every (workers, shards) combination.
func (s *Simulation) RunOpt(opt RunOptions) (*Result, error) {
	cfg := s.cfg
	horizon := cfg.Duration
	if cfg.RunToEoL {
		horizon = cfg.MaxDuration
	}

	s.setupLanes(s.resolveShards(opt))

	for _, n := range s.nodes {
		spread := cfg.StartSpread
		if spread == 0 {
			spread = n.Period
		}
		first := simtime.Time(n.rng.Int64N(int64(spread)))
		n.owner.schedule(first, evGenerate, n, nil, nil, nil, 0, 0)
		if at, ok := s.plan.NextBrownout(n.ID, 0); ok {
			n.owner.schedule(at, evBrownout, n, nil, nil, nil, 0, 0)
		}
	}
	s.coord.schedule(0, evDaily, nil, nil, nil, nil, 0, 0)
	s.coord.schedule(simtime.Time(30*simtime.Day), evMonthly, nil, nil, nil, nil, 0, 0)
	if s.obs.Enabled() {
		s.coord.schedule(0, evObsSample, nil, nil, nil, nil, 0, 0)
	}

	if len(s.lanes) == 1 {
		s.lanes[0].eng.Run(simtime.Time(horizon))
	} else {
		s.runSharded(simtime.Time(horizon), runner.Workers(opt.Workers))
	}

	now := simtime.Time(horizon)
	if s.stopped {
		now = s.stopAt
	}
	res := &Result{
		Label:         cfg.ProtocolLabel(),
		Elapsed:       simtime.Duration(now),
		MonthlyMaxDeg: s.monthly,
		LifespanDays:  s.lifespanDays,
	}
	for _, n := range s.nodes {
		n.integrate(now)
		if bla, ok := n.Proto.(*mac.BLA); ok {
			n.Stats.StaleWuDecisions = bla.StaleDecisions()
		}
		res.Nodes = append(res.Nodes, NodeResult{
			ID:          n.ID,
			DistanceM:   n.DistanceM,
			SF:          n.Params.SF,
			Period:      n.Period,
			CapacityJ:   n.CapacityJ,
			Stats:       n.Stats,
			Degradation: n.Batt.Damage(now),
			FinalSoC:    n.Batt.SoC(),
		})
	}
	if s.obs.Enabled() {
		// The schedule/execute totals are summed across lanes: the event
		// multiset is shard-invariant, so the sums match the single-heap
		// counters exactly.
		var scheduled, executed uint64
		for _, ln := range s.lanes {
			scheduled += ln.eng.Scheduled()
			executed += ln.eng.Executed()
		}
		s.obs.Counter("engine.events_scheduled").Store(int64(scheduled))
		s.obs.Counter("engine.events_executed").Store(int64(executed))
	}
	return res, nil
}

// obsSample records every node's timeline row at the current instant and
// reschedules itself. Sampling is read-only — Damage and SoC are pure
// accessors and no energy integration runs — so enabling observability
// cannot perturb the simulation: RNG streams, event order, and all
// results stay byte-identical to an unobserved run.
//
// Scheduling rule (DESIGN.md §5e): obs sampling lives on the
// coordinator lane, always — the t=0 seed in RunOpt and the reschedule
// below both target s.coord explicitly, so the sample cadence is
// k·SampleEvery at any shard count and the worker lanes never carry
// sampling events. (sh == s.coord whenever this handler runs; the
// explicit target keeps that an invariant rather than an accident.)
// The per-interval wakeups do not defeat the nodes' idle-span skip:
// they wake only the coordinator, never a node — no integration, no
// per-node events.
func (sh *shard) obsSample() {
	s := sh.s
	now := sh.eng.Now()
	for _, n := range s.nodes {
		bd := n.Batt.Damage(now)
		n.obsTL.Record(now, n.Batt.SoC(), bd.Calendar, bd.Cycle, bd.Total, len(n.pendingTrans))
	}
	s.coord.schedule(now.Add(s.obs.SampleEvery()), evObsSample, nil, nil, nil, nil, 0, 0)
}

// dailyTick runs the gateway's daily degradation recomputation and the
// EoL stop condition, on the coordinator lane.
func (sh *shard) dailyTick() {
	s := sh.s
	now := sh.eng.Now()
	// An offline gateway misses its recompute slot; the grid-aligned
	// schedule catches up on the first tick after the outage ends.
	if !s.plan.GatewayDown(now) {
		s.server.RecomputeIfDue(now)
	}
	if s.cfg.RunToEoL && s.maxGroundTruthDeg(now) >= s.cfg.BatteryModel.EoLThreshold {
		s.lifespanDays = now.Days()
		s.halt(now)
		return
	}
	sh.schedule(now.Add(simtime.Day), evDaily, nil, nil, nil, nil, 0, 0)
}

func (sh *shard) monthlyTick() {
	s := sh.s
	now := sh.eng.Now()
	s.monthly = append(s.monthly, s.maxGroundTruthDeg(now))
	if s.hooks.OnMonth != nil {
		s.hooks.OnMonth(now, s.nodes)
	}
	sh.schedule(now.Add(30*simtime.Day), evMonthly, nil, nil, nil, nil, 0, 0)
}

func (s *Simulation) maxGroundTruthDeg(now simtime.Time) float64 {
	var maxDeg float64
	for _, n := range s.nodes {
		maxDeg = math.Max(maxDeg, n.Batt.Degradation(now))
	}
	return maxDeg
}

// generate handles one packet generation at a node: abort any stale
// in-flight packet, run the MAC decision, and schedule the transmission
// attempt and the next generation. It runs on the node's owner lane,
// like every other per-node handler.
func (sh *shard) generate(n *Node) {
	s := sh.s
	now := sh.eng.Now()
	n.integrate(now)

	if n.pkt != nil && !n.pkt.finished {
		sh.finish(n, n.pkt, false, now)
	}

	n.Stats.Generated++
	dec := n.Proto.DecideTx(now, n.Windows, n.Batt.Stored())
	n.obsTL.Decision(dec.Window, dec.Drop)
	if s.hooks.OnDecision != nil {
		s.hooks.OnDecision(n.ID, now, n.Windows, dec.Window, dec.Drop)
	}

	if dec.Drop {
		n.Stats.NeverSent++
		n.Stats.Dropped++
		n.Stats.LatencyPenalized += n.Period
		if s.hooks.OnPacketDone != nil {
			s.hooks.OnPacketDone(n.ID, false, 0, -1)
		}
	} else {
		window := mathx.ClampInt(dec.Window, 0, n.Windows-1)
		pkt := sh.newPacket()
		pkt.genAt = now
		pkt.deadline = now.Add(n.Period)
		pkt.window = window
		n.pkt = pkt
		n.Stats.WindowHist.Add(window)

		var offset simtime.Duration
		if dec.SpreadInWindow {
			if spread := s.cfg.ForecastWindow - attemptSpan(n); spread > 0 {
				offset = simtime.Duration(n.rng.Int64N(int64(spread)))
			}
		}
		at := now.Add(simtime.Duration(window)*s.cfg.ForecastWindow + offset)
		sh.schedule(at, evAttempt, n, pkt, nil, nil, 0, 0)
	}

	sh.schedule(now.Add(n.Period), evGenerate, n, nil, nil, nil, 0, 0)
}

// attemptSpan is the worst-case duration of one attempt: airtime plus
// receive windows plus retransmission backoff headroom. It is constant
// per node and precomputed at build time.
func attemptSpan(n *Node) simtime.Duration { return n.span }

// attempt transmits (or re-transmits) the packet if the battery can fund
// it, deferring window by window otherwise. gen is the packet life the
// triggering event was scheduled for; a mismatch means the packet was
// recycled since.
func (sh *shard) attempt(n *Node, pkt *packet, gen uint64) {
	if pkt.gen != gen || pkt.finished || n.pkt != pkt {
		return
	}
	s := sh.s
	now := sh.eng.Now()
	n.integrate(now)

	n.drainReports()
	reports := n.pendingTrans
	if len(reports) > maxReportsPerPacket {
		reports = reports[len(reports)-maxReportsPerPacket:]
	}
	payload := s.cfg.PayloadBytes + battery.ReportSize*len(reports)
	params := n.paramsForAttempt(pkt.attempts)
	txE := s.phy.TxEnergy(params.SF, payload)

	if !n.Batt.CanSupply(txE + n.rxEnergyJ) {
		// Not enough stored energy: wait one forecast window for harvest,
		// or give up at the period boundary.
		retry := now.Add(s.cfg.ForecastWindow)
		if retry.Add(attemptSpan(n)).After(pkt.deadline) {
			sh.finish(n, pkt, false, now)
			return
		}
		sh.schedule(retry, evAttempt, n, pkt, nil, nil, 0, 0)
		return
	}

	pkt.attempts++
	n.Stats.Attempts++
	n.draw(txE)
	pkt.radioEnergyJ += txE
	n.Stats.TxEnergyJ += txE

	airtime := s.phy.Airtime(params.SF, payload)
	ch := n.ID % s.cfg.Channels
	end := now.Add(airtime)
	if n.borderPow != nil {
		btx := sh.beginBorderUplink(n, ch, params.SF, now, end)
		sh.schedule(end, evTxEnd, n, pkt, nil, btx, 0, 0)
		return
	}
	tx := sh.med.NewTransmission()
	tx.NodeID = n.ID
	tx.Channel = ch
	tx.SF = params.SF
	tx.PowerDBm = n.rxPowerDBm
	tx.Start = now
	tx.End = end
	sh.med.BeginUplink(tx)
	sh.schedule(end, evTxEnd, n, pkt, tx, nil, 0, 0)
}

// txEnd resolves one transmission attempt: gateway decoding, ACK
// scheduling, or retransmission. The medium is released first in
// every path (it only touches radio state, which commutes with the
// node-side accounting below), so stale and live packets share it.
func (sh *shard) txEnd(n *Node, pkt *packet, gen uint64, tx *Transmission, btx *borderTx) {
	s := sh.s
	var gws []int
	if btx != nil {
		gws = sh.endBorderUplink(n, btx)
	} else {
		gws = sh.med.EndUplink(tx)
	}
	if pkt.gen != gen || pkt.finished || n.pkt != pkt {
		return
	}
	now := sh.eng.Now()
	n.integrate(now)

	// Receive windows cost energy whether or not an ACK arrives.
	n.draw(n.rxEnergyJ)
	pkt.radioEnergyJ += n.rxEnergyJ

	if len(gws) > 0 {
		// The switch mirrors the original short-circuit chain exactly:
		// GatewayDown draws no randomness and DropUplink is only consulted
		// when the gateway is up, so per-node RNG streams are identical
		// with observability on or off.
		switch {
		case s.plan.GatewayDown(now):
			s.cLostOutage.Inc()
			n.obsTL.RecordEvent(now, "uplink_lost_outage")
		case s.plan.DropUplink(n.ID):
			s.cDroppedBackhaul.Inc()
			n.obsTL.RecordEvent(now, "uplink_dropped_backhaul")
		default:
			reports := n.encodeReports(now, s.cfg.ForecastWindow)
			s.server.Ingest(n.ID, reports, now, s.cfg.ForecastWindow)
			if s.plan.DuplicateUplink(n.ID) {
				// Backhaul duplication: the server sees the same packet twice;
				// idempotent ingestion makes the second delivery a no-op.
				s.cDuplicated.Inc()
				s.server.Ingest(n.ID, reports, now, s.cfg.ForecastWindow)
			}
			if !s.plan.DropDownlink(n.ID) {
				rx1 := now.Add(rx1Delay)
				ackEnd := rx1.Add(n.ackAirtime)
				for _, gw := range gws {
					// The downlink runs on the lane owning the gateway's radio
					// (this lane for interior nodes; possibly another worker lane
					// when the coordinator resolves a border uplink — always
					// strictly in the future, so the barrier loop picks it up).
					gl := s.laneForGW(gw)
					if gl.med.ReserveDownlink(gw, rx1, ackEnd) {
						gl.schedule(rx1, evDownlink, nil, nil, nil, nil, gw, ackEnd)
						sh.schedule(ackEnd, evAckDone, n, pkt, nil, nil, 0, 0)
						return
					}
				}
				// Every decoding gateway's radio is busy: the data arrived but
				// the node will never know — it behaves exactly like a
				// collision.
			} else {
				// A dropped downlink looks the same from the node: no ACK, so
				// it retries with the reports still piggy-backed (and the
				// server's duplicate guard drops the re-ingested copies).
				s.cDownlinkDropped.Inc()
				n.obsTL.RecordEvent(now, "downlink_dropped")
			}
		}
	}
	sh.retryOrFail(n, pkt, now)
}

// brownout restarts a node: any in-flight packet dies, the protocol's
// volatile state (w_u, learned estimators) and the unreported transition
// backlog are lost, and the node re-registers with the gateway, which
// keeps its accumulated degradation history. The energy cost of the
// rejoin exchange is charged to the battery.
func (sh *shard) brownout(n *Node) {
	s := sh.s
	now := sh.eng.Now()
	n.integrate(now)

	if n.pkt != nil && !n.pkt.finished {
		sh.finish(n, n.pkt, false, now)
	}
	n.Proto.Reset()
	n.pendingTrans = n.pendingTrans[:0]
	n.transBuf = n.Batt.AppendTransitions(n.transBuf[:0]) // recorded but never reported: gone
	n.Stats.Brownouts++
	s.cBrownouts.Inc()
	n.obsTL.RecordEvent(now, "brownout")

	// Rejoin exchange: one uplink at the node's base settings plus the
	// receive windows for the join accept.
	joinE := s.phy.TxEnergy(n.Params.SF, joinPayloadBytes) + n.rxEnergyJ
	n.draw(joinE)
	n.Stats.TxEnergyJ += joinE
	s.server.Rejoin(n.ID, n.Batt.SoC())

	// The sampling timer restarts with the generation cycle already
	// scheduled; modelling a reboot-time phase shift would desynchronize
	// the pooled generate events for marginal realism.
	if at, ok := s.plan.NextBrownout(n.ID, now); ok {
		sh.schedule(at, evBrownout, n, nil, nil, nil, 0, 0)
	}
}

func (sh *shard) retryOrFail(n *Node, pkt *packet, now simtime.Time) {
	if pkt.attempts >= sh.s.cfg.MaxAttempts {
		sh.finish(n, pkt, false, now)
		return
	}
	backoff := 500*simtime.Millisecond + simtime.Duration(n.rng.Int64N(int64(2*simtime.Second)))
	retry := now.Add(rxWindowsSpan + backoff)
	if retry.After(pkt.deadline) {
		sh.finish(n, pkt, false, now)
		return
	}
	sh.schedule(retry, evAttempt, n, pkt, nil, nil, 0, 0)
}

// ackDelivered completes a packet successfully: the ACK carries the
// gateway's latest normalized degradation for this node.
func (sh *shard) ackDelivered(n *Node, pkt *packet, gen uint64) {
	if pkt.gen != gen || pkt.finished || n.pkt != pkt {
		return
	}
	s := sh.s
	now := sh.eng.Now()
	n.integrate(now)
	n.Proto.OnDegradationUpdate(now, s.server.NormalizedDegradation(n.ID))
	n.pendingTrans = n.pendingTrans[:0] // reports delivered
	sh.finish(n, pkt, true, now)
}

// finish settles a packet's fate and updates metrics and protocol
// learning.
func (sh *shard) finish(n *Node, pkt *packet, delivered bool, now simtime.Time) {
	s := sh.s
	pkt.finished = true
	n.pkt = nil

	if delivered {
		n.Stats.Delivered++
		lat := now.Sub(pkt.genAt)
		n.Stats.LatencyDelivered += lat
		n.Stats.LatencyPenalized += lat
		n.Stats.UtilitySum += s.util.Value(pkt.window, n.Windows)
	} else {
		n.Stats.Dropped++
		n.Stats.LatencyPenalized += n.Period
	}
	if pkt.attempts > 0 {
		n.Proto.OnOutcome(mac.Outcome{
			Window:    pkt.window,
			Attempts:  pkt.attempts,
			EnergyJ:   pkt.radioEnergyJ,
			Delivered: delivered,
		})
	}
	n.obsTL.PacketDone(delivered, pkt.attempts)
	if s.hooks.OnPacketDone != nil {
		s.hooks.OnPacketDone(n.ID, delivered, pkt.attempts, pkt.window)
	}
	sh.releasePacket(pkt)
}

// rxPowers computes the node's static received power at every gateway.
func (s *Simulation) rxPowers(pos radio.Position, id int) []float64 {
	out := make([]float64, len(s.gwPos))
	for g, gp := range s.gwPos {
		out[g] = s.cfg.PathLoss.RxPowerBetweenDBm(s.cfg.TxPowerDBm, pos, gp, uint64(id)*131+uint64(g))
	}
	return out
}
