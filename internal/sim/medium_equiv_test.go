package sim

// Equivalence harness for the indexed medium: a verbatim copy of the
// pre-index scan-based implementation serves as the reference model,
// and randomized multi-gateway workloads (including omega-exhausted
// and half-duplex-deaf regimes) must produce byte-identical
// collision/demodulator/deafness decisions on both.

import (
	"math/rand/v2"
	"testing"

	"repro/internal/lora"
	"repro/internal/radio"
	"repro/internal/simtime"
)

// refTransmission mirrors Transmission with the original []bool flags.
type refTransmission struct {
	Channel  int
	SF       lora.SpreadingFactor
	PowerDBm []float64
	Start    simtime.Time

	corrupted []bool
	weak      []bool
	unlocked  []bool
	anyViable bool
}

// refMedium is the original scan-based medium, kept as the oracle.
type refMedium struct {
	bw       lora.Bandwidth
	omega    int
	gateways int
	active   []*refTransmission
	gwTxEnd  []simtime.Time
	reserved []simtime.Time
}

func newRefMedium(bw lora.Bandwidth, omega, gateways int) *refMedium {
	return &refMedium{
		bw:       bw,
		omega:    omega,
		gateways: gateways,
		gwTxEnd:  make([]simtime.Time, gateways),
		reserved: make([]simtime.Time, gateways),
	}
}

func (m *refMedium) BeginUplink(tx *refTransmission) {
	tx.weak = make([]bool, m.gateways)
	tx.corrupted = make([]bool, m.gateways)
	tx.unlocked = make([]bool, m.gateways)

	sens := lora.Sensitivity(tx.SF, m.bw)
	for g := 0; g < m.gateways; g++ {
		if tx.PowerDBm[g] < sens {
			tx.weak[g] = true
			continue
		}
		if m.gwTxEnd[g] > tx.Start {
			tx.unlocked[g] = true
		}
		locked := 0
		for _, a := range m.active {
			if !a.weak[g] && !a.unlocked[g] {
				locked++
			}
		}
		if locked >= m.omega {
			tx.unlocked[g] = true
		}
		for _, a := range m.active {
			if a.Channel != tx.Channel || a.SF != tx.SF || a.weak[g] {
				continue
			}
			if !radio.Captures(tx.PowerDBm[g], []float64{a.PowerDBm[g]}) {
				tx.corrupted[g] = true
			}
			if !radio.Captures(a.PowerDBm[g], []float64{tx.PowerDBm[g]}) {
				a.corrupted[g] = true
			}
		}
	}
	for g := 0; g < m.gateways; g++ {
		if !tx.weak[g] {
			tx.anyViable = true
			break
		}
	}
	m.active = append(m.active, tx)
}

func (m *refMedium) EndUplink(tx *refTransmission) []int {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	var decoded []int
	for g := 0; g < m.gateways; g++ {
		if tx.weak[g] || tx.corrupted[g] || tx.unlocked[g] {
			continue
		}
		decoded = append(decoded, g)
	}
	for i := 1; i < len(decoded); i++ {
		g := decoded[i]
		j := i - 1
		for j >= 0 && tx.PowerDBm[decoded[j]] < tx.PowerDBm[g] {
			decoded[j+1] = decoded[j]
			j--
		}
		decoded[j+1] = g
	}
	return decoded
}

func (m *refMedium) ReserveDownlink(gw int, start, end simtime.Time) bool {
	if m.reserved[gw] > start || m.gwTxEnd[gw] > start {
		return false
	}
	m.reserved[gw] = end
	return true
}

func (m *refMedium) BeginDownlink(gw int, until simtime.Time) {
	if until > m.gwTxEnd[gw] {
		m.gwTxEnd[gw] = until
	}
	for _, a := range m.active {
		a.corrupted[gw] = true
	}
}

func (m *refMedium) ActiveUplinks() int {
	n := 0
	for _, a := range m.active {
		if a.anyViable {
			n++
		}
	}
	return n
}

// inFlight pairs one live transmission across both models.
type inFlight struct {
	idx *Transmission
	ref *refTransmission
}

// TestMediumEquivalence drives randomized workloads through the
// indexed medium and the scan-based oracle: every decode decision,
// reservation outcome, and viable-uplink count must match exactly.
// Small omega and dense bursts keep the demodulator budget exhausted;
// random downlinks exercise half-duplex deafness mid-reception.
func TestMediumEquivalence(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x3e0))

		gateways := 1 + rng.IntN(3)
		omega := 1 + rng.IntN(2)
		channels := 1 + rng.IntN(2)
		sfs := []lora.SpreadingFactor{lora.SF7, lora.SF8, lora.SF9}

		idx := NewMedium(lora.BW125, omega, gateways)
		ref := newRefMedium(lora.BW125, omega, gateways)

		var live []inFlight
		now := simtime.Time(0)
		for step := 0; step < 400; step++ {
			now += simtime.Time(rng.Int64N(int64(200 * simtime.Millisecond)))
			switch op := rng.IntN(10); {
			case op < 5 || len(live) == 0: // begin an uplink
				powers := make([]float64, gateways)
				for g := range powers {
					// Straddle the SF7..SF9 sensitivity band (-129.5..-123)
					// so weak-at-some-gateways cases are common.
					powers[g] = -135 + 50*rng.Float64()
				}
				ch := rng.IntN(channels)
				sf := sfs[rng.IntN(len(sfs))]

				tx := idx.NewTransmission()
				tx.NodeID = step
				tx.Channel = ch
				tx.SF = sf
				tx.PowerDBm = powers
				tx.Start = now
				tx.End = now + simtime.Time(simtime.Second)
				idx.BeginUplink(tx)
				rtx := &refTransmission{Channel: ch, SF: sf, PowerDBm: powers, Start: now}
				ref.BeginUplink(rtx)
				live = append(live, inFlight{idx: tx, ref: rtx})

			case op < 8: // end a random uplink, compare decode decisions
				i := rng.IntN(len(live))
				pair := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				got := idx.EndUplink(pair.idx)
				want := ref.EndUplink(pair.ref)
				if len(got) != len(want) {
					t.Fatalf("seed %d step %d: decoded %v, oracle %v", seed, step, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("seed %d step %d: decoded %v, oracle %v", seed, step, got, want)
					}
				}

			default: // downlink activity on a random gateway
				gw := rng.IntN(gateways)
				end := now + simtime.Time(rng.Int64N(int64(2*simtime.Second)))
				gotOK := idx.ReserveDownlink(gw, now, end)
				wantOK := ref.ReserveDownlink(gw, now, end)
				if gotOK != wantOK {
					t.Fatalf("seed %d step %d: reserve %v, oracle %v", seed, step, gotOK, wantOK)
				}
				if gotOK {
					idx.BeginDownlink(gw, end)
					ref.BeginDownlink(gw, end)
				}
			}
			if got, want := idx.ActiveUplinks(), ref.ActiveUplinks(); got != want {
				t.Fatalf("seed %d step %d: active %d, oracle %d", seed, step, got, want)
			}
		}
		// Drain everything still on the air; decisions must keep matching.
		for _, pair := range live {
			got := idx.EndUplink(pair.idx)
			want := ref.EndUplink(pair.ref)
			if len(got) != len(want) {
				t.Fatalf("seed %d drain: decoded %v, oracle %v", seed, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("seed %d drain: decoded %v, oracle %v", seed, got, want)
				}
			}
		}
	}
}
