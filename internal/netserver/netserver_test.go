package netserver

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/simtime"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(battery.DefaultModel(), 25, simtime.Day)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := battery.DefaultModel()
	bad.K1 = 0
	if _, err := New(bad, 25, simtime.Day); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := New(battery.DefaultModel(), 25, 0); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestRegisterAndCount(t *testing.T) {
	s := newTestServer(t)
	if s.NumNodes() != 0 {
		t.Error("fresh server should have no nodes")
	}
	s.Register(1, 0.5)
	s.Register(2, 0.9)
	s.Register(1, 0.5) // re-register resets, no duplicate
	if got := s.NumNodes(); got != 2 {
		t.Errorf("NumNodes = %d, want 2", got)
	}
}

func TestUnknownNodeQueries(t *testing.T) {
	s := newTestServer(t)
	if got := s.NormalizedDegradation(99); got != 0 {
		t.Errorf("unknown node w_u = %v, want 0", got)
	}
	if got := s.Degradation(99); got != 0 {
		t.Errorf("unknown node degradation = %v, want 0", got)
	}
	// Ingest for unknown node must not panic.
	s.Ingest(99, []battery.Report{{WindowsAgo: 1, SoCQ: 1000}}, simtime.Time(simtime.Hour), simtime.Minute)
	if id, d := s.MaxDegradation(); id != -1 || d != 0 {
		t.Errorf("MaxDegradation on empty server = %d,%v", id, d)
	}
}

func TestRecomputeIfDueCadence(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 0.9)

	if !s.RecomputeIfDue(0) {
		t.Error("first call must compute")
	}
	if s.RecomputeIfDue(simtime.Time(simtime.Hour)) {
		t.Error("1 hour later: not due yet")
	}
	if !s.RecomputeIfDue(simtime.Time(25 * simtime.Hour)) {
		t.Error("25 hours later: due")
	}
}

// TestNormalizedDegradationOrdering: an always-full battery must end up
// with w_u = 1 (the most degraded) and the low-SoC battery below it.
func TestNormalizedDegradationOrdering(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 1.0) // resting full: fastest calendar aging
	s.Register(2, 0.3) // resting low
	now := simtime.Time(simtime.Year)
	s.RecomputeIfDue(now)

	w1 := s.NormalizedDegradation(1)
	w2 := s.NormalizedDegradation(2)
	if w1 != 1 {
		t.Errorf("most degraded node w_u = %v, want exactly 1", w1)
	}
	if w2 >= w1 {
		t.Errorf("lower-SoC node w_u = %v, want < %v", w2, w1)
	}
	id, d := s.MaxDegradation()
	if id != 1 || d <= 0 {
		t.Errorf("MaxDegradation = %d,%v, want node 1", id, d)
	}
	if got := s.Degradation(1); got != d {
		t.Errorf("Degradation(1) = %v, want %v", got, d)
	}
}

// TestQuantization: w_u arrives in 1/255 steps, matching the 1-byte ACK
// piggyback overhead the paper budgets.
func TestQuantization(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 1.0)
	s.Register(2, 0.62)
	s.RecomputeIfDue(simtime.Time(simtime.Year))

	w2 := s.NormalizedDegradation(2)
	scaled := w2 * 255
	if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
		t.Errorf("w_u = %v is not a 1/255 multiple", w2)
	}
}

// TestIngestDrivesCycleAging: reports describing deep daily cycles must
// raise the reconstructed degradation above a no-cycling node's.
func TestIngestDrivesCycleAging(t *testing.T) {
	s := newTestServer(t)
	// Node 1 cycles 0.9 <-> 0.3 (mean cycle SoC 0.6); node 2 rests at the
	// same mean SoC 0.6, so calendar aging matches and cycle aging is the
	// only difference.
	s.Register(1, 0.9)
	s.Register(2, 0.6)

	window := simtime.Minute
	for day := 0; day < 100; day++ {
		at := simtime.Time(day) * simtime.Time(simtime.Day)
		// Node 1 swings 0.9 -> 0.3 -> 0.9 daily; node 2 reports nothing.
		s.Ingest(1, []battery.Report{
			battery.EncodeTransition(battery.Transition{At: at, SoC: 0.3}, at.Add(simtime.Hour), window),
			battery.EncodeTransition(battery.Transition{At: at.Add(30 * simtime.Minute), SoC: 0.9}, at.Add(simtime.Hour), window),
		}, at.Add(simtime.Hour), window)
	}
	now := simtime.Time(100 * simtime.Day)
	s.RecomputeIfDue(now)
	if s.Degradation(1) <= s.Degradation(2) {
		t.Errorf("cycling node degradation %v should exceed idle node %v",
			s.Degradation(1), s.Degradation(2))
	}
}
