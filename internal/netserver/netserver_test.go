package netserver

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/simtime"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(battery.DefaultModel(), 25, simtime.Day)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	bad := battery.DefaultModel()
	bad.K1 = 0
	if _, err := New(bad, 25, simtime.Day); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := New(battery.DefaultModel(), 25, 0); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestRegisterAndCount(t *testing.T) {
	s := newTestServer(t)
	if s.NumNodes() != 0 {
		t.Error("fresh server should have no nodes")
	}
	s.Register(1, 0.5)
	s.Register(2, 0.9)
	s.Register(1, 0.5) // re-register resets, no duplicate
	if got := s.NumNodes(); got != 2 {
		t.Errorf("NumNodes = %d, want 2", got)
	}
}

func TestUnknownNodeQueries(t *testing.T) {
	s := newTestServer(t)
	if got := s.NormalizedDegradation(99); got != 0 {
		t.Errorf("unknown node w_u = %v, want 0", got)
	}
	if got := s.Degradation(99); got != 0 {
		t.Errorf("unknown node degradation = %v, want 0", got)
	}
	// Ingest for unknown node must not panic.
	s.Ingest(99, []battery.Report{{WindowsAgo: 1, SoCQ: 1000}}, simtime.Time(simtime.Hour), simtime.Minute)
	if id, d := s.MaxDegradation(); id != -1 || d != 0 {
		t.Errorf("MaxDegradation on empty server = %d,%v", id, d)
	}
}

func TestRecomputeIfDueCadence(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 0.9)

	if !s.RecomputeIfDue(0) {
		t.Error("first call must compute")
	}
	if s.RecomputeIfDue(simtime.Time(simtime.Hour)) {
		t.Error("1 hour later: not due yet")
	}
	if !s.RecomputeIfDue(simtime.Time(25 * simtime.Hour)) {
		t.Error("25 hours later: due")
	}
}

// TestRecomputeGridAlignment: a late recompute (e.g. delayed by a
// gateway outage) must not shift the schedule — the next deadline stays
// on the interval grid anchored at the first compute.
func TestRecomputeGridAlignment(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 0.9)

	at := func(h int) simtime.Time { return simtime.Time(h) * simtime.Time(simtime.Hour) }
	if !s.RecomputeIfDue(at(0)) {
		t.Fatal("first call must compute")
	}
	// Slot [24h,48h) arrives 2 hours late.
	if !s.RecomputeIfDue(at(26)) {
		t.Fatal("26h: overdue slot must compute")
	}
	// The next deadline is the 48h grid slot, not 26h+24h = 50h.
	if s.RecomputeIfDue(at(47)) {
		t.Error("47h: inside the current grid slot, must not compute")
	}
	if !s.RecomputeIfDue(at(49)) {
		t.Error("49h: the 48h grid slot is due even though the previous compute ran at 26h")
	}
	// A very late call (multiple slots missed) lands back on the grid.
	if !s.RecomputeIfDue(at(200)) {
		t.Fatal("200h: overdue")
	}
	if s.RecomputeIfDue(at(215)) {
		t.Error("215h: grid slot [192h,216h) already computed at 200h")
	}
	if !s.RecomputeIfDue(at(216)) {
		t.Error("216h: next grid slot due")
	}
}

// TestMaxDegradationTieBreak: equal degradations must report the lowest
// node ID, not whichever the map iteration order visits last.
func TestMaxDegradationTieBreak(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s := newTestServer(t)
		// Same initial SoC, no reports: identical calendar aging.
		s.Register(7, 0.8)
		s.Register(3, 0.8)
		s.Register(9, 0.8)
		s.RecomputeIfDue(simtime.Time(simtime.Year))
		if s.Degradation(7) != s.Degradation(3) || s.Degradation(3) != s.Degradation(9) {
			t.Fatal("test premise broken: degradations differ")
		}
		id, d := s.MaxDegradation()
		if id != 3 {
			t.Fatalf("trial %d: MaxDegradation tie broke to node %d (degr %v), want lowest ID 3", trial, id, d)
		}
	}
}

// TestIngestIdempotent: a packet retried after a lost ACK (same reports
// re-encoded at a later transmission time) and an exact backhaul
// duplicate must both leave the reconstructed trace as if the packet
// arrived exactly once.
func TestIngestIdempotent(t *testing.T) {
	window := simtime.Minute
	tr1 := battery.Transition{At: simtime.Time(10 * simtime.Minute), SoC: 0.3}
	tr2 := battery.Transition{At: simtime.Time(40 * simtime.Minute), SoC: 0.9}
	t1 := simtime.Time(simtime.Hour)
	t2 := t1.Add(5 * simtime.Minute)
	encode := func(at simtime.Time) []battery.Report {
		return []battery.Report{
			battery.EncodeTransition(tr1, at, window),
			battery.EncodeTransition(tr2, at, window),
		}
	}

	once := newTestServer(t)
	once.Register(1, 0.9)
	once.Ingest(1, encode(t1), t1, window)

	dup := newTestServer(t)
	dup.Register(1, 0.9)
	dup.Ingest(1, encode(t1), t1, window)
	dup.Ingest(1, encode(t1), t1, window) // exact backhaul duplicate
	dup.Ingest(1, encode(t2), t2, window) // retry after lost ACK

	now := simtime.Time(simtime.Day)
	once.RecomputeIfDue(now)
	dup.RecomputeIfDue(now)
	if got, want := dup.Degradation(1), once.Degradation(1); got != want {
		t.Errorf("duplicated ingestion degradation %v, want %v (single ingestion)", got, want)
	}
}

// TestIngestDropsReordered: a packet older than the newest ingested one
// is a straggler and must be dropped entirely.
func TestIngestDropsReordered(t *testing.T) {
	window := simtime.Minute
	old := battery.Transition{At: simtime.Time(5 * simtime.Minute), SoC: 0.1}
	t1 := simtime.Time(30 * simtime.Minute)
	t2 := simtime.Time(simtime.Hour)

	s := newTestServer(t)
	s.Register(1, 0.9)
	s.Ingest(1, nil, t2, window) // newer (empty) packet arrives first
	s.Ingest(1, []battery.Report{battery.EncodeTransition(old, t1, window)}, t1, window)

	ref := newTestServer(t)
	ref.Register(1, 0.9)
	ref.Ingest(1, nil, t2, window)

	now := simtime.Time(simtime.Day)
	s.RecomputeIfDue(now)
	ref.RecomputeIfDue(now)
	if got, want := s.Degradation(1), ref.Degradation(1); got != want {
		t.Errorf("reordered packet was ingested: degradation %v, want %v", got, want)
	}
}

// TestIngestRetryWithFreshReports: a retry that re-piggybacks unACKed
// reports alongside new transitions must contribute only the new ones.
func TestIngestRetryWithFreshReports(t *testing.T) {
	window := simtime.Minute
	trOld := battery.Transition{At: simtime.Time(10 * simtime.Minute), SoC: 0.3}
	trNew := battery.Transition{At: simtime.Time(70 * simtime.Minute), SoC: 0.8}
	t1 := simtime.Time(simtime.Hour)
	t2 := simtime.Time(2 * simtime.Hour)

	s := newTestServer(t)
	s.Register(1, 0.9)
	s.Ingest(1, []battery.Report{battery.EncodeTransition(trOld, t1, window)}, t1, window)
	s.Ingest(1, []battery.Report{
		battery.EncodeTransition(trOld, t2, window), // still unACKed, re-sent
		battery.EncodeTransition(trNew, t2, window),
	}, t2, window)

	ref := newTestServer(t)
	ref.Register(1, 0.9)
	ref.Ingest(1, []battery.Report{battery.EncodeTransition(trOld, t1, window)}, t1, window)
	ref.Ingest(1, []battery.Report{battery.EncodeTransition(trNew, t2, window)}, t2, window)

	now := simtime.Time(simtime.Day)
	s.RecomputeIfDue(now)
	ref.RecomputeIfDue(now)
	if got, want := s.Degradation(1), ref.Degradation(1); got != want {
		t.Errorf("re-piggybacked report was double-counted: degradation %v, want %v", got, want)
	}
}

// TestRejoinPreservesHistory: a brownout rejoin keeps the accumulated
// degradation (the battery did not reset), unlike a fresh Register.
func TestRejoinPreservesHistory(t *testing.T) {
	window := simtime.Minute
	build := func() *Server {
		s := newTestServer(t)
		s.Register(1, 0.9)
		for day := 0; day < 50; day++ {
			at := simtime.Time(day) * simtime.Time(simtime.Day)
			s.Ingest(1, []battery.Report{
				battery.EncodeTransition(battery.Transition{At: at, SoC: 0.3}, at.Add(simtime.Hour), window),
				battery.EncodeTransition(battery.Transition{At: at.Add(30 * simtime.Minute), SoC: 0.9}, at.Add(simtime.Hour), window),
			}, at.Add(simtime.Hour), window)
		}
		return s
	}
	now := simtime.Time(60 * simtime.Day)

	rejoined := build()
	rejoined.Rejoin(1, 0.7)
	rejoined.RecomputeIfDue(now)

	reset := build()
	reset.Register(1, 0.7)
	reset.RecomputeIfDue(now)

	if rejoined.Degradation(1) <= reset.Degradation(1) {
		t.Errorf("rejoin lost cycle history: degradation %v not above reset %v",
			rejoined.Degradation(1), reset.Degradation(1))
	}

	// Rejoin of an unknown node degrades to a fresh registration.
	s := newTestServer(t)
	s.Rejoin(42, 0.5)
	if s.NumNodes() != 1 {
		t.Error("rejoin of unknown node did not register it")
	}
}

// TestWuQuantizationGolden: the 1-byte w_u wire form at its boundary
// values, matching the ACK payload budget of the paper.
func TestWuQuantizationGolden(t *testing.T) {
	cases := []struct {
		wu float64
		b  byte
	}{
		{0, 0},
		{1.0 / 255, 1},
		{254.0 / 255, 254},
		{255.0 / 255, 255},
		{-0.5, 0}, // clamped
		{1.5, 255},
	}
	for _, tc := range cases {
		if got := QuantizeWu(tc.wu); got != tc.b {
			t.Errorf("QuantizeWu(%v) = %d, want %d", tc.wu, got, tc.b)
		}
	}
	for _, b := range []byte{0, 1, 255} {
		if got := QuantizeWu(DequantizeWu(b)); got != b {
			t.Errorf("quantize(dequantize(%d)) = %d, want exact round-trip", b, got)
		}
	}
	if got := DequantizeWu(0); got != 0 {
		t.Errorf("DequantizeWu(0) = %v, want 0", got)
	}
	if got := DequantizeWu(255); got != 1 {
		t.Errorf("DequantizeWu(255) = %v, want 1", got)
	}
	if got := DequantizeWu(1); got != 1.0/255 {
		t.Errorf("DequantizeWu(1) = %v, want 1/255", got)
	}
}

// TestNormalizedDegradationOrdering: an always-full battery must end up
// with w_u = 1 (the most degraded) and the low-SoC battery below it.
func TestNormalizedDegradationOrdering(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 1.0) // resting full: fastest calendar aging
	s.Register(2, 0.3) // resting low
	now := simtime.Time(simtime.Year)
	s.RecomputeIfDue(now)

	w1 := s.NormalizedDegradation(1)
	w2 := s.NormalizedDegradation(2)
	if w1 != 1 {
		t.Errorf("most degraded node w_u = %v, want exactly 1", w1)
	}
	if w2 >= w1 {
		t.Errorf("lower-SoC node w_u = %v, want < %v", w2, w1)
	}
	id, d := s.MaxDegradation()
	if id != 1 || d <= 0 {
		t.Errorf("MaxDegradation = %d,%v, want node 1", id, d)
	}
	if got := s.Degradation(1); got != d {
		t.Errorf("Degradation(1) = %v, want %v", got, d)
	}
}

// TestQuantization: w_u arrives in 1/255 steps, matching the 1-byte ACK
// piggyback overhead the paper budgets.
func TestQuantization(t *testing.T) {
	s := newTestServer(t)
	s.Register(1, 1.0)
	s.Register(2, 0.62)
	s.RecomputeIfDue(simtime.Time(simtime.Year))

	w2 := s.NormalizedDegradation(2)
	scaled := w2 * 255
	if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
		t.Errorf("w_u = %v is not a 1/255 multiple", w2)
	}
}

// TestIngestDrivesCycleAging: reports describing deep daily cycles must
// raise the reconstructed degradation above a no-cycling node's.
func TestIngestDrivesCycleAging(t *testing.T) {
	s := newTestServer(t)
	// Node 1 cycles 0.9 <-> 0.3 (mean cycle SoC 0.6); node 2 rests at the
	// same mean SoC 0.6, so calendar aging matches and cycle aging is the
	// only difference.
	s.Register(1, 0.9)
	s.Register(2, 0.6)

	window := simtime.Minute
	for day := 0; day < 100; day++ {
		at := simtime.Time(day) * simtime.Time(simtime.Day)
		// Node 1 swings 0.9 -> 0.3 -> 0.9 daily; node 2 reports nothing.
		s.Ingest(1, []battery.Report{
			battery.EncodeTransition(battery.Transition{At: at, SoC: 0.3}, at.Add(simtime.Hour), window),
			battery.EncodeTransition(battery.Transition{At: at.Add(30 * simtime.Minute), SoC: 0.9}, at.Add(simtime.Hour), window),
		}, at.Add(simtime.Hour), window)
	}
	now := simtime.Time(100 * simtime.Day)
	s.RecomputeIfDue(now)
	if s.Degradation(1) <= s.Degradation(2) {
		t.Errorf("cycling node degradation %v should exceed idle node %v",
			s.Degradation(1), s.Degradation(2))
	}
}
