package netserver

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/simtime"
)

// SnapshotSchema identifies the snapshot layout; bump it when fields
// change meaning so a daemon refuses to restore a foreign format.
// Schema 2 added ClockMs (the barrier-recompute virtual clock).
const SnapshotSchema = 2

// NodeSnapshot is one node's serializable server-side state.
type NodeSnapshot struct {
	ID      int                     `json:"id"`
	Tracker battery.TrackerSnapshot `json:"tracker"`
	// Degr and Wu are the results of the node's latest recompute; they
	// are carried so a restored server disseminates the same values
	// before its first recompute runs.
	Degr float64 `json:"degr"`
	Wu   byte    `json:"wu"`
	// LastPacketAtMs / LastReportAtMs are the ingestion watermarks
	// (simulated milliseconds; -1 = nothing seen yet). Restoring them is
	// what keeps a pre-snapshot retransmission deduplicated after a
	// restart.
	LastPacketAtMs int64 `json:"last_packet_at_ms"`
	LastReportAtMs int64 `json:"last_report_at_ms"`
}

// Snapshot is the full serializable server state. It embeds the model
// and configuration so a restored daemon cannot silently recompute under
// different constants than the state was accumulated with.
type Snapshot struct {
	Schema         int           `json:"schema"`
	Model          battery.Model `json:"model"`
	TempC          float64       `json:"temp_c"`
	IntervalMs     int64         `json:"interval_ms"`
	Computed       bool          `json:"computed"`
	FirstComputeMs int64         `json:"first_compute_ms"`
	NextDueMs      int64         `json:"next_due_ms"`
	// ClockMs is the virtual clock of the barrier-recompute discipline
	// (newest uplink instant folded in; -1 = no traffic yet).
	ClockMs int64 `json:"clock_ms"`
	// Nodes is ascending by ID; unregistered slots are absent.
	Nodes []NodeSnapshot `json:"nodes"`
}

// Snapshot captures the server's complete state. The ascending index
// walk makes the node order (and hence the serialized bytes for a given
// state) deterministic.
func (s *Server) Snapshot() *Snapshot {
	snap := &Snapshot{
		Schema:         SnapshotSchema,
		Model:          s.model,
		TempC:          s.tempC,
		IntervalMs:     int64(s.interval),
		Computed:       s.computed,
		FirstComputeMs: int64(s.firstCompute),
		NextDueMs:      int64(s.nextDue),
		ClockMs:        int64(s.clock),
		Nodes:          make([]NodeSnapshot, 0, s.numNodes),
	}
	for id, st := range s.nodes {
		if st == nil {
			continue
		}
		snap.Nodes = append(snap.Nodes, NodeSnapshot{
			ID:             id,
			Tracker:        st.tracker.Snapshot(),
			Degr:           st.degr,
			Wu:             st.wu,
			LastPacketAtMs: int64(st.lastPacketAt),
			LastReportAtMs: int64(st.lastReportAt),
		})
	}
	return snap
}

// Restore rebuilds a server from a snapshot. The result answers every
// subsequent Ingest/Recompute sequence with the same bytes the
// snapshotted server would have: tracker restoration is exact (see
// battery.RestoreTracker) and the recompute grid anchor, dissemination
// results, and ingestion watermarks are all carried over.
func Restore(snap *Snapshot) (*Server, error) {
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("netserver: snapshot schema %d, want %d", snap.Schema, SnapshotSchema)
	}
	s, err := New(snap.Model, snap.TempC, simtime.Duration(snap.IntervalMs))
	if err != nil {
		return nil, err
	}
	s.computed = snap.Computed
	s.firstCompute = simtime.Time(snap.FirstComputeMs)
	s.nextDue = simtime.Time(snap.NextDueMs)
	s.clock = simtime.Time(snap.ClockMs)
	// Under the barrier discipline every recompute sets
	// nextDue = instant + interval, so the instant of the latest
	// degradation evaluation is recoverable without its own field; the
	// state was quiesced at snapshot time, so nothing is dirty.
	if snap.Computed {
		s.degrAt = s.nextDue - simtime.Time(s.interval)
	}
	prev := -1
	for _, ns := range snap.Nodes {
		if ns.ID <= prev {
			return nil, fmt.Errorf("netserver: snapshot nodes not ascending (%d after %d)", ns.ID, prev)
		}
		prev = ns.ID
		st := &nodeState{
			tracker:      battery.RestoreTracker(snap.Model, snap.TempC, ns.Tracker),
			degr:         ns.Degr,
			wu:           ns.Wu,
			lastPacketAt: simtime.Time(ns.LastPacketAtMs),
			lastReportAt: simtime.Time(ns.LastReportAtMs),
		}
		for ns.ID >= len(s.nodes) {
			s.nodes = append(s.nodes, nil)
		}
		s.nodes[ns.ID] = st
		s.numNodes++
	}
	return s, nil
}

// MergeSnapshots folds per-shard snapshots (disjoint node sets, each
// ascending by ID) into the single snapshot a 1-shard server holding
// the union would produce. The global fields must agree across shards —
// after a barrier recompute they do by construction (same grid slot,
// same interval, same model) — except the virtual clock, which merges
// as the maximum, mirroring how AdvanceClock folds instants. Shards
// that disagree on a global field indicate a coordination bug and are
// rejected rather than silently papered over.
func MergeSnapshots(parts []*Snapshot) (*Snapshot, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("netserver: merge of zero snapshots")
	}
	total := 0
	out := *parts[0]
	for i, p := range parts {
		if p.Schema != out.Schema || p.Model != out.Model || p.TempC != out.TempC ||
			p.IntervalMs != out.IntervalMs || p.Computed != out.Computed ||
			p.FirstComputeMs != out.FirstComputeMs || p.NextDueMs != out.NextDueMs {
			return nil, fmt.Errorf("netserver: shard %d snapshot disagrees on global state", i)
		}
		if p.ClockMs > out.ClockMs {
			out.ClockMs = p.ClockMs
		}
		total += len(p.Nodes)
	}
	out.Nodes = make([]NodeSnapshot, 0, total)
	idx := make([]int, len(parts))
	for len(out.Nodes) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p.Nodes) {
				continue
			}
			if best == -1 || p.Nodes[idx[i]].ID < parts[best].Nodes[idx[best]].ID {
				best = i
			}
		}
		node := parts[best].Nodes[idx[best]]
		if n := len(out.Nodes); n > 0 && out.Nodes[n-1].ID >= node.ID {
			return nil, fmt.Errorf("netserver: shard snapshots overlap or misorder at node %d", node.ID)
		}
		out.Nodes = append(out.Nodes, node)
		idx[best]++
	}
	return &out, nil
}

// SplitSnapshot partitions a snapshot into per-shard snapshots by the
// given node→shard map, copying the global fields (including the clock:
// it is a running maximum, so giving every shard the full value is
// exact — a shard never observes an instant above the fleet clock).
// It is the inverse of MergeSnapshots for any shardOf that routes each
// node to one shard.
func SplitSnapshot(snap *Snapshot, shards int, shardOf func(nodeID int) int) []*Snapshot {
	parts := make([]*Snapshot, shards)
	for i := range parts {
		p := *snap
		p.Nodes = nil
		parts[i] = &p
	}
	for _, ns := range snap.Nodes {
		i := shardOf(ns.ID)
		parts[i].Nodes = append(parts[i].Nodes, ns)
	}
	return parts
}

// MergeWuTables folds per-shard w_u tables (disjoint, each ascending by
// node ID) into one ascending table — the dissemination-path twin of
// MergeSnapshots.
func MergeWuTables(parts [][]NodeWu) []NodeWu {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]NodeWu, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best == -1 || p[idx[i]].Node < parts[best][idx[best]].Node {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// NodeWu is one row of the disseminated w_u table.
type NodeWu struct {
	Node int  `json:"node"`
	Wu   byte `json:"wu"`
}

// WuTable returns every registered node's latest quantized w_u in
// ascending node-ID order — the exact byte each node would receive on
// its next ACK. The deterministic order makes two tables comparable
// byte-for-byte, which is how the daemon smoke pins HTTP-path ingestion
// against the in-process library path.
func (s *Server) WuTable() []NodeWu {
	table := make([]NodeWu, 0, s.numNodes)
	for id, st := range s.nodes {
		if st == nil {
			continue
		}
		table = append(table, NodeWu{Node: id, Wu: st.wu})
	}
	return table
}
