package netserver

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/battery"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// TestQuantizeWuNaN: Go's float-to-integer conversion of NaN is
// implementation-defined, so a NaN degradation ratio (e.g. from a
// malformed ingested report) must clamp to 0 explicitly, not map to an
// arbitrary byte.
func TestQuantizeWuNaN(t *testing.T) {
	if got := QuantizeWu(math.NaN()); got != 0 {
		t.Errorf("QuantizeWu(NaN) = %d, want 0", got)
	}
	if got := QuantizeWu(math.Inf(1)); got != 255 {
		t.Errorf("QuantizeWu(+Inf) = %d, want 255 (clamped)", got)
	}
	if got := QuantizeWu(math.Inf(-1)); got != 0 {
		t.Errorf("QuantizeWu(-Inf) = %d, want 0 (clamped)", got)
	}
}

// TestMaxDegradationDuplicateValues drives the tie-break walk directly
// with duplicated degradation values (white-box: degr is set rather
// than accumulated, so the duplicates are exact). The lowest ID holding
// the maximum must win regardless of where the duplicates sit.
func TestMaxDegradationDuplicateValues(t *testing.T) {
	cases := []struct {
		name   string
		degr   map[int]float64
		wantID int
	}{
		{"max duplicated at head and tail", map[int]float64{1: 0.7, 3: 0.2, 8: 0.7}, 1},
		{"max duplicated mid-walk", map[int]float64{0: 0.1, 4: 0.9, 6: 0.9, 7: 0.3}, 4},
		{"all equal", map[int]float64{2: 0.5, 5: 0.5, 11: 0.5}, 2},
		{"all zero", map[int]float64{3: 0, 9: 0}, 3},
		{"single node", map[int]float64{6: 0.4}, 6},
	}
	for _, tc := range cases {
		s := newTestServer(t)
		var want float64
		for id, d := range tc.degr {
			s.Register(id, 0.5)
			s.nodes[id].degr = d
			want = max(want, d)
		}
		id, d := s.MaxDegradation()
		if id != tc.wantID || d != want {
			t.Errorf("%s: MaxDegradation = (%d, %v), want (%d, %v)", tc.name, id, d, tc.wantID, want)
		}
	}
}

// TestRegisterResetsWatermarksReplayHazard documents the Register reset
// semantics the daemon and the sim/testbed rejoin paths must respect: a
// re-Register resets the ingestion watermarks, so a pre-reset
// retransmission replays as fresh reports; Rejoin keeps the watermarks
// and stays deduplicated.
func TestRegisterResetsWatermarksReplayHazard(t *testing.T) {
	window := simtime.Minute
	t1 := simtime.Time(simtime.Hour)
	pkt := []battery.Report{
		battery.EncodeTransition(battery.Transition{At: simtime.Time(10 * simtime.Minute), SoC: 0.3}, t1, window),
	}

	ingestTwice := func(readmit func(s *Server)) (packets, dups int64) {
		rec := obs.New(obs.Manifest{}, 0)
		s := newTestServer(t)
		s.SetObserver(rec)
		s.Register(1, 0.9)
		s.Ingest(1, pkt, t1, window)
		readmit(s)
		s.Ingest(1, pkt, t1, window) // pre-readmit retransmission
		return rec.Counter("netserver.packets_ingested").Value(),
			rec.Counter("netserver.packets_duplicate").Value()
	}

	// Rejoin keeps the watermarks: the retransmission is a duplicate.
	if packets, dups := ingestTwice(func(s *Server) { s.Rejoin(1, 0.8) }); packets != 1 || dups != 1 {
		t.Errorf("rejoin path: %d ingested / %d duplicate, want 1/1", packets, dups)
	}
	// Register resets them: the same retransmission replays as fresh.
	// This is the documented battery-replacement semantics — and exactly
	// why live-node restarts must use Rejoin.
	if packets, dups := ingestTwice(func(s *Server) { s.Register(1, 0.8) }); packets != 2 || dups != 0 {
		t.Errorf("register path: %d ingested / %d duplicate, want 2/0 (watermark reset)", packets, dups)
	}
}

// buildBusyServer ingests a few days of cycling reports for three nodes
// and recomputes, leaving non-trivial tracker, watermark, and grid
// state behind.
func buildBusyServer(t *testing.T) *Server {
	t.Helper()
	s := newTestServer(t)
	window := simtime.Minute
	for _, id := range []int{0, 2, 5} {
		s.Register(id, 0.9)
	}
	for day := 0; day < 10; day++ {
		at := simtime.Time(day) * simtime.Time(simtime.Day)
		for _, id := range []int{0, 2, 5} {
			lo := 0.2 + 0.1*float64(id)
			s.Ingest(id, []battery.Report{
				battery.EncodeTransition(battery.Transition{At: at, SoC: lo}, at.Add(simtime.Hour), window),
				battery.EncodeTransition(battery.Transition{At: at.Add(40 * simtime.Minute), SoC: 0.95}, at.Add(simtime.Hour), window),
			}, at.Add(simtime.Hour), window)
		}
		s.RecomputeIfDue(at.Add(2 * simtime.Hour))
	}
	return s
}

// continueServer drives identical post-cut traffic into a server and
// returns its final w_u table.
func continueServer(s *Server) []NodeWu {
	window := simtime.Minute
	for day := 10; day < 20; day++ {
		at := simtime.Time(day) * simtime.Time(simtime.Day)
		for _, id := range []int{0, 2, 5} {
			s.Ingest(id, []battery.Report{
				battery.EncodeTransition(battery.Transition{At: at, SoC: 0.35}, at.Add(simtime.Hour), window),
				battery.EncodeTransition(battery.Transition{At: at.Add(25 * simtime.Minute), SoC: 0.9}, at.Add(simtime.Hour), window),
			}, at.Add(simtime.Hour), window)
		}
		s.RecomputeIfDue(at.Add(2 * simtime.Hour))
	}
	return s.WuTable()
}

// TestServerSnapshotRoundTrip is the server-level exactness proof: a
// server restored from a JSON-serialized snapshot must produce
// byte-identical w_u tables and bit-identical degradations on every
// subsequent ingest/recompute, versus the uninterrupted server.
func TestServerSnapshotRoundTrip(t *testing.T) {
	orig := buildBusyServer(t)

	data, err := json.Marshal(orig.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := Restore(&snap)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	if restored.NumNodes() != orig.NumNodes() {
		t.Fatalf("restored NumNodes = %d, want %d", restored.NumNodes(), orig.NumNodes())
	}
	// Pre-recompute dissemination state carries over.
	for _, id := range []int{0, 2, 5} {
		if got, want := restored.NormalizedDegradation(id), orig.NormalizedDegradation(id); got != want {
			t.Fatalf("node %d restored w_u %v, want %v", id, got, want)
		}
		if got, want := restored.Degradation(id), orig.Degradation(id); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("node %d restored degradation %v, want %v (bit-exact)", id, got, want)
		}
	}

	wantTable := continueServer(orig)
	gotTable := continueServer(restored)
	if len(wantTable) != len(gotTable) {
		t.Fatalf("table length %d vs %d", len(gotTable), len(wantTable))
	}
	for i := range wantTable {
		if gotTable[i] != wantTable[i] {
			t.Fatalf("w_u table row %d diverged after restore: %+v vs %+v", i, gotTable[i], wantTable[i])
		}
	}
	for _, id := range []int{0, 2, 5} {
		if got, want := restored.Degradation(id), orig.Degradation(id); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("node %d degradation diverged after continuation: %v vs %v", id, got, want)
		}
	}
	// The recompute grid anchor also survives: both sides agree on what
	// is due next.
	probe := simtime.Time(20*simtime.Day + 3*simtime.Hour)
	if restored.RecomputeIfDue(probe) != orig.RecomputeIfDue(probe) {
		t.Fatal("restored server disagrees on recompute due-ness")
	}
}

// TestSnapshotPreservesWatermarks: a retransmission from before the
// snapshot must still be recognized as a duplicate after a restore —
// the watermarks are state, not cache.
func TestSnapshotPreservesWatermarks(t *testing.T) {
	window := simtime.Minute
	t1 := simtime.Time(simtime.Hour)
	pkt := []battery.Report{
		battery.EncodeTransition(battery.Transition{At: simtime.Time(10 * simtime.Minute), SoC: 0.3}, t1, window),
	}
	s := newTestServer(t)
	s.Register(1, 0.9)
	s.Ingest(1, pkt, t1, window)

	restored, err := Restore(s.Snapshot())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	rec := obs.New(obs.Manifest{}, 0)
	restored.SetObserver(rec)
	restored.Ingest(1, pkt, t1, window)
	if dups := rec.Counter("netserver.packets_duplicate").Value(); dups != 1 {
		t.Errorf("pre-snapshot retransmission not deduplicated after restore (%d duplicates)", dups)
	}
}

// TestRestoreRejectsForeignSchema: a daemon must refuse to restore a
// snapshot written by an incompatible layout.
func TestRestoreRejectsForeignSchema(t *testing.T) {
	snap := newTestServer(t).Snapshot()
	snap.Schema = SnapshotSchema + 1
	if _, err := Restore(snap); err == nil {
		t.Error("Restore accepted a foreign schema")
	}
	bad := newTestServer(t).Snapshot()
	bad.Nodes = []NodeSnapshot{{ID: 3}, {ID: 3}}
	if _, err := Restore(bad); err == nil {
		t.Error("Restore accepted non-ascending node IDs")
	}
}

// TestSnapshotSplitMergeRoundTrip: SplitSnapshot → MergeSnapshots must
// reproduce the original snapshot byte-for-byte for any per-node shard
// map — the property the sharded daemon's /v1/snapshot and /v1/restore
// paths rest on. MergeWuTables gets the same treatment.
func TestSnapshotSplitMergeRoundTrip(t *testing.T) {
	s := buildBusyServer(t)
	want, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, shards := range []int{1, 2, 3, 4, 8} {
		shardOf := func(id int) int { return id % shards }
		parts := SplitSnapshot(s.Snapshot(), shards, shardOf)
		merged, err := MergeSnapshots(parts)
		if err != nil {
			t.Fatalf("shards=%d: MergeSnapshots: %v", shards, err)
		}
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("shards=%d: split/merge not identity:\n%s\n%s", shards, got, want)
		}

		var wuParts [][]NodeWu
		for _, p := range parts {
			srv, err := Restore(p)
			if err != nil {
				t.Fatalf("shards=%d: Restore part: %v", shards, err)
			}
			wuParts = append(wuParts, srv.WuTable())
		}
		if gotWu, wantWu := MergeWuTables(wuParts), s.WuTable(); !reflect.DeepEqual(gotWu, wantWu) {
			t.Fatalf("shards=%d: merged wu table %v, want %v", shards, gotWu, wantWu)
		}
	}
}

// TestMergeSnapshotsRejectsDisagreement: shards that drifted apart on
// global state indicate a barrier bug and must be surfaced, not merged.
func TestMergeSnapshotsRejectsDisagreement(t *testing.T) {
	a := buildBusyServer(t).Snapshot()
	b := buildBusyServer(t).Snapshot()
	b.NextDueMs += 1
	b.Nodes = nil
	a.Nodes = a.Nodes[:1]
	if _, err := MergeSnapshots([]*Snapshot{a, b}); err == nil {
		t.Error("MergeSnapshots accepted disagreeing global state")
	}
	c := buildBusyServer(t).Snapshot()
	d := buildBusyServer(t).Snapshot() // same node IDs → overlap
	if _, err := MergeSnapshots([]*Snapshot{c, d}); err == nil {
		t.Error("MergeSnapshots accepted overlapping node sets")
	}
	if _, err := MergeSnapshots(nil); err == nil {
		t.Error("MergeSnapshots accepted an empty part list")
	}
}

// TestWuTableOrder: the table walks ascending IDs with holes skipped.
func TestWuTableOrder(t *testing.T) {
	s := newTestServer(t)
	s.Register(9, 0.5)
	s.Register(1, 0.5)
	s.Register(4, 0.5)
	table := s.WuTable()
	want := []int{1, 4, 9}
	if len(table) != len(want) {
		t.Fatalf("table length %d, want %d", len(table), len(want))
	}
	for i, id := range want {
		if table[i].Node != id {
			t.Errorf("table[%d].Node = %d, want %d", i, table[i].Node, id)
		}
	}
}
