// Package netserver implements the gateway/network-server side of the
// protocol (Sec. III-B): it reconstructs each node's state-of-charge
// trace from the 4-byte transition reports piggy-backed on uplink
// packets, recomputes battery degradation with the incremental rainflow
// tracker, and derives the normalized degradation w_u = D_u / D_max that
// is disseminated back to nodes on ACKs (at most once per day, quantized
// to one byte).
//
// Ingestion is idempotent and order-tolerant: retransmitted packets
// (a retry after a lost ACK, or backhaul duplication) and reordered
// deliveries are dropped by per-node watermarks instead of corrupting
// the reconstructed trace with phantom rainflow cycles.
package netserver

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/battery"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// noneYet marks "no packet/report seen yet" in the per-node watermarks;
// simulation time starts at 0, so any real instant exceeds it.
const noneYet = simtime.Time(-1)

// Server is the network-server state. It is not safe for general
// concurrent use — the testbed runtime guards it with its gateway
// goroutine, and the LNS daemon gives each shard a private Server —
// with one carve-out the sharded simulator relies on: Ingest/Rejoin
// calls for *distinct* nodes may run concurrently. Per-node state is
// only ever touched by the lane owning that node, the tally counters
// are atomic, and the shared dirty flag is an atomic.Bool, so
// disjoint-node ingestion from parallel engine lanes is race-free.
// Everything else (Register, recomputes, w_u reads) stays serialized
// by the callers.
type Server struct {
	model    battery.Model
	tempC    float64
	interval simtime.Duration

	// nodes is indexed by node ID (IDs are small and dense in every
	// deployment this server sees); nil slots are unregistered. numNodes
	// counts the non-nil slots.
	nodes    []*nodeState
	numNodes int

	// Recomputes align to a fixed grid anchored at the first compute,
	// so a late call (e.g. after a gateway outage) does not permanently
	// shift every subsequent daily recompute.
	firstCompute simtime.Time
	nextDue      simtime.Time
	computed     bool

	// The barrier-recompute discipline (the LNS daemon path) keeps a
	// virtual clock — the newest uplink reception instant folded in via
	// AdvanceClock — and recomputes only at grid instants derived from
	// it, never mid-stream. clock is a running maximum over the instants
	// seen, so it is independent of ingest order; degrAt is the grid
	// instant of the latest RecomputeDegrAt (noneYet before the first);
	// dirty marks tracker/fleet mutations since then, letting a repeated
	// barrier at the same instant skip the O(nodes) degradation pass.
	// Atomic: parallel engine lanes ingest disjoint nodes concurrently
	// and all set it (see the type comment).
	clock  simtime.Time
	degrAt simtime.Time
	dirty  atomic.Bool

	// Observability handles; nil (no-op) unless SetObserver installed
	// them.
	cPackets, cPacketsDup, cReports, cReportsStale, cRecomputes *obs.Counter
	cRegisters, cRejoins                                        *obs.Counter
	gDmax                                                       *obs.Gauge
}

// SetObserver attaches observability counters. A nil or disabled
// recorder leaves the server un-instrumented.
func (s *Server) SetObserver(r *obs.Recorder) {
	if !r.Enabled() {
		return
	}
	s.cPackets = r.Counter("netserver.packets_ingested")
	s.cPacketsDup = r.Counter("netserver.packets_duplicate")
	s.cReports = r.Counter("netserver.reports_ingested")
	s.cReportsStale = r.Counter("netserver.reports_stale")
	s.cRecomputes = r.Counter("netserver.recomputes")
	s.cRegisters = r.Counter("netserver.registers")
	s.cRejoins = r.Counter("netserver.rejoins")
	s.gDmax = r.Gauge("netserver.dmax")
}

type nodeState struct {
	tracker *battery.Tracker
	degr    float64 // latest computed capacity fade
	wu      byte    // latest normalized degradation, quantized to 1 byte

	// lastPacketAt is the reception time of the newest ingested packet;
	// packets at or before it are duplicates or reordered stragglers.
	lastPacketAt simtime.Time
	// lastReportAt is the newest decoded transition time across all
	// previously ingested packets; reports at or before it were already
	// pushed (or superseded) and are dropped.
	lastReportAt simtime.Time
}

// New returns a server using the given degradation model, battery
// temperature, and recomputation interval (the paper uses one day).
func New(model battery.Model, tempC float64, interval simtime.Duration) (*Server, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("netserver: non-positive recompute interval %v", interval)
	}
	return &Server{
		model:    model,
		tempC:    tempC,
		interval: interval,
		clock:    noneYet,
		degrAt:   noneYet,
	}, nil
}

// Register adds a node with its initial state of charge. Registering an
// existing node resets its ENTIRE history: the degradation tracker AND
// the ingestion watermarks return to "nothing seen yet", so a report or
// packet retransmitted from before the reset replays as fresh data.
// That is correct exactly once — when the physical battery itself was
// replaced. A node that merely restarted (brownout, firmware reboot)
// must go through Rejoin, which keeps both the degradation history and
// the watermarks; the simulator's brownout path and the testbed gateway
// do so, and TestSimBrownoutRejoinsNeverReregisters pins it. Negative
// IDs are rejected (the dense index has no slot for them).
func (s *Server) Register(nodeID int, initialSoC float64) {
	if nodeID < 0 {
		return
	}
	s.cRegisters.Inc()
	st := &nodeState{
		tracker:      battery.NewTracker(s.model, s.tempC),
		lastPacketAt: noneYet,
		lastReportAt: noneYet,
	}
	st.tracker.Push(initialSoC)
	for nodeID >= len(s.nodes) {
		s.nodes = append(s.nodes, nil)
	}
	if s.nodes[nodeID] == nil {
		s.numNodes++
	}
	s.nodes[nodeID] = st
	s.dirty.Store(true)
}

// state returns the node's state or nil when unregistered.
func (s *Server) state(nodeID int) *nodeState {
	if nodeID < 0 || nodeID >= len(s.nodes) {
		return nil
	}
	return s.nodes[nodeID]
}

// Rejoin re-admits a node after a restart (e.g. a brownout) with its
// current state of charge. Unlike Register it preserves the accumulated
// degradation history — the battery did not reset, only the node's
// volatile state did — and keeps the ingestion watermarks so reports
// retransmitted from before the restart remain deduplicated. Unknown
// nodes fall back to a fresh registration.
func (s *Server) Rejoin(nodeID int, currentSoC float64) {
	st := s.state(nodeID)
	if st == nil {
		s.Register(nodeID, currentSoC)
		return
	}
	s.cRejoins.Inc()
	st.tracker.Push(currentSoC)
	s.dirty.Store(true)
}

// NumNodes returns how many nodes are registered.
func (s *Server) NumNodes() int { return s.numNodes }

// Registered reports whether the node is currently registered.
func (s *Server) Registered(nodeID int) bool { return s.state(nodeID) != nil }

// Ingest folds a decoded packet's transition reports into the node's
// reconstructed SoC trace. packetAt is the packet's reception time and
// window the node's forecast-window length (needed to decode the
// relative timestamps). Unknown nodes are ignored: a production server
// would trigger a join procedure, which is out of scope here.
//
// Duplicate and stale data is dropped at two levels. Whole packets at
// or before the newest ingested packet time are discarded (exact
// backhaul duplicates, reordered deliveries). Within a newer packet,
// reports whose decoded transition time is at or before the newest
// report of any previous packet are discarded (a retry re-piggybacking
// unACKed reports alongside fresh ones). The report watermark is held
// fixed while one packet is processed, so several same-window
// transitions inside a single packet all pass.
func (s *Server) Ingest(nodeID int, reports []battery.Report, packetAt simtime.Time, window simtime.Duration) {
	st := s.state(nodeID)
	if st == nil {
		return
	}
	if packetAt <= st.lastPacketAt {
		s.cPacketsDup.Inc()
		return
	}
	s.cPackets.Inc()
	s.dirty.Store(true)
	st.lastPacketAt = packetAt
	newest := st.lastReportAt
	for _, r := range reports {
		tr := r.Decode(packetAt, window)
		if tr.At <= st.lastReportAt {
			s.cReportsStale.Inc()
			continue
		}
		s.cReports.Inc()
		st.tracker.Push(tr.SoC)
		if tr.At > newest {
			newest = tr.At
		}
	}
	st.lastReportAt = newest
}

// RecomputeIfDue recomputes every node's degradation and the network's
// normalized weights if the dissemination interval elapsed; it reports
// whether a recomputation ran. The first call always computes and
// anchors the recompute grid; later calls fire only when the current
// grid slot is due, and the next deadline stays on the grid even when a
// call arrives late (e.g. delayed by a gateway outage).
func (s *Server) RecomputeIfDue(now simtime.Time) bool {
	if s.computed && now < s.nextDue {
		return false
	}
	s.recompute(now)
	return true
}

func (s *Server) recompute(now simtime.Time) {
	if !s.computed {
		s.firstCompute = now
		s.computed = true
	}
	elapsed := now.Sub(s.firstCompute)
	slots := int64(elapsed/s.interval) + 1
	s.nextDue = s.firstCompute.Add(simtime.Duration(slots) * s.interval)
	var dmax float64
	for _, st := range s.nodes {
		if st == nil {
			continue
		}
		st.degr = st.tracker.Degradation(simtime.Duration(now))
		dmax = math.Max(dmax, st.degr)
	}
	for _, st := range s.nodes {
		if st == nil {
			continue
		}
		wu := 0.0
		if dmax > 0 {
			wu = st.degr / dmax
		}
		st.wu = QuantizeWu(wu)
	}
	s.cRecomputes.Inc()
	s.gDmax.Set(dmax)
}

// AdvanceClock folds an observed instant into the virtual clock as a
// running maximum. Because max is commutative and associative, the
// resulting clock depends only on the SET of instants seen — not their
// order — which is the property that lets sharded daemons ingesting
// arbitrary interleavings of the same traffic agree on recompute grid
// slots.
func (s *Server) AdvanceClock(at simtime.Time) {
	if at > s.clock {
		s.clock = at
	}
}

// Clock returns the virtual clock (noneYet when no instant was folded).
func (s *Server) Clock() simtime.Time { return s.clock }

// GridInstant maps a virtual clock to the newest recompute-grid slot at
// or before it. The grid is anchored at virtual time 0 in multiples of
// the interval — a fixed property of the configuration, not of when the
// first uplink happened to arrive — so every shard of a fleet derives
// the same slot from the same clock with no coordination beyond the
// clock itself. A clock of noneYet (no traffic) maps to slot 0.
func GridInstant(clock simtime.Time, interval simtime.Duration) simtime.Time {
	if clock <= 0 || interval <= 0 {
		return 0
	}
	return clock - clock%simtime.Time(interval)
}

// GridInstant returns the server's current grid slot (see the free
// function).
func (s *Server) GridInstant() simtime.Time { return GridInstant(s.clock, s.interval) }

// RecomputeDegrAt evaluates every node's degradation at the given grid
// instant and returns the local maximum — the first half of a barrier
// recompute, run per shard; the caller folds the returned maxima into
// the fleet-wide D_max and feeds it back through ApplyWu. The O(nodes)
// degradation pass is skipped when nothing changed since a recompute at
// the same instant (the evaluation is a pure function of tracker state
// and instant, so skipping cannot change any observable). Either way
// the recompute grid bookkeeping (computed, firstCompute, nextDue) is
// left exactly as a recompute at `now` establishes it.
func (s *Server) RecomputeDegrAt(now simtime.Time) (dmax float64, ran bool) {
	if s.dirty.Load() || !s.computed || s.degrAt != now {
		if !s.computed {
			s.firstCompute = now
			s.computed = true
		}
		s.nextDue = now.Add(s.interval)
		for _, st := range s.nodes {
			if st == nil {
				continue
			}
			st.degr = st.tracker.Degradation(simtime.Duration(now))
		}
		s.degrAt = now
		s.dirty.Store(false)
		s.cRecomputes.Inc()
		ran = true
	}
	for _, st := range s.nodes {
		if st == nil {
			continue
		}
		dmax = math.Max(dmax, st.degr)
	}
	return dmax, ran
}

// ApplyWu disseminates the fleet-wide maximum degradation: every node's
// w_u is requantized as degr/dmax — the second half of a barrier
// recompute, run per shard after the coordinator merged the local
// maxima from RecomputeDegrAt.
func (s *Server) ApplyWu(dmax float64) {
	for _, st := range s.nodes {
		if st == nil {
			continue
		}
		wu := 0.0
		if dmax > 0 {
			wu = st.degr / dmax
		}
		st.wu = QuantizeWu(wu)
	}
	s.gDmax.Set(dmax)
}

// QuantizeWu quantizes a normalized degradation in [0,1] to the 1-byte
// wire form carried on ACKs. NaN clamps to 0 explicitly: min/max
// propagate NaN, and Go's float-to-integer conversion of NaN yields an
// implementation-defined value — a daemon ingesting malformed reports
// must not disseminate an arbitrary byte for it.
func QuantizeWu(wu float64) byte {
	if math.IsNaN(wu) {
		return 0
	}
	return byte(math.Round(min(1, max(0, wu)) * 255))
}

// DequantizeWu recovers the normalized degradation from its 1-byte wire
// form, exactly as a node interprets the ACK payload.
func DequantizeWu(b byte) float64 { return float64(b) / 255 }

// NormalizedDegradation returns the node's latest w_u as the node will
// receive it: quantized to 1/255 steps (the 1-byte ACK piggyback).
func (s *Server) NormalizedDegradation(nodeID int) float64 {
	st := s.state(nodeID)
	if st == nil {
		return 0
	}
	return DequantizeWu(st.wu)
}

// Degradation returns the node's latest computed capacity fade.
func (s *Server) Degradation(nodeID int) float64 {
	st := s.state(nodeID)
	if st == nil {
		return 0
	}
	return st.degr
}

// MaxDegradation returns the highest computed capacity fade in the
// network and the node holding it (-1 when no nodes are registered).
// Ties break toward the lowest node ID by construction: the index walk
// is ascending and the running maximum only moves on a strict
// improvement, so the first node carrying the maximum keeps it. (An
// earlier version also had an `id < nodeID` tie-break arm, unreachable
// under the ascending walk — a later equal-degradation id is never
// smaller than the one already held.)
func (s *Server) MaxDegradation() (nodeID int, degradation float64) {
	nodeID = -1
	for id, st := range s.nodes {
		if st == nil {
			continue
		}
		if nodeID == -1 || st.degr > degradation {
			nodeID, degradation = id, st.degr
		}
	}
	return nodeID, degradation
}
