// Package netserver implements the gateway/network-server side of the
// protocol (Sec. III-B): it reconstructs each node's state-of-charge
// trace from the 4-byte transition reports piggy-backed on uplink
// packets, recomputes battery degradation with the incremental rainflow
// tracker, and derives the normalized degradation w_u = D_u / D_max that
// is disseminated back to nodes on ACKs (at most once per day, quantized
// to one byte).
package netserver

import (
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/simtime"
)

// Server is the network-server state. It is not safe for concurrent use;
// the simulator serializes access, and the testbed runtime guards it
// with its gateway goroutine.
type Server struct {
	model    battery.Model
	tempC    float64
	interval simtime.Duration

	nodes       map[int]*nodeState
	lastCompute simtime.Time
	computed    bool
}

type nodeState struct {
	tracker *battery.Tracker
	degr    float64 // latest computed capacity fade
	wu      byte    // latest normalized degradation, quantized to 1 byte
}

// New returns a server using the given degradation model, battery
// temperature, and recomputation interval (the paper uses one day).
func New(model battery.Model, tempC float64, interval simtime.Duration) (*Server, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if interval <= 0 {
		return nil, fmt.Errorf("netserver: non-positive recompute interval %v", interval)
	}
	return &Server{
		model:    model,
		tempC:    tempC,
		interval: interval,
		nodes:    make(map[int]*nodeState),
	}, nil
}

// Register adds a node with its initial state of charge. Registering an
// existing node resets its history.
func (s *Server) Register(nodeID int, initialSoC float64) {
	st := &nodeState{tracker: battery.NewTracker(s.model, s.tempC)}
	st.tracker.Push(initialSoC)
	s.nodes[nodeID] = st
}

// NumNodes returns how many nodes are registered.
func (s *Server) NumNodes() int { return len(s.nodes) }

// Ingest folds a decoded packet's transition reports into the node's
// reconstructed SoC trace. packetAt is the packet's reception time and
// window the node's forecast-window length (needed to decode the
// relative timestamps). Unknown nodes are ignored: a production server
// would trigger a join procedure, which is out of scope here.
func (s *Server) Ingest(nodeID int, reports []battery.Report, packetAt simtime.Time, window simtime.Duration) {
	st, ok := s.nodes[nodeID]
	if !ok {
		return
	}
	for _, r := range reports {
		st.tracker.Push(r.Decode(packetAt, window).SoC)
	}
}

// RecomputeIfDue recomputes every node's degradation and the network's
// normalized weights if the dissemination interval elapsed; it reports
// whether a recomputation ran. The first call always computes.
func (s *Server) RecomputeIfDue(now simtime.Time) bool {
	if s.computed && now.Sub(s.lastCompute) < s.interval {
		return false
	}
	s.recompute(now)
	return true
}

func (s *Server) recompute(now simtime.Time) {
	s.lastCompute = now
	s.computed = true
	var dmax float64
	for _, st := range s.nodes {
		st.degr = st.tracker.Degradation(simtime.Duration(now))
		dmax = math.Max(dmax, st.degr)
	}
	for _, st := range s.nodes {
		wu := 0.0
		if dmax > 0 {
			wu = st.degr / dmax
		}
		st.wu = byte(math.Round(wu * 255))
	}
}

// NormalizedDegradation returns the node's latest w_u as the node will
// receive it: quantized to 1/255 steps (the 1-byte ACK piggyback).
func (s *Server) NormalizedDegradation(nodeID int) float64 {
	st, ok := s.nodes[nodeID]
	if !ok {
		return 0
	}
	return float64(st.wu) / 255
}

// Degradation returns the node's latest computed capacity fade.
func (s *Server) Degradation(nodeID int) float64 {
	st, ok := s.nodes[nodeID]
	if !ok {
		return 0
	}
	return st.degr
}

// MaxDegradation returns the highest computed capacity fade in the
// network and the node holding it (-1 when no nodes are registered).
func (s *Server) MaxDegradation() (nodeID int, degradation float64) {
	nodeID = -1
	for id, st := range s.nodes {
		if st.degr > degradation || nodeID == -1 {
			nodeID, degradation = id, st.degr
		}
	}
	return nodeID, degradation
}
