// Package simtime defines the simulated-time types shared by every
// subsystem of the repository.
//
// Simulated time is an int64 count of milliseconds since scenario start.
// A dedicated type (rather than time.Time) keeps multi-year simulations
// free of wall-clock concerns (time zones, monotonic clocks) and makes
// arithmetic on the hot path allocation-free.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, in milliseconds since the start
// of the scenario (t = 0).
type Time int64

// Duration is a span of simulated time in milliseconds.
type Duration int64

// Convenient duration units.
const (
	Millisecond Duration = 1
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
	Day                  = 24 * Hour
)

// Year is the length of a simulated year. A fixed 365-day year keeps the
// synthetic solar trace aligned when simulations wrap across years.
const Year = 365 * Day

// FromDuration converts a wall-clock time.Duration to a simulated Duration.
func FromDuration(d time.Duration) Duration {
	return Duration(d.Milliseconds())
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Minutes returns the duration as floating-point minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// Hours returns the duration as floating-point hours.
func (d Duration) Hours() float64 { return float64(d) / float64(Hour) }

// Days returns the duration as floating-point days.
func (d Duration) Days() float64 { return float64(d) / float64(Day) }

// Std returns the duration as a wall-clock time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Millisecond }

// String formats the duration using the standard library's notation.
func (d Duration) String() string { return d.Std().String() }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as floating-point seconds since scenario start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Days returns the instant as floating-point days since scenario start.
func (t Time) Days() float64 { return float64(t) / float64(Day) }

// DayIndex returns the zero-based day number containing t.
func (t Time) DayIndex() int { return int(t / Time(Day)) }

// TimeOfDay returns the offset of t within its day.
func (t Time) TimeOfDay() Duration { return Duration(t % Time(Day)) }

// DayOfYear returns the zero-based day within the simulated 365-day year.
func (t Time) DayOfYear() int { return t.DayIndex() % 365 }

// String formats the instant as "d<day> hh:mm:ss.mmm".
func (t Time) String() string {
	tod := t.TimeOfDay()
	h := tod / Hour
	m := (tod % Hour) / Minute
	s := (tod % Minute) / Second
	ms := tod % Second
	return fmt.Sprintf("d%d %02d:%02d:%02d.%03d", t.DayIndex(), h, m, s, ms)
}
