// Package config defines the simulation scenario: every knob of the
// paper's evaluation (Sec. IV-A1) with validation and the published
// defaults.
package config

import (
	"fmt"
	"hash/fnv"

	"repro/internal/battery"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/radio"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// ProtocolKind selects the MAC protocol every node runs.
type ProtocolKind string

// The protocols under evaluation.
const (
	// ProtocolLoRaWAN is the pure-ALOHA baseline.
	ProtocolLoRaWAN ProtocolKind = "lorawan"
	// ProtocolBLA is the proposed battery lifespan-aware MAC (H-theta).
	ProtocolBLA ProtocolKind = "bla"
	// ProtocolThetaOnly is the H-50C ablation: charge cap without window
	// selection.
	ProtocolThetaOnly ProtocolKind = "theta-only"
)

// ForecastKind selects the green-energy forecaster nodes use.
type ForecastKind string

// The available forecasters.
const (
	// ForecastEWMA is the default on-sensor diurnal-profile EWMA.
	ForecastEWMA ForecastKind = "ewma"
	// ForecastPerfect is the oracle (ablation).
	ForecastPerfect ForecastKind = "perfect"
	// ForecastNoisy is the oracle with multiplicative Gaussian error.
	ForecastNoisy ForecastKind = "noisy"
)

// Scenario is a complete, self-contained description of one simulation
// run. The zero value is not valid; start from Default().
type Scenario struct {
	// Seed drives every random choice in the run.
	Seed uint64

	// Nodes is the network size (paper: up to 500; 100 for run-to-EoL).
	Nodes int
	// MaxDistanceM is the maximum node-gateway distance (paper: 5 km).
	MaxDistanceM float64
	// Channels is the number of 125 kHz uplink channels in use. The
	// paper's testbed uses 1 "to emulate a larger network"; the
	// large-scale evaluation runs in the same congested regime.
	Channels int
	// Demodulators is omega: concurrent receptions each gateway supports.
	Demodulators int
	// Gateways is the number of gateways (the paper's system model allows
	// "one or more"); extras sit on a ring at 60% of the deployment
	// radius. A packet is delivered when any gateway decodes it.
	Gateways int

	// PeriodMin/PeriodMax bound the uniformly drawn per-node sampling
	// period (paper: [16, 60] minutes).
	PeriodMin simtime.Duration
	PeriodMax simtime.Duration
	// StartSpread bounds the first sampling instant: every node's first
	// packet falls uniformly in [0, StartSpread). Zero spreads each node
	// over its own full period (uncorrelated phases). Deployments that
	// power on together (the NS-3 periodic-sender default) use a small
	// spread, which locks equal-period nodes into persistent ALOHA
	// collisions — the regime the paper's window selection disarms.
	StartSpread simtime.Duration
	// ForecastWindow is the forecast-window length (paper: 1 minute).
	ForecastWindow simtime.Duration

	// PayloadBytes is the sensed-data payload (paper: 10 B). Battery
	// transition reports add battery.ReportSize bytes each on top.
	PayloadBytes int
	// AckPayloadBytes is the downlink ACK payload, including the 1-byte
	// w_u piggyback.
	AckPayloadBytes int
	// MaxAttempts caps transmissions per packet (LoRa: 8).
	MaxAttempts int
	// TxPowerDBm is the RF output power of every node.
	TxPowerDBm float64
	// FixedSF forces one spreading factor for all nodes (the testbed
	// uses SF10); zero selects link-budget based assignment.
	FixedSF lora.SpreadingFactor
	// SFMarginDB is the link margin used by SF assignment.
	SFMarginDB float64

	// Protocol selects the MAC; Theta, WeightB, Beta parameterize BLA
	// and ThetaOnly.
	Protocol ProtocolKind
	Theta    float64
	WeightB  float64
	Beta     float64
	// DisableRetxHistory turns off Eq. (14) learning (ablation).
	DisableRetxHistory bool
	// DisableDecisionTable turns off BLA's cached night-time DecideTx
	// verdict (the per-day decision table). The table is proven
	// bit-identical to the full Algorithm 1 pass — this is the
	// verification escape hatch the determinism smokes diff against,
	// not a behaviour switch.
	DisableDecisionTable bool
	// Utility is the data-utility function BLA nodes optimize; nil means
	// the paper's linear Eq. (16). Reported utility metrics always use
	// the linear function so protocols stay comparable.
	Utility utility.Function

	// Forecast selects the green-energy forecaster; ForecastNoise is the
	// relative error of ForecastNoisy; ForecastPrimeDays pretrains the
	// EWMA profile (offline training in the paper).
	Forecast          ForecastKind
	ForecastNoise     float64
	ForecastPrimeDays int

	// Battery model and sizing. BatteryCapacityJ == 0 auto-sizes each
	// node's battery to 24 h of autonomous operation (paper Sec. II-C)
	// assuming BatterySizingAttempts transmission attempts per packet
	// (headroom for retransmission-heavy days and for theta caps).
	BatteryModel          battery.Model
	BatteryTempC          float64
	BatteryCapacityJ      float64
	BatterySizingAttempts float64
	// SupercapJ, when positive, puts a supercapacitor of this capacity
	// in front of every battery (harvest and loads hit it first),
	// suppressing battery cycle aging — the hybrid storage extension the
	// paper's Sec. V leaves as future work. SupercapLeakW is its
	// self-discharge.
	SupercapJ     float64
	SupercapLeakW float64
	// InitialSoC is the deployment state of charge.
	InitialSoC float64
	// SleepPowerW is the node's baseline (sleep) power draw.
	SleepPowerW float64

	// Solar configures the shared irradiance trace; PanelPeakMultiple
	// sizes each panel so peak generation per forecast window funds this
	// many transmissions (paper: 2); SolarVariation is the per-node cloud
	// noise amplitude.
	Solar             energy.SolarConfig
	PanelPeakMultiple float64
	SolarVariation    float64

	// PathLoss is the propagation model.
	PathLoss radio.PathLoss

	// DegradationInterval is how often the gateway recomputes and
	// disseminates w_u (paper: daily).
	DegradationInterval simtime.Duration

	// Faults configures control-plane fault injection (downlink/uplink
	// loss, gateway outages, node brownouts) and the node-side
	// stale-weight fallback. The zero value models the paper's perfect
	// control plane and leaves every run byte-identical to a build
	// without the fault layer.
	Faults faults.Config

	// Duration is the simulated time; ignored when RunToEoL is set.
	Duration simtime.Duration
	// RunToEoL ends the run when the first battery reaches end of life
	// (Fig. 7/8). MaxDuration bounds runaway runs.
	RunToEoL    bool
	MaxDuration simtime.Duration
}

// Default returns the paper's evaluation parameters (Sec. IV-A1) for a
// 5-year, 500-node H-50 run.
func Default() Scenario {
	return Scenario{
		Seed:                  1,
		Nodes:                 500,
		MaxDistanceM:          5000,
		Channels:              1,
		Demodulators:          8,
		Gateways:              1,
		PeriodMin:             16 * simtime.Minute,
		PeriodMax:             60 * simtime.Minute,
		StartSpread:           30 * simtime.Second,
		ForecastWindow:        simtime.Minute,
		PayloadBytes:          10,
		AckPayloadBytes:       5,
		MaxAttempts:           8,
		TxPowerDBm:            14,
		SFMarginDB:            3,
		Protocol:              ProtocolBLA,
		Theta:                 0.5,
		WeightB:               1,
		Beta:                  0.3,
		Forecast:              ForecastEWMA,
		ForecastPrimeDays:     7,
		BatteryModel:          battery.DefaultModel(),
		BatterySizingAttempts: 4,
		BatteryTempC:          25,
		InitialSoC:            0.5,
		SleepPowerW:           30e-6,
		Solar:                 energy.DefaultSolarConfig(1),
		PanelPeakMultiple:     2,
		SolarVariation:        0.25,
		PathLoss:              radio.DefaultPathLoss(1),
		DegradationInterval:   simtime.Day,
		Duration:              5 * simtime.Year,
		MaxDuration:           30 * simtime.Year,
	}
}

// WithSeed returns a copy with all random streams reseeded coherently.
func (s Scenario) WithSeed(seed uint64) Scenario {
	s.Seed = seed
	s.Solar.Seed = seed
	s.PathLoss.Seed = seed
	return s
}

// Validate reports the first invalid field.
func (s Scenario) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("config: nodes %d must be positive", s.Nodes)
	case s.MaxDistanceM <= 0:
		return fmt.Errorf("config: max distance %v must be positive", s.MaxDistanceM)
	case s.Channels <= 0:
		return fmt.Errorf("config: channels %d must be positive", s.Channels)
	case s.Demodulators <= 0:
		return fmt.Errorf("config: demodulators %d must be positive", s.Demodulators)
	case s.Gateways <= 0:
		return fmt.Errorf("config: gateways %d must be positive", s.Gateways)
	case s.PeriodMin <= 0 || s.PeriodMax < s.PeriodMin:
		return fmt.Errorf("config: period range [%v,%v] invalid", s.PeriodMin, s.PeriodMax)
	case s.StartSpread < 0:
		return fmt.Errorf("config: negative start spread %v", s.StartSpread)
	case s.ForecastWindow <= 0:
		return fmt.Errorf("config: forecast window %v must be positive", s.ForecastWindow)
	case s.PeriodMin < s.ForecastWindow:
		return fmt.Errorf("config: period %v shorter than one forecast window %v", s.PeriodMin, s.ForecastWindow)
	case s.PayloadBytes <= 0:
		return fmt.Errorf("config: payload %d must be positive", s.PayloadBytes)
	case s.AckPayloadBytes <= 0:
		return fmt.Errorf("config: ack payload %d must be positive", s.AckPayloadBytes)
	case s.MaxAttempts <= 0:
		return fmt.Errorf("config: max attempts %d must be positive", s.MaxAttempts)
	case s.FixedSF != 0 && !s.FixedSF.Valid():
		return fmt.Errorf("config: fixed SF %d invalid", int(s.FixedSF))
	case s.InitialSoC < 0 || s.InitialSoC > 1:
		return fmt.Errorf("config: initial SoC %v outside [0,1]", s.InitialSoC)
	case s.BatteryCapacityJ == 0 && s.BatterySizingAttempts <= 0:
		return fmt.Errorf("config: battery sizing attempts %v must be positive", s.BatterySizingAttempts)
	case s.SupercapJ < 0 || s.SupercapLeakW < 0:
		return fmt.Errorf("config: negative supercap parameters")
	case s.SleepPowerW < 0:
		return fmt.Errorf("config: negative sleep power %v", s.SleepPowerW)
	case s.PanelPeakMultiple <= 0:
		return fmt.Errorf("config: panel peak multiple %v must be positive", s.PanelPeakMultiple)
	case s.SolarVariation < 0 || s.SolarVariation > 1:
		return fmt.Errorf("config: solar variation %v outside [0,1]", s.SolarVariation)
	case s.DegradationInterval <= 0:
		return fmt.Errorf("config: degradation interval %v must be positive", s.DegradationInterval)
	case !s.RunToEoL && s.Duration <= 0:
		return fmt.Errorf("config: duration %v must be positive", s.Duration)
	case s.RunToEoL && s.MaxDuration <= 0:
		return fmt.Errorf("config: run-to-EoL needs a positive max duration")
	}
	switch s.Protocol {
	case ProtocolLoRaWAN:
	case ProtocolBLA, ProtocolThetaOnly:
		if s.Theta <= 0 || s.Theta > 1 {
			return fmt.Errorf("config: theta %v outside (0,1]", s.Theta)
		}
		if s.WeightB < 0 || s.WeightB > 1 {
			return fmt.Errorf("config: weight w_b %v outside [0,1]", s.WeightB)
		}
		if s.Beta <= 0 || s.Beta > 1 {
			return fmt.Errorf("config: beta %v outside (0,1]", s.Beta)
		}
	default:
		return fmt.Errorf("config: unknown protocol %q", s.Protocol)
	}
	switch s.Forecast {
	case ForecastEWMA, ForecastPerfect:
	case ForecastNoisy:
		if s.ForecastNoise < 0 {
			return fmt.Errorf("config: negative forecast noise %v", s.ForecastNoise)
		}
	default:
		return fmt.Errorf("config: unknown forecaster %q", s.Forecast)
	}
	if err := s.BatteryModel.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := s.Solar.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// ProtocolLabel returns the display name of the configured protocol
// ("LoRaWAN", "H-50", "H-50C", ...).
func (s Scenario) ProtocolLabel() string {
	switch s.Protocol {
	case ProtocolBLA:
		return fmt.Sprintf("H-%d", int(s.Theta*100+0.5))
	case ProtocolThetaOnly:
		return fmt.Sprintf("H-%dC", int(s.Theta*100+0.5))
	default:
		return "LoRaWAN"
	}
}

// Fingerprint returns a stable 64-bit hash of the scenario for run
// manifests: two runs with equal fingerprints (and equal code) produce
// identical results. It hashes the %+v rendering of the struct — the
// Scenario holds no maps, so the rendering is deterministic.
func (s Scenario) Fingerprint() string {
	// DisableDecisionTable chooses how the same byte-exact result is
	// computed, like worker or shard count (see Exec below) — so it
	// must not change a run's identity. Zeroing it here lets the
	// determinism smoke diff whole obs exports, embedded manifest
	// line included, across the two settings.
	s.DisableDecisionTable = false
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", s)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Exec bundles the execution-strategy knobs shared by the CLIs. They
// are deliberately NOT part of Scenario: Fingerprint hashes the whole
// scenario into run manifests, and neither worker nor shard count may
// change a run's identity — both only choose how the same byte-exact
// result is computed.
type Exec struct {
	// Workers caps the goroutines used for run fan-out and shard
	// phases; 0 (or negative) uses every CPU.
	Workers int
	// Shards is the requested per-cell engine count for each run: 0
	// auto-selects min(gateways, workers), 1 forces the single-heap
	// engine, larger values are clamped to the gateway count.
	Shards int
}
