package config

import (
	"testing"

	"repro/internal/lora"
	"repro/internal/simtime"
	"repro/internal/utility"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesPaperSetup(t *testing.T) {
	cfg := Default()
	if cfg.Nodes != 500 {
		t.Errorf("Nodes = %d, want 500 (Sec. IV-A1)", cfg.Nodes)
	}
	if cfg.MaxDistanceM != 5000 {
		t.Errorf("MaxDistanceM = %v, want 5 km", cfg.MaxDistanceM)
	}
	if cfg.PeriodMin != 16*simtime.Minute || cfg.PeriodMax != 60*simtime.Minute {
		t.Errorf("period range = [%v,%v], want [16,60] min", cfg.PeriodMin, cfg.PeriodMax)
	}
	if cfg.ForecastWindow != simtime.Minute {
		t.Errorf("forecast window = %v, want 1 min", cfg.ForecastWindow)
	}
	if cfg.WeightB != 1 {
		t.Errorf("w_b = %v, want 1", cfg.WeightB)
	}
	if cfg.BatteryTempC != 25 {
		t.Errorf("battery temp = %v, want 25 C (insulated)", cfg.BatteryTempC)
	}
	if cfg.MaxAttempts != 8 {
		t.Errorf("max attempts = %d, want 8", cfg.MaxAttempts)
	}
	if cfg.PayloadBytes != 10 {
		t.Errorf("payload = %d, want 10 B", cfg.PayloadBytes)
	}
	if cfg.DegradationInterval != simtime.Day {
		t.Errorf("dissemination interval = %v, want daily", cfg.DegradationInterval)
	}
	if cfg.Duration != 5*simtime.Year {
		t.Errorf("duration = %v, want 5 years", cfg.Duration)
	}
}

func TestWithSeedReseedsSubsystems(t *testing.T) {
	cfg := Default().WithSeed(99)
	if cfg.Seed != 99 || cfg.Solar.Seed != 99 || cfg.PathLoss.Seed != 99 {
		t.Errorf("WithSeed did not propagate: %d %d %d", cfg.Seed, cfg.Solar.Seed, cfg.PathLoss.Seed)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero distance", func(s *Scenario) { s.MaxDistanceM = 0 }},
		{"zero channels", func(s *Scenario) { s.Channels = 0 }},
		{"zero demodulators", func(s *Scenario) { s.Demodulators = 0 }},
		{"zero gateways", func(s *Scenario) { s.Gateways = 0 }},
		{"inverted period", func(s *Scenario) { s.PeriodMax = s.PeriodMin - 1 }},
		{"negative start spread", func(s *Scenario) { s.StartSpread = -1 }},
		{"zero window", func(s *Scenario) { s.ForecastWindow = 0 }},
		{"period shorter than window", func(s *Scenario) { s.PeriodMin = s.ForecastWindow / 2 }},
		{"zero payload", func(s *Scenario) { s.PayloadBytes = 0 }},
		{"zero ack payload", func(s *Scenario) { s.AckPayloadBytes = 0 }},
		{"zero attempts", func(s *Scenario) { s.MaxAttempts = 0 }},
		{"invalid fixed SF", func(s *Scenario) { s.FixedSF = 13 }},
		{"bad initial SoC", func(s *Scenario) { s.InitialSoC = 1.5 }},
		{"negative sleep power", func(s *Scenario) { s.SleepPowerW = -1 }},
		{"zero sizing attempts", func(s *Scenario) { s.BatterySizingAttempts = 0; s.BatteryCapacityJ = 0 }},
		{"negative supercap", func(s *Scenario) { s.SupercapJ = -1 }},
		{"zero panel multiple", func(s *Scenario) { s.PanelPeakMultiple = 0 }},
		{"bad solar variation", func(s *Scenario) { s.SolarVariation = 2 }},
		{"zero dissemination", func(s *Scenario) { s.DegradationInterval = 0 }},
		{"zero duration", func(s *Scenario) { s.Duration = 0 }},
		{"run-to-eol no cap", func(s *Scenario) { s.RunToEoL = true; s.MaxDuration = 0 }},
		{"unknown protocol", func(s *Scenario) { s.Protocol = "carrier-pigeon" }},
		{"bla bad theta", func(s *Scenario) { s.Theta = 0 }},
		{"bla bad wb", func(s *Scenario) { s.WeightB = 2 }},
		{"bla bad beta", func(s *Scenario) { s.Beta = 0 }},
		{"unknown forecaster", func(s *Scenario) { s.Forecast = "tarot" }},
		{"negative forecast noise", func(s *Scenario) { s.Forecast = ForecastNoisy; s.ForecastNoise = -1 }},
		{"bad battery model", func(s *Scenario) { s.BatteryModel.K1 = 0 }},
		{"bad solar config", func(s *Scenario) { s.Solar.CloudAttenuation = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestValidateAcceptsVariants(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"lorawan ignores theta", func(s *Scenario) { s.Protocol = ProtocolLoRaWAN; s.Theta = 0 }},
		{"theta-only", func(s *Scenario) { s.Protocol = ProtocolThetaOnly; s.Theta = 0.5 }},
		{"fixed SF10", func(s *Scenario) { s.FixedSF = lora.SF10 }},
		{"pinned capacity ignores sizing", func(s *Scenario) { s.BatteryCapacityJ = 100; s.BatterySizingAttempts = 0 }},
		{"run to EoL", func(s *Scenario) { s.RunToEoL = true; s.Duration = 0 }},
		{"supercap hybrid", func(s *Scenario) { s.SupercapJ = 2; s.SupercapLeakW = 1e-5 }},
		{"multi gateway", func(s *Scenario) { s.Gateways = 4 }},
		{"custom utility", func(s *Scenario) { s.Utility = utility.Deadline{Fraction: 0.5} }},
		{"perfect forecast", func(s *Scenario) { s.Forecast = ForecastPerfect }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Errorf("Validate rejected valid variant: %v", err)
			}
		})
	}
}

func TestProtocolLabel(t *testing.T) {
	tests := []struct {
		protocol ProtocolKind
		theta    float64
		want     string
	}{
		{ProtocolLoRaWAN, 1, "LoRaWAN"},
		{ProtocolBLA, 0.05, "H-5"},
		{ProtocolBLA, 0.5, "H-50"},
		{ProtocolBLA, 1, "H-100"},
		{ProtocolThetaOnly, 0.5, "H-50C"},
	}
	for _, tt := range tests {
		cfg := Default()
		cfg.Protocol = tt.protocol
		cfg.Theta = tt.theta
		if got := cfg.ProtocolLabel(); got != tt.want {
			t.Errorf("label(%s,%v) = %q, want %q", tt.protocol, tt.theta, got, tt.want)
		}
	}
}
