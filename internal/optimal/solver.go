package optimal

import (
	"fmt"
	"math"
)

// maxExhaustiveStates bounds the exhaustive search space; beyond it
// SolveExhaustive refuses rather than hanging.
const maxExhaustiveStates = 5_000_000

// SolveExhaustive enumerates every feasible schedule and returns the one
// minimizing the scalarized objective. It is exponential and intended
// for tiny instances only (the paper calls the full problem "hard to
// solve"); use SolveGreedy otherwise.
func SolveExhaustive(p Problem) (Schedule, Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, Evaluation{}, err
	}
	// Count the joint choice space.
	states := 1.0
	for i := range p.Nodes {
		per := float64(p.Nodes[i].PeriodSlots)
		states *= math.Pow(per, float64(p.Packets(i)))
		if states > maxExhaustiveStates {
			return Schedule{}, Evaluation{}, fmt.Errorf(
				"optimal: exhaustive space exceeds %d states; use SolveGreedy", maxExhaustiveStates)
		}
	}

	current := Schedule{TxSlot: make([][]int, len(p.Nodes))}
	for i := range p.Nodes {
		current.TxSlot[i] = make([]int, p.Packets(i))
	}

	best := Schedule{}
	bestEval := Evaluation{Objective: math.Inf(1)}

	// Enumerate per-packet offsets depth-first over (node, packet) pairs.
	type pos struct{ node, packet int }
	var order []pos
	for i := range p.Nodes {
		for k := 0; k < p.Packets(i); k++ {
			order = append(order, pos{i, k})
		}
	}
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(order) {
			eval := p.Evaluate(current)
			if eval.Objective < bestEval.Objective {
				bestEval = eval
				best = cloneSchedule(current)
			}
			return
		}
		pp := order[depth]
		tau := p.Nodes[pp.node].PeriodSlots
		for off := 0; off < tau; off++ {
			slot := pp.packet*tau + off
			if slot >= p.Slots {
				break
			}
			current.TxSlot[pp.node][pp.packet] = slot
			rec(depth + 1)
		}
	}
	rec(0)

	if math.IsInf(bestEval.Objective, 1) {
		return Schedule{}, bestEval, fmt.Errorf("optimal: no feasible schedule")
	}
	return best, bestEval, nil
}

// SolveGreedy schedules packets in generation order: each packet takes
// the slot in its period that minimizes a local score (battery draw
// beyond generation, plus weighted disutility) among slots with omega
// capacity left and battery feasibility. It mirrors the structure of the
// on-sensor heuristic but with clairvoyant generation knowledge and
// global collision avoidance.
func SolveGreedy(p Problem) (Schedule, Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, Evaluation{}, err
	}
	s := Schedule{TxSlot: make([][]int, len(p.Nodes))}
	perSlot := make([]int, p.Slots)
	psi := make([]float64, len(p.Nodes))
	for i := range p.Nodes {
		s.TxSlot[i] = make([]int, 0, p.Packets(i))
		psi[i] = p.Nodes[i].InitialJ
	}

	// Process period by period; within a period, nodes go round-robin so
	// no node systematically gets the leftovers.
	maxPackets := 0
	for i := range p.Nodes {
		if n := p.Packets(i); n > maxPackets {
			maxPackets = n
		}
	}
	for k := 0; k < maxPackets; k++ {
		for i, n := range p.Nodes {
			if k >= p.Packets(i) {
				continue
			}
			tau := n.PeriodSlots
			bestSlot, bestScore := -1, math.Inf(1)
			// Battery evolution inside the period depends on the chosen
			// slot; evaluate each candidate.
			for off := 0; off < tau; off++ {
				slot := k*tau + off
				if slot >= p.Slots || perSlot[slot] >= p.Omega {
					continue
				}
				if !feasibleWithin(n, psi[i], k*tau, slot) {
					continue
				}
				drawBeyondGen := math.Max(0, n.TxEnergyJ-n.GenJ[slot]) / n.TxEnergyJ
				score := drawBeyondGen + p.UtilityWeight*float64(off)/float64(tau)
				if score < bestScore {
					bestScore, bestSlot = score, off
				}
			}
			if bestSlot == -1 {
				return Schedule{}, Evaluation{}, fmt.Errorf(
					"optimal: greedy found no feasible slot for node %d packet %d", i, k)
			}
			slot := k*tau + bestSlot
			s.TxSlot[i] = append(s.TxSlot[i], slot)
			perSlot[slot]++
			// Advance the battery through the period.
			for t := k * tau; t < (k+1)*tau && t < p.Slots; t++ {
				draw := n.SleepEnergyJ
				if t == slot {
					draw = n.TxEnergyJ
				}
				psi[i] = math.Min(math.Max(0, psi[i]+n.GenJ[t]-draw), n.CapacityJ)
			}
		}
	}
	return s, p.Evaluate(s), nil
}

// feasibleWithin reports whether the battery survives from the period
// start through a transmission at the candidate slot.
func feasibleWithin(n NodeSpec, psi0 float64, from, txSlot int) bool {
	psi := psi0
	for t := from; t <= txSlot; t++ {
		draw := n.SleepEnergyJ
		if t == txSlot {
			draw = n.TxEnergyJ
		}
		psi = math.Min(psi+n.GenJ[t]-draw, n.CapacityJ)
		if psi < 0 {
			return false
		}
	}
	return true
}

func cloneSchedule(s Schedule) Schedule {
	out := Schedule{TxSlot: make([][]int, len(s.TxSlot))}
	for i, slots := range s.TxSlot {
		out.TxSlot[i] = append([]int(nil), slots...)
	}
	return out
}
