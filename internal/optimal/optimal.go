// Package optimal implements the paper's centralized clairvoyant
// formulation of the battery lifespan maximization problem (Sec. III-A,
// Eq. 8-12): a TDMA schedule over rho slots where a clairvoyant network
// manager knows every node's future energy generation and assigns each
// packet a transmission slot, subject to the gateway's omega concurrent
// receptions and battery feasibility.
//
// The paper only uses this formulation to motivate the on-sensor
// heuristic (the multi-objective MINLP is impractical); this package
// provides an exhaustive solver for tiny instances and a greedy
// clairvoyant scheduler for larger ones, so the heuristic's optimality
// gap can be measured (see examples/optimalgap).
package optimal

import (
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/simtime"
)

// NodeSpec describes one node of the centralized problem.
type NodeSpec struct {
	// PeriodSlots is tau: a packet is generated every tau slots,
	// starting at slot 0.
	PeriodSlots int
	// TxEnergyJ is consumed in a transmission slot (Eq. 6).
	TxEnergyJ float64
	// SleepEnergyJ is consumed in every non-transmission slot.
	SleepEnergyJ float64
	// GenJ is the clairvoyant per-slot green energy generation, length
	// >= the problem's slot count.
	GenJ []float64
	// CapacityJ is the battery's usable capacity (theta already
	// applied).
	CapacityJ float64
	// InitialJ is the energy stored at slot 0.
	InitialJ float64
}

// Problem is one instance of the centralized formulation.
type Problem struct {
	// Slots is rho, the scheduling horizon.
	Slots int
	// Omega is the gateway's concurrent reception capacity (Eq. 11).
	Omega int
	// SlotLen converts slots to time for calendar aging.
	SlotLen simtime.Duration
	// Model and TempC parameterize degradation.
	Model battery.Model
	TempC float64
	// UtilityWeight scalarizes the bi-objective (Eq. 8-9):
	// minimize maxDeg + UtilityWeight * maxDisutility.
	UtilityWeight float64
	Nodes         []NodeSpec
}

// Validate reports the first inconsistency.
func (p Problem) Validate() error {
	switch {
	case p.Slots <= 0:
		return fmt.Errorf("optimal: slots %d must be positive", p.Slots)
	case p.Omega <= 0:
		return fmt.Errorf("optimal: omega %d must be positive", p.Omega)
	case p.SlotLen <= 0:
		return fmt.Errorf("optimal: slot length %v must be positive", p.SlotLen)
	case len(p.Nodes) == 0:
		return fmt.Errorf("optimal: no nodes")
	case p.UtilityWeight < 0:
		return fmt.Errorf("optimal: negative utility weight %v", p.UtilityWeight)
	}
	if err := p.Model.Validate(); err != nil {
		return err
	}
	for i, n := range p.Nodes {
		switch {
		case n.PeriodSlots <= 0 || n.PeriodSlots > p.Slots:
			return fmt.Errorf("optimal: node %d period %d outside [1,%d]", i, n.PeriodSlots, p.Slots)
		case len(n.GenJ) < p.Slots:
			return fmt.Errorf("optimal: node %d generation trace has %d slots, need %d", i, len(n.GenJ), p.Slots)
		case n.TxEnergyJ <= 0 || n.CapacityJ <= 0:
			return fmt.Errorf("optimal: node %d energies must be positive", i)
		case n.InitialJ < 0 || n.InitialJ > n.CapacityJ:
			return fmt.Errorf("optimal: node %d initial energy %v outside [0,%v]", i, n.InitialJ, n.CapacityJ)
		}
	}
	return nil
}

// Packets returns how many packets node i must schedule in the horizon
// (the constraint Eq. 10: every generated packet except a trailing
// partial one).
func (p Problem) Packets(i int) int { return p.Slots / p.Nodes[i].PeriodSlots }

// Schedule assigns each packet of each node a transmission slot.
// TxSlot[i][k] is the absolute slot of node i's k-th packet, which must
// lie within the packet's period [k*tau, (k+1)*tau).
type Schedule struct {
	TxSlot [][]int
}

// Evaluation summarizes a schedule's quality.
type Evaluation struct {
	// Feasible is false when a battery went negative or the omega
	// constraint is violated.
	Feasible bool
	// MaxDegradation is Eq. (8): the worst node's capacity fade.
	MaxDegradation float64
	// MaxDisutility is Eq. (9): the worst node's (1 - average utility).
	MaxDisutility float64
	// Objective is the scalarized value used for comparison.
	Objective float64
}

// Evaluate computes the objective of a schedule: it simulates every
// node's battery over the horizon (Eq. 5), applies the degradation model
// (Eq. 1-4), and checks the collision constraint (Eq. 11).
func (p Problem) Evaluate(s Schedule) Evaluation {
	eval := Evaluation{Feasible: true}
	if len(s.TxSlot) != len(p.Nodes) {
		return Evaluation{Objective: math.Inf(1)}
	}

	// Collision constraint: at most omega transmissions per slot.
	perSlot := make([]int, p.Slots)
	for i, slots := range s.TxSlot {
		if len(slots) != p.Packets(i) {
			return Evaluation{Objective: math.Inf(1)}
		}
		tau := p.Nodes[i].PeriodSlots
		for k, t := range slots {
			if t < k*tau || t >= (k+1)*tau || t >= p.Slots {
				return Evaluation{Objective: math.Inf(1)}
			}
			perSlot[t]++
			if perSlot[t] > p.Omega {
				eval.Feasible = false
			}
		}
	}

	horizon := simtime.Duration(p.Slots) * p.SlotLen
	for i, n := range p.Nodes {
		tracker := battery.NewTracker(p.Model, p.TempC)
		psi := n.InitialJ
		tracker.Push(psi / n.CapacityJ)

		txAt := make(map[int]bool, len(s.TxSlot[i]))
		for _, t := range s.TxSlot[i] {
			txAt[t] = true
		}
		var disutility float64
		for t := 0; t < p.Slots; t++ {
			draw := n.SleepEnergyJ
			if txAt[t] {
				draw = n.TxEnergyJ
				offset := t % n.PeriodSlots
				disutility += float64(offset) / float64(n.PeriodSlots)
			}
			psi = psi + n.GenJ[t] - draw
			if psi < 0 {
				eval.Feasible = false
				psi = 0
			}
			psi = math.Min(psi, n.CapacityJ)
			tracker.Push(psi / n.CapacityJ)
		}
		packets := float64(p.Packets(i))
		if packets > 0 {
			disutility /= packets
		}
		deg := tracker.Degradation(horizon)
		eval.MaxDegradation = math.Max(eval.MaxDegradation, deg)
		eval.MaxDisutility = math.Max(eval.MaxDisutility, disutility)
	}

	eval.Objective = eval.MaxDegradation + p.UtilityWeight*eval.MaxDisutility
	if !eval.Feasible {
		eval.Objective = math.Inf(1)
	}
	return eval
}
