package optimal

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/simtime"
)

// tinyProblem: 2 nodes, 8 slots, period 4 slots, generation only in the
// second half of each period.
func tinyProblem() Problem {
	gen := []float64{0, 0, 0.05, 0.05, 0, 0, 0.05, 0.05}
	node := NodeSpec{
		PeriodSlots:  4,
		TxEnergyJ:    0.04,
		SleepEnergyJ: 0.001,
		GenJ:         gen,
		CapacityJ:    1,
		InitialJ:     0.5,
	}
	return Problem{
		Slots:         8,
		Omega:         1,
		SlotLen:       simtime.Minute,
		Model:         battery.DefaultModel(),
		TempC:         25,
		UtilityWeight: 0.001,
		Nodes:         []NodeSpec{node, node},
	}
}

func TestProblemValidate(t *testing.T) {
	valid := tinyProblem()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"no slots", func(p *Problem) { p.Slots = 0 }},
		{"no omega", func(p *Problem) { p.Omega = 0 }},
		{"no nodes", func(p *Problem) { p.Nodes = nil }},
		{"neg weight", func(p *Problem) { p.UtilityWeight = -1 }},
		{"bad period", func(p *Problem) { p.Nodes[0].PeriodSlots = 100 }},
		{"short trace", func(p *Problem) { p.Nodes[0].GenJ = p.Nodes[0].GenJ[:2] }},
		{"bad initial", func(p *Problem) { p.Nodes[0].InitialJ = 5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := tinyProblem()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestEvaluateRejectsMalformedSchedules(t *testing.T) {
	p := tinyProblem()
	// Wrong node count.
	if e := p.Evaluate(Schedule{TxSlot: [][]int{{0, 4}}}); !math.IsInf(e.Objective, 1) {
		t.Error("wrong node count should be infeasible")
	}
	// Slot outside the packet's period.
	bad := Schedule{TxSlot: [][]int{{5, 4}, {0, 4}}}
	if e := p.Evaluate(bad); !math.IsInf(e.Objective, 1) {
		t.Error("slot outside its period should be infeasible")
	}
}

func TestEvaluateOmegaConstraint(t *testing.T) {
	p := tinyProblem()
	// Both nodes pick the same slots: omega = 1 violated.
	clash := Schedule{TxSlot: [][]int{{2, 6}, {2, 6}}}
	if e := p.Evaluate(clash); e.Feasible {
		t.Error("omega violation should be infeasible")
	}
	apart := Schedule{TxSlot: [][]int{{2, 6}, {3, 7}}}
	if e := p.Evaluate(apart); !e.Feasible {
		t.Error("separated schedule should be feasible")
	}
}

func TestEvaluateUtilityAccounting(t *testing.T) {
	p := tinyProblem()
	early := p.Evaluate(Schedule{TxSlot: [][]int{{0, 4}, {1, 5}}})
	late := p.Evaluate(Schedule{TxSlot: [][]int{{3, 7}, {2, 6}}})
	if early.MaxDisutility >= late.MaxDisutility {
		t.Errorf("early transmissions should have lower disutility: %v vs %v",
			early.MaxDisutility, late.MaxDisutility)
	}
	if early.MaxDisutility != 0.25/2+0.0 { // node 1: offsets 1,1 -> (0.25+0.25)/2
		// node 0 offsets 0,0 -> 0; node 1 offsets 1,1 -> 0.25. Max = 0.25.
		if math.Abs(early.MaxDisutility-0.25) > 1e-12 {
			t.Errorf("early MaxDisutility = %v, want 0.25", early.MaxDisutility)
		}
	}
}

func TestSolveExhaustiveBeatsOrMatchesGreedy(t *testing.T) {
	p := tinyProblem()
	_, exh, err := SolveExhaustive(p)
	if err != nil {
		t.Fatalf("SolveExhaustive: %v", err)
	}
	_, greedy, err := SolveGreedy(p)
	if err != nil {
		t.Fatalf("SolveGreedy: %v", err)
	}
	if !exh.Feasible || !greedy.Feasible {
		t.Fatal("both solvers should find feasible schedules")
	}
	if exh.Objective > greedy.Objective+1e-12 {
		t.Errorf("exhaustive objective %v worse than greedy %v", exh.Objective, greedy.Objective)
	}
}

func TestSolveExhaustiveRespectsOmega(t *testing.T) {
	p := tinyProblem()
	s, eval, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	if !eval.Feasible {
		t.Fatal("solution must be feasible")
	}
	seen := map[int]int{}
	for _, slots := range s.TxSlot {
		for _, slot := range slots {
			seen[slot]++
			if seen[slot] > p.Omega {
				t.Fatalf("slot %d used %d times with omega %d", slot, seen[slot], p.Omega)
			}
		}
	}
}

// TestSolversChaseGreenEnergy: with a strong degradation focus, both
// solvers should transmit in slots with generation (the second half of
// each period).
func TestSolversChaseGreenEnergy(t *testing.T) {
	p := tinyProblem()
	p.UtilityWeight = 1e-6

	check := func(name string, s Schedule) {
		t.Helper()
		for i, slots := range s.TxSlot {
			for k, slot := range slots {
				if off := slot % 4; off < 2 {
					t.Errorf("%s: node %d packet %d at offset %d, want a generation slot", name, i, k, off)
				}
			}
		}
	}
	se, _, err := SolveExhaustive(p)
	if err != nil {
		t.Fatal(err)
	}
	check("exhaustive", se)
	sg, _, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	check("greedy", sg)
}

func TestSolveExhaustiveRefusesHugeInstances(t *testing.T) {
	p := tinyProblem()
	big := p.Nodes[0]
	big.GenJ = make([]float64, 240)
	big.PeriodSlots = 40
	p.Slots = 240
	p.Nodes = []NodeSpec{big, big, big, big, big, big}
	if _, _, err := SolveExhaustive(p); err == nil {
		t.Error("exhaustive solver should refuse huge instances")
	}
}

func TestSolveGreedyStarvation(t *testing.T) {
	p := tinyProblem()
	// No generation and tiny batteries: no feasible slot exists.
	for i := range p.Nodes {
		p.Nodes[i].GenJ = make([]float64, p.Slots)
		p.Nodes[i].InitialJ = 0.01
		p.Nodes[i].CapacityJ = 0.01
	}
	if _, _, err := SolveGreedy(p); err == nil {
		t.Error("greedy should report starvation")
	}
}
