// Package faults models an imperfect control plane for the protocol:
// lost or duplicated uplinks after PHY success (backhaul loss), lost
// downlink ACKs carrying the w_u beacon, scheduled gateway outage
// windows, and node brownouts that wipe volatile MAC state.
//
// The paper's evaluation assumes a perfect control plane — every ACK
// arrives, every transition report is ingested exactly once and in
// order, and the gateway never misses its daily recompute. Long-Lived
// LoRa-style min-lifetime objectives are acutely sensitive to which
// node the network believes is worst-off, so this package makes the
// control plane lossy on purpose: a deterministic, seed-derived Plan
// answers every "does this fault fire?" question from independent
// per-node RNG streams (via runner.DeriveSeed), keeping runs
// byte-identical at a fixed seed regardless of worker count.
//
// With every knob at zero the Plan is inert: no stream is ever
// consulted and the hosting substrate behaves exactly as before.
package faults

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/runner"
	"repro/internal/simtime"
)

// Config holds every fault knob of one run. The zero value disables all
// faults and degradation behaviour.
type Config struct {
	// DownlinkLoss is the probability that a downlink ACK (and the w_u
	// beacon it carries) is lost after the uplink decoded and the
	// network server ingested it. The node sees a missing ACK and
	// retries with the reports still piggy-backed.
	DownlinkLoss float64
	// UplinkLoss is the probability that a PHY-decoded uplink is lost
	// on the backhaul before reaching the network server: no ingestion
	// and no ACK.
	UplinkLoss float64
	// UplinkDup is the probability that a PHY-decoded uplink is
	// delivered to the network server twice (backhaul duplication).
	// Ingestion must be idempotent for this to be harmless.
	UplinkDup float64

	// OutageStart is when the first gateway outage window opens.
	OutageStart simtime.Duration
	// OutageLen is the length of each outage window; 0 disables
	// outages. During an outage the gateway neither serves uplinks nor
	// runs its daily recompute.
	OutageLen simtime.Duration
	// OutageEvery repeats the outage with this period; 0 means a single
	// outage window.
	OutageEvery simtime.Duration

	// BrownoutMTBF is the per-node mean time between brownouts
	// (exponentially distributed); 0 disables brownouts. A brownout
	// restarts the node, losing its volatile MAC state (w_u, energy
	// estimator, retransmission history, unreported transitions).
	BrownoutMTBF simtime.Duration

	// WuTTL is the node-side stale-weight TTL: when no w_u beacon
	// arrived for longer than this, the node falls back to
	// WuStaleFallback instead of trusting the stale weight. 0 disables
	// staleness tracking (the node trusts w_u forever, as the paper
	// implicitly assumes).
	WuTTL simtime.Duration
	// WuStaleFallback is the conservative w_u assumed while stale; the
	// protocol treats the node as if it were this close to being the
	// network's worst-off battery. Most conservative is 1.
	WuStaleFallback float64
}

// Validate reports the first invalid knob.
func (c Config) Validate() error {
	switch {
	case c.DownlinkLoss < 0 || c.DownlinkLoss > 1:
		return fmt.Errorf("faults: downlink loss %v outside [0,1]", c.DownlinkLoss)
	case c.UplinkLoss < 0 || c.UplinkLoss > 1:
		return fmt.Errorf("faults: uplink loss %v outside [0,1]", c.UplinkLoss)
	case c.UplinkDup < 0 || c.UplinkDup > 1:
		return fmt.Errorf("faults: uplink duplication %v outside [0,1]", c.UplinkDup)
	case c.OutageStart < 0:
		return fmt.Errorf("faults: negative outage start %v", c.OutageStart)
	case c.OutageLen < 0:
		return fmt.Errorf("faults: negative outage length %v", c.OutageLen)
	case c.OutageEvery < 0:
		return fmt.Errorf("faults: negative outage period %v", c.OutageEvery)
	case c.OutageEvery > 0 && c.OutageEvery < c.OutageLen:
		return fmt.Errorf("faults: outage period %v shorter than outage length %v", c.OutageEvery, c.OutageLen)
	case c.BrownoutMTBF < 0:
		return fmt.Errorf("faults: negative brownout MTBF %v", c.BrownoutMTBF)
	case c.WuTTL < 0:
		return fmt.Errorf("faults: negative w_u TTL %v", c.WuTTL)
	case c.WuStaleFallback < 0 || c.WuStaleFallback > 1:
		return fmt.Errorf("faults: w_u stale fallback %v outside [0,1]", c.WuStaleFallback)
	}
	return nil
}

// Active reports whether any fault-injection knob is set (control-plane
// loss, outages, or brownouts). The node-side staleness knobs (WuTTL,
// WuStaleFallback) are degradation behaviour, not injected faults, and
// do not require a Plan.
func (c Config) Active() bool {
	return c.DownlinkLoss > 0 || c.UplinkLoss > 0 || c.UplinkDup > 0 ||
		c.OutageLen > 0 || c.BrownoutMTBF > 0
}

// Plan is the materialized fault schedule of one run: per-node RNG
// streams for control-plane coin flips and brownout timing, derived
// from the scenario seed. A nil *Plan is valid and injects nothing.
//
// Stream discipline: every node has its own streams, so concurrent
// substrates (the testbed's goroutine-per-node runtime) stay
// deterministic per node no matter how goroutines interleave, and the
// simulator's single-threaded event order makes whole runs
// byte-identical at a fixed seed.
type Plan struct {
	cfg   Config
	nodes []nodeStreams
}

type nodeStreams struct {
	ctrl  *rand.Rand // control-plane coin flips, consumed in uplink order
	brown *rand.Rand // brownout schedule
}

// NewPlan derives a fault plan for the given number of nodes from the
// scenario seed. The config must validate.
func NewPlan(cfg Config, seed uint64, nodes int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("faults: plan needs at least one node, got %d", nodes)
	}
	p := &Plan{cfg: cfg, nodes: make([]nodeStreams, nodes)}
	for id := range p.nodes {
		// Replicate index id+1: DeriveSeed(base, label, 0) returns the
		// base seed unchanged, which would alias node 0's streams onto
		// the scenario's own RNG lineage.
		p.nodes[id] = nodeStreams{
			ctrl:  rand.New(rand.NewPCG(runner.DeriveSeed(seed, "faults/ctrl", id+1), 0x0fa17)),
			brown: rand.New(rand.NewPCG(runner.DeriveSeed(seed, "faults/brownout", id+1), 0xb120)),
		}
	}
	return p, nil
}

// Config returns the plan's knobs (zero Config for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// streams panics on out-of-range IDs: fault draws for unknown nodes
// would silently desynchronize the per-node streams.
func (p *Plan) streams(nodeID int) *nodeStreams { return &p.nodes[nodeID] }

// DropUplink reports whether the backhaul loses this node's decoded
// uplink. A nil plan never drops.
func (p *Plan) DropUplink(nodeID int) bool {
	if p == nil || p.cfg.UplinkLoss <= 0 {
		return false
	}
	return p.streams(nodeID).ctrl.Float64() < p.cfg.UplinkLoss
}

// DuplicateUplink reports whether the backhaul delivers this node's
// decoded uplink to the network server twice.
func (p *Plan) DuplicateUplink(nodeID int) bool {
	if p == nil || p.cfg.UplinkDup <= 0 {
		return false
	}
	return p.streams(nodeID).ctrl.Float64() < p.cfg.UplinkDup
}

// DropDownlink reports whether this node's downlink ACK is lost after
// the uplink was served.
func (p *Plan) DropDownlink(nodeID int) bool {
	if p == nil || p.cfg.DownlinkLoss <= 0 {
		return false
	}
	return p.streams(nodeID).ctrl.Float64() < p.cfg.DownlinkLoss
}

// GatewayDown reports whether the gateway is inside a scheduled outage
// window at the given instant. It is a pure function of time.
func (p *Plan) GatewayDown(at simtime.Time) bool {
	if p == nil || p.cfg.OutageLen <= 0 {
		return false
	}
	t := simtime.Duration(at) - p.cfg.OutageStart
	if t < 0 {
		return false
	}
	if p.cfg.OutageEvery > 0 {
		t %= p.cfg.OutageEvery
	}
	return t < p.cfg.OutageLen
}

// NextBrownout draws the node's next brownout instant strictly after
// the given time, exponentially distributed with mean BrownoutMTBF. It
// reports false when brownouts are disabled.
func (p *Plan) NextBrownout(nodeID int, after simtime.Time) (simtime.Time, bool) {
	if p == nil || p.cfg.BrownoutMTBF <= 0 {
		return 0, false
	}
	u := p.streams(nodeID).brown.Float64()
	gap := simtime.Duration(-math.Log(1-u) * float64(p.cfg.BrownoutMTBF))
	if gap < simtime.Second {
		gap = simtime.Second // a rebooting node cannot brown out again instantly
	}
	return after.Add(gap), true
}
