package faults

import (
	"testing"

	"repro/internal/simtime"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"full", Config{
			DownlinkLoss: 0.3, UplinkLoss: 0.1, UplinkDup: 0.05,
			OutageStart: simtime.Day, OutageLen: 6 * simtime.Hour, OutageEvery: 7 * simtime.Day,
			BrownoutMTBF: 30 * simtime.Day,
			WuTTL:        2 * simtime.Day, WuStaleFallback: 1,
		}, true},
		{"downlink loss > 1", Config{DownlinkLoss: 1.1}, false},
		{"negative uplink loss", Config{UplinkLoss: -0.1}, false},
		{"dup > 1", Config{UplinkDup: 2}, false},
		{"negative outage start", Config{OutageStart: -1}, false},
		{"negative outage length", Config{OutageLen: -1}, false},
		{"period shorter than outage", Config{OutageLen: simtime.Day, OutageEvery: simtime.Hour}, false},
		{"negative MTBF", Config{BrownoutMTBF: -1}, false},
		{"negative TTL", Config{WuTTL: -1}, false},
		{"fallback > 1", Config{WuStaleFallback: 1.5}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestActive(t *testing.T) {
	if (Config{}).Active() {
		t.Fatal("zero config reported active")
	}
	if (Config{WuTTL: simtime.Day, WuStaleFallback: 1}).Active() {
		t.Fatal("staleness-only config reported active: TTL needs no plan")
	}
	for _, cfg := range []Config{
		{DownlinkLoss: 0.1},
		{UplinkLoss: 0.1},
		{UplinkDup: 0.1},
		{OutageLen: simtime.Hour},
		{BrownoutMTBF: simtime.Day},
	} {
		if !cfg.Active() {
			t.Errorf("config %+v should be active", cfg)
		}
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.DropUplink(0) || p.DuplicateUplink(0) || p.DropDownlink(0) {
		t.Fatal("nil plan injected a control-plane fault")
	}
	if p.GatewayDown(simtime.Time(0).Add(simtime.Year)) {
		t.Fatal("nil plan reported gateway outage")
	}
	if _, ok := p.NextBrownout(0, 0); ok {
		t.Fatal("nil plan scheduled a brownout")
	}
	if p.Config() != (Config{}) {
		t.Fatal("nil plan config not zero")
	}
}

func TestPlanDeterministicAcrossBuilds(t *testing.T) {
	cfg := Config{DownlinkLoss: 0.5, UplinkLoss: 0.2, UplinkDup: 0.1, BrownoutMTBF: 10 * simtime.Day}
	a, err := NewPlan(cfg, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 8; node++ {
		at := simtime.Time(0)
		for i := 0; i < 200; i++ {
			if a.DropUplink(node) != b.DropUplink(node) ||
				a.DuplicateUplink(node) != b.DuplicateUplink(node) ||
				a.DropDownlink(node) != b.DropDownlink(node) {
				t.Fatalf("node %d draw %d: control streams diverged", node, i)
			}
		}
		for i := 0; i < 20; i++ {
			ta, oka := a.NextBrownout(node, at)
			tb, okb := b.NextBrownout(node, at)
			if oka != okb || ta != tb {
				t.Fatalf("node %d brownout %d: %v/%v vs %v/%v", node, i, ta, oka, tb, okb)
			}
			at = ta
		}
	}
}

func TestPlanStreamsIndependentPerNode(t *testing.T) {
	cfg := Config{DownlinkLoss: 0.5}
	// Draw node 1 heavily on one plan, not at all on the other; node 0's
	// stream must be unaffected.
	a, _ := NewPlan(cfg, 7, 2)
	b, _ := NewPlan(cfg, 7, 2)
	for i := 0; i < 100; i++ {
		a.DropDownlink(1)
	}
	for i := 0; i < 100; i++ {
		if a.DropDownlink(0) != b.DropDownlink(0) {
			t.Fatalf("draw %d: node 0 stream perturbed by node 1 draws", i)
		}
	}
}

func TestPlanSeedSensitivity(t *testing.T) {
	cfg := Config{DownlinkLoss: 0.5}
	a, _ := NewPlan(cfg, 1, 1)
	b, _ := NewPlan(cfg, 2, 1)
	same := 0
	const draws = 256
	for i := 0; i < draws; i++ {
		if a.DropDownlink(0) == b.DropDownlink(0) {
			same++
		}
	}
	if same == draws {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestGatewayDown(t *testing.T) {
	p, err := NewPlan(Config{
		OutageStart: 2 * simtime.Day,
		OutageLen:   6 * simtime.Hour,
		OutageEvery: 7 * simtime.Day,
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	at := func(d simtime.Duration) simtime.Time { return simtime.Time(0).Add(d) }
	cases := []struct {
		at   simtime.Time
		down bool
	}{
		{at(0), false},
		{at(2*simtime.Day - 1), false},
		{at(2 * simtime.Day), true},
		{at(2*simtime.Day + 6*simtime.Hour - 1), true},
		{at(2*simtime.Day + 6*simtime.Hour), false},
		{at(9 * simtime.Day), true},                 // second window opens
		{at(9*simtime.Day + 6*simtime.Hour), false}, // second window closes
		{at(2*simtime.Day + 70*simtime.Day), true},  // 10 periods later
		{at(3*simtime.Day + 70*simtime.Day), false}, // well clear of window
	}
	for _, tc := range cases {
		if got := p.GatewayDown(tc.at); got != tc.down {
			t.Errorf("GatewayDown(%v) = %v, want %v", tc.at, got, tc.down)
		}
	}

	single, _ := NewPlan(Config{OutageStart: simtime.Day, OutageLen: simtime.Hour}, 1, 1)
	if !single.GatewayDown(at(simtime.Day + 30*simtime.Minute)) {
		t.Fatal("inside single outage window not reported down")
	}
	if single.GatewayDown(at(8 * simtime.Day)) {
		t.Fatal("single (non-repeating) outage reported down a week later")
	}
}

func TestNextBrownoutAdvances(t *testing.T) {
	p, err := NewPlan(Config{BrownoutMTBF: 10 * simtime.Day}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	at := simtime.Time(0)
	var total simtime.Duration
	const n = 500
	for i := 0; i < n; i++ {
		next, ok := p.NextBrownout(0, at)
		if !ok {
			t.Fatal("brownouts disabled despite MTBF > 0")
		}
		if next <= at {
			t.Fatalf("brownout %d not strictly after current time: %v <= %v", i, next, at)
		}
		total += next.Sub(at)
		at = next
	}
	mean := total / n
	if mean < 5*simtime.Day || mean > 20*simtime.Day {
		t.Fatalf("mean inter-brownout gap %v implausible for MTBF 10d", mean)
	}
}
