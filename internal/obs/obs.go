// Package obs is the deterministic observability layer: named counters
// and gauges, per-node time-series samplers, and a run manifest, with
// JSONL/CSV exporters. It exists so a run's interior — SoC and
// degradation trajectories, DIF, window choices, queue depths,
// retransmissions, stale-w_u fallbacks, fault events — is inspectable
// without ad-hoc printf instrumentation.
//
// Two properties shape the API:
//
//   - A disabled recorder is zero-overhead on the hot path. All
//     recording methods are defined on concrete pointer types and are
//     nil-safe no-ops, so instrumented code calls them unconditionally:
//     no interface boxing, no allocation, one nil check per call.
//
//   - An enabled recorder is deterministic. Export walks nodes in ID
//     order and counters in name order, never map iteration order, and
//     records contain no wall-clock timestamps — only virtual simulation
//     time. The same scenario therefore exports byte-identical files
//     across repeated runs and worker counts.
//
// The one deliberate exception is worker count: it belongs in a run's
// provenance but would break byte-identity across `-j` values, so it
// lives in the per-invocation manifest written by the CLI (manifest.json)
// rather than in the per-run JSONL manifest line.
package obs

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/simtime"
)

// SchemaVersion identifies the JSONL record layout; bump it when record
// fields change meaning.
const SchemaVersion = 1

// ToolVersion is stamped into manifests so exported runs can be traced
// back to the code that produced them.
const ToolVersion = "0.4.0"

// DefaultSampleEvery is the timeline sampling period used when the
// recorder is constructed without one.
const DefaultSampleEvery = 10 * simtime.Minute

// Counter is a named monotonic tally. A nil *Counter is a valid,
// permanently disabled counter: Inc/Add/Store on nil are no-ops and
// Value returns 0, so instrumented code never branches on "is
// observability on".
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Store overwrites the tally (for end-of-run totals computed elsewhere,
// e.g. the engine's executed-event count).
func (c *Counter) Store(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current tally (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a named last-value float. A nil *Gauge is a valid disabled
// gauge.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Sample is one row of a node's timeline. Retx and StaleWu are
// cumulative counts at the sample instant; Window and DIF are the most
// recent MAC decision's outputs (-1 / 0 before the first decision).
type Sample struct {
	At       simtime.Time
	SoC      float64
	DegCal   float64
	DegCyc   float64
	DegTotal float64
	DIF      float64
	Window   int
	Queue    int
	Retx     int64
	StaleWu  int64
}

// Event is a discrete per-node occurrence (brownout, fault drop, ...).
type Event struct {
	At   simtime.Time
	Kind string
}

// NodeTimeline accumulates one node's time series. Methods are nil-safe
// no-ops, so hosts thread a possibly-nil pointer through unconditionally.
//
// A timeline is single-writer: exactly one goroutine (the node's owner)
// records into it, and readers only look after the run's final
// synchronization point. It therefore needs no locking of its own.
type NodeTimeline struct {
	id int

	lastWindow int
	lastDIF    float64
	retx       int64
	staleWu    int64

	samples []Sample
	events  []Event
}

// ID returns the node ID (-1 on nil).
func (t *NodeTimeline) ID() int {
	if t == nil {
		return -1
	}
	return t.id
}

// Decision records a MAC verdict: the selected window, or -1 for a
// dropped packet.
func (t *NodeTimeline) Decision(window int, drop bool) {
	if t == nil {
		return
	}
	if drop {
		t.lastWindow = -1
		return
	}
	t.lastWindow = window
}

// SetDIF records the degradation impact factor of the latest decision.
func (t *NodeTimeline) SetDIF(dif float64) {
	if t != nil {
		t.lastDIF = dif
	}
}

// StaleWu counts one decision that fell back to the conservative w_u.
func (t *NodeTimeline) StaleWu() {
	if t != nil {
		t.staleWu++
	}
}

// PacketDone accounts a settled packet; attempts beyond the first count
// as retransmissions.
func (t *NodeTimeline) PacketDone(delivered bool, attempts int) {
	if t == nil {
		return
	}
	_ = delivered
	if attempts > 1 {
		t.retx += int64(attempts - 1)
	}
}

// RecordEvent appends a discrete event at the given virtual instant.
func (t *NodeTimeline) RecordEvent(at simtime.Time, kind string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{At: at, Kind: kind})
}

// Record appends one timeline row, folding in the cumulative decision
// state (last window, last DIF, retransmissions, stale-w_u count).
func (t *NodeTimeline) Record(at simtime.Time, soc, degCal, degCyc, degTotal float64, queue int) {
	if t == nil {
		return
	}
	t.samples = append(t.samples, Sample{
		At:       at,
		SoC:      soc,
		DegCal:   degCal,
		DegCyc:   degCyc,
		DegTotal: degTotal,
		DIF:      t.lastDIF,
		Window:   t.lastWindow,
		Queue:    queue,
		Retx:     t.retx,
		StaleWu:  t.staleWu,
	})
}

// Samples returns the recorded rows (nil on nil receiver).
func (t *NodeTimeline) Samples() []Sample {
	if t == nil {
		return nil
	}
	return t.samples
}

// Events returns the recorded events (nil on nil receiver).
func (t *NodeTimeline) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Manifest is one run's provenance, exported as the first JSONL line.
// Deliberately absent: the worker count (it varies without changing the
// run's bytes — see the package comment) and any wall-clock timestamp.
type Manifest struct {
	Tool       string
	Version    string
	Experiment string
	Label      string
	Seed       uint64
	ConfigHash string
	Replicate  int
	Nodes      int
}

// Recorder is one run's observability sink. A nil *Recorder is valid
// and fully disabled: every method is a no-op and every handle it
// returns is nil (whose methods are in turn no-ops).
type Recorder struct {
	manifest    Manifest
	sampleEvery simtime.Duration

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	nodes    []*NodeTimeline
}

// New returns an enabled recorder. A non-positive sampleEvery selects
// DefaultSampleEvery; empty tool/version fields are stamped with the
// package defaults.
func New(m Manifest, sampleEvery simtime.Duration) *Recorder {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	if m.Tool == "" {
		m.Tool = "repro"
	}
	if m.Version == "" {
		m.Version = ToolVersion
	}
	return &Recorder{
		manifest:    m,
		sampleEvery: sampleEvery,
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
	}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Manifest returns the run manifest (zero value on nil).
func (r *Recorder) Manifest() Manifest {
	if r == nil {
		return Manifest{}
	}
	return r.manifest
}

// SampleEvery returns the timeline sampling period (0 on nil).
func (r *Recorder) SampleEvery() simtime.Duration {
	if r == nil {
		return 0
	}
	return r.sampleEvery
}

// Counter returns the named counter, creating it on first use (nil on a
// nil recorder). Safe for concurrent use.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// recorder). Safe for concurrent use.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// SetupNodes pre-allocates timelines for node IDs [0, n). Hosts call it
// once at construction so Node never races with itself mid-run.
func (r *Recorder) SetupNodes(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.nodes) < n {
		r.nodes = append(r.nodes, &NodeTimeline{id: len(r.nodes), lastWindow: -1})
	}
}

// Node returns node id's timeline, growing the set as needed (nil on a
// nil recorder or a negative id).
func (r *Recorder) Node(id int) *NodeTimeline {
	if r == nil || id < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.nodes) <= id {
		r.nodes = append(r.nodes, &NodeTimeline{id: len(r.nodes), lastWindow: -1})
	}
	return r.nodes[id]
}

// NumNodes returns how many node timelines exist (0 on nil).
func (r *Recorder) NumNodes() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}
