package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// JSONL record shapes. Every line is one JSON object whose "t" field
// names the record type; field order is fixed by these structs and
// encoding/json, so identical recorder state always serializes to
// identical bytes.
type (
	jsonManifest struct {
		T             string `json:"t"`
		Schema        int    `json:"schema"`
		Tool          string `json:"tool"`
		Version       string `json:"version"`
		Experiment    string `json:"experiment,omitempty"`
		Label         string `json:"label,omitempty"`
		Seed          uint64 `json:"seed"`
		ConfigHash    string `json:"config_hash,omitempty"`
		Replicate     int    `json:"replicate"`
		Nodes         int    `json:"nodes"`
		SampleEveryMs int64  `json:"sample_every_ms"`
	}
	jsonCounter struct {
		T    string `json:"t"`
		Name string `json:"name"`
		V    int64  `json:"v"`
	}
	jsonGauge struct {
		T    string  `json:"t"`
		Name string  `json:"name"`
		V    float64 `json:"v"`
	}
	jsonSample struct {
		T        string  `json:"t"`
		Node     int     `json:"node"`
		AtMs     int64   `json:"at_ms"`
		SoC      float64 `json:"soc"`
		DegCal   float64 `json:"deg_cal"`
		DegCyc   float64 `json:"deg_cyc"`
		DegTotal float64 `json:"deg_total"`
		DIF      float64 `json:"dif"`
		Window   int     `json:"window"`
		Queue    int     `json:"queue"`
		Retx     int64   `json:"retx"`
		StaleWu  int64   `json:"stale_wu"`
	}
	jsonEvent struct {
		T    string `json:"t"`
		Node int    `json:"node"`
		AtMs int64  `json:"at_ms"`
		Kind string `json:"kind"`
	}
)

// sortedCounterNames snapshots the registry keys in name order; map
// iteration order must never reach an exporter.
func (r *Recorder) sortedCounterNames() (counters, gauges []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.counters {
		counters = append(counters, name)
	}
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	return counters, gauges
}

// WriteJSONL exports the run as JSON lines: the manifest first, then
// counters and gauges in name order, then every node's samples and
// finally every node's events, both in ascending node-ID order with
// per-node rows in time order. Nothing in the output depends on map
// iteration order, goroutine scheduling, or wall-clock time.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline per record
	if err := enc.Encode(jsonManifest{
		T:             "manifest",
		Schema:        SchemaVersion,
		Tool:          r.manifest.Tool,
		Version:       r.manifest.Version,
		Experiment:    r.manifest.Experiment,
		Label:         r.manifest.Label,
		Seed:          r.manifest.Seed,
		ConfigHash:    r.manifest.ConfigHash,
		Replicate:     r.manifest.Replicate,
		Nodes:         r.manifest.Nodes,
		SampleEveryMs: int64(r.sampleEvery / simtime.Millisecond),
	}); err != nil {
		return err
	}
	counterNames, gaugeNames := r.sortedCounterNames()
	for _, name := range counterNames {
		if err := enc.Encode(jsonCounter{T: "counter", Name: name, V: r.Counter(name).Value()}); err != nil {
			return err
		}
	}
	for _, name := range gaugeNames {
		if err := enc.Encode(jsonGauge{T: "gauge", Name: name, V: r.Gauge(name).Value()}); err != nil {
			return err
		}
	}
	for id := 0; id < r.NumNodes(); id++ {
		tl := r.Node(id)
		for _, s := range tl.Samples() {
			if err := enc.Encode(jsonSample{
				T: "sample", Node: id, AtMs: int64(s.At),
				SoC: s.SoC, DegCal: s.DegCal, DegCyc: s.DegCyc, DegTotal: s.DegTotal,
				DIF: s.DIF, Window: s.Window, Queue: s.Queue,
				Retx: s.Retx, StaleWu: s.StaleWu,
			}); err != nil {
				return err
			}
		}
	}
	for id := 0; id < r.NumNodes(); id++ {
		tl := r.Node(id)
		for _, e := range tl.Events() {
			if err := enc.Encode(jsonEvent{T: "event", Node: id, AtMs: int64(e.At), Kind: e.Kind}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// fmtF renders a float with the shortest round-trip representation, the
// same deterministic formatting encoding/json uses.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTimelineCSV exports every node's samples as CSV, nodes in ID
// order.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "node,at_ms,soc,deg_cal,deg_cyc,deg_total,dif,window,queue,retx,stale_wu"); err != nil {
		return err
	}
	for id := 0; id < r.NumNodes(); id++ {
		for _, s := range r.Node(id).Samples() {
			if _, err := fmt.Fprintf(bw, "%d,%d,%s,%s,%s,%s,%s,%d,%d,%d,%d\n",
				id, int64(s.At), fmtF(s.SoC), fmtF(s.DegCal), fmtF(s.DegCyc),
				fmtF(s.DegTotal), fmtF(s.DIF), s.Window, s.Queue, s.Retx, s.StaleWu); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteCountersCSV exports counters and gauges in name order.
func (r *Recorder) WriteCountersCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "kind,name,value"); err != nil {
		return err
	}
	counterNames, gaugeNames := r.sortedCounterNames()
	for _, name := range counterNames {
		if _, err := fmt.Fprintf(bw, "counter,%s,%d\n", name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gaugeNames {
		if _, err := fmt.Fprintf(bw, "gauge,%s,%s\n", name, fmtF(r.Gauge(name).Value())); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// summaryReservoirCap bounds the per-node SoC sample set used for the
// summary median; below it the quantile is exact, beyond it the
// reservoir subsamples deterministically (fixed seed).
const summaryReservoirCap = 4096

// WriteSummaryCSV exports one row per node summarizing its timeline.
// Nodes without samples emit empty statistic cells — the ok-accessors
// distinguish "no samples" from a genuine zero.
func (r *Recorder) WriteSummaryCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "node,samples,events,soc_min,soc_max,soc_mean,soc_p50,deg_total_last,retx,stale_wu"); err != nil {
		return err
	}
	okF := func(v float64, ok bool) string {
		if !ok {
			return ""
		}
		return fmtF(v)
	}
	for id := 0; id < r.NumNodes(); id++ {
		tl := r.Node(id)
		samples := tl.Samples()
		var soc metrics.Welford
		res := metrics.NewReservoir(summaryReservoirCap, 1)
		for _, s := range samples {
			soc.Add(s.SoC)
			res.Add(s.SoC)
		}
		var degLast string
		var retx, stale int64
		if n := len(samples); n > 0 {
			last := samples[n-1]
			degLast = fmtF(last.DegTotal)
			retx, stale = last.Retx, last.StaleWu
		}
		minS, minOK := soc.MinOK()
		maxS, maxOK := soc.MaxOK()
		meanS, meanOK := soc.MeanOK()
		p50, p50OK := res.QuantileOK(0.5)
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%s,%s,%s,%s,%d,%d\n",
			id, len(samples), len(tl.Events()),
			okF(minS, minOK), okF(maxS, maxOK), okF(meanS, meanOK), okF(p50, p50OK),
			degLast, retx, stale); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ExportFiles writes the run's full export set under dir:
// <base>.jsonl plus <base>_timeline.csv, <base>_counters.csv and
// <base>_summary.csv. The directory is created as needed.
func (r *Recorder) ExportFiles(dir, base string) error {
	if r == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(base+".jsonl", r.WriteJSONL); err != nil {
		return err
	}
	if err := write(base+"_timeline.csv", r.WriteTimelineCSV); err != nil {
		return err
	}
	if err := write(base+"_counters.csv", r.WriteCountersCSV); err != nil {
		return err
	}
	return write(base+"_summary.csv", r.WriteSummaryCSV)
}

// InvocationManifest is the per-invocation provenance written by CLIs as
// manifest.json next to the exported runs. The worker and shard counts
// live here, not in the per-run JSONL, so the run files stay
// byte-identical across -j and -shards values; determinism checks diff
// the run files and skip this one.
type InvocationManifest struct {
	Tool          string   `json:"tool"`
	Version       string   `json:"version"`
	Schema        int      `json:"schema"`
	Seed          uint64   `json:"seed"`
	Workers       int      `json:"workers"`
	Shards        int      `json:"shards,omitempty"`
	SampleEveryMs int64    `json:"sample_every_ms"`
	Experiments   []string `json:"experiments,omitempty"`
	Runs          []string `json:"runs,omitempty"`
}

// WriteInvocationManifest writes m as indented JSON at path, filling
// empty tool/version/schema fields and sorting Runs for stable output.
func WriteInvocationManifest(path string, m InvocationManifest) error {
	if m.Tool == "" {
		m.Tool = "repro"
	}
	if m.Version == "" {
		m.Version = ToolVersion
	}
	if m.Schema == 0 {
		m.Schema = SchemaVersion
	}
	sort.Strings(m.Runs)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
