package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/simtime"
)

// TestNilRecorderIsInert exercises every recording path on a nil
// recorder and its nil handles: nothing may panic, everything must be a
// no-op. This is the "disabled = zero overhead, zero risk" contract.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.SampleEvery() != 0 || r.NumNodes() != 0 {
		t.Fatal("nil recorder leaks state")
	}
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	c.Store(7)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter retained a value")
	}
	g := r.Gauge("y")
	g.Set(3.5)
	if g.Value() != 0 || g.Name() != "" {
		t.Fatal("nil gauge retained a value")
	}
	r.SetupNodes(4)
	tl := r.Node(2)
	tl.Decision(3, false)
	tl.SetDIF(0.5)
	tl.StaleWu()
	tl.PacketDone(true, 4)
	tl.RecordEvent(10, "brownout")
	tl.Record(10, 0.5, 0, 0, 0, 1)
	if tl.ID() != -1 || len(tl.Samples()) != 0 || len(tl.Events()) != 0 {
		t.Fatal("nil timeline retained state")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.ExportFiles(t.TempDir(), "run"); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAndGaugeRegistry(t *testing.T) {
	r := New(Manifest{Seed: 7}, 0)
	if r.SampleEvery() != DefaultSampleEvery {
		t.Fatalf("default sample period = %v, want %v", r.SampleEvery(), DefaultSampleEvery)
	}
	a := r.Counter("hits")
	b := r.Counter("hits")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	b.Add(2)
	if got := r.Counter("hits").Value(); got != 3 {
		t.Fatalf("counter value = %d, want 3", got)
	}
	g := r.Gauge("level")
	g.Set(1.5)
	g.Set(2.5)
	if got := r.Gauge("level").Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
}

func TestTimelineAccumulation(t *testing.T) {
	r := New(Manifest{}, simtime.Minute)
	r.SetupNodes(2)
	tl := r.Node(1)
	if tl.ID() != 1 {
		t.Fatalf("timeline ID = %d, want 1", tl.ID())
	}
	// Before any decision, samples carry window -1 and DIF 0.
	tl.Record(0, 1.0, 0, 0, 0, 0)
	tl.Decision(3, false)
	tl.SetDIF(0.25)
	tl.PacketDone(true, 3) // 2 retransmissions
	tl.StaleWu()
	tl.Record(simtime.Time(simtime.Minute), 0.9, 1e-5, 2e-5, 3e-5, 2)
	tl.Decision(0, true) // drop: window resets to -1
	tl.Record(simtime.Time(2*simtime.Minute), 0.8, 0, 0, 0, 0)

	s := tl.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %d, want 3", len(s))
	}
	if s[0].Window != -1 || s[0].DIF != 0 {
		t.Errorf("pre-decision sample = %+v, want window -1, DIF 0", s[0])
	}
	if s[1].Window != 3 || s[1].DIF != 0.25 || s[1].Retx != 2 || s[1].StaleWu != 1 || s[1].Queue != 2 {
		t.Errorf("post-decision sample = %+v", s[1])
	}
	if s[2].Window != -1 {
		t.Errorf("post-drop sample window = %d, want -1", s[2].Window)
	}
}

// buildRecorder assembles a fixed recorder state; two calls must export
// byte-identical files. Registration order of counters deliberately
// differs between variants to prove export order is name-sorted.
func buildRecorder(variant int) *Recorder {
	r := New(Manifest{Experiment: "exp", Label: "l", Seed: 42, ConfigHash: "abcd", Nodes: 2}, simtime.Minute)
	names := []string{"b.two", "a.one", "c.three"}
	if variant == 1 {
		names = []string{"c.three", "a.one", "b.two"}
	}
	for _, n := range names {
		r.Counter(n).Add(int64(len(n)))
	}
	r.Gauge("g.x").Set(0.75)
	r.SetupNodes(2)
	for id := 0; id < 2; id++ {
		tl := r.Node(id)
		tl.Decision(id, false)
		tl.SetDIF(0.5 * float64(id+1))
		tl.Record(simtime.Time(simtime.Minute), 0.9, 1e-6, 2e-6, 3e-6, id)
		tl.RecordEvent(simtime.Time(2*simtime.Minute), "brownout")
	}
	return r
}

func TestExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRecorder(0).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRecorder(1).WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("JSONL export depends on registration order:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if want := 1 + 3 + 1 + 2 + 2; len(lines) != want {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), want)
	}
	if !strings.Contains(lines[0], `"t":"manifest"`) || !strings.Contains(lines[0], `"seed":42`) {
		t.Errorf("first line is not the manifest: %s", lines[0])
	}
	if strings.Contains(a.String(), "workers") {
		t.Error("per-run JSONL must not embed the worker count")
	}
	var csvA, csvB bytes.Buffer
	if err := buildRecorder(0).WriteCountersCSV(&csvA); err != nil {
		t.Fatal(err)
	}
	if err := buildRecorder(1).WriteCountersCSV(&csvB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA.Bytes(), csvB.Bytes()) {
		t.Error("counters CSV depends on registration order")
	}
}

func TestSummaryCSVEmptyNode(t *testing.T) {
	r := New(Manifest{}, simtime.Minute)
	r.SetupNodes(2)
	r.Node(0).Record(0, 0, 0, 0, 0, 0) // node 0: one genuine all-zero sample
	var buf bytes.Buffer
	if err := r.WriteSummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary lines = %d, want header + 2 nodes", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,1,0,0,0,0,0,") {
		t.Errorf("node 0 row %q should report real zero statistics", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,0,0,,,,,") {
		t.Errorf("node 1 row %q should have empty cells for missing samples", lines[2])
	}
}

func TestExportFilesAndInvocationManifest(t *testing.T) {
	dir := t.TempDir()
	if err := buildRecorder(0).ExportFiles(dir, "run0"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"run0.jsonl", "run0_timeline.csv", "run0_counters.csv", "run0_summary.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing export %s: %v", name, err)
		}
	}
	path := filepath.Join(dir, "manifest.json")
	err := WriteInvocationManifest(path, InvocationManifest{
		Seed: 1, Workers: 8, Runs: []string{"run0.jsonl"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"workers": 8`, `"tool": "repro"`, `"run0.jsonl"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("manifest.json missing %s:\n%s", want, data)
		}
	}
}
