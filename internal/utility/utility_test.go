package utility

import (
	"testing"
	"testing/quick"
)

// allFunctions enumerates one instance of every family for shared
// property tests.
func allFunctions() []Function {
	return []Function{
		Linear{},
		Exponential{Lambda: 2},
		Exponential{}, // zero Lambda falls back to 1
		Deadline{Fraction: 0.3, Tail: 0.1},
		Deadline{Fraction: 0.5},
		Indifferent{},
	}
}

func TestLinearMatchesEq16(t *testing.T) {
	tests := []struct {
		window, total int
		want          float64
	}{
		{0, 10, 1},
		{1, 10, 0.9},
		{5, 10, 0.5},
		{9, 10, 0.1},
		{10, 10, 0},
		{15, 10, 0}, // past the period clamps to 0
		{-1, 10, 1}, // before the period clamps to 1
		{0, 0, 0},   // degenerate period
	}
	for _, tt := range tests {
		if got := (Linear{}).Value(tt.window, tt.total); !almostEq(got, tt.want) {
			t.Errorf("Linear.Value(%d,%d) = %v, want %v", tt.window, tt.total, got, tt.want)
		}
	}
}

func TestExponentialShape(t *testing.T) {
	e := Exponential{Lambda: 2}
	if got := e.Value(0, 10); !almostEq(got, 1) {
		t.Errorf("Value(0) = %v, want 1", got)
	}
	if got := e.Value(10, 10); got != 0 {
		t.Errorf("Value at next arrival = %v, want 0", got)
	}
	if e.Value(2, 10) <= e.Value(8, 10) {
		t.Error("exponential utility must decrease")
	}
}

func TestDeadlineShape(t *testing.T) {
	d := Deadline{Fraction: 0.3, Tail: 0.1}
	if got := d.Value(0, 10); got != 1 {
		t.Errorf("before deadline = %v, want 1", got)
	}
	if got := d.Value(2, 10); got != 1 {
		t.Errorf("just before deadline = %v, want 1", got)
	}
	if got := d.Value(3, 10); got != 0.1 {
		t.Errorf("after deadline = %v, want tail 0.1", got)
	}
	if got := d.Value(10, 10); got != 0 {
		t.Errorf("at next arrival = %v, want 0", got)
	}
}

func TestIndifferent(t *testing.T) {
	u := Indifferent{}
	if got := u.Value(7, 10); got != 1 {
		t.Errorf("Value = %v, want 1", got)
	}
	if got := u.Value(10, 10); got != 0 {
		t.Errorf("at next arrival = %v, want 0", got)
	}
}

// TestAllBounded: every family stays in [0,1] for arbitrary inputs.
func TestAllBounded(t *testing.T) {
	for _, fn := range allFunctions() {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(w int8, tot uint8) bool {
				v := fn.Value(int(w), int(tot))
				return v >= 0 && v <= 1
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAllMonotoneNonIncreasing: utility never increases with delay.
func TestAllMonotoneNonIncreasing(t *testing.T) {
	for _, fn := range allFunctions() {
		fn := fn
		t.Run(fn.Name(), func(t *testing.T) {
			f := func(rawW uint8, rawTot uint8) bool {
				total := int(rawTot%60) + 2
				w := int(rawW) % total
				return fn.Value(w, total) >= fn.Value(w+1, total)-1e-12
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNamesNonEmpty(t *testing.T) {
	for _, fn := range allFunctions() {
		if fn.Name() == "" {
			t.Errorf("%T has empty name", fn)
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
