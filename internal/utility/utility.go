// Package utility provides the data-utility functions the protocol
// trades off against battery degradation. The paper defines utility as a
// monotonically decreasing function of the delay between a packet's
// generation and its transmission (Eq. 16) and notes the system designer
// may pick per-node functions; this package offers the common families.
package utility

import (
	"fmt"
	"math"
)

// Function maps the chosen forecast window to the usefulness of the data
// at transmission time.
type Function interface {
	// Value returns the utility, in [0,1], of transmitting in the given
	// zero-based window of a sampling period that contains total windows.
	Value(window, total int) float64
	// Name identifies the function family in reports.
	Name() string
}

// Linear is the paper's Eq. (16): utility decays linearly from 1 at
// window 0 to 0 at the arrival of the next packet.
type Linear struct{}

var _ Function = Linear{}

// Value implements Function.
func (Linear) Value(window, total int) float64 {
	if total <= 0 {
		return 0
	}
	v := float64(total-window) / float64(total)
	return min(1, max(0, v))
}

// Name implements Function.
func (Linear) Name() string { return "linear" }

// Exponential decays as e^(-Lambda * window/total), renormalized so that
// window 0 yields exactly 1. Larger Lambda means faster staleness.
type Exponential struct {
	Lambda float64
}

var _ Function = Exponential{}

// Value implements Function.
func (e Exponential) Value(window, total int) float64 {
	if total <= 0 || window >= total {
		return 0
	}
	if window < 0 {
		window = 0
	}
	lambda := e.Lambda
	if lambda <= 0 {
		lambda = 1
	}
	return math.Exp(-lambda * float64(window) / float64(total))
}

// Name implements Function.
func (e Exponential) Name() string { return fmt.Sprintf("exp(%g)", e.Lambda) }

// Deadline is a step function: full utility until the deadline fraction
// of the period, then a residual Tail utility (often 0). It models
// applications that only care about bounded staleness.
type Deadline struct {
	// Fraction of the period before which utility is 1, in (0,1].
	Fraction float64
	// Tail is the utility after the deadline, in [0,1).
	Tail float64
}

var _ Function = Deadline{}

// Value implements Function.
func (d Deadline) Value(window, total int) float64 {
	if total <= 0 || window >= total {
		return 0
	}
	if float64(window) < d.Fraction*float64(total) {
		return 1
	}
	return min(1, max(0, d.Tail))
}

// Name implements Function.
func (d Deadline) Name() string { return fmt.Sprintf("deadline(%g,%g)", d.Fraction, d.Tail) }

// Indifferent always returns 1: the application does not care about
// delay within the period, so the protocol optimizes battery lifespan
// alone.
type Indifferent struct{}

var _ Function = Indifferent{}

// Value implements Function.
func (Indifferent) Value(window, total int) float64 {
	if total <= 0 || window >= total {
		return 0
	}
	return 1
}

// Name implements Function.
func (Indifferent) Name() string { return "indifferent" }
