package metrics

import (
	"testing"

	"repro/internal/simtime"
)

func TestNodeStatsDerivedMetrics(t *testing.T) {
	s := NewNodeStats()

	// 4 packets: 2 delivered, 1 dropped after attempts, 1 never sent.
	s.Generated = 4
	s.Delivered = 2
	s.Dropped = 2
	s.NeverSent = 1
	s.Attempts = 7 // e.g. 1 + 2 + 4 attempts over the three sent packets
	s.UtilitySum = 1.0 + 0.8
	s.LatencyDelivered = 10 * simtime.Second
	s.LatencyPenalized = 10*simtime.Second + 2*30*simtime.Minute
	s.WindowHist.Add(0)
	s.WindowHist.Add(1)
	s.WindowHist.Add(1)

	if got := s.PRR(); got != 0.5 {
		t.Errorf("PRR = %v, want 0.5", got)
	}
	if got := s.AvgAttempts(); got != 7.0/3 {
		t.Errorf("AvgAttempts = %v, want 7/3 (never-sent packet excluded)", got)
	}
	if got := s.AvgUtility(); got != 1.8/4 {
		t.Errorf("AvgUtility = %v, want 0.45", got)
	}
	if got := s.AvgLatencyDelivered(); got != 5*simtime.Second {
		t.Errorf("AvgLatencyDelivered = %v, want 5 s", got)
	}
	wantPen := (10*simtime.Second + 60*simtime.Minute) / 4
	if got := s.AvgLatencyPenalized(); got != wantPen {
		t.Errorf("AvgLatencyPenalized = %v, want %v", got, wantPen)
	}
	if mode, ok := s.WindowHist.Mode(); !ok || mode != 1 {
		t.Errorf("majority window = %d, want 1", mode)
	}
}

func TestNodeStatsZeroDivision(t *testing.T) {
	s := NewNodeStats()
	if s.PRR() != 0 || s.AvgAttempts() != 0 || s.AvgUtility() != 0 {
		t.Error("zero-packet node should report zeros")
	}
	if s.AvgLatencyDelivered() != 0 || s.AvgLatencyPenalized() != 0 {
		t.Error("zero-packet node should report zero latencies")
	}
	// All packets never sent: attempts denominator is zero.
	s.Generated = 3
	s.NeverSent = 3
	if s.AvgAttempts() != 0 {
		t.Error("all-dropped node should report zero attempts")
	}
}
