package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range samples {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of the set is 32/7.
	if got := w.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if w.Count() != 8 {
		t.Errorf("Count = %v, want 8", w.Count())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("single sample variance should be 0")
	}
	if w.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", w.Mean())
	}
}

// TestWelfordOKAccessors pins the empty-accumulator disambiguation: the
// ok-variants must report (NaN, false) when no sample was added, and the
// real extremes afterwards — even when those extremes are genuinely 0.
func TestWelfordOKAccessors(t *testing.T) {
	var w Welford
	if v, ok := w.MinOK(); ok || !math.IsNaN(v) {
		t.Errorf("empty MinOK = (%v, %v), want (NaN, false)", v, ok)
	}
	if v, ok := w.MaxOK(); ok || !math.IsNaN(v) {
		t.Errorf("empty MaxOK = (%v, %v), want (NaN, false)", v, ok)
	}
	if v, ok := w.MeanOK(); ok || !math.IsNaN(v) {
		t.Errorf("empty MeanOK = (%v, %v), want (NaN, false)", v, ok)
	}
	w.Add(0)
	if v, ok := w.MinOK(); !ok || v != 0 {
		t.Errorf("MinOK after Add(0) = (%v, %v), want (0, true)", v, ok)
	}
	if v, ok := w.MaxOK(); !ok || v != 0 {
		t.Errorf("MaxOK after Add(0) = (%v, %v), want (0, true)", v, ok)
	}
}

// TestReservoirQuantileCache checks that the sort-once cache returns the
// same quantiles as a fresh sort and is invalidated by Add.
func TestReservoirQuantileCache(t *testing.T) {
	r := NewReservoir(64, 1)
	if v, ok := r.QuantileOK(0.5); ok || !math.IsNaN(v) {
		t.Errorf("empty QuantileOK = (%v, %v), want (NaN, false)", v, ok)
	}
	if got := r.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	for _, x := range []float64{5, 1, 3} {
		r.Add(x)
	}
	if got := r.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	// Repeated queries hit the cache and must agree.
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := r.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	// Adding invalidates the cached order.
	r.Add(9)
	if got := r.Quantile(1); got != 9 {
		t.Errorf("q1 after Add = %v, want 9 (stale sort cache?)", got)
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := int(rawN%100) + 2
		var w Welford
		var sum float64
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-naiveVar) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReservoirExactUnderCapacity(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if got := r.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := r.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %v, want 5", r.Seen())
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(10, 2)
	if got := r.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestReservoirSamplingApproximation(t *testing.T) {
	r := NewReservoir(2000, 3)
	n := 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i) / float64(n)) // uniform [0,1)
	}
	if got := r.Quantile(0.5); math.Abs(got-0.5) > 0.05 {
		t.Errorf("median of uniform stream = %v, want ~0.5", got)
	}
	if got := r.Quantile(0.9); math.Abs(got-0.9) > 0.05 {
		t.Errorf("p90 of uniform stream = %v, want ~0.9", got)
	}
	if r.Seen() != int64(n) {
		t.Errorf("Seen = %v, want %v", r.Seen(), n)
	}
}

func TestBoxOf(t *testing.T) {
	b := BoxOf([]float64{1, 2, 3, 4, 100})
	if b.N != 5 {
		t.Fatalf("N = %d", b.N)
	}
	if b.Median != 3 {
		t.Errorf("Median = %v, want 3", b.Median)
	}
	if b.Min != 1 || b.Max != 100 {
		t.Errorf("Min/Max = %v/%v", b.Min, b.Max)
	}
	if b.Outliers != 1 {
		t.Errorf("Outliers = %d, want 1 (the value 100)", b.Outliers)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}

	empty := BoxOf(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty box = %+v", empty)
	}
}

func TestBoxOfDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	BoxOf(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("BoxOf mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if _, ok := h.Mode(); ok {
		t.Error("empty histogram should have no mode")
	}
	for _, b := range []int{2, 2, 2, 0, 1, 1} {
		h.Add(b)
	}
	if got := h.Count(2); got != 3 {
		t.Errorf("Count(2) = %d, want 3", got)
	}
	if got := h.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	mode, ok := h.Mode()
	if !ok || mode != 2 {
		t.Errorf("Mode = %d,%v want 2,true", mode, ok)
	}
	buckets := h.Buckets()
	want := []int{0, 1, 2}
	if len(buckets) != len(want) {
		t.Fatalf("Buckets = %v", buckets)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("Buckets = %v, want %v", buckets, want)
		}
	}
}

func TestHistogramModeTieBreaksLow(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(3)
	mode, ok := h.Mode()
	if !ok || mode != 3 {
		t.Errorf("Mode = %d, want 3 on tie", mode)
	}
}

func TestReservoirCapacityClamped(t *testing.T) {
	r := NewReservoir(0, 9)
	r.Add(1)
	r.Add(2)
	if got := r.Quantile(0.5); got != 1 && got != 2 {
		t.Errorf("clamped reservoir median = %v", got)
	}
}

func TestBoxOfSingleSample(t *testing.T) {
	b := BoxOf([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 || b.Mean != 7 || b.Variance != 0 {
		t.Errorf("single-sample box = %+v", b)
	}
	if b.Outliers != 0 {
		t.Errorf("single sample cannot be an outlier: %+v", b)
	}
}
