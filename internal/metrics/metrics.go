// Package metrics provides the statistics collectors the evaluation
// harness uses: streaming mean/variance (Welford), reservoir-sampled
// quantiles, boxplot summaries, histograms, and per-node network
// counters (PRR, retransmissions, utility, latency, energy).
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Welford is a streaming mean/variance accumulator. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		w.min = math.Min(w.min, x)
		w.max = math.Max(w.max, x)
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample (0 with no samples — indistinguishable
// from a real 0 sample; exporters should prefer MinOK).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 with no samples — indistinguishable
// from a real 0 sample; exporters should prefer MaxOK).
func (w *Welford) Max() float64 { return w.max }

// MinOK returns the smallest sample and whether any sample was added;
// with no samples it returns (NaN, false) so an empty accumulator can
// never be mistaken for one holding a real zero.
func (w *Welford) MinOK() (float64, bool) {
	if w.n == 0 {
		return math.NaN(), false
	}
	return w.min, true
}

// MaxOK returns the largest sample and whether any sample was added;
// with no samples it returns (NaN, false).
func (w *Welford) MaxOK() (float64, bool) {
	if w.n == 0 {
		return math.NaN(), false
	}
	return w.max, true
}

// MeanOK returns the sample mean and whether any sample was added; with
// no samples it returns (NaN, false).
func (w *Welford) MeanOK() (float64, bool) {
	if w.n == 0 {
		return math.NaN(), false
	}
	return w.mean, true
}

// Reservoir keeps a bounded uniform sample of a stream for quantile
// estimation (exact until the capacity is exceeded).
type Reservoir struct {
	cap  int
	seen int64
	data []float64
	rng  *rand.Rand

	// sorted caches a sorted copy of data so an export asking for many
	// quantiles sorts once, not once per Quantile call; Add invalidates.
	sorted []float64
	dirty  bool
}

// NewReservoir returns a reservoir holding at most capacity samples.
func NewReservoir(capacity int, seed uint64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{
		cap: capacity,
		rng: rand.New(rand.NewPCG(seed, 0x5ee0)),
	}
}

// Add feeds one sample.
func (r *Reservoir) Add(x float64) {
	r.seen++
	r.dirty = true
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	if j := r.rng.Int64N(r.seen); j < int64(r.cap) {
		r.data[j] = x
	}
}

// Seen returns the total number of samples offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// sortedData returns the retained samples in ascending order, re-sorting
// only when samples were added since the last call.
func (r *Reservoir) sortedData() []float64 {
	if r.dirty || len(r.sorted) != len(r.data) {
		r.sorted = append(r.sorted[:0], r.data...)
		sort.Float64s(r.sorted)
		r.dirty = false
	}
	return r.sorted
}

// Quantile returns the q-quantile (0 <= q <= 1) of the retained sample
// using linear interpolation; it returns 0 when empty (indistinguishable
// from a real 0 — exporters should prefer QuantileOK).
func (r *Reservoir) Quantile(q float64) float64 {
	v, ok := r.QuantileOK(q)
	if !ok {
		return 0
	}
	return v
}

// QuantileOK returns the q-quantile of the retained sample and whether
// the reservoir holds any samples; when empty it returns (NaN, false).
func (r *Reservoir) QuantileOK(q float64) (float64, bool) {
	sorted := r.sortedData()
	if len(sorted) == 0 {
		return math.NaN(), false
	}
	return quantileOf(sorted, q), true
}

func quantileOf(sorted []float64, q float64) float64 {
	q = math.Min(1, math.Max(0, q))
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box is a boxplot summary of a sample set, as plotted in the paper's
// Fig. 5c/6.
type Box struct {
	Min      float64
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64
	Mean     float64
	Variance float64
	// Outliers counts samples beyond 1.5 IQR whiskers.
	Outliers int
	N        int
}

// BoxOf computes a boxplot summary of the given samples.
func BoxOf(samples []float64) Box {
	var b Box
	b.N = len(samples)
	if b.N == 0 {
		return b
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var w Welford
	for _, x := range sorted {
		w.Add(x)
	}
	b.Min = sorted[0]
	b.Max = sorted[len(sorted)-1]
	b.Q1 = quantileOf(sorted, 0.25)
	b.Median = quantileOf(sorted, 0.5)
	b.Q3 = quantileOf(sorted, 0.75)
	b.Mean = w.Mean()
	b.Variance = w.Variance()
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers++
		}
	}
	return b
}

func (b Box) String() string {
	return fmt.Sprintf("min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g var=%.3g outliers=%d n=%d",
		b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean, b.Variance, b.Outliers, b.N)
}

// Histogram counts integer-keyed occurrences (e.g. packets per forecast
// window index). The expected keys are small non-negative indexes, so
// counts live in a dense slice grown on demand; negative buckets (not
// produced by any current caller, but part of the int-keyed contract)
// fall back to a lazily allocated map.
type Histogram struct {
	dense []int64
	neg   map[int]int64 // nil until a negative bucket appears
	total int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{}
}

// Add increments the bucket.
func (h *Histogram) Add(bucket int) {
	h.total++
	if bucket >= 0 {
		if bucket >= len(h.dense) {
			if bucket < cap(h.dense) {
				// make zeroed the whole capacity and counts are only
				// written within len, so the exposed tail is all zeros.
				h.dense = h.dense[:bucket+1]
			} else {
				nd := make([]int64, bucket+1, max(2*cap(h.dense), bucket+1, 16))
				copy(nd, h.dense)
				h.dense = nd
			}
		}
		h.dense[bucket]++
		return
	}
	if h.neg == nil {
		h.neg = make(map[int]int64)
	}
	h.neg[bucket]++
}

// Count returns the bucket's count.
func (h *Histogram) Count(bucket int) int64 {
	if bucket >= 0 {
		if bucket < len(h.dense) {
			return h.dense[bucket]
		}
		return 0
	}
	return h.neg[bucket]
}

// Total returns the number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Mode returns the bucket with the highest count (lowest index wins
// ties) and false when the histogram is empty.
func (h *Histogram) Mode() (int, bool) {
	if h.total == 0 {
		return 0, false
	}
	best, bestCount := 0, int64(-1)
	for b, c := range h.neg {
		if c > 0 && (c > bestCount || (c == bestCount && b < best)) {
			best, bestCount = b, c
		}
	}
	for b, c := range h.dense {
		if c > 0 && (c > bestCount || (c == bestCount && b < best)) {
			best, bestCount = b, c
		}
	}
	return best, true
}

// Buckets returns the sorted bucket indexes present.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.dense)+len(h.neg))
	for b := range h.neg {
		out = append(out, b)
	}
	for b, c := range h.dense {
		if c > 0 {
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}
