package metrics

import "repro/internal/simtime"

// NodeStats accumulates one node's network performance counters over a
// run: everything needed to report the paper's Sec. IV-A2 metrics.
type NodeStats struct {
	// Generated counts sampled packets.
	Generated int64
	// Delivered counts packets whose ACK reached the node.
	Delivered int64
	// Dropped counts packets Algorithm 1 refused (FAIL) plus packets
	// whose every attempt went unacknowledged.
	Dropped int64
	// Attempts counts transmission attempts (first try + retransmissions).
	Attempts int64
	// TxEnergyJ is the total transmission energy in joules (Eq. 6 summed).
	TxEnergyJ float64
	// UtilitySum accumulates per-packet utility (0 for undelivered).
	UtilitySum float64
	// LatencyDelivered accumulates generation-to-ACK latency over
	// delivered packets.
	LatencyDelivered simtime.Duration
	// LatencyPenalized additionally charges each undelivered packet one
	// full sampling period (the paper's penalty).
	LatencyPenalized simtime.Duration
	// NeverSent counts packets dropped by Algorithm 1 before any
	// transmission attempt (FAIL decisions).
	NeverSent int64
	// Brownouts counts node restarts that wiped volatile MAC state
	// (fault injection; zero on a perfect control plane).
	Brownouts int64
	// StaleWuDecisions counts transmit decisions that fell back to the
	// conservative w_u because no beacon arrived within the TTL.
	StaleWuDecisions int64
	// WindowHist counts, per forecast-window index, how many packets
	// were transmitted there (Fig. 4).
	WindowHist *Histogram
}

// NewNodeStats returns zeroed counters.
func NewNodeStats() *NodeStats {
	return &NodeStats{WindowHist: NewHistogram()}
}

// PRR returns the packet reception rate: ACKs received over packets
// generated.
func (s *NodeStats) PRR() float64 {
	if s.Generated == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Generated)
}

// AvgAttempts returns the mean transmission attempts per packet that
// reached the radio (the paper's avg RETX metric counts attempts).
func (s *NodeStats) AvgAttempts() float64 {
	sent := s.Generated - s.droppedBeforeRadio()
	if sent <= 0 {
		return 0
	}
	return float64(s.Attempts) / float64(sent)
}

// droppedBeforeRadio returns packets that never hit the radio, so
// AvgAttempts averages only over packets that transmitted at least once.
func (s *NodeStats) droppedBeforeRadio() int64 { return s.NeverSent }

// AvgUtility returns the mean per-generated-packet utility.
func (s *NodeStats) AvgUtility() float64 {
	if s.Generated == 0 {
		return 0
	}
	return s.UtilitySum / float64(s.Generated)
}

// AvgLatencyDelivered returns the mean latency over delivered packets.
func (s *NodeStats) AvgLatencyDelivered() simtime.Duration {
	if s.Delivered == 0 {
		return 0
	}
	return s.LatencyDelivered / simtime.Duration(s.Delivered)
}

// AvgLatencyPenalized returns the mean latency over all generated
// packets with undelivered ones penalized by a sampling period.
func (s *NodeStats) AvgLatencyPenalized() simtime.Duration {
	if s.Generated == 0 {
		return 0
	}
	return s.LatencyPenalized / simtime.Duration(s.Generated)
}
