package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxEnergyEstimatorEWMA(t *testing.T) {
	e := NewTxEnergyEstimator(0.3, 0.1)
	if got := e.Estimate(); got != 0.1 {
		t.Fatalf("initial estimate = %v, want 0.1", got)
	}
	e.Observe(0.2)
	want := 0.3*0.2 + 0.7*0.1
	if got := e.Estimate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("after observe = %v, want %v (Eq. 13)", got, want)
	}
}

func TestTxEnergyEstimatorConvergence(t *testing.T) {
	e := NewTxEnergyEstimator(0.3, 1.0)
	for i := 0; i < 100; i++ {
		e.Observe(0.05)
	}
	if got := e.Estimate(); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("estimate should converge to 0.05, got %v", got)
	}
}

func TestTxEnergyEstimatorEdgeCases(t *testing.T) {
	// Negative observations are ignored.
	e := NewTxEnergyEstimator(0.5, 0.2)
	e.Observe(-1)
	if got := e.Estimate(); got != 0.2 {
		t.Errorf("negative observation changed estimate to %v", got)
	}

	// A zero initial estimate adopts the first observation outright.
	z := NewTxEnergyEstimator(0.1, 0)
	z.Observe(0.3)
	if got := z.Estimate(); got != 0.3 {
		t.Errorf("zero-initialized estimator = %v, want 0.3", got)
	}

	// Beta is clamped into (0,1].
	c := NewTxEnergyEstimator(7, 1)
	c.Observe(2)
	if got := c.Estimate(); got != 2 {
		t.Errorf("beta=1 estimator should track exactly, got %v", got)
	}
	d := NewTxEnergyEstimator(-1, 1)
	d.Observe(100)
	if got := d.Estimate(); got <= 1 || got >= 2 {
		t.Errorf("tiny-beta estimator moved to %v, want barely above 1", got)
	}
}

func TestTxEnergyEstimatorNonNegative(t *testing.T) {
	f := func(beta, initial float64, obs []float64) bool {
		if math.IsNaN(beta) || math.IsNaN(initial) {
			return true
		}
		e := NewTxEnergyEstimator(math.Mod(math.Abs(beta), 1), math.Mod(math.Abs(initial), 10))
		for _, o := range obs {
			if math.IsNaN(o) {
				continue
			}
			e.Observe(math.Mod(o, 100))
		}
		return e.Estimate() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRetxHistoryValidation(t *testing.T) {
	if _, err := NewRetxHistory(0, 7); err == nil {
		t.Error("zero windows should fail")
	}
	if _, err := NewRetxHistory(10, -1); err == nil {
		t.Error("negative max retx should fail")
	}
	h, err := NewRetxHistory(10, 7)
	if err != nil {
		t.Fatalf("NewRetxHistory: %v", err)
	}
	if h.Windows() != 10 {
		t.Errorf("Windows = %d, want 10", h.Windows())
	}
}

func TestRetxHistoryProbEq14(t *testing.T) {
	h, err := NewRetxHistory(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: three packets, with 0, 0 and 2 retransmissions.
	h.Observe(1, 0)
	h.Observe(1, 0)
	h.Observe(1, 2)

	tests := []struct {
		r    int
		want float64
	}{
		{0, 2.0 / 3},
		{1, 2.0 / 3},
		{2, 1},
		{7, 1},
		{-1, 0},
	}
	for _, tt := range tests {
		if got := h.Prob(tt.r, 1); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Prob(%d|1) = %v, want %v", tt.r, got, tt.want)
		}
	}

	// Unobserved window: optimistic prior.
	if got := h.Prob(0, 2); got != 1 {
		t.Errorf("Prob(0|unobserved) = %v, want 1", got)
	}
	if got := h.ExpectedAttempts(2); got != 1 {
		t.Errorf("ExpectedAttempts(unobserved) = %v, want 1", got)
	}
}

func TestRetxHistoryExpectedAttempts(t *testing.T) {
	h, err := NewRetxHistory(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0, 0)
	h.Observe(0, 4)
	want := 1 + (0.0+4.0)/2
	if got := h.ExpectedAttempts(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedAttempts = %v, want %v", got, want)
	}
	if got := h.Selections(0); got != 2 {
		t.Errorf("Selections = %d, want 2", got)
	}
}

func TestRetxHistoryClamping(t *testing.T) {
	h, err := NewRetxHistory(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(99, 99) // clamps to window 2, retx 7
	h.Observe(-5, -5) // clamps to window 0, retx 0
	if got := h.Selections(2); got != 1 {
		t.Errorf("clamped high observation lost: %d", got)
	}
	if got := h.Selections(0); got != 1 {
		t.Errorf("clamped low observation lost: %d", got)
	}
	if got := h.ExpectedAttempts(2); got != 8 {
		t.Errorf("ExpectedAttempts(2) = %v, want 8", got)
	}
}

func TestRetxHistoryProbMonotoneCDF(t *testing.T) {
	h, err := NewRetxHistory(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(obs []uint16) bool {
		for _, o := range obs {
			h.Observe(int(o%5), int(o>>8)%8)
		}
		for w := 0; w < 5; w++ {
			prev := 0.0
			for r := 0; r <= 7; r++ {
				p := h.Prob(r, w)
				if p < prev-1e-12 || p < 0 || p > 1 {
					return false
				}
				prev = p
			}
			if math.Abs(h.Prob(7, w)-1) > 1e-12 {
				return false // CDF must reach 1 at max retx
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDIF(t *testing.T) {
	tests := []struct {
		name           string
		est, gen, maxE float64
		want           float64
	}{
		{"fully covered", 0.03, 0.05, 0.24, 0},
		{"exactly covered", 0.03, 0.03, 0.24, 0},
		{"no generation", 0.03, 0, 0.24, 0.125},
		{"partial", 0.03, 0.01, 0.08, 0.25},
		{"clamped at one", 0.5, 0, 0.1, 1},
		{"negative gen treated as zero", 0.04, -1, 0.08, 0.5},
		{"degenerate max", 0.03, 0, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DIF(tt.est, tt.gen, tt.maxE); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DIF(%v,%v,%v) = %v, want %v", tt.est, tt.gen, tt.maxE, got, tt.want)
			}
		})
	}
}

func TestDIFBounded(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		d := DIF(math.Abs(a), b, math.Abs(c))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
