// Package core implements the paper's primary contribution: the
// on-sensor battery lifespan-aware forecast-window selection of
// Sec. III-B. It contains the pure protocol logic, independent of any
// simulation substrate:
//
//   - TxEnergyEstimator: the EWMA transmission-energy estimate (Eq. 13);
//   - RetxHistory: the per-window retransmission probability history
//     (Eq. 14) used to steer nodes away from crowded forecast windows;
//   - DIF: the Degradation Impact Factor (Eq. 15);
//   - Selector: the forecast-window selection (Algorithm 1), minimizing
//     (1 - utility) + w_u * DIF * w_b subject to energy feasibility
//     (Eq. 17-21).
//
// Both the discrete-event simulator (internal/sim) and the concurrent
// testbed runtime (internal/testbed) drive this same code, so protocol
// behaviour cannot diverge between the two evaluation substrates.
package core
