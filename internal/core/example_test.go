package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/utility"
)

// ExampleSelector walks Algorithm 1 through the paper's Fig. 3 scenario:
// the battery cannot fund the first window, green energy arrives in the
// second. A fully degraded node (w_u = 1) defers to the covered window;
// a brand-new node (w_u = 0) transmits immediately for maximum utility.
func ExampleSelector() {
	sel, _ := core.NewSelector(utility.Linear{}, 1 /* w_b */)

	in := core.Inputs{
		StoredEnergy: 0.5,                               // psi, joules
		ForecastGen:  []float64{0, 0.08, 0.02, 0},       // E_g per window
		EstTxEnergy:  []float64{0.05, 0.05, 0.05, 0.05}, // e_tx per window
		MaxTxEnergy:  0.1,                               // E_tx_max
	}

	in.NormalizedDegradation = 1 // most degraded battery in the network
	d, _ := sel.Select(in)
	fmt.Printf("degraded node: window %d (DIF %.1f)\n", d.Window, d.DIF)

	in.NormalizedDegradation = 0 // fresh battery
	d, _ = sel.Select(in)
	fmt.Printf("fresh node: window %d (utility %.2f)\n", d.Window, d.Utility)
	// Output:
	// degraded node: window 1 (DIF 0.0)
	// fresh node: window 0 (utility 1.00)
}

// ExampleDIF shows the Degradation Impact Factor of Eq. (15): zero when
// green energy covers the transmission, growing with the battery's share.
func ExampleDIF() {
	fmt.Println(core.DIF(0.05, 0.08, 0.1)) // harvest covers everything
	fmt.Println(core.DIF(0.05, 0.00, 0.1)) // battery funds it all
	// Output:
	// 0
	// 0.5
}
