package core

import (
	"fmt"

	"repro/internal/mathx"
)

// TxEnergyEstimator is the exponentially weighted moving average of
// per-packet transmission energy, Eq. (13):
//
//	e[p] = beta * E[p-1] + (1 - beta) * e[p-1]
//
// where E[p-1] is the energy actually spent on the previous packet
// (including retransmissions) and beta weights recent observations.
type TxEnergyEstimator struct {
	beta     float64
	initial  float64
	estimate float64
	seen     bool
}

// NewTxEnergyEstimator returns an estimator with the given recency
// weight (clamped into (0,1]) and an initial estimate, typically the
// single-attempt transmission energy of the node's radio settings.
func NewTxEnergyEstimator(beta, initial float64) *TxEnergyEstimator {
	initial = max(0, initial)
	return &TxEnergyEstimator{
		beta:     min(1, max(1e-3, beta)),
		initial:  initial,
		estimate: initial,
	}
}

// Reset discards all observations, returning the estimator to its
// just-constructed state (a node rebooting after a brownout loses this
// volatile state).
func (e *TxEnergyEstimator) Reset() {
	e.estimate = e.initial
	e.seen = false
}

// Observe folds the actual energy consumption of the last packet into
// the estimate.
func (e *TxEnergyEstimator) Observe(actualJ float64) {
	if actualJ < 0 {
		return
	}
	if !e.seen && e.estimate == 0 {
		e.estimate = actualJ
		e.seen = true
		return
	}
	e.seen = true
	e.estimate = e.beta*actualJ + (1-e.beta)*e.estimate
}

// Estimate returns the current transmission-energy estimate in joules.
func (e *TxEnergyEstimator) Estimate() float64 { return e.estimate }

// RetxHistory tracks, per forecast window index, how many retransmissions
// past packets needed (Eq. 14). The protocol uses the expected number of
// attempts per window to inflate that window's energy estimate, which
// steers nodes away from historically crowded windows.
type RetxHistory struct {
	maxRetx int
	windows int
	// counts is the I_{r,t} matrix flattened row-major: window w's
	// retransmission counts live in counts[w*(maxRetx+1) : (w+1)*(maxRetx+1)].
	// One flat allocation keeps the per-packet Observe/Prob touches on a
	// single contiguous block instead of chasing a row pointer.
	counts   []uint32
	selected []uint32 // S_t
	weighted []uint64 // sum over r of r * counts[window][r], kept incrementally
	// attempts memoizes ExpectedAttempts per window between observations
	// (0 = not cached; genuine values are always >= 1). The decision path
	// queries every window per packet while only the chosen window's
	// history changes.
	attempts []float64
	// rev is the attempt-vector revision: it never stays put across a
	// change to any window's expected-attempt value, so decisions derived
	// from AttemptsVec may be memoized against it. An Observe with zero
	// retransmissions on a window whose weighted sum is zero leaves every
	// ratio at exactly 1 + 0/S_t = 1 and does NOT bump — that is the
	// steady night-time shape, and bumping there would evict the MAC
	// decision table on every delivered packet.
	rev uint64
}

// NewRetxHistory returns a history for window indexes [0, windows) and
// retransmission counts [0, maxRetx].
func NewRetxHistory(windows, maxRetx int) (*RetxHistory, error) {
	if windows <= 0 {
		return nil, fmt.Errorf("core: retx history needs at least one window, got %d", windows)
	}
	if maxRetx < 0 {
		return nil, fmt.Errorf("core: negative max retransmissions %d", maxRetx)
	}
	// counts and selected share one allocation (same element type, same
	// lifetime); a simulation builds one history per node.
	cs := make([]uint32, windows*(maxRetx+1)+windows)
	return &RetxHistory{
		maxRetx:  maxRetx,
		windows:  windows,
		counts:   cs[: windows*(maxRetx+1) : windows*(maxRetx+1)],
		selected: cs[windows*(maxRetx+1):],
		weighted: make([]uint64, windows),
		attempts: make([]float64, windows),
	}, nil
}

// Windows returns the number of window indexes tracked.
func (h *RetxHistory) Windows() int { return h.windows }

// Reset clears all recorded observations (volatile state lost on a node
// brownout), returning every window to the optimistic no-history prior.
func (h *RetxHistory) Reset() {
	clear(h.counts)
	clear(h.selected)
	clear(h.weighted)
	clear(h.attempts)
	// Conservative: the attempt values revert to the prior (1 for every
	// window), which differs from the pre-reset values whenever any
	// retransmission was ever recorded. A spurious bump only costs a
	// rebuild, never a stale hit.
	h.rev++
}

// Observe records that a packet sent in the given window needed the
// given number of retransmissions. Out-of-range values are clamped, so
// nodes whose sampling period shrank keep learning.
func (h *RetxHistory) Observe(window, retx int) {
	window = mathx.ClampInt(window, 0, h.windows-1)
	retx = mathx.ClampInt(retx, 0, h.maxRetx)
	h.counts[window*(h.maxRetx+1)+retx]++
	h.selected[window]++
	if retx != 0 || h.weighted[window] != 0 {
		// The window's mean retransmission count moved (or its
		// denominator did under a non-zero numerator): expected attempts
		// may change. With a zero numerator staying zero, the value is
		// pinned at exactly 1 regardless of the denominator, so the
		// revision — and any decision memoized on it — stands.
		h.rev++
	}
	h.weighted[window] += uint64(retx)
	h.attempts[window] = 0
}

// Rev returns the attempt-vector revision (see the rev field).
func (h *RetxHistory) Rev() uint64 { return h.rev }

// Prob returns P(retx <= r | window) per Eq. (14): the cumulative
// probability of needing at most r retransmissions in the window. With
// no history it returns 1 for any r >= 0 (optimistic prior: no
// retransmissions expected).
func (h *RetxHistory) Prob(r, window int) float64 {
	window = mathx.ClampInt(window, 0, h.windows-1)
	if r < 0 {
		return 0
	}
	r = mathx.ClampInt(r, 0, h.maxRetx)
	s := h.selected[window]
	if s == 0 {
		return 1
	}
	row := h.counts[window*(h.maxRetx+1):]
	var cum uint32
	for i := 0; i <= r; i++ {
		cum += row[i]
	}
	return float64(cum) / float64(s)
}

// ExpectedAttempts returns 1 plus the historical mean retransmission
// count of the window; the optimistic prior with no history is 1. The
// numerator is maintained incrementally by Observe — an integer sum, so
// it equals the fold over counts exactly.
func (h *RetxHistory) ExpectedAttempts(window int) float64 {
	window = mathx.ClampInt(window, 0, h.windows-1)
	if a := h.attempts[window]; a != 0 {
		return a
	}
	return h.fillAttempts(window)
}

// fillAttempts computes and memoizes the expected attempt count of a
// window, including the no-history prior (genuine values are always
// >= 1, so 0 stays free as the not-cached marker and Observe/Reset
// invalidate by zeroing).
func (h *RetxHistory) fillAttempts(window int) float64 {
	a := 1.0
	if s := h.selected[window]; s != 0 {
		a = 1 + float64(h.weighted[window])/float64(s)
	}
	h.attempts[window] = a
	return a
}

// AttemptsVec returns the expected attempt counts of windows [0, n) as
// one slice — the memo itself, refreshed where invalidated — letting the
// per-packet decision read all factors without a method call per window.
// The slice aliases the memo: it is read-only and valid until the next
// Observe or Reset. A request beyond the tracked window range returns
// nil (callers fall back to per-window queries, which clamp).
func (h *RetxHistory) AttemptsVec(n int) []float64 {
	if n > h.windows {
		return nil
	}
	v := h.attempts[:n]
	for t, a := range v {
		if a == 0 {
			v[t] = h.fillAttempts(t)
		}
	}
	return v
}

// Selections returns how many packets were observed for the window.
func (h *RetxHistory) Selections(window int) int {
	window = mathx.ClampInt(window, 0, h.windows-1)
	return int(h.selected[window])
}

// DIF is the Degradation Impact Factor of transmitting in a forecast
// window, Eq. (15):
//
//	DIF = (max(eTx, gen) - gen) / maxTx
//
// where eTx is the estimated energy a transmission will consume in the
// window, gen the forecast green-energy generation, and maxTx the
// maximum possible transmission energy. The result is clamped to [0,1]:
// 0 means green energy fully covers the transmission (no cycle-aging
// impact), 1 means the battery funds a worst-case transmission alone.
func DIF(estTxJ, forecastGenJ, maxTxJ float64) float64 {
	if maxTxJ <= 0 {
		return 1
	}
	if forecastGenJ < 0 {
		forecastGenJ = 0
	}
	d := (max(estTxJ, forecastGenJ) - forecastGenJ) / maxTxJ
	return min(1, max(0, d))
}
