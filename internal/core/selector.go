package core

import (
	"fmt"
	"math"

	"repro/internal/utility"
)

// Inputs carries everything Algorithm 1 needs to pick a forecast window
// for the current sampling period.
type Inputs struct {
	// StoredEnergy is the battery's current stored energy psi in joules.
	StoredEnergy float64
	// NormalizedDegradation is w_u in [0,1], disseminated daily by the
	// gateway: this node's degradation relative to the most degraded
	// battery in the network. A brand-new node uses 0.
	NormalizedDegradation float64
	// ForecastGen is the forecast green-energy generation E_g[t] in
	// joules for each forecast window of the period; its length defines
	// the number of windows |T|.
	ForecastGen []float64
	// EstTxEnergy is the estimated transmission energy e_tx[t] in joules
	// per window, already inflated by the window's expected
	// retransmission count.
	EstTxEnergy []float64
	// MaxTxEnergy is E_tx_max: the worst-case energy of a transmission
	// (all attempts), used to normalize the DIF.
	MaxTxEnergy float64
}

// Validate reports the first inconsistency in the inputs.
func (in Inputs) Validate() error {
	switch {
	case len(in.ForecastGen) == 0:
		return fmt.Errorf("core: no forecast windows")
	case len(in.EstTxEnergy) != len(in.ForecastGen):
		return fmt.Errorf("core: %d energy estimates for %d windows", len(in.EstTxEnergy), len(in.ForecastGen))
	case in.MaxTxEnergy <= 0:
		return fmt.Errorf("core: non-positive max transmission energy %v", in.MaxTxEnergy)
	case in.StoredEnergy < 0:
		return fmt.Errorf("core: negative stored energy %v", in.StoredEnergy)
	case in.NormalizedDegradation < 0 || in.NormalizedDegradation > 1:
		return fmt.Errorf("core: normalized degradation %v outside [0,1]", in.NormalizedDegradation)
	}
	return nil
}

// Decision is the outcome of Algorithm 1 for one packet.
type Decision struct {
	// OK is false when no window can fund the transmission (the packet
	// is dropped, Algorithm 1's FAIL).
	OK bool
	// Window is the chosen zero-based forecast window.
	Window int
	// Objective is the gamma value of the chosen window.
	Objective float64
	// DIF is the chosen window's degradation impact factor.
	DIF float64
	// Utility is the data utility of transmitting in the chosen window.
	Utility float64
}

// Selector runs the on-sensor forecast-window selection (Algorithm 1).
// The zero value is not useful: construct with a utility function and
// the network manager's degradation weight w_b.
type Selector struct {
	utility utility.Function
	weightB float64

	// mu is the per-window utility scratch reused across Select calls to
	// keep the decision path allocation-free on the node.
	mu []float64
	// muN is the window count the mu buffer currently holds values for.
	// utility.Value(t, n) is a pure function of (t, n), so the per-window
	// utilities only change when the window count does.
	muN int
}

// NewSelector returns a selector with the given utility function and
// degradation-vs-utility weight w_b in [0,1].
func NewSelector(fn utility.Function, weightB float64) (*Selector, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: nil utility function")
	}
	if weightB < 0 || weightB > 1 {
		return nil, fmt.Errorf("core: weight w_b %v outside [0,1]", weightB)
	}
	return &Selector{utility: fn, weightB: weightB}, nil
}

// WeightB returns the configured degradation weight w_b.
func (s *Selector) WeightB() float64 { return s.weightB }

// Select implements Algorithm 1: it evaluates the objective
//
//	gamma_t = (1 - mu(t)) + w_u * DIF_t * w_b
//
// for every forecast window and returns the window with the smallest
// gamma (earliest window on ties) among those whose cumulative energy
// (stored + forecast generation up to and including the window) covers
// the estimated transmission energy. This is exactly the window the
// reference formulation picks by sorting windows stably by
// non-decreasing gamma and taking the first feasible one: "first
// feasible in a stable gamma-ascending order" and "feasible window
// minimizing (gamma, index)" are the same window, so the sort is
// unnecessary and selection is a single O(n) pass. If no window is
// feasible the decision reports FAIL and the packet is dropped.
func (s *Selector) Select(in Inputs) (Decision, error) {
	if err := in.Validate(); err != nil {
		return Decision{}, err
	}
	return s.run(in.StoredEnergy, in.NormalizedDegradation, in.ForecastGen, in.EstTxEnergy, 0, nil, in.MaxTxEnergy), nil
}

// SelectEst runs Algorithm 1 with the per-window transmission-energy
// estimate computed on the fly as baseTx·attempts[t] (or baseTx alone
// when attempts is nil — an attempt factor of exactly 1). It is the
// fused form of filling an e_tx slice and calling Select: the arithmetic
// is term-for-term identical — x·1.0 is exact, and the product order
// matches the materialized fill — but the decision touches one slice
// pass fewer and no intermediate buffer, which matters on the per-packet
// hot path. attempts, when non-nil, must have at least len(forecast)
// elements.
func (s *Selector) SelectEst(stored, wu float64, forecast []float64, baseTx float64, attempts []float64, maxTx float64) (Decision, error) {
	switch {
	case len(forecast) == 0:
		return Decision{}, fmt.Errorf("core: no forecast windows")
	case attempts != nil && len(attempts) < len(forecast):
		return Decision{}, fmt.Errorf("core: %d attempt factors for %d windows", len(attempts), len(forecast))
	case maxTx <= 0:
		return Decision{}, fmt.Errorf("core: non-positive max transmission energy %v", maxTx)
	case stored < 0:
		return Decision{}, fmt.Errorf("core: negative stored energy %v", stored)
	case wu < 0 || wu > 1:
		return Decision{}, fmt.Errorf("core: normalized degradation %v outside [0,1]", wu)
	}
	return s.run(stored, wu, forecast, nil, baseTx, attempts, maxTx), nil
}

// SelectZeroEst runs Algorithm 1 for an all-zero forecast — the night
// shape, where every window's generation term vanishes — and
// additionally returns the stored-energy interval [lo, hi) over which
// the decision is invariant, so callers can cache the verdict and
// re-use it for later packets without re-running the pass.
//
// Equivalence with SelectEst(stored, wu, zeros, baseTx, attempts,
// maxTx), term for term: with gen == ±0 the cumulative-energy
// accumulator never moves (cum += max(0, ±0) adds +0 to a non-negative
// value, which is bit-exact identity), so feasibility of window t is
// exactly stored−e_t >= 0; DIF(e, ±0, maxTx) reduces to the same
// clamped e/maxTx for either zero sign; and gamma keeps its full
// expression. The loop below computes those reduced forms with the
// identical operations on the identical values, so the Decision matches
// SelectEst's bit for bit.
//
// The interval: the winner is the first feasible window minimizing
// (gamma, index), and raising stored only ever adds feasible windows.
// The verdict therefore stays put while stored >= e_winner (the winner
// stays feasible; lo) and stored < min e_w over every strictly better
// window — g_w < g_winner, or g_w == g_winner with w earlier — since
// any such window is infeasible at build (it would have won) and
// dethrones the winner the moment it can pay (hi). A FAIL verdict holds
// while stored < min e_w over all windows. hi is +Inf when no window
// can dethrone.
func (s *Selector) SelectZeroEst(stored, wu float64, n int, baseTx float64, attempts []float64, maxTx float64) (Decision, float64, float64, error) {
	switch {
	case n <= 0:
		return Decision{}, 0, 0, fmt.Errorf("core: no forecast windows")
	case attempts != nil && len(attempts) < n:
		return Decision{}, 0, 0, fmt.Errorf("core: %d attempt factors for %d windows", len(attempts), n)
	case maxTx <= 0:
		return Decision{}, 0, 0, fmt.Errorf("core: non-positive max transmission energy %v", maxTx)
	case stored < 0:
		return Decision{}, 0, 0, fmt.Errorf("core: negative stored energy %v", stored)
	case wu < 0 || wu > 1:
		return Decision{}, 0, 0, fmt.Errorf("core: normalized degradation %v outside [0,1]", wu)
	}
	s.sizeMu(n)
	best := -1
	var bestG, bestD float64
	for t := 0; t < n; t++ {
		e := baseTx
		if attempts != nil {
			e = baseTx * attempts[t]
		}
		d := DIF(e, 0, maxTx)
		g := (1 - s.mu[t]) + wu*d*s.weightB
		if stored-e >= 0 && (best < 0 || g < bestG) {
			best, bestG, bestD = t, g, d
		}
	}
	hi := math.Inf(1)
	lo := 0.0
	for t := 0; t < n; t++ {
		e := baseTx
		if attempts != nil {
			e = baseTx * attempts[t]
		}
		if best < 0 {
			// FAIL: any window becoming feasible changes the verdict.
			hi = min(hi, e)
			continue
		}
		if t == best {
			lo = e
			continue
		}
		g := (1 - s.mu[t]) + wu*DIF(e, 0, maxTx)*s.weightB
		if g < bestG || (g == bestG && t < best) {
			hi = min(hi, e)
		}
	}
	if best < 0 {
		return Decision{}, lo, hi, nil
	}
	return Decision{
		OK:        true,
		Window:    best,
		Objective: bestG,
		DIF:       bestD,
		Utility:   s.mu[best],
	}, lo, hi, nil
}

// run is the shared Algorithm 1 pass. Exactly one of estTx (materialized
// estimates) and baseTx/attempts (computed per window) supplies e_tx[t].
//
// A window whose cumulative energy exactly covers the estimated
// transmission cost is feasible: the battery ends the attempt empty
// but the transmission is funded (Algorithm 1's psi + sum E_g >= e_tx).
func (s *Selector) run(stored, wu float64, forecast, estTx []float64, baseTx float64, attempts []float64, maxTx float64) Decision {
	n := len(forecast)
	s.sizeMu(n)
	best := -1
	var bestG, bestD float64
	cum := stored
	for t := 0; t < n; t++ {
		gen := forecast[t]
		cum += max(0, gen)
		var e float64
		switch {
		case estTx != nil:
			e = estTx[t]
		case attempts != nil:
			e = baseTx * attempts[t]
		default:
			e = baseTx
		}
		d := DIF(e, gen, maxTx)
		g := (1 - s.mu[t]) + wu*d*s.weightB
		if cum-e >= 0 && (best < 0 || g < bestG) {
			best, bestG, bestD = t, g, d
		}
	}
	if best < 0 {
		return Decision{}
	}
	return Decision{
		OK:        true,
		Window:    best,
		Objective: bestG,
		DIF:       bestD,
		Utility:   s.mu[best],
	}
}

func (s *Selector) sizeMu(n int) {
	if cap(s.mu) < n {
		s.mu = make([]float64, n)
		s.muN = 0
	} else {
		s.mu = s.mu[:n]
	}
	if s.muN != n {
		for t := 0; t < n; t++ {
			s.mu[t] = s.utility.Value(t, n)
		}
		s.muN = n
	}
}
