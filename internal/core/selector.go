package core

import (
	"fmt"

	"repro/internal/utility"
)

// Inputs carries everything Algorithm 1 needs to pick a forecast window
// for the current sampling period.
type Inputs struct {
	// StoredEnergy is the battery's current stored energy psi in joules.
	StoredEnergy float64
	// NormalizedDegradation is w_u in [0,1], disseminated daily by the
	// gateway: this node's degradation relative to the most degraded
	// battery in the network. A brand-new node uses 0.
	NormalizedDegradation float64
	// ForecastGen is the forecast green-energy generation E_g[t] in
	// joules for each forecast window of the period; its length defines
	// the number of windows |T|.
	ForecastGen []float64
	// EstTxEnergy is the estimated transmission energy e_tx[t] in joules
	// per window, already inflated by the window's expected
	// retransmission count.
	EstTxEnergy []float64
	// MaxTxEnergy is E_tx_max: the worst-case energy of a transmission
	// (all attempts), used to normalize the DIF.
	MaxTxEnergy float64
}

// Validate reports the first inconsistency in the inputs.
func (in Inputs) Validate() error {
	switch {
	case len(in.ForecastGen) == 0:
		return fmt.Errorf("core: no forecast windows")
	case len(in.EstTxEnergy) != len(in.ForecastGen):
		return fmt.Errorf("core: %d energy estimates for %d windows", len(in.EstTxEnergy), len(in.ForecastGen))
	case in.MaxTxEnergy <= 0:
		return fmt.Errorf("core: non-positive max transmission energy %v", in.MaxTxEnergy)
	case in.StoredEnergy < 0:
		return fmt.Errorf("core: negative stored energy %v", in.StoredEnergy)
	case in.NormalizedDegradation < 0 || in.NormalizedDegradation > 1:
		return fmt.Errorf("core: normalized degradation %v outside [0,1]", in.NormalizedDegradation)
	}
	return nil
}

// Decision is the outcome of Algorithm 1 for one packet.
type Decision struct {
	// OK is false when no window can fund the transmission (the packet
	// is dropped, Algorithm 1's FAIL).
	OK bool
	// Window is the chosen zero-based forecast window.
	Window int
	// Objective is the gamma value of the chosen window.
	Objective float64
	// DIF is the chosen window's degradation impact factor.
	DIF float64
	// Utility is the data utility of transmitting in the chosen window.
	Utility float64
}

// Selector runs the on-sensor forecast-window selection (Algorithm 1).
// The zero value is not useful: construct with a utility function and
// the network manager's degradation weight w_b.
type Selector struct {
	utility utility.Function
	weightB float64

	// scratch buffers reused across Select calls to keep the decision
	// path allocation-free on the node.
	gamma  []float64
	dif    []float64
	mu     []float64
	order  []int
	cumGen []float64
}

// NewSelector returns a selector with the given utility function and
// degradation-vs-utility weight w_b in [0,1].
func NewSelector(fn utility.Function, weightB float64) (*Selector, error) {
	if fn == nil {
		return nil, fmt.Errorf("core: nil utility function")
	}
	if weightB < 0 || weightB > 1 {
		return nil, fmt.Errorf("core: weight w_b %v outside [0,1]", weightB)
	}
	return &Selector{utility: fn, weightB: weightB}, nil
}

// WeightB returns the configured degradation weight w_b.
func (s *Selector) WeightB() float64 { return s.weightB }

// Select implements Algorithm 1: it evaluates the objective
//
//	gamma_t = (1 - mu(t)) + w_u * DIF_t * w_b
//
// for every forecast window, sorts windows by non-decreasing gamma, and
// returns the best window whose cumulative energy (stored + forecast
// generation up to and including the window) covers the estimated
// transmission energy. If no window is feasible the decision reports
// FAIL and the packet is dropped.
func (s *Selector) Select(in Inputs) (Decision, error) {
	if err := in.Validate(); err != nil {
		return Decision{}, err
	}
	n := len(in.ForecastGen)
	s.resize(n)

	for t := 0; t < n; t++ {
		mu := s.utility.Value(t, n)
		d := DIF(in.EstTxEnergy[t], in.ForecastGen[t], in.MaxTxEnergy)
		s.mu[t] = mu
		s.dif[t] = d
		s.gamma[t] = (1 - mu) + in.NormalizedDegradation*d*s.weightB
		s.order[t] = t
	}

	// Cumulative available energy through the end of window t.
	cum := in.StoredEnergy
	for t := 0; t < n; t++ {
		cum += max(0, in.ForecastGen[t])
		s.cumGen[t] = cum
	}

	// Sort windows by non-decreasing gamma; insertion sort is stable (ties
	// resolve to the earlier window, which maximizes utility among equals)
	// and allocation-free for the tens of windows a period contains.
	for i := 1; i < n; i++ {
		t := s.order[i]
		g := s.gamma[t]
		j := i - 1
		for j >= 0 && s.gamma[s.order[j]] > g {
			s.order[j+1] = s.order[j]
			j--
		}
		s.order[j+1] = t
	}

	// A window whose cumulative energy exactly covers the estimated
	// transmission cost is feasible: the battery ends the attempt empty
	// but the transmission is funded (Algorithm 1's psi + sum E_g >= e_tx).
	for _, t := range s.order {
		if s.cumGen[t]-in.EstTxEnergy[t] >= 0 {
			return Decision{
				OK:        true,
				Window:    t,
				Objective: s.gamma[t],
				DIF:       s.dif[t],
				Utility:   s.mu[t],
			}, nil
		}
	}
	return Decision{}, nil
}

func (s *Selector) resize(n int) {
	if cap(s.gamma) < n {
		s.gamma = make([]float64, n)
		s.dif = make([]float64, n)
		s.mu = make([]float64, n)
		s.order = make([]int, n)
		s.cumGen = make([]float64, n)
		return
	}
	s.gamma = s.gamma[:n]
	s.dif = s.dif[:n]
	s.mu = s.mu[:n]
	s.order = s.order[:n]
	s.cumGen = s.cumGen[:n]
}
