package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/utility"
)

func newTestSelector(t *testing.T, weightB float64) *Selector {
	t.Helper()
	s, err := NewSelector(utility.Linear{}, weightB)
	if err != nil {
		t.Fatalf("NewSelector: %v", err)
	}
	return s
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, 1); err == nil {
		t.Error("nil utility should fail")
	}
	if _, err := NewSelector(utility.Linear{}, -0.1); err == nil {
		t.Error("negative w_b should fail")
	}
	if _, err := NewSelector(utility.Linear{}, 1.1); err == nil {
		t.Error("w_b > 1 should fail")
	}
	s, err := NewSelector(utility.Linear{}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.WeightB(); got != 0.7 {
		t.Errorf("WeightB = %v, want 0.7", got)
	}
}

func TestInputsValidate(t *testing.T) {
	valid := Inputs{
		StoredEnergy: 1,
		ForecastGen:  []float64{0.1, 0.1},
		EstTxEnergy:  []float64{0.03, 0.03},
		MaxTxEnergy:  0.24,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Inputs)
	}{
		{"no windows", func(in *Inputs) { in.ForecastGen = nil }},
		{"length mismatch", func(in *Inputs) { in.EstTxEnergy = in.EstTxEnergy[:1] }},
		{"zero max tx", func(in *Inputs) { in.MaxTxEnergy = 0 }},
		{"negative stored", func(in *Inputs) { in.StoredEnergy = -1 }},
		{"w_u out of range", func(in *Inputs) { in.NormalizedDegradation = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := valid
			in.ForecastGen = append([]float64(nil), valid.ForecastGen...)
			in.EstTxEnergy = append([]float64(nil), valid.EstTxEnergy...)
			tt.mutate(&in)
			if err := in.Validate(); err == nil {
				t.Error("Validate should fail")
			}
			if _, err := newTestSelector(t, 1).Select(in); err == nil {
				t.Error("Select should propagate validation error")
			}
		})
	}
}

// TestSelectNewNodePrioritizesUtility: a node with w_u = 0 (fresh
// battery) ignores the DIF and transmits as early as energy allows,
// maximizing utility — the paper's "new node" behaviour.
func TestSelectNewNodePrioritizesUtility(t *testing.T) {
	s := newTestSelector(t, 1)
	d, err := s.Select(Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 0,
		ForecastGen:           []float64{0, 0, 0.5, 0.5},
		EstTxEnergy:           []float64{0.03, 0.03, 0.03, 0.03},
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 0 {
		t.Errorf("decision = %+v, want window 0", d)
	}
	if d.Utility != 1 {
		t.Errorf("utility = %v, want 1", d.Utility)
	}
}

// TestSelectDegradedNodeChasesGreenEnergy reproduces the paper's Fig. 3:
// when harvested energy in the early window cannot cover the
// transmission, the most degraded node (w_u = 1) defers to a window with
// generation, while the least degraded node still transmits early.
func TestSelectDegradedNodeChasesGreenEnergy(t *testing.T) {
	// The utility lost by waiting one of the 4 windows is 0.25; the DIF of
	// an uncovered transmission is 0.12/0.24 = 0.5, so a fully degraded
	// node defers while a fresh one does not.
	in := Inputs{
		StoredEnergy: 1,
		ForecastGen:  []float64{0, 0.16, 0.02, 0},
		EstTxEnergy:  []float64{0.12, 0.12, 0.12, 0.12},
		MaxTxEnergy:  0.24,
	}
	s := newTestSelector(t, 1)

	in.NormalizedDegradation = 1 // most degraded node
	d, err := s.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 1 {
		t.Errorf("degraded node chose %+v, want window 1 (green energy)", d)
	}
	if d.DIF != 0 {
		t.Errorf("DIF in covered window = %v, want 0", d.DIF)
	}

	in.NormalizedDegradation = 0 // freshest node
	d, err = s.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 0 {
		t.Errorf("fresh node chose %+v, want window 0 (utility)", d)
	}
}

// TestSelectWeightBZeroDisablesDegradation: with w_b = 0 the network
// manager disables lifespan awareness entirely.
func TestSelectWeightBZeroDisablesDegradation(t *testing.T) {
	s := newTestSelector(t, 0)
	d, err := s.Select(Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 1,
		ForecastGen:           []float64{0, 1, 1},
		EstTxEnergy:           []float64{0.03, 0.03, 0.03},
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 0 {
		t.Errorf("w_b=0 decision = %+v, want window 0", d)
	}
}

// TestSelectEnergyFeasibility: early low-gamma windows are skipped when
// the battery plus cumulative generation cannot fund the transmission.
func TestSelectEnergyFeasibility(t *testing.T) {
	s := newTestSelector(t, 1)
	d, err := s.Select(Inputs{
		StoredEnergy:          0,
		NormalizedDegradation: 0,
		ForecastGen:           []float64{0, 0.01, 0.05},
		EstTxEnergy:           []float64{0.04, 0.04, 0.04},
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative energy: 0, 0.01, 0.06 -> only window 2 clears 0.04.
	if !d.OK || d.Window != 2 {
		t.Errorf("decision = %+v, want window 2", d)
	}
}

// TestSelectExactCoverageIsFeasible pins the feasibility boundary: a
// window whose cumulative energy exactly equals the estimated
// transmission cost must be accepted (psi + sum E_g >= e_tx), not
// rejected — the battery may end the attempt empty, but the
// transmission is funded.
func TestSelectExactCoverageIsFeasible(t *testing.T) {
	s := newTestSelector(t, 1)
	d, err := s.Select(Inputs{
		StoredEnergy:          0.01,
		NormalizedDegradation: 0,
		ForecastGen:           []float64{0.03, 0, 0},
		EstTxEnergy:           []float64{0.04, 0.04, 0.04}, // cum[0] == est exactly
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 0 {
		t.Errorf("decision = %+v, want window 0 accepted at exact energy coverage", d)
	}
}

// TestSelectDecisionReusesScoringValues: the returned DIF/Utility/
// Objective must be the values computed in the scoring loop, mutually
// consistent under the gamma identity.
func TestSelectDecisionReusesScoringValues(t *testing.T) {
	s := newTestSelector(t, 0.5)
	in := Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 0.8,
		ForecastGen:           []float64{0, 0.02, 0.16, 0},
		EstTxEnergy:           []float64{0.12, 0.12, 0.12, 0.12},
		MaxTxEnergy:           0.24,
	}
	d, err := s.Select(in)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		t.Fatal("expected a feasible decision")
	}
	wantDIF := DIF(in.EstTxEnergy[d.Window], in.ForecastGen[d.Window], in.MaxTxEnergy)
	if d.DIF != wantDIF {
		t.Errorf("DIF = %v, want %v", d.DIF, wantDIF)
	}
	if want := (1 - d.Utility) + in.NormalizedDegradation*d.DIF*s.WeightB(); math.Abs(d.Objective-want) > 1e-15 {
		t.Errorf("Objective = %v, inconsistent with returned DIF/Utility (want %v)", d.Objective, want)
	}
}

// TestSelectFail: Algorithm 1 returns FAIL when no window is feasible
// (e.g. a long overcast night with a depleted battery).
func TestSelectFail(t *testing.T) {
	s := newTestSelector(t, 1)
	d, err := s.Select(Inputs{
		StoredEnergy:          0.01,
		NormalizedDegradation: 0.5,
		ForecastGen:           []float64{0, 0, 0},
		EstTxEnergy:           []float64{0.04, 0.04, 0.04},
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK {
		t.Errorf("decision = %+v, want FAIL", d)
	}
}

// TestSelectObjectiveOptimal: the chosen window minimizes gamma among
// all feasible windows (brute-force cross-check).
func TestSelectObjectiveOptimal(t *testing.T) {
	s := newTestSelector(t, 1)
	f := func(seed uint64, rawN uint8, rawWu uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := int(rawN%20) + 1
		wu := float64(rawWu%101) / 100
		in := Inputs{
			StoredEnergy:          rng.Float64() * 0.1,
			NormalizedDegradation: wu,
			ForecastGen:           make([]float64, n),
			EstTxEnergy:           make([]float64, n),
			MaxTxEnergy:           0.24,
		}
		for i := 0; i < n; i++ {
			in.ForecastGen[i] = rng.Float64() * 0.08
			in.EstTxEnergy[i] = 0.02 + rng.Float64()*0.1
		}
		d, err := s.Select(in)
		if err != nil {
			return false
		}
		// Brute force.
		bestWindow, bestGamma := -1, math.Inf(1)
		cum := in.StoredEnergy
		for t := 0; t < n; t++ {
			cum += in.ForecastGen[t]
			mu := utility.Linear{}.Value(t, n)
			gamma := (1 - mu) + wu*DIF(in.EstTxEnergy[t], in.ForecastGen[t], in.MaxTxEnergy)
			if cum-in.EstTxEnergy[t] >= 0 && gamma < bestGamma-1e-15 {
				bestGamma, bestWindow = gamma, t
			}
		}
		if bestWindow == -1 {
			return !d.OK
		}
		return d.OK && math.Abs(d.Objective-bestGamma) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelectTieBreaksEarlier: equal-gamma windows resolve to the earliest.
func TestSelectTieBreaksEarlier(t *testing.T) {
	s, err := NewSelector(utility.Indifferent{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Select(Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 1,
		ForecastGen:           []float64{0.5, 0.5, 0.5}, // all DIF 0, all utility 1
		EstTxEnergy:           []float64{0.03, 0.03, 0.03},
		MaxTxEnergy:           0.24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Window != 0 {
		t.Errorf("decision = %+v, want earliest window on tie", d)
	}
}

// TestSelectorReuseAcrossSizes: scratch buffers must resize correctly
// when the number of windows changes between calls.
func TestSelectorReuseAcrossSizes(t *testing.T) {
	s := newTestSelector(t, 1)
	for _, n := range []int{16, 60, 3, 40, 1} {
		in := Inputs{
			StoredEnergy: 1,
			ForecastGen:  make([]float64, n),
			EstTxEnergy:  make([]float64, n),
			MaxTxEnergy:  0.24,
		}
		for i := range in.EstTxEnergy {
			in.EstTxEnergy[i] = 0.03
		}
		d, err := s.Select(in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !d.OK || d.Window < 0 || d.Window >= n {
			t.Fatalf("n=%d: decision %+v out of range", n, d)
		}
	}
}

// TestSelectAllocationFree: the steady-state decision path must not
// allocate — it runs on a constrained sensor every sampling period.
func TestSelectAllocationFree(t *testing.T) {
	s := newTestSelector(t, 1)
	in := Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 0.5,
		ForecastGen:           make([]float64, 60),
		EstTxEnergy:           make([]float64, 60),
		MaxTxEnergy:           0.24,
	}
	for i := range in.EstTxEnergy {
		in.EstTxEnergy[i] = 0.03
		in.ForecastGen[i] = float64(i%7) * 0.01
	}
	if _, err := s.Select(in); err != nil { // warm up scratch buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Select(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Select allocates %v times per run, want 0", allocs)
	}
}
