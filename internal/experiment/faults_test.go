package experiment

import (
	"strings"
	"testing"
)

// renderTable flattens a table to the exact text the CLI prints.
func renderTable(t *testing.T, tbl *Table) string {
	t.Helper()
	var b strings.Builder
	if err := tbl.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestFaultsSweepTiny(t *testing.T) {
	tbl, err := FaultsSweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("faults rows = %d, want 3 loss rates x 3 outage lengths", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
				t.Errorf("non-finite cell %q in row %v", cell, row)
			}
		}
		if row[2] == "n/a" {
			t.Errorf("lifespan proxy missing in row %v", row)
		}
	}
}

// TestFaultsSweepDeterministic locks the acceptance contract: the
// rendered faults table is byte-identical across repeated runs and
// across worker counts, replicates included.
func TestFaultsSweepDeterministic(t *testing.T) {
	render := func(o Options) string {
		tbl, err := FaultsSweep(o)
		if err != nil {
			t.Fatal(err)
		}
		return renderTable(t, tbl)
	}

	base := tiny()
	first := render(base)
	if again := render(base); again != first {
		t.Errorf("faults table differs across identical runs:\n%s\nvs\n%s", first, again)
	}
	serial := base
	serial.Workers = 1
	if got := render(serial); got != first {
		t.Errorf("faults table differs at -j 1:\n%s\nvs\n%s", first, got)
	}
	wide := base
	wide.Workers = 3
	if got := render(wide); got != first {
		t.Errorf("faults table differs at -j 3:\n%s\nvs\n%s", first, got)
	}

	reps := base
	reps.Replicates = 2
	repFirst := render(reps)
	reps.Workers = 4
	if got := render(reps); got != repFirst {
		t.Errorf("replicated faults table differs across worker counts:\n%s\nvs\n%s", repFirst, got)
	}
}
