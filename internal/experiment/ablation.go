package experiment

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// ablationScenario is the shared baseline for the design-choice
// ablations: H-50 at a scale small enough to sweep.
func ablationScenario(o Options) config.Scenario {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(200)
	cfg.Duration = o.duration(120 * simtime.Day)
	cfg.Protocol = config.ProtocolBLA
	cfg.Theta = 0.5
	return cfg
}

func runOne(o Options, cfg config.Scenario, label string) (*runSummary, error) {
	o.logf("ablation: running %s", label)
	s, err := sim.New(cfg, sim.Hooks{})
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", label, err)
	}
	res, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", label, err)
	}
	sum := summarize(res)
	sum.label = label
	return sum, nil
}

// ForecastAblation quantifies the protocol's sensitivity to forecast
// quality (Sec. III-B delegates forecasting to [22]): the oracle, the
// on-sensor diurnal EWMA, and noisy oracles.
func ForecastAblation(o Options) (*Table, error) {
	cases := []struct {
		label string
		kind  config.ForecastKind
		noise float64
	}{
		{label: "perfect", kind: config.ForecastPerfect},
		{label: "ewma (default)", kind: config.ForecastEWMA},
		{label: "noisy 30%", kind: config.ForecastNoisy, noise: 0.3},
		{label: "noisy 80%", kind: config.ForecastNoisy, noise: 0.8},
	}
	t := &Table{
		ID:      "abl-forecast",
		Title:   "Ablation: green-energy forecast quality (H-50)",
		Columns: []string{"forecaster", "PRR", "utility", "deg mean", "dropped by Alg.1 %"},
	}
	for _, c := range cases {
		cfg := ablationScenario(o)
		cfg.Forecast = c.kind
		cfg.ForecastNoise = c.noise
		sum, err := runOne(o, cfg, c.label)
		if err != nil {
			return nil, err
		}
		dropped := 0.0
		if sum.generated > 0 {
			dropped = 100 * float64(sum.neverSent) / float64(sum.generated)
		}
		t.AddRow(c.label,
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.utility).Mean),
			fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
			fmt.Sprintf("%.1f", dropped),
		)
	}
	return t, nil
}

// WeightBAblation sweeps the network manager's degradation weight w_b:
// the latency/lifespan trade-off the paper discusses under Fig. 6c.
func WeightBAblation(o Options) (*Table, error) {
	t := &Table{
		ID:      "abl-weightb",
		Title:   "Ablation: degradation weight w_b (H-50)",
		Columns: []string{"w_b", "avg latency s", "deg mean", "deg variance", "utility"},
	}
	for _, wb := range []float64{0, 0.25, 0.5, 1} {
		cfg := ablationScenario(o)
		cfg.WeightB = wb
		sum, err := runOne(o, cfg, fmt.Sprintf("w_b=%g", wb))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", wb),
			fmt.Sprintf("%.1f", metrics.BoxOf(sum.latencyS).Mean),
			fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
			fmt.Sprintf("%.3g", metrics.BoxOf(sum.degs).Variance),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.utility).Mean),
		)
	}
	t.AddNote("paper: low w_b lowers latency at the cost of battery lifespan")
	return t, nil
}

// RetxHistoryAblation isolates the contribution of the Eq. (14)
// retransmission-probability history to collision avoidance.
func RetxHistoryAblation(o Options) (*Table, error) {
	t := &Table{
		ID:      "abl-retxhist",
		Title:   "Ablation: per-window retransmission history (H-50)",
		Columns: []string{"history", "avg TX attempts", "PRR", "TX energy J"},
	}
	for _, disabled := range []bool{false, true} {
		cfg := ablationScenario(o)
		cfg.DisableRetxHistory = disabled
		label := "enabled (Eq. 14)"
		if disabled {
			label = "disabled"
		}
		sum, err := runOne(o, cfg, label)
		if err != nil {
			return nil, err
		}
		t.AddRow(label,
			fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			fmt.Sprintf("%.0f", sum.txEnergyJ),
		)
	}
	return t, nil
}

// SupercapAblation evaluates the hybrid-storage extension the paper's
// Sec. V leaves as future work: a supercapacitor in front of the battery
// absorbs transmission dips, trading self-discharge leakage for battery
// cycle aging.
func SupercapAblation(o Options) (*Table, error) {
	t := &Table{
		ID:      "abl-supercap",
		Title:   "Extension: supercapacitor buffer in front of the battery",
		Columns: []string{"config", "protocol", "cycle aging mean", "deg mean", "PRR"},
	}
	for _, sc := range []struct {
		label string
		capJ  float64
		leakW float64
	}{
		{label: "battery only", capJ: 0},
		{label: "small supercap (0.5 J)", capJ: 0.5, leakW: 5e-6},
		{label: "large supercap (5 J)", capJ: 5, leakW: 50e-6},
	} {
		for _, v := range []variant{
			{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
			{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
		} {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.SupercapJ = sc.capJ
			cfg.SupercapLeakW = sc.leakW
			o.logf("ablation: supercap %s / %s", sc.label, v.label)
			s, err := sim.New(cfg, sim.Hooks{})
			if err != nil {
				return nil, err
			}
			res, err := s.Run()
			if err != nil {
				return nil, err
			}
			var cyc, deg, prr metrics.Welford
			for _, n := range res.Nodes {
				cyc.Add(n.Degradation.Cycle)
				deg.Add(n.Degradation.Total)
				prr.Add(n.Stats.PRR())
			}
			t.AddRow(sc.label, v.label,
				fmt.Sprintf("%.3e", cyc.Mean()),
				fmt.Sprintf("%.5f", deg.Mean()),
				fmt.Sprintf("%.3f", prr.Mean()),
			)
		}
	}
	t.AddNote("a supercapacitor cannot bridge nights (the paper's argument for keeping the battery), but it absorbs TX dips")
	return t, nil
}

// GatewayAblation densifies the deployment with extra gateways (the
// paper's system model allows "one or more"): more gateways rescue
// collision losses via spatial diversity and spread the ACK load.
func GatewayAblation(o Options) (*Table, error) {
	t := &Table{
		ID:      "abl-gateways",
		Title:   "Extension: gateway density",
		Columns: []string{"gateways", "protocol", "PRR", "avg TX attempts", "deg mean"},
	}
	for _, gws := range []int{1, 2, 4} {
		for _, v := range []variant{
			{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
			{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
		} {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.Gateways = gws
			sum, err := runOne(o, cfg, fmt.Sprintf("%s/%d gateways", v.label, gws))
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", gws), v.label,
				fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
				fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
				fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
			)
		}
	}
	t.AddNote("a packet is delivered when any gateway decodes it; each gateway has its own demodulators and downlink radio")
	return t, nil
}

// StartSpreadAblation shows how deployment-phase synchronization drives
// the LoRaWAN baseline into persistent collisions while BLA self-spreads
// (the congestion regime calibration documented in DESIGN.md).
func StartSpreadAblation(o Options) (*Table, error) {
	t := &Table{
		ID:      "abl-startspread",
		Title:   "Ablation: deployment start spread vs collision regime",
		Columns: []string{"start spread", "protocol", "avg TX attempts", "PRR"},
	}
	for _, spread := range []simtime.Duration{0, 30 * simtime.Second, 5 * simtime.Minute} {
		for _, v := range []variant{
			{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
			{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
		} {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.StartSpread = spread
			spreadLabel := "per-period (uncorrelated)"
			if spread > 0 {
				spreadLabel = spread.String()
			}
			sum, err := runOne(o, cfg, v.label+"/"+spreadLabel)
			if err != nil {
				return nil, err
			}
			t.AddRow(spreadLabel, v.label,
				fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
				fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			)
		}
	}
	return t, nil
}
