package experiment

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// ablationScenario is the shared baseline for the design-choice
// ablations: H-50 at a scale small enough to sweep.
func ablationScenario(o Options) config.Scenario {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(200)
	cfg.Duration = o.duration(120 * simtime.Day)
	cfg.Protocol = config.ProtocolBLA
	cfg.Theta = 0.5
	return cfg
}

// ForecastAblation quantifies the protocol's sensitivity to forecast
// quality (Sec. III-B delegates forecasting to [22]): the oracle, the
// on-sensor diurnal EWMA, and noisy oracles.
func ForecastAblation(o Options) (*Table, error) {
	cases := []struct {
		label string
		kind  config.ForecastKind
		noise float64
	}{
		{label: "perfect", kind: config.ForecastPerfect},
		{label: "ewma (default)", kind: config.ForecastEWMA},
		{label: "noisy 30%", kind: config.ForecastNoisy, noise: 0.3},
		{label: "noisy 80%", kind: config.ForecastNoisy, noise: 0.8},
	}
	labels := make([]string, len(cases))
	cfgs := make([]config.Scenario, len(cases))
	for i, c := range cases {
		labels[i] = c.label
		cfg := ablationScenario(o)
		cfg.Forecast = c.kind
		cfg.ForecastNoise = c.noise
		cfgs[i] = cfg
	}
	sums, err := runScenarios(o, "abl-forecast", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-forecast",
		Title:   "Ablation: green-energy forecast quality (H-50)",
		Columns: []string{"forecaster", "PRR", "utility", "deg mean", "dropped by Alg.1 %"},
	}
	for _, sum := range sums {
		dropped := 0.0
		if sum.generated > 0 {
			dropped = 100 * float64(sum.neverSent) / float64(sum.generated)
		}
		t.AddRow(sum.label,
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.utility).Mean),
			fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
			fmt.Sprintf("%.1f", dropped),
		)
	}
	noteReplicates(t, o)
	return t, nil
}

// WeightBAblation sweeps the network manager's degradation weight w_b:
// the latency/lifespan trade-off the paper discusses under Fig. 6c.
func WeightBAblation(o Options) (*Table, error) {
	weights := []float64{0, 0.25, 0.5, 1}
	labels := make([]string, len(weights))
	cfgs := make([]config.Scenario, len(weights))
	for i, wb := range weights {
		labels[i] = fmt.Sprintf("w_b=%g", wb)
		cfg := ablationScenario(o)
		cfg.WeightB = wb
		cfgs[i] = cfg
	}
	sums, err := runScenarios(o, "abl-weightb", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-weightb",
		Title:   "Ablation: degradation weight w_b (H-50)",
		Columns: []string{"w_b", "avg latency s", "deg mean", "deg variance", "utility"},
	}
	for i, sum := range sums {
		t.AddRow(fmt.Sprintf("%.2f", weights[i]),
			fmt.Sprintf("%.1f", metrics.BoxOf(sum.latencyS).Mean),
			fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
			fmt.Sprintf("%.3g", metrics.BoxOf(sum.degs).Variance),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.utility).Mean),
		)
	}
	t.AddNote("paper: low w_b lowers latency at the cost of battery lifespan")
	noteReplicates(t, o)
	return t, nil
}

// RetxHistoryAblation isolates the contribution of the Eq. (14)
// retransmission-probability history to collision avoidance.
func RetxHistoryAblation(o Options) (*Table, error) {
	modes := []bool{false, true}
	labels := make([]string, len(modes))
	cfgs := make([]config.Scenario, len(modes))
	for i, disabled := range modes {
		labels[i] = "enabled (Eq. 14)"
		if disabled {
			labels[i] = "disabled"
		}
		cfg := ablationScenario(o)
		cfg.DisableRetxHistory = disabled
		cfgs[i] = cfg
	}
	sums, err := runScenarios(o, "abl-retxhist", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-retxhist",
		Title:   "Ablation: per-window retransmission history (H-50)",
		Columns: []string{"history", "avg TX attempts", "PRR", "TX energy J"},
	}
	for _, sum := range sums {
		t.AddRow(sum.label,
			fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			fmt.Sprintf("%.0f", sum.txEnergyJ),
		)
	}
	noteReplicates(t, o)
	return t, nil
}

// SupercapAblation evaluates the hybrid-storage extension the paper's
// Sec. V leaves as future work: a supercapacitor in front of the battery
// absorbs transmission dips, trading self-discharge leakage for battery
// cycle aging.
func SupercapAblation(o Options) (*Table, error) {
	storage := []struct {
		label string
		capJ  float64
		leakW float64
	}{
		{label: "battery only", capJ: 0},
		{label: "small supercap (0.5 J)", capJ: 0.5, leakW: 5e-6},
		{label: "large supercap (5 J)", capJ: 5, leakW: 50e-6},
	}
	protos := []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
	}
	type combo struct {
		scLabel, vLabel string
	}
	var combos []combo
	var labels []string
	var cfgs []config.Scenario
	for _, sc := range storage {
		for _, v := range protos {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.SupercapJ = sc.capJ
			cfg.SupercapLeakW = sc.leakW
			combos = append(combos, combo{scLabel: sc.label, vLabel: v.label})
			labels = append(labels, fmt.Sprintf("supercap %s / %s", sc.label, v.label))
			cfgs = append(cfgs, cfg)
		}
	}
	sums, err := runScenarios(o, "abl-supercap", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-supercap",
		Title:   "Extension: supercapacitor buffer in front of the battery",
		Columns: []string{"config", "protocol", "cycle aging mean", "deg mean", "PRR"},
	}
	for i, sum := range sums {
		var cyc, deg, prr metrics.Welford
		for j := range sum.degs {
			cyc.Add(sum.cycles[j])
			deg.Add(sum.degs[j])
			prr.Add(sum.prr[j])
		}
		t.AddRow(combos[i].scLabel, combos[i].vLabel,
			fmt.Sprintf("%.3e", cyc.Mean()),
			fmt.Sprintf("%.5f", deg.Mean()),
			fmt.Sprintf("%.3f", prr.Mean()),
		)
	}
	t.AddNote("a supercapacitor cannot bridge nights (the paper's argument for keeping the battery), but it absorbs TX dips")
	noteReplicates(t, o)
	return t, nil
}

// GatewayAblation densifies the deployment with extra gateways (the
// paper's system model allows "one or more"): more gateways rescue
// collision losses via spatial diversity and spread the ACK load.
func GatewayAblation(o Options) (*Table, error) {
	counts := []int{1, 2, 4}
	protos := []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
	}
	type combo struct {
		gws    int
		vLabel string
	}
	var combos []combo
	var labels []string
	var cfgs []config.Scenario
	for _, gws := range counts {
		for _, v := range protos {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.Gateways = gws
			combos = append(combos, combo{gws: gws, vLabel: v.label})
			labels = append(labels, fmt.Sprintf("%s/%d gateways", v.label, gws))
			cfgs = append(cfgs, cfg)
		}
	}
	sums, err := runScenarios(o, "abl-gateways", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-gateways",
		Title:   "Extension: gateway density",
		Columns: []string{"gateways", "protocol", "PRR", "avg TX attempts", "deg mean"},
	}
	for i, sum := range sums {
		t.AddRow(fmt.Sprintf("%d", combos[i].gws), combos[i].vLabel,
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
			fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
			fmt.Sprintf("%.5f", metrics.BoxOf(sum.degs).Mean),
		)
	}
	t.AddNote("a packet is delivered when any gateway decodes it; each gateway has its own demodulators and downlink radio")
	noteReplicates(t, o)
	return t, nil
}

// StartSpreadAblation shows how deployment-phase synchronization drives
// the LoRaWAN baseline into persistent collisions while BLA self-spreads
// (the congestion regime calibration documented in DESIGN.md).
func StartSpreadAblation(o Options) (*Table, error) {
	spreads := []simtime.Duration{0, 30 * simtime.Second, 5 * simtime.Minute}
	protos := []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
	}
	type combo struct {
		spreadLabel, vLabel string
	}
	var combos []combo
	var labels []string
	var cfgs []config.Scenario
	for _, spread := range spreads {
		for _, v := range protos {
			cfg := ablationScenario(o)
			cfg.Protocol = v.protocol
			cfg.Theta = v.theta
			cfg.StartSpread = spread
			spreadLabel := "per-period (uncorrelated)"
			if spread > 0 {
				spreadLabel = spread.String()
			}
			combos = append(combos, combo{spreadLabel: spreadLabel, vLabel: v.label})
			labels = append(labels, v.label+"/"+spreadLabel)
			cfgs = append(cfgs, cfg)
		}
	}
	sums, err := runScenarios(o, "abl-startspread", labels, cfgs)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-startspread",
		Title:   "Ablation: deployment start spread vs collision regime",
		Columns: []string{"start spread", "protocol", "avg TX attempts", "PRR"},
	}
	for i, sum := range sums {
		t.AddRow(combos[i].spreadLabel, combos[i].vLabel,
			fmt.Sprintf("%.2f", metrics.BoxOf(sum.attempts).Mean),
			fmt.Sprintf("%.3f", metrics.BoxOf(sum.prr).Mean),
		)
	}
	noteReplicates(t, o)
	return t, nil
}
