package experiment

import (
	"fmt"
	"testing"
	"unsafe"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/testbed"
	"repro/internal/utility"
)

// TestbedScenario returns the paper's Sec. IV-B setup: 10 nodes with a
// 10-minute sampling period and 1-minute windows on one 125 kHz channel
// at SF10, 24 hours, with a real-battery emulation (~400 mAh) and
// hourly w_u dissemination (a 24 h experiment cannot wait a day).
func TestbedScenario(o Options, protocol config.ProtocolKind, theta float64) config.Scenario {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(10)
	cfg.Protocol = protocol
	cfg.Theta = theta
	cfg.PeriodMin = 10 * simtime.Minute
	cfg.PeriodMax = 10 * simtime.Minute
	cfg.FixedSF = lora.SF10
	cfg.Channels = 1
	cfg.Duration = o.duration(24 * simtime.Hour)
	cfg.ForecastPrimeDays = 2
	cfg.StartSpread = 5 * simtime.Second
	cfg.DegradationInterval = simtime.Hour
	cfg.BatteryCapacityJ = 5300
	return cfg
}

// Fig9 regenerates the testbed comparison (Fig. 9): battery degradation,
// retransmissions and latency of 10 emulated nodes over 24 hours, H-100
// vs LoRaWAN, on the concurrent virtual-time runtime.
func Fig9(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig9",
		Title: "Testbed (10 concurrent nodes, 24 h): H-100 vs LoRaWAN",
		Columns: []string{
			"metric", "LoRaWAN", "H-100",
		},
	}
	type outcome struct {
		deg, cyc, att, lat, prr metrics.Welford
		degVar                  float64
	}
	o = o.parallel()
	variants := []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-100", protocol: config.ProtocolBLA, theta: 1},
	}
	// Each testbed run already spawns one goroutine per node; the two
	// variants additionally fan out across the worker pool.
	outs, err := mapRuns(o, len(variants), func(i int) (outcome, error) {
		v := variants[i]
		cfg := TestbedScenario(o, v.protocol, v.theta)
		o.logf("fig9: testbed %s (%d goroutine nodes, %v)", v.label, cfg.Nodes, cfg.Duration)
		res, err := testbed.Run(cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("experiment: fig9 %s: %w", v.label, err)
		}
		var oc outcome
		var degs []float64
		for _, n := range res.Nodes {
			oc.deg.Add(n.Degradation.Total)
			oc.cyc.Add(n.Degradation.Cycle)
			oc.att.Add(n.Stats.AvgAttempts())
			oc.lat.Add(n.Stats.AvgLatencyDelivered().Seconds())
			oc.prr.Add(n.Stats.PRR())
			degs = append(degs, n.Degradation.Total)
		}
		oc.degVar = metrics.BoxOf(degs).Variance
		return oc, nil
	})
	if err != nil {
		return nil, err
	}
	row := func(name string, f func(outcome) string) {
		t.AddRow(name, f(outs[0]), f(outs[1]))
	}
	row("degradation mean (9a)", func(oc outcome) string { return fmt.Sprintf("%.3e", oc.deg.Mean()) })
	row("degradation variance (9a)", func(oc outcome) string { return fmt.Sprintf("%.3e", oc.degVar) })
	row("cycle aging mean", func(oc outcome) string { return fmt.Sprintf("%.3e", oc.cyc.Mean()) })
	row("avg TX attempts (9b)", func(oc outcome) string { return fmt.Sprintf("%.2f", oc.att.Mean()) })
	row("avg latency s (9c)", func(oc outcome) string { return fmt.Sprintf("%.1f", oc.lat.Mean()) })
	row("PRR", func(oc outcome) string { return fmt.Sprintf("%.3f", oc.prr.Mean()) })
	t.AddNote("paper Fig. 9: PRR 100%% for both; LoRaWAN higher degradation variance and RETX; H-100 higher latency, lower cycle aging")
	return t, nil
}

// TableI regenerates the system-overhead comparison. The paper measures
// Raspberry-Pi CPU/memory via psutil; the Go analogue reports the
// decision-path cost and protocol state of each MAC, which is what the
// paper's "low overhead" claim is about (see DESIGN.md substitutions).
func TableI(o Options) (*Table, error) {
	const windows = 40
	forecast := make([]float64, windows)
	estTx := make([]float64, windows)
	for i := range forecast {
		forecast[i] = float64(i%7) * 0.01
		estTx[i] = 0.035
	}

	aloha := mac.ALOHA{}
	alohaBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = aloha.DecideTx(0, windows, 1)
		}
	})

	bla, err := mac.NewBLA(mac.BLAConfig{
		Theta:           0.5,
		WeightB:         1,
		Beta:            0.3,
		Forecaster:      constantForecaster{perWindow: 0.02},
		Window:          simtime.Minute,
		MaxWindows:      60,
		SingleTxEnergyJ: 0.035,
		MaxAttempts:     8,
	})
	if err != nil {
		return nil, err
	}
	bla.OnDegradationUpdate(0, 0.7)
	blaBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = bla.DecideTx(0, windows, 1)
		}
	})

	// Raw Algorithm 1 (selector only), the paper's O(|T| log |T|) core.
	sel, err := core.NewSelector(utility.Linear{}, 1)
	if err != nil {
		return nil, err
	}
	in := core.Inputs{
		StoredEnergy:          1,
		NormalizedDegradation: 0.7,
		ForecastGen:           forecast,
		EstTxEnergy:           estTx,
		MaxTxEnergy:           0.28,
	}
	selBench := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sel.Select(in); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Protocol state: history counters + estimator + selector scratch.
	blaState := int(unsafe.Sizeof(mac.BLA{})) +
		60*(9*4+4) + // retx history: counts[60][8+1] uint32 + selected
		3*windows*8 // selector scratch buffers
	forecasterState := 2 * 1440 * 8 // DiurnalEWMA profile + seen

	t := &Table{
		ID:      "tableI",
		Title:   "System overhead: per-decision cost and protocol state",
		Columns: []string{"metric", "LoRaWAN", "H-50", "overhead"},
	}
	t.AddRow("decision CPU (ns/op)",
		fmt.Sprintf("%d", alohaBench.NsPerOp()),
		fmt.Sprintf("%d", blaBench.NsPerOp()),
		fmt.Sprintf("+%d ns", blaBench.NsPerOp()-alohaBench.NsPerOp()))
	t.AddRow("decision allocs (/op)",
		fmt.Sprintf("%d", alohaBench.AllocsPerOp()),
		fmt.Sprintf("%d", blaBench.AllocsPerOp()),
		fmt.Sprintf("%+d", blaBench.AllocsPerOp()-alohaBench.AllocsPerOp()))
	t.AddRow("decision memory (B/op)",
		fmt.Sprintf("%d", alohaBench.AllocedBytesPerOp()),
		fmt.Sprintf("%d", blaBench.AllocedBytesPerOp()),
		fmt.Sprintf("%+d B", blaBench.AllocedBytesPerOp()-alohaBench.AllocedBytesPerOp()))
	t.AddRow("protocol state (B)", "0",
		fmt.Sprintf("%d", blaState),
		fmt.Sprintf("+%d B", blaState))
	t.AddRow("forecaster state (B)", "0",
		fmt.Sprintf("%d", forecasterState),
		fmt.Sprintf("+%d B", forecasterState))
	t.AddRow("Algorithm 1 alone (ns/op)", "-",
		fmt.Sprintf("%d", selBench.NsPerOp()), "-")
	t.AddNote("paper Table I measures psutil CPU/memory on a Raspberry Pi; this regeneration reports the decision path itself (see DESIGN.md)")
	t.AddNote("one decision per sampling period (>=16 min): CPU duty cycle is negligible on any MCU-class device")
	return t, nil
}

// constantForecaster is a minimal allocation-free forecaster for the
// overhead benchmark.
type constantForecaster struct {
	perWindow float64
}

func (c constantForecaster) ForecastWindows(_ simtime.Time, _ simtime.Duration, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = c.perWindow
	}
	return out
}

func (c constantForecaster) Observe(simtime.Time, simtime.Time, float64) {}
