package experiment

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// GapProblem builds the small clairvoyant instance used to measure the
// on-sensor heuristic's optimality gap: three nodes, twelve slots,
// four-slot periods, one reception per slot (omega = 1), and phase-
// shifted generation so that greedily chasing green energy collides.
func GapProblem() optimal.Problem {
	mkGen := func(phase int) []float64 {
		gen := make([]float64, 12)
		for t := range gen {
			// Two generation slots per period, shifted per node.
			if (t+phase)%4 >= 2 {
				gen[t] = 0.05
			}
		}
		return gen
	}
	node := func(phase int) optimal.NodeSpec {
		return optimal.NodeSpec{
			PeriodSlots:  4,
			TxEnergyJ:    0.04,
			SleepEnergyJ: 0.0005,
			GenJ:         mkGen(phase),
			CapacityJ:    0.5,
			InitialJ:     0.25,
		}
	}
	return optimal.Problem{
		Slots:         12,
		Omega:         1,
		SlotLen:       simtime.Minute,
		Model:         battery.DefaultModel(),
		TempC:         25,
		UtilityWeight: 1e-4,
		Nodes:         []optimal.NodeSpec{node(0), node(1), node(2)},
	}
}

// onSensorSchedule runs Algorithm 1 independently per node on the
// clairvoyant instance (perfect per-slot forecasts, w_u = 1, no global
// collision knowledge), producing the schedule the distributed heuristic
// would emit on its first pass.
func onSensorSchedule(p optimal.Problem) (optimal.Schedule, error) {
	sel, err := core.NewSelector(utility.Linear{}, 1)
	if err != nil {
		return optimal.Schedule{}, err
	}
	s := optimal.Schedule{TxSlot: make([][]int, len(p.Nodes))}
	for i, n := range p.Nodes {
		psi := n.InitialJ
		for k := 0; k < p.Packets(i); k++ {
			tau := n.PeriodSlots
			gen := n.GenJ[k*tau : (k+1)*tau]
			est := make([]float64, tau)
			for t := range est {
				est[t] = n.TxEnergyJ
			}
			d, err := sel.Select(core.Inputs{
				StoredEnergy:          psi,
				NormalizedDegradation: 1,
				ForecastGen:           gen,
				EstTxEnergy:           est,
				MaxTxEnergy:           n.TxEnergyJ,
			})
			if err != nil {
				return optimal.Schedule{}, err
			}
			slot := k * tau // FAIL falls back to the first slot for evaluation
			if d.OK {
				slot = k*tau + d.Window
			}
			s.TxSlot[i] = append(s.TxSlot[i], slot)
			// Advance the battery through the period.
			for t := k * tau; t < (k+1)*tau && t < p.Slots; t++ {
				draw := n.SleepEnergyJ
				if t == slot {
					draw = n.TxEnergyJ
				}
				psi = min(max(0, psi+n.GenJ[t]-draw), n.CapacityJ)
			}
		}
	}
	return s, nil
}

// OptimalGap compares the clairvoyant exhaustive optimum (Eq. 8-12), the
// clairvoyant greedy scheduler, and the distributed on-sensor heuristic
// on the small instance, reporting objectives and feasibility. This is
// the quantitative version of the paper's Sec. III-A argument that the
// local heuristic is a reasonable stand-in for the impractical
// centralized formulation.
func OptimalGap(o Options) (*Table, error) {
	o = o.parallel()
	// The three solvers are independent (each works on its own copy of
	// the instance), so they fan out across the pool; the exhaustive
	// search dominates the wall clock.
	evals, err := mapRuns(o, 3, func(i int) (optimal.Evaluation, error) {
		p := GapProblem()
		switch i {
		case 0:
			_, e, err := optimal.SolveExhaustive(p)
			if err != nil {
				return optimal.Evaluation{}, fmt.Errorf("experiment: exhaustive: %w", err)
			}
			return e, nil
		case 1:
			_, e, err := optimal.SolveGreedy(p)
			if err != nil {
				return optimal.Evaluation{}, fmt.Errorf("experiment: greedy: %w", err)
			}
			return e, nil
		default:
			hs, err := onSensorSchedule(p)
			if err != nil {
				return optimal.Evaluation{}, fmt.Errorf("experiment: on-sensor: %w", err)
			}
			return p.Evaluate(hs), nil
		}
	})
	if err != nil {
		return nil, err
	}
	exh, greedy, heur := evals[0], evals[1], evals[2]

	t := &Table{
		ID:      "optgap",
		Title:   "Clairvoyant optimum vs on-sensor heuristic (3 nodes, 12 TDMA slots)",
		Columns: []string{"solver", "max degradation", "max disutility", "feasible (omega)", "objective"},
	}
	add := func(name string, e optimal.Evaluation) {
		t.AddRow(name,
			fmt.Sprintf("%.3e", e.MaxDegradation),
			fmt.Sprintf("%.3f", e.MaxDisutility),
			fmt.Sprintf("%v", e.Feasible),
			fmt.Sprintf("%.6g", e.Objective),
		)
	}
	add("exhaustive optimal (Eq. 8-12)", exh)
	add("clairvoyant greedy", greedy)
	add("on-sensor Algorithm 1 (first pass)", heur)
	t.AddNote("the on-sensor pass has no collision knowledge; over time Eq. 14 learning provides it (see abl-retxhist)")
	if exh.MaxDegradation > 0 {
		t.AddNote("heuristic degradation gap vs optimal: %+.1f%%",
			100*(heur.MaxDegradation/exh.MaxDegradation-1))
	}
	return t, nil
}
