package experiment

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Fig3 regenerates the paper's Fig. 3 "degradation influence": how a
// node's normalized degradation w_u shifts its forecast-window choices.
// The paper plots two probe nodes over two sampling periods; a
// single-pair probe is noisy at network scale, so this regeneration
// aggregates the same contrast over the most- and least-degraded
// quartiles of the network, split into energy-rich daylight hours
// (harvest covers the transmission: little reason to defer) and night
// hours (every window drains the battery). Paper scale: 100 nodes, the
// final two weeks of a 90-day run.
func Fig3(o Options) (*Table, error) {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(100)
	cfg.Duration = o.duration(90 * simtime.Day)
	cfg.Protocol = config.ProtocolBLA
	cfg.Theta = 0.5

	type acc struct {
		daySum, dayN     float64
		nightSum, nightN float64
	}
	decisions := make([]acc, cfg.Nodes)
	observeFrom := simtime.Time(cfg.Duration - 14*simtime.Day)
	if observeFrom < 0 {
		observeFrom = 0
	}
	hooks := sim.Hooks{OnDecision: func(nodeID int, genAt simtime.Time, _ int, window int, drop bool) {
		if drop || genAt < observeFrom {
			return
		}
		a := &decisions[nodeID]
		switch h := genAt.TimeOfDay() / simtime.Hour; {
		case h >= 10 && h < 15: // solid daylight
			a.daySum += float64(window)
			a.dayN++
		case h >= 22 || h < 4: // night
			a.nightSum += float64(window)
			a.nightN++
		}
	}}

	o.logf("fig3: H-50 %d nodes, %v", cfg.Nodes, cfg.Duration)
	s, err := sim.New(cfg, hooks)
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}

	// Rank nodes by final ground-truth degradation.
	order := make([]int, len(res.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return res.Nodes[order[a]].Degradation.Total < res.Nodes[order[b]].Degradation.Total
	})
	quartile := max(1, len(order)/4)

	aggregate := func(ids []int) (day, night string) {
		var d, dn, n, nn float64
		for _, id := range ids {
			d += decisions[id].daySum
			dn += decisions[id].dayN
			n += decisions[id].nightSum
			nn += decisions[id].nightN
		}
		fmtAvg := func(sum, cnt float64) string {
			if cnt == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2f", sum/cnt)
		}
		return fmtAvg(d, dn), fmtAvg(n, nn)
	}

	t := &Table{
		ID:      "fig3",
		Title:   "Degradation influence on forecast window selection (final 2 weeks)",
		Columns: []string{"node group", "avg window (energy-rich hours)", "avg window (night)"},
	}
	loDay, loNight := aggregate(order[:quartile])
	hiDay, hiNight := aggregate(order[len(order)-quartile:])
	t.AddRow("least degraded quartile", loDay, loNight)
	t.AddRow("most degraded quartile", hiDay, hiNight)
	t.AddNote("paper Fig. 3: with abundant energy both groups pick an early window; when harvest cannot cover the TX, degraded nodes defer")
	t.AddNote("w_u compresses toward 1 as shared calendar aging dominates, so group contrasts shrink over a deployment's life")
	return t, nil
}
