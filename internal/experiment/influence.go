package experiment

import (
	"fmt"
	"sort"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Fig3 regenerates the paper's Fig. 3 "degradation influence": how a
// node's normalized degradation w_u shifts its forecast-window choices.
// The paper plots two probe nodes over two sampling periods; a
// single-pair probe is noisy at network scale, so this regeneration
// aggregates the same contrast over the most- and least-degraded
// quartiles of the network, split into energy-rich daylight hours
// (harvest covers the transmission: little reason to defer) and night
// hours (every window drains the battery). Paper scale: 100 nodes, the
// final two weeks of a 90-day run.
func Fig3(o Options) (*Table, error) {
	o = o.parallel()
	reps := o.replicates()

	// One replicate's pooled window sums per degradation quartile.
	type groupSums struct {
		loDay, loDayN, loNight, loNightN float64
		hiDay, hiDayN, hiNight, hiNightN float64
	}
	runs, err := mapRuns(o, reps, func(rep int) (groupSums, error) {
		cfg := config.Default().WithSeed(o.seed())
		cfg.Nodes = o.nodes(100)
		cfg.Duration = o.duration(90 * simtime.Day)
		cfg.Protocol = config.ProtocolBLA
		cfg.Theta = 0.5
		cfg.Seed = runner.DeriveSeed(cfg.Seed, "fig3", rep)

		type acc struct {
			daySum, dayN     float64
			nightSum, nightN float64
		}
		decisions := make([]acc, cfg.Nodes)
		observeFrom := simtime.Time(cfg.Duration - 14*simtime.Day)
		if observeFrom < 0 {
			observeFrom = 0
		}
		hooks := sim.Hooks{OnDecision: func(nodeID int, genAt simtime.Time, _ int, window int, drop bool) {
			if drop || genAt < observeFrom {
				return
			}
			a := &decisions[nodeID]
			switch h := genAt.TimeOfDay() / simtime.Hour; {
			case h >= 10 && h < 15: // solid daylight
				a.daySum += float64(window)
				a.dayN++
			case h >= 22 || h < 4: // night
				a.nightSum += float64(window)
				a.nightN++
			}
		}}

		o.logf("fig3: H-50 %d nodes, %v", cfg.Nodes, cfg.Duration)
		res, err := simulate(o, cfg, hooks)
		if err != nil {
			return groupSums{}, err
		}

		// Rank nodes by final ground-truth degradation.
		order := make([]int, len(res.Nodes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return res.Nodes[order[a]].Degradation.Total < res.Nodes[order[b]].Degradation.Total
		})
		quartile := max(1, len(order)/4)

		var g groupSums
		for _, id := range order[:quartile] {
			g.loDay += decisions[id].daySum
			g.loDayN += decisions[id].dayN
			g.loNight += decisions[id].nightSum
			g.loNightN += decisions[id].nightN
		}
		for _, id := range order[len(order)-quartile:] {
			g.hiDay += decisions[id].daySum
			g.hiDayN += decisions[id].dayN
			g.hiNight += decisions[id].nightSum
			g.hiNightN += decisions[id].nightN
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}

	// Pool the raw sums across replicates before forming averages: every
	// decision counts once, whichever replicate produced it.
	var g groupSums
	for _, r := range runs {
		g.loDay += r.loDay
		g.loDayN += r.loDayN
		g.loNight += r.loNight
		g.loNightN += r.loNightN
		g.hiDay += r.hiDay
		g.hiDayN += r.hiDayN
		g.hiNight += r.hiNight
		g.hiNightN += r.hiNightN
	}

	fmtAvg := func(sum, cnt float64) string {
		if cnt == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2f", sum/cnt)
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Degradation influence on forecast window selection (final 2 weeks)",
		Columns: []string{"node group", "avg window (energy-rich hours)", "avg window (night)"},
	}
	t.AddRow("least degraded quartile", fmtAvg(g.loDay, g.loDayN), fmtAvg(g.loNight, g.loNightN))
	t.AddRow("most degraded quartile", fmtAvg(g.hiDay, g.hiDayN), fmtAvg(g.hiNight, g.hiNightN))
	t.AddNote("paper Fig. 3: with abundant energy both groups pick an early window; when harvest cannot cover the TX, degraded nodes defer")
	t.AddNote("w_u compresses toward 1 as shared calendar aging dominates, so group contrasts shrink over a deployment's life")
	noteReplicates(t, o)
	return t, nil
}
