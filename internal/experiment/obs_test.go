package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// updateGolden regenerates testdata goldens: go test -run NoDrift -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestObsDisabledNoDrift pins the observer-off behaviour of the
// simulation pipeline: with no recorder attached, the rendered tables of
// the deterministic simulator experiments must stay byte-identical to
// the committed pre-change baseline. Any drift here means a "zero
// overhead when disabled" promise was broken by a behavioural change.
func TestObsDisabledNoDrift(t *testing.T) {
	cases := []struct {
		name string
		run  Runner
	}{
		{name: "sweep", run: ThetaSweep},
		{name: "faults", run: wrap(FaultsSweep)},
		{name: "fig2", run: wrap(Fig2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tables, err := tc.run(tiny())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tbl := range tables {
				if err := tbl.Fprint(&buf); err != nil {
					t.Fatal(err)
				}
			}
			golden := filepath.Join("testdata", "nodrift_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s tables drifted from the obs-off baseline:\n--- want ---\n%s\n--- got ---\n%s",
					tc.name, want, buf.Bytes())
			}
		})
	}
}

// readObsDir loads every exported observability file under dir, keyed by
// file name.
func readObsDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestObsExportDeterministic is the observability determinism contract:
// the exported files of an experiment run must be byte-identical across
// repeated runs and across worker counts. The faults sweep exercises
// every recording surface — medium and netserver counters, fault events,
// stale-w_u fallbacks, and timeline sampling.
func TestObsExportDeterministic(t *testing.T) {
	runOnce := func(workers int) map[string][]byte {
		dir := t.TempDir()
		o := tiny()
		o.Workers = workers
		o.ObsDir = dir
		if _, err := FaultsSweep(o); err != nil {
			t.Fatal(err)
		}
		files := readObsDir(t, dir)
		if len(files) == 0 {
			t.Fatal("faults sweep exported no observability files")
		}
		return files
	}

	base := runOnce(1)
	for name, files := range map[string]map[string][]byte{
		"repeat/j1": runOnce(1),
		"j8":        runOnce(8),
	} {
		if len(files) != len(base) {
			t.Errorf("%s exported %d files, baseline %d", name, len(files), len(base))
		}
		for f, want := range base {
			got, ok := files[f]
			if !ok {
				t.Errorf("%s: missing export %s", name, f)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: export %s differs from the workers=1 baseline", name, f)
			}
		}
	}

	// The per-run manifests must carry provenance but never the worker
	// count (that lives in the CLI's per-invocation manifest.json).
	names := make([]string, 0, len(base))
	for f := range base {
		names = append(names, f)
	}
	sort.Strings(names)
	var sawJSONL bool
	for _, f := range names {
		if !strings.HasSuffix(f, ".jsonl") {
			continue
		}
		sawJSONL = true
		first, _, _ := strings.Cut(string(base[f]), "\n")
		for _, want := range []string{`"t":"manifest"`, `"config_hash"`, `"seed"`} {
			if !strings.Contains(first, want) {
				t.Errorf("%s manifest line missing %s: %s", f, want, first)
			}
		}
		if strings.Contains(first, "workers") {
			t.Errorf("%s manifest line must not embed the worker count: %s", f, first)
		}
	}
	if !sawJSONL {
		t.Error("no JSONL exports found")
	}
}
