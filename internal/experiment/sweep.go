package experiment

import (
	"fmt"
	"strconv"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// variant is one protocol configuration of the theta sweep.
type variant struct {
	label    string
	protocol config.ProtocolKind
	theta    float64
}

// sweepVariants are the paper's Fig. 4-6 protocols.
func sweepVariants() []variant {
	return []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-5", protocol: config.ProtocolBLA, theta: 0.05},
		{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
		{label: "H-100", protocol: config.ProtocolBLA, theta: 1},
	}
}

// runSummary aggregates one run's per-node metrics.
type runSummary struct {
	label      string
	prr        []float64
	attempts   []float64
	utility    []float64
	latencyS   []float64 // delivered-only, seconds
	latPenS    []float64 // failure-penalized, seconds
	degs       []float64
	cycles     []float64 // cycle-aging component of degradation
	txEnergyJ  float64
	majorityWn []int
	neverSent  int64
	generated  int64
	brownouts  int64
	staleWu    int64
	elapsedD   float64 // simulated days (averaged over replicates)
}

func summarize(res *sim.Result) *runSummary {
	s := &runSummary{label: res.Label, elapsedD: res.Elapsed.Days()}
	// One slab backs the seven per-node metric slices: every slice gets
	// exactly one value per node, so carving them at full capacity up
	// front replaces seven append-growth chains per replicate with one
	// allocation (each segment's capacity is pinned, so appends can
	// never bleed into a neighbour).
	n := len(res.Nodes)
	slab := make([]float64, 7*n)
	s.prr = slab[0*n : 0*n : 1*n]
	s.attempts = slab[1*n : 1*n : 2*n]
	s.utility = slab[2*n : 2*n : 3*n]
	s.latencyS = slab[3*n : 3*n : 4*n]
	s.latPenS = slab[4*n : 4*n : 5*n]
	s.degs = slab[5*n : 5*n : 6*n]
	s.cycles = slab[6*n : 6*n : 7*n]
	s.majorityWn = make([]int, 0, n)
	for _, n := range res.Nodes {
		s.prr = append(s.prr, n.Stats.PRR())
		s.attempts = append(s.attempts, n.Stats.AvgAttempts())
		s.utility = append(s.utility, n.Stats.AvgUtility())
		s.latencyS = append(s.latencyS, n.Stats.AvgLatencyDelivered().Seconds())
		s.latPenS = append(s.latPenS, n.Stats.AvgLatencyPenalized().Seconds())
		s.degs = append(s.degs, n.Degradation.Total)
		s.cycles = append(s.cycles, n.Degradation.Cycle)
		s.txEnergyJ += n.Stats.TxEnergyJ
		s.neverSent += n.Stats.NeverSent
		s.generated += n.Stats.Generated
		s.brownouts += n.Stats.Brownouts
		s.staleWu += n.Stats.StaleWuDecisions
		if m, ok := n.Stats.WindowHist.Mode(); ok {
			s.majorityWn = append(s.majorityWn, m)
		}
	}
	return s
}

// sweepScenario builds the Fig. 4-6 scenario for one variant.
func sweepScenario(o Options, v variant) config.Scenario {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(500)
	cfg.Duration = o.duration(5 * simtime.Year)
	cfg.Protocol = v.protocol
	cfg.Theta = v.theta
	return cfg
}

// runSweep executes the four-variant theta sweep once and caches nothing:
// Fig. 4, 5 and 6 are produced from the same runs, as in the paper. The
// variants fan out across the worker pool; every variant keeps the same
// scenario seed so the comparison runs on identical deployments.
func runSweep(o Options) ([]*runSummary, error) {
	vs := sweepVariants()
	labels := make([]string, len(vs))
	cfgs := make([]config.Scenario, len(vs))
	for i, v := range vs {
		labels[i] = v.label
		cfgs[i] = sweepScenario(o, v)
	}
	return runScenarios(o, "sweep", labels, cfgs)
}

// ThetaSweep regenerates Fig. 4 (forecast-window selection histogram),
// Fig. 5 (TX attempts, TX energy, degradation) and Fig. 6 (utility, PRR,
// latency) from one four-variant run set. Paper scale: 500 nodes, 5
// years.
func ThetaSweep(o Options) ([]*Table, error) {
	sums, err := runSweep(o)
	if err != nil {
		return nil, err
	}
	tables := []*Table{fig4(sums), fig5(sums), fig6(sums)}
	for _, t := range tables {
		noteReplicates(t, o)
	}
	return tables, nil
}

func fig4(sums []*runSummary) *Table {
	const maxBucket = 7
	t := &Table{
		ID:      "fig4",
		Title:   "Forecast window selection: nodes by majority window",
		Columns: []string{"window"},
	}
	for _, s := range sums {
		t.Columns = append(t.Columns, s.label)
	}
	counts := make([]map[int]int, len(sums))
	for i, s := range sums {
		counts[i] = make(map[int]int)
		for _, w := range s.majorityWn {
			if w > maxBucket {
				w = maxBucket + 1
			}
			counts[i][w]++
		}
	}
	for w := 0; w <= maxBucket+1; w++ {
		label := strconv.Itoa(w + 1) // the paper numbers windows from 1
		if w == maxBucket+1 {
			label = fmt.Sprintf(">%d", maxBucket+1)
		}
		row := []string{label}
		any := false
		for i := range sums {
			c := counts[i][w]
			if c > 0 {
				any = true
			}
			row = append(row, strconv.Itoa(c))
		}
		if any || w <= 3 {
			t.AddRow(row...)
		}
	}
	t.AddNote("each cell: number of nodes transmitting the majority of their packets in that window (paper Fig. 4)")
	return t
}

func fig5(sums []*runSummary) *Table {
	t := &Table{
		ID:      "fig5",
		Title:   "TX attempts, TX energy and battery degradation under theta",
		Columns: []string{"metric"},
	}
	for _, s := range sums {
		t.Columns = append(t.Columns, s.label)
	}
	row := func(name string, f func(*runSummary) string) {
		cells := []string{name}
		for _, s := range sums {
			cells = append(cells, f(s))
		}
		t.AddRow(cells...)
	}
	row("avg TX attempts/packet (5a)", func(s *runSummary) string {
		return fmt.Sprintf("%.2f", metrics.BoxOf(s.attempts).Mean)
	})
	row("total TX energy J (5b)", func(s *runSummary) string {
		return fmt.Sprintf("%.0f", s.txEnergyJ)
	})
	row("degradation mean (5c)", func(s *runSummary) string {
		return fmt.Sprintf("%.5f", metrics.BoxOf(s.degs).Mean)
	})
	row("degradation median (5c)", func(s *runSummary) string {
		return fmt.Sprintf("%.5f", metrics.BoxOf(s.degs).Median)
	})
	row("degradation variance (5c)", func(s *runSummary) string {
		return fmt.Sprintf("%.3g", metrics.BoxOf(s.degs).Variance)
	})
	row("degradation outliers (5c)", func(s *runSummary) string {
		return strconv.Itoa(metrics.BoxOf(s.degs).Outliers)
	})
	return t
}

func fig6(sums []*runSummary) *Table {
	t := &Table{
		ID:      "fig6",
		Title:   "Utility, PRR and latency under theta",
		Columns: []string{"metric"},
	}
	for _, s := range sums {
		t.Columns = append(t.Columns, s.label)
	}
	row := func(name string, f func(*runSummary) string) {
		cells := []string{name}
		for _, s := range sums {
			cells = append(cells, f(s))
		}
		t.AddRow(cells...)
	}
	row("avg utility (6a)", func(s *runSummary) string {
		return fmt.Sprintf("%.3f", metrics.BoxOf(s.utility).Mean)
	})
	row("min node utility (6a)", func(s *runSummary) string {
		return fmt.Sprintf("%.3f", metrics.BoxOf(s.utility).Min)
	})
	row("avg PRR (6b)", func(s *runSummary) string {
		return fmt.Sprintf("%.3f", metrics.BoxOf(s.prr).Mean)
	})
	row("min node PRR (6b)", func(s *runSummary) string {
		return fmt.Sprintf("%.3f", metrics.BoxOf(s.prr).Min)
	})
	row("avg latency s (6c, delivered)", func(s *runSummary) string {
		return fmt.Sprintf("%.1f", metrics.BoxOf(s.latencyS).Mean)
	})
	row("max node latency s (6c)", func(s *runSummary) string {
		return fmt.Sprintf("%.1f", metrics.BoxOf(s.latencyS).Max)
	})
	row("avg latency s (failure-penalized)", func(s *runSummary) string {
		return fmt.Sprintf("%.1f", metrics.BoxOf(s.latPenS).Mean)
	})
	row("packets dropped by Alg.1 (%)", func(s *runSummary) string {
		if s.generated == 0 {
			return "0.0"
		}
		return fmt.Sprintf("%.1f", 100*float64(s.neverSent)/float64(s.generated))
	})
	t.AddNote("Fig. 6c plots delivered-packet latency; the penalized variant (Sec. IV-A2) is also reported")
	return t
}
