package experiment

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/simtime"
)

// render concatenates the text form of a runner's tables.
func render(t *testing.T, run Runner, o Options) string {
	t.Helper()
	tables, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestParallelDeterminism is the contract of the parallel runner: for
// every ported experiment, the same seed must produce byte-identical
// tables whatever the worker count. Each subtest compares two fresh
// runs, serial (Workers=1) vs fan-out (Workers=8).
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		run  Runner
		opts func() Options
	}{
		{name: "sweep", run: ThetaSweep, opts: tiny},
		{name: "fig2", run: wrap(Fig2), opts: tiny},
		{name: "fig3", run: wrap(Fig3), opts: func() Options {
			o := tiny()
			o.Duration = 9 * simtime.Day
			return o
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := tc.opts()
			serial.Workers = 1
			parallel := tc.opts()
			parallel.Workers = 8
			got := render(t, tc.run, parallel)
			want := render(t, tc.run, serial)
			if got != want {
				t.Errorf("parallel output differs from serial:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", want, got)
			}
		})
	}
}

// TestReplicatesDeterministic: replicated fan-out must also be
// order-independent, and replicate 0 keeps the base seed so a
// replicated sweep still includes the default run's deployments.
func TestReplicatesDeterministic(t *testing.T) {
	mk := func(workers int) Options {
		o := tiny()
		o.Workers = workers
		o.Replicates = 3
		return o
	}
	want := render(t, ThetaSweep, mk(1))
	got := render(t, ThetaSweep, mk(8))
	if got != want {
		t.Errorf("replicated parallel output differs from serial:\n%s\nvs\n%s", want, got)
	}
	if !strings.Contains(want, "pooled over 3 replicates") {
		t.Errorf("replicated table missing pooling note:\n%s", want)
	}
}

// countingWriter counts writes; the race detector checks that the
// syncWriter wrapper serializes concurrent logf calls.
type countingWriter struct {
	mu sync.Mutex
	n  int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return len(p), nil
}

func TestParallelLogging(t *testing.T) {
	w := &countingWriter{}
	o := tiny()
	o.Workers = 8
	o.Log = w
	if _, err := ThetaSweep(o); err != nil {
		t.Fatal(err)
	}
	if w.n == 0 {
		t.Error("no progress lines reached the log writer")
	}
}

func TestSyncWriterWrapsOnce(t *testing.T) {
	o := Options{Log: io.Discard}
	p := o.parallel()
	sw, ok := p.Log.(*syncWriter)
	if !ok {
		t.Fatal("parallel() did not wrap the log writer")
	}
	if again := p.parallel(); again.Log != sw {
		t.Error("parallel() re-wrapped an already-synchronized writer")
	}
	if (Options{}).parallel().Log != nil {
		t.Error("parallel() invented a writer for a nil Log")
	}
}
