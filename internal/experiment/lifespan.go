package experiment

import (
	"fmt"
	"sort"

	"repro/internal/battery"
	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Fig2 regenerates the paper's Fig. 2: degradation of a regular LoRa
// (pure ALOHA) node over 5 years in a 100-node network, decomposed into
// calendar aging, cycle aging, and total capacity fade. The reported
// node is the network median by final degradation. Paper scale: 100
// nodes, 5 years.
func Fig2(o Options) (*Table, error) {
	o = o.parallel()
	reps := o.replicates()

	type sample struct {
		months int
		b      battery.Breakdown
	}
	type fig2run struct {
		series     []sample
		final      battery.Breakdown
		elapsedYrs float64
	}
	runs, err := mapRuns(o, reps, func(rep int) (fig2run, error) {
		cfg := config.Default().WithSeed(o.seed())
		cfg.Nodes = o.nodes(100)
		cfg.Duration = o.duration(5 * simtime.Year)
		cfg.Protocol = config.ProtocolLoRaWAN
		applyAging(&cfg, o.aging())
		cfg.Seed = runner.DeriveSeed(cfg.Seed, "fig2", rep)

		var r fig2run
		var months int
		hooks := sim.Hooks{OnMonth: func(now simtime.Time, nodes []*sim.Node) {
			months++
			if months%6 != 0 { // sample twice per year
				return
			}
			r.series = append(r.series, sample{months: months, b: medianBreakdown(now, nodes)})
		}}

		o.logf("fig2: LoRaWAN %d nodes, %v", cfg.Nodes, cfg.Duration)
		res, err := simulate(o, cfg, hooks)
		if err != nil {
			return fig2run{}, err
		}

		// Final point from the run result: the network-median node.
		degs := make([]float64, 0, len(res.Nodes))
		for _, n := range res.Nodes {
			degs = append(degs, n.Degradation.Total)
		}
		sort.Float64s(degs)
		target := degs[len(degs)/2]
		for _, n := range res.Nodes {
			if n.Degradation.Total == target {
				r.final = n.Degradation
				break
			}
		}
		r.elapsedYrs = res.Elapsed.Days() / 365 * o.aging()
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	// Pool replicates: the duration is fixed, so every replicate samples
	// the same months and breakdowns average element-wise. A single
	// replicate passes through unchanged.
	avg := runs[0]
	if reps > 1 {
		for _, r := range runs[1:] {
			for i := range avg.series {
				avg.series[i].b.Calendar += r.series[i].b.Calendar
				avg.series[i].b.Cycle += r.series[i].b.Cycle
				avg.series[i].b.Total += r.series[i].b.Total
			}
			avg.final.Calendar += r.final.Calendar
			avg.final.Cycle += r.final.Cycle
			avg.final.Total += r.final.Total
			avg.elapsedYrs += r.elapsedYrs
		}
		inv := 1 / float64(reps)
		for i := range avg.series {
			avg.series[i].b.Calendar *= inv
			avg.series[i].b.Cycle *= inv
			avg.series[i].b.Total *= inv
		}
		avg.final.Calendar *= inv
		avg.final.Cycle *= inv
		avg.final.Total *= inv
		avg.elapsedYrs *= inv
	}

	t := &Table{
		ID:      "fig2",
		Title:   "Battery degradation of a regular LoRa node (median of network)",
		Columns: []string{"years", "calendar D_cal", "cycle D_cyc", "total D"},
	}
	for _, sm := range avg.series {
		t.AddRow(
			fmt.Sprintf("%.1f", float64(sm.months)*30/365*o.aging()),
			fmt.Sprintf("%.5f", sm.b.Calendar),
			fmt.Sprintf("%.6f", sm.b.Cycle),
			fmt.Sprintf("%.5f", sm.b.Total),
		)
	}
	t.AddRow(
		fmt.Sprintf("%.1f", avg.elapsedYrs),
		fmt.Sprintf("%.5f", avg.final.Calendar),
		fmt.Sprintf("%.6f", avg.final.Cycle),
		fmt.Sprintf("%.5f", avg.final.Total),
	)
	t.AddNote("paper claim: calendar aging dominates cycle aging for LoRa duty cycles")
	noteAging(t, o)
	noteReplicates(t, o)
	return t, nil
}

func medianBreakdown(now simtime.Time, nodes []*sim.Node) battery.Breakdown {
	type nd struct {
		total float64
		b     battery.Breakdown
	}
	all := make([]nd, 0, len(nodes))
	for _, n := range nodes {
		b := n.Batt.Damage(now)
		all = append(all, nd{total: b.Total, b: b})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].total < all[j].total })
	return all[len(all)/2].b
}

// lifespanVariants are the Fig. 7/8 protocols: the baseline, the full
// proposal, and the paper's H-50C ablation (theta cap without window
// selection).
func lifespanVariants() []variant {
	return []variant{
		{label: "LoRaWAN", protocol: config.ProtocolLoRaWAN, theta: 1},
		{label: "H-50", protocol: config.ProtocolBLA, theta: 0.5},
		{label: "H-50C", protocol: config.ProtocolThetaOnly, theta: 0.5},
	}
}

// lifespanRun is one run-to-EoL outcome.
type lifespanRun struct {
	label        string
	monthlyMax   []float64
	lifespanDays float64
}

func runLifespans(o Options) ([]lifespanRun, error) {
	o = o.parallel()
	vs := lifespanVariants()
	reps := o.replicates()
	runs, err := mapRuns(o, len(vs)*reps, func(i int) (lifespanRun, error) {
		v := vs[i/reps]
		rep := i % reps
		cfg := config.Default().WithSeed(o.seed())
		cfg.Nodes = o.nodes(100)
		cfg.Protocol = v.protocol
		cfg.Theta = v.theta
		cfg.RunToEoL = true
		cfg.MaxDuration = 30 * simtime.Year
		applyAging(&cfg, o.aging())
		cfg.Seed = runner.DeriveSeed(cfg.Seed, "lifespan", rep)
		o.logf("lifespan: running %s to EoL (%d nodes, aging x%g)", v.label, cfg.Nodes, o.aging())
		res, err := simulate(o, cfg, sim.Hooks{})
		if err != nil {
			return lifespanRun{}, fmt.Errorf("experiment: %s: %w", v.label, err)
		}
		days := res.LifespanDays
		if days == 0 {
			days = res.Elapsed.Days() // EoL not reached within the cap
		}
		return lifespanRun{
			label:        v.label,
			monthlyMax:   res.MonthlyMaxDeg,
			lifespanDays: days * o.aging(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Pool replicates per variant: lifespans average; the monthly-max
	// series averages element-wise over the months every replicate
	// reached (run-to-EoL lengths differ across seeds).
	out := make([]lifespanRun, len(vs))
	for vi := range vs {
		group := runs[vi*reps : (vi+1)*reps]
		merged := group[0]
		if reps > 1 {
			minLen := len(group[0].monthlyMax)
			for _, r := range group[1:] {
				minLen = min(minLen, len(r.monthlyMax))
			}
			merged.monthlyMax = append([]float64(nil), group[0].monthlyMax[:minLen]...)
			for _, r := range group[1:] {
				merged.lifespanDays += r.lifespanDays
				for m := 0; m < minLen; m++ {
					merged.monthlyMax[m] += r.monthlyMax[m]
				}
			}
			merged.lifespanDays /= float64(reps)
			for m := range merged.monthlyMax {
				merged.monthlyMax[m] /= float64(reps)
			}
		}
		out[vi] = merged
	}
	return out, nil
}

// Lifespan regenerates Fig. 7 (max network degradation per month until
// the first battery reaches EoL) and Fig. 8 (network battery lifespan)
// from one run set. Paper scale: 100 nodes, real aging (runs for up to
// ~14 simulated years).
func Lifespan(o Options) ([]*Table, error) {
	runs, err := runLifespans(o)
	if err != nil {
		return nil, err
	}

	fig7 := &Table{
		ID:      "fig7",
		Title:   "Max degradation (%) of the nodes per month",
		Columns: []string{"month"},
	}
	maxLen := 0
	for _, r := range runs {
		fig7.Columns = append(fig7.Columns, r.label)
		if len(r.monthlyMax) > maxLen {
			maxLen = len(r.monthlyMax)
		}
	}
	step := max(1, maxLen/24) // at most ~24 printed rows
	for m := 0; m < maxLen; m += step {
		row := []string{fmt.Sprintf("%d", int(float64(m+1)*o.aging()))}
		for _, r := range runs {
			if m < len(r.monthlyMax) {
				row = append(row, fmt.Sprintf("%.2f", 100*r.monthlyMax[m]))
			} else {
				row = append(row, "EoL")
			}
		}
		fig7.AddRow(row...)
	}
	noteAging(fig7, o)

	fig8 := &Table{
		ID:      "fig8",
		Title:   "Network battery lifespan",
		Columns: []string{"protocol", "lifespan days", "lifespan years", "vs LoRaWAN"},
	}
	base := runs[0].lifespanDays
	for _, r := range runs {
		fig8.AddRow(
			r.label,
			fmt.Sprintf("%.0f", r.lifespanDays),
			fmt.Sprintf("%.2f", r.lifespanDays/365),
			fmt.Sprintf("%+.1f%%", 100*(r.lifespanDays/base-1)),
		)
	}
	fig8.AddNote("paper: LoRaWAN 2980 days (8.1 y); H-50 13.86 y (+69.7%%)")
	noteAging(fig8, o)
	noteReplicates(fig7, o)
	noteReplicates(fig8, o)
	return []*Table{fig7, fig8}, nil
}

// applyAging accelerates the degradation model by the given factor:
// calendar and cycle stress scale together, so end-of-life arrives
// factor-times sooner with an otherwise identical trajectory shape.
func applyAging(cfg *config.Scenario, factor float64) {
	if factor <= 1 {
		return
	}
	cfg.BatteryModel.K1 *= factor
	cfg.BatteryModel.K6 *= factor
}

func noteAging(t *Table, o Options) {
	if o.aging() > 1 {
		t.AddNote("aging accelerated x%g; reported times are de-scaled back to real aging", o.aging())
	}
}
