// Package experiment regenerates every table and figure of the paper's
// evaluation (Sec. IV): one runner per figure, each emitting the same
// rows/series the paper plots, plus the ablations called out in
// DESIGN.md. Runners accept scaled-down parameters so the full set can
// double as benchmark workloads; paper-scale defaults apply when fields
// are zero.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/simtime"
)

// Options scales and seeds an experiment run.
type Options struct {
	// Seed drives the scenario; 0 means 1.
	Seed uint64
	// Nodes overrides the experiment's paper-default network size.
	Nodes int
	// Duration overrides the experiment's paper-default simulated time.
	Duration simtime.Duration
	// AgingFactor >= 1 accelerates calendar aging for run-to-EoL
	// experiments (Fig. 7/8) so scaled runs finish quickly; reported
	// lifespans are de-scaled and the table notes the factor. 0 or 1
	// means real aging.
	AgingFactor float64
	// Workers caps the worker pool that fans out independent simulation
	// runs; 0 (or negative) uses every CPU, 1 forces serial execution.
	// Output tables are byte-identical at any worker count.
	Workers int
	// Shards selects the spatially sharded engine for every simulation
	// run: 0 (auto) picks min(gateways, workers) lanes, 1 forces the
	// single-heap engine, higher values are clamped to the gateway
	// count. Like Workers, this is an execution knob only — tables and
	// obs exports are byte-identical at any shard count.
	Shards int
	// Replicates repeats every scenario with deterministically derived
	// seeds and pools the results. 0 or 1 means a single run; replicate
	// 0 always keeps the base seed, so the default output matches a
	// pre-replication run exactly.
	Replicates int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// ObsDir, when non-empty, enables per-run observability: every
	// simulation run exports its counters, per-node timelines, and run
	// manifest under this directory (see internal/obs). The exported
	// files are byte-identical across repeated runs and worker counts.
	ObsDir string
	// ObsSampleEvery is the timeline sampling period; 0 uses
	// obs.DefaultSampleEvery.
	ObsSampleEvery simtime.Duration
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return 0 // auto: sim resolves min(gateways, workers)
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) nodes(paperDefault int) int {
	if o.Nodes > 0 {
		return o.Nodes
	}
	return paperDefault
}

func (o Options) duration(paperDefault simtime.Duration) simtime.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return paperDefault
}

func (o Options) aging() float64 {
	if o.AgingFactor > 1 {
		return o.AgingFactor
	}
	return 1
}

func (o Options) replicates() int {
	if o.Replicates > 1 {
		return o.Replicates
	}
	return 1
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Table is one figure's or table's regenerated data.
type Table struct {
	// ID matches the paper artifact ("fig4", "tableI", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold formatted cells, one slice per row.
	Rows [][]string
	// Notes record scaling factors and substitutions that apply to this
	// regeneration.
	Notes []string
}

// AddRow appends a row; extra/missing cells relative to Columns are
// preserved as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends an explanatory note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := printRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
