package experiment

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
)

// This file is the bridge between the experiment runners and the
// internal/runner worker pool. Every registered experiment fans its
// independent simulation runs (one per variant x replicate x scenario)
// out through mapRuns; because each run derives all randomness from its
// scenario seed and results are collected in submission order, the
// rendered tables are byte-identical whatever the worker count.

// syncWriter serializes progress lines written by concurrent workers.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// parallel returns a copy of o whose Log writer is safe for concurrent
// use. Call it once at the top of every fan-out entry point.
func (o Options) parallel() Options {
	if o.Log != nil {
		if _, ok := o.Log.(*syncWriter); !ok {
			o.Log = &syncWriter{w: o.Log}
		}
	}
	return o
}

// mapRuns fans n independent jobs across the experiment's worker pool
// and returns their results in job order. The first error cancels the
// remaining jobs.
func mapRuns[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(context.Background(), runner.Workers(o.Workers), n,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}

// simulate builds and runs one scenario: the unit of fan-out. The
// run inherits the experiment's shard/worker knobs; shard count is an
// execution detail, so results stay byte-identical at any setting.
func simulate(o Options, cfg config.Scenario, hooks sim.Hooks) (*sim.Result, error) {
	s, err := sim.New(cfg, hooks)
	if err != nil {
		return nil, err
	}
	return s.RunOpt(sim.RunOptions{Shards: o.shards(), Workers: o.Workers})
}

// runScenarios executes every scenario Replicates times through the
// worker pool and returns one pooled summary per scenario, in input
// order. All scenarios keep their base seed (common random numbers: a
// protocol comparison runs every treatment on identical deployments);
// only replicates perturb it, via runner.DeriveSeed with the experiment
// name as the stream label. Replicate 0 maps to the base seed, so the
// default single-replicate output is byte-identical to a serial run.
func runScenarios(o Options, name string, labels []string, scenarios []config.Scenario) ([]*runSummary, error) {
	o = o.parallel()
	reps := o.replicates()
	sums, err := mapRuns(o, len(scenarios)*reps, func(i int) (*runSummary, error) {
		si, rep := i/reps, i%reps
		cfg := scenarios[si]
		cfg.Seed = runner.DeriveSeed(cfg.Seed, name, rep)
		if reps > 1 {
			o.logf("%s: running %s (%d nodes, %v, replicate %d/%d)",
				name, labels[si], cfg.Nodes, cfg.Duration, rep+1, reps)
		} else {
			o.logf("%s: running %s (%d nodes, %v)", name, labels[si], cfg.Nodes, cfg.Duration)
		}
		var rec *obs.Recorder
		if o.ObsDir != "" {
			rec = obs.New(obs.Manifest{
				Experiment: name,
				Label:      labels[si],
				Seed:       cfg.Seed,
				ConfigHash: cfg.Fingerprint(),
				Replicate:  rep,
				Nodes:      cfg.Nodes,
			}, o.ObsSampleEvery)
		}
		res, err := simulate(o, cfg, sim.Hooks{Obs: rec})
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", labels[si], err)
		}
		if rec != nil {
			base := fmt.Sprintf("%s_s%02d_r%02d", name, si, rep)
			if err := rec.ExportFiles(o.ObsDir, base); err != nil {
				return nil, fmt.Errorf("experiment: %s: obs export: %w", labels[si], err)
			}
		}
		sum := summarize(res)
		sum.label = labels[si]
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*runSummary, len(scenarios))
	for si := range out {
		out[si] = mergeSummaries(sums[si*reps : (si+1)*reps])
	}
	return out, nil
}

// mergeSummaries pools replicate summaries of one scenario: per-node
// distributions concatenate (box statistics then cover every node of
// every replicate), counters add, and per-run totals average so that a
// replicated table stays comparable to a single run.
func mergeSummaries(parts []*runSummary) *runSummary {
	if len(parts) == 1 {
		return parts[0]
	}
	m := &runSummary{label: parts[0].label}
	// Pre-size the pooled distributions: replicate node counts are known,
	// so the concatenation never regrows.
	var total int
	for _, p := range parts {
		total += len(p.prr)
	}
	m.prr = make([]float64, 0, total)
	m.attempts = make([]float64, 0, total)
	m.utility = make([]float64, 0, total)
	m.latencyS = make([]float64, 0, total)
	m.latPenS = make([]float64, 0, total)
	m.degs = make([]float64, 0, total)
	m.cycles = make([]float64, 0, total)
	m.majorityWn = make([]int, 0, total)
	for _, p := range parts {
		m.prr = append(m.prr, p.prr...)
		m.attempts = append(m.attempts, p.attempts...)
		m.utility = append(m.utility, p.utility...)
		m.latencyS = append(m.latencyS, p.latencyS...)
		m.latPenS = append(m.latPenS, p.latPenS...)
		m.degs = append(m.degs, p.degs...)
		m.cycles = append(m.cycles, p.cycles...)
		m.majorityWn = append(m.majorityWn, p.majorityWn...)
		m.txEnergyJ += p.txEnergyJ
		m.neverSent += p.neverSent
		m.generated += p.generated
		m.brownouts += p.brownouts
		m.staleWu += p.staleWu
		m.elapsedD += p.elapsedD
	}
	m.txEnergyJ /= float64(len(parts))
	m.elapsedD /= float64(len(parts))
	return m
}

// noteReplicates records the replicate count on a pooled table.
func noteReplicates(t *Table, o Options) {
	if o.replicates() > 1 {
		t.AddNote("pooled over %d replicates with derived seeds", o.replicates())
	}
}
