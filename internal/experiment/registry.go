package experiment

// Runner regenerates one or more paper artifacts.
type Runner func(Options) ([]*Table, error)

// Entry describes one registered experiment.
type Entry struct {
	// Name is the CLI identifier ("fig4", "tableI", ...).
	Name string
	// Artifacts lists the paper figures/tables the runner regenerates.
	Artifacts string
	// PaperScale describes the full-scale workload for documentation.
	PaperScale string
	// Run executes the experiment.
	Run Runner
}

// wrap lifts a single-table runner into a Runner.
func wrap(f func(Options) (*Table, error)) Runner {
	return func(o Options) ([]*Table, error) {
		t, err := f(o)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Registry enumerates every experiment in paper order.
func Registry() []Entry {
	return []Entry{
		{
			Name:       "fig2",
			Artifacts:  "Fig. 2",
			PaperScale: "100 LoRaWAN nodes, 5 years",
			Run:        wrap(Fig2),
		},
		{
			Name:       "fig3",
			Artifacts:  "Fig. 3",
			PaperScale: "100 H-50 nodes, 90 days, final-week probe",
			Run:        wrap(Fig3),
		},
		{
			Name:       "sweep",
			Artifacts:  "Fig. 4, Fig. 5, Fig. 6",
			PaperScale: "500 nodes x {LoRaWAN, H-5, H-50, H-100}, 5 years",
			Run:        ThetaSweep,
		},
		{
			Name:       "lifespan",
			Artifacts:  "Fig. 7, Fig. 8",
			PaperScale: "100 nodes x {LoRaWAN, H-50, H-50C}, run to EoL (~8-14 years)",
			Run:        Lifespan,
		},
		{
			Name:       "fig9",
			Artifacts:  "Fig. 9",
			PaperScale: "10 concurrent testbed nodes, 24 hours, SF10, 1 channel",
			Run:        wrap(Fig9),
		},
		{
			Name:       "tableI",
			Artifacts:  "Table I",
			PaperScale: "decision-path microbenchmarks",
			Run:        wrap(TableI),
		},
		{
			Name:       "optgap",
			Artifacts:  "Sec. III-A (heuristic vs clairvoyant optimum)",
			PaperScale: "3 nodes, 12 TDMA slots, exhaustive",
			Run:        wrap(OptimalGap),
		},
		{
			Name:       "abl-forecast",
			Artifacts:  "ablation (forecast quality)",
			PaperScale: "200 H-50 nodes, 120 days, 4 forecasters",
			Run:        wrap(ForecastAblation),
		},
		{
			Name:       "abl-weightb",
			Artifacts:  "ablation (w_b trade-off, Fig. 6c discussion)",
			PaperScale: "200 H-50 nodes, 120 days, 4 weights",
			Run:        wrap(WeightBAblation),
		},
		{
			Name:       "abl-retxhist",
			Artifacts:  "ablation (Eq. 14 history)",
			PaperScale: "200 H-50 nodes, 120 days, on/off",
			Run:        wrap(RetxHistoryAblation),
		},
		{
			Name:       "abl-supercap",
			Artifacts:  "extension (Sec. V future work: hybrid storage)",
			PaperScale: "200 nodes, 120 days, 3 storage configs x 2 protocols",
			Run:        wrap(SupercapAblation),
		},
		{
			Name:       "abl-gateways",
			Artifacts:  "extension (multi-gateway deployments)",
			PaperScale: "200 nodes, 120 days, {1,2,4} gateways x 2 protocols",
			Run:        wrap(GatewayAblation),
		},
		{
			Name:       "abl-startspread",
			Artifacts:  "ablation (deployment synchronization)",
			PaperScale: "200 nodes, 120 days, 3 spreads x 2 protocols",
			Run:        wrap(StartSpreadAblation),
		},
		{
			Name:       "scale",
			Artifacts:  "harness (single-run large-N scaling ladder)",
			PaperScale: "125/250/500/1000 nodes, 2 days, BLA H-50",
			Run:        Scale,
		},
		{
			Name:       "faults",
			Artifacts:  "robustness (min lifespan vs control-plane reliability)",
			PaperScale: "200 H-50 nodes, 120 days, 3 loss rates x 3 outage lengths",
			Run:        wrap(FaultsSweep),
		},
	}
}

// Find returns the entry with the given name.
func Find(name string) (Entry, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
