package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID:      "t1",
		Title:   "test",
		Columns: []string{"a", "bb"},
	}
	tbl.AddRow("xxx", "1")
	tbl.AddRow("y", "22")
	tbl.AddNote("scaled by %d", 3)
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t1", "test", "xxx", "22", "note: scaled by 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `with "quote", comma`)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("seed = %d, want 1", o.seed())
	}
	if o.nodes(100) != 100 {
		t.Errorf("nodes = %d, want paper default", o.nodes(100))
	}
	if o.duration(simtime.Day) != simtime.Day {
		t.Errorf("duration should fall back to paper default")
	}
	if o.aging() != 1 {
		t.Errorf("aging = %v, want 1", o.aging())
	}
	o = Options{Seed: 7, Nodes: 3, Duration: simtime.Hour, AgingFactor: 10}
	if o.seed() != 7 || o.nodes(100) != 3 || o.duration(simtime.Day) != simtime.Hour || o.aging() != 10 {
		t.Error("overrides not honored")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "sweep", "lifespan", "fig9", "tableI", "optgap",
		"abl-forecast", "abl-weightb", "abl-retxhist", "abl-supercap",
		"abl-gateways", "abl-startspread", "scale", "faults",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].Name, name)
		}
		if reg[i].Run == nil || reg[i].Artifacts == "" || reg[i].PaperScale == "" {
			t.Errorf("registry entry %q incomplete", name)
		}
	}
	if _, ok := Find("sweep"); !ok {
		t.Error("Find(sweep) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

// tiny returns options that make every experiment run in well under a
// second of wall time per simulated protocol.
func tiny() Options {
	return Options{Seed: 5, Nodes: 12, Duration: 2 * simtime.Day, AgingFactor: 1500}
}

func TestFig2Tiny(t *testing.T) {
	tbl, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("fig2 produced no rows")
	}
	// Last row: calendar must dominate cycle aging (the figure's claim).
	last := tbl.Rows[len(tbl.Rows)-1]
	if len(last) != 4 {
		t.Fatalf("unexpected row %v", last)
	}
	if last[1] <= last[2] { // string compare works for same-width decimals
		t.Logf("calendar %s vs cycle %s (string compare only)", last[1], last[2])
	}
}

func TestFig3Tiny(t *testing.T) {
	o := tiny()
	o.Duration = 9 * simtime.Day // needs a final-week probe window
	tbl, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig3 rows = %d, want 2 probes", len(tbl.Rows))
	}
}

func TestThetaSweepTiny(t *testing.T) {
	tables, err := ThetaSweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("sweep tables = %d, want fig4+fig5+fig6", len(tables))
	}
	ids := []string{"fig4", "fig5", "fig6"}
	for i, tbl := range tables {
		if tbl.ID != ids[i] {
			t.Errorf("table %d id = %q, want %q", i, tbl.ID, ids[i])
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s has no rows", tbl.ID)
		}
		if len(tbl.Columns) != 5 {
			t.Errorf("%s columns = %v, want metric + 4 variants", tbl.ID, tbl.Columns)
		}
	}
}

func TestLifespanTiny(t *testing.T) {
	tables, err := Lifespan(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].ID != "fig7" || tables[1].ID != "fig8" {
		t.Fatalf("lifespan tables = %+v", tables)
	}
	fig8 := tables[1]
	if len(fig8.Rows) != 3 {
		t.Fatalf("fig8 rows = %d, want 3 protocols", len(fig8.Rows))
	}
	if fig8.Rows[0][0] != "LoRaWAN" || fig8.Rows[1][0] != "H-50" {
		t.Errorf("fig8 protocol order: %v", fig8.Rows)
	}
}

func TestFig9Tiny(t *testing.T) {
	o := Options{Seed: 5, Duration: 4 * simtime.Hour}
	tbl, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("fig9 rows = %d", len(tbl.Rows))
	}
}

func TestTableITiny(t *testing.T) {
	tbl, err := TableI(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 5 {
		t.Fatalf("tableI rows = %d", len(tbl.Rows))
	}
}

func TestOptimalGapTiny(t *testing.T) {
	tbl, err := OptimalGap(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("optgap rows = %d, want 3 solvers", len(tbl.Rows))
	}
}

func TestAblationsTiny(t *testing.T) {
	o := tiny()
	for _, f := range []func(Options) (*Table, error){
		ForecastAblation, WeightBAblation, RetxHistoryAblation,
		SupercapAblation, GatewayAblation, StartSpreadAblation,
	} {
		tbl, err := f(o)
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", tbl.ID)
		}
	}
}
