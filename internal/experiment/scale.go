package experiment

import (
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Scale probes single-run large-N throughput: one simulation per rung of
// a doubling node ladder up to the paper's densest deployment, all on
// the identical scenario seed. The table carries only deterministic
// workload metrics (counts and per-node averages); wall-clock throughput
// is reported through Options.Log so the rendered artifact stays
// byte-identical across machines and worker counts.
func Scale(o Options) ([]*Table, error) {
	o = o.parallel()
	base := o.nodes(1000)
	duration := o.duration(2 * simtime.Day)
	ladder := []int{base / 8, base / 4, base / 2, base}

	t := &Table{
		ID:      "scale",
		Title:   "Single-run scaling ladder (BLA H-50)",
		Columns: []string{"nodes", "generated", "delivered", "avg PRR", "avg attempts"},
	}
	for _, n := range ladder {
		if n < 1 {
			n = 1
		}
		cfg := config.Default().WithSeed(o.seed())
		cfg.Nodes = n
		cfg.Duration = duration
		cfg.Protocol = config.ProtocolBLA
		cfg.Theta = 0.5

		started := time.Now()
		res, err := simulate(o, cfg, sim.Hooks{})
		if err != nil {
			return nil, fmt.Errorf("experiment: scale %d nodes: %w", n, err)
		}
		elapsed := time.Since(started)

		var generated, delivered int64
		var prrSum, attSum float64
		for _, node := range res.Nodes {
			generated += node.Stats.Generated
			delivered += node.Stats.Delivered
			prrSum += node.Stats.PRR()
			attSum += node.Stats.AvgAttempts()
		}
		nn := float64(len(res.Nodes))
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", generated),
			fmt.Sprintf("%d", delivered),
			fmt.Sprintf("%.3f", prrSum/nn),
			fmt.Sprintf("%.2f", attSum/nn),
		)
		simDays := duration.Seconds() / (24 * 3600)
		o.logf("scale: %d nodes, %v simulated in %v (%.1f sim-days/s)",
			n, cfg.Duration, elapsed.Round(time.Millisecond),
			simDays/elapsed.Seconds())
	}
	t.AddNote("ladder runs serially; throughput lines go to -v only to keep the table deterministic")
	return []*Table{t}, nil
}
