package experiment

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

// faultsVariant is one control-plane reliability setting of the
// robustness sweep: a downlink (ACK/beacon) loss probability crossed
// with a weekly gateway outage of the given length.
type faultsVariant struct {
	label     string
	loss      float64
	outageLen simtime.Duration
}

func faultsVariants() []faultsVariant {
	losses := []float64{0, 0.10, 0.30}
	outages := []simtime.Duration{0, 6 * simtime.Hour, 24 * simtime.Hour}
	var vs []faultsVariant
	for _, ol := range outages {
		for _, loss := range losses {
			out := "none"
			if ol > 0 {
				out = fmt.Sprintf("%dh/wk", int64(ol/simtime.Hour))
			}
			vs = append(vs, faultsVariant{
				label:     fmt.Sprintf("loss %.0f%% outage %s", 100*loss, out),
				loss:      loss,
				outageLen: ol,
			})
		}
	}
	return vs
}

// faultsScenario builds one robustness scenario: the paper's H-50
// protocol under a lossy control plane, with the stale-weight TTL and
// conservative fallback engaged on every row so the zero-fault row
// doubles as a TTL-overhead baseline.
func faultsScenario(o Options, v faultsVariant) config.Scenario {
	cfg := config.Default().WithSeed(o.seed())
	cfg.Nodes = o.nodes(200)
	cfg.Duration = o.duration(120 * simtime.Day)
	cfg.Protocol = config.ProtocolBLA
	cfg.Theta = 0.5
	applyAging(&cfg, o.aging())
	cfg.Faults = faults.Config{
		DownlinkLoss:    v.loss,
		WuTTL:           2 * simtime.Hour,
		WuStaleFallback: 1,
	}
	if v.outageLen > 0 {
		cfg.Faults.OutageStart = 2 * simtime.Day
		cfg.Faults.OutageLen = v.outageLen
		cfg.Faults.OutageEvery = 7 * simtime.Day
	}
	return cfg
}

// FaultsSweep regenerates the robustness table: minimum projected
// battery lifespan versus control-plane reliability, sweeping downlink
// loss rate x weekly gateway outage length. The lifespan proxy linearly
// extrapolates the run's worst per-node degradation to the battery
// model's EoL threshold, so graceful degradation shows up as a smooth
// decline (and a collapse — e.g. every node falling back to w_u = 1
// forever — as a cliff). Paper scale: 200 H-50 nodes, 120 days, 9
// fault settings.
func FaultsSweep(o Options) (*Table, error) {
	vs := faultsVariants()
	labels := make([]string, len(vs))
	cfgs := make([]config.Scenario, len(vs))
	for i, v := range vs {
		labels[i] = v.label
		cfgs[i] = faultsScenario(o, v)
	}
	sums, err := runScenarios(o, "faults", labels, cfgs)
	if err != nil {
		return nil, err
	}

	eol := cfgs[0].BatteryModel.EoLThreshold
	t := &Table{
		ID:    "faults",
		Title: "Robustness: min lifespan vs control-plane reliability (H-50)",
		Columns: []string{
			"downlink loss", "outage", "min lifespan yrs", "max degradation",
			"avg PRR", "min PRR", "stale w_u (%)",
		},
	}
	for i, s := range sums {
		v := vs[i]
		out := "none"
		if v.outageLen > 0 {
			out = fmt.Sprintf("%dh/wk", int64(v.outageLen/simtime.Hour))
		}
		maxDeg := metrics.BoxOf(s.degs).Max
		life := "n/a"
		if maxDeg > 0 {
			years := s.elapsedD / 365 * o.aging() * eol / maxDeg
			life = fmt.Sprintf("%.2f", years)
		}
		stale := 0.0
		if s.generated > 0 {
			stale = 100 * float64(s.staleWu) / float64(s.generated)
		}
		prr := metrics.BoxOf(s.prr)
		t.AddRow(
			fmt.Sprintf("%.0f%%", 100*v.loss),
			out,
			life,
			fmt.Sprintf("%.5f", maxDeg),
			fmt.Sprintf("%.3f", prr.Mean),
			fmt.Sprintf("%.3f", prr.Min),
			fmt.Sprintf("%.1f", stale),
		)
	}
	t.AddNote("min lifespan linearly extrapolates the worst node's degradation to the %.0f%% EoL threshold", 100*eol)
	t.AddNote("stale w_u: share of transmit decisions that used the conservative fallback (TTL %v, fallback w_u = 1)", 2*simtime.Hour)
	t.AddNote("outages recur weekly starting day 2; downlink loss drops ACKs (and the piggybacked w_u beacon) after PHY success")
	noteAging(t, o)
	noteReplicates(t, o)
	return t, nil
}
