package battery

import (
	"fmt"

	"repro/internal/simtime"
)

// Store is the node-facing energy storage abstraction: the plain
// rechargeable Battery implements it, and Hybrid adds a supercapacitor
// buffer in front of the battery — the extension the paper's related
// work (ref. [39]) motivates and leaves open.
type Store interface {
	// Charge stores up to the given energy, returning the accepted part.
	Charge(now simtime.Time, joules float64) float64
	// Discharge draws up to the given energy, returning the supplied part.
	Discharge(now simtime.Time, joules float64) float64
	// CanSupply reports whether the store holds at least the given energy.
	CanSupply(joules float64) bool
	// Stored returns the usable energy currently held, in joules.
	Stored() float64
	// SoC returns the battery's state of charge (fraction of original
	// battery capacity) — the quantity the degradation model cares about.
	SoC() float64
	// SetChargeLimit sets the protocol's theta cap on the battery.
	SetChargeLimit(theta float64)
	// Degradation returns the battery's capacity fade at the instant.
	Degradation(now simtime.Time) float64
	// Damage returns the battery's full degradation breakdown.
	Damage(now simtime.Time) Breakdown
	// AtEoL reports whether the battery reached end of life.
	AtEoL(now simtime.Time) bool
	// DrainTransitions returns and clears the battery's reportable SoC
	// transitions.
	DrainTransitions() []Transition
	// AppendTransitions appends the reportable SoC transitions to dst,
	// clears the pending list, and returns dst; unlike DrainTransitions
	// it keeps the internal buffer for reuse.
	AppendTransitions(dst []Transition) []Transition
}

var _ Store = (*Battery)(nil)

// Hybrid pairs a supercapacitor with a battery: harvested energy fills
// the supercapacitor first and overflows into the battery; loads drain
// the supercapacitor first and fall back to the battery. Transmission
// dips that fit in the supercapacitor never touch the battery at all,
// suppressing cycle aging — at the cost of the supercapacitor's
// self-discharge leak.
type Hybrid struct {
	batt *Battery

	capJ   float64 // supercapacitor capacity
	stored float64 // supercapacitor charge
	leakW  float64 // self-discharge, watts

	lastLeak simtime.Time
}

var _ Store = (*Hybrid)(nil)

// NewHybrid wraps the battery with a supercapacitor of the given
// capacity (joules) and self-discharge leak (watts). Supercapacitors
// leak orders of magnitude faster than batteries, so leakW should be
// non-trivial (a few percent of capacity per hour is typical).
func NewHybrid(batt *Battery, capJ, leakW float64) (*Hybrid, error) {
	if batt == nil {
		return nil, fmt.Errorf("battery: hybrid needs a battery")
	}
	if capJ <= 0 {
		return nil, fmt.Errorf("battery: supercap capacity %v must be positive", capJ)
	}
	if leakW < 0 {
		return nil, fmt.Errorf("battery: negative supercap leak %v", leakW)
	}
	return &Hybrid{batt: batt, capJ: capJ, leakW: leakW}, nil
}

// Battery exposes the wrapped battery (for result reporting).
func (h *Hybrid) Battery() *Battery { return h.batt }

// SupercapStored returns the supercapacitor's current charge in joules.
func (h *Hybrid) SupercapStored() float64 {
	return h.stored
}

// applyLeak integrates the supercapacitor's self-discharge up to now.
func (h *Hybrid) applyLeak(now simtime.Time) {
	if now <= h.lastLeak {
		return
	}
	dt := now.Sub(h.lastLeak).Seconds()
	h.lastLeak = now
	h.stored = max(0, h.stored-h.leakW*dt)
}

// Charge implements Store: supercapacitor first, battery overflow.
func (h *Hybrid) Charge(now simtime.Time, joules float64) float64 {
	h.applyLeak(now)
	if joules <= 0 {
		return 0
	}
	toCap := min(joules, h.capJ-h.stored)
	h.stored += toCap
	return toCap + h.batt.Charge(now, joules-toCap)
}

// Discharge implements Store: supercapacitor first, battery fallback.
func (h *Hybrid) Discharge(now simtime.Time, joules float64) float64 {
	h.applyLeak(now)
	if joules <= 0 {
		return 0
	}
	fromCap := min(joules, h.stored)
	h.stored -= fromCap
	return fromCap + h.batt.Discharge(now, joules-fromCap)
}

// CanSupply implements Store over the combined charge.
func (h *Hybrid) CanSupply(joules float64) bool {
	return h.stored+h.batt.Stored() >= joules
}

// Stored implements Store: the combined usable energy.
func (h *Hybrid) Stored() float64 { return h.stored + h.batt.Stored() }

// SoC implements Store: the battery's state of charge (the
// supercapacitor does not age the way Eq. 1-4 model).
func (h *Hybrid) SoC() float64 { return h.batt.SoC() }

// SetChargeLimit implements Store: theta constrains the battery only.
func (h *Hybrid) SetChargeLimit(theta float64) { h.batt.SetChargeLimit(theta) }

// Degradation implements Store.
func (h *Hybrid) Degradation(now simtime.Time) float64 { return h.batt.Degradation(now) }

// Damage implements Store.
func (h *Hybrid) Damage(now simtime.Time) Breakdown { return h.batt.Damage(now) }

// AtEoL implements Store.
func (h *Hybrid) AtEoL(now simtime.Time) bool { return h.batt.AtEoL(now) }

// DrainTransitions implements Store.
func (h *Hybrid) DrainTransitions() []Transition { return h.batt.DrainTransitions() }

// AppendTransitions implements Store.
func (h *Hybrid) AppendTransitions(dst []Transition) []Transition {
	return h.batt.AppendTransitions(dst)
}
