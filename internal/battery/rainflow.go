package battery

// Rainflow cycle counting (ASTM E1049-style three-point method with a
// residue), in both batch and incremental/streaming forms. The paper's
// gateway recomputes every node's degradation daily from a growing
// multi-year SoC trace; the incremental Counter makes that O(1) amortized
// per sample instead of re-scanning the whole trace on every query.

// Cycle is one rainflow-extracted charge-discharge cycle.
type Cycle struct {
	// Range is the cycle depth delta: max SoC minus min SoC, in [0,1].
	Range float64
	// Mean is the average SoC phi of the cycle: (max + min) / 2.
	Mean float64
	// Count is the cycle type eta: 1 for a full cycle, 0.5 for a half
	// cycle (residue).
	Count float64
}

// Rainflow counts the cycles of a sample sequence in one shot. The input
// need not be strictly alternating: monotone runs are compressed to
// turning points first. Residual unpaired ranges are counted as half
// cycles.
func Rainflow(points []float64) []Cycle {
	var cycles []Cycle
	stack := extract(nil, compressTurningPoints(points), func(c Cycle) {
		cycles = append(cycles, c)
	})
	for i := 0; i+1 < len(stack); i++ {
		cycles = append(cycles, newCycle(stack[i], stack[i+1], 0.5))
	}
	return cycles
}

// extract runs the three-point extraction over the given turning points
// starting from an existing working stack, invoking emit for every
// retired cycle, and returns the updated stack.
func extract(stack, points []float64, emit func(Cycle)) []float64 {
	for _, p := range points {
		stack = append(stack, p)
		for len(stack) >= 3 {
			n := len(stack)
			x := abs(stack[n-1] - stack[n-2])
			y := abs(stack[n-2] - stack[n-3])
			if x < y {
				break
			}
			if n == 3 {
				// The range Y involves the first point of the history: it
				// can never close into a full cycle, so count a half cycle
				// and retire the first point.
				emit(newCycle(stack[0], stack[1], 0.5))
				stack = append(stack[:0], stack[1:]...)
				continue
			}
			// Full cycle formed by the two middle points.
			emit(newCycle(stack[n-3], stack[n-2], 1.0))
			stack = append(stack[:n-3], stack[n-1])
		}
	}
	return stack
}

// Counter is an incremental rainflow counter over a stream of SoC
// samples. Push accepts raw samples (turning points are detected
// internally); cycles that retire permanently are handed to the OnCycle
// callback, and PendingCycles returns, at any time, the cycles that batch
// counting of the whole history so far would additionally report.
//
// Invariant (verified by property tests): at any point of the stream,
//
//	Rainflow(history) == cycles emitted via OnCycle + PendingCycles()
//
// up to ordering.
//
// The zero value is ready to use. Counter is not safe for concurrent use.
type Counter struct {
	// OnCycle, if non-nil, is invoked for every permanently retired cycle.
	OnCycle func(Cycle)

	stack []float64
	last  float64
	dir   int    // +1 rising, -1 falling, 0 before the second distinct sample
	n     int    // raw samples seen
	rev   uint64 // bumped whenever the pending-cycle state may change

	// Per-call scratch, reused to keep the push and degradation-query
	// paths allocation-free.
	probe     [1]float64  // pushTurningPoint's one-point extraction input
	emitFn    func(Cycle) // cached c.emit method value; built once
	pendStack []float64   // AppendPending's working copy of the residue stack
	pendProbe [1]float64  // AppendPending's one-point extraction probe
	pendOut   []Cycle     // cycles emitted by the probe extraction
	pendEmit  func(Cycle) // appends to pendOut; built once, not per call
}

// Push feeds the next SoC sample into the counter.
func (c *Counter) Push(v float64) {
	c.n++
	if c.n == 1 {
		c.last = v
		c.rev++
		return
	}
	switch d := sign(v - c.last); {
	case d == 0:
		// Same value again: stack, last, and pending cycles are all
		// unchanged, so the revision is not bumped.
		return
	case c.dir == 0:
		// First direction established: the first sample is the first
		// turning point of the history.
		c.pushTurningPoint(c.last)
		c.dir = d
	case d != c.dir:
		// Direction change: the previous sample was an extremum.
		c.pushTurningPoint(c.last)
		c.dir = d
	}
	c.last = v
	c.rev++
}

// Revision returns a counter that changes whenever the pending-cycle
// state (and therefore any Damage query derived from it) may have
// changed. It lets callers memoize results on exact inputs.
func (c *Counter) Revision() uint64 { return c.rev }

// ExtendRun collapses k consecutive Push calls that provably continue
// the current monotone run: every collapsed sample lies between the
// current provisional extremum and v, ordered in the established
// direction (equal neighbours permitted — those pushes are no-ops).
// Interior points of a monotone run are never turning points, so the
// stack and direction are untouched; the extremum advances to v, the
// sample count by k, and the revision bumps when the extremum moved.
// The caller owns the precondition: the run must not reverse or
// establish a direction (c.dir != 0 and sign(v-last) is c.dir or 0).
// Battery.DischargeRun and Battery.ChargeRun are the only intended
// users.
func (c *Counter) ExtendRun(v float64, k int) {
	if k <= 0 {
		return
	}
	c.n += k
	if v == c.last {
		return
	}
	c.last = v
	c.rev++
}

func (c *Counter) pushTurningPoint(p float64) {
	// The probe slice and the emit callback are cached on the counter: a
	// `[]float64{p}` literal and a `c.emit` method value would both heap
	// allocate on every turning point of a multi-year run.
	if c.emitFn == nil {
		c.emitFn = c.emit
	}
	if c.stack == nil {
		// Skip the early doubling steps; shallow-cycling batteries keep
		// a residue stack of at most a handful of extrema.
		c.stack = make([]float64, 0, 16)
	}
	c.probe[0] = p
	c.stack = extract(c.stack, c.probe[:], c.emitFn)
}

func (c *Counter) emit(cy Cycle) {
	if c.OnCycle != nil {
		c.OnCycle(cy)
	}
}

// PendingCycles returns the not-yet-permanent cycles of the history so
// far: cycles that would close once the current provisional extremum is
// confirmed, plus the open residue counted as half cycles. The counter
// state is not modified; the method may be called at any time (the
// paper's gateway queries once per day).
func (c *Counter) PendingCycles() []Cycle {
	if c.n == 0 {
		return nil
	}
	return c.AppendPending(nil)
}

// AppendPending appends the pending cycles (see PendingCycles) to dst
// and returns it, reusing dst's capacity. The degradation tracker calls
// this on every battery operation of a multi-year run, so the
// allocation-free form matters: the working stack copy, the one-point
// probe, and the extraction output all live in scratch kept inside the
// counter (a closure over dst, or a slice literal for the probe, would
// cost heap allocations on every call).
func (c *Counter) AppendPending(dst []Cycle) []Cycle {
	if c.n == 0 {
		return dst
	}
	if need := len(c.stack) + 1; cap(c.pendStack) < need {
		// Doubling matters: the residue stack grows one element per
		// turning point, so an exact-fit buffer would fall short again
		// on the very next query.
		c.pendStack = make([]float64, 0, max(2*need, 16))
	}
	stack := append(c.pendStack[:0], c.stack...)
	c.pendOut = c.pendOut[:0] // must reset either way: appended below unconditionally
	if len(stack) == 0 || stack[len(stack)-1] != c.last {
		if c.pendEmit == nil {
			c.pendEmit = func(cy Cycle) { c.pendOut = append(c.pendOut, cy) }
			c.pendOut = make([]Cycle, 0, 16)
		}
		c.pendProbe[0] = c.last
		stack = extract(stack, c.pendProbe[:], c.pendEmit)
	}
	c.pendStack = stack[:0]
	halves := max(len(stack)-1, 0)
	if need := len(dst) + len(c.pendOut) + halves; cap(dst) < need {
		nd := make([]Cycle, len(dst), max(2*need, 8))
		copy(nd, dst)
		dst = nd
	}
	dst = append(dst, c.pendOut...)
	for i := 0; i+1 < len(stack); i++ {
		dst = append(dst, newCycle(stack[i], stack[i+1], 0.5))
	}
	return dst
}

// Samples returns the number of raw samples pushed.
func (c *Counter) Samples() int { return c.n }

// compressTurningPoints removes equal neighbours and interior points of
// monotone runs, leaving an alternating extrema sequence.
func compressTurningPoints(points []float64) []float64 {
	var tp []float64
	dir := 0
	for _, v := range points {
		if len(tp) == 0 {
			tp = append(tp, v)
			continue
		}
		last := tp[len(tp)-1]
		if v == last {
			continue
		}
		d := sign(v - last)
		if d == dir {
			tp[len(tp)-1] = v
			continue
		}
		dir = d
		tp = append(tp, v)
	}
	return tp
}

func newCycle(a, b, count float64) Cycle {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return Cycle{Range: hi - lo, Mean: (hi + lo) / 2, Count: count}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v float64) int {
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	return 0
}
