package battery

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

// bitsEqual compares float64s by representation, the contract the
// snapshot layer promises (no "close enough" tolerance).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameBreakdown(t *testing.T, label string, want, got Breakdown) {
	t.Helper()
	if !bitsEqual(want.Calendar, got.Calendar) || !bitsEqual(want.Cycle, got.Cycle) ||
		!bitsEqual(want.Linear, got.Linear) || !bitsEqual(want.Total, got.Total) ||
		!bitsEqual(want.MeanSoC, got.MeanSoC) || !bitsEqual(want.Cycles, got.Cycles) {
		t.Fatalf("%s: breakdown diverged after restore:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestTrackerSnapshotRoundTrip is the snapshot exactness proof: cut a
// random SoC stream at an arbitrary point, snapshot, serialize through
// JSON (the daemon's persistence format), restore, then feed both the
// original and the restored tracker the identical continuation. Every
// subsequent Damage query must return bit-identical breakdowns.
func TestTrackerSnapshotRoundTrip(t *testing.T) {
	model := DefaultModel()
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewPCG(7, uint64(trial)))
		n := 2 + rng.IntN(400)
		cut := rng.IntN(n)

		orig := NewTracker(model, 25)
		stream := make([]float64, n)
		for i := range stream {
			stream[i] = rng.Float64()
			if rng.IntN(8) == 0 && i > 0 {
				stream[i] = stream[i-1] // plateaus exercise the no-op path
			}
		}
		for _, v := range stream[:cut] {
			orig.Push(v)
		}

		snap := orig.Snapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var decoded TrackerSnapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		restored := RestoreTracker(model, 25, decoded)

		if restored.Samples() != orig.Samples() {
			t.Fatalf("trial %d: restored samples %d, want %d", trial, restored.Samples(), orig.Samples())
		}
		age := simtime.Duration(cut+1) * simtime.Hour
		requireSameBreakdown(t, "at cut", orig.Damage(age), restored.Damage(age))

		for i, v := range stream[cut:] {
			orig.Push(v)
			restored.Push(v)
			if i%17 == 0 {
				age := simtime.Duration(cut+i+2) * simtime.Hour
				requireSameBreakdown(t, "mid-continuation", orig.Damage(age), restored.Damage(age))
			}
		}
		final := simtime.Duration(n+1) * simtime.Day
		requireSameBreakdown(t, "final", orig.Damage(final), restored.Damage(final))
		if orig.DegradationCeiling(final) != restored.DegradationCeiling(final) {
			t.Fatalf("trial %d: degradation ceiling diverged", trial)
		}
	}
}

// TestTrackerSnapshotEmpty: a tracker with zero samples snapshots and
// restores without manufacturing phantom state.
func TestTrackerSnapshotEmpty(t *testing.T) {
	model := DefaultModel()
	orig := NewTracker(model, 25)
	restored := RestoreTracker(model, 25, orig.Snapshot())
	if restored.Samples() != 0 {
		t.Fatalf("restored empty tracker has %d samples", restored.Samples())
	}
	age := simtime.Duration(simtime.Day)
	requireSameBreakdown(t, "empty", orig.Damage(age), restored.Damage(age))

	// Both sides must agree after the first pushes too.
	for _, v := range []float64{0.9, 0.3, 0.8, 0.8, 0.2} {
		orig.Push(v)
		restored.Push(v)
	}
	requireSameBreakdown(t, "after pushes", orig.Damage(age), restored.Damage(age))
}

// TestCounterRestoreKeepsOnCycle: restoring a counter must not detach
// the retirement callback — closed cycles after the restore still reach
// the tracker's aggregates.
func TestCounterRestoreKeepsOnCycle(t *testing.T) {
	var got []Cycle
	c := &Counter{OnCycle: func(cy Cycle) { got = append(got, cy) }}
	for _, v := range []float64{0.9, 0.1, 0.8} {
		c.Push(v)
	}
	c.RestoreSnapshot(c.Snapshot())
	// The swing to 0.0 spans the 0.1-0.8 range; the reversal to 0.6
	// confirms 0.0 as a turning point and retires that cycle.
	c.Push(0.0)
	c.Push(0.6)
	if len(got) == 0 {
		t.Fatal("no cycle retired after restore; OnCycle lost")
	}
}

// TestCounterSnapshotIsolated: mutating the counter after Snapshot must
// not leak into the captured stack (the daemon serializes asynchronously
// with respect to later ingests).
func TestCounterSnapshotIsolated(t *testing.T) {
	var c Counter
	for _, v := range []float64{0.9, 0.1, 0.8, 0.2, 0.7} {
		c.Push(v)
	}
	snap := c.Snapshot()
	stackCopy := append([]float64(nil), snap.Stack...)
	for i := 0; i < 50; i++ {
		c.Push(float64(i%2) * 0.5)
	}
	for i := range snap.Stack {
		if snap.Stack[i] != stackCopy[i] {
			t.Fatal("snapshot stack mutated by later pushes")
		}
	}
}
