package battery

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

// bitsEqual compares float64s by representation, the contract the
// snapshot layer promises (no "close enough" tolerance).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func requireSameBreakdown(t *testing.T, label string, want, got Breakdown) {
	t.Helper()
	if !bitsEqual(want.Calendar, got.Calendar) || !bitsEqual(want.Cycle, got.Cycle) ||
		!bitsEqual(want.Linear, got.Linear) || !bitsEqual(want.Total, got.Total) ||
		!bitsEqual(want.MeanSoC, got.MeanSoC) || !bitsEqual(want.Cycles, got.Cycles) {
		t.Fatalf("%s: breakdown diverged after restore:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestTrackerSnapshotRoundTrip is the snapshot exactness proof: cut a
// random SoC stream at an arbitrary point, snapshot, serialize through
// JSON (the daemon's persistence format), restore, then feed both the
// original and the restored tracker the identical continuation. Every
// subsequent Damage query must return bit-identical breakdowns.
func TestTrackerSnapshotRoundTrip(t *testing.T) {
	model := DefaultModel()
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewPCG(7, uint64(trial)))
		n := 2 + rng.IntN(400)
		cut := rng.IntN(n)

		orig := NewTracker(model, 25)
		stream := make([]float64, n)
		for i := range stream {
			stream[i] = rng.Float64()
			if rng.IntN(8) == 0 && i > 0 {
				stream[i] = stream[i-1] // plateaus exercise the no-op path
			}
		}
		for _, v := range stream[:cut] {
			orig.Push(v)
		}

		snap := orig.Snapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var decoded TrackerSnapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		restored := RestoreTracker(model, 25, decoded)

		if restored.Samples() != orig.Samples() {
			t.Fatalf("trial %d: restored samples %d, want %d", trial, restored.Samples(), orig.Samples())
		}
		age := simtime.Duration(cut+1) * simtime.Hour
		requireSameBreakdown(t, "at cut", orig.Damage(age), restored.Damage(age))

		for i, v := range stream[cut:] {
			orig.Push(v)
			restored.Push(v)
			if i%17 == 0 {
				age := simtime.Duration(cut+i+2) * simtime.Hour
				requireSameBreakdown(t, "mid-continuation", orig.Damage(age), restored.Damage(age))
			}
		}
		final := simtime.Duration(n+1) * simtime.Day
		requireSameBreakdown(t, "final", orig.Damage(final), restored.Damage(final))
		if orig.DegradationCeiling(final) != restored.DegradationCeiling(final) {
			t.Fatalf("trial %d: degradation ceiling diverged", trial)
		}
	}
}

// TestTrackerSnapshotEmpty: a tracker with zero samples snapshots and
// restores without manufacturing phantom state.
func TestTrackerSnapshotEmpty(t *testing.T) {
	model := DefaultModel()
	orig := NewTracker(model, 25)
	restored := RestoreTracker(model, 25, orig.Snapshot())
	if restored.Samples() != 0 {
		t.Fatalf("restored empty tracker has %d samples", restored.Samples())
	}
	age := simtime.Duration(simtime.Day)
	requireSameBreakdown(t, "empty", orig.Damage(age), restored.Damage(age))

	// Both sides must agree after the first pushes too.
	for _, v := range []float64{0.9, 0.3, 0.8, 0.8, 0.2} {
		orig.Push(v)
		restored.Push(v)
	}
	requireSameBreakdown(t, "after pushes", orig.Damage(age), restored.Damage(age))
}

// TestCounterRestoreKeepsOnCycle: restoring a counter must not detach
// the retirement callback — closed cycles after the restore still reach
// the tracker's aggregates.
func TestCounterRestoreKeepsOnCycle(t *testing.T) {
	var got []Cycle
	c := &Counter{OnCycle: func(cy Cycle) { got = append(got, cy) }}
	for _, v := range []float64{0.9, 0.1, 0.8} {
		c.Push(v)
	}
	c.RestoreSnapshot(c.Snapshot())
	// The swing to 0.0 spans the 0.1-0.8 range; the reversal to 0.6
	// confirms 0.0 as a turning point and retires that cycle.
	c.Push(0.0)
	c.Push(0.6)
	if len(got) == 0 {
		t.Fatal("no cycle retired after restore; OnCycle lost")
	}
}

// TestCounterSnapshotIsolated: mutating the counter after Snapshot must
// not leak into the captured stack (the daemon serializes asynchronously
// with respect to later ingests).
func TestCounterSnapshotIsolated(t *testing.T) {
	var c Counter
	for _, v := range []float64{0.9, 0.1, 0.8, 0.2, 0.7} {
		c.Push(v)
	}
	snap := c.Snapshot()
	stackCopy := append([]float64(nil), snap.Stack...)
	for i := 0; i < 50; i++ {
		c.Push(float64(i%2) * 0.5)
	}
	for i := range snap.Stack {
		if snap.Stack[i] != stackCopy[i] {
			t.Fatal("snapshot stack mutated by later pushes")
		}
	}
}

// TestTrackerSnapshotAfterSpanRuns extends the round-trip proof to
// span-integrated histories: the SoC trace is produced by the collapsed
// DischargeRun/ChargeRun primitives (the slot-level kernel's path), the
// tracker is snapshotted mid-run, serialized, restored, and both sides
// then continue through more spans. Every Damage query must stay
// bit-identical — the counter state ExtendRun leaves behind (run length,
// pending extremum, direction, stack) must survive persistence exactly.
func TestTrackerSnapshotAfterSpanRuns(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewPCG(0x5ba7, uint64(trial)))
		build := func() *Battery {
			b, err := New(DefaultModel(), 300, 0.4, 25)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			return b
		}
		orig := build()
		now := simtime.Time(simtime.Hour)

		// spans drives one battery through alternating collapsed runs:
		// a rising span via ChargeRun (armed by one real Charge, like
		// the kernel) and a falling span via DischargeRun.
		spans := func(b *Battery, phases int) {
			at := now
			for p := 0; p < phases; p++ {
				if p%2 == 0 {
					b.Charge(at, 0.5) // arm the rising run
					at += simtime.Time(simtime.Minute)
					k := 5 + rng.IntN(200)
					stored := b.Stored()
					for i := 0; i < k; i++ {
						stored += 0.02
					}
					if _, ok := b.ChargeRun(stored, k); !ok {
						t.Fatal("ChargeRun refused mid-test")
					}
					at += simtime.Time(int64(k) * int64(simtime.Minute))
				} else {
					k := 5 + rng.IntN(200)
					b.DischargeRun(at, 0.03, k)
					at += simtime.Time(int64(k) * int64(simtime.Minute))
				}
			}
		}

		phases := 2 + rng.IntN(6)
		spans(orig, phases)

		snap := orig.tracker.Snapshot()
		data, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var decoded TrackerSnapshot
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		restored := RestoreTracker(DefaultModel(), 25, decoded)
		if restored.Samples() != orig.tracker.Samples() {
			t.Fatalf("trial %d: samples %d != %d", trial, restored.Samples(), orig.tracker.Samples())
		}
		age := simtime.Duration(now) + 30*simtime.Day
		requireSameBreakdown(t, "after span runs", orig.tracker.Damage(age), restored.Damage(age))

		// Continue both sides through the identical raw SoC stream (the
		// restored tracker has no battery attached, so feed pushes).
		for i := 0; i < 200; i++ {
			v := rng.Float64()
			orig.tracker.Push(v)
			restored.Push(v)
			if i%31 == 0 {
				requireSameBreakdown(t, "span continuation",
					orig.tracker.Damage(age+simtime.Duration(i)*simtime.Hour),
					restored.Damage(age+simtime.Duration(i)*simtime.Hour))
			}
		}
		requireSameBreakdown(t, "span final", orig.tracker.Damage(age+simtime.Day), restored.Damage(age+simtime.Day))
	}
}
