// Package battery implements the lithium-ion battery degradation model of
// Xu et al. (IEEE Trans. Smart Grid 2016) in the parameterization used by
// the paper (Eq. 1-4): calendar aging, rainflow-counted cycle aging, and
// the SEI-film nonlinear capacity-fade transform. It also provides the
// Battery state machine used by the simulator and testbed, and the
// compressed state-of-charge trace encoding that nodes piggy-back on data
// packets (Sec. III-B of the paper).
package battery

import (
	"fmt"
	"math"

	"repro/internal/simtime"
)

// Model holds the battery-specific degradation constants of Eq. (1)-(4).
// The zero value is not usable; use DefaultModel or fill every field.
type Model struct {
	// K1 is the calendar time-stress coefficient in 1/second (Eq. 1).
	K1 float64
	// K2 is the SoC stress exponent (Eq. 1).
	K2 float64
	// K3 is the reference state of charge (Eq. 1).
	K3 float64
	// K4 is the temperature stress coefficient (Eq. 1 and 2).
	K4 float64
	// K5 is the reference temperature in Celsius (Eq. 1 and 2).
	K5 float64
	// K6 is the linearized cycle stress coefficient (Eq. 2).
	K6 float64
	// AlphaSEI is the share of capacity consumed by SEI film formation
	// (Eq. 4).
	AlphaSEI float64
	// KSEI is the SEI acceleration factor (the constant k of Eq. 4).
	KSEI float64
	// EoLThreshold is the capacity-fade fraction at which the battery is
	// considered at end of life (typically 0.2).
	EoLThreshold float64
}

// DefaultModel returns the constants used throughout the evaluation,
// following Xu et al. [13] (LMO cell); K6 is calibrated as described in
// DESIGN.md so that cycle aging stays well below calendar aging at the
// paper's operating point.
func DefaultModel() Model {
	return Model{
		K1:           4.14e-10,
		K2:           1.04,
		K3:           0.50,
		K4:           6.93e-2,
		K5:           25,
		K6:           3.5e-5,
		AlphaSEI:     5.75e-2,
		KSEI:         121,
		EoLThreshold: 0.20,
	}
}

// Validate reports the first implausible constant in the model.
func (m Model) Validate() error {
	switch {
	case m.K1 <= 0:
		return fmt.Errorf("battery: K1 = %v must be positive", m.K1)
	case m.K3 < 0 || m.K3 > 1:
		return fmt.Errorf("battery: K3 = %v must be a SoC in [0,1]", m.K3)
	case m.K6 < 0:
		return fmt.Errorf("battery: K6 = %v must be non-negative", m.K6)
	case m.AlphaSEI <= 0 || m.AlphaSEI >= 1:
		return fmt.Errorf("battery: AlphaSEI = %v must be in (0,1)", m.AlphaSEI)
	case m.KSEI <= 1:
		return fmt.Errorf("battery: KSEI = %v must exceed 1", m.KSEI)
	case m.EoLThreshold <= 0 || m.EoLThreshold >= 1:
		return fmt.Errorf("battery: EoLThreshold = %v must be in (0,1)", m.EoLThreshold)
	}
	return nil
}

// TempStress returns the temperature stress factor
// e^{K4 (T - K5)(273 + K5)/(273 + T)} shared by Eq. (1) and (2).
// tempC is the average internal battery temperature in Celsius.
func (m Model) TempStress(tempC float64) float64 {
	return math.Exp(m.K4 * (tempC - m.K5) * (273 + m.K5) / (273 + tempC))
}

// CalendarAging returns D_cal per Eq. (1): the linear degradation due to
// the passage of time. elapsed is the battery age, tempC the average
// temperature, meanSoC the average SoC across charge-discharge cycles.
func (m Model) CalendarAging(elapsed simtime.Duration, tempC, meanSoC float64) float64 {
	seconds := elapsed.Seconds()
	if seconds <= 0 {
		return 0
	}
	return m.K1 * seconds * math.Exp(m.K2*(meanSoC-m.K3)) * m.TempStress(tempC)
}

// StressCache memoizes the model's exponential stress factors for the
// constant-temperature operation the simulator and testbed run (the
// paper considers insulated batteries at a fixed 25 C). Degradation is
// queried on every battery charge/discharge — once per simulated minute
// per node — and each query would otherwise re-evaluate the same
// e^{K4 ...} temperature stress and, usually, the same e^{K2 (phi-K3)}
// SoC stress. The cache removes those math.Exp calls from the hot path
// while returning bit-identical results.
//
// A StressCache belongs to one battery tracker; it is not safe for
// concurrent use.
type StressCache struct {
	model      Model
	tempStress float64

	socStress float64 // e^{K2 (socAt - K3)}, valid when socValid
	socAt     float64
	socValid  bool

	// socStressMax is the largest SoC stress factor any mean SoC in [0,1]
	// can produce: the exponential is monotone, so the maximum sits at an
	// endpoint (which one depends on the sign of K2).
	socStressMax float64
}

// NewStressCache returns a cache for the given model pinned at a fixed
// average battery temperature in Celsius.
func NewStressCache(m Model, tempC float64) *StressCache {
	return &StressCache{
		model:        m,
		tempStress:   m.TempStress(tempC),
		socStressMax: math.Max(math.Exp(m.K2*(1-m.K3)), math.Exp(-m.K2*m.K3)),
	}
}

// SocStressMax returns the precomputed upper bound of the SoC stress
// factor over all mean SoC values in [0,1].
func (c *StressCache) SocStressMax() float64 { return c.socStressMax }

// TempStress returns the cached temperature stress factor.
func (c *StressCache) TempStress() float64 { return c.tempStress }

// CalendarAging is Model.CalendarAging at the cached temperature, with
// the SoC stress factor memoized on its last operand (the cycle-mean SoC
// drifts slowly between consecutive queries).
func (c *StressCache) CalendarAging(elapsed simtime.Duration, meanSoC float64) float64 {
	seconds := elapsed.Seconds()
	if seconds <= 0 {
		return 0
	}
	if !c.socValid || meanSoC != c.socAt {
		c.socStress = math.Exp(c.model.K2 * (meanSoC - c.model.K3))
		c.socAt = meanSoC
		c.socValid = true
	}
	return c.model.K1 * seconds * c.socStress * c.tempStress
}

// CycleAgingRaw maps a raw rainflow sum (eta·delta·phi over cycles) to
// D_cyc per Eq. (2) at the cached temperature.
func (c *StressCache) CycleAgingRaw(raw float64) float64 {
	return raw * c.model.K6 * c.tempStress
}

// CycleAging returns D_cyc per Eq. (2): the sum over rainflow-counted
// cycles of eta * delta * phi * K6 * tempStress.
func (m Model) CycleAging(cycles []Cycle, tempC float64) float64 {
	stress := m.TempStress(tempC)
	var sum float64
	for _, c := range cycles {
		sum += m.CycleTerm(c, stress)
	}
	return sum
}

// CycleTerm returns one cycle's contribution to Eq. (2) given a
// precomputed temperature stress factor.
func (m Model) CycleTerm(c Cycle, tempStress float64) float64 {
	return c.Count * c.Range * c.Mean * m.K6 * tempStress
}

// Nonlinear maps the linear degradation D_L (Eq. 3) to the observed
// capacity fade D per Eq. (4), accounting for SEI film formation:
//
//	D = 1 - alpha e^{-KSEI D_L} - (1 - alpha) e^{-D_L}
func (m Model) Nonlinear(linear float64) float64 {
	if linear <= 0 {
		return 0
	}
	return 1 - m.AlphaSEI*math.Exp(-m.KSEI*linear) - (1-m.AlphaSEI)*math.Exp(-linear)
}

// InvertNonlinear returns the linear degradation D_L that produces the
// observed capacity fade d under Eq. (4), via bisection. It returns an
// error if d is outside [0, 1).
func (m Model) InvertNonlinear(d float64) (float64, error) {
	if d < 0 || d >= 1 {
		return 0, fmt.Errorf("battery: capacity fade %v outside [0,1)", d)
	}
	if d == 0 {
		return 0, nil
	}
	lo, hi := 0.0, 1.0
	for m.Nonlinear(hi) < d {
		hi *= 2
		if hi > 1e6 {
			return 0, fmt.Errorf("battery: cannot invert fade %v", d)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.Nonlinear(mid) < d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Degradation combines Eq. (1)-(4): the observed capacity fade after
// elapsed time with the given cycle history and mean cycle SoC.
func (m Model) Degradation(elapsed simtime.Duration, cycles []Cycle, tempC, meanSoC float64) float64 {
	linear := m.CalendarAging(elapsed, tempC, meanSoC) + m.CycleAging(cycles, tempC)
	return m.Nonlinear(linear)
}

// PredictCalendarLifespan returns how long a battery held at the given
// mean SoC and temperature lasts until the EoL threshold, ignoring cycle
// aging. Useful for sanity checks and capacity planning.
func (m Model) PredictCalendarLifespan(tempC, meanSoC float64) (simtime.Duration, error) {
	linearAtEoL, err := m.InvertNonlinear(m.EoLThreshold)
	if err != nil {
		return 0, err
	}
	rate := m.K1 * math.Exp(m.K2*(meanSoC-m.K3)) * m.TempStress(tempC) // per second
	if rate <= 0 {
		return 0, fmt.Errorf("battery: non-positive calendar aging rate")
	}
	seconds := linearAtEoL / rate
	return simtime.Duration(seconds * float64(simtime.Second)), nil
}
