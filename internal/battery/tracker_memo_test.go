package battery

import (
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

// TestDamageMemoMatchesColdQueries: a tracker queried after every push
// (the simulator's hot pattern, exercising memo stores, hits, and
// revision-based invalidation) must answer exactly like a tracker fed
// the identical SoC history but queried only once — memoization must be
// invisible bit for bit.
func TestDamageMemoMatchesColdQueries(t *testing.T) {
	model := DefaultModel()
	hot := NewTracker(model, 25)
	cold := NewTracker(model, 25)

	rng := rand.New(rand.NewPCG(7, 0x5eed))
	soc := 0.8
	for i := 0; i < 600; i++ {
		switch {
		case i%37 == 0:
			// Repeated identical samples: pushes that don't change the
			// counter state must not poison the memo.
		default:
			soc = min(1, max(0, soc+(rng.Float64()-0.5)*0.3))
		}
		hot.Push(soc)
		cold.Push(soc)

		age := simtime.Duration(i+1) * simtime.Hour
		got := hot.Damage(age)
		if again := hot.Damage(age); again != got {
			t.Fatalf("step %d: repeated Damage(%v) differs: %+v vs %+v", i, age, again, got)
		}
		// Same history, different age: the aggregate memo is reused but
		// the breakdown must track the new age.
		_ = hot.Damage(age + simtime.Minute)

		if i%97 == 0 || i == 599 {
			want := cold.Damage(age)
			if got != want {
				t.Fatalf("step %d: hot tracker %+v, cold tracker %+v", i, got, want)
			}
		}
	}

	// Degradation is Damage().Total and must agree too.
	age := 600 * simtime.Hour
	if hot.Degradation(age) != cold.Damage(age).Total {
		t.Fatal("Degradation diverged from Damage().Total across memo states")
	}
}

// TestDamageMemoInvalidatedByPush: a state-changing push between two
// same-age queries must recompute — the cached breakdown may not leak
// across revisions.
func TestDamageMemoInvalidatedByPush(t *testing.T) {
	tr := NewTracker(DefaultModel(), 25)
	age := 48 * simtime.Hour

	tr.Push(0.9)
	tr.Push(0.4)
	tr.Push(0.9)
	before := tr.Damage(age)

	// A deeper excursion closes a larger cycle; the same-age query must
	// see it.
	tr.Push(0.1)
	tr.Push(0.9)
	after := tr.Damage(age)
	if after == before {
		t.Fatal("Damage unchanged after state-changing pushes — stale memo")
	}
	if after.Cycle <= before.Cycle {
		t.Fatalf("deeper cycling should raise Cycle damage: before %v, after %v", before.Cycle, after.Cycle)
	}
}
