package battery

import "repro/internal/simtime"

// Tracker accumulates a battery's state-of-charge history and answers
// degradation queries (Eq. 1-4) incrementally. It is used in two places:
// inside Battery for ground-truth accounting on the node, and inside the
// network server, which reconstructs each node's SoC trace from the
// turning points piggy-backed on data packets.
type Tracker struct {
	model   Model
	tempC   float64
	counter Counter
	stress  *StressCache

	// Permanently retired cycle aggregates.
	closedRaw    float64 // sum of eta*delta*phi over retired cycles
	closedPhiSum float64 // sum of eta*phi over retired cycles
	closedWeight float64 // sum of eta over retired cycles

	pend []Cycle // scratch reused across Damage queries

	// Exact-input memo of the last Damage query: valid while both the
	// age operand and the counter revision match exactly. The cached
	// Breakdown holds the exact floats the full computation produced —
	// no quantization — so memo hits are bit-identical to recomputing.
	memoValid bool
	memoAge   simtime.Duration
	memoRev   uint64
	memoOut   Breakdown

	// Aggregate-level memo: raw/meanPhi/weight depend only on the SoC
	// history, so while the counter revision is unchanged (queries that
	// differ only in age — every at-capacity charging minute) the pending
	// cycle walk and the folds below are skipped and the exact cached
	// floats are reused.
	aggValid   bool
	aggRev     uint64
	aggRaw     float64
	aggMeanPhi float64
	aggWeight  float64
}

// NewTracker returns a tracker using the given degradation model and a
// fixed average internal battery temperature in Celsius (the paper
// considers insulated batteries at 25 C).
func NewTracker(model Model, tempC float64) *Tracker {
	t := &Tracker{model: model, tempC: tempC, stress: NewStressCache(model, tempC)}
	t.counter.OnCycle = t.onCycle
	return t
}

func (t *Tracker) onCycle(c Cycle) {
	t.closedRaw += c.Count * c.Range * c.Mean
	t.closedPhiSum += c.Count * c.Mean
	t.closedWeight += c.Count
}

// Push records the next SoC sample (fraction of original capacity).
func (t *Tracker) Push(soc float64) { t.counter.Push(soc) }

// Samples returns the number of SoC samples recorded.
func (t *Tracker) Samples() int { return t.counter.Samples() }

// Breakdown decomposes degradation into its components, as plotted in
// the paper's Fig. 2.
type Breakdown struct {
	// Calendar is D_cal of Eq. (1).
	Calendar float64
	// Cycle is D_cyc of Eq. (2).
	Cycle float64
	// Linear is D_L of Eq. (3) (= Calendar + Cycle).
	Linear float64
	// Total is the observed capacity fade D of Eq. (4).
	Total float64
	// MeanSoC is the average SoC across all counted cycles.
	MeanSoC float64
	// Cycles is the eta-weighted number of counted cycles.
	Cycles float64
}

// Damage returns the degradation breakdown after the given battery age.
// Repeated queries with an identical age and an unchanged SoC history
// (same counter revision) return the memoized breakdown — the
// simulator's observability sampling, run-end accounting, and gateway
// recomputations all re-query at instants where nothing moved.
func (t *Tracker) Damage(age simtime.Duration) Breakdown {
	if t.memoValid && age == t.memoAge && t.counter.rev == t.memoRev {
		return t.memoOut
	}
	if !t.aggValid || t.counter.rev != t.aggRev {
		raw := t.closedRaw
		phiSum := t.closedPhiSum
		weight := t.closedWeight
		t.pend = t.counter.AppendPending(t.pend[:0])
		for _, c := range t.pend {
			raw += c.Count * c.Range * c.Mean
			phiSum += c.Count * c.Mean
			weight += c.Count
		}
		meanPhi := t.counter.last // no cycles yet: resting SoC dominates
		if weight > 0 {
			meanPhi = phiSum / weight
		}
		t.aggValid, t.aggRev = true, t.counter.rev
		t.aggRaw, t.aggMeanPhi, t.aggWeight = raw, meanPhi, weight
	}
	raw, meanPhi, weight := t.aggRaw, t.aggMeanPhi, t.aggWeight
	var b Breakdown
	b.MeanSoC = meanPhi
	b.Cycles = weight
	b.Calendar = t.stress.CalendarAging(age, meanPhi)
	b.Cycle = t.stress.CycleAgingRaw(raw)
	b.Linear = b.Calendar + b.Cycle
	b.Total = t.model.Nonlinear(b.Linear)
	t.memoValid, t.memoAge, t.memoRev, t.memoOut = true, age, t.counter.rev, b
	return b
}

// Degradation returns the observed capacity fade after the given age.
func (t *Tracker) Degradation(age simtime.Duration) float64 {
	return t.Damage(age).Total
}

// DegradationCeiling returns an upper bound of Degradation(age') for
// every age' at or before age, valid not just for the current SoC
// history but for ANY continuation of it by a monotone run — pushes that
// move the provisional extremum without creating a new turning point.
// Along such a run the residue stack is frozen, so:
//
//   - closed cycle aggregates cannot change (cycles retire only when a
//     turning point is pushed);
//   - pending cycle raw (sum of eta·delta·phi) is at most len(stack):
//     AppendPending's extraction charges at most 0.5 per stack element
//     it consumes (a full cycle scores <= 1 and removes two elements, a
//     residue half scores <= 0.5 and removes one), and the leftover
//     residue pairs score <= 0.5 each — with SoC, delta, and phi all in
//     [0,1];
//   - the cycle-mean SoC is a weighted mean of values in [0,1], so the
//     calendar SoC stress is at most the model's endpoint maximum;
//   - calendar aging grows monotonically with age, so evaluating the
//     bound at the span's end covers every earlier instant.
//
// The Eq. (4) nonlinearity is monotone, so feeding it the bounded linear
// degradation bounds the observed fade. Batteries use this to prove
// whole charge spans accept-in-full without per-minute degradation
// queries (see Battery.FullAcceptLimit).
func (t *Tracker) DegradationCeiling(age simtime.Duration) float64 {
	rawUB := t.closedRaw + float64(len(t.counter.stack))
	calUB := t.model.K1 * age.Seconds() * t.stress.SocStressMax() * t.stress.TempStress()
	return t.model.Nonlinear(calUB + t.stress.CycleAgingRaw(rawUB))
}

// Model returns the degradation model the tracker was built with.
func (t *Tracker) Model() Model { return t.model }

// Temperature returns the fixed average battery temperature in Celsius.
func (t *Tracker) Temperature() float64 { return t.tempC }
