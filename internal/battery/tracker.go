package battery

import "repro/internal/simtime"

// Tracker accumulates a battery's state-of-charge history and answers
// degradation queries (Eq. 1-4) incrementally. It is used in two places:
// inside Battery for ground-truth accounting on the node, and inside the
// network server, which reconstructs each node's SoC trace from the
// turning points piggy-backed on data packets.
type Tracker struct {
	model   Model
	tempC   float64
	counter Counter
	stress  *StressCache

	// Permanently retired cycle aggregates.
	closedRaw    float64 // sum of eta*delta*phi over retired cycles
	closedPhiSum float64 // sum of eta*phi over retired cycles
	closedWeight float64 // sum of eta over retired cycles

	pend []Cycle // scratch reused across Damage queries
}

// NewTracker returns a tracker using the given degradation model and a
// fixed average internal battery temperature in Celsius (the paper
// considers insulated batteries at 25 C).
func NewTracker(model Model, tempC float64) *Tracker {
	t := &Tracker{model: model, tempC: tempC, stress: NewStressCache(model, tempC)}
	t.counter.OnCycle = t.onCycle
	return t
}

func (t *Tracker) onCycle(c Cycle) {
	t.closedRaw += c.Count * c.Range * c.Mean
	t.closedPhiSum += c.Count * c.Mean
	t.closedWeight += c.Count
}

// Push records the next SoC sample (fraction of original capacity).
func (t *Tracker) Push(soc float64) { t.counter.Push(soc) }

// Samples returns the number of SoC samples recorded.
func (t *Tracker) Samples() int { return t.counter.Samples() }

// Breakdown decomposes degradation into its components, as plotted in
// the paper's Fig. 2.
type Breakdown struct {
	// Calendar is D_cal of Eq. (1).
	Calendar float64
	// Cycle is D_cyc of Eq. (2).
	Cycle float64
	// Linear is D_L of Eq. (3) (= Calendar + Cycle).
	Linear float64
	// Total is the observed capacity fade D of Eq. (4).
	Total float64
	// MeanSoC is the average SoC across all counted cycles.
	MeanSoC float64
	// Cycles is the eta-weighted number of counted cycles.
	Cycles float64
}

// Damage returns the degradation breakdown after the given battery age.
func (t *Tracker) Damage(age simtime.Duration) Breakdown {
	raw := t.closedRaw
	phiSum := t.closedPhiSum
	weight := t.closedWeight
	t.pend = t.counter.AppendPending(t.pend[:0])
	for _, c := range t.pend {
		raw += c.Count * c.Range * c.Mean
		phiSum += c.Count * c.Mean
		weight += c.Count
	}
	meanPhi := t.counter.last // no cycles yet: resting SoC dominates
	if weight > 0 {
		meanPhi = phiSum / weight
	}
	var b Breakdown
	b.MeanSoC = meanPhi
	b.Cycles = weight
	b.Calendar = t.stress.CalendarAging(age, meanPhi)
	b.Cycle = t.stress.CycleAgingRaw(raw)
	b.Linear = b.Calendar + b.Cycle
	b.Total = t.model.Nonlinear(b.Linear)
	return b
}

// Degradation returns the observed capacity fade after the given age.
func (t *Tracker) Degradation(age simtime.Duration) float64 {
	return t.Damage(age).Total
}

// Model returns the degradation model the tracker was built with.
func (t *Tracker) Model() Model { return t.model }

// Temperature returns the fixed average battery temperature in Celsius.
func (t *Tracker) Temperature() float64 { return t.tempC }
