package battery

import (
	"fmt"

	"repro/internal/simtime"
)

// Transition is one charge<->discharge direction change of a battery: the
// compressed SoC-trace sample that a node piggy-backs on its next data
// packet (Sec. III-B, "Overhead of sharing battery trace").
type Transition struct {
	// At is when the direction changed.
	At simtime.Time
	// SoC is the state of charge at the transition, as a fraction of the
	// original capacity.
	SoC float64
}

// Battery is the software-defined rechargeable battery of one node: it
// tracks stored energy, enforces the protocol's charge limit theta,
// accumulates its own ground-truth SoC history for degradation
// accounting, and records the direction-change transitions that the node
// reports to the gateway.
//
// Battery is not safe for concurrent use; in the simulator each battery
// belongs to exactly one node.
type Battery struct {
	model    Model
	tempC    float64
	original float64 // original maximum capacity, joules
	stored   float64 // current stored energy, joules
	tracker  *Tracker

	fade    float64 // cached capacity-fade fraction in [0,1)
	fadeAge simtime.Duration

	chargeLimit float64 // theta: max stored energy as fraction of current max capacity

	lastDir     int // +1 charging, -1 discharging
	transitions []Transition
}

// New returns a battery with the given original capacity in joules and
// initial state of charge (fraction of original capacity), at a fixed
// internal temperature in Celsius.
func New(model Model, capacityJ, initialSoC, tempC float64) (*Battery, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if capacityJ <= 0 {
		return nil, fmt.Errorf("battery: capacity %v J must be positive", capacityJ)
	}
	if initialSoC < 0 || initialSoC > 1 {
		return nil, fmt.Errorf("battery: initial SoC %v outside [0,1]", initialSoC)
	}
	b := &Battery{
		model:       model,
		tempC:       tempC,
		original:    capacityJ,
		stored:      initialSoC * capacityJ,
		tracker:     NewTracker(model, tempC),
		chargeLimit: 1,
	}
	b.tracker.Push(b.soc())
	return b, nil
}

// SetChargeLimit sets theta: the maximum energy the battery is allowed to
// store, as a fraction of its current maximum capacity. The paper's H-50
// uses 0.5; plain LoRaWAN uses 1. Values are clamped to [0,1]. Any excess
// already stored is not shed; it simply stops accepting charge.
func (b *Battery) SetChargeLimit(theta float64) {
	b.chargeLimit = min(1, max(0, theta))
}

// ChargeLimit returns the configured theta.
func (b *Battery) ChargeLimit() float64 { return b.chargeLimit }

// OriginalCapacity returns the as-new capacity in joules.
func (b *Battery) OriginalCapacity() float64 { return b.original }

// CurrentMaxCapacity returns the degraded capacity in joules at the given
// instant.
func (b *Battery) CurrentMaxCapacity(now simtime.Time) float64 {
	b.refresh(now)
	return b.original * (1 - b.fade)
}

// Stored returns the energy currently stored, in joules.
func (b *Battery) Stored() float64 { return b.stored }

// SoC returns the state of charge as a fraction of the ORIGINAL capacity,
// the paper's Sec. II-C definition (used by the degradation model).
func (b *Battery) SoC() float64 { return b.soc() }

func (b *Battery) soc() float64 { return b.stored / b.original }

// Headroom returns how much more energy the battery would accept right
// now, given theta and the degraded capacity.
func (b *Battery) Headroom(now simtime.Time) float64 {
	limit := b.chargeLimit * b.CurrentMaxCapacity(now)
	return max(0, limit-b.stored)
}

// Charge stores up to the given energy, returning the amount actually
// accepted after applying the theta limit and the degraded capacity.
func (b *Battery) Charge(now simtime.Time, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	accepted := min(joules, b.Headroom(now))
	if accepted <= 0 {
		return 0
	}
	b.stored += accepted
	b.record(now, +1)
	return accepted
}

// Discharge draws up to the given energy, returning the amount actually
// supplied (less than requested if the battery runs empty).
func (b *Battery) Discharge(now simtime.Time, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	supplied := min(joules, b.stored)
	if supplied <= 0 {
		return 0
	}
	b.stored -= supplied
	b.record(now, -1)
	return supplied
}

// CanSupply reports whether the battery currently stores at least the
// given energy.
func (b *Battery) CanSupply(joules float64) bool { return b.stored >= joules }

// record pushes the post-operation SoC into the ground-truth tracker and
// logs a reportable transition when the charge/discharge direction flips.
func (b *Battery) record(now simtime.Time, dir int) {
	soc := b.soc()
	b.tracker.Push(soc)
	if b.lastDir != 0 && dir != b.lastDir {
		b.transitions = append(b.transitions, Transition{At: now, SoC: soc})
	}
	b.lastDir = dir
}

// DrainTransitions returns the direction-change transitions recorded
// since the previous call and clears the pending list. The node appends
// these to its next uplink packet.
func (b *Battery) DrainTransitions() []Transition {
	t := b.transitions
	b.transitions = nil
	return t
}

// PendingTransitions returns how many transitions await reporting.
func (b *Battery) PendingTransitions() int { return len(b.transitions) }

// refresh recomputes the cached capacity fade if the battery aged since
// the last computation, clamping stored energy to the shrunken capacity.
func (b *Battery) refresh(now simtime.Time) {
	age := simtime.Duration(now)
	if age <= b.fadeAge {
		return
	}
	b.fade = b.tracker.Degradation(age)
	b.fadeAge = age
	if maxCap := b.original * (1 - b.fade); b.stored > maxCap {
		b.stored = maxCap
	}
}

// Degradation returns the ground-truth capacity fade at the given instant.
func (b *Battery) Degradation(now simtime.Time) float64 {
	b.refresh(now)
	return b.fade
}

// Damage returns the full ground-truth degradation breakdown.
func (b *Battery) Damage(now simtime.Time) Breakdown {
	return b.tracker.Damage(simtime.Duration(now))
}

// AtEoL reports whether the battery reached its end of life (capacity
// fade at or beyond the model's threshold).
func (b *Battery) AtEoL(now simtime.Time) bool {
	return b.Degradation(now) >= b.model.EoLThreshold
}

// Model returns the degradation model of this battery.
func (b *Battery) Model() Model { return b.model }
