package battery

import (
	"fmt"

	"repro/internal/simtime"
)

// Transition is one charge<->discharge direction change of a battery: the
// compressed SoC-trace sample that a node piggy-backs on its next data
// packet (Sec. III-B, "Overhead of sharing battery trace").
type Transition struct {
	// At is when the direction changed.
	At simtime.Time
	// SoC is the state of charge at the transition, as a fraction of the
	// original capacity.
	SoC float64
}

// Battery is the software-defined rechargeable battery of one node: it
// tracks stored energy, enforces the protocol's charge limit theta,
// accumulates its own ground-truth SoC history for degradation
// accounting, and records the direction-change transitions that the node
// reports to the gateway.
//
// Battery is not safe for concurrent use; in the simulator each battery
// belongs to exactly one node.
type Battery struct {
	model    Model
	tempC    float64
	original float64 // original maximum capacity, joules
	stored   float64 // current stored energy, joules
	tracker  *Tracker

	fade    float64 // cached capacity-fade fraction in [0,1)
	fadeAge simtime.Duration

	chargeLimit float64 // theta: max stored energy as fraction of current max capacity

	lastDir     int // +1 charging, -1 discharging
	transitions []Transition
}

// New returns a battery with the given original capacity in joules and
// initial state of charge (fraction of original capacity), at a fixed
// internal temperature in Celsius.
func New(model Model, capacityJ, initialSoC, tempC float64) (*Battery, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if capacityJ <= 0 {
		return nil, fmt.Errorf("battery: capacity %v J must be positive", capacityJ)
	}
	if initialSoC < 0 || initialSoC > 1 {
		return nil, fmt.Errorf("battery: initial SoC %v outside [0,1]", initialSoC)
	}
	b := &Battery{
		model:       model,
		tempC:       tempC,
		original:    capacityJ,
		stored:      initialSoC * capacityJ,
		tracker:     NewTracker(model, tempC),
		chargeLimit: 1,
	}
	b.tracker.Push(b.soc())
	return b, nil
}

// SetChargeLimit sets theta: the maximum energy the battery is allowed to
// store, as a fraction of its current maximum capacity. The paper's H-50
// uses 0.5; plain LoRaWAN uses 1. Values are clamped to [0,1]. Any excess
// already stored is not shed; it simply stops accepting charge.
func (b *Battery) SetChargeLimit(theta float64) {
	b.chargeLimit = min(1, max(0, theta))
}

// ChargeLimit returns the configured theta.
func (b *Battery) ChargeLimit() float64 { return b.chargeLimit }

// OriginalCapacity returns the as-new capacity in joules.
func (b *Battery) OriginalCapacity() float64 { return b.original }

// CurrentMaxCapacity returns the degraded capacity in joules at the given
// instant.
func (b *Battery) CurrentMaxCapacity(now simtime.Time) float64 {
	b.refresh(now)
	return b.original * (1 - b.fade)
}

// Stored returns the energy currently stored, in joules.
func (b *Battery) Stored() float64 { return b.stored }

// SoC returns the state of charge as a fraction of the ORIGINAL capacity,
// the paper's Sec. II-C definition (used by the degradation model).
func (b *Battery) SoC() float64 { return b.soc() }

func (b *Battery) soc() float64 { return b.stored / b.original }

// Headroom returns how much more energy the battery would accept right
// now, given theta and the degraded capacity.
func (b *Battery) Headroom(now simtime.Time) float64 {
	limit := b.chargeLimit * b.CurrentMaxCapacity(now)
	return max(0, limit-b.stored)
}

// Charge stores up to the given energy, returning the amount actually
// accepted after applying the theta limit and the degraded capacity.
func (b *Battery) Charge(now simtime.Time, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	accepted := min(joules, b.Headroom(now))
	if accepted <= 0 {
		return 0
	}
	b.stored += accepted
	b.record(now, +1)
	return accepted
}

// Discharge draws up to the given energy, returning the amount actually
// supplied (less than requested if the battery runs empty).
func (b *Battery) Discharge(now simtime.Time, joules float64) float64 {
	if joules <= 0 {
		return 0
	}
	supplied := min(joules, b.stored)
	if supplied <= 0 {
		return 0
	}
	b.stored -= supplied
	b.record(now, -1)
	return supplied
}

// CanSupply reports whether the battery currently stores at least the
// given energy.
func (b *Battery) CanSupply(joules float64) bool { return b.stored >= joules }

// DischargeRun draws step joules per sample for count consecutive
// samples — the node integrator's idle night span, one sample per
// minute — leaving every observable (stored energy, SoC-trace counter
// state, transitions, sample count) exactly as count sequential
// Discharge(_, step) calls would. The stored-energy updates run the
// identical one-subtraction-per-sample chain (never a summed batch,
// which would re-associate), but once the counter is mid-run in the
// falling direction the per-sample SoC pushes collapse via
// Counter.ExtendRun: interior samples of a strictly decreasing run are
// never turning points, record no transitions, and cannot flip the
// direction, so only the final extremum matters.
//
// now is the instant of the run's first sample. It is only ever used
// for transition timestamps, and a run can record at most one
// transition — at its first supplying sample, before the fast path
// engages — so the single instant reproduces the per-call path's
// timestamps exactly.
func (b *Battery) DischargeRun(now simtime.Time, step float64, count int) {
	for count > 0 {
		c := &b.tracker.counter
		if c.dir == -1 && b.lastDir == -1 && b.stored > 0 && step > 0 {
			// Mid-run: every further supplying sample strictly lowers the
			// SoC (the stored-energy chain is strictly decreasing and
			// division by the positive capacity is monotone), continuing
			// the falling run until the battery empties; samples after
			// that supply nothing and push nothing.
			k := 0
			for i := 0; i < count; i++ {
				supplied := min(step, b.stored)
				if supplied <= 0 {
					break
				}
				b.stored -= supplied
				k++
			}
			c.ExtendRun(b.soc(), k)
			return
		}
		// First sample (or an empty/degenerate battery): the full path
		// handles direction flips, transition recording, and run
		// establishment. At most one supplying sample lands here — it
		// leaves both direction markers falling — so the loop re-tests
		// the fast path immediately after.
		b.Discharge(now, step)
		count--
	}
}

// ChargeRun commits a run of consecutive full-accept charging samples in
// one step: storedJ is the stored energy after the run and k is the
// number of samples, leaving every observable (stored energy, SoC-trace
// counter state, transitions, sample count) exactly as k sequential
// full-accepting Charge calls would. The caller — the node integrator's
// slot-level charging span — owns the preconditions:
//
//   - the counter is mid-run in the rising direction (a prior accepted
//     Charge/ChargeProven at this instant's revision established it);
//   - storedJ is the result of the identical one-addition-per-sample
//     chain stored += net_i starting from the current stored energy,
//     with every net_i > 0 (so the chain is non-decreasing — float
//     addition of a positive term never decreases — and every interior
//     SoC lies between the current extremum and the final one, ordered
//     in the established direction with equal neighbours permitted,
//     exactly ExtendRun's contract);
//   - every prefix of the chain stays at or below a live
//     FullAcceptLimit, so none of the replaced Charge calls would have
//     clamped or partially accepted.
//
// Interior samples of a non-decreasing run are never turning points,
// record no transitions, and cannot flip the direction, so only the
// final extremum matters; the collapsed pushes are Counter.ExtendRun's
// exact contract. Like ChargeProven, the skipped refresh mutates only
// the pure fade cache, which any later reader recomputes identically.
// ChargeRun does not re-check the chain; it returns the SoC-history
// revision after the commit (and commits nothing when the direction
// preconditions do not hold — the caller falls back to the per-minute
// path on a false second result).
func (b *Battery) ChargeRun(storedJ float64, k int) (uint64, bool) {
	c := &b.tracker.counter
	if c.dir != +1 || b.lastDir != +1 {
		return c.rev, false
	}
	b.stored = storedJ
	c.ExtendRun(b.soc(), k)
	return c.rev, true
}

// record pushes the post-operation SoC into the ground-truth tracker and
// logs a reportable transition when the charge/discharge direction flips.
func (b *Battery) record(now simtime.Time, dir int) {
	soc := b.soc()
	b.tracker.Push(soc)
	if b.lastDir != 0 && dir != b.lastDir {
		if b.transitions == nil {
			// Skip the 1→2→4→8 growth chain every battery would walk.
			b.transitions = make([]Transition, 0, 8)
		}
		b.transitions = append(b.transitions, Transition{At: now, SoC: soc})
	}
	b.lastDir = dir
}

// DrainTransitions returns the direction-change transitions recorded
// since the previous call and clears the pending list. The node appends
// these to its next uplink packet.
func (b *Battery) DrainTransitions() []Transition {
	t := b.transitions
	b.transitions = nil
	return t
}

// AppendTransitions appends the pending transitions to dst, clears the
// pending list, and returns dst. Unlike DrainTransitions it keeps the
// internal buffer's capacity, so a caller that copies the values out
// anyway (the node's report queue) drains without allocating once the
// buffer has grown to its steady-state size.
func (b *Battery) AppendTransitions(dst []Transition) []Transition {
	if need := len(dst) + len(b.transitions); cap(dst) < need {
		nd := make([]Transition, len(dst), max(2*need, 8))
		copy(nd, dst)
		dst = nd
	}
	dst = append(dst, b.transitions...)
	b.transitions = b.transitions[:0]
	return dst
}

// ChargeNoopUntil reports whether, with the battery otherwise untouched,
// every Charge call at an instant in (now, end] would be a strict no-op:
// zero headroom throughout the span and no capacity clamp moving the
// stored energy. The node integrator uses this to skip the per-minute
// Charge calls of an at-capacity span entirely — bit-identical, because
// a rejected Charge mutates nothing but the pure fade cache.
//
// The proof obligations, both resting on fade being non-decreasing in
// age for a FIXED SoC history (calendar aging is monotone in time and
// cycle aging is constant while nothing is pushed):
//
//   - Headroom stays zero: with the history frozen, the smallest fade
//     in the span is the one at now, so chargeLimit·original·(1−fade(now))
//     bounds the true limit at every later instant. If even that bound
//     does not exceed stored, headroom is zero everywhere. The fade must
//     come from the live tracker, not the battery's cache: arming right
//     after a partial accept means that Charge pushed a sample AFTER the
//     cache was last refreshed, and the new sample can lower the
//     cycle-mean SoC — and with it the fade — at the next minute.
//   - No clamp: refresh clamps stored to original·(1−fade(t)); the
//     tightest clamp in the span is at end, so checking stored against
//     the end-of-span capacity covers every earlier instant. The queries
//     go through the tracker directly — a pure memoized function — so
//     the battery's own fade cache is left exactly as the skipped
//     per-minute path would leave it for any later reader (refresh
//     recomputes from the tracker whenever a newer age is queried).
//
// Any push invalidates the answer — a Discharge, a Charge that accepts
// energy, or any out-of-band sample; callers must watch CounterRev and
// re-query when it moves.
func (b *Battery) ChargeNoopUntil(now, end simtime.Time) bool {
	if b.chargeLimit*(b.original*(1-b.tracker.Degradation(simtime.Duration(now)))) > b.stored {
		return false
	}
	return b.stored <= b.original*(1-b.tracker.Degradation(simtime.Duration(end)))
}

// FullAcceptLimit returns a stored-energy level L (joules) such that,
// until end, any sequence of positive Charge calls that keeps the
// stored energy at or below L is guaranteed to be accepted in full with
// no capacity clamp — so each such Charge may be replaced by
// ChargeProven, skipping the per-minute degradation query entirely. The
// second result is false when the battery is already at or above L (no
// useful span exists).
//
// The proof: every charge in the span pushes a strictly larger SoC — a
// monotone run — so Tracker.DegradationCeiling bounds the fade at every
// instant t <= end. With stored+joules <= L = theta·original·(1−ceiling):
//
//   - refresh(t) cannot clamp: stored <= L <= original·(1−fade(t));
//   - Headroom(t) = theta·original·(1−fade(t)) − stored >= joules, so
//     accepted == joules exactly;
//   - the skipped refresh mutates only the pure fade cache, which any
//     later reader recomputes identically from the tracker.
//
// The guarantee is conditional on the battery's SoC history not gaining
// a turning point mid-span; callers must watch CounterRev and fall back
// to plain Charge when it moves unexpectedly (any Discharge, or any
// push outside the proven calls).
func (b *Battery) FullAcceptLimit(end simtime.Time) (float64, bool) {
	limit := b.chargeLimit * b.original * (1 - b.tracker.DegradationCeiling(simtime.Duration(end)))
	return limit, limit > b.stored
}

// ChargeProven charges joules whose full acceptance a prior
// FullAcceptLimit proof guarantees, skipping the degradation refresh a
// plain Charge would run. It returns the SoC-history revision after the
// push so the caller can detect interleaved battery activity. joules
// must be positive and stored+joules must not exceed the proven limit;
// ChargeProven does not re-check.
func (b *Battery) ChargeProven(now simtime.Time, joules float64) uint64 {
	b.stored += joules
	b.record(now, +1)
	return b.tracker.counter.rev
}

// CounterRev returns the battery's SoC-history revision: it moves on
// every sample that may change pending cycles. FullAcceptLimit spans
// are valid only while the revision matches the proven sequence.
func (b *Battery) CounterRev() uint64 { return b.tracker.counter.rev }

// PendingTransitions returns how many transitions await reporting.
func (b *Battery) PendingTransitions() int { return len(b.transitions) }

// refresh recomputes the cached capacity fade if the battery aged since
// the last computation, clamping stored energy to the shrunken capacity.
func (b *Battery) refresh(now simtime.Time) {
	age := simtime.Duration(now)
	if age <= b.fadeAge {
		return
	}
	b.fade = b.tracker.Degradation(age)
	b.fadeAge = age
	if maxCap := b.original * (1 - b.fade); b.stored > maxCap {
		b.stored = maxCap
	}
}

// Degradation returns the ground-truth capacity fade at the given instant.
func (b *Battery) Degradation(now simtime.Time) float64 {
	b.refresh(now)
	return b.fade
}

// Damage returns the full ground-truth degradation breakdown.
func (b *Battery) Damage(now simtime.Time) Breakdown {
	return b.tracker.Damage(simtime.Duration(now))
}

// AtEoL reports whether the battery reached its end of life (capacity
// fade at or beyond the model's threshold).
func (b *Battery) AtEoL(now simtime.Time) bool {
	return b.Degradation(now) >= b.model.EoLThreshold
}

// Model returns the degradation model of this battery.
func (b *Battery) Model() Model { return b.model }
