package battery

import (
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

func newTestBattery(t *testing.T, capacityJ, initialSoC float64) *Battery {
	t.Helper()
	b, err := New(DefaultModel(), capacityJ, initialSoC, 25)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	model := DefaultModel()
	if _, err := New(model, 0, 0.5, 25); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(model, 10, -0.1, 25); err == nil {
		t.Error("negative SoC should fail")
	}
	if _, err := New(model, 10, 1.1, 25); err == nil {
		t.Error("SoC > 1 should fail")
	}
	bad := model
	bad.K1 = 0
	if _, err := New(bad, 10, 0.5, 25); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestChargeDischargeAccounting(t *testing.T) {
	b := newTestBattery(t, 10, 0.5)
	if got := b.Stored(); got != 5 {
		t.Fatalf("Stored = %v, want 5", got)
	}

	if got := b.Charge(0, 2); got != 2 {
		t.Errorf("Charge(2) accepted %v, want 2", got)
	}
	if got := b.SoC(); !almostEqual(got, 0.7, 1e-12) {
		t.Errorf("SoC = %v, want 0.7", got)
	}

	if got := b.Discharge(simtime.Time(simtime.Minute), 3); got != 3 {
		t.Errorf("Discharge(3) supplied %v, want 3", got)
	}
	if got := b.Stored(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Stored = %v, want 4", got)
	}

	// Over-discharge is clamped.
	if got := b.Discharge(simtime.Time(2*simtime.Minute), 100); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Discharge(100) supplied %v, want 4", got)
	}
	if got := b.Stored(); got != 0 {
		t.Errorf("Stored = %v, want 0", got)
	}

	// Zero and negative amounts are no-ops.
	if got := b.Charge(0, -1); got != 0 {
		t.Errorf("Charge(-1) = %v, want 0", got)
	}
	if got := b.Discharge(0, 0); got != 0 {
		t.Errorf("Discharge(0) = %v, want 0", got)
	}
}

func TestChargeLimitTheta(t *testing.T) {
	b := newTestBattery(t, 10, 0.3)
	b.SetChargeLimit(0.5) // the paper's H-50

	accepted := b.Charge(0, 5)
	if !almostEqual(accepted, 2, 1e-9) {
		t.Errorf("Charge accepted %v, want 2 (up to theta=0.5)", accepted)
	}
	if got := b.SoC(); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("SoC = %v, want capped at 0.5", got)
	}
	if got := b.Charge(0, 1); got != 0 {
		t.Errorf("Charge at cap accepted %v, want 0", got)
	}

	// Theta values are clamped to [0,1].
	b.SetChargeLimit(2)
	if got := b.ChargeLimit(); got != 1 {
		t.Errorf("ChargeLimit = %v, want 1", got)
	}
	b.SetChargeLimit(-1)
	if got := b.ChargeLimit(); got != 0 {
		t.Errorf("ChargeLimit = %v, want 0", got)
	}
}

func TestCanSupplyAndHeadroom(t *testing.T) {
	b := newTestBattery(t, 10, 0.4)
	if !b.CanSupply(4) {
		t.Error("CanSupply(4) should be true")
	}
	if b.CanSupply(4.0001) {
		t.Error("CanSupply(4.0001) should be false")
	}
	b.SetChargeLimit(0.6)
	if got := b.Headroom(0); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Headroom = %v, want 2", got)
	}
}

func TestTransitionsRecordedOnDirectionChange(t *testing.T) {
	b := newTestBattery(t, 10, 0.5)

	b.Charge(simtime.Time(1*simtime.Minute), 1)    // charging
	b.Charge(simtime.Time(2*simtime.Minute), 1)    // still charging: no transition
	b.Discharge(simtime.Time(3*simtime.Minute), 2) // flip: transition
	b.Discharge(simtime.Time(4*simtime.Minute), 1) // still discharging
	b.Charge(simtime.Time(5*simtime.Minute), 1)    // flip: transition

	got := b.DrainTransitions()
	if len(got) != 2 {
		t.Fatalf("transitions = %+v, want 2", got)
	}
	if got[0].At != simtime.Time(3*simtime.Minute) {
		t.Errorf("first transition at %v, want minute 3", got[0].At)
	}
	if !almostEqual(got[0].SoC, 0.5, 1e-9) {
		t.Errorf("first transition SoC = %v, want 0.5 (after the discharge)", got[0].SoC)
	}
	if got[1].At != simtime.Time(5*simtime.Minute) {
		t.Errorf("second transition at %v, want minute 5", got[1].At)
	}

	if b.PendingTransitions() != 0 {
		t.Error("DrainTransitions should clear the pending list")
	}
	if more := b.DrainTransitions(); len(more) != 0 {
		t.Errorf("second drain returned %v", more)
	}
}

func TestDegradationGrowsWithAgeAndSoC(t *testing.T) {
	high := newTestBattery(t, 10, 1.0)
	low := newTestBattery(t, 10, 0.3)

	year := simtime.Time(simtime.Year)
	dHigh := high.Degradation(year)
	dLow := low.Degradation(year)
	if dHigh <= dLow {
		t.Errorf("battery resting at SoC 1.0 should degrade faster: %v vs %v", dHigh, dLow)
	}

	d1 := high.Degradation(year)
	d2 := high.Degradation(year.Add(simtime.Year))
	if d2 <= d1 {
		t.Errorf("degradation must grow with age: %v -> %v", d1, d2)
	}
}

func TestCapacityFadeShrinksMax(t *testing.T) {
	b := newTestBattery(t, 10, 1.0)
	fiveYears := simtime.Time(5 * simtime.Year)
	maxCap := b.CurrentMaxCapacity(fiveYears)
	if maxCap >= 10 {
		t.Errorf("CurrentMaxCapacity after 5 years = %v, want < 10", maxCap)
	}
	// Stored energy is clamped to the shrunken capacity.
	if b.Stored() > maxCap {
		t.Errorf("Stored %v exceeds degraded capacity %v", b.Stored(), maxCap)
	}
}

func TestAtEoL(t *testing.T) {
	b := newTestBattery(t, 10, 1.0)
	if b.AtEoL(simtime.Time(simtime.Year)) {
		t.Error("battery should not be at EoL after 1 year")
	}
	// A battery resting at full charge reaches 20% fade within ~8 years.
	if !b.AtEoL(simtime.Time(12 * simtime.Year)) {
		t.Error("battery should be at EoL after 12 years at SoC 1.0")
	}
}

func TestDamageBreakdownShape(t *testing.T) {
	// Fig. 2 of the paper: for a LoRa-like duty cycle (shallow daily
	// cycles), calendar aging dominates cycle aging.
	b := newTestBattery(t, 10, 0.9)
	now := simtime.Time(0)
	for day := 0; day < 365; day++ {
		now = simtime.Time(day) * simtime.Time(simtime.Day)
		b.Discharge(now, 2)                   // overnight drain
		b.Charge(now.Add(12*simtime.Hour), 2) // solar recharge
	}
	bd := b.Damage(now)
	if bd.Cycle <= 0 {
		t.Fatal("expected non-zero cycle aging")
	}
	if bd.Calendar <= bd.Cycle {
		t.Errorf("calendar aging (%v) should dominate cycle aging (%v)", bd.Calendar, bd.Cycle)
	}
	if !almostEqual(bd.Linear, bd.Calendar+bd.Cycle, 1e-15) {
		t.Error("Linear must equal Calendar + Cycle")
	}
	if bd.Total < bd.Linear {
		t.Error("SEI transform should amplify small linear damage")
	}
	if bd.Cycles < 300 {
		t.Errorf("expected ~365 counted cycles, got %v", bd.Cycles)
	}
	if bd.MeanSoC <= 0.5 || bd.MeanSoC > 1 {
		t.Errorf("mean SoC = %v, want in (0.5, 1]", bd.MeanSoC)
	}
}

func TestTrackerMeanSoCFallback(t *testing.T) {
	tr := NewTracker(DefaultModel(), 25)
	tr.Push(0.8)
	bd := tr.Damage(simtime.Year)
	if !almostEqual(bd.MeanSoC, 0.8, 1e-12) {
		t.Errorf("with no cycles, mean SoC should fall back to resting SoC: %v", bd.MeanSoC)
	}
	if bd.Cycle != 0 {
		t.Errorf("cycle aging with no cycles = %v, want 0", bd.Cycle)
	}
	if bd.Calendar <= 0 {
		t.Error("calendar aging should accrue regardless of cycling")
	}
}

// TestDischargeRunMatchesSequentialDischarges pins the collapsed run
// path bit-for-bit against count sequential Discharge calls across
// randomized mixed histories: every observable — stored energy, sample
// count, transitions, and all later degradation queries — must match
// exactly, including runs that empty the battery mid-way, runs entered
// right after a charge (direction flip at the first sample), and runs
// on a battery that never moved (no established direction).
func TestDischargeRunMatchesSequentialDischarges(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xd15c, 0x4a11))
	for trial := 0; trial < 200; trial++ {
		cap := 50 + rng.Float64()*100
		soc := rng.Float64()
		ref := newTestBattery(t, cap, soc)
		run := newTestBattery(t, cap, soc)
		now := simtime.Time(simtime.Hour)

		// Random warm-up history, shared verbatim.
		for i, ops := 0, rng.IntN(6); i < ops; i++ {
			j := rng.Float64() * 10
			if rng.IntN(2) == 0 {
				ref.Charge(now, j)
				run.Charge(now, j)
			} else {
				ref.Discharge(now, j)
				run.Discharge(now, j)
			}
			now += simtime.Time(simtime.Minute)
		}

		step := []float64{0.05, 1.5, cap}[rng.IntN(3)] // tiny, typical, instantly-emptying
		count := 1 + rng.IntN(900)
		for i := 0; i < count; i++ {
			ref.Discharge(now+simtime.Time(int64(i)*int64(simtime.Minute)), step)
		}
		run.DischargeRun(now, step, count)

		if ref.Stored() != run.Stored() {
			t.Fatalf("trial %d: stored %v != %v", trial, ref.Stored(), run.Stored())
		}
		if ref.tracker.Samples() != run.tracker.Samples() {
			t.Fatalf("trial %d: samples %d != %d", trial, ref.tracker.Samples(), run.tracker.Samples())
		}
		age := simtime.Duration(now) + 2*simtime.Day
		if refD, runD := ref.tracker.Damage(age), run.tracker.Damage(age); refD != runD {
			t.Fatalf("trial %d: damage %+v != %+v", trial, refD, runD)
		}
		refTr, runTr := ref.DrainTransitions(), run.DrainTransitions()
		if len(refTr) != len(runTr) {
			t.Fatalf("trial %d: transitions %v != %v", trial, refTr, runTr)
		}
		for i := range refTr {
			if refTr[i] != runTr[i] {
				t.Fatalf("trial %d: transition %d: %+v != %+v", trial, i, refTr[i], runTr[i])
			}
		}
		// The collapsed run must leave the counter mid-run exactly like
		// the sequential path: a follow-up flip and query still agree.
		ref.Charge(now, 3)
		run.Charge(now, 3)
		if refD, runD := ref.tracker.Damage(age+simtime.Hour), run.tracker.Damage(age+simtime.Hour); refD != runD {
			t.Fatalf("trial %d: post-flip damage %+v != %+v", trial, refD, runD)
		}
	}
}

func TestChargeRunMatchesSequentialCharges(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc4a6, 0x2f01))
	for trial := 0; trial < 200; trial++ {
		cap := 200 + rng.Float64()*200
		soc := 0.1 + rng.Float64()*0.3
		ref := newTestBattery(t, cap, soc)
		run := newTestBattery(t, cap, soc)
		now := simtime.Time(simtime.Hour)

		// Establish the rising run ChargeRun requires: two accepted
		// charges set both the counter direction and the battery's last
		// direction to +1, exactly how the node integrator arms a span.
		for i := 0; i < 2; i++ {
			ref.Charge(now, 1.5)
			run.Charge(now, 1.5)
			now += simtime.Time(simtime.Minute)
		}

		count := 1 + rng.IntN(600)
		nets := make([]float64, count)
		for i := range nets {
			nets[i] = 0.01 + rng.Float64()*0.05 // tiny vs headroom: all full-accept
		}
		// The caller's chain: one addition per sample, in order — the
		// same float operation sequence the sequential Charges perform.
		stored := run.Stored()
		for _, n := range nets {
			stored += n
		}
		for i, n := range nets {
			ref.Charge(now+simtime.Time(int64(i)*int64(simtime.Minute)), n)
		}
		if _, ok := run.ChargeRun(stored, count); !ok {
			t.Fatalf("trial %d: ChargeRun refused an armed rising run", trial)
		}

		if ref.Stored() != run.Stored() {
			t.Fatalf("trial %d: stored %v != %v", trial, ref.Stored(), run.Stored())
		}
		if ref.tracker.Samples() != run.tracker.Samples() {
			t.Fatalf("trial %d: samples %d != %d", trial, ref.tracker.Samples(), run.tracker.Samples())
		}
		age := simtime.Duration(now) + 2*simtime.Day
		if refD, runD := ref.tracker.Damage(age), run.tracker.Damage(age); refD != runD {
			t.Fatalf("trial %d: damage %+v != %+v", trial, refD, runD)
		}
		if refTr, runTr := ref.DrainTransitions(), run.DrainTransitions(); len(refTr) != len(runTr) {
			t.Fatalf("trial %d: transitions %v != %v", trial, refTr, runTr)
		}
		// The collapsed run must leave the counter mid-run exactly like
		// the sequential path: a direction flip afterwards still agrees,
		// including the transition it reports.
		ref.Discharge(now, 3)
		run.Discharge(now, 3)
		refTr, runTr := ref.DrainTransitions(), run.DrainTransitions()
		if len(refTr) != 1 || len(runTr) != 1 || refTr[0] != runTr[0] {
			t.Fatalf("trial %d: post-flip transitions %v != %v", trial, refTr, runTr)
		}
		if refD, runD := ref.tracker.Damage(age+simtime.Hour), run.tracker.Damage(age+simtime.Hour); refD != runD {
			t.Fatalf("trial %d: post-flip damage %+v != %+v", trial, refD, runD)
		}
	}
}

func TestChargeRunRefusesWrongDirection(t *testing.T) {
	b := newTestBattery(t, 100, 0.5)
	now := simtime.Time(simtime.Hour)
	// Fresh battery: no established direction yet.
	if _, ok := b.ChargeRun(60, 3); ok {
		t.Fatal("ChargeRun committed with no established direction")
	}
	b.Charge(now, 2)
	b.Discharge(now, 5) // falling run
	before := b.Stored()
	samples := b.tracker.Samples()
	if _, ok := b.ChargeRun(before+1, 1); ok {
		t.Fatal("ChargeRun committed against a falling run")
	}
	if b.Stored() != before || b.tracker.Samples() != samples {
		t.Fatal("refused ChargeRun mutated the battery")
	}
}
