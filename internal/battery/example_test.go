package battery_test

import (
	"fmt"

	"repro/internal/battery"
	"repro/internal/simtime"
)

// ExampleRainflow counts the charge-discharge cycles of a SoC trace:
// a small excursion nested in a deep one yields one full shallow cycle
// plus two half cycles of the deep swing.
func ExampleRainflow() {
	trace := []float64{0.2, 0.9, 0.5, 0.6, 0.2}
	for _, c := range battery.Rainflow(trace) {
		fmt.Printf("range %.1f mean %.2f count %.1f\n", c.Range, c.Mean, c.Count)
	}
	// Output:
	// range 0.1 mean 0.55 count 1.0
	// range 0.7 mean 0.55 count 0.5
	// range 0.7 mean 0.55 count 0.5
}

// ExampleModel_PredictCalendarLifespan reproduces the paper's headline:
// capping the battery near half charge stretches its calendar life from
// ~8 to ~13+ years.
func ExampleModel_PredictCalendarLifespan() {
	m := battery.DefaultModel()
	full, _ := m.PredictCalendarLifespan(25, 0.91) // LoRaWAN keeps it nearly full
	capped, _ := m.PredictCalendarLifespan(25, 0.45)
	fmt.Printf("near-full: %.1f years\n", full.Days()/365)
	fmt.Printf("theta-capped: %.1f years\n", capped.Days()/365)
	// Output:
	// near-full: 8.2 years
	// theta-capped: 13.2 years
}

// ExampleBattery shows the state machine: theta capping, transitions,
// and degradation queries.
func ExampleBattery() {
	b, _ := battery.New(battery.DefaultModel(), 10 /* J */, 0.4, 25)
	b.SetChargeLimit(0.5) // the paper's H-50

	accepted := b.Charge(simtime.Time(simtime.Hour), 3)
	fmt.Printf("accepted %.0f J, SoC %.2f\n", accepted, b.SoC())

	b.Discharge(simtime.Time(2*simtime.Hour), 2)
	fmt.Printf("transitions pending: %d\n", b.PendingTransitions())
	// Output:
	// accepted 1 J, SoC 0.50
	// transitions pending: 1
}
