package battery

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestEncodeDecodeTransition(t *testing.T) {
	window := simtime.Minute
	packetAt := simtime.Time(100 * simtime.Minute)
	tr := Transition{At: simtime.Time(97 * simtime.Minute), SoC: 0.42}

	r := EncodeTransition(tr, packetAt, window)
	if r.WindowsAgo != 3 {
		t.Errorf("WindowsAgo = %d, want 3", r.WindowsAgo)
	}
	got := r.Decode(packetAt, window)
	if got.At != tr.At {
		t.Errorf("decoded time %v, want %v", got.At, tr.At)
	}
	if math.Abs(got.SoC-tr.SoC) > 1.0/math.MaxUint16 {
		t.Errorf("decoded SoC %v, want %v within quantization", got.SoC, tr.SoC)
	}
}

func TestEncodeTransitionClamps(t *testing.T) {
	window := simtime.Minute
	packetAt := simtime.Time(10 * simtime.Minute)

	// A transition "in the future" (clock skew) encodes as zero windows ago.
	future := Transition{At: packetAt.Add(simtime.Hour), SoC: 0.5}
	if r := EncodeTransition(future, packetAt, window); r.WindowsAgo != 0 {
		t.Errorf("future transition WindowsAgo = %d, want 0", r.WindowsAgo)
	}

	// Very old transitions saturate.
	old := Transition{At: 0, SoC: 0.5}
	farFuture := simtime.Time(100000 * simtime.Minute)
	if r := EncodeTransition(old, farFuture, window); r.WindowsAgo != math.MaxUint16 {
		t.Errorf("old transition WindowsAgo = %d, want saturation", r.WindowsAgo)
	}

	// Out-of-range SoC is clamped.
	if r := EncodeTransition(Transition{At: 0, SoC: 1.7}, 0, window); r.SoCQ != math.MaxUint16 {
		t.Errorf("SoC 1.7 quantized to %d, want max", r.SoCQ)
	}
	if r := EncodeTransition(Transition{At: 0, SoC: -0.2}, 0, window); r.SoCQ != 0 {
		t.Errorf("SoC -0.2 quantized to %d, want 0", r.SoCQ)
	}
}

// TestEncodeTransitionRetransmissionStable: a transition report carried
// by a retry packet sent at a later time must decode to the same
// window-aligned instant as the original, so the gateway's duplicate
// guard can recognize it. This holds because the offset is a difference
// of absolute window indices, not of raw times.
func TestEncodeTransitionRetransmissionStable(t *testing.T) {
	window := simtime.Minute
	tr := Transition{At: simtime.Time(97*simtime.Minute + 13*simtime.Second), SoC: 0.42}

	first := simtime.Time(100*simtime.Minute + 7*simtime.Second)
	decoded := EncodeTransition(tr, first, window).Decode(first, window)

	// Retries at arbitrary (non-window-aligned) later times.
	for _, delay := range []simtime.Duration{
		3 * simtime.Second,
		41 * simtime.Second,
		2*simtime.Minute + 59*simtime.Second,
		17 * simtime.Minute,
	} {
		retry := first.Add(delay)
		again := EncodeTransition(tr, retry, window).Decode(retry, window)
		if again != decoded {
			t.Errorf("retry at +%v decoded %+v, original %+v", delay, again, decoded)
		}
	}

	// The decoded instant is the start of the transition's window.
	if want := simtime.Time(97 * simtime.Minute); decoded.At != want {
		t.Errorf("decoded At = %v, want window start %v", decoded.At, want)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := func(raws []uint32) bool {
		reports := make([]Report, len(raws))
		for i, r := range raws {
			reports[i] = Report{WindowsAgo: uint16(r >> 16), SoCQ: uint16(r)}
		}
		data := MarshalReports(reports)
		if len(data) != len(reports)*ReportSize {
			return false
		}
		back, err := UnmarshalReports(data)
		if err != nil || len(back) != len(reports) {
			return false
		}
		for i := range back {
			if back[i] != reports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalReportsBadLength(t *testing.T) {
	if _, err := UnmarshalReports(make([]byte, 5)); err == nil {
		t.Error("length 5 should fail")
	}
	if got, err := UnmarshalReports(nil); err != nil || len(got) != 0 {
		t.Errorf("empty payload: %v, %v", got, err)
	}
}

// TestGatewayReconstructionAccuracy feeds a battery's quantized transition
// reports into a gateway-side tracker and checks the recomputed
// degradation tracks the ground truth closely (the paper's premise that
// 4-byte reports suffice).
func TestGatewayReconstructionAccuracy(t *testing.T) {
	b := newTestBattery(t, 10, 0.9)
	gw := NewTracker(DefaultModel(), 25)
	gw.Push(0.9)

	window := simtime.Minute
	var now simtime.Time
	for day := 0; day < 200; day++ {
		now = simtime.Time(day) * simtime.Time(simtime.Day)
		b.Discharge(now, 1.5+0.5*float64(day%3))
		b.Charge(now.Add(10*simtime.Hour), 3)
		// The node reports its transitions on its next packet.
		packetAt := now.Add(11 * simtime.Hour)
		for _, tr := range b.DrainTransitions() {
			report := EncodeTransition(tr, packetAt, window)
			gw.Push(report.Decode(packetAt, window).SoC)
		}
	}

	truth := b.Damage(now)
	est := gw.Damage(simtime.Duration(now))
	if truth.Total <= 0 {
		t.Fatal("expected non-zero ground-truth degradation")
	}
	relErr := math.Abs(est.Total-truth.Total) / truth.Total
	if relErr > 0.02 {
		t.Errorf("gateway estimate %v vs truth %v: relative error %.3f > 2%%", est.Total, truth.Total, relErr)
	}
}
