package battery

import (
	"math/rand/v2"
	"testing"

	"repro/internal/simtime"
)

// TestStressCacheMatchesModel: the memoized fast path must be
// bit-identical to the closed-form model at the pinned temperature.
func TestStressCacheMatchesModel(t *testing.T) {
	m := DefaultModel()
	for _, tempC := range []float64{0, 25, 40} {
		c := NewStressCache(m, tempC)
		if got, want := c.TempStress(), m.TempStress(tempC); got != want {
			t.Fatalf("TempStress(%v) = %v, want %v", tempC, got, want)
		}
		rng := rand.New(rand.NewPCG(7, 9))
		for i := 0; i < 200; i++ {
			elapsed := simtime.Duration(rng.Int64N(int64(10 * simtime.Year)))
			soc := rng.Float64()
			if i%3 == 0 {
				soc = 0.5 // repeat an operand to exercise the memo hit path
			}
			if got, want := c.CalendarAging(elapsed, soc), m.CalendarAging(elapsed, tempC, soc); got != want {
				t.Fatalf("CalendarAging(%v, %v) = %v, want %v", elapsed, soc, got, want)
			}
			raw := rng.Float64() * 3
			if got, want := c.CycleAgingRaw(raw), raw*m.K6*m.TempStress(tempC); got != want {
				t.Fatalf("CycleAgingRaw(%v) = %v, want %v", raw, got, want)
			}
		}
		if c.CalendarAging(-simtime.Hour, 0.5) != 0 {
			t.Error("negative elapsed should yield 0")
		}
	}
}

// TestAppendPendingMatchesPendingCycles: the allocation-free form must
// report exactly what the allocating form reports, and repeated calls
// must not corrupt the counter state.
func TestAppendPendingMatchesPendingCycles(t *testing.T) {
	var ref, reuse Counter
	rng := rand.New(rand.NewPCG(11, 13))
	var scratch []Cycle
	for i := 0; i < 500; i++ {
		v := rng.Float64()
		ref.Push(v)
		reuse.Push(v)
		want := ref.PendingCycles()
		scratch = reuse.AppendPending(scratch[:0])
		if len(want) != len(scratch) {
			t.Fatalf("sample %d: %d pending vs %d", i, len(scratch), len(want))
		}
		for j := range want {
			if want[j] != scratch[j] {
				t.Fatalf("sample %d cycle %d: %+v vs %+v", i, j, scratch[j], want[j])
			}
		}
		// Calling twice in a row must be idempotent.
		again := reuse.AppendPending(nil)
		if len(again) != len(want) {
			t.Fatalf("sample %d: second AppendPending returned %d cycles, want %d", i, len(again), len(want))
		}
	}
}

// TestTrackerDamageAllocationFree: the per-sample degradation query must
// not allocate in steady state (it runs once per simulated minute per
// node).
func TestTrackerDamageAllocationFree(t *testing.T) {
	tr := NewTracker(DefaultModel(), 25)
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 200; i++ {
		tr.Push(rng.Float64())
	}
	tr.Damage(simtime.Day) // warm up scratch
	allocs := testing.AllocsPerRun(100, func() {
		tr.Damage(30 * simtime.Day)
	})
	if allocs != 0 {
		t.Errorf("Damage allocates %v times per query, want 0", allocs)
	}
}
