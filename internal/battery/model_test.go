package battery

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("DefaultModel invalid: %v", err)
	}
}

func TestModelValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero K1", func(m *Model) { m.K1 = 0 }},
		{"K3 out of range", func(m *Model) { m.K3 = 1.5 }},
		{"negative K6", func(m *Model) { m.K6 = -1 }},
		{"alpha 0", func(m *Model) { m.AlphaSEI = 0 }},
		{"alpha 1", func(m *Model) { m.AlphaSEI = 1 }},
		{"kSEI 1", func(m *Model) { m.KSEI = 1 }},
		{"eol 0", func(m *Model) { m.EoLThreshold = 0 }},
		{"eol 1", func(m *Model) { m.EoLThreshold = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := DefaultModel()
			tt.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate() should fail")
			}
		})
	}
}

func TestTempStress(t *testing.T) {
	m := DefaultModel()
	if got := m.TempStress(m.K5); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TempStress at reference temp = %v, want 1", got)
	}
	if m.TempStress(40) <= 1 {
		t.Error("TempStress above reference should exceed 1")
	}
	if m.TempStress(0) >= 1 {
		t.Error("TempStress below reference should be under 1")
	}
}

func TestTempStressMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Restrict to physical temperatures.
		a = math.Mod(math.Abs(a), 80) - 20
		b = math.Mod(math.Abs(b), 80) - 20
		lo, hi := math.Min(a, b), math.Max(a, b)
		return m.TempStress(lo) <= m.TempStress(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCalendarAging(t *testing.T) {
	m := DefaultModel()
	if got := m.CalendarAging(0, 25, 0.5); got != 0 {
		t.Errorf("CalendarAging(0) = %v, want 0", got)
	}
	if got := m.CalendarAging(-simtime.Day, 25, 0.5); got != 0 {
		t.Errorf("CalendarAging(negative) = %v, want 0", got)
	}
	// Linear in elapsed time.
	year := m.CalendarAging(simtime.Year, 25, 0.5)
	twoYears := m.CalendarAging(2*simtime.Year, 25, 0.5)
	if !almostEqual(twoYears, 2*year, 1e-12) {
		t.Errorf("calendar aging not linear in time: %v vs 2*%v", twoYears, year)
	}
	// At reference SoC and temperature the aging equals K1 * t.
	want := m.K1 * simtime.Year.Seconds()
	if !almostEqual(year, want, 1e-15) {
		t.Errorf("calendar aging at reference = %v, want %v", year, want)
	}
	// Increasing in mean SoC: this is the mechanism behind theta capping.
	if m.CalendarAging(simtime.Year, 25, 0.9) <= m.CalendarAging(simtime.Year, 25, 0.5) {
		t.Error("calendar aging must increase with mean SoC")
	}
}

func TestCycleAging(t *testing.T) {
	m := DefaultModel()
	if got := m.CycleAging(nil, 25); got != 0 {
		t.Errorf("CycleAging(nil) = %v, want 0", got)
	}
	cycles := []Cycle{
		{Range: 0.5, Mean: 0.5, Count: 1},
		{Range: 0.2, Mean: 0.8, Count: 0.5},
	}
	want := (1*0.5*0.5 + 0.5*0.2*0.8) * m.K6 // temp stress 1 at 25 C
	if got := m.CycleAging(cycles, 25); !almostEqual(got, want, 1e-15) {
		t.Errorf("CycleAging = %v, want %v", got, want)
	}
}

func TestNonlinear(t *testing.T) {
	m := DefaultModel()
	if got := m.Nonlinear(0); got != 0 {
		t.Errorf("Nonlinear(0) = %v, want 0", got)
	}
	if got := m.Nonlinear(-1); got != 0 {
		t.Errorf("Nonlinear(-1) = %v, want 0", got)
	}
	// SEI film: small linear damage maps to a fast early fade.
	if got := m.Nonlinear(0.05); got <= 0.05 {
		t.Errorf("Nonlinear(0.05) = %v, should exceed linear due to SEI", got)
	}
	// Asymptote at 1 (within float64 rounding).
	if got := m.Nonlinear(100); got > 1 || got < 0.99 {
		t.Errorf("Nonlinear(100) = %v, want ~1", got)
	}
}

func TestNonlinearMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		a = math.Mod(math.Abs(a), 2)
		b = math.Mod(math.Abs(b), 2)
		lo, hi := math.Min(a, b), math.Max(a, b)
		return m.Nonlinear(lo) <= m.Nonlinear(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvertNonlinearRoundTrip(t *testing.T) {
	m := DefaultModel()
	f := func(raw float64) bool {
		if math.IsNaN(raw) {
			return true
		}
		d := math.Mod(math.Abs(raw), 0.95)
		linear, err := m.InvertNonlinear(d)
		if err != nil {
			return false
		}
		return almostEqual(m.Nonlinear(linear), d, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvertNonlinearErrors(t *testing.T) {
	m := DefaultModel()
	if _, err := m.InvertNonlinear(-0.1); err == nil {
		t.Error("InvertNonlinear(-0.1) should fail")
	}
	if _, err := m.InvertNonlinear(1); err == nil {
		t.Error("InvertNonlinear(1) should fail")
	}
	if got, err := m.InvertNonlinear(0); err != nil || got != 0 {
		t.Errorf("InvertNonlinear(0) = %v, %v", got, err)
	}
}

// TestPaperHeadlineLifespans anchors the model to the paper's Fig. 8:
// a LoRaWAN node keeping its battery near full (mean cycle SoC ~0.91)
// reaches 20% fade after ~2980 days; an H-50 node (mean SoC ~0.45)
// lasts ~13-14 years.
func TestPaperHeadlineLifespans(t *testing.T) {
	m := DefaultModel()

	lorawan, err := m.PredictCalendarLifespan(25, 0.91)
	if err != nil {
		t.Fatalf("PredictCalendarLifespan: %v", err)
	}
	if days := lorawan.Days(); days < 2800 || days > 3200 {
		t.Errorf("LoRaWAN-like calendar lifespan = %.0f days, want ~2980", days)
	}

	h50, err := m.PredictCalendarLifespan(25, 0.45)
	if err != nil {
		t.Fatalf("PredictCalendarLifespan: %v", err)
	}
	if years := h50.Days() / 365; years < 12 || years > 15.5 {
		t.Errorf("H-50-like calendar lifespan = %.1f years, want ~13-14", years)
	}

	if improvement := h50.Days()/lorawan.Days() - 1; improvement < 0.5 {
		t.Errorf("H-50 lifespan improvement = %.1f%%, want >50%%", improvement*100)
	}
}

func TestPredictCalendarLifespanTemperature(t *testing.T) {
	m := DefaultModel()
	cool, err := m.PredictCalendarLifespan(15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := m.PredictCalendarLifespan(45, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= cool {
		t.Errorf("hotter battery should die sooner: %v vs %v", hot, cool)
	}
}

func TestDegradationCombines(t *testing.T) {
	m := DefaultModel()
	cycles := []Cycle{{Range: 0.3, Mean: 0.5, Count: 1}}
	dNoCycles := m.Degradation(simtime.Year, nil, 25, 0.5)
	dCycles := m.Degradation(simtime.Year, cycles, 25, 0.5)
	if dCycles <= dNoCycles {
		t.Errorf("cycle aging should add damage: %v vs %v", dCycles, dNoCycles)
	}
	wantLinear := m.CalendarAging(simtime.Year, 25, 0.5) + m.CycleAging(cycles, 25)
	if !almostEqual(dCycles, m.Nonlinear(wantLinear), 1e-12) {
		t.Error("Degradation should equal Nonlinear(calendar+cycle)")
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
