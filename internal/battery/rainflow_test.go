package battery

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompressTurningPoints(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want []float64
	}{
		{name: "empty", give: nil, want: nil},
		{name: "single", give: []float64{1}, want: []float64{1}},
		{name: "flat", give: []float64{1, 1, 1}, want: []float64{1}},
		{name: "monotone", give: []float64{0, 0.2, 0.5, 1}, want: []float64{0, 1}},
		{name: "zigzag kept", give: []float64{0, 1, 0.5}, want: []float64{0, 1, 0.5}},
		{name: "interior removed", give: []float64{0, 0.5, 1, 0.7, 0.2, 0.9}, want: []float64{0, 1, 0.2, 0.9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := compressTurningPoints(tt.give)
			if len(got) != len(tt.want) {
				t.Fatalf("compress(%v) = %v, want %v", tt.give, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("compress(%v) = %v, want %v", tt.give, got, tt.want)
				}
			}
		})
	}
}

func TestRainflowEmpty(t *testing.T) {
	for _, give := range [][]float64{nil, {0.5}, {0.5, 0.5, 0.5}} {
		if got := Rainflow(give); len(got) != 0 {
			t.Errorf("Rainflow(%v) = %v, want empty", give, got)
		}
	}
}

func TestRainflowSingleExcursion(t *testing.T) {
	got := Rainflow([]float64{0, 1})
	if len(got) != 1 {
		t.Fatalf("got %v, want one half cycle", got)
	}
	want := Cycle{Range: 1, Mean: 0.5, Count: 0.5}
	if got[0] != want {
		t.Errorf("got %+v, want %+v", got[0], want)
	}
}

func TestRainflowNestedCycle(t *testing.T) {
	// A small excursion (0.4 -> 0.6) nested inside a big one (0 -> 1 -> 0)
	// must be extracted as one full cycle; the outer excursion remains as
	// two half cycles.
	got := Rainflow([]float64{0, 1, 0.4, 0.6, 0})
	var fulls, halves []Cycle
	for _, c := range got {
		switch c.Count {
		case 1:
			fulls = append(fulls, c)
		case 0.5:
			halves = append(halves, c)
		default:
			t.Fatalf("unexpected count %v", c.Count)
		}
	}
	if len(fulls) != 1 || !almostEqual(fulls[0].Range, 0.2, 1e-12) || !almostEqual(fulls[0].Mean, 0.5, 1e-12) {
		t.Errorf("full cycles = %+v, want one of range 0.2 mean 0.5", fulls)
	}
	if len(halves) != 2 {
		t.Fatalf("half cycles = %+v, want two", halves)
	}
	for _, h := range halves {
		if !almostEqual(h.Range, 1, 1e-12) {
			t.Errorf("outer half cycle range = %v, want 1", h.Range)
		}
	}
}

func TestRainflowRepeatedFullSwings(t *testing.T) {
	// Two complete round trips 0->1->0->1->0: total eta must be 2.
	got := Rainflow([]float64{0, 1, 0, 1, 0})
	var eta float64
	for _, c := range got {
		if !almostEqual(c.Range, 1, 1e-12) {
			t.Errorf("cycle range = %v, want 1", c.Range)
		}
		eta += c.Count
	}
	if !almostEqual(eta, 2, 1e-12) {
		t.Errorf("total eta = %v, want 2", eta)
	}
}

// TestRainflowRangeConservation: the eta-weighted sum of cycle ranges
// equals half the total variation of the turning-point sequence. This is
// the fundamental conservation property of rainflow counting.
func TestRainflowRangeConservation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := int(rawN%60) + 2
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = rng.Float64()
		}
		tp := compressTurningPoints(pts)
		var variation float64
		for i := 0; i+1 < len(tp); i++ {
			variation += math.Abs(tp[i+1] - tp[i])
		}
		var weighted float64
		for _, c := range Rainflow(pts) {
			weighted += 2 * c.Count * c.Range // full cycle covers its range twice
		}
		return almostEqual(weighted, variation, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCounterMatchesBatch: at every prefix of a random stream, the cycles
// permanently emitted by the incremental Counter plus its PendingCycles
// must equal batch Rainflow of that prefix.
func TestCounterMatchesBatch(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		n := int(rawN%50) + 1
		pts := make([]float64, n)
		for i := range pts {
			// Quantized values provoke plateau and equal-range edge cases.
			pts[i] = float64(rng.IntN(12)) / 11
		}
		var emitted []Cycle
		c := &Counter{OnCycle: func(cy Cycle) { emitted = append(emitted, cy) }}
		for i, p := range pts {
			c.Push(p)
			got := append(append([]Cycle(nil), emitted...), c.PendingCycles()...)
			want := Rainflow(pts[:i+1])
			if !sameCycles(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCounterInvariantUnderInterleavedAppendPending: AppendPending is a
// read-only query that reuses internal scratch, so calling it between
// pushes — zero, one, or many times, with fresh or recycled dst slices —
// must never perturb the counter. The invariant
// Rainflow(history) == emitted + PendingCycles() has to hold at every
// prefix regardless of how queries interleave with the stream.
func TestCounterInvariantUnderInterleavedAppendPending(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 29))
		n := int(rawN%60) + 1
		pts := make([]float64, n)
		for i := range pts {
			// Quantized values provoke plateau and equal-range edge cases.
			pts[i] = float64(rng.IntN(9)) / 8
		}
		var emitted []Cycle
		c := &Counter{OnCycle: func(cy Cycle) { emitted = append(emitted, cy) }}
		var recycled []Cycle
		for i, p := range pts {
			// Adversarial query burst before the push: 0-3 AppendPending
			// calls, alternating fresh and recycled (non-empty) dst.
			for q := rng.IntN(4); q > 0; q-- {
				if q%2 == 0 {
					recycled = c.AppendPending(recycled[:0])
				} else {
					c.AppendPending(nil)
				}
			}
			c.Push(p)
			got := append(append([]Cycle(nil), emitted...), c.PendingCycles()...)
			if !sameCycles(got, Rainflow(pts[:i+1])) {
				return false
			}
		}
		// Queries after the stream ends must agree with each other too.
		if !sameCycles(c.PendingCycles(), c.AppendPending(nil)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCounterAppendPendingReusesDst: the allocation-free contract —
// pending cycles are appended after dst's existing elements, which stay
// untouched.
func TestCounterAppendPendingReusesDst(t *testing.T) {
	var c Counter
	for _, v := range []float64{0, 1, 0.4, 0.6} {
		c.Push(v)
	}
	sentinel := Cycle{Range: -1, Mean: -1, Count: -1}
	got := c.AppendPending([]Cycle{sentinel})
	if len(got) < 2 || got[0] != sentinel {
		t.Fatalf("AppendPending clobbered dst prefix: %+v", got)
	}
	if !sameCycles(got[1:], c.PendingCycles()) {
		t.Errorf("appended tail %v != PendingCycles %v", got[1:], c.PendingCycles())
	}
}

func TestCounterPendingCyclesIdempotent(t *testing.T) {
	var c Counter
	for _, v := range []float64{0, 1, 0.4, 0.6, 0.1, 0.9} {
		c.Push(v)
	}
	first := c.PendingCycles()
	second := c.PendingCycles()
	if !sameCycles(first, second) {
		t.Errorf("PendingCycles mutated state: %v then %v", first, second)
	}
}

func TestCounterSamples(t *testing.T) {
	var c Counter
	if c.Samples() != 0 {
		t.Error("fresh counter should have 0 samples")
	}
	c.Push(0.5)
	c.Push(0.5)
	c.Push(0.7)
	if got := c.Samples(); got != 3 {
		t.Errorf("Samples = %d, want 3", got)
	}
}

func TestCounterNoCallback(t *testing.T) {
	// A Counter without OnCycle must not panic when cycles close.
	var c Counter
	for _, v := range []float64{0, 1, 0, 1, 0, 1} {
		c.Push(v)
	}
	if got := c.PendingCycles(); len(got) == 0 {
		t.Error("expected pending cycles")
	}
}

func TestNewCycleOrientation(t *testing.T) {
	up := newCycle(0.2, 0.8, 1)
	down := newCycle(0.8, 0.2, 1)
	if up != down {
		t.Errorf("cycle must be orientation-independent: %+v vs %+v", up, down)
	}
	if !almostEqual(up.Range, 0.6, 1e-12) || !almostEqual(up.Mean, 0.5, 1e-12) {
		t.Errorf("cycle = %+v", up)
	}
}

// sameCycles compares two cycle multisets up to ordering and tiny
// floating-point noise.
func sameCycles(a, b []Cycle) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(c Cycle) [3]float64 { return [3]float64{c.Range, c.Mean, c.Count} }
	as := make([][3]float64, len(a))
	bs := make([][3]float64, len(b))
	for i := range a {
		as[i], bs[i] = key(a[i]), key(b[i])
	}
	less := func(s [][3]float64) func(i, j int) bool {
		return func(i, j int) bool {
			for k := 0; k < 3; k++ {
				if s[i][k] != s[j][k] {
					return s[i][k] < s[j][k]
				}
			}
			return false
		}
	}
	sort.Slice(as, less(as))
	sort.Slice(bs, less(bs))
	for i := range as {
		for k := 0; k < 3; k++ {
			if math.Abs(as[i][k]-bs[i][k]) > 1e-9 {
				return false
			}
		}
	}
	return true
}
