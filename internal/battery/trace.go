package battery

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/simtime"
)

// Report is the wire form of one SoC transition as piggy-backed on an
// uplink packet: 4 bytes (2 for the forecast-window offset, 2 for the
// quantized SoC), exactly the overhead the paper budgets in Sec. III-B.
type Report struct {
	// WindowsAgo is how many whole forecast windows before the packet's
	// transmission the transition occurred.
	WindowsAgo uint16
	// SoCQ is the state of charge quantized to 1/65535 steps.
	SoCQ uint16
}

// ReportSize is the wire size of one Report in bytes.
const ReportSize = 4

// EncodeTransition converts a transition to wire form relative to the
// packet transmission time and the node's forecast-window length.
// Transitions older than 65535 windows saturate.
//
// The offset is the difference of absolute window indices
// (floor(t/window)), not of raw times: a report retransmitted in a
// later packet then decodes to the same window-aligned instant, so the
// gateway's duplicate guard recognizes it instead of ingesting a
// shifted phantom transition.
func EncodeTransition(tr Transition, packetAt simtime.Time, window simtime.Duration) Report {
	ago := windowIndex(packetAt, window) - windowIndex(tr.At, window)
	if ago < 0 {
		ago = 0
	}
	if ago > math.MaxUint16 {
		ago = math.MaxUint16
	}
	soc := min(1, max(0, tr.SoC))
	return Report{
		WindowsAgo: uint16(ago),
		SoCQ:       uint16(math.Round(soc * math.MaxUint16)),
	}
}

// Decode reconstructs the transition from wire form given the packet's
// reception time and the node's forecast-window length. The recovered
// time is quantized to whole windows (the start of the transition's
// window) and the SoC to 1/65535, which is the precision the
// gateway-side degradation computation works with.
func (r Report) Decode(packetAt simtime.Time, window simtime.Duration) Transition {
	idx := windowIndex(packetAt, window) - int64(r.WindowsAgo)
	return Transition{
		At:  simtime.Time(idx * int64(window)),
		SoC: float64(r.SoCQ) / math.MaxUint16,
	}
}

// windowIndex is the absolute forecast-window index containing t
// (floored toward negative infinity so pre-epoch times stay ordered).
func windowIndex(t simtime.Time, window simtime.Duration) int64 {
	v, w := int64(t), int64(window)
	idx := v / w
	if v%w < 0 {
		idx--
	}
	return idx
}

// MarshalReports serializes reports to the compact on-air byte form.
func MarshalReports(reports []Report) []byte {
	buf := make([]byte, 0, len(reports)*ReportSize)
	for _, r := range reports {
		buf = binary.BigEndian.AppendUint16(buf, r.WindowsAgo)
		buf = binary.BigEndian.AppendUint16(buf, r.SoCQ)
	}
	return buf
}

// UnmarshalReports parses the compact on-air byte form.
func UnmarshalReports(data []byte) ([]Report, error) {
	if len(data)%ReportSize != 0 {
		return nil, fmt.Errorf("battery: report payload length %d not a multiple of %d", len(data), ReportSize)
	}
	reports := make([]Report, 0, len(data)/ReportSize)
	for i := 0; i < len(data); i += ReportSize {
		reports = append(reports, Report{
			WindowsAgo: binary.BigEndian.Uint16(data[i:]),
			SoCQ:       binary.BigEndian.Uint16(data[i+2:]),
		})
	}
	return reports, nil
}
