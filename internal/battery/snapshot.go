package battery

// Snapshot/restore of the incremental degradation state. The network
// server daemon (cmd/lnsd) persists per-node Tracker state across
// restarts; the contract is exactness, not compactness: a restored
// tracker must answer every subsequent Damage query with the same bits
// an uninterrupted tracker would, for any continuation of the SoC
// stream. That holds because the snapshot carries the exact closed-cycle
// float aggregates (not the cycle list they were folded from) and the
// complete residue-stack state the pending-cycle walk derives from;
// everything else the tracker holds (stress cache, memos, scratch) is a
// pure function of the model constants or rebuilt lazily.
//
// The types marshal cleanly with encoding/json: Go's float64 JSON
// round-trip is exact (shortest-representation formatting), so a
// snapshot that passed through a JSON file restores bit-identically.

// CounterSnapshot is the serializable state of an incremental rainflow
// Counter: the residue stack of confirmed turning points plus the
// provisional extremum and run direction. Scratch buffers and the
// revision counter are deliberately absent — they are rebuilt on
// restore.
type CounterSnapshot struct {
	// Stack is the residue stack of confirmed turning points, oldest
	// first.
	Stack []float64 `json:"stack,omitempty"`
	// Last is the most recent sample (the provisional extremum).
	Last float64 `json:"last"`
	// Dir is the current run direction: +1 rising, -1 falling, 0 before
	// the second distinct sample.
	Dir int `json:"dir"`
	// N is the number of raw samples pushed.
	N int `json:"n"`
}

// Snapshot captures the counter's serializable state. The returned
// snapshot owns its stack copy; later pushes do not mutate it.
func (c *Counter) Snapshot() CounterSnapshot {
	var stack []float64
	if len(c.stack) > 0 {
		stack = append(stack, c.stack...)
	}
	return CounterSnapshot{Stack: stack, Last: c.last, Dir: c.dir, N: c.n}
}

// RestoreSnapshot overwrites the counter's stream state with a snapshot,
// keeping the OnCycle callback. The revision is bumped so any memo keyed
// on it is invalidated; scratch buffers reset lazily on the next use.
func (c *Counter) RestoreSnapshot(s CounterSnapshot) {
	c.stack = append(c.stack[:0], s.Stack...)
	c.last = s.Last
	c.dir = s.Dir
	c.n = s.N
	c.rev++
}

// TrackerSnapshot is the serializable state of a Tracker: the retired
// cycle aggregates plus the live counter state. The model constants and
// battery temperature are configuration, not state — the restorer
// supplies them (RestoreTracker), and the caller is responsible for
// passing the same values the snapshot was taken under; the degradation
// bits are only reproducible against the original model.
type TrackerSnapshot struct {
	// ClosedRaw is the sum of eta*delta*phi over retired cycles.
	ClosedRaw float64 `json:"closed_raw"`
	// ClosedPhiSum is the sum of eta*phi over retired cycles.
	ClosedPhiSum float64 `json:"closed_phi_sum"`
	// ClosedWeight is the sum of eta over retired cycles.
	ClosedWeight float64 `json:"closed_weight"`
	// Counter is the incremental rainflow state.
	Counter CounterSnapshot `json:"counter"`
}

// Snapshot captures the tracker's serializable state.
func (t *Tracker) Snapshot() TrackerSnapshot {
	return TrackerSnapshot{
		ClosedRaw:    t.closedRaw,
		ClosedPhiSum: t.closedPhiSum,
		ClosedWeight: t.closedWeight,
		Counter:      t.counter.Snapshot(),
	}
}

// RestoreTracker rebuilds a tracker from a snapshot taken under the same
// model and temperature. The restored tracker is bit-identical to the
// snapshotted one for every future Push/Damage sequence: the closed
// aggregates are restored as the exact floats they were (no
// re-accumulation, so no float-ordering drift) and the pending-cycle
// walk re-derives everything else from the counter state.
func RestoreTracker(model Model, tempC float64, s TrackerSnapshot) *Tracker {
	t := NewTracker(model, tempC)
	t.closedRaw = s.ClosedRaw
	t.closedPhiSum = s.ClosedPhiSum
	t.closedWeight = s.ClosedWeight
	t.counter.RestoreSnapshot(s.Counter)
	return t
}
