package battery

import (
	"testing"

	"repro/internal/simtime"
)

func newTestHybrid(t *testing.T, battCap, capCap, leakW float64) (*Hybrid, *Battery) {
	t.Helper()
	b, err := New(DefaultModel(), battCap, 0.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybrid(b, capCap, leakW)
	if err != nil {
		t.Fatal(err)
	}
	return h, b
}

func TestNewHybridValidation(t *testing.T) {
	b, err := New(DefaultModel(), 10, 0.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHybrid(nil, 1, 0); err == nil {
		t.Error("nil battery should fail")
	}
	if _, err := NewHybrid(b, 0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewHybrid(b, 1, -1); err == nil {
		t.Error("negative leak should fail")
	}
}

func TestHybridChargeOrder(t *testing.T) {
	h, b := newTestHybrid(t, 10, 2, 0)
	// First joules fill the supercapacitor.
	if got := h.Charge(0, 1.5); got != 1.5 {
		t.Errorf("accepted %v, want 1.5", got)
	}
	if h.SupercapStored() != 1.5 {
		t.Errorf("supercap = %v, want 1.5", h.SupercapStored())
	}
	if b.Stored() != 5 {
		t.Errorf("battery should be untouched, got %v", b.Stored())
	}
	// Overflow goes to the battery.
	if got := h.Charge(0, 2); got != 2 {
		t.Errorf("accepted %v, want 2", got)
	}
	if h.SupercapStored() != 2 {
		t.Errorf("supercap = %v, want full 2", h.SupercapStored())
	}
	if b.Stored() != 6.5 {
		t.Errorf("battery = %v, want 6.5", b.Stored())
	}
}

func TestHybridDischargeOrder(t *testing.T) {
	h, b := newTestHybrid(t, 10, 2, 0)
	h.Charge(0, 2)
	// Small draws never touch the battery.
	if got := h.Discharge(0, 1.5); got != 1.5 {
		t.Errorf("supplied %v, want 1.5", got)
	}
	if b.Stored() != 5 {
		t.Errorf("battery should be untouched, got %v", b.Stored())
	}
	if b.PendingTransitions() != 0 {
		t.Error("battery saw no cycling, so no transitions")
	}
	// Bigger draws fall through.
	if got := h.Discharge(0, 3); got != 3 {
		t.Errorf("supplied %v, want 3", got)
	}
	if b.Stored() != 2.5 {
		t.Errorf("battery = %v, want 2.5", b.Stored())
	}
}

func TestHybridCombinedAccounting(t *testing.T) {
	h, _ := newTestHybrid(t, 10, 2, 0)
	h.Charge(0, 1)
	if got := h.Stored(); got != 6 { // 1 supercap + 5 battery
		t.Errorf("Stored = %v, want 6", got)
	}
	if !h.CanSupply(6) || h.CanSupply(6.01) {
		t.Error("CanSupply should reflect the combined charge")
	}
	if got := h.SoC(); got != 0.5 {
		t.Errorf("SoC = %v, want the battery's 0.5", got)
	}
}

func TestHybridLeak(t *testing.T) {
	h, _ := newTestHybrid(t, 10, 2, 0.001) // 1 mW leak
	h.Charge(0, 2)
	// After 1000 s, 1 J has leaked away.
	h.Discharge(simtime.Time(1000*simtime.Second), 0) // no-op, but applies leak
	if got := h.SupercapStored(); !almostEqual(got, 1, 1e-9) {
		t.Errorf("supercap after leak = %v, want 1", got)
	}
	// Leak never goes negative.
	h.Charge(simtime.Time(simtime.Day), 0)
	if got := h.SupercapStored(); got != 0 {
		t.Errorf("supercap = %v, want 0 after long leak", got)
	}
}

// TestHybridSuppressesCycleAging is the design claim: with a
// supercapacitor absorbing the transmission dips, the battery counts
// fewer/smaller cycles than a bare battery under the same load.
func TestHybridSuppressesCycleAging(t *testing.T) {
	bare := newTestBattery(t, 10, 0.5)
	h, wrapped := newTestHybrid(t, 10, 1, 0)

	now := simtime.Time(0)
	for day := 0; day < 120; day++ {
		now = simtime.Time(day) * simtime.Time(simtime.Day)
		for hour := 0; hour < 4; hour++ {
			at := now.Add(simtime.Duration(hour) * simtime.Hour)
			// A 0.5 J transmission dip followed by solar recharge.
			bare.Discharge(at, 0.5)
			bare.Charge(at.Add(30*simtime.Minute), 0.5)
			h.Discharge(at, 0.5)
			h.Charge(at.Add(30*simtime.Minute), 0.5)
		}
	}
	bareCycle := bare.Damage(now).Cycle
	hybridCycle := wrapped.Damage(now).Cycle
	if bareCycle <= 0 {
		t.Fatal("bare battery should accumulate cycle aging")
	}
	if hybridCycle >= bareCycle/2 {
		t.Errorf("hybrid cycle aging %v should be well below bare %v", hybridCycle, bareCycle)
	}
}

func TestHybridDelegations(t *testing.T) {
	h, b := newTestHybrid(t, 10, 2, 0)
	h.SetChargeLimit(0.6)
	if b.ChargeLimit() != 0.6 {
		t.Error("SetChargeLimit should reach the battery")
	}
	now := simtime.Time(simtime.Year)
	if h.Degradation(now) != b.Degradation(now) {
		t.Error("Degradation should delegate")
	}
	if h.Damage(now) != b.Damage(now) {
		t.Error("Damage should delegate")
	}
	if h.AtEoL(now) != b.AtEoL(now) {
		t.Error("AtEoL should delegate")
	}
	if h.Battery() != b {
		t.Error("Battery accessor broken")
	}
	// Transitions pass through once flows reach the battery: the charge
	// overflows the 2 J supercapacitor and the deep discharge drains it.
	h.Discharge(1, 5)
	h.Charge(2, 3)
	h.Discharge(3, 4)
	if got := len(h.DrainTransitions()); got == 0 {
		t.Error("expected delegated transitions")
	}
}

func TestHybridZeroAndNegativeAmounts(t *testing.T) {
	h, _ := newTestHybrid(t, 10, 2, 0)
	if h.Charge(0, -1) != 0 || h.Discharge(0, -1) != 0 {
		t.Error("negative amounts must be no-ops")
	}
}
