// Package runner executes independent experiment runs across a worker
// pool. Every run of the paper's evaluation (one protocol variant on one
// seeded scenario) is fully self-contained — the simulator derives all
// of its RNG streams from the scenario seed — so runs can fan out across
// GOMAXPROCS workers while the collected results, and therefore every
// regenerated table, stay byte-identical to a serial loop.
//
// The package also owns per-run seed derivation: replicated runs obtain
// independent RNG streams via DeriveSeed(base, label, replicate), a
// stable hash, instead of ad-hoc seed arithmetic scattered across
// experiments.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values <= 0 mean "use the
// machine" (GOMAXPROCS); anything positive is taken as-is. A value of 1
// reproduces the serial execution order exactly, which is the debugging
// escape hatch behind the experiments' -j 1 flag.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for every i in [0, n) on up to workers goroutines
// and returns the n results in index order, so downstream consumers see
// exactly what a serial loop would have produced. The first error wins:
// it cancels the context passed to not-yet-started calls and is returned
// after in-flight calls drain. A nil or zero result slice is returned
// alongside a non-nil error.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic even under -race.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r, err := fn(ctx, i)
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					continue
				}
				results[i] = r
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// DeriveSeed deterministically mixes a base scenario seed with a run
// label and a replicate index into an independent RNG stream seed:
// FNV-1a over the inputs followed by a splitmix64 finalizer so that
// consecutive replicates land far apart in seed space. Replicate 0 of
// any label always returns the base seed unchanged, keeping single-run
// experiments byte-identical to their pre-replication output.
func DeriveSeed(base uint64, label string, replicate int) uint64 {
	if replicate == 0 {
		return base
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < len(label); i++ {
		mix(label[i])
	}
	for _, v := range [...]uint64{base, uint64(replicate)} {
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	}
	// splitmix64 finalizer: decorrelates the low bits FNV leaves similar.
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1 // seed 0 means "use the default" in several option structs
	}
	return h
}

// Pool is a persistent worker pool for repeated barrier-style batches:
// the sharded simulator runs one batch per conservative-lookahead sync
// point, and spawning goroutines per batch would dominate short phases.
// A Pool with one worker runs every batch inline on the caller's
// goroutine — no goroutines, deterministic even under -race.
type Pool struct {
	workers int
	jobs    chan int
	fn      func(int)
	wg      sync.WaitGroup
}

// NewPool starts a pool of the given size (clamped to >= 1). Callers
// must Close it to release the worker goroutines.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.jobs = make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range p.jobs {
				p.fn(i)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Run executes fn(0..n-1) across the pool and returns when every call
// has completed (a barrier). Batches of one run inline: the channel
// round-trip costs more than the job dispatch it would parallelize.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// fn is published to the workers by the channel sends below; the
	// barrier's wg.Wait orders every read before the next batch's write.
	p.fn = fn
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- i
	}
	p.wg.Wait()
	p.fn = nil
}

// Close releases the pool's goroutines; the pool must not be used
// afterwards.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}
