package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d, want 5", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), workers, 37, func(_ context.Context, i int) (int, error) {
			if i%3 == 0 {
				time.Sleep(time.Millisecond) // shuffle completion order
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 37 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Errorf("Map(n=0) = %v, %v", got, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(context.Background(), 2, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d jobs ran despite early error", n)
	}
}

func TestMapSerialErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	_, err := Map(context.Background(), 1, 10, func(context.Context, int) (int, error) {
		calls++
		if calls == 2 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Errorf("serial map made %d calls after error, want 2", calls)
	}
}

func TestMapHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := Map(ctx, workers, 10, func(context.Context, int) (int, error) {
			return 0, nil
		}); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if got := DeriveSeed(42, "sweep", 0); got != 42 {
		t.Errorf("replicate 0 must return the base seed, got %d", got)
	}
	a := DeriveSeed(42, "sweep", 1)
	if b := DeriveSeed(42, "sweep", 1); a != b {
		t.Errorf("DeriveSeed not deterministic: %d vs %d", a, b)
	}
	seen := map[uint64]string{42: "base"}
	for _, label := range []string{"sweep", "lifespan", "fig2"} {
		for rep := 1; rep <= 50; rep++ {
			s := DeriveSeed(42, label, rep)
			if s == 0 {
				t.Fatalf("DeriveSeed(%s,%d) = 0", label, rep)
			}
			key := fmt.Sprintf("%s/%d", label, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
