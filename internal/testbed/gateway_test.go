package testbed

import (
	"sync"
	"testing"

	"repro/internal/battery"
	"repro/internal/lora"
	"repro/internal/netserver"
	"repro/internal/sim"
	"repro/internal/simtime"
)

func newTestGateway(t *testing.T) *Gateway {
	t.Helper()
	server, err := netserver.New(battery.DefaultModel(), 25, simtime.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server.Register(1, 0.5)
	server.Register(2, 0.5)
	return NewGateway(sim.NewMedium(lora.BW125, 8, 1), server)
}

func gwTx(node int, power float64, start, end int64) *sim.Transmission {
	return &sim.Transmission{
		NodeID:   node,
		SF:       lora.SF10,
		PowerDBm: []float64{power},
		Start:    simtime.Time(start),
		End:      simtime.Time(end),
	}
}

func TestGatewayUplinkAckFlow(t *testing.T) {
	gw := newTestGateway(t)
	tx := gwTx(1, -100, 0, 250)
	gw.BeginUplink(tx)
	decoded, ackReserved, ackEnd := gw.EndUplink(tx, 1, nil,
		simtime.Time(250), simtime.Minute, simtime.Second, 200*simtime.Millisecond)
	if !decoded || !ackReserved {
		t.Fatalf("decoded=%v ackReserved=%v, want both", decoded, ackReserved)
	}
	want := simtime.Time(250).Add(simtime.Second + 200*simtime.Millisecond)
	if ackEnd != want {
		t.Errorf("ackEnd = %v, want %v", ackEnd, want)
	}
}

func TestGatewayAckContention(t *testing.T) {
	gw := newTestGateway(t)
	a := gwTx(1, -100, 0, 250)
	b := gwTx(2, -100, 300, 550) // different time, no air collision
	gw.BeginUplink(a)
	_, ackA, _ := gw.EndUplink(a, 1, nil, simtime.Time(250), simtime.Minute, simtime.Second, 2*simtime.Second)
	gw.BeginUplink(b)
	decodedB, ackB, _ := gw.EndUplink(b, 2, nil, simtime.Time(550), simtime.Minute, simtime.Second, 2*simtime.Second)
	if !ackA {
		t.Fatal("first ACK should reserve")
	}
	if !decodedB {
		t.Fatal("second uplink should decode")
	}
	if ackB {
		t.Error("second ACK overlaps the first reservation and must fail")
	}
}

func TestGatewayCollisionLoss(t *testing.T) {
	gw := newTestGateway(t)
	a := gwTx(1, -100, 0, 250)
	b := gwTx(2, -101, 10, 260)
	gw.BeginUplink(a)
	gw.BeginUplink(b)
	if decoded, _, _ := gw.EndUplink(a, 1, nil, 250, simtime.Minute, simtime.Second, simtime.Second); decoded {
		t.Error("collided uplink should be lost")
	}
}

func TestGatewayIngestAndPayload(t *testing.T) {
	gw := newTestGateway(t)
	reports := []battery.Report{
		battery.EncodeTransition(battery.Transition{At: 0, SoC: 0.9}, simtime.Time(simtime.Hour), simtime.Minute),
		battery.EncodeTransition(battery.Transition{At: simtime.Time(30 * simtime.Minute), SoC: 0.3}, simtime.Time(simtime.Hour), simtime.Minute),
	}
	tx := gwTx(1, -100, 0, 250)
	gw.BeginUplink(tx)
	if decoded, _, _ := gw.EndUplink(tx, 1, reports, simtime.Time(simtime.Hour), simtime.Minute, simtime.Second, simtime.Second); !decoded {
		t.Fatal("expected decode")
	}
	gw.Recompute(simtime.Time(simtime.Day))
	// Node 1 cycled deep, node 2 idle: node 1 must carry w_u = 1.
	if got := gw.AckPayload(1); got != 1 {
		t.Errorf("w_u(1) = %v, want 1 (max degraded)", got)
	}
	if got := gw.AckPayload(2); got >= 1 {
		t.Errorf("w_u(2) = %v, want < 1", got)
	}
}

func TestGatewayConcurrentAccess(t *testing.T) {
	gw := newTestGateway(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				start := int64(i*1000 + k*37)
				tx := gwTx(1+i%2, -100, start, start+50)
				gw.BeginUplink(tx)
				gw.EndUplink(tx, 1+i%2, nil, simtime.Time(start+50), simtime.Minute, simtime.Second, simtime.Second)
				gw.AckPayload(1)
			}
		}()
	}
	wg.Wait() // run with -race: the mutex must make this safe
}
