package testbed

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/simtime"
)

func TestClockSingleWorker(t *testing.T) {
	c := NewClock()
	c.AddWorker()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer c.Done()
		c.Sleep(10 * simtime.Second)
		if got := c.Now(); got != simtime.Time(10*simtime.Second) {
			t.Errorf("Now = %v, want 10 s", got)
		}
		c.SleepUntil(simtime.Time(simtime.Minute))
		if got := c.Now(); got != simtime.Time(simtime.Minute) {
			t.Errorf("Now = %v, want 1 min", got)
		}
	}()
	<-done
}

func TestClockLockStepOrdering(t *testing.T) {
	c := NewClock()
	var mu sync.Mutex
	var order []int

	c.AddWorker()
	c.AddWorker()
	var wg sync.WaitGroup
	wg.Add(2)
	// Worker A wakes at 10, 30; worker B at 20, 40.
	go func() {
		defer wg.Done()
		defer c.Done()
		for _, d := range []simtime.Duration{10, 20} {
			c.Sleep(d)
			mu.Lock()
			order = append(order, int(c.Now()))
			mu.Unlock()
		}
	}()
	go func() {
		defer wg.Done()
		defer c.Done()
		for _, d := range []simtime.Duration{20, 20} {
			c.Sleep(d)
			mu.Lock()
			order = append(order, int(c.Now()))
			mu.Unlock()
		}
	}()
	wg.Wait()
	want := []int{10, 20, 30, 40}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockSimultaneousWakeups(t *testing.T) {
	c := NewClock()
	const workers = 8
	var awake atomic.Int32
	var maxAwake atomic.Int32

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		c.AddWorker()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Done()
			for k := 0; k < 50; k++ {
				c.Sleep(simtime.Second) // all workers share every instant
				n := awake.Add(1)
				for {
					cur := maxAwake.Load()
					if n <= cur || maxAwake.CompareAndSwap(cur, n) {
						break
					}
				}
				awake.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != simtime.Time(50*simtime.Second) {
		t.Errorf("final time = %v, want 50 s", got)
	}
	if maxAwake.Load() < 2 {
		t.Log("no observed concurrency between same-instant workers (scheduling-dependent)")
	}
}

func TestClockWorkerExitUnblocksOthers(t *testing.T) {
	c := NewClock()
	c.AddWorker()
	c.AddWorker()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Sleep(simtime.Second)
		c.Done() // leaves while the other worker sleeps further
	}()
	go func() {
		defer wg.Done()
		defer c.Done()
		c.Sleep(10 * simtime.Second)
	}()
	wg.Wait()
	if got := c.Now(); got != simtime.Time(10*simtime.Second) {
		t.Errorf("final time = %v, want 10 s", got)
	}
}

// TestClockSleepUntilPastInstant is the regression test for the
// SleepUntil drift bug: an instant at or before virtual now used to
// degrade into a 1 ms Sleep, pushing the caller past the requested
// instant — a worker catching up in a SleepUntil loop drifted 1 ms
// further behind per call. SleepUntil(t <= now) must return immediately
// and leave the clock untouched.
func TestClockSleepUntilPastInstant(t *testing.T) {
	c := NewClock()
	c.AddWorker()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer c.Done()
		c.Sleep(10 * simtime.Millisecond)
		for i := 0; i < 100; i++ {
			c.SleepUntil(simtime.Time(5 * simtime.Millisecond)) // past
		}
		c.SleepUntil(simtime.Time(10 * simtime.Millisecond)) // exactly now
	}()
	<-done
	if got := c.Now(); got != simtime.Time(10*simtime.Millisecond) {
		t.Errorf("clock drifted to %v after catch-up SleepUntil calls, want 10 ms", got)
	}
}

// TestClockSleepUntilExactInstant pins that a future target is reached
// exactly, with no extra tick.
func TestClockSleepUntilExactInstant(t *testing.T) {
	c := NewClock()
	c.AddWorker()
	done := make(chan struct{})
	target := simtime.Time(1234 * simtime.Millisecond)
	go func() {
		defer close(done)
		defer c.Done()
		c.SleepUntil(target)
	}()
	<-done
	if got := c.Now(); got != target {
		t.Errorf("woke at %v, want exactly %v", got, target)
	}
}

func TestClockNonPositiveSleep(t *testing.T) {
	c := NewClock()
	c.AddWorker()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer c.Done()
		c.Sleep(0)
		c.Sleep(-5)
	}()
	<-done
	if c.Now() <= 0 {
		t.Error("zero/negative sleeps must still advance the clock")
	}
}

func TestClockManyWorkersStress(t *testing.T) {
	c := NewClock()
	const workers = 32
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		c.AddWorker()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Done()
			for k := 0; k < 200; k++ {
				c.Sleep(simtime.Duration(1 + (i+k)%7))
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != workers*200 {
		t.Errorf("wakeups = %d, want %d", got, workers*200)
	}
}
