package testbed

import (
	"testing"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// paperSetup mirrors Sec. IV-B: 10 nodes, 10-minute sampling period,
// 1-minute forecast windows, one 125 kHz channel at SF10, 24 hours.
func paperSetup(protocol config.ProtocolKind, theta float64) config.Scenario {
	cfg := config.Default().WithSeed(3)
	cfg.Nodes = 10
	cfg.Protocol = protocol
	cfg.Theta = theta
	cfg.PeriodMin = 10 * simtime.Minute
	cfg.PeriodMax = 10 * simtime.Minute
	cfg.FixedSF = lora.SF10
	cfg.Channels = 1
	cfg.Duration = 24 * simtime.Hour
	cfg.ForecastPrimeDays = 2
	cfg.StartSpread = 5 * simtime.Second
	// A 24 h experiment needs w_u dissemination faster than the daily
	// cadence of a mature deployment.
	cfg.DegradationInterval = simtime.Hour
	// The physical testbed emulates a real battery (~400 mAh LiPo), not
	// the 24-h-autonomy sizing of the large-scale study.
	cfg.BatteryCapacityJ = 5300
	return cfg
}

// TestTestbedBrownoutRejoinsNeverReregisters is the testbed twin of
// the simulator's TestSimBrownoutRejoinsNeverReregisters: a node
// restarting after a brownout must be re-admitted through Rejoin
// (history and dedup watermarks preserved), never through Register
// (battery-replacement semantics — watermark and history reset, see
// netserver.Register). The Gateway deliberately exposes no Register
// method; this pins the contract with counters so a future "helpful"
// re-registration path cannot slip in unnoticed.
func TestTestbedBrownoutRejoinsNeverReregisters(t *testing.T) {
	cfg := paperSetup(config.ProtocolBLA, 1)
	cfg.Faults = faults.Config{BrownoutMTBF: 4 * simtime.Hour}
	rec := obs.New(obs.Manifest{Tool: "test"}, 0)
	res, err := RunObserved(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	var brownouts int64
	for _, n := range res.Nodes {
		brownouts += n.Stats.Brownouts
	}
	if brownouts == 0 {
		t.Fatal("4h MTBF over 24h x 10 nodes produced no brownouts; assertion would be vacuous")
	}
	if registers := rec.Counter("netserver.registers").Value(); registers != int64(cfg.Nodes) {
		t.Errorf("netserver.registers = %d, want exactly one per node (%d): a live node was re-registered",
			registers, cfg.Nodes)
	}
	if rejoins := rec.Counter("netserver.rejoins").Value(); rejoins != brownouts {
		t.Errorf("netserver.rejoins = %d, want one per brownout (%d)", rejoins, brownouts)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	cfg := paperSetup(config.ProtocolBLA, 1)
	cfg.Nodes = 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid scenario should fail")
	}
	eol := paperSetup(config.ProtocolBLA, 1)
	eol.RunToEoL = true
	if _, err := Run(eol); err == nil {
		t.Error("run-to-EoL should be rejected on the testbed")
	}
}

func TestTestbed24hInvariants(t *testing.T) {
	for _, tc := range []struct {
		protocol config.ProtocolKind
		theta    float64
	}{
		{config.ProtocolLoRaWAN, 1},
		{config.ProtocolBLA, 1}, // the paper's H-100 testbed config
	} {
		tc := tc
		cfg := paperSetup(tc.protocol, tc.theta)
		t.Run(cfg.ProtocolLabel(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Nodes) != 10 {
				t.Fatalf("nodes = %d, want 10", len(res.Nodes))
			}
			for _, n := range res.Nodes {
				s := n.Stats
				// 24 h at a 10-minute period: ~144 packets per node.
				if s.Generated < 130 || s.Generated > 150 {
					t.Errorf("node %d generated %d packets, want ~144", n.ID, s.Generated)
				}
				if s.Delivered+s.Dropped > s.Generated || s.Generated-(s.Delivered+s.Dropped) > 1 {
					t.Errorf("node %d: packet accounting broken: %+v", n.ID, s)
				}
				// The paper reports PRR 100% for both protocols on the
				// small testbed; allow a whisker of slack.
				if prr := s.PRR(); prr < 0.9 {
					t.Errorf("node %d PRR = %v, want ~1 on a 10-node testbed", n.ID, prr)
				}
				if n.SF != lora.SF10 {
					t.Errorf("node %d SF = %v, want SF10", n.ID, n.SF)
				}
				if n.Degradation.Total <= 0 {
					t.Errorf("node %d degradation should be positive after 24 h", n.ID)
				}
			}
		})
	}
}

// TestTestbedFig9Shape reproduces the qualitative claims of Fig. 9:
// H-100 has lower cycle aging than LoRaWAN after 24 hours, and LoRaWAN
// has lower latency.
func TestTestbedFig9Shape(t *testing.T) {
	lw, err := Run(paperSetup(config.ProtocolLoRaWAN, 1))
	if err != nil {
		t.Fatal(err)
	}
	h100, err := Run(paperSetup(config.ProtocolBLA, 1))
	if err != nil {
		t.Fatal(err)
	}

	var lwCycle, hCycle metrics.Welford
	var lwLat, hLat metrics.Welford
	for i := range lw.Nodes {
		lwCycle.Add(lw.Nodes[i].Degradation.Cycle)
		hCycle.Add(h100.Nodes[i].Degradation.Cycle)
		lwLat.Add(lw.Nodes[i].Stats.AvgLatencyDelivered().Seconds())
		hLat.Add(h100.Nodes[i].Stats.AvgLatencyDelivered().Seconds())
	}
	if hCycle.Mean() >= lwCycle.Mean() {
		t.Errorf("H-100 cycle aging %v should be below LoRaWAN %v (paper: 80%% lower)",
			hCycle.Mean(), lwCycle.Mean())
	}
	if lwLat.Mean() >= hLat.Mean() {
		t.Errorf("LoRaWAN latency %v s should be below H-100 %v s", lwLat.Mean(), hLat.Mean())
	}
}

// TestTestbedMatchesSimulatorProtocolCode ensures both substrates drive
// the same MAC implementation: a BLA node on the testbed must produce
// window histograms beyond window 0, like the simulator.
func TestTestbedUsesWindows(t *testing.T) {
	res, err := Run(paperSetup(config.ProtocolBLA, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	hist := metrics.NewHistogram()
	for _, n := range res.Nodes {
		for _, b := range n.Stats.WindowHist.Buckets() {
			hist.Add(b)
		}
	}
	if len(hist.Buckets()) < 2 {
		t.Error("BLA on the testbed should select multiple windows")
	}
}
