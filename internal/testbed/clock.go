// Package testbed emulates the paper's physical experiment (Sec. IV-B):
// ten LoRa nodes and one gateway on a single shared channel, each node a
// real concurrently executing goroutine running the same protocol code
// as the simulator. Time is virtual: a deterministic lock-step clock
// advances only when every participant is asleep, so a 24-hour
// experiment completes in seconds while preserving true asynchrony
// between nodes (goroutines awake at the same virtual instant really do
// race, as physical nodes do).
package testbed

import (
	"container/heap"
	"fmt"
	"sync"

	"repro/internal/simtime"
)

// sleeper is one goroutine blocked until a virtual instant.
type sleeper struct {
	at  simtime.Time
	seq uint64
	ch  chan struct{}
}

type sleeperHeap []sleeper

func (h sleeperHeap) Len() int { return len(h) }

func (h sleeperHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h sleeperHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *sleeperHeap) Push(x any) { *h = append(*h, x.(sleeper)) }

func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// Clock is a virtual lock-step clock for a fixed set of worker
// goroutines. Every worker must only block through Sleep (or quickly,
// on mutexes); when all live workers are asleep the clock jumps to the
// earliest wake-up instant and releases every worker due then.
type Clock struct {
	mu       sync.Mutex
	now      simtime.Time
	workers  int
	seq      uint64
	sleepers sleeperHeap
}

// NewClock returns a clock at virtual time zero with no workers.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() simtime.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AddWorker registers a goroutine that will block via Sleep. It must be
// called before the goroutine's first Sleep (typically before spawning
// it).
func (c *Clock) AddWorker() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers++
}

// Done unregisters a worker; its departure may unblock the rest.
func (c *Clock) Done() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers--
	if c.workers < 0 {
		panic(fmt.Sprintf("testbed: Done called %d times too often", -c.workers))
	}
	c.advanceLocked()
}

// Sleep blocks the calling worker for the given virtual duration.
// Non-positive durations yield the minimal 1 ms tick so that spinning
// workers still let time advance.
func (c *Clock) Sleep(d simtime.Duration) {
	if d <= 0 {
		d = simtime.Millisecond
	}
	c.mu.Lock()
	c.sleepAtLocked(c.now.Add(d))
}

// SleepUntil blocks the calling worker until the given virtual instant.
// An instant at or before the current virtual time returns immediately:
// the caller has already reached t, and sleeping a minimal tick instead
// (as earlier versions did by delegating to Sleep) pushed a late worker
// 1 ms further past the requested instant on every catch-up call. The
// wake-up instant is computed under one lock acquisition, so a worker
// always wakes at exactly t even if the clock advances concurrently.
func (c *Clock) SleepUntil(t simtime.Time) {
	c.mu.Lock()
	if t <= c.now {
		c.mu.Unlock()
		return
	}
	c.sleepAtLocked(t)
}

// sleepAtLocked parks the calling worker until the virtual instant at.
// Callers must hold c.mu; it is released before blocking.
func (c *Clock) sleepAtLocked(at simtime.Time) {
	c.seq++
	s := sleeper{at: at, seq: c.seq, ch: make(chan struct{})}
	heap.Push(&c.sleepers, s)
	c.advanceLocked()
	c.mu.Unlock()
	<-s.ch
}

// advanceLocked releases the earliest sleepers when every live worker is
// asleep. Callers must hold c.mu.
func (c *Clock) advanceLocked() {
	if c.workers <= 0 || len(c.sleepers) == 0 || len(c.sleepers) < c.workers {
		return
	}
	at := c.sleepers[0].at
	if at > c.now {
		c.now = at
	}
	// Wake every sleeper due at this instant; they run concurrently,
	// exactly like physical nodes whose timers fire together.
	for len(c.sleepers) > 0 && c.sleepers[0].at == at {
		close(heap.Pop(&c.sleepers).(sleeper).ch)
	}
}
