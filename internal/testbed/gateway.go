package testbed

import (
	"sync"

	"repro/internal/battery"
	"repro/internal/faults"
	"repro/internal/netserver"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// Gateway is the shared radio head plus the network server, accessed
// concurrently by every node goroutine. It wraps the same Medium the
// simulator uses (so collision physics cannot diverge between
// substrates) behind a mutex.
type Gateway struct {
	mu     sync.Mutex
	med    *sim.Medium
	server *netserver.Server
	plan   *faults.Plan // nil: perfect control plane
}

// NewGateway wires the radio medium to the network server.
func NewGateway(med *sim.Medium, server *netserver.Server) *Gateway {
	return &Gateway{med: med, server: server}
}

// SetFaultPlan installs control-plane fault injection. Call before the
// node goroutines start; per-node fault streams keep draws deterministic
// per node regardless of goroutine interleaving.
func (g *Gateway) SetFaultPlan(plan *faults.Plan) { g.plan = plan }

// Rejoin re-admits a restarted node, preserving its server-side
// degradation history.
func (g *Gateway) Rejoin(nodeID int, soc float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.server.Rejoin(nodeID, soc)
}

// NewTransmission hands out a pooled transmission from the medium's
// free list. The caller owns it exclusively until EndUplink recycles
// it (the mutex hand-off makes the transfer race-free).
func (g *Gateway) NewTransmission() *sim.Transmission {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.med.NewTransmission()
}

// BeginUplink registers a node's transmission start.
func (g *Gateway) BeginUplink(tx *sim.Transmission) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.med.BeginUplink(tx)
}

// EndUplink resolves a transmission. When the packet decodes, the
// gateway ingests its SoC reports and tries to reserve the downlink for
// an ACK at rx1; ackAt is valid only when ackReserved is true.
func (g *Gateway) EndUplink(tx *sim.Transmission, nodeID int, reports []battery.Report,
	now simtime.Time, window simtime.Duration, rx1Delay, ackAirtime simtime.Duration,
) (decoded, ackReserved bool, ackEnd simtime.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	gws := g.med.EndUplink(tx)
	if len(gws) == 0 {
		return false, false, 0
	}
	if g.plan.GatewayDown(now) || g.plan.DropUplink(nodeID) {
		// PHY decoded but the packet never reached the network server:
		// from the node's side this is indistinguishable from a collision.
		return false, false, 0
	}
	g.server.Ingest(nodeID, reports, now, window)
	if g.plan.DuplicateUplink(nodeID) {
		g.server.Ingest(nodeID, reports, now, window) // idempotent no-op
	}
	if g.plan.DropDownlink(nodeID) {
		return true, false, 0
	}
	rx1 := now.Add(rx1Delay)
	ackEnd = rx1.Add(ackAirtime)
	for _, gw := range gws {
		if g.med.ReserveDownlink(gw, rx1, ackEnd) {
			return true, true, ackEnd
		}
	}
	return true, false, 0
}

// StartAck marks the gateway radio busy for the reserved ACK; the
// sending node calls it at rx1 (it owns the reservation). The emulated
// testbed has a single gateway.
func (g *Gateway) StartAck(until simtime.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.med.BeginDownlink(0, until)
}

// AckPayload returns the normalized degradation the ACK carries for the
// node.
func (g *Gateway) AckPayload(nodeID int) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.server.NormalizedDegradation(nodeID)
}

// Recompute runs the daily degradation recomputation; an outage window
// skips the slot and the grid-aligned schedule catches up afterwards.
func (g *Gateway) Recompute(now simtime.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.plan.GatewayDown(now) {
		return
	}
	g.server.RecomputeIfDue(now)
}
