package testbed

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"repro/internal/battery"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netserver"
	"repro/internal/obs"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/utility"
)

// Class A timing, matching the simulator.
const (
	rx1Delay      = simtime.Second
	rxWindowsSpan = 3 * simtime.Second
	// joinPayloadBytes is the LoRaWAN join-request size charged for the
	// rejoin exchange after a brownout, matching the simulator.
	joinPayloadBytes = 23
)

// NodeResult is one emulated node's outcome.
type NodeResult struct {
	ID          int
	SF          lora.SpreadingFactor
	Period      simtime.Duration
	Stats       *metrics.NodeStats
	Degradation battery.Breakdown
	FinalSoC    float64
}

// Result is the outcome of a testbed run.
type Result struct {
	Label   string
	Elapsed simtime.Duration
	Nodes   []NodeResult
}

// node is one emulated device, driven by its own goroutine.
type node struct {
	id      int
	params  lora.Params
	period  simtime.Duration
	windows int
	proto   mac.Protocol
	batt    battery.Store
	src     energy.Source
	fc      energy.Forecaster
	rng     *rand.Rand
	stats   *metrics.NodeStats

	phy  *lora.Table  // shared immutable airtime/energy table, goroutine-safe
	plan *faults.Plan // shared; only this node's streams are consulted

	sleepW       float64
	rxEnergyJ    float64
	ackAirtime   simtime.Duration
	attemptSpan  simtime.Duration // worst-case deadline check span, precomputed
	rxPowerDBm   []float64        // static received power at the gateway
	lastIntegral simtime.Time
	extraDrawJ   float64 // radio energy awaiting the next balance chunk
	pendingTrans []battery.Transition
	wireBuf      []battery.Report // reused report-encoding buffer
	obsTL        *obs.NodeTimeline
}

// Run executes the emulated testbed for the scenario. It reuses the
// scenario type of the simulator; the paper's setup is DefaultScenario.
// Unlike the simulator, node behaviour emerges from truly concurrent
// goroutines under the virtual clock, so run-to-run metric totals may
// vary slightly when nodes race for the same ACK slot — exactly as on
// the physical testbed.
func Run(cfg config.Scenario) (*Result, error) { return RunObserved(cfg, nil) }

// RunObserved is Run with an observability recorder attached. Node
// timelines are sampled once per sampling cycle at the decision instant.
// Unlike the simulator, testbed timelines are NOT byte-reproducible:
// goroutine interleaving under the virtual clock varies run to run, as
// it would on physical hardware.
func RunObserved(cfg config.Scenario, rec *obs.Recorder) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RunToEoL {
		return nil, fmt.Errorf("testbed: run-to-EoL is a simulator experiment")
	}
	trace, err := energy.NewYearTrace(cfg.Solar)
	if err != nil {
		return nil, err
	}
	server, err := netserver.New(cfg.BatteryModel, cfg.BatteryTempC, cfg.DegradationInterval)
	if err != nil {
		return nil, err
	}
	rec.SetupNodes(cfg.Nodes)
	server.SetObserver(rec)
	med := sim.NewMedium(lora.BW125, cfg.Demodulators, 1)
	med.SetObserver(rec)
	gw := NewGateway(med, server)
	clock := NewClock()
	end := simtime.Time(cfg.Duration)

	// One memoized airtime/energy table serves every node: all share
	// bandwidth, coding rate and TX power, and the table is immutable
	// after construction, so concurrent goroutine reads are safe.
	base := lora.DefaultParams()
	base.TxPowerDBm = cfg.TxPowerDBm
	maxPayload := max(cfg.PayloadBytes+8*battery.ReportSize, cfg.AckPayloadBytes, 64)
	phy, err := lora.NewTable(base, maxPayload)
	if err != nil {
		return nil, err
	}

	var plan *faults.Plan
	if cfg.Faults.Active() {
		if plan, err = faults.NewPlan(cfg.Faults, cfg.Seed, cfg.Nodes); err != nil {
			return nil, err
		}
		gw.SetFaultPlan(plan)
	}

	nodes := make([]*node, cfg.Nodes)
	for id := range nodes {
		n, err := buildNode(cfg, id, trace, rec.Node(id))
		if err != nil {
			return nil, fmt.Errorf("testbed: node %d: %w", id, err)
		}
		n.phy = phy
		n.plan = plan
		nodes[id] = n
		server.Register(id, cfg.InitialSoC)
	}

	var wg sync.WaitGroup
	// Gateway maintenance goroutine: daily degradation recomputation.
	clock.AddWorker()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer clock.Done()
		for {
			now := clock.Now()
			if now >= end {
				return
			}
			gw.Recompute(now)
			clock.Sleep(cfg.DegradationInterval)
		}
	}()

	for _, n := range nodes {
		n := n
		clock.AddWorker()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer clock.Done()
			n.run(cfg, clock, gw, end)
		}()
	}
	wg.Wait()

	res := &Result{Label: cfg.ProtocolLabel(), Elapsed: simtime.Duration(clock.Now())}
	for _, n := range nodes {
		n.integrate(end)
		if bla, ok := n.proto.(*mac.BLA); ok {
			n.stats.StaleWuDecisions = bla.StaleDecisions()
		}
		res.Nodes = append(res.Nodes, NodeResult{
			ID:          n.id,
			SF:          n.params.SF,
			Period:      n.period,
			Stats:       n.stats,
			Degradation: n.batt.Damage(end),
			FinalSoC:    n.batt.SoC(),
		})
	}
	return res, nil
}

// buildNode mirrors the simulator's construction for the testbed
// setting: fixed SF (the paper uses SF10 on one channel), emulated
// battery, local solar source.
func buildNode(cfg config.Scenario, id int, trace *energy.YearTrace, tl *obs.NodeTimeline) (*node, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)+0x7e57))

	params := lora.DefaultParams()
	params.TxPowerDBm = cfg.TxPowerDBm
	if cfg.FixedSF != 0 {
		params.SF = cfg.FixedSF
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	span := int64(cfg.PeriodMax-cfg.PeriodMin) + 1
	period := cfg.PeriodMin + simtime.Duration(rng.Int64N(span))
	windows := int(period / cfg.ForecastWindow)
	period = simtime.Duration(windows) * cfg.ForecastWindow

	refPayload := cfg.PayloadBytes + 2*battery.ReportSize
	txE := params.TxEnergy(refPayload)
	rxE := lora.RxPower() * 24 * params.SymbolTime()

	capacity := cfg.BatteryCapacityJ
	if capacity == 0 {
		perDay := simtime.Day.Seconds() / period.Seconds()
		capacity = cfg.SleepPowerW*simtime.Day.Seconds() + perDay*cfg.BatterySizingAttempts*(txE+rxE)
	}
	var store battery.Store
	batt, err := battery.New(cfg.BatteryModel, capacity, cfg.InitialSoC, cfg.BatteryTempC)
	if err != nil {
		return nil, err
	}
	store = batt
	if cfg.SupercapJ > 0 {
		if store, err = battery.NewHybrid(batt, cfg.SupercapJ, cfg.SupercapLeakW); err != nil {
			return nil, err
		}
	}

	// Panel sizing: peak generation funds PanelPeakMultiple transmissions
	// per forecast window (Sec. II-C), floored so that a day of sun also
	// covers the always-on sleep draw — low-SF nodes transmit so cheaply
	// that the paper's TX-based rule alone would starve them.
	peakW := max(energy.PeakPowerFor(txE, cfg.ForecastWindow, cfg.PanelPeakMultiple), 10*cfg.SleepPowerW)
	src := trace.NodeSource(id, peakW, cfg.SolarVariation)
	var fc energy.Forecaster
	switch cfg.Forecast {
	case config.ForecastPerfect:
		fc = &energy.Perfect{Source: src}
	case config.ForecastNoisy:
		fc = energy.NewNoisy(src, cfg.ForecastNoise, cfg.Seed^uint64(id)*0x51ab)
	default:
		ewma := energy.NewDiurnalEWMA(0.3)
		ewma.Prime(src, cfg.ForecastPrimeDays)
		fc = ewma
	}

	var proto mac.Protocol
	switch cfg.Protocol {
	case config.ProtocolLoRaWAN:
		proto = mac.ALOHA{}
	case config.ProtocolThetaOnly:
		if proto, err = mac.NewThetaOnly(cfg.Theta); err != nil {
			return nil, err
		}
	default:
		if proto, err = mac.NewBLA(mac.BLAConfig{
			Theta:                cfg.Theta,
			WeightB:              cfg.WeightB,
			Beta:                 cfg.Beta,
			Utility:              cfg.Utility,
			Forecaster:           fc,
			Window:               cfg.ForecastWindow,
			MaxWindows:           int(cfg.PeriodMax / cfg.ForecastWindow),
			SingleTxEnergyJ:      txE,
			MaxAttempts:          cfg.MaxAttempts,
			DisableRetxHistory:   cfg.DisableRetxHistory,
			DisableDecisionTable: cfg.DisableDecisionTable,
			WuTTL:                cfg.Faults.WuTTL,
			WuStaleFallback:      cfg.Faults.WuStaleFallback,
			Obs:                  tl,
		}); err != nil {
			return nil, err
		}
	}
	store.SetChargeLimit(proto.Theta())

	return &node{
		id:          id,
		params:      params,
		period:      period,
		windows:     windows,
		proto:       proto,
		batt:        store,
		src:         src,
		fc:          fc,
		rng:         rng,
		stats:       metrics.NewNodeStats(),
		sleepW:      cfg.SleepPowerW,
		rxEnergyJ:   rxE,
		ackAirtime:  params.Airtime(cfg.AckPayloadBytes),
		attemptSpan: params.Airtime(cfg.PayloadBytes) + rxWindowsSpan,
		// The link is static (fixed placement, deterministic shadowing
		// draw), so the received power is computed once per node.
		rxPowerDBm: []float64{cfg.PathLoss.RxPowerDBm(cfg.TxPowerDBm, radioPos(id), uint64(id))},
		obsTL:      tl,
	}, nil
}

// run is the node goroutine's main loop: exactly the duty cycle a
// physical LMIC-based node executes.
func (n *node) run(cfg config.Scenario, clock *Clock, gw *Gateway, end simtime.Time) {
	spread := cfg.StartSpread
	if spread == 0 {
		spread = n.period
	}
	clock.Sleep(simtime.Duration(n.rng.Int64N(int64(spread))) + simtime.Millisecond)

	nextBO, boPending := n.plan.NextBrownout(n.id, 0)
	for {
		genAt := clock.Now()
		if genAt >= end {
			return
		}
		// Brownouts are applied at sampling-cycle granularity: a restart
		// mid-cycle would anyway first be observable at the next decision.
		if boPending && genAt >= nextBO {
			n.brownout(genAt, gw)
			nextBO, boPending = n.plan.NextBrownout(n.id, genAt)
		}
		n.integrate(genAt)
		n.stats.Generated++
		if n.obsTL != nil {
			bd := n.batt.Damage(genAt)
			n.obsTL.Record(genAt, n.batt.SoC(), bd.Calendar, bd.Cycle, bd.Total, len(n.pendingTrans))
		}

		dec := n.proto.DecideTx(genAt, n.windows, n.batt.Stored())
		n.obsTL.Decision(dec.Window, dec.Drop)
		nextGen := genAt.Add(n.period)
		if dec.Drop {
			n.stats.NeverSent++
			n.stats.Dropped++
			n.stats.LatencyPenalized += n.period
		} else {
			window := min(max(dec.Window, 0), n.windows-1)
			n.stats.WindowHist.Add(window)
			var offset simtime.Duration
			if dec.SpreadInWindow {
				if spread := cfg.ForecastWindow - 10*simtime.Second; spread > 0 {
					offset = simtime.Duration(n.rng.Int64N(int64(spread)))
				}
			}
			clock.SleepUntil(genAt.Add(simtime.Duration(window)*cfg.ForecastWindow + offset))
			n.transmitPacket(cfg, clock, gw, genAt, window, nextGen)
		}
		if clock.Now() < nextGen {
			clock.SleepUntil(nextGen)
		}
	}
}

// transmitPacket runs the attempt/ACK/retransmit cycle for one packet.
func (n *node) transmitPacket(cfg config.Scenario, clock *Clock, gw *Gateway,
	genAt simtime.Time, window int, deadline simtime.Time,
) {
	var attempts int
	var radioEnergy float64
	delivered := false

	for attempts < cfg.MaxAttempts {
		now := clock.Now()
		if now.Add(n.attemptSpan).After(deadline) {
			break
		}
		n.integrate(now)
		n.drainReports()
		reports := n.pendingTrans
		if len(reports) > 8 {
			reports = reports[len(reports)-8:]
		}
		payload := cfg.PayloadBytes + battery.ReportSize*len(reports)
		params := paramsForAttempt(n.params, attempts)
		txE := n.phy.TxEnergy(params.SF, payload)
		if !n.batt.CanSupply(txE + n.rxEnergyJ) {
			// Wait a window for harvest.
			clock.Sleep(cfg.ForecastWindow)
			continue
		}

		attempts++
		n.stats.Attempts++
		n.extraDrawJ += txE
		n.stats.TxEnergyJ += txE
		radioEnergy += txE + n.rxEnergyJ

		airtime := n.phy.Airtime(params.SF, payload)
		tx := gw.NewTransmission()
		tx.NodeID = n.id
		tx.Channel = n.id % cfg.Channels
		tx.SF = params.SF
		tx.PowerDBm = n.rxPowerDBm
		tx.Start = now
		tx.End = now.Add(airtime)
		gw.BeginUplink(tx)
		clock.Sleep(airtime)

		txEnd := clock.Now()
		n.integrate(txEnd)
		n.extraDrawJ += n.rxEnergyJ

		wire := n.wireBuf[:0]
		for _, tr := range reports {
			wire = append(wire, battery.EncodeTransition(tr, txEnd, cfg.ForecastWindow))
		}
		n.wireBuf = wire
		decoded, ackReserved, ackEnd := gw.EndUplink(tx, n.id, wire, txEnd,
			cfg.ForecastWindow, rx1Delay, n.ackAirtime)
		if decoded && ackReserved {
			clock.SleepUntil(txEnd.Add(rx1Delay))
			gw.StartAck(ackEnd)
			clock.SleepUntil(ackEnd)
			n.proto.OnDegradationUpdate(ackEnd, gw.AckPayload(n.id))
			n.pendingTrans = n.pendingTrans[:0]
			delivered = true
			break
		}
		// No ACK: listen through the receive windows, back off, retry.
		clock.Sleep(rxWindowsSpan + 500*simtime.Millisecond +
			simtime.Duration(n.rng.Int64N(int64(2*simtime.Second))))
	}

	now := clock.Now()
	if delivered {
		n.stats.Delivered++
		lat := now.Sub(genAt)
		n.stats.LatencyDelivered += lat
		n.stats.LatencyPenalized += lat
		n.stats.UtilitySum += utility.Linear{}.Value(window, n.windows)
	} else {
		n.stats.Dropped++
		n.stats.LatencyPenalized += n.period
	}
	if attempts > 0 {
		n.proto.OnOutcome(mac.Outcome{
			Window:    window,
			Attempts:  attempts,
			EnergyJ:   radioEnergy,
			Delivered: delivered,
		})
	}
	n.obsTL.PacketDone(delivered, attempts)
}

// brownout restarts the node, mirroring the simulator: volatile MAC
// state and the unreported transition backlog are lost, the rejoin
// exchange is charged to the battery, and the gateway keeps the
// accumulated degradation history.
func (n *node) brownout(now simtime.Time, gw *Gateway) {
	n.integrate(now)
	n.proto.Reset()
	n.pendingTrans = n.pendingTrans[:0]
	n.batt.DrainTransitions()
	n.stats.Brownouts++
	n.obsTL.RecordEvent(now, "brownout")
	joinE := n.phy.TxEnergy(n.params.SF, joinPayloadBytes) + n.rxEnergyJ
	n.extraDrawJ += joinE
	n.stats.TxEnergyJ += joinE
	gw.Rejoin(n.id, n.batt.SoC())
}

// integrate mirrors the simulator's lazy energy accounting.
func (n *node) integrate(to simtime.Time) {
	from := n.lastIntegral
	if to <= from {
		return
	}
	n.lastIntegral = to
	const minuteT = simtime.Time(simtime.Minute)
	cursor := from
	for cursor < to {
		next := (cursor/minuteT + 1) * minuteT
		var secs float64
		if next <= to && cursor == next-minuteT {
			// Whole-minute step: a full simulated minute is exactly 60 s.
			secs = 60.0
		} else {
			if next > to {
				next = to
			}
			secs = next.Sub(cursor).Seconds()
		}
		harvest := n.src.Energy(cursor, next)
		n.fc.Observe(cursor, next, harvest)
		net := harvest - secs*n.sleepW - n.extraDrawJ
		n.extraDrawJ = 0
		if net >= 0 {
			n.batt.Charge(next, net)
		} else {
			n.batt.Discharge(next, -net)
		}
		cursor = next
	}
}

func (n *node) drainReports() {
	trans := n.batt.DrainTransitions()
	if len(trans) == 0 {
		return
	}
	if len(trans) > 2 {
		loIdx, hiIdx := 0, 0
		for i, tr := range trans {
			if tr.SoC < trans[loIdx].SoC {
				loIdx = i
			}
			if tr.SoC > trans[hiIdx].SoC {
				hiIdx = i
			}
		}
		first, second := loIdx, hiIdx
		if first > second {
			first, second = second, first
		}
		if first == second {
			trans = trans[first : first+1]
		} else {
			trans = []battery.Transition{trans[first], trans[second]}
		}
	}
	n.pendingTrans = append(n.pendingTrans, trans...)
	if len(n.pendingTrans) > 16 {
		n.pendingTrans = append(n.pendingTrans[:0], n.pendingTrans[len(n.pendingTrans)-16:]...)
	}
}

// paramsForAttempt applies the LoRaWAN retransmission back-off: SF rises
// one step every two attempts, capped at SF12, matching the simulator.
func paramsForAttempt(p lora.Params, attemptIdx int) lora.Params {
	sf := p.SF + lora.SpreadingFactor(attemptIdx/2)
	if sf > lora.MaxSF {
		sf = lora.MaxSF
	}
	p.SF = sf
	return p
}

// radioPos places testbed nodes on a small indoor ring (the paper's lab
// deployment, Fig. 10): distances are tens of meters, so link budget is
// never the bottleneck.
func radioPos(id int) radio.Position {
	return radio.Position{X: 10 + float64(id)*3}
}
