// Package mathx holds the tiny numeric helpers shared across the
// simulator and protocol packages, so each package stops carrying its
// own copy.
package mathx

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MaxOf returns the largest element of xs; it panics on an empty slice.
func MaxOf(xs []float64) float64 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}
