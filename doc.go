// Package repro is a from-scratch Go reproduction of "A Battery
// Lifespan-Aware Protocol for LPWAN" (Fahmida et al., ICDCS 2024): the
// first LoRa MAC protocol that maximizes the minimum battery lifespan of
// an energy-harvesting network.
//
// The repository contains the complete system the paper describes and
// everything it depends on, implemented with the standard library only:
//
//   - internal/core — the contribution: DIF (Eq. 15), the EWMA energy
//     estimator (Eq. 13), the retransmission history (Eq. 14) and the
//     forecast-window selection (Algorithm 1);
//   - internal/battery — the Xu et al. degradation model (Eq. 1-4) with
//     batch and incremental rainflow cycle counting;
//   - internal/lora, internal/radio — the LoRa PHY and propagation;
//   - internal/energy — the synthetic solar substrate and forecasters;
//   - internal/mac, internal/netserver — the protocols and gateway side;
//   - internal/sim — the discrete-event LoRaWAN simulator (NS-3 stand-in);
//   - internal/testbed — a concurrent virtual-time testbed emulation;
//   - internal/optimal — the clairvoyant TDMA formulation (Sec. III-A);
//   - internal/experiment — regeneration of every figure and table.
//
// Start with README.md, run `go run ./examples/quickstart`, and
// regenerate the paper's results with `go run ./cmd/experiments`.
// The benchmarks in bench_test.go exercise one scaled-down workload per
// paper artifact; see EXPERIMENTS.md for paper-vs-measured numbers.
package repro
